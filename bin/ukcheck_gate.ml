(* CI gate for the ukcheck correctness tooling.

   Runs (a) the lockset race detector over the 4-core cluster smoke —
   any report fails the gate, and a planted-race positive control
   guards against a silently-dead detector — and (b) the schedule
   explorer over uklock mutex and ukalloc.Percore fixtures with a
   64-schedule budget, failing on any violation and printing the
   schedule counts for the CI log. *)

module Smp = Uksmp.Smp
module Explore = Ukcheck.Explore
module Lockset = Ukcheck.Lockset
module Shared = Ukcheck.Shared
module Schedule = Ukcheck.Schedule
module Sched = Uksched.Sched

let failures = ref 0

let fail fmt = Printf.ksprintf (fun s -> incr failures; Printf.printf "FAIL: %s\n%!" s) fmt
let info fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

(* --- positive control: the detector must flag a planted race ------------- *)

let planted_race () =
  let smp = Smp.create ~cores:2 () in
  let det = Lockset.attach smp in
  let cell = Shared.cell ~name:"planted" 0 in
  for c = 0 to 1 do
    ignore
      (Smp.spawn_on smp ~core:c ~pinned:true (fun () ->
           Smp.charge smp 100;
           Shared.update cell (fun v -> v + 1)))
  done;
  Smp.run smp;
  Lockset.detach det;
  match Lockset.reports det with
  | [] -> fail "lockset: planted race not detected (detector dead?)"
  | _ :: _ -> info "lockset: planted-race positive control fires"

(* --- negative control: silent on the real 4-core cluster smoke ----------- *)

let cluster_smoke () =
  let c = Ukapps.Cluster.create ~seed:11 ~n:4 () in
  let det = Lockset.attach (Ukapps.Cluster.smp c) in
  ignore (Ukapps.Cluster.add_httpd c (Ukapps.Httpd.In_memory [ ("/x", "ok") ]));
  let r =
    Ukapps.Cluster.run_httpd_load c ~connections_per_core:2 ~requests_per_core:50 ~path:"/x" ()
  in
  Lockset.detach det;
  if r.Ukapps.Wrk.errors <> 0 then fail "lockset: cluster smoke had %d http errors" r.Ukapps.Wrk.errors;
  (match Lockset.reports det with
  | [] ->
      info "lockset: 4-core cluster smoke: 0 violations (%d lock events, %d ipis)"
        (Lockset.lock_events det) (Lockset.ipis det)
  | reports ->
      List.iter
        (fun rep -> fail "lockset: %s" (Format.asprintf "%a" Lockset.pp_report rep))
        reports)

(* --- explorer fixtures ---------------------------------------------------- *)

let report_explore name = function
  | Explore.Passed s ->
      info "explorer: %s: passed %d schedules%s" name s.Explore.schedules
        (if s.Explore.exhaustive then " (exhaustive)" else "")
  | Explore.Failed f ->
      fail "explorer: %s: %s after %d schedules — replay with %s" name f.Explore.message
        f.Explore.found_after
        (Schedule.to_string f.Explore.cert)

(* Five threads on two cores contend for one mutex (equal sleeps inside
   the critical section keep the cores' clocks tied, so step-order and
   dispatch choice points stay plentiful); every explored handoff order
   must still run all five critical sections exactly once,
   deadlock-free. *)
let uklock_fixture smp ~seed:_ =
  let m = Uklock.Lock.Mutex.create ~name:"gate" (Uklock.Lock.Threaded (Smp.sched_of smp ~core:0)) in
  let count = ref 0 in
  let spawn core =
    ignore
      (Smp.spawn_on smp ~core ~pinned:true (fun () ->
           Sched.yield ();
           Uklock.Lock.Mutex.lock m;
           let v = !count in
           Sched.sleep_ns 50.0;
           count := v + 1;
           Uklock.Lock.Mutex.unlock m))
  in
  spawn 0;
  spawn 0;
  spawn 0;
  spawn 1;
  spawn 1;
  fun () ->
    if !count = 5 then Ok () else Error (Printf.sprintf "mutex lost updates: %d/5" !count)

(* Two threads per core hammer the per-core arena; every interleaving
   must keep concurrently-held addresses disjoint and leak nothing. *)
let percore_fixture smp ~seed:_ =
  let clocks = Array.init 2 (fun i -> Smp.clock_of smp ~core:i) in
  let backend =
    Ukalloc.Tlsf.create ~clock:(Uksim.Clock.create ()) ~base:(1 lsl 20) ~len:(1 lsl 20)
  in
  let arena = Ukalloc.Percore.create ~clocks ~backend ~batch:4 () in
  let bad = ref None in
  let held : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let note e = if !bad = None then bad := Some e in
  for core = 0 to 1 do
    let view = Ukalloc.Percore.view arena ~core in
    for _t = 0 to 2 do
      ignore
        (Smp.spawn_on smp ~core ~pinned:true (fun () ->
             for _ = 1 to 3 do
               match Ukalloc.Alloc.uk_malloc view 96 with
               | None -> note "arena oom"
               | Some a ->
                   if Hashtbl.mem held a then note "address handed out twice";
                   Hashtbl.add held a ();
                   Sched.sleep_ns 50.0;
                   Hashtbl.remove held a;
                   Ukalloc.Alloc.uk_free view a
             done))
    done
  done;
  fun () ->
    match !bad with
    | Some e -> Error e
    | None -> if Hashtbl.length held = 0 then Ok () else Error "allocations leaked"

let () =
  info "== ukcheck gate ==";
  planted_race ();
  cluster_smoke ();
  report_explore "uklock mutex (2 cores, 5 threads)"
    (Explore.run (Explore.config ~cores:2 ~budget:64 ()) uklock_fixture);
  report_explore "percore arena (2 cores, 6 threads)"
    (Explore.run (Explore.config ~cores:2 ~budget:64 ()) percore_fixture);
  if !failures > 0 then begin
    info "== ukcheck gate: %d failure(s) ==" !failures;
    exit 1
  end;
  info "== ukcheck gate ok =="
