(* Fleet quickstart: absorb a 10x flash crowd by booting through it.

   A fleet of calibrated httpd unikernels sits behind an L4 front door;
   an autoscaler watches the fleet's own uktrace gauges and scales out
   via snapshot clones (~1.3 ms each) when the spike hits.

   Run with: dune exec examples/fleet.exe *)

module Fleet = Ukfleet.Fleet

let () =
  let fleet =
    Fleet.create ~boot_mode:Fleet.Snapshot ~autoscale:Ukfleet.Autoscaler.default
      ~shed_after_ns:(Uksim.Units.msec 50.0) ~image:Ukfleet.Image.httpd ()
  in
  let c = Fleet.costs fleet in
  Format.printf "cold boot %.2f ms, clone %.2f ms, %.1f us/request@."
    (c.Fleet.cold_boot_ns /. 1e6) (c.Fleet.clone_ns /. 1e6) (c.Fleet.service_ns /. 1e3);

  (* Steady load at 1.5x one instance's capacity, then a 10x spike. *)
  let cap = 1e9 /. c.Fleet.service_ns in
  let ms = Uksim.Units.msec in
  let w =
    Ukfleet.Workload.spike ~base_rps:(1.5 *. cap) ~factor:10.0 ~at_ns:(ms 20.0)
      ~spike_ns:(ms 40.0) ~duration_ns:(ms 100.0)
  in
  let r = Fleet.run fleet w in

  Format.printf "offered %d requests; completed %d, shed %d, lost %d@." r.Fleet.offered
    r.Fleet.completed r.Fleet.shed r.Fleet.lost;
  Format.printf "scaled 1 -> %d instances via %d clones (1 cold template boot)@."
    r.Fleet.peak_instances r.Fleet.clones;
  Format.printf "p50 %.0f us, p99 %.0f us, SLO-violation window %.0f ms@." r.Fleet.p50_us
    r.Fleet.p99_us (r.Fleet.slo_violation_ns /. 1e6);
  Format.printf "deterministic trace hash %016x@." r.Fleet.trace_hash
