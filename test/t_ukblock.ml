(* Tests for the ukblock API and its devices, plus the lossy-wire fault
   model and TCP recovery over it. *)

module B = Ukblock.Blockdev
module V = Ukblock.Virtio_blk
module Wire = Uknetdev.Wire
module S = Uknetstack.Stack
module A = Uknetstack.Addr

let env () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  (clock, engine)

let test_ramdisk_rw () =
  let clock, _ = env () in
  let d = V.create_ramdisk ~clock () in
  let data = Bytes.make 1024 'a' in
  (match d.B.write_sync ~lba:10 data with Ok () -> () | Error e -> Alcotest.fail (B.error_to_string e));
  (match d.B.read_sync ~lba:10 ~sectors:2 with
  | Ok got -> Alcotest.(check bytes) "roundtrip" data got
  | Error e -> Alcotest.fail (B.error_to_string e));
  match d.B.read_sync ~lba:11 ~sectors:1 with
  | Ok got -> Alcotest.(check char) "second sector" 'a' (Bytes.get got 0)
  | Error _ -> Alcotest.fail "partial read"

let test_bounds () =
  let clock, _ = env () in
  let d = V.create_ramdisk ~clock ~capacity_sectors:8 () in
  (match d.B.read_sync ~lba:7 ~sectors:2 with
  | Error B.Ebounds -> ()
  | _ -> Alcotest.fail "read past end");
  (match d.B.write_sync ~lba:0 (Bytes.make 100 'x') with
  | Error B.Ebounds -> ()
  | _ -> Alcotest.fail "unaligned write accepted");
  match d.B.read_sync ~lba:(-1) ~sectors:1 with
  | Error B.Ebounds -> ()
  | _ -> Alcotest.fail "negative lba"

let test_virtio_blk_async () =
  let clock, engine = env () in
  let d = V.create ~clock ~engine ~host_latency_ns:10_000.0 () in
  let reqs = Array.init 8 (fun i -> B.Write { lba = i * 8; data = Bytes.make 512 'q' }) in
  Alcotest.(check int) "all submitted" 8 (d.B.submit reqs);
  Alcotest.(check int) "pending" 8 (d.B.pending ());
  Alcotest.(check (list int)) "nothing complete yet" []
    (List.map (fun _ -> 0) (d.B.poll_completions ~max:16));
  (* Advance past the host latency. *)
  Uksim.Clock.advance_ns clock 50_000.0;
  let done_ = d.B.poll_completions ~max:16 in
  Alcotest.(check int) "all complete" 8 (List.length done_);
  Alcotest.(check int) "none pending" 0 (d.B.pending ());
  List.iter
    (fun c -> match c.B.result with Ok _ -> () | Error e -> Alcotest.fail (B.error_to_string e))
    done_

let test_virtio_blk_interrupt () =
  let clock, engine = env () in
  let d = V.create ~clock ~engine ~host_latency_ns:5_000.0 () in
  let irqs = ref 0 in
  d.B.set_completion_handler (Some (fun () -> incr irqs));
  ignore (d.B.submit (Array.init 4 (fun i -> B.Read { lba = i; sectors = 1 })));
  Uksim.Engine.run engine;
  (* One idle-to-busy transition for the burst. *)
  Alcotest.(check int) "one interrupt" 1 !irqs;
  Alcotest.(check int) "completions there" 4 (List.length (d.B.poll_completions ~max:8))

let test_virtio_blk_queue_depth () =
  let clock, engine = env () in
  let d = V.create ~clock ~engine ~queue_depth:4 () in
  let reqs = Array.init 10 (fun i -> B.Read { lba = i; sectors = 1 }) in
  Alcotest.(check int) "bounded by queue depth" 4 (d.B.submit reqs)

let test_virtio_blk_latency_charged () =
  let clock, engine = env () in
  let d = V.create ~clock ~engine ~host_latency_ns:20_000.0 () in
  let s = Uksim.Clock.start clock in
  (match d.B.read_sync ~lba:0 ~sectors:1 with Ok _ -> () | Error _ -> Alcotest.fail "read");
  Alcotest.(check bool) "sync read pays the host latency" true
    (Uksim.Clock.elapsed_ns clock s >= 20_000.0)

let test_batch_amortizes_kick () =
  (* One kick per submit call: batching 32 requests beats 32 single
     submissions — the ukblock analogue of tx_burst batching. *)
  let cost n_calls batch =
    let clock, engine = env () in
    let d = V.create ~clock ~engine () in
    let s = Uksim.Clock.start clock in
    for _ = 1 to n_calls do
      ignore (d.B.submit (Array.init batch (fun i -> B.Read { lba = i; sectors = 1 })))
    done;
    Uksim.Clock.elapsed_cycles clock s
  in
  Alcotest.(check bool) "batched submit cheaper" true (cost 1 32 < cost 32 1)

(* --- lossy wire + TCP recovery ------------------------------------------ *)

let test_wire_loss_counted () =
  let _, engine = env () in
  let a, b = Wire.create_pair ~engine ~loss:0.5 ~seed:7 () in
  Wire.attach_sink b;
  for _ = 1 to 1000 do
    Wire.send_bytes a (Bytes.make 64 'l')
  done;
  Uksim.Engine.run engine;
  let dropped = Wire.dropped_frames a in
  Alcotest.(check int) "conservation" 1000 (dropped + Wire.rx_frames b);
  Alcotest.(check bool)
    (Printf.sprintf "about half dropped (%d)" dropped)
    true
    (dropped > 350 && dropped < 650)

let test_wire_duplication () =
  let _, engine = env () in
  let a, b = Wire.create_pair ~engine ~duplicate:0.3 ~seed:11 () in
  Wire.attach_sink b;
  for _ = 1 to 1000 do
    Wire.send_bytes a (Bytes.make 64 'd')
  done;
  Uksim.Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "duplicates delivered (%d)" (Wire.rx_frames b))
    true
    (Wire.rx_frames b > 1200)

let test_tcp_over_lossy_virtio () =
  (* End-to-end: a TCP transfer across a 2%-loss, 1%-duplication link
     completes intact via retransmission. *)
  let clock, engine = env () in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let wa, wb = Wire.create_pair ~engine ~loss:0.02 ~duplicate:0.01 ~seed:3 () in
  let mk wire ip mac =
    let dev =
      Uknetdev.Virtio_net.create ~clock ~engine ~backend:Uknetdev.Virtio_net.Vhost_net ~wire ()
    in
    let s =
      S.create ~clock ~engine ~sched ~dev
        { S.mac = A.Mac.of_int mac; ip = A.Ipv4.of_string ip;
          netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
    in
    S.start s;
    s
  in
  let server = mk wa "10.1.0.1" 0x1 in
  let client = mk wb "10.1.0.2" 0x2 in
  let payload = Bytes.init 40_000 (fun i -> Char.chr (i land 0xff)) in
  let received = Buffer.create 40_000 in
  ignore
    (Uksched.Sched.spawn sched ~name:"sink" (fun () ->
         let l = S.Tcp_socket.listen server ~port:9 () in
         match S.Tcp_socket.accept ~block:true l with
         | None -> ()
         | Some flow ->
             let rec drain () =
               match S.Tcp_socket.recv ~block:true server flow ~max:8192 with
               | None -> ()
               | Some b ->
                   Buffer.add_bytes received b;
                   drain ()
             in
             drain ()));
  ignore
    (Uksched.Sched.spawn sched ~name:"source" (fun () ->
         let flow = S.Tcp_socket.connect client ~dst:(A.Ipv4.of_string "10.1.0.1", 9) () in
         let sent = ref 0 in
         while !sent < Bytes.length payload do
           let chunk = Bytes.sub payload !sent (min 8192 (Bytes.length payload - !sent)) in
           sent := !sent + S.Tcp_socket.send ~block:true client flow chunk
         done;
         S.Tcp_socket.close client flow));
  Uksched.Sched.run sched;
  Alcotest.(check int) "every byte arrived" (Bytes.length payload) (Buffer.length received);
  Alcotest.(check bytes) "in order and uncorrupted" payload (Buffer.to_bytes received);
  Alcotest.(check bool) "the link really dropped frames" true
    (Wire.dropped_frames wa + Wire.dropped_frames wb > 0)

let tcp_lossy_prop =
  QCheck.Test.make ~name:"TCP delivers intact streams across random lossy links" ~count:8
    QCheck.(pair (int_range 1 1000) (int_range 0 60))
    (fun (seed, loss_permille) ->
      let clock = Uksim.Clock.create () in
      let engine = Uksim.Engine.create clock in
      let sched = Uksched.Sched.create_cooperative ~clock ~engine in
      let loss = float_of_int loss_permille /. 1000.0 in
      let wa, wb = Wire.create_pair ~engine ~loss ~duplicate:0.01 ~seed () in
      let mk wire ip mac =
        let dev =
          Uknetdev.Virtio_net.create ~clock ~engine ~backend:Uknetdev.Virtio_net.Vhost_net
            ~wire ()
        in
        let s =
          S.create ~clock ~engine ~sched ~dev
            { S.mac = A.Mac.of_int mac; ip = A.Ipv4.of_string ip;
              netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
        in
        S.start s;
        s
      in
      let server = mk wa "10.2.0.1" 0x1 in
      let client = mk wb "10.2.0.2" 0x2 in
      let payload = Bytes.init 8000 (fun i -> Char.chr ((i * 7) land 0xff)) in
      let received = Buffer.create 8000 in
      ignore
        (Uksched.Sched.spawn sched ~name:"sink" (fun () ->
             let l = S.Tcp_socket.listen server ~port:5 () in
             match S.Tcp_socket.accept ~block:true l with
             | None -> ()
             | Some flow ->
                 let rec drain () =
                   match S.Tcp_socket.recv ~block:true server flow ~max:4096 with
                   | None -> ()
                   | Some b ->
                       Buffer.add_bytes received b;
                       drain ()
                 in
                 drain ()));
      ignore
        (Uksched.Sched.spawn sched ~name:"source" (fun () ->
             let flow = S.Tcp_socket.connect client ~dst:(A.Ipv4.of_string "10.2.0.1", 5) () in
             let sent = ref 0 in
             while !sent < Bytes.length payload do
               let chunk =
                 Bytes.sub payload !sent (min 2048 (Bytes.length payload - !sent))
               in
               sent := !sent + S.Tcp_socket.send ~block:true client flow chunk
             done;
             S.Tcp_socket.close client flow));
      (match Uksched.Sched.run sched with
      | () -> ()
      | exception Uksched.Sched.Deadlock _ -> ()
      | exception Failure _ -> ());
      Bytes.equal payload (Buffer.to_bytes received))

let suite =
  [
    Alcotest.test_case "ramdisk read/write" `Quick test_ramdisk_rw;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "virtio-blk async completion" `Quick test_virtio_blk_async;
    Alcotest.test_case "virtio-blk interrupts" `Quick test_virtio_blk_interrupt;
    Alcotest.test_case "queue depth" `Quick test_virtio_blk_queue_depth;
    Alcotest.test_case "host latency charged" `Quick test_virtio_blk_latency_charged;
    Alcotest.test_case "batched submit amortizes kicks" `Quick test_batch_amortizes_kick;
    Alcotest.test_case "wire loss injection" `Quick test_wire_loss_counted;
    Alcotest.test_case "wire duplication" `Quick test_wire_duplication;
    Alcotest.test_case "TCP recovers over lossy virtio link" `Quick test_tcp_over_lossy_virtio;
    QCheck_alcotest.to_alcotest tcp_lossy_prop;
  ]
