(* Tests for the uk_ring SPSC buffer. *)

module R = Ukring.Ring

let test_fifo () =
  let r = R.create ~capacity:4 () in
  Alcotest.(check bool) "enq 1" true (R.enqueue r 1);
  Alcotest.(check bool) "enq 2" true (R.enqueue r 2);
  Alcotest.(check (option int)) "peek" (Some 1) (R.peek r);
  Alcotest.(check (option int)) "deq 1" (Some 1) (R.dequeue r);
  Alcotest.(check (option int)) "deq 2" (Some 2) (R.dequeue r);
  Alcotest.(check (option int)) "empty" None (R.dequeue r)

let test_capacity_rounding () =
  let r = R.create ~capacity:5 () in
  Alcotest.(check int) "rounded to 8" 8 (R.capacity r);
  Alcotest.check_raises "zero capacity" (Invalid_argument "Ring.create: capacity must be positive")
    (fun () -> ignore (R.create ~capacity:0 ()))

let test_full_rejects () =
  let r = R.create ~capacity:2 () in
  Alcotest.(check bool) "fills" true (R.enqueue r 'a' && R.enqueue r 'b');
  Alcotest.(check bool) "full" true (R.is_full r);
  Alcotest.(check bool) "rejected" false (R.enqueue r 'c');
  Alcotest.(check int) "drop counted" 1 (R.dropped_total r);
  ignore (R.dequeue r);
  Alcotest.(check bool) "room again" true (R.enqueue r 'd')

let test_bursts () =
  let r = R.create ~capacity:8 () in
  Alcotest.(check int) "burst in" 8 (R.enqueue_burst r (Array.init 10 Fun.id));
  Alcotest.(check int) "overflow dropped" 2 (R.dropped_total r);
  Alcotest.(check (list int)) "burst out, FIFO" [ 0; 1; 2 ] (R.dequeue_burst r ~max:3);
  Alcotest.(check int) "remaining" 5 (R.length r)

let test_wraparound () =
  (* Free-running indices must survive many laps. *)
  let r = R.create ~capacity:4 () in
  for lap = 1 to 10_000 do
    Alcotest.(check bool) "enq" true (R.enqueue r lap);
    Alcotest.(check (option int)) "deq" (Some lap) (R.dequeue r)
  done;
  Alcotest.(check int) "totals" 10_000 (R.enqueued_total r)

let test_spsc_contract_enforced () =
  (* The SPSC half of the contract is runtime-asserted: once a producer
     registers via enqueue_from, any other producer identity raises
     instead of silently corrupting under cross-core use. *)
  let r = R.create ~capacity:4 () in
  Alcotest.(check bool) "mode" false (R.is_mpsc r);
  Alcotest.(check bool) "owner registers" true (R.enqueue_from r ~producer:0 10);
  Alcotest.(check bool) "owner again" true (R.enqueue_from r ~producer:0 11);
  Alcotest.check_raises "foreign producer rejected"
    (Invalid_argument
       "Ring.enqueue_from: SPSC ring owned by producer 0, enqueue from 3 (create with \
        ~mpsc:true for multi-producer use)")
    (fun () -> ignore (R.enqueue_from r ~producer:3 12));
  (* the failed enqueue left the ring untouched *)
  Alcotest.(check int) "length unchanged" 2 (R.length r);
  Alcotest.(check (list (pair int int))) "accounting" [ (0, 2) ] (R.producers r)

let test_mpsc_accepts_all_producers () =
  let r = R.create ~mpsc:true ~capacity:8 () in
  Alcotest.(check bool) "mode" true (R.is_mpsc r);
  for core = 0 to 3 do
    for v = 0 to 1 do
      Alcotest.(check bool) "enq" true (R.enqueue_from r ~producer:core (core * 10 + v))
    done
  done;
  Alcotest.(check (list int)) "fifo across producers"
    [ 0; 1; 10; 11; 20; 21; 30; 31 ]
    (R.dequeue_burst r ~max:8);
  Alcotest.(check (list (pair int int))) "per-producer counts"
    [ (0, 2); (1, 2); (2, 2); (3, 2) ]
    (R.producers r)

let test_mpsc_drop_not_counted_as_accepted () =
  let r = R.create ~mpsc:true ~capacity:2 () in
  Alcotest.(check bool) "fills" true (R.enqueue_from r ~producer:1 'a');
  Alcotest.(check bool) "fills" true (R.enqueue_from r ~producer:2 'b');
  Alcotest.(check bool) "full drop" false (R.enqueue_from r ~producer:1 'c');
  Alcotest.(check int) "drop counted" 1 (R.dropped_total r);
  Alcotest.(check (list (pair int int))) "only accepted counted"
    [ (1, 1); (2, 1) ]
    (R.producers r)

let ring_model_prop =
  QCheck.Test.make ~name:"ring behaves as a bounded FIFO queue" ~count:200
    QCheck.(list (option (int_bound 1000)))
    (fun ops ->
      (* Some x = enqueue x; None = dequeue. Compare against Queue with
         the same capacity bound. *)
      let r = R.create ~capacity:8 () in
      let cap = R.capacity r in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              let accepted = R.enqueue r x in
              let model_accepts = Queue.length model < cap in
              if model_accepts then Queue.push x model;
              accepted = model_accepts
          | None -> R.dequeue r = Queue.take_opt model)
        ops
      && R.length r = Queue.length model)

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo;
    Alcotest.test_case "capacity rounding" `Quick test_capacity_rounding;
    Alcotest.test_case "full ring rejects" `Quick test_full_rejects;
    Alcotest.test_case "bursts" `Quick test_bursts;
    Alcotest.test_case "index wraparound" `Quick test_wraparound;
    Alcotest.test_case "SPSC producer contract enforced" `Quick test_spsc_contract_enforced;
    Alcotest.test_case "MPSC accepts all producers" `Quick test_mpsc_accepts_all_producers;
    Alcotest.test_case "MPSC drop accounting" `Quick test_mpsc_drop_not_counted_as_accepted;
    QCheck_alcotest.to_alcotest ring_model_prop;
  ]
