(* Tests for the syscall shim, the x86-64 numbering, and the 30-app
   requirement dataset (Table 1, Figs 5 and 7). *)

module Sysno = Uksyscall.Sysno
module Shim = Uksyscall.Shim
module Appdb = Uksyscall.Appdb
module Errno = Uksyscall.Fs_errno

let test_sysno_table () =
  Alcotest.(check int) "range matches the paper's heatmap" 313 Sysno.max_sysno;
  Alcotest.(check string) "0 = read" "read" (Sysno.name 0);
  Alcotest.(check string) "1 = write" "write" (Sysno.name 1);
  Alcotest.(check string) "57 = fork" "fork" (Sysno.name 57);
  Alcotest.(check string) "313 = finit_module" "finit_module" (Sysno.name 313);
  Alcotest.(check (option int)) "reverse lookup" (Some 41) (Sysno.number "socket");
  Alcotest.(check (option int)) "unknown" None (Sysno.number "frobnicate");
  Alcotest.(check int) "all entries" 314 (List.length Sysno.all)

let test_dispatch_costs () =
  (* Table 1 through the shim. *)
  Alcotest.(check int) "native link" 4 (Shim.dispatch_cost Shim.Native_link);
  Alcotest.(check int) "binary compat" 84 (Shim.dispatch_cost Shim.Binary_compat);
  Alcotest.(check int) "linux" 222 (Shim.dispatch_cost Shim.Linux_vm);
  Alcotest.(check int) "linux no mitigations" 154 (Shim.dispatch_cost Shim.Linux_vm_nomitig)

let test_shim_register_call () =
  let clock = Uksim.Clock.create () in
  let shim = Shim.create ~clock ~mode:Shim.Native_link in
  Shim.register shim ~sysno:39 (fun _ -> Ok 1234) (* getpid *);
  (match Shim.call shim ~sysno:39 [||] with
  | Ok 1234 -> ()
  | _ -> Alcotest.fail "handler result");
  Alcotest.(check int) "dispatch charged" 4 (Uksim.Clock.cycles clock);
  Alcotest.(check bool) "supports" true (Shim.supports shim 39);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Shim.register: duplicate handler for getpid (sysno 39)") (fun () ->
      Shim.register shim ~sysno:39 (fun _ -> Ok 0));
  Alcotest.check_raises "out of range names the range"
    (Invalid_argument
       (Printf.sprintf "Shim.register: sysno 999 out of range (0..%d = %s..%s)" Sysno.max_sysno
          (Sysno.name 0) (Sysno.name Sysno.max_sysno))) (fun () ->
      Shim.register shim ~sysno:999 (fun _ -> Ok 0))

let test_shim_enosys () =
  let clock = Uksim.Clock.create () in
  let shim = Shim.create ~clock ~mode:Shim.Binary_compat in
  (match Shim.call shim ~sysno:57 [||] (* fork *) with
  | Error Errno.Enosys -> ()
  | _ -> Alcotest.fail "unregistered syscall must ENOSYS");
  (match Shim.call shim ~sysno:57 [||] with Error _ -> () | Ok _ -> Alcotest.fail "again");
  Alcotest.(check (list (pair int int))) "enosys accounting" [ (57, 2) ] (Shim.enosys_hits shim);
  Alcotest.(check int) "cost still charged" (2 * 84) (Uksim.Clock.cycles clock);
  Alcotest.(check int) "calls counted" 2 (Shim.calls_made shim)

let test_shim_stub () =
  let clock = Uksim.Clock.create () in
  let shim = Shim.create ~clock ~mode:Shim.Native_link in
  Shim.register_stub shim ~sysno:309 ~ret:0 (* getcpu, the paper's example *);
  match Shim.call shim ~sysno:309 [||] with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "stub"

let test_appdb_counts () =
  Alcotest.(check int) "30 applications" 30 (List.length Appdb.apps);
  Alcotest.(check int) "146 supported syscalls (§4.1)" 146
    (List.length Appdb.unikraft_supported)

let test_appdb_heatmap () =
  let hm = Appdb.heatmap () in
  Alcotest.(check int) "one cell per syscall" 314 (List.length hm);
  let needed = List.filter (fun c -> c.Appdb.needed_by > 0) hm in
  (* "more than half the syscalls are not even needed" *)
  Alcotest.(check bool) "under half needed" true (List.length needed < 157);
  let universal = List.filter (fun c -> c.Appdb.needed_by = 30) hm in
  Alcotest.(check bool) "read/write universal" true
    (List.exists (fun c -> c.Appdb.sname = "read") universal
    && List.exists (fun c -> c.Appdb.sname = "write") universal)

let test_appdb_coverage_monotone () =
  (* Fig 7: implementing the next-most-wanted syscalls only helps. *)
  List.iter
    (fun c ->
      let open Appdb in
      if not (c.now <= c.plus5 && c.plus5 <= c.plus10 && c.plus10 <= c.plus15 && c.plus15 <= 1.0)
      then Alcotest.failf "%s: coverage not monotone" c.app)
    (Appdb.coverage ())

let test_appdb_mostly_green () =
  (* Fig 7's first take-away: all apps are close to full support. *)
  List.iter
    (fun c ->
      if c.Appdb.now < 0.75 then
        Alcotest.failf "%s: only %.0f%% supported" c.Appdb.app (100.0 *. c.Appdb.now))
    (Appdb.coverage ())

let test_appdb_processes_unsupported () =
  (* Unikraft has no processes: fork/execve must be outside the set. *)
  let module I = Set.Make (Int) in
  let s = I.of_list Appdb.unikraft_supported in
  let n name = Option.get (Sysno.number name) in
  Alcotest.(check bool) "no fork" false (I.mem (n "fork") s);
  Alcotest.(check bool) "no execve" false (I.mem (n "execve") s);
  Alcotest.(check bool) "no epoll_wait (wip at paper time)" false (I.mem (n "epoll_wait") s);
  Alcotest.(check bool) "read supported" true (I.mem (n "read") s);
  Alcotest.(check bool) "socket supported" true (I.mem (n "socket") s)

let test_appdb_install () =
  let clock = Uksim.Clock.create () in
  let shim = Shim.create ~clock ~mode:Shim.Native_link in
  Appdb.install_supported shim;
  Alcotest.(check int) "all supported registered" 146 (Shim.supported_count shim);
  match Shim.call shim ~sysno:(Option.get (Sysno.number "getpid")) [||] with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "stubbed syscall callable"

let test_most_wanted () =
  let top5 = Appdb.most_wanted_missing 5 in
  Alcotest.(check int) "five returned" 5 (List.length top5);
  (* They must all be unsupported and wanted by many apps. *)
  let module I = Set.Make (Int) in
  let s = I.of_list Appdb.unikraft_supported in
  List.iter (fun n -> if I.mem n s then Alcotest.fail "already supported") top5

let test_tracer_and_histogram () =
  (* The strace-style instrument behind the paper's dynamic analysis. *)
  let clock = Uksim.Clock.create () in
  let shim = Shim.create ~clock ~mode:Shim.Native_link in
  Appdb.install_supported shim;
  let traced = ref [] in
  Shim.set_tracer shim (Some (fun n -> traced := n :: !traced));
  ignore (Shim.call shim ~sysno:0 [||]);
  ignore (Shim.call shim ~sysno:1 [||]);
  ignore (Shim.call shim ~sysno:0 [||]);
  Alcotest.(check (list int)) "trace order" [ 0; 1; 0 ] (List.rev !traced);
  Alcotest.(check (list (pair int int))) "histogram" [ (0, 2); (1, 1) ]
    (Shim.call_counts shim);
  Shim.set_tracer shim None;
  ignore (Shim.call shim ~sysno:0 [||]);
  Alcotest.(check int) "tracer detached" 3 (List.length !traced)

let test_required_error () =
  Alcotest.check_raises "unknown app"
    (Invalid_argument "Appdb.required: unknown application no-such-app") (fun () ->
      ignore (Appdb.required "no-such-app"))

let test_shim_trace_source () =
  Uktrace.Registry.clear ();
  let clock = Uksim.Clock.create () in
  let shim = Shim.create ~clock ~mode:Shim.Native_link in
  Shim.register shim ~sysno:39 (fun _ -> Ok 1) (* getpid *);
  ignore (Shim.call shim ~sysno:39 [||]);
  ignore (Shim.call shim ~sysno:39 [||]);
  ignore (Shim.call shim ~sysno:57 [||]) (* fork: ENOSYS *);
  Alcotest.(check int) "enosys_count" 1 (Shim.enosys_count shim);
  let snap = Uktrace.Registry.snapshot () in
  match Uktrace.Registry.find snap "uksyscall.shim" with
  | None -> Alcotest.fail "uksyscall.shim source not registered"
  | Some samples ->
      let count k =
        match List.assoc_opt k samples with Some (Uktrace.Metric.Count n) -> n | _ -> -1
      in
      Alcotest.(check int) "calls" 3 (count "calls");
      Alcotest.(check int) "enosys" 1 (count "enosys");
      Alcotest.(check int) "calls.getpid keyed by name" 2 (count "calls.getpid");
      Alcotest.(check int) "calls.fork keyed by name" 1 (count "calls.fork");
      Uktrace.Registry.reset ();
      Alcotest.(check int) "reset zeroes the window" 0 (Shim.enosys_count shim)

(* Satellite: HermiTux-style rewriting must preserve the architectural
   outcome (instructions retired, syscalls issued, ENOSYS stubs hit) while
   strictly shrinking the syscall-boundary cost whenever a trap site
   exists. *)
module B = Uksyscall.Binary

let binary_of_ops ops =
  B.assemble
    (List.map
       (fun (is_syscall, n) ->
         if is_syscall then B.Syscall (n mod (Sysno.max_sysno + 1))
         else B.Add (n mod 8, (n + 1) mod 8))
       ops
    @ [ B.Ret ])

let test_rewrite_preserves_results =
  QCheck.Test.make ~name:"rewrite: same results, strictly fewer trap cycles" ~count:100
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let b = binary_of_ops ops in
      let run bin =
        let clock = Uksim.Clock.create () in
        let shim = Shim.create ~clock ~mode:Shim.Native_link in
        Appdb.install_supported shim;
        B.execute ~clock ~shim bin
      in
      let plain = run b in
      let rewritten = run (B.rewrite b) in
      plain.B.instructions = rewritten.B.instructions
      && plain.B.syscalls = rewritten.B.syscalls
      && plain.B.enosys = rewritten.B.enosys
      && if plain.B.syscalls > 0 then rewritten.B.cycles < plain.B.cycles
         else rewritten.B.cycles = plain.B.cycles)

let suite =
  [
    Alcotest.test_case "x86-64 syscall table" `Quick test_sysno_table;
    Alcotest.test_case "dispatch costs (Table 1)" `Quick test_dispatch_costs;
    Alcotest.test_case "register and call" `Quick test_shim_register_call;
    Alcotest.test_case "ENOSYS stubbing" `Quick test_shim_enosys;
    Alcotest.test_case "trivial stubs" `Quick test_shim_stub;
    Alcotest.test_case "appdb counts" `Quick test_appdb_counts;
    Alcotest.test_case "heatmap shape (Fig 5)" `Quick test_appdb_heatmap;
    Alcotest.test_case "coverage monotone (Fig 7)" `Quick test_appdb_coverage_monotone;
    Alcotest.test_case "apps mostly supported (Fig 7)" `Quick test_appdb_mostly_green;
    Alcotest.test_case "process syscalls unsupported" `Quick test_appdb_processes_unsupported;
    Alcotest.test_case "install on shim" `Quick test_appdb_install;
    Alcotest.test_case "most wanted missing" `Quick test_most_wanted;
    Alcotest.test_case "strace tracer + histogram" `Quick test_tracer_and_histogram;
    Alcotest.test_case "unknown app error" `Quick test_required_error;
    Alcotest.test_case "shim uktrace source" `Quick test_shim_trace_source;
    QCheck_alcotest.to_alcotest test_rewrite_preserves_results;
  ]
