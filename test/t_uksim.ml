(* Tests for the simulation substrate: clock, RNG, heap, engine, stats. *)

open Uksim

let test_clock_basics () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at zero" 0 (Clock.cycles c);
  Clock.advance c 360;
  Alcotest.(check int) "advance" 360 (Clock.cycles c);
  Alcotest.(check (float 0.001)) "ns conversion at 3.6GHz" 100.0 (Clock.ns c);
  Clock.advance_ns c 100.0;
  Alcotest.(check int) "advance_ns rounds up" 720 (Clock.cycles c);
  Clock.reset c;
  Alcotest.(check int) "reset" 0 (Clock.cycles c)

let test_clock_negative () =
  let c = Clock.create () in
  Alcotest.check_raises "negative advance" (Invalid_argument "Clock.advance: negative cycles")
    (fun () -> Clock.advance c (-1))

let test_clock_span () =
  let c = Clock.create () in
  Clock.advance c 100;
  let s = Clock.start c in
  Clock.advance c 250;
  Alcotest.(check int) "span cycles" 250 (Clock.elapsed_cycles c s)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let r = Rng.create 99 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in r 5 9 in
    if v < 5 || v > 9 then Alcotest.failf "int_in out of bounds: %d" v
  done;
  for _ = 1 to 100 do
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xa = Rng.next a and xb = Rng.next b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_rng_errors () =
  let r = Rng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "empty choose" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose r [||]))

let test_heapq_order () =
  let h = Heapq.create () in
  List.iter (fun (k, v) -> Heapq.push h k v) [ (5, "e"); (1, "a"); (3, "c"); (2, "b"); (4, "d") ];
  let out = ref [] in
  let rec drain () =
    match Heapq.pop h with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c"; "d"; "e" ] (List.rev !out)

let test_heapq_fifo_ties () =
  let h = Heapq.create () in
  List.iter (fun v -> Heapq.push h 1 v) [ "first"; "second"; "third" ];
  let take () = match Heapq.pop h with Some (_, v) -> v | None -> "" in
  let a = take () in
  let b = take () in
  let c = take () in
  Alcotest.(check (list string)) "FIFO among equal keys" [ "first"; "second"; "third" ]
    [ a; b; c ]

let heapq_sorts_prop =
  QCheck.Test.make ~name:"heapq pops in nondecreasing key order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun keys ->
      let h = Heapq.create () in
      List.iter (fun k -> Heapq.push h k k) keys;
      let rec drain acc =
        match Heapq.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let test_engine_ordering () =
  let c = Clock.create () in
  let e = Engine.create c in
  let log = ref [] in
  Engine.after e 100 (fun () -> log := "b" :: !log);
  Engine.after e 50 (fun () -> log := "a" :: !log);
  Engine.after e 150 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 150 (Clock.cycles c)

let test_engine_until () =
  let c = Clock.create () in
  let e = Engine.create c in
  let fired = ref 0 in
  Engine.after e 100 (fun () -> incr fired);
  Engine.after e 300 (fun () -> incr fired);
  Engine.run ~until:200 e;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check int) "clock advanced to limit" 200 (Clock.cycles c);
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "second fired" 2 !fired

let test_engine_cascade () =
  let c = Clock.create () in
  let e = Engine.create c in
  let log = ref [] in
  Engine.after e 10 (fun () ->
      log := 1 :: !log;
      Engine.after e 10 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "events can schedule events" [ 1; 2 ] (List.rev !log);
  Alcotest.(check int) "cascade timing" 20 (Clock.cycles c)

let test_engine_past () =
  let c = Clock.create () in
  let e = Engine.create c in
  Clock.advance c 100;
  Alcotest.check_raises "past event rejected" (Invalid_argument "Engine.at: event in the past")
    (fun () -> Engine.at e 50 (fun () -> ()))

let test_engine_after_edges () =
  let c = Clock.create () in
  let e = Engine.create c in
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Engine.after: negative delay") (fun () ->
      Engine.after e (-1) (fun () -> ()));
  Alcotest.(check int) "nothing was scheduled" 0 (Engine.pending e);
  (* Zero delay is valid: fires at the current cycle. *)
  let fired = ref false in
  Engine.after e 0 (fun () -> fired := true);
  Engine.run e;
  Alcotest.(check bool) "zero-delay event fired" true !fired;
  Alcotest.(check int) "clock did not move" 0 (Clock.cycles c);
  (* [at] exactly at the current cycle is valid too (only the strict past
     raises). *)
  Clock.advance c 10;
  Engine.at e 10 (fun () -> ());
  Alcotest.(check int) "boundary event accepted" 1 (Engine.pending e)

let test_stats_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 0.01)) "mean" 50.5 (Stats.mean s);
  Alcotest.(check (float 0.01)) "median" 50.5 (Stats.median s);
  Alcotest.(check (float 0.5)) "p99" 99.0 (Stats.percentile s 99.0);
  Alcotest.(check (float 0.01)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 0.01)) "max" 100.0 (Stats.max s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "mean of empty is nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check int) "count" 0 (Stats.count s)

let test_stats_throughput () =
  Alcotest.(check (float 0.01)) "1000 events in 1ms = 1M/s" 1_000_000.0
    (Stats.throughput_per_sec ~events:1000 ~elapsed_ns:1e6)

let test_units () =
  Alcotest.(check int) "kib" 2048 (Units.kib 2);
  Alcotest.(check string) "pp_bytes MB" "1.4MB" (Fmt.str "%a" Units.pp_bytes 1468006);
  Alcotest.(check string) "pp_ns ms" "3.00ms" (Fmt.str "%a" Units.pp_ns 3.0e6)

let test_cost_table1 () =
  (* The paper's Table 1 anchors. *)
  Alcotest.(check int) "function call = 4 cycles" 4 Cost.function_call;
  Alcotest.(check int) "unikraft syscall = 84" 84 Cost.syscall_unikraft;
  Alcotest.(check int) "linux syscall = 222" 222 Cost.syscall_linux;
  Alcotest.(check int) "linux no-mitigations = 154" 154 Cost.syscall_linux_nomitig

let suite =
  [
    Alcotest.test_case "clock basics" `Quick test_clock_basics;
    Alcotest.test_case "clock rejects negative" `Quick test_clock_negative;
    Alcotest.test_case "clock spans" `Quick test_clock_span;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng errors" `Quick test_rng_errors;
    Alcotest.test_case "heapq ordering" `Quick test_heapq_order;
    Alcotest.test_case "heapq FIFO ties" `Quick test_heapq_fifo_ties;
    QCheck_alcotest.to_alcotest heapq_sorts_prop;
    Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine until" `Quick test_engine_until;
    Alcotest.test_case "engine cascade" `Quick test_engine_cascade;
    Alcotest.test_case "engine rejects past" `Quick test_engine_past;
    Alcotest.test_case "engine after: negative/zero edges" `Quick test_engine_after_edges;
    Alcotest.test_case "stats percentiles" `Quick test_stats_percentiles;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "stats throughput" `Quick test_stats_throughput;
    Alcotest.test_case "units formatting" `Quick test_units;
    Alcotest.test_case "cost table anchors (Table 1)" `Quick test_cost_table1;
  ]
