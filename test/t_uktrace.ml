(* Tests for the uktrace metrics registry, tracepoints and the
   determinism guarantee. *)

module M = Uktrace.Metric
module Source = Uktrace.Source
module Registry = Uktrace.Registry
module Tracer = Uktrace.Tracer
module Cluster = Ukapps.Cluster

let count = function Some (M.Count n) -> n | _ -> Alcotest.fail "expected a Count sample"

(* --- metric primitives --------------------------------------------------- *)

let test_counter_gauge () =
  let c = M.Counter.create () in
  M.Counter.incr c;
  M.Counter.add c 41;
  Alcotest.(check int) "counter" 42 (M.Counter.get c);
  Alcotest.(check bool) "counter value" true (M.Counter.value c = M.Count 42);
  M.Counter.reset c;
  Alcotest.(check int) "counter reset" 0 (M.Counter.get c);
  let g = M.Gauge.create () in
  M.Gauge.set g 3.5;
  M.Gauge.add g 1.0;
  Alcotest.(check (float 1e-9)) "gauge" 4.5 (M.Gauge.get g);
  (* diff semantics: counters subtract, gauges keep the newer reading *)
  Alcotest.(check bool) "count diff" true
    (M.diff_value ~before:(M.Count 10) ~after:(M.Count 42) = M.Count 32);
  Alcotest.(check bool) "level diff keeps after" true
    (M.diff_value ~before:(M.Level 10.0) ~after:(M.Level 4.5) = M.Level 4.5)

let test_histogram_edges () =
  let h = M.Histogram.create () in
  (* bucket 0: non-positive; bucket 1+floor(log2 v) otherwise, clamped *)
  Alcotest.(check int) "bucket of 0" 0 (M.Histogram.bucket_of 0);
  Alcotest.(check int) "bucket of -5" 0 (M.Histogram.bucket_of (-5));
  Alcotest.(check int) "bucket of 1" 1 (M.Histogram.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 2 (M.Histogram.bucket_of 2);
  Alcotest.(check int) "bucket of 3" 2 (M.Histogram.bucket_of 3);
  Alcotest.(check int) "max_int clamps to last bucket" (M.Histogram.n_buckets - 1)
    (M.Histogram.bucket_of max_int);
  M.Histogram.observe h 0;
  M.Histogram.observe h 1;
  M.Histogram.observe h max_int;
  Alcotest.(check int) "count" 3 (M.Histogram.count h);
  Alcotest.(check int) "max tracks largest" max_int (M.Histogram.max h);
  Alcotest.(check int) "bucket 0 holds the zero" 1 (M.Histogram.bucket_count h 0);
  Alcotest.(check int) "bucket 1 holds the one" 1 (M.Histogram.bucket_count h 1);
  Alcotest.(check int) "last bucket holds max_int" 1
    (M.Histogram.bucket_count h (M.Histogram.n_buckets - 1));
  (* bucket bounds partition the axis: every bucket's hi + 1 = next lo *)
  for b = 1 to M.Histogram.n_buckets - 2 do
    let _, hi = M.Histogram.bucket_bounds b in
    let lo', _ = M.Histogram.bucket_bounds (b + 1) in
    Alcotest.(check int) (Printf.sprintf "bucket %d/%d contiguous" b (b + 1)) (hi + 1) lo'
  done;
  M.Histogram.reset h;
  Alcotest.(check int) "reset empties" 0 (M.Histogram.count h)

(* --- registry ------------------------------------------------------------ *)

let mk_src ?reset ~subsystem ~name cell =
  Source.make ~subsystem ~name ?reset (fun () -> [ ("n", M.Count !cell) ])

let test_registry_register_diff () =
  Registry.clear ();
  let a = ref 0 in
  Registry.register (mk_src ~subsystem:"regtest" ~name:"a" a);
  a := 2;
  let before = Registry.snapshot () in
  a := 9;
  let after = Registry.snapshot () in
  let d = Registry.diff ~before ~after in
  Alcotest.(check int) "window delta" 7 (count (Registry.find_sample d "regtest.a" "n"));
  (* duplicate ids get a #n suffix instead of colliding *)
  let b = ref 5 in
  Registry.register (mk_src ~subsystem:"regtest" ~name:"a" b);
  let s = Registry.snapshot () in
  Alcotest.(check int) "deduped uid" 5 (count (Registry.find_sample s "regtest.a#2" "n"));
  Registry.clear ()

let test_registry_clear_generations () =
  (* The trap this guards: an experiment snapshots, a trial boundary
     clears the registry, a recreated component reuses the uid — the
     diff must NOT subtract the dead instance's counts from the new
     one's. *)
  Registry.clear ();
  let a = ref 5 in
  Registry.register (mk_src ~subsystem:"gentest" ~name:"s" a);
  let before = Registry.snapshot () in
  Registry.clear ();
  let a' = ref 3 in
  Registry.register (mk_src ~subsystem:"gentest" ~name:"s" a');
  let after = Registry.snapshot () in
  let d = Registry.diff ~before ~after in
  Alcotest.(check int) "no cross-trial subtraction" 3
    (count (Registry.find_sample d "gentest.s" "n"));
  Registry.clear ()

let test_registry_sticky_reset () =
  Registry.clear ();
  let a = ref 7 in
  let resets = ref 0 in
  Registry.register ~sticky:true
    (mk_src ~subsystem:"sticky" ~name:"s" ~reset:(fun () -> incr resets; a := 0) a);
  Registry.register (mk_src ~subsystem:"plain" ~name:"s" (ref 1));
  Registry.reset ();
  Alcotest.(check int) "reset ran" 1 !resets;
  Alcotest.(check int) "reset zeroed" 0 !a;
  Registry.clear ();
  let s = Registry.snapshot () in
  Alcotest.(check bool) "sticky survives clear" true (Registry.find s "sticky.s" <> None);
  Alcotest.(check bool) "plain dropped by clear" true (Registry.find s "plain.s" = None);
  Registry.clear ()

let test_registry_owned_and_prune () =
  Registry.clear ();
  let c = Registry.counter ~subsystem:"owned_t" "hits" in
  let g = Registry.gauge ~subsystem:"owned_t" "level" in
  M.Counter.add c 3;
  M.Gauge.set g 1.5;
  let s = Registry.snapshot () in
  Alcotest.(check int) "owned counter visible" 3
    (count (Registry.find_sample s "owned_t.metrics" "hits"));
  (* prune drops zero samples and then empty sources *)
  M.Counter.reset c;
  M.Gauge.set g 0.0;
  let p = Registry.prune (Registry.snapshot ()) in
  Alcotest.(check bool) "all-zero source pruned" true (Registry.find p "owned_t.metrics" = None);
  Registry.clear ()

(* --- tracer -------------------------------------------------------------- *)

let test_span_nesting_flame () =
  let t = Tracer.create () in
  Tracer.set_enabled t true;
  Tracer.begin_span t ~cat:"a" ~ts:0 "outer";
  Tracer.begin_span t ~cat:"b" ~ts:10 "inner";
  Tracer.attribute t ~core:0 ~cycles:7;
  Tracer.end_span t ~ts:30 ();
  Tracer.attribute t ~core:0 ~cycles:4;
  Tracer.end_span t ~ts:100 ();
  Tracer.attribute t ~core:0 ~cycles:9;
  (* fold: inner self = 20, outer self = 100 - 20 = 80 *)
  Alcotest.(check (list (pair string int)))
    "flamegraph self cycles"
    [ ("a:outer", 80); ("a:outer;b:inner", 20) ]
    (Tracer.flame t);
  Alcotest.(check int) "spans closed" 2 (Tracer.spans_closed t);
  (* sampler: cycles charge the innermost open span's category *)
  Alcotest.(check (list (pair string int)))
    "attribution" [ ("unattributed", 9); ("b", 7); ("a", 4) ]
    (List.sort compare (Tracer.attribution t) |> List.rev);
  (* unmatched end is ignored, not an error *)
  Tracer.end_span t ~ts:200 ();
  Alcotest.(check int) "unmatched end ignored" 2 (Tracer.spans_closed t)

let test_ring_overflow_drops_oldest () =
  let t = Tracer.create ~capacity:4 () in
  Tracer.set_enabled t true;
  for i = 0 to 5 do
    Tracer.instant t ~cat:"x" ~ts:i (Printf.sprintf "e%d" i)
  done;
  let evs = Tracer.events t in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length evs);
  Alcotest.(check (list string)) "oldest dropped first" [ "e2"; "e3"; "e4"; "e5" ]
    (List.map (fun (e : Tracer.event) -> e.Tracer.name) evs);
  Alcotest.(check int) "drops counted" 2 (Tracer.dropped t);
  Alcotest.(check int) "recorded counts all" 6 (Tracer.recorded t);
  (* overflow does not corrupt the fold: spans outliving the ring still fold *)
  let t2 = Tracer.create ~capacity:2 () in
  Tracer.set_enabled t2 true;
  Tracer.begin_span t2 ~cat:"a" ~ts:0 "s";
  for i = 0 to 9 do
    Tracer.instant t2 ~cat:"x" ~ts:i "noise"
  done;
  Tracer.end_span t2 ~ts:50 ();
  Alcotest.(check (list (pair string int))) "fold exact under overflow" [ ("a:s", 50) ]
    (Tracer.flame t2)

let test_span_disabled_is_passthrough () =
  let t = Tracer.create () in
  let clock = Uksim.Clock.create () in
  let r = Tracer.span t clock ~cat:"c" "work" (fun () -> Uksim.Clock.advance clock 10; 42) in
  Alcotest.(check int) "result passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (Tracer.recorded t);
  Tracer.set_enabled t true;
  let _ = Tracer.span t clock ~cat:"c" "work" (fun () -> Uksim.Clock.advance clock 5; ()) in
  Alcotest.(check int) "B+E recorded" 2 (Tracer.recorded t);
  Alcotest.(check (list (pair string int))) "span timed on the clock" [ ("c:work", 5) ]
    (Tracer.flame t)

(* --- determinism: tracing must be invisible to the simulation ------------ *)

let test_tracing_preserves_trace_hash () =
  let go () =
    let c = Cluster.create ~seed:11 ~n:2 () in
    ignore (Cluster.add_httpd c (Ukapps.Httpd.In_memory [ ("/x", "hello") ]));
    let r =
      Cluster.run_httpd_load c ~connections_per_core:2 ~requests_per_core:50 ~path:"/x" ()
    in
    (Cluster.trace_hash c, r.Ukapps.Wrk.rate_per_sec, r.Ukapps.Wrk.errors)
  in
  let h_off, rate_off, e_off = go () in
  let t = Tracer.default in
  Tracer.reset t;
  Tracer.set_enabled t true;
  let h_on, rate_on, e_on = Fun.protect go ~finally:(fun () -> Tracer.set_enabled t false) in
  Alcotest.(check bool) "tracer saw the workload" true (Tracer.recorded t > 0);
  Alcotest.(check bool) "spans closed" true (Tracer.spans_closed t > 0);
  Tracer.reset t;
  Alcotest.(check int) "trace hash unchanged by tracing" h_off h_on;
  Alcotest.(check (float 0.0)) "rate unchanged by tracing" rate_off rate_on;
  Alcotest.(check int) "no errors either way" 0 (e_off + e_on)

(* --- per-trial resets (contention counters must not leak) ---------------- *)

let test_trial_resets () =
  let s = Uksim.Stats.create () in
  Uksim.Stats.add s 5.0;
  Uksim.Stats.add s 7.0;
  Uksim.Stats.clear s;
  Alcotest.(check int) "stats cleared" 0 (Uksim.Stats.count s);
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let m = Uklock.Lock.Mutex.create (Uklock.Lock.Threaded sched) in
  ignore
    (Uksched.Sched.spawn sched (fun () ->
         Uklock.Lock.Mutex.lock m;
         Uksched.Sched.sleep_ns 1000.0;
         Uklock.Lock.Mutex.unlock m));
  ignore
    (Uksched.Sched.spawn sched (fun () ->
         Uklock.Lock.Mutex.lock m;
         Uklock.Lock.Mutex.unlock m));
  Uksched.Sched.run sched;
  Alcotest.(check bool) "contention observed" true (fst (Uklock.Lock.Mutex.contention m) > 0);
  Uklock.Lock.Mutex.reset_contention m;
  Alcotest.(check (pair int int)) "mutex contention cleared" (0, 0)
    (Uklock.Lock.Mutex.contention m);
  let l = Uklock.Lock.Spin.create ~name:"t" () in
  let c0 = Uksim.Clock.create () and c1 = Uksim.Clock.create () in
  Uklock.Lock.Spin.acquire l c0 ~hold:1000;
  Uklock.Lock.Spin.acquire l c1 ~hold:500;
  Uklock.Lock.Spin.reset_stats l;
  let st = Uklock.Lock.Spin.stats l in
  Alcotest.(check int) "spin stats cleared" 0
    (st.Uklock.Lock.Spin.acquisitions + st.Uklock.Lock.Spin.contended
   + st.Uklock.Lock.Spin.wait_cycles)

let suite =
  [
    Alcotest.test_case "metric: counter/gauge diff semantics" `Quick test_counter_gauge;
    Alcotest.test_case "metric: histogram edges (0, 1, max_int)" `Quick test_histogram_edges;
    Alcotest.test_case "registry: register, snapshot, window diff" `Quick
      test_registry_register_diff;
    Alcotest.test_case "registry: no diff across clear (generations)" `Quick
      test_registry_clear_generations;
    Alcotest.test_case "registry: sticky sources and reset" `Quick test_registry_sticky_reset;
    Alcotest.test_case "registry: owned metrics and prune" `Quick test_registry_owned_and_prune;
    Alcotest.test_case "tracer: span nesting, flame fold, sampler" `Quick
      test_span_nesting_flame;
    Alcotest.test_case "tracer: ring overflow drops oldest" `Quick
      test_ring_overflow_drops_oldest;
    Alcotest.test_case "tracer: disabled is passthrough" `Quick test_span_disabled_is_passthrough;
    Alcotest.test_case "tracer: trace_hash invariant under tracing (4-core smp)" `Quick
      test_tracing_preserves_trace_hash;
    Alcotest.test_case "trial resets: stats, mutex, spin" `Quick test_trial_resets;
  ]
