(* Tests for the ukfault fault-injection plane: deterministic network
   faults, block-device error/torn-write injection, the allocator OOM
   shim, the watchdog, and the restart supervisor. *)

module Fn = Ukfault.Faultnet
module Fb = Ukfault.Faultblk
module Fa = Ukfault.Faultalloc
module B = Ukblock.Blockdev
module Nd = Uknetdev.Netdev
module Nb = Uknetdev.Netbuf

let sim () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  (clock, engine)

(* A loopback pair with side [a] wrapped in a fault injector; side [b]
   configured to receive into fresh buffers. *)
let fault_link ?(seed = 42) plan =
  let clock, engine = sim () in
  let da, db = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let rng = Uksim.Rng.create seed in
  let fn = Fn.wrap ~clock ~engine ~rng ~plan da in
  db.Nd.configure_queue ~qid:0
    { Nd.rx_path = Nd.Zero_copy; mode = Nd.Polling; rx_handler = None };
  (clock, engine, fn, db)

let frame i = Nb.of_bytes (Bytes.of_string (Printf.sprintf "frame-%03d" i))

let tx_frames fn n =
  let dev = Fn.dev fn in
  for i = 1 to n do
    ignore (dev.Nd.tx_burst ~qid:0 [| frame i |])
  done

let drain engine db =
  Uksim.Engine.run engine;
  let rec go acc =
    match db.Nd.rx_burst ~qid:0 ~max:64 with
    | [] -> List.rev acc
    | pkts -> go (List.rev_append (List.map (fun nb -> Bytes.to_string (Nb.to_payload nb)) pkts) acc)
  in
  go []

let test_faultnet_passthrough () =
  let _, engine, fn, db = fault_link (Fn.plan ()) in
  tx_frames fn 10;
  let got = drain engine db in
  Alcotest.(check int) "all frames delivered" 10 (List.length got);
  Alcotest.(check int) "forwarded" 10 (Fn.stats fn).Fn.forwarded;
  Alcotest.(check int) "no drops" 0 (Fn.stats fn).Fn.dropped

let test_faultnet_drop_every () =
  let _, engine, fn, db = fault_link (Fn.plan ~drop_every:2 ()) in
  tx_frames fn 10;
  let got = drain engine db in
  Alcotest.(check int) "every 2nd frame dropped" 5 (List.length got);
  Alcotest.(check int) "drops counted" 5 (Fn.stats fn).Fn.dropped;
  (* Systematic pattern: the odd-numbered frames survive. *)
  Alcotest.(check (list string)) "deterministic pattern"
    [ "frame-001"; "frame-003"; "frame-005"; "frame-007"; "frame-009" ] got

let test_faultnet_duplicate () =
  let _, engine, fn, db = fault_link (Fn.plan ~duplicate:1.0 ()) in
  tx_frames fn 5;
  let got = drain engine db in
  Alcotest.(check int) "every frame doubled" 10 (List.length got);
  Alcotest.(check int) "dups counted" 5 (Fn.stats fn).Fn.duplicated

let test_faultnet_corrupt () =
  let _, engine, fn, db = fault_link (Fn.plan ~corrupt:1.0 ()) in
  tx_frames fn 1;
  match drain engine db with
  | [ got ] ->
      let orig = "frame-001" in
      Alcotest.(check int) "same length" (String.length orig) (String.length got);
      let flipped = ref 0 in
      String.iteri
        (fun i c ->
          let x = Char.code c lxor Char.code orig.[i] in
          let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1) in
          flipped := !flipped + popcount x)
        got;
      Alcotest.(check int) "exactly one bit flipped" 1 !flipped
  | got -> Alcotest.failf "expected 1 frame, got %d" (List.length got)

let test_faultnet_reorder () =
  let _, engine, fn, db = fault_link (Fn.plan ~reorder:1.0 ~reorder_delay_ns:1.0e6 ()) in
  (* Frame 1 is held back; send a clean burst behind it through a second
     injector sharing the wire? Simpler: two frames, first reordered by
     construction (reorder:1.0 applies to both, so both are delayed but
     keep their relative order) — instead check the delay is really taken
     from the engine. *)
  tx_frames fn 2;
  let got = drain engine db in
  Alcotest.(check int) "delayed frames still arrive" 2 (List.length got);
  Alcotest.(check int) "reorders counted" 2 (Fn.stats fn).Fn.reordered

let test_faultnet_flap () =
  (* 1 ms period with the last 0.5 ms down: frames sent in the down window
     vanish. *)
  let clock, engine, fn, db =
    fault_link (Fn.plan ~flap_period_ns:1.0e6 ~flap_down_ns:0.5e6 ())
  in
  Alcotest.(check bool) "link starts up" true (Fn.link_up fn);
  tx_frames fn 1;
  Uksim.Clock.advance_ns clock 0.6e6; (* inside the down window *)
  Alcotest.(check bool) "link down mid-period" false (Fn.link_up fn);
  tx_frames fn 1;
  let got = drain engine db in
  Alcotest.(check int) "only the up-window frame arrived" 1 (List.length got);
  Alcotest.(check int) "flap drop counted" 1 (Fn.stats fn).Fn.flap_dropped

let run_random_schedule seed =
  let _, engine, fn, db =
    fault_link ~seed (Fn.plan ~drop:0.3 ~duplicate:0.2 ~corrupt:0.1 ~reorder:0.1 ())
  in
  tx_frames fn 200;
  let got = drain engine db in
  (Fn.stats fn, got)

let test_faultnet_deterministic () =
  let st1, got1 = run_random_schedule 7 in
  let st2, got2 = run_random_schedule 7 in
  Alcotest.(check bool) "same seed, same stats" true (st1 = st2);
  Alcotest.(check (list string)) "same seed, same delivered frames" got1 got2;
  let st3, _ = run_random_schedule 8 in
  Alcotest.(check bool) "different seed, different schedule" true (st1 <> st3)

(* --- block device ---------------------------------------------------------- *)

let fault_disk ?(seed = 42) plan =
  let clock, _engine = sim () in
  let inner = Ukblock.Virtio_blk.create_ramdisk ~clock () in
  let rng = Uksim.Rng.create seed in
  let fb = Fb.wrap ~clock ~rng ~plan inner in
  (clock, inner, fb)

let test_faultblk_io_error () =
  let _, _, fb = fault_disk (Fb.plan ~io_error:1.0 ()) in
  let dev = Fb.dev fb in
  (match dev.B.write_sync ~lba:0 (Bytes.make 512 'w') with
  | Error B.Eio -> ()
  | Ok () -> Alcotest.fail "write should have failed"
  | Error e -> Alcotest.failf "wrong error: %s" (B.error_to_string e));
  (match dev.B.read_sync ~lba:0 ~sectors:1 with
  | Error B.Eio -> ()
  | _ -> Alcotest.fail "read should have failed");
  Alcotest.(check int) "both injections counted" 2 (Fb.stats fb).Fb.io_errors

let test_faultblk_torn_write () =
  let _, inner, fb = fault_disk (Fb.plan ~torn_write:1.0 ()) in
  let dev = Fb.dev fb in
  let data = Bytes.make (4 * 512) 'T' in
  (match dev.B.write_sync ~lba:0 data with
  | Error B.Eio -> ()
  | _ -> Alcotest.fail "torn write must report failure");
  Alcotest.(check int) "torn write counted" 1 (Fb.stats fb).Fb.torn_writes;
  (* The first half of the sectors reached the medium, the rest did not. *)
  (match inner.B.read_sync ~lba:0 ~sectors:4 with
  | Ok got ->
      Alcotest.(check char) "prefix persisted" 'T' (Bytes.get got 0);
      Alcotest.(check char) "prefix persisted to sector 2" 'T' (Bytes.get got (2 * 512 - 1));
      Alcotest.(check bool) "tail not persisted" true (Bytes.get got (2 * 512) <> 'T')
  | Error e -> Alcotest.failf "backing read failed: %s" (B.error_to_string e))

let test_faultblk_latency_spike () =
  let clock, _, fb = fault_disk (Fb.plan ~latency_spike:1.0 ~spike_ns:5.0e6 ()) in
  let dev = Fb.dev fb in
  let before = Uksim.Clock.ns clock in
  (match dev.B.read_sync ~lba:0 ~sectors:1 with Ok _ -> () | Error _ -> Alcotest.fail "read");
  Alcotest.(check bool) "spike stalled the caller >= 5 ms" true
    (Uksim.Clock.ns clock -. before >= 5.0e6);
  Alcotest.(check int) "spike counted" 1 (Fb.stats fb).Fb.latency_spikes

let test_faultblk_submit_path () =
  let _, _, fb = fault_disk (Fb.plan ~io_error:1.0 ()) in
  let dev = Fb.dev fb in
  let reqs = Array.init 3 (fun i -> B.Read { lba = i; sectors = 1 }) in
  Alcotest.(check int) "all requests accepted" 3 (dev.B.submit reqs);
  Alcotest.(check int) "pending includes synthetic failures" 3 (dev.B.pending ());
  let cs = dev.B.poll_completions ~max:8 in
  Alcotest.(check int) "three completions" 3 (List.length cs);
  List.iter
    (fun c ->
      match c.B.result with
      | Error B.Eio -> ()
      | _ -> Alcotest.fail "expected injected Eio")
    cs;
  Alcotest.(check int) "queue drained" 0 (dev.B.pending ())

(* --- allocator shim -------------------------------------------------------- *)

let test_faultalloc_fail_nth () =
  let clock, _ = sim () in
  let inner = Ukalloc.Tlsf.create ~clock ~base:(1 lsl 20) ~len:(1 lsl 20) in
  let fa = Fa.wrap ~fail_nth:3 inner in
  let a = Fa.alloc fa in
  Alcotest.(check bool) "1st ok" true (Ukalloc.Alloc.uk_malloc a 64 <> None);
  Alcotest.(check bool) "2nd ok" true (Ukalloc.Alloc.uk_malloc a 64 <> None);
  Alcotest.(check bool) "3rd fails" true (Ukalloc.Alloc.uk_malloc a 64 = None);
  Alcotest.(check bool) "4th ok again" true (Ukalloc.Alloc.uk_malloc a 64 <> None);
  Alcotest.(check int) "one injection" 1 (Fa.injected_failures fa);
  Alcotest.(check int) "four attempts" 4 (Fa.attempts fa)

let test_faultalloc_pressure_handler () =
  let clock, _ = sim () in
  let inner = Ukalloc.Tlsf.create ~clock ~base:(1 lsl 20) ~len:(1 lsl 20) in
  let fa = Fa.wrap ~fail_every:2 inner in
  let fired = ref 0 in
  Fa.set_pressure_handler fa (Some (fun () -> incr fired));
  let a = Fa.alloc fa in
  for _ = 1 to 6 do
    ignore (Ukalloc.Alloc.uk_malloc a 32)
  done;
  Alcotest.(check int) "every 2nd attempt failed" 3 (Fa.injected_failures fa);
  Alcotest.(check int) "handler fired each time" 3 !fired;
  Alcotest.(check bool) "pressure latched" true (Fa.under_pressure fa);
  Fa.clear_pressure fa;
  Alcotest.(check bool) "pressure cleared" false (Fa.under_pressure fa)

let test_faultalloc_free_passthrough () =
  let clock, _ = sim () in
  let inner = Ukalloc.Tlsf.create ~clock ~base:(1 lsl 20) ~len:(1 lsl 20) in
  let fa = Fa.wrap ~fail_nth:2 inner in
  let a = Fa.alloc fa in
  let addr = Option.get (Ukalloc.Alloc.uk_malloc a 128) in
  Alcotest.(check bool) "2nd attempt fails" true (Ukalloc.Alloc.uk_malloc a 128 = None);
  Ukalloc.Alloc.uk_free a addr;
  let st = inner.Ukalloc.Alloc.stats () in
  Alcotest.(check int) "inner saw one alloc" 1 st.Ukalloc.Alloc.allocs;
  Alcotest.(check int) "inner saw the free" 1 st.Ukalloc.Alloc.frees

(* --- watchdog -------------------------------------------------------------- *)

let test_watchdog_steady_state () =
  let clock, engine = sim () in
  let wd = Ukos.Watchdog.create ~clock ~engine ~timeout_ns:1.0e6 () in
  (* Pet every 0.4 ms for 10 ms: never bites. *)
  for i = 1 to 25 do
    Uksim.Engine.after_ns engine (float_of_int i *. 0.4e6) (fun () -> Ukos.Watchdog.pet wd)
  done;
  Uksim.Engine.run ~until:(Uksim.Clock.cycles_of_ns 10.0e6) engine;
  Alcotest.(check int) "steady state: zero bites" 0 (Ukos.Watchdog.bites wd);
  Ukos.Watchdog.stop wd

let test_watchdog_bites_on_missed_pet () =
  let clock, engine = sim () in
  let bitten_at = ref [] in
  let wd =
    Ukos.Watchdog.create ~clock ~engine ~timeout_ns:1.0e6
      ~on_bite:(fun _ -> bitten_at := Uksim.Clock.ns clock :: !bitten_at)
      ()
  in
  (* One pet at 0.5 ms, then silence: first bite at 1.5 ms, then every
     timeout until stopped. *)
  Uksim.Engine.after_ns engine 0.5e6 (fun () -> Ukos.Watchdog.pet wd);
  Uksim.Engine.run ~until:(Uksim.Clock.cycles_of_ns 4.0e6) engine;
  Alcotest.(check bool) "bit at least twice" true (Ukos.Watchdog.bites wd >= 2);
  (match List.rev !bitten_at with
  | first :: _ -> Alcotest.(check (float 1.0)) "first bite at pet+timeout" 1.5e6 first
  | [] -> Alcotest.fail "never bitten");
  Ukos.Watchdog.stop wd;
  let n = Ukos.Watchdog.bites wd in
  Uksim.Engine.run ~until:(Uksim.Clock.cycles_of_ns 8.0e6) engine;
  Alcotest.(check int) "stopped: no further bites" n (Ukos.Watchdog.bites wd)

let test_watchdog_rejects_bad_timeout () =
  let clock, engine = sim () in
  Alcotest.check_raises "zero timeout" (Invalid_argument "Watchdog.create: timeout must be positive")
    (fun () -> ignore (Ukos.Watchdog.create ~clock ~engine ~timeout_ns:0.0 ()))

(* --- supervisor ------------------------------------------------------------ *)

let sched_sim () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  (clock, engine, sched)

let test_supervisor_restarts_then_completes () =
  let _, engine, sched = sched_sim () in
  let runs = ref 0 in
  let sup =
    Uksched.Supervisor.supervise sched ~engine ~name:"flaky" (fun () ->
        incr runs;
        if !runs <= 2 then failwith "injected crash")
  in
  (* Keep a non-daemon thread alive so the scheduler drives the engine
     through the backoff delays. *)
  ignore (Uksched.Sched.spawn sched ~name:"main" (fun () -> Uksched.Sched.sleep_ns 1.0e9));
  Uksched.Sched.run sched;
  Alcotest.(check int) "ran three times" 3 !runs;
  Alcotest.(check int) "two crashes" 2 (Uksched.Supervisor.crashes sup);
  Alcotest.(check int) "two restarts" 2 (Uksched.Supervisor.restarts sup);
  Alcotest.(check bool) "completed" true (Uksched.Supervisor.state sup = Uksched.Supervisor.Completed)

let test_supervisor_circuit_breaker () =
  let _, engine, sched = sched_sim () in
  let runs = ref 0 in
  let policy =
    { Uksched.Supervisor.max_restarts = 3; backoff_ns = 1.0e6; backoff_factor = 2.0;
      max_backoff_ns = 1.0e8; jitter = 0.0 }
  in
  let sup =
    Uksched.Supervisor.supervise sched ~engine ~policy ~name:"doomed" (fun () ->
        incr runs;
        failwith "always crashes")
  in
  ignore (Uksched.Sched.spawn sched ~name:"main" (fun () -> Uksched.Sched.sleep_ns 1.0e9));
  Uksched.Sched.run sched;
  Alcotest.(check int) "initial run + 3 restarts" 4 !runs;
  Alcotest.(check bool) "circuit breaker open" true
    (Uksched.Supervisor.state sup = Uksched.Supervisor.Gave_up);
  Alcotest.(check int) "budget exhausted" 0 (Uksched.Supervisor.restarts_remaining sup);
  match Uksched.Supervisor.last_error sup with
  | Some (Failure msg) -> Alcotest.(check string) "last error kept" "always crashes" msg
  | _ -> Alcotest.fail "expected last_error"

let test_supervisor_backoff_is_exponential () =
  let clock, engine, sched = sched_sim () in
  let restart_times = ref [] in
  let runs = ref 0 in
  let policy =
    { Uksched.Supervisor.max_restarts = 3; backoff_ns = 1.0e6; backoff_factor = 2.0;
      max_backoff_ns = 1.0e9; jitter = 0.0 }
  in
  ignore
    (Uksched.Supervisor.supervise sched ~engine ~policy ~name:"crashy" (fun () ->
         restart_times := Uksim.Clock.ns clock :: !restart_times;
         incr runs;
         failwith "boom"));
  ignore (Uksched.Sched.spawn sched ~name:"main" (fun () -> Uksched.Sched.sleep_ns 1.0e9));
  Uksched.Sched.run sched;
  match List.rev !restart_times with
  | [ _t0; t1; t2; t3 ] ->
      (* Gaps double: 1 ms, 2 ms, 4 ms (modulo scheduler dispatch cost). *)
      Alcotest.(check bool) "second gap ~2x first" true (t3 -. t2 > (t2 -. t1) *. 1.5)
  | l -> Alcotest.failf "expected 4 runs, got %d" (List.length l)

let jitter_restart_times () =
  let clock, engine, sched = sched_sim () in
  let policy =
    { Uksched.Supervisor.max_restarts = 3; backoff_ns = 1.0e6; backoff_factor = 2.0;
      max_backoff_ns = 1.0e9; jitter = 0.8 }
  in
  let times name =
    let ts = ref [] in
    ignore
      (Uksched.Supervisor.supervise sched ~engine ~policy ~name (fun () ->
           ts := Uksim.Clock.ns clock :: !ts;
           failwith "boom"));
    ts
  in
  let a = times "crasher-a" and b = times "crasher-b" in
  ignore (Uksched.Sched.spawn sched ~name:"main" (fun () -> Uksched.Sched.sleep_ns 1.0e9));
  Uksched.Sched.run sched;
  (List.rev !a, List.rev !b)

let test_supervisor_jitter_breaks_lockstep () =
  (* Two components that crash together must not restart in lockstep:
     the seeded jitter (keyed by name) desynchronizes their backoff
     trains, and does so identically on every run. *)
  let a, b = jitter_restart_times () in
  Alcotest.(check int) "both exhausted their budget" (List.length a) (List.length b);
  let gaps l = List.map2 ( -. ) (List.tl l) (List.filteri (fun i _ -> i < List.length l - 1) l) in
  let lockstep = List.for_all2 (fun ga gb -> Float.abs (ga -. gb) < 1.0) (gaps a) (gaps b) in
  Alcotest.(check bool) "restart gaps diverge" false lockstep;
  let a', b' = jitter_restart_times () in
  Alcotest.(check (list (float 0.0))) "jitter is seeded: replay identical (a)" a a';
  Alcotest.(check (list (float 0.0))) "jitter is seeded: replay identical (b)" b b'

let test_supervisor_voluntary_exit_not_a_crash () =
  let _, engine, sched = sched_sim () in
  let sup =
    Uksched.Supervisor.supervise sched ~engine ~name:"quitter" (fun () ->
        Uksched.Sched.exit_thread ())
  in
  ignore (Uksched.Sched.spawn sched ~name:"main" (fun () -> Uksched.Sched.sleep_ns 1.0e6));
  Uksched.Sched.run sched;
  Alcotest.(check int) "no crash recorded" 0 (Uksched.Supervisor.crashes sup);
  Alcotest.(check bool) "completed" true
    (Uksched.Supervisor.state sup = Uksched.Supervisor.Completed)

let suite =
  [
    Alcotest.test_case "faultnet: clean passthrough" `Quick test_faultnet_passthrough;
    Alcotest.test_case "faultnet: drop every Nth" `Quick test_faultnet_drop_every;
    Alcotest.test_case "faultnet: duplication" `Quick test_faultnet_duplicate;
    Alcotest.test_case "faultnet: single-bit corruption" `Quick test_faultnet_corrupt;
    Alcotest.test_case "faultnet: reorder via delayed redelivery" `Quick test_faultnet_reorder;
    Alcotest.test_case "faultnet: link flap window" `Quick test_faultnet_flap;
    Alcotest.test_case "faultnet: seeded determinism" `Quick test_faultnet_deterministic;
    Alcotest.test_case "faultblk: io error injection" `Quick test_faultblk_io_error;
    Alcotest.test_case "faultblk: torn write" `Quick test_faultblk_torn_write;
    Alcotest.test_case "faultblk: latency spike" `Quick test_faultblk_latency_spike;
    Alcotest.test_case "faultblk: submit/poll path" `Quick test_faultblk_submit_path;
    Alcotest.test_case "faultalloc: fail nth" `Quick test_faultalloc_fail_nth;
    Alcotest.test_case "faultalloc: pressure handler" `Quick test_faultalloc_pressure_handler;
    Alcotest.test_case "faultalloc: free passes through" `Quick test_faultalloc_free_passthrough;
    Alcotest.test_case "watchdog: steady state" `Quick test_watchdog_steady_state;
    Alcotest.test_case "watchdog: bites on missed pet" `Quick test_watchdog_bites_on_missed_pet;
    Alcotest.test_case "watchdog: rejects bad timeout" `Quick test_watchdog_rejects_bad_timeout;
    Alcotest.test_case "supervisor: restart then complete" `Quick
      test_supervisor_restarts_then_completes;
    Alcotest.test_case "supervisor: circuit breaker" `Quick test_supervisor_circuit_breaker;
    Alcotest.test_case "supervisor: exponential backoff" `Quick
      test_supervisor_backoff_is_exponential;
    Alcotest.test_case "supervisor: jitter breaks lockstep" `Quick
      test_supervisor_jitter_breaks_lockstep;
    Alcotest.test_case "supervisor: voluntary exit" `Quick
      test_supervisor_voluntary_exit_not_a_crash;
  ]
