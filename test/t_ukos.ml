(* Tests for ukos: the baseline OS profile cost models (paper §5.1/§5.3,
   Figs 9-13) and the watchdog's interaction with profile data. The
   profiles are data the throughput/boot harnesses trust blindly — these
   tests pin the internal consistency and the paper's orderings. *)

module P = Ukos.Profiles

(* --- internal consistency of every profile -------------------------------- *)

let test_profiles_well_formed () =
  List.iter
    (fun p ->
      let n = p.P.os_name in
      Alcotest.(check bool) (n ^ ": has a name") true (String.length n > 0);
      Alcotest.(check bool) (n ^ ": runs at least one app") true (p.P.image_kb <> []);
      List.iter
        (fun (app, kb) ->
          Alcotest.(check bool) (Printf.sprintf "%s/%s: image > 0" n app) true (kb > 0);
          (* every app with an image size also has a memory floor *)
          match List.assoc_opt app p.P.min_mem_mb with
          | Some mb -> Alcotest.(check bool) (Printf.sprintf "%s/%s: mem > 0" n app) true (mb > 0)
          | None -> Alcotest.failf "%s/%s: image size but no memory floor" n app)
        p.P.image_kb;
      (* request-cost entries only for apps the OS can actually run *)
      List.iter
        (fun (app, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: cost entry has an image" n app)
            true
            (List.mem_assoc app p.P.image_kb))
        p.P.relative_request_cost)
    P.all

let test_request_cost_never_below_unikraft () =
  (* 1.0 = the Unikraft QEMU/KVM path. §5.3: Unikraft is faster than every
     baseline on every app, so every factor must be >= 1. *)
  List.iter
    (fun p ->
      List.iter
        (fun (app, f) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: factor %.2f >= 1" p.P.os_name app f)
            true (f >= 1.0))
        p.P.relative_request_cost)
    P.all;
  (* absent app => absent factor, not a default *)
  (match P.find "hermitux" with
  | Some p -> Alcotest.(check (option (float 0.0))) "hermitux has no nginx" None
                (P.request_cost_factor p ~app:"nginx")
  | None -> Alcotest.fail "hermitux profile missing");
  Alcotest.(check bool) "firecracker penalty in (0,1)" true
    (P.firecracker_penalty > 0.0 && P.firecracker_penalty < 1.0)

let test_find_roundtrip () =
  List.iter
    (fun p ->
      match P.find p.P.os_name with
      | Some q -> Alcotest.(check string) "find returns itself" p.P.os_name q.P.os_name
      | None -> Alcotest.failf "find %s = None" p.P.os_name)
    P.all;
  Alcotest.(check bool) "unknown OS" true (P.find "plan9" = None)

(* --- paper orderings ------------------------------------------------------ *)

let image_kb name app =
  match P.find name with
  | Some p -> List.assoc app p.P.image_kb
  | None -> Alcotest.failf "no profile %s" name

let test_image_size_ordering () =
  (* Fig 9 orders of magnitude: specialized unikernels well under the
     general-purpose stacks, full VM images largest by far. *)
  List.iter
    (fun app ->
      (* a full Debian VM image is the largest way to ship any app *)
      List.iter
        (fun p ->
          if p.P.os_name <> "linux-vm" then
            match List.assoc_opt app p.P.image_kb with
            | Some kb ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s < linux-vm" app p.P.os_name)
                  true
                  (kb < image_kb "linux-vm" app)
            | None -> ())
        P.all;
      (* monolithic-unikernel images stay an order of magnitude below
         the specialized-Linux images *)
      Alcotest.(check bool) (app ^ ": osv << lupine") true
        (3 * image_kb "osv" app < image_kb "lupine" app))
    [ "hello"; "nginx"; "redis" ];
  Alcotest.(check bool) "mirage hello ~1MB" true (image_kb "mirageos" "hello" <= 2000)

let boot_ns name =
  match P.find name with
  | Some { P.boot_ns = Some b; _ } -> b
  | Some { P.boot_ns = None; _ } -> Alcotest.failf "%s has no boot time" name
  | None -> Alcotest.failf "no profile %s" name

let test_boot_time_ordering () =
  (* §5.1 ladder: mirage < osv < rump < lupine-nokml < hermitux <
     lupine < alpine-fc < linux-vm. *)
  let ladder =
    [ "mirageos"; "osv"; "rump"; "lupine-nokml"; "hermitux"; "lupine"; "alpine-fc"; "linux-vm" ]
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) (Printf.sprintf "%s boots before %s" a b) true
          (boot_ns a < boot_ns b);
        check rest
    | _ -> ()
  in
  check ladder;
  (match P.find "linux-native" with
  | Some p -> Alcotest.(check bool) "bare metal has no boot baseline" true (p.P.boot_ns = None)
  | None -> Alcotest.fail "linux-native missing")

let test_syscall_path_ordering () =
  (* Table 1: Unikraft's run-time syscall translation is far cheaper than
     a real kernel crossing, mitigations make Linux worse. *)
  Alcotest.(check bool) "unikraft < linux-nomitig" true
    (Uksim.Cost.syscall_unikraft < Uksim.Cost.syscall_linux_nomitig);
  Alcotest.(check bool) "linux-nomitig < linux-kpti" true
    (Uksim.Cost.syscall_linux_nomitig < Uksim.Cost.syscall_linux)

let suite =
  [
    Alcotest.test_case "profiles are internally consistent" `Quick test_profiles_well_formed;
    Alcotest.test_case "request-cost factors never beat unikraft" `Quick
      test_request_cost_never_below_unikraft;
    Alcotest.test_case "find/os_name roundtrip" `Quick test_find_roundtrip;
    Alcotest.test_case "image sizes follow Fig 9" `Quick test_image_size_ordering;
    Alcotest.test_case "boot times follow §5.1" `Quick test_boot_time_ordering;
    Alcotest.test_case "syscall path costs follow Table 1" `Quick test_syscall_path_ordering;
  ]
