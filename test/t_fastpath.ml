(* Tests for the zero-copy fast path: netbuf ownership edge cases, the
   debug-mode lifetime guards (planted-bug positives), the copy-vs-zero-
   copy TCP equivalence property, and whole-cluster replay determinism
   of the fast datapath. *)

module Nb = Uknetdev.Netbuf
module Tcp = Uknetstack.Tcp
module P = Uknetstack.Pkt
module A = Uknetstack.Addr
module Cl = Ukapps.Cluster

(* --- netbuf window / ownership edge cases --------------------------------- *)

let test_window_ops () =
  let b = Nb.alloc ~headroom:8 ~size:32 () in
  Alcotest.(check int) "starts empty" 0 (Nb.len b);
  Alcotest.(check int) "at full headroom" 8 (Nb.offset b);
  Alcotest.(check int) "capacity" 32 (Nb.capacity b);
  Nb.copy_in b (Bytes.of_string "abcdef");
  Nb.push b 2;
  let buf, off, len = Nb.view b in
  Alcotest.(check int) "pushed offset" 6 off;
  Alcotest.(check int) "pushed len" 8 len;
  Bytes.set buf off 'H';
  Bytes.set buf (off + 1) 'H';
  Nb.pull b 2;
  Alcotest.(check string) "pull back to payload" "abcdef" (Bytes.to_string (Nb.copy_out b));
  Alcotest.check_raises "push beyond headroom"
    (Invalid_argument "Netbuf.push: no headroom") (fun () -> Nb.push b 9);
  Alcotest.check_raises "pull beyond payload"
    (Invalid_argument "Netbuf.pull: beyond payload") (fun () -> Nb.pull b 7);
  Nb.reset b;
  Alcotest.(check int) "reset len" 0 (Nb.len b);
  Alcotest.(check int) "reset offset" 8 (Nb.offset b)

let test_pool_exhaustion_and_remote_free () =
  let clock = Uksim.Clock.create () in
  let p = Nb.Pool.create ~clock ~count:1 ~size:64 () in
  let b = Option.get (Nb.Pool.take p) in
  Alcotest.(check (option reject)) "exhausted" None (Nb.Pool.take p);
  Nb.recycle b;
  Alcotest.(check int) "deferred on the remote-free list" 1 (Nb.Pool.pending_returns p);
  Alcotest.(check bool) "descriptor is dead" false (Nb.live b);
  let b' = Option.get (Nb.Pool.take p) in
  Alcotest.(check int) "drained" 0 (Nb.Pool.pending_returns p);
  Nb.recycle b';
  let elastic = Nb.Pool.create ~clock ~elastic:true ~count:1 ~size:64 () in
  let e1 = Option.get (Nb.Pool.take elastic) in
  let e2 = Nb.Pool.take elastic in
  Alcotest.(check bool) "elastic pool grows" true (e2 <> None);
  Nb.recycle e1;
  Nb.recycle (Option.get e2)

let test_share_refcount () =
  let clock = Uksim.Clock.create () in
  let p = Nb.Pool.create ~clock ~count:1 ~size:64 () in
  let b = Option.get (Nb.Pool.take p) in
  Nb.copy_in b (Bytes.of_string "shared");
  let s = Nb.share b in
  Nb.recycle b;
  (* The clone holds the storage alive: nothing returned yet, and the
     payload is still readable through it. *)
  Alcotest.(check int) "still referenced" 0 (Nb.Pool.pending_returns p);
  Alcotest.(check string) "clone reads payload" "shared" (Bytes.to_string (Nb.copy_out s));
  Nb.recycle s;
  Alcotest.(check int) "last ref returns storage" 1 (Nb.Pool.pending_returns p)

let test_copy_counters () =
  let before = Nb.total_copies () in
  let b = Nb.alloc ~size:128 () in
  let buf, off, _ = Nb.view b in
  Bytes.blit_string "direct generation" 0 buf off 17;
  Nb.set_len b 17;
  Nb.push b 0;
  Nb.pull b 0;
  ignore (Nb.payload_hash b);
  Alcotest.(check int) "zero-copy ops are uncounted" before (Nb.total_copies ());
  let bytes_before = Nb.copied_bytes_total () in
  ignore (Nb.copy_out b);
  Nb.copy_in b (Bytes.of_string "counted");
  ignore (Nb.copy b);
  ignore (Nb.of_bytes (Bytes.of_string "counted"));
  Alcotest.(check int) "four explicit copies counted" (before + 4) (Nb.total_copies ());
  Alcotest.(check int) "copied bytes accounted" (bytes_before + 17 + 7 + 7 + 7)
    (Nb.copied_bytes_total ())

(* --- debug-mode lifetime guards (planted bugs must trip) ------------------- *)

let test_guard_use_after_give () =
  Nb.set_debug true;
  Fun.protect ~finally:(fun () -> Nb.set_debug false) (fun () ->
      (* Planted bug: a handler keeps reading a buffer it already handed
         back. *)
      let b = Nb.of_bytes (Bytes.of_string "frame") in
      Nb.recycle b;
      Alcotest.check_raises "read after give" (Invalid_argument "Netbuf: use after give")
        (fun () -> ignore (Nb.copy_out b));
      Alcotest.check_raises "window op after give"
        (Invalid_argument "Netbuf: use after give") (fun () -> Nb.pull b 1);
      (* Reissued storage invalidates stale descriptors even when the
         descriptor itself was never given. *)
      let clock = Uksim.Clock.create () in
      let p = Nb.Pool.create ~clock ~count:1 ~size:64 () in
      let stale = Option.get (Nb.Pool.take p) in
      let keep = Nb.share stale in
      Nb.recycle stale;
      Nb.recycle keep;
      let fresh = Option.get (Nb.Pool.take p) in
      Alcotest.(check bool) "stale descriptor not live" false (Nb.live keep);
      Alcotest.check_raises "stale generation trapped"
        (Invalid_argument "Netbuf: use after give") (fun () -> ignore (Nb.view keep));
      Nb.recycle fresh)

let test_guard_double_give () =
  Nb.set_debug true;
  Fun.protect ~finally:(fun () -> Nb.set_debug false) (fun () ->
      (* Planted bug: two layers both think they own the buffer's end of
         life. *)
      let b = Nb.of_bytes (Bytes.of_string "frame") in
      Nb.recycle b;
      Alcotest.check_raises "double give" (Invalid_argument "Netbuf: double give")
        (fun () -> Nb.recycle b));
  (* With guards off, the double give is (deliberately) a silent no-op on
     a dead descriptor — the hot path pays no check. *)
  let b = Nb.of_bytes (Bytes.of_string "frame") in
  Nb.recycle b;
  Nb.recycle b

(* --- copy path vs zero-copy path: protocol equivalence --------------------- *)

(* A minimal in-memory TCP rig (same shape as t_uknetstack's): both ends
   of one connection over a recording fake wire. *)
type fake_net = {
  clock : Uksim.Clock.t;
  mutable sent : (P.Tcp.t * bytes) list; (* reversed *)
}

let fake_io net : Tcp.io =
  {
    Tcp.now_cycles = (fun () -> Uksim.Clock.cycles net.clock);
    charge = (fun c -> Uksim.Clock.advance net.clock c);
    tx_segment =
      (fun _conn hdr payload ->
        let data =
          match payload with
          | Tcp.Tx_bytes b -> b
          | Tcp.Tx_netbuf nb ->
              let b = Nb.copy_out nb in
              Nb.recycle nb;
              b
        in
        net.sent <- (hdr, data) :: net.sent);
    set_timer = (fun _ ~delay_cycles:_ -> ());
    wake = (fun _ -> ());
    notify_accept = (fun _ -> ());
  }

type rig = {
  neta : fake_net;
  netb : fake_net;
  client : Tcp.conn;
  server : Tcp.conn;
  mutable frames : (int * int * bool * bool * bool * bool * string) list; (* reversed *)
}

let take_sent net =
  let s = List.rev net.sent in
  net.sent <- [];
  s

let record (h : P.Tcp.t) data =
  (h.P.Tcp.seq, h.P.Tcp.ack, h.P.Tcp.syn, h.P.Tcp.ack_flag, h.P.Tcp.fin, h.P.Tcp.psh,
   Bytes.to_string data)

let mk_rig () =
  let neta = { clock = Uksim.Clock.create (); sent = [] } in
  let netb = { clock = Uksim.Clock.create (); sent = [] } in
  let client =
    Tcp.create_active (fake_io neta) ~local:(A.Ipv4.of_string "10.0.0.1", 100)
      ~remote:(A.Ipv4.of_string "10.0.0.2", 200) ~iss:1000
  in
  let listener = Tcp.create_listen (fake_io netb) ~local:(A.Ipv4.of_string "10.0.0.2", 200) in
  let syn = match take_sent neta with [ (h, _) ] -> h | _ -> failwith "expected SYN" in
  let server =
    Tcp.derive_passive listener ~remote:(A.Ipv4.of_string "10.0.0.1", 100) ~iss:5000
      ~peer_seq:syn.P.Tcp.seq
  in
  let rig = { neta; netb; client; server; frames = [] } in
  (* Log the SYN too so both rigs record identical handshakes. *)
  rig.frames <- record syn Bytes.empty :: rig.frames;
  rig

let deliver rig =
  let rec pump () =
    let from_a = take_sent rig.neta and from_b = take_sent rig.netb in
    let feed conn (hdr, data) =
      rig.frames <- record hdr data :: rig.frames;
      Tcp.on_segment conn hdr data
    in
    List.iter (feed rig.server) from_a;
    List.iter (feed rig.client) from_b;
    if rig.neta.sent <> [] || rig.netb.sent <> [] then pump ()
  in
  pump ()

let finish_handshake rig =
  (* create_active already emitted the SYN before mk_rig recorded it;
     derive_passive answers it on the first pump. *)
  deliver rig

(* The property: the same application byte stream pushed through the
   legacy copy path (send + socket-queue recv) and through the zero-copy
   path (send_nb + in-place rx sink) produces the same segments on the
   wire (seq/ack/flags/payload), delivers the same bytes, and leaves
   both connections with equal protocol-state hashes. *)
let equivalence_prop =
  QCheck.Test.make ~name:"zero-copy path == copy path (frames, bytes, state hash)"
    ~count:60
    QCheck.(list_of_size (Gen.int_range 1 12) (string_of_size (Gen.int_range 1 2000)))
    (fun chunks ->
      (* Legacy rig: bytes in, socket queue out. *)
      let ra = mk_rig () in
      finish_handshake ra;
      let got_a = Buffer.create 256 in
      List.iter
        (fun chunk ->
          ignore (Tcp.send ra.client (Bytes.of_string chunk));
          deliver ra;
          let rec drain () =
            match Tcp.recv ra.server ~max:4096 with
            | Some b ->
                Buffer.add_bytes got_a b;
                drain ()
            | None -> ()
          in
          drain ())
        chunks;
      (* Zero-copy rig: netbufs in, rx sink consumes in place. *)
      let rb = mk_rig () in
      finish_handshake rb;
      let got_b = Buffer.create 256 in
      Tcp.set_rx_sink rb.server
        (Some
           (fun nb ->
             let buf, off, len = Nb.view nb in
             Buffer.add_subbytes got_b buf off len;
             Nb.recycle nb));
      List.iter
        (fun chunk ->
          ignore (Tcp.send_nb rb.client (Nb.of_bytes (Bytes.of_string chunk)));
          deliver rb)
        chunks;
      let sent = String.concat "" chunks in
      Buffer.contents got_a = sent
      && Buffer.contents got_b = sent
      && List.rev ra.frames = List.rev rb.frames
      && Tcp.state_hash ra.client = Tcp.state_hash rb.client
      && Tcp.state_hash ra.server = Tcp.state_hash rb.server)

(* --- reply scanners vs netbuf boundaries ----------------------------------- *)

(* The fast clients' reply counters must not care how the byte stream is
   segmented (netbufs split wherever TCP felt like it). The RESP scanner
   carries persistent state across feeds; this regression replays the
   same reply stream under every pathological segmentation. *)
let test_rscan_split_safe () =
  let stream =
    "+OK\r\n$3\r\nxxx\r\n-ERR nope\r\n$-1\r\n:42\r\n$10\r\nabcde\r\nfgh\r\n+PONG\r\n"
  in
  let count segments =
    let sc = Ukapps.Resp_bench.rscan_create () in
    let ok = ref 0 and err = ref 0 in
    List.iter
      (fun s ->
        Ukapps.Resp_bench.rscan_feed sc (Bytes.of_string s) 0 (String.length s)
          ~on_reply:(function `Ok -> incr ok | `Err -> incr err))
      segments;
    (!ok, !err)
  in
  let whole = count [ stream ] in
  Alcotest.(check (pair int int)) "whole stream: 6 ok + 1 err" (6, 1) whole;
  let bytes = List.init (String.length stream) (fun i -> String.sub stream i 1) in
  Alcotest.(check (pair int int)) "byte at a time" whole (count bytes);
  for cut = 1 to String.length stream - 1 do
    let segs = [ String.sub stream 0 cut;
                 String.sub stream cut (String.length stream - cut) ] in
    if count segs <> whole then
      Alcotest.failf "split at byte %d miscounts replies" cut
  done

let test_fast_load_reply_exceeds_mss () =
  (* End-to-end: a reply body well over one MSS arrives as several
     netbufs at the client's rx sink — the fast wrk must still count
     every reply exactly once. *)
  let big = String.concat "" (List.init 50 (fun i -> Printf.sprintf "line-%04d-%s\n" i (String.make 90 'x'))) in
  Alcotest.(check bool) "page spans several segments" true
    (String.length big > 2 * Uknetstack.Tcp.mss);
  let c = Cl.create ~seed:11 ~fastpath:Cl.fastpath_default ~n:1 () in
  ignore (Cl.add_httpd_fast c (Ukapps.Httpd.In_memory [ ("/big.html", big) ]));
  let r =
    Cl.run_httpd_load_fast c ~connections_per_core:2 ~requests_per_core:60
      ~path:"/big.html" ()
  in
  Alcotest.(check int) "every reply counted once" 60 r.Ukapps.Wrk.requests;
  Alcotest.(check int) "no errors" 0 r.Ukapps.Wrk.errors

(* --- qcheck: Nbio writer == legacy copy writer ----------------------------- *)

(* The MSS-coalescing zero-copy writer must emit a byte-identical stream
   to the legacy Buffer-and-send path for any sequence of write sizes
   (sub-byte fragments, exact-MSS hits, multi-MSS bursts). *)
module S = Uknetstack.Stack

let nbio_run ~use_nbio chunks =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let da, db = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let mk dev ip mac =
    let s =
      S.create ~clock ~engine ~sched ~dev
        { S.mac = A.Mac.of_int mac; ip = A.Ipv4.of_string ip;
          netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
    in
    S.start s;
    s
  in
  let s1 = mk da "10.7.0.1" 0x71 in
  let s2 = mk db "10.7.0.2" 0x72 in
  let total = List.fold_left (fun a c -> a + String.length c) 0 chunks in
  let got = Buffer.create (max 16 total) in
  ignore
    (Uksched.Sched.spawn sched ~name:"sink" (fun () ->
         let l = S.Tcp_socket.listen s1 ~port:7000 () in
         match S.Tcp_socket.accept ~block:true l with
         | None -> ()
         | Some flow ->
             while Buffer.length got < total do
               match S.Tcp_socket.recv ~block:true s1 flow ~max:65536 with
               | Some b -> Buffer.add_bytes got b
               | None -> Buffer.add_string got (String.make total '?')
             done));
  ignore
    (Uksched.Sched.spawn sched ~name:"src" (fun () ->
         let flow = S.Tcp_socket.connect s2 ~dst:(A.Ipv4.of_string "10.7.0.1", 7000) () in
         if use_nbio then begin
           let w = Ukapps.Nbio.writer ~clock ~stack:s2 ~flow in
           List.iter (Ukapps.Nbio.add w) chunks;
           Ukapps.Nbio.flush w
         end
         else begin
           let b = Buffer.create 256 in
           List.iter (Buffer.add_string b) chunks;
           ignore (S.Tcp_socket.send ~block:true s2 flow (Buffer.to_bytes b))
         end;
         S.Tcp_socket.close s2 flow));
  Uksched.Sched.run sched;
  Buffer.contents got

let nbio_equivalence_prop =
  QCheck.Test.make ~name:"Nbio writer emits byte-identical stream to copy writer"
    ~count:40
    QCheck.(list_of_size (Gen.int_range 1 10) (string_of_size (Gen.int_range 0 3500)))
    (fun chunks ->
      let expect = String.concat "" chunks in
      nbio_run ~use_nbio:true chunks = expect
      && nbio_run ~use_nbio:false chunks = expect)

(* --- qcheck: netbuf window bounds ------------------------------------------ *)

let netbuf_bounds_prop =
  QCheck.Test.make ~name:"netbuf push/pull reject out-of-window offsets" ~count:200
    QCheck.(triple (int_bound 16) (int_bound 24) (int_bound 48))
    (fun (headroom, datalen, k) ->
      let b = Nb.alloc ~headroom ~size:(headroom + 24) () in
      Nb.copy_in b (Bytes.make datalen 'd');
      if k <= headroom then begin
        (* In-window push is reversible and bookkeeping stays exact. *)
        Nb.push b k;
        let ok = Nb.offset b = headroom - k && Nb.len b = datalen + k in
        Nb.pull b k;
        ok && Nb.offset b = headroom && Nb.len b = datalen
      end
      else
        (match Nb.push b k with
        | () -> false
        | exception Invalid_argument _ -> true)
        &&
        (match Nb.pull b (datalen + 1) with
        | () -> false
        | exception Invalid_argument _ -> true))

(* --- fast-path cluster: functional + replay determinism -------------------- *)

let test_fast_cluster_replay () =
  let run () =
    let c = Cl.create ~seed:7 ~fastpath:Cl.fastpath_default ~n:2 () in
    ignore (Cl.add_httpd_fast c (Ukapps.Httpd.In_memory
      [ ("/index.html", Ukapps.Httpd.default_page) ]));
    let r = Cl.run_httpd_load_fast c ~connections_per_core:2 ~requests_per_core:200 () in
    (r.Ukapps.Wrk.requests, r.Ukapps.Wrk.errors, Cl.trace_hash c, Cl.elapsed_ns c)
  in
  let (req1, err1, hash1, t1) = run () in
  let (req2, err2, hash2, t2) = run () in
  Alcotest.(check int) "all requests answered" 400 req1;
  Alcotest.(check int) "no errors" 0 err1;
  Alcotest.(check int) "same requests on replay" req1 req2;
  Alcotest.(check int) "same errors on replay" err1 err2;
  Alcotest.(check int) "trace hash replays byte-identically" hash1 hash2;
  Alcotest.(check (float 0.0)) "elapsed replays exactly" t1 t2

let test_fast_resp_copy_free () =
  let c = Cl.create ~seed:3 ~fastpath:Cl.fastpath_default ~n:2 () in
  let workers = Cl.add_resp_fast c ~populate:4096 () in
  (* Pre-population went through the direct execute path and counts as
     commands; the load below must add exactly one command per request. *)
  let st0 = Ukapps.Resp_store.sum_stats (Array.to_list workers) in
  let copies0 = Nb.total_copies () in
  let r =
    Cl.run_resp_load_fast c ~connections_per_core:2 ~requests_per_core:200
      Ukapps.Resp_bench.Get
  in
  Alcotest.(check int) "all replies" 400 r.Ukapps.Resp_bench.requests;
  Alcotest.(check int) "no errors" 0 r.Ukapps.Resp_bench.errors;
  let st = Ukapps.Resp_store.sum_stats (Array.to_list workers) in
  Alcotest.(check int) "server executed every command" 400
    (st.Ukapps.Resp_store.commands - st0.Ukapps.Resp_store.commands);
  Alcotest.(check int) "all GETs hit" 400
    (st.Ukapps.Resp_store.hits - st0.Ukapps.Resp_store.hits);
  Alcotest.(check int) "the whole run made zero counted copies" 0
    (Nb.total_copies () - copies0)

let suite =
  [
    Alcotest.test_case "netbuf window push/pull/view/reset" `Quick test_window_ops;
    Alcotest.test_case "pool exhaustion + remote-free drain" `Quick
      test_pool_exhaustion_and_remote_free;
    Alcotest.test_case "share holds storage; last ref returns it" `Quick
      test_share_refcount;
    Alcotest.test_case "only explicit copies are counted" `Quick test_copy_counters;
    Alcotest.test_case "debug guard: use after give" `Quick test_guard_use_after_give;
    Alcotest.test_case "debug guard: double give" `Quick test_guard_double_give;
    QCheck_alcotest.to_alcotest equivalence_prop;
    Alcotest.test_case "RESP reply scanner survives any split" `Quick
      test_rscan_split_safe;
    Alcotest.test_case "fast load counts replies larger than one MSS" `Quick
      test_fast_load_reply_exceeds_mss;
    QCheck_alcotest.to_alcotest nbio_equivalence_prop;
    QCheck_alcotest.to_alcotest netbuf_bounds_prop;
    Alcotest.test_case "fast cluster replays byte-identically" `Quick
      test_fast_cluster_replay;
    Alcotest.test_case "fast RESP run is copy-free end to end" `Quick
      test_fast_resp_copy_free;
  ]
