(* Tests for ukplat: VMM startup/attach cost tables and the full boot
   breakdown (paper §5.1/§5.2, Fig 10). Complements the Solo5 smoke in
   t_ukmmu.ml with table-wide properties. *)

module Vmm = Ukplat.Vmm
module Boot = Ukboot.Boot

let test_name_roundtrip () =
  List.iter
    (fun v ->
      let n = Vmm.name v in
      Alcotest.(check bool) (n ^ ": non-empty name") true (String.length n > 0);
      match Vmm.of_name n with
      | Some v' -> Alcotest.(check string) (n ^ ": of_name(name)") n (Vmm.name v')
      | None -> Alcotest.failf "of_name %s = None" n)
    Vmm.all;
  Alcotest.(check bool) "unknown vmm" true (Vmm.of_name "bhyve" = None);
  Alcotest.(check int) "all six vmms listed" 6 (List.length Vmm.all)

let test_startup_table () =
  (* Fig 10 ordering: a process exec is cheapest, the minimal VMMs
     (Firecracker, Solo5) beat QEMU microvm, which beats full QEMU,
     and Xen's toolstack is the slowest path. *)
  let s = Vmm.startup_ns in
  List.iter
    (fun v ->
      Alcotest.(check bool) (Vmm.name v ^ ": positive startup") true (s v > 0.0))
    Vmm.all;
  Alcotest.(check bool) "linuxu < firecracker" true (s Vmm.Linuxu < s Vmm.Firecracker);
  Alcotest.(check bool) "firecracker <= solo5" true (s Vmm.Firecracker <= s Vmm.Solo5);
  Alcotest.(check bool) "solo5 < microvm" true (s Vmm.Solo5 < s Vmm.Qemu_microvm);
  Alcotest.(check bool) "microvm < qemu" true (s Vmm.Qemu_microvm < s Vmm.Qemu);
  Alcotest.(check bool) "qemu < xen" true (s Vmm.Qemu < s Vmm.Xen)

let test_attach_cost_tables () =
  (* §5.2: 9pfs attach is 0.3 ms on KVM but 2.7 ms on Xen; virtio NIC
     negotiation costs real time on every VMM that has a device model. *)
  Alcotest.(check bool) "xen 9p >> kvm 9p" true
    (Vmm.ninep_attach_ns Vmm.Xen >= 5.0 *. Vmm.ninep_attach_ns Vmm.Qemu);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Vmm.name v ^ ": attach costs non-negative")
        true
        (Vmm.nic_attach_ns v >= 0.0 && Vmm.ninep_attach_ns v >= 0.0
        && Vmm.guest_early_init_ns v >= 0.0))
    Vmm.all

let boot_with ~nics ~with_9p vmm =
  let clock = Uksim.Clock.create () in
  let tab = Boot.Inittab.create () in
  Boot.Inittab.register tab ~level:1 ~name:"early" (fun () -> ());
  Boot.Inittab.register tab ~level:4 ~name:"plat" (fun () -> Uksim.Clock.advance clock 1000);
  Boot.Inittab.register tab ~level:6 ~name:"main-prep" (fun () -> ());
  Vmm.boot vmm ~clock ~nics ~with_9p ~inittab:tab ()

let test_boot_breakdown_consistency () =
  List.iter
    (fun vmm ->
      let bd, report = boot_with ~nics:1 ~with_9p:false vmm in
      let n = Vmm.name vmm in
      Alcotest.(check (float 1.0)) (n ^ ": total = vmm + guest")
        (bd.Vmm.vmm_startup_ns +. bd.Vmm.guest_ns)
        bd.Vmm.total_ns;
      Alcotest.(check (float 1.0)) (n ^ ": startup matches table") (Vmm.startup_ns vmm)
        bd.Vmm.vmm_startup_ns;
      Alcotest.(check bool) (n ^ ": guest covers constructors") true
        (bd.Vmm.guest_ns >= report.Boot.guest_boot_ns);
      Alcotest.(check int) (n ^ ": all constructor phases ran") 3
        (List.length report.Boot.phases))
    Vmm.all

let test_boot_devices_cost_guest_time () =
  (* Fig 10's "one NIC" bars: each attached device slows guest boot by
     its table cost, and 9p adds on top. *)
  let guest ~nics ~with_9p = (fst (boot_with ~nics ~with_9p Vmm.Qemu)).Vmm.guest_ns in
  let bare = guest ~nics:0 ~with_9p:false in
  let one_nic = guest ~nics:1 ~with_9p:false in
  let two_nics = guest ~nics:2 ~with_9p:false in
  let with_fs = guest ~nics:0 ~with_9p:true in
  Alcotest.(check (float 1.0)) "one nic adds its attach cost"
    (bare +. Vmm.nic_attach_ns Vmm.Qemu) one_nic;
  Alcotest.(check (float 1.0)) "nic costs are linear"
    (one_nic +. Vmm.nic_attach_ns Vmm.Qemu) two_nics;
  Alcotest.(check (float 1.0)) "9p adds its attach cost"
    (bare +. Vmm.ninep_attach_ns Vmm.Qemu) with_fs

let test_boot_total_ordering_matches_startup () =
  (* With identical guests, total boot order is the startup-table order —
     the paper's point that the VMM dominates for tiny guests. *)
  let total vmm = (fst (boot_with ~nics:0 ~with_9p:false vmm)).Vmm.total_ns in
  Alcotest.(check bool) "solo5 boots before microvm" true (total Vmm.Solo5 < total Vmm.Qemu_microvm);
  Alcotest.(check bool) "microvm boots before qemu" true
    (total Vmm.Qemu_microvm < total Vmm.Qemu);
  Alcotest.(check bool) "qemu boots before xen" true (total Vmm.Qemu < total Vmm.Xen)

let suite =
  [
    Alcotest.test_case "vmm name/of_name roundtrip" `Quick test_name_roundtrip;
    Alcotest.test_case "startup table follows Fig 10" `Quick test_startup_table;
    Alcotest.test_case "attach cost tables (§5.2)" `Quick test_attach_cost_tables;
    Alcotest.test_case "boot breakdown is consistent" `Quick test_boot_breakdown_consistency;
    Alcotest.test_case "device attaches cost guest time" `Quick test_boot_devices_cost_guest_time;
    Alcotest.test_case "total boot follows startup order" `Quick
      test_boot_total_ordering_matches_startup;
  ]
