(* Tests for ukfleet: workload shapes, front-door policies, autoscaler
   hysteresis, seeded VM killing, calibrated costs, fleet lifecycle
   (cold / warm-pool / snapshot-clone), crash recovery with zero lost
   responses, SMP substrate determinism with a ukcheck observer
   attached, and the real-TCP ingress path. *)

module Fleet = Ukfleet.Fleet
module Workload = Ukfleet.Workload
module Frontdoor = Ukfleet.Frontdoor
module Autoscaler = Ukfleet.Autoscaler
module Image = Ukfleet.Image
module Fv = Ukfault.Faultvm

let ms = Uksim.Units.msec
let image = Image.httpd

(* --- workload shapes ------------------------------------------------------ *)

let test_workload_shapes () =
  let r = Workload.ramp ~from_rps:100.0 ~to_rps:300.0 ~duration_ns:(ms 10.0) in
  Alcotest.(check (float 0.5)) "ramp start" 100.0 (r.Workload.rate_rps 0.0);
  Alcotest.(check (float 0.5)) "ramp midpoint" 200.0 (r.Workload.rate_rps (ms 5.0));
  Alcotest.(check (float 0.5)) "ramp end" 300.0 (r.Workload.rate_rps (ms 10.0));
  let s =
    Workload.spike ~base_rps:50.0 ~factor:10.0 ~at_ns:(ms 2.0) ~spike_ns:(ms 1.0)
      ~duration_ns:(ms 10.0)
  in
  Alcotest.(check (float 0.5)) "before spike" 50.0 (s.Workload.rate_rps (ms 1.9));
  Alcotest.(check (float 0.5)) "inside spike" 500.0 (s.Workload.rate_rps (ms 2.5));
  Alcotest.(check (float 0.5)) "after spike" 50.0 (s.Workload.rate_rps (ms 3.1));
  let d = Workload.diurnal ~base_rps:100.0 ~amplitude:2.0 ~period_ns:(ms 4.0) ~duration_ns:(ms 8.0) in
  Alcotest.(check bool) "diurnal clamped at zero" true (d.Workload.rate_rps (ms 3.0) >= 0.0)

(* --- front door ----------------------------------------------------------- *)

let no_load _ = 0.0

let test_round_robin_rotates () =
  let fd = Frontdoor.create Frontdoor.Round_robin in
  List.iter (Frontdoor.add fd) [ 1; 2; 3 ];
  let picks = List.init 6 (fun _ -> Option.get (Frontdoor.pick fd ~flow:0 ~load:no_load)) in
  Alcotest.(check (list int)) "rotates over members" [ 1; 2; 3; 1; 2; 3 ] picks

let test_least_loaded_argmin () =
  let fd = Frontdoor.create Frontdoor.Least_loaded in
  List.iter (Frontdoor.add fd) [ 1; 2; 3 ];
  let load = function 1 -> 5.0 | 2 -> 1.0 | _ -> 9.0 in
  Alcotest.(check (option int)) "picks the least-loaded" (Some 2)
    (Frontdoor.pick fd ~flow:0 ~load);
  Alcotest.(check (option int)) "ties break to lowest id" (Some 1)
    (Frontdoor.pick fd ~flow:0 ~load:no_load)

let test_consistent_hash_affinity () =
  let fd = Frontdoor.create Frontdoor.Consistent_hash in
  List.iter (Frontdoor.add fd) [ 1; 2; 3; 4 ];
  let flows = List.init 200 (fun i -> i * 7919) in
  let before = List.map (fun f -> Option.get (Frontdoor.pick fd ~flow:f ~load:no_load)) flows in
  let again = List.map (fun f -> Option.get (Frontdoor.pick fd ~flow:f ~load:no_load)) flows in
  Alcotest.(check (list int)) "same flow, same member" before again;
  Frontdoor.remove fd 2;
  let after = List.map (fun f -> Option.get (Frontdoor.pick fd ~flow:f ~load:no_load)) flows in
  let moved_without_cause =
    List.exists2 (fun b a -> b <> 2 && b <> a) before after
  in
  Alcotest.(check bool) "only the failed member's arc remaps" false moved_without_cause;
  Alcotest.(check bool) "failed member no longer picked" false (List.mem 2 after)

let test_quarantine_keeps_affinity () =
  let fd = Frontdoor.create Frontdoor.Consistent_hash in
  List.iter (Frontdoor.add fd) [ 1; 2; 3; 4 ];
  let flows = List.init 200 (fun i -> i * 7919) in
  let pick f = Option.get (Frontdoor.pick fd ~flow:f ~load:no_load) in
  let before = List.map pick flows in
  Frontdoor.quarantine fd 2;
  let during = List.map pick flows in
  Alcotest.(check bool) "suspect is never picked" false (List.mem 2 during);
  List.iter2
    (fun b d -> if b <> 2 then Alcotest.(check int) "unaffected flows stay put" b d)
    before during;
  Frontdoor.unquarantine fd 2;
  let after = List.map pick flows in
  Alcotest.(check (list int))
    "recovery restores the exact flow -> member mapping" before after

(* --- autoscaler ----------------------------------------------------------- *)

let test_autoscaler_demand_and_hysteresis () =
  let p = { Autoscaler.default with Autoscaler.scale_in_hold = 2 } in
  let a = Autoscaler.create p in
  let decide ~now ~ready ~outstanding =
    Autoscaler.decide a ~now_ns:now ~ready ~warming:0 ~outstanding ~p99_ns:0.0
      ~slo_ns:(ms 1.0)
  in
  (match decide ~now:0.0 ~ready:1 ~outstanding:40 with
  | Autoscaler.Scale_out n -> Alcotest.(check int) "demand-driven scale-out" 9 n
  | _ -> Alcotest.fail "expected scale-out");
  (match decide ~now:(ms 0.5) ~ready:1 ~outstanding:80 with
  | Autoscaler.Hold -> ()
  | _ -> Alcotest.fail "cooldown should hold");
  (* Low demand must persist for scale_in_hold ticks AND the scale-in
     cooldown before one instance is retired. *)
  (match decide ~now:(ms 10.0) ~ready:8 ~outstanding:0 with
  | Autoscaler.Hold -> ()
  | _ -> Alcotest.fail "first low tick holds");
  (match decide ~now:(ms 60.0) ~ready:8 ~outstanding:0 with
  | Autoscaler.Scale_in n -> Alcotest.(check int) "retires one at a time" 1 n
  | _ -> Alcotest.fail "expected scale-in after hold + cooldown")

(* --- the VM killer -------------------------------------------------------- *)

let test_faultvm_victims () =
  let ids = List.init 10 (fun i -> i * 10) in
  let draw () = Fv.victims ~rng:(Uksim.Rng.create 7) ~fraction:0.2 ~min_kills:1 ids in
  let a = draw () and b = draw () in
  Alcotest.(check (list int)) "seeded draw replays" a b;
  Alcotest.(check int) "20% of 10 targets" 2 (List.length a);
  Alcotest.(check bool) "victims are targets" true (List.for_all (fun v -> List.mem v ids) a);
  Alcotest.(check int) "no duplicates" (List.length a)
    (List.length (List.sort_uniq compare a));
  Alcotest.(check int) "min_kills floor" 3
    (List.length (Fv.victims ~rng:(Uksim.Rng.create 7) ~fraction:0.0 ~min_kills:3 ids))

(* --- calibration ---------------------------------------------------------- *)

let test_calibration () =
  let c = Image.calibrate image ~vmm:Ukplat.Vmm.Firecracker in
  Alcotest.(check bool) "service time positive" true (c.Image.service_ns > 0.0);
  Alcotest.(check bool) "boot has constructor phases" true
    (List.length c.Image.boot_report.Ukboot.Boot.phases >= 3);
  Alcotest.(check bool) "guest boot part of total" true
    (c.Image.breakdown.Ukplat.Vmm.total_ns >= c.Image.breakdown.Ukplat.Vmm.guest_ns);
  let again = Image.calibrate image ~vmm:Ukplat.Vmm.Firecracker in
  Alcotest.(check bool) "calibration is cached" true (c == again)

let test_costs_ordering () =
  let f = Fleet.create ~image () in
  let c = Fleet.costs f in
  Alcotest.(check bool) "clone cheaper than cold boot" true
    (c.Fleet.clone_ns < c.Fleet.cold_boot_ns);
  Alcotest.(check bool) "warm activation cheapest" true
    (c.Fleet.warm_activation_ns < c.Fleet.clone_ns)

(* --- fleet lifecycle ------------------------------------------------------ *)

let steady ?(dur = 20.0) mult =
  let cap = 1e9 /. (Fleet.costs (Fleet.create ~image ())).Fleet.service_ns in
  Workload.steady ~rps:(mult *. cap) ~duration_ns:(ms dur)

let test_steady_run_completes () =
  let f = Fleet.create ~image ~initial:2 () in
  let r = Fleet.run f (steady 0.8) in
  Alcotest.(check bool) "requests flowed" true (r.Fleet.offered > 100);
  Alcotest.(check int) "all completed" r.Fleet.offered r.Fleet.completed;
  Alcotest.(check int) "none lost" 0 r.Fleet.lost;
  Alcotest.(check int) "fixed fleet stays at 2" 2 r.Fleet.peak_instances

let test_replay_determinism () =
  let go seed = Fleet.run (Fleet.create ~seed ~boot_mode:Fleet.Snapshot
      ~autoscale:Autoscaler.default ~image ()) (steady 2.5) in
  let a = go 42 and b = go 42 and c = go 43 in
  Alcotest.(check bool) "same seed, identical report" true (a = b);
  Alcotest.(check bool) "different seed, different trace" true
    (a.Fleet.trace_hash <> c.Fleet.trace_hash)

let test_autoscaler_scales_fleet () =
  let f = Fleet.create ~autoscale:Autoscaler.default ~image () in
  let r = Fleet.run f (steady 4.0) in
  Alcotest.(check bool) "scaled beyond initial" true (r.Fleet.peak_instances > 1);
  Alcotest.(check int) "none lost while scaling" 0 r.Fleet.lost

let test_warm_pool_hits () =
  let f = Fleet.create ~boot_mode:(Fleet.Warm_pool 2) ~autoscale:Autoscaler.default ~image () in
  let r = Fleet.run f (steady 3.0) in
  Alcotest.(check bool) "spares were activated" true (r.Fleet.warm_hits > 0);
  Alcotest.(check int) "none lost" 0 r.Fleet.lost

let test_snapshot_clones () =
  let f = Fleet.create ~boot_mode:Fleet.Snapshot ~autoscale:Autoscaler.default ~image () in
  let r = Fleet.run f (steady 3.0) in
  Alcotest.(check int) "exactly one cold template boot" 1 r.Fleet.cold_boots;
  Alcotest.(check bool) "scale-out went through clones" true (r.Fleet.clones > 0);
  Alcotest.(check int) "none lost" 0 r.Fleet.lost

let test_shedding_is_explicit () =
  (* One instance, no autoscaler, tight shed bound, heavy overload: the
     overflow must be shed (answered), never silently dropped. *)
  let f = Fleet.create ~shed_after_ns:(ms 0.5) ~image () in
  let r = Fleet.run f (steady 6.0) in
  Alcotest.(check bool) "overload sheds" true (r.Fleet.shed > 0);
  Alcotest.(check int) "offered = completed + shed" r.Fleet.offered
    (r.Fleet.completed + r.Fleet.shed);
  Alcotest.(check int) "none lost" 0 r.Fleet.lost

(* --- crash recovery ------------------------------------------------------- *)

let test_kill_respawns_zero_lost () =
  let f = Fleet.create ~boot_mode:Fleet.Snapshot ~autoscale:Autoscaler.default ~initial:3
      ~image () in
  let fv =
    Fv.arm ~clock:(Fleet.control_clock f) ~engine:(Fleet.control_engine f)
      ~rng:(Uksim.Rng.create 7)
      ~plan:(Fv.plan ~at_ns:(Fleet.settle_ns f +. ms 8.0) ~kill_fraction:0.4 ())
      ~targets:(fun () -> Fleet.ready_ids f)
      ~kill:(fun ~now_ns iid -> Fleet.kill f ~now_ns ~iid)
  in
  let r = Fleet.run f (steady 2.0) in
  let st = Fv.stats fv in
  Alcotest.(check bool) "instances were killed" true (st.Fv.killed >= 1);
  Alcotest.(check int) "every kill respawned" st.Fv.killed r.Fleet.restarts;
  Alcotest.(check int) "crashes recorded" st.Fv.killed r.Fleet.crashes;
  Alcotest.(check int) "zero lost responses" 0 r.Fleet.lost;
  Alcotest.(check int) "offered all answered" r.Fleet.offered
    (r.Fleet.completed + r.Fleet.shed)

let test_kill_rejects_unknown () =
  let f = Fleet.create ~image () in
  Alcotest.(check bool) "unknown instance" false (Fleet.kill f ~now_ns:0.0 ~iid:99)

(* Two drill rounds land 0.3 ms apart — inside the supervisor's 1 ms
   first backoff window, so the second kill arrives while the first
   victim is still restarting. The epoch guard must keep stale
   completions from the first life out of the books. *)
let test_back_to_back_kills_one_backoff_window () =
  let f = Fleet.create ~boot_mode:Fleet.Snapshot ~autoscale:Autoscaler.default
      ~initial:3 ~image () in
  let fv =
    Fv.arm ~clock:(Fleet.control_clock f) ~engine:(Fleet.control_engine f)
      ~rng:(Uksim.Rng.create 17)
      ~plan:
        (Fv.plan ~at_ns:(Fleet.settle_ns f +. ms 8.0) ~kill_fraction:0.01
           ~min_kills:1 ~repeat_ns:(ms 0.3) ~rounds:2 ())
      ~targets:(fun () -> Fleet.ready_ids f)
      ~kill:(fun ~now_ns iid -> Fleet.kill f ~now_ns ~iid)
  in
  let r = Fleet.run f (steady 2.0) in
  let st = Fv.stats fv in
  Alcotest.(check int) "both rounds fired" 2 st.Fv.rounds_run;
  Alcotest.(check bool) "both kills landed" true (st.Fv.killed >= 2);
  Alcotest.(check int) "every kill respawned exactly once" st.Fv.killed
    r.Fleet.restarts;
  Alcotest.(check int) "zero lost responses" 0 r.Fleet.lost;
  Alcotest.(check int) "books balance" r.Fleet.offered
    (r.Fleet.completed + r.Fleet.shed)

let test_cost_factor_scales_costs () =
  let base = Fleet.create ~image () and slow = Fleet.create ~cost_factor:2.0 ~image () in
  let b = Fleet.costs base and s = Fleet.costs slow in
  Alcotest.(check (float 1e-6)) "service cost doubles" (2.0 *. b.Fleet.service_ns)
    s.Fleet.service_ns;
  Alcotest.(check (float 1e-6)) "boot cost doubles" (2.0 *. b.Fleet.cold_boot_ns)
    s.Fleet.cold_boot_ns

(* --- the inference image --------------------------------------------------- *)

let test_infer_image_calibrates () =
  let img = Image.infer ~size_mb:8 () in
  Alcotest.(check string) "named by model size" "infer-8mb" img.Image.name;
  Alcotest.(check int) "footprint = base + weights" 16 img.Image.mem_mb;
  let f = Fleet.create ~image:img () in
  let c = Fleet.costs f in
  let httpd_cold = (Fleet.costs (Fleet.create ~image ())).Fleet.cold_boot_ns in
  Alcotest.(check bool) "weight stream charged into cold boot" true
    (c.Fleet.cold_boot_ns > httpd_cold);
  Alcotest.(check bool) "small model: clone still beats cold" true
    (c.Fleet.clone_ns < c.Fleet.cold_boot_ns);
  Alcotest.(check bool) "service includes a weight pass" true
    (c.Fleet.service_ns > 100.0 *. 1e3);
  let r = Fleet.run f (Workload.steady ~rps:(0.5 *. (1e9 /. c.Fleet.service_ns)) ~duration_ns:(ms 20.0)) in
  Alcotest.(check int) "none lost" 0 r.Fleet.lost;
  Alcotest.(check bool) "requests completed" true (r.Fleet.completed > 0);
  Image.uncache img

let test_infer_cold_streams_cheaper_per_mb_than_clone () =
  (* The crossover's mechanism: growing the model raises a cold boot by
     the streaming slope but raises a clone by the full memcpy slope. *)
  let costs size_mb =
    let img = Image.infer ~size_mb () in
    let c = Fleet.costs (Fleet.create ~image:img ()) in
    Image.uncache img;
    c
  in
  let a = costs 8 and b = costs 64 in
  let d_cold = b.Fleet.cold_boot_ns -. a.Fleet.cold_boot_ns in
  let d_clone = b.Fleet.clone_ns -. a.Fleet.clone_ns in
  Alcotest.(check bool) "cold grows with model size" true (d_cold > 0.0);
  Alcotest.(check bool) "but slower than the clone copy" true (d_cold < d_clone)

let test_freeze_thaw_releases_late () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let f = Fleet.create ~substrate:(`Engine (clock, engine)) ~initial:1 ~image () in
  Fleet.start f;
  let t0 = Fleet.settle_ns f in
  let at ns g = Uksim.Engine.at engine (Uksim.Clock.cycles_of_ns ns) g in
  let lat = ref nan and oks = ref 0 in
  at t0 (fun () ->
      Fleet.submit ~flow:1
        ~on_reply:(fun ~ok ~latency_ns ->
          if ok then begin incr oks; lat := latency_ns end)
        f ~now_ns:t0;
      Fleet.freeze f ~now_ns:t0;
      Alcotest.(check bool) "frozen" true (Fleet.frozen f));
  at (t0 +. ms 5.0) (fun () -> Fleet.thaw f ~now_ns:(t0 +. ms 5.0));
  Uksim.Engine.run engine;
  Alcotest.(check int) "held reply released once" 1 !oks;
  Alcotest.(check bool) "the stall shows up in latency" true (!lat >= ms 4.9)

let test_draining_sheds_new_arrivals () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let f = Fleet.create ~substrate:(`Engine (clock, engine)) ~initial:1 ~image () in
  Fleet.start f;
  let t0 = Fleet.settle_ns f in
  let shed = ref 0 and served = ref 0 in
  Uksim.Engine.at engine (Uksim.Clock.cycles_of_ns t0) (fun () ->
      Fleet.set_draining f true;
      Fleet.submit ~flow:1
        ~on_reply:(fun ~ok ~latency_ns:_ -> incr (if ok then served else shed))
        f ~now_ns:t0;
      Fleet.set_draining f false;
      Fleet.submit ~flow:2
        ~on_reply:(fun ~ok ~latency_ns:_ -> incr (if ok then served else shed))
        f ~now_ns:t0);
  Uksim.Engine.run engine;
  Alcotest.(check int) "draining front door sheds" 1 !shed;
  Alcotest.(check int) "reopened front door serves" 1 !served

(* --- SMP substrate + ukcheck observer ------------------------------------- *)

let smp_run ~attach seed =
  let smp = Uksmp.Smp.create ~cores:2 () in
  let obs = if attach then Some (Ukcheck.Lockset.attach smp) else None in
  let f = Fleet.create ~seed ~substrate:(`Smp smp) ~boot_mode:Fleet.Snapshot
      ~autoscale:Autoscaler.default ~image () in
  let r = Fleet.run f (steady ~dur:10.0 2.5) in
  Option.iter Ukcheck.Lockset.detach obs;
  r

let test_smp_substrate_deterministic () =
  let a = smp_run ~attach:false 5 and b = smp_run ~attach:false 5 in
  Alcotest.(check bool) "same seed, identical report over SMP" true (a = b);
  Alcotest.(check int) "none lost over SMP" 0 a.Fleet.lost

let test_ukcheck_attach_non_perturbing () =
  let plain = smp_run ~attach:false 6 and observed = smp_run ~attach:true 6 in
  Alcotest.(check bool) "lockset observer does not perturb the fleet" true
    (plain = observed)

(* --- gauges --------------------------------------------------------------- *)

let test_gauges_published () =
  let f = Fleet.create ~autoscale:Autoscaler.default ~image () in
  ignore (Fleet.run f (steady 2.0));
  let snap = Uktrace.Registry.snapshot () in
  match Uktrace.Registry.find snap "ukfleet.metrics" with
  | None -> Alcotest.fail "ukfleet.metrics source missing"
  | Some samples ->
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " sampled") true (List.mem_assoc key samples))
        [ "instances_up"; "instances_warming"; "lb_queue_depth"; "queue_depth"; "shed" ]

(* --- real-TCP ingress ----------------------------------------------------- *)

let test_ingress_over_tcp () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let sdev, cdev = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let module S = Uknetstack.Stack in
  let module A = Uknetstack.Addr in
  let mk dev ip mac =
    let s =
      S.create ~clock ~engine ~sched ~dev
        { S.mac = A.Mac.of_int mac; ip = A.Ipv4.of_string ip;
          netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
    in
    S.start s;
    s
  in
  let server = mk sdev "10.0.7.1" 0xA in
  let client = mk cdev "10.0.7.2" 0xB in
  let fleet = Fleet.create ~substrate:(`Engine (clock, engine)) ~image () in
  Fleet.start fleet;
  let ingress = Ukfleet.Ingress.serve ~sched ~stack:server ~port:7070 ~fleet () in
  let n = 20 in
  let got = ref [] in
  ignore
    (Uksched.Sched.spawn sched ~name:"client" (fun () ->
         let flow = S.Tcp_socket.connect client ~dst:(A.Ipv4.of_string "10.0.7.1", 7070) () in
         for i = 1 to n do
           let line = Printf.sprintf "REQ %d\n" i in
           ignore (S.Tcp_socket.send ~block:true client flow (Bytes.of_string line))
         done;
         let buf = Buffer.create 256 in
         let lines () =
           List.filter (fun l -> String.trim l <> "")
             (String.split_on_char '\n' (Buffer.contents buf))
         in
         let rec read_until () =
           if List.length (lines ()) < n then
             match S.Tcp_socket.recv ~block:true client flow ~max:2048 with
             | Some data when Bytes.length data > 0 ->
                 Buffer.add_bytes buf data;
                 read_until ()
             | Some _ -> read_until ()
             | None -> ()
         in
         read_until ();
         got := lines ();
         S.Tcp_socket.close client flow));
  Uksched.Sched.run sched;
  Alcotest.(check int) "every request line answered" n (List.length !got);
  Alcotest.(check bool) "responses are OK lines" true
    (List.for_all (fun l -> String.length l >= 2 && String.sub l 0 2 = "OK") !got);
  Alcotest.(check int) "ingress counted requests" n (Ukfleet.Ingress.requests ingress);
  Alcotest.(check int) "ingress counted responses" n (Ukfleet.Ingress.responses ingress);
  let r = Fleet.report fleet in
  Alcotest.(check int) "fleet completed them" n r.Fleet.completed;
  Ukfleet.Ingress.stop ingress

let suite =
  [
    Alcotest.test_case "workload shapes" `Quick test_workload_shapes;
    Alcotest.test_case "frontdoor: round robin" `Quick test_round_robin_rotates;
    Alcotest.test_case "frontdoor: least loaded" `Quick test_least_loaded_argmin;
    Alcotest.test_case "frontdoor: consistent hash" `Quick test_consistent_hash_affinity;
    Alcotest.test_case "autoscaler: demand + hysteresis" `Quick
      test_autoscaler_demand_and_hysteresis;
    Alcotest.test_case "faultvm: seeded victims" `Quick test_faultvm_victims;
    Alcotest.test_case "image calibration" `Quick test_calibration;
    Alcotest.test_case "cost ordering" `Quick test_costs_ordering;
    Alcotest.test_case "infer image calibrates and serves" `Quick
      test_infer_image_calibrates;
    Alcotest.test_case "infer cold boot streams cheaper per MB than clone" `Quick
      test_infer_cold_streams_cheaper_per_mb_than_clone;
    Alcotest.test_case "steady run completes" `Quick test_steady_run_completes;
    Alcotest.test_case "seeded replay determinism" `Quick test_replay_determinism;
    Alcotest.test_case "autoscaler scales the fleet" `Quick test_autoscaler_scales_fleet;
    Alcotest.test_case "warm pool activates spares" `Quick test_warm_pool_hits;
    Alcotest.test_case "snapshot mode clones" `Quick test_snapshot_clones;
    Alcotest.test_case "overload sheds explicitly" `Quick test_shedding_is_explicit;
    Alcotest.test_case "kill -> respawn, zero lost" `Quick test_kill_respawns_zero_lost;
    Alcotest.test_case "kill rejects unknown id" `Quick test_kill_rejects_unknown;
    Alcotest.test_case "frontdoor: quarantine keeps affinity" `Quick
      test_quarantine_keeps_affinity;
    Alcotest.test_case "back-to-back kills in one backoff window" `Quick
      test_back_to_back_kills_one_backoff_window;
    Alcotest.test_case "cost factor scales the cost model" `Quick
      test_cost_factor_scales_costs;
    Alcotest.test_case "freeze/thaw releases replies late" `Quick
      test_freeze_thaw_releases_late;
    Alcotest.test_case "draining sheds new arrivals" `Quick
      test_draining_sheds_new_arrivals;
    Alcotest.test_case "SMP substrate deterministic" `Quick test_smp_substrate_deterministic;
    Alcotest.test_case "ukcheck attach non-perturbing" `Quick
      test_ukcheck_attach_non_perturbing;
    Alcotest.test_case "gauges published" `Quick test_gauges_published;
    Alcotest.test_case "ingress over real TCP" `Quick test_ingress_over_tcp;
  ]
