(* Tests for the inference-serving workload: content-addressed weight
   publication and boot-time streaming load, the admission queue's batch
   semantics (full flush, deadline flush, stale timers, amortization),
   legacy/fast server equivalence, and SMP replay determinism. *)

module Bfs = Ukvfs.Blockfs
module Infer = Ukapps.Infer
module Cl = Ukapps.Cluster

let rig () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  (clock, engine)

let mk_store ?(size_mb = 2) ?seed () =
  let clock, engine = rig () in
  let dev =
    Ukblock.Virtio_blk.create ~clock ~engine ~capacity_sectors:((size_mb + 2) * 2048) ()
  in
  let store, name = Infer.publish ~clock ~dev ?seed ~size_mb () in
  (clock, engine, dev, store, name)

let mounted store clock =
  let vfs = Ukvfs.Vfs.create ~clock in
  (match Ukvfs.Vfs.mount vfs ~at:"/models" (Bfs.to_fs store) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mount: %s" (Ukvfs.Fs.errno_to_string e));
  vfs

(* --- weights -------------------------------------------------------------- *)

let test_publish_deterministic () =
  let _, _, _, _, name1 = mk_store ~seed:7 () in
  let _, _, _, _, name2 = mk_store ~seed:7 () in
  let _, _, _, _, name3 = mk_store ~seed:8 () in
  Alcotest.(check string) "same seed, same content address" name1 name2;
  Alcotest.(check bool) "different seed, different address" true (name1 <> name3);
  Alcotest.(check int) "address is 16 hex digits" 16 (String.length name1)

let test_load_verifies_and_charges () =
  let clock, _, _, store, name = mk_store () in
  let vfs = mounted store clock in
  let t0 = Uksim.Clock.ns clock in
  match Infer.load ~clock ~vfs ~store ~path:("/models/" ^ name) () with
  | Error e -> Alcotest.fail e
  | Ok m ->
      Alcotest.(check string) "model keeps its content address" name m.Infer.name;
      Alcotest.(check int) "size in MiB" 2 m.Infer.size_mb;
      Alcotest.(check int) "size in bytes" (2 * 1024 * 1024) m.Infer.bytes;
      Alcotest.(check string) "digest matches the address" name
        (Printf.sprintf "%016x" m.Infer.digest);
      Alcotest.(check bool) "load charged virtual time" true (m.Infer.load_ns > 0.0);
      Alcotest.(check bool) "clock advanced by the load" true
        (Uksim.Clock.ns clock -. t0 >= m.Infer.load_ns)

let test_load_rejects_tampered_weights () =
  let clock, _, dev, store, name = mk_store () in
  (* Flip the first object's first page header on disk (objects start
     right after the 8-sector superblock). *)
  (match dev.Ukblock.Blockdev.write_sync ~lba:8 (Bytes.make 512 '\xFF') with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "tamper write failed");
  let vfs = mounted store clock in
  (match Infer.load ~clock ~vfs ~store ~path:("/models/" ^ name) () with
  | Ok _ -> Alcotest.fail "tampered weights must not load"
  | Error _ -> ());
  (* The generic store read path reports the same corruption. *)
  match Bfs.stream store ~name () with
  | Ok _ -> Alcotest.fail "stream must detect the digest mismatch"
  | Error e -> Alcotest.(check string) "Eio" "EIO" (Ukvfs.Fs.errno_to_string e)

let test_load_needs_vfs_resolution () =
  let clock, _, _, store, name = mk_store () in
  let vfs = Ukvfs.Vfs.create ~clock in
  (* Nothing mounted: the path cannot resolve even though the store has
     the object — metadata goes through vfscore, not around it. *)
  match Infer.load ~clock ~vfs ~store ~path:("/models/" ^ name) () with
  | Ok _ -> Alcotest.fail "load must fail without a mount"
  | Error _ -> ()

let test_stream_cheaper_than_pread () =
  let clock, _, _, store, name = mk_store () in
  let vfs = mounted store clock in
  let t0 = Uksim.Clock.ns clock in
  (match Bfs.stream store ~name () with
  | Ok s -> Alcotest.(check int) "streamed all bytes" (2 * 1024 * 1024) s.Bfs.bytes
  | Error e -> Alcotest.failf "stream: %s" (Ukvfs.Fs.errno_to_string e));
  let stream_ns = Uksim.Clock.ns clock -. t0 in
  let fd =
    match Ukvfs.Vfs.open_file vfs ("/models/" ^ name) () with
    | Ok fd -> fd
    | Error e -> Alcotest.failf "open: %s" (Ukvfs.Fs.errno_to_string e)
  in
  let t1 = Uksim.Clock.ns clock in
  (match Ukvfs.Vfs.pread vfs fd ~off:0 ~len:(2 * 1024 * 1024) with
  | Ok b -> Alcotest.(check int) "pread all bytes" (2 * 1024 * 1024) (Bytes.length b)
  | Error e -> Alcotest.failf "pread: %s" (Ukvfs.Fs.errno_to_string e));
  let pread_ns = Uksim.Clock.ns clock -. t1 in
  Alcotest.(check bool)
    (Printf.sprintf "stream (%.0fus) beats the copying path (%.0fus)" (stream_ns /. 1e3)
       (pread_ns /. 1e3))
    true
    (stream_ns < pread_ns)

let test_load_publishes_trace_source () =
  let clock, _, _, store, name = mk_store () in
  let vfs = mounted store clock in
  (match Infer.load ~clock ~vfs ~store ~path:("/models/" ^ name) () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let snap = Uktrace.Registry.snapshot () in
  match Uktrace.Registry.find_sample snap "ukapps.infer" "weight_loads" with
  | Some (Uktrace.Metric.Count n) ->
      Alcotest.(check bool) "at least this load counted" true (n >= 1)
  | _ -> Alcotest.fail "sticky ukapps.infer source not published"

(* --- the admission queue --------------------------------------------------- *)

let light_model =
  (* A synthetic 1 MiB model: small enough that batch tests run in
     microseconds of virtual time. *)
  { Infer.name = "feedfacefeedface"; digest = 0xfeedface; size_mb = 1;
    bytes = 1 lsl 20; load_ns = 0.0 }

let capture replies rid width = fun s ->
  replies := (rid, width, s) :: !replies

let test_batch_full_flush () =
  let clock, engine = rig () in
  let t = Infer.create_bare ~clock ~engine ~max_batch:4 ~model:light_model () in
  let replies = ref [] in
  for rid = 1 to 3 do
    Infer.submit t ~rid ~width:8 ~reply:(capture replies rid 8)
  done;
  Alcotest.(check int) "below max_batch nothing fires" 0 (List.length !replies);
  Infer.submit t ~rid:4 ~width:8 ~reply:(capture replies 4 8);
  Alcotest.(check int) "the 4th request flushes the batch" 4 (List.length !replies);
  let st = Infer.stats t in
  Alcotest.(check int) "one batch" 1 st.Infer.batches;
  Alcotest.(check int) "four requests" 4 st.Infer.requests;
  Alcotest.(check int) "occupancy is the full batch" 4 st.Infer.max_occupancy;
  List.iter
    (fun (rid, _, s) ->
      Alcotest.(check int) "fixed reply size" Infer.reply_len (String.length s);
      Alcotest.(check string) "status + id" (Printf.sprintf "OK %08x" rid)
        (String.sub s 0 11))
    !replies

let test_batch_deadline_flush () =
  let clock, engine = rig () in
  let t =
    Infer.create_bare ~clock ~engine ~max_batch:8
      ~max_wait_ns:(Uksim.Units.usec 20.0) ~model:light_model ()
  in
  let replies = ref [] in
  Infer.submit t ~rid:1 ~width:8 ~reply:(capture replies 1 8);
  Infer.submit t ~rid:2 ~width:8 ~reply:(capture replies 2 8);
  Uksim.Engine.run_for_ns engine (Uksim.Units.usec 10.0);
  Alcotest.(check int) "before the deadline nothing fires" 0 (List.length !replies);
  Uksim.Engine.run_for_ns engine (Uksim.Units.usec 200.0);
  Alcotest.(check int) "deadline flushes the partial batch" 2 (List.length !replies);
  Alcotest.(check int) "as one batch" 1 (Infer.stats t).Infer.batches

let test_stale_timer_is_inert () =
  let clock, engine = rig () in
  let t =
    Infer.create_bare ~clock ~engine ~max_batch:2
      ~max_wait_ns:(Uksim.Units.usec 20.0) ~model:light_model ()
  in
  let replies = ref [] in
  (* First submit arms a deadline; the second flushes by occupancy. The
     armed timer must then fire as a no-op, not re-batch or double-count. *)
  Infer.submit t ~rid:1 ~width:8 ~reply:(capture replies 1 8);
  Infer.submit t ~rid:2 ~width:8 ~reply:(capture replies 2 8);
  Alcotest.(check int) "occupancy flush" 2 (List.length !replies);
  Uksim.Engine.run_for_ns engine (Uksim.Units.usec 200.0);
  Alcotest.(check int) "stale deadline adds nothing" 2 (List.length !replies);
  Alcotest.(check int) "still one batch" 1 (Infer.stats t).Infer.batches

let test_batching_amortizes_weight_pass () =
  let serve max_batch =
    let clock, engine = rig () in
    let t = Infer.create_bare ~clock ~engine ~max_batch ~model:light_model () in
    let t0 = Uksim.Clock.cycles clock in
    for rid = 1 to 16 do
      Infer.submit t ~rid ~width:8 ~reply:(fun _ -> ())
    done;
    Infer.pump t;
    Uksim.Clock.cycles clock - t0
  in
  let unbatched = serve 1 and batched = serve 16 in
  Alcotest.(check bool)
    (Printf.sprintf "16 batches of 1 (%d cy) cost more than 1 batch of 16 (%d cy)"
       unbatched batched)
    true
    (unbatched > 8 * batched)

let test_state_hash_order_independent () =
  let serve order =
    let clock, engine = rig () in
    let t = Infer.create_bare ~clock ~engine ~max_batch:2 ~model:light_model () in
    List.iter (fun rid -> Infer.submit t ~rid ~width:4 ~reply:(fun _ -> ())) order;
    Infer.pump t;
    Infer.state_hash t
  in
  let a = serve [ 1; 2; 3; 4; 5 ] and b = serve [ 5; 3; 1; 4; 2 ] in
  Alcotest.(check int) "same request set, same state hash" a b;
  Alcotest.(check bool) "different set, different hash" true (a <> serve [ 1; 2; 3 ])

(* --- servers over the cluster harness -------------------------------------- *)

let test_legacy_fast_equivalence () =
  let serve fast =
    let c = Cl.create ~seed:5 ~n:1 () in
    let workers =
      if fast then Cl.add_infer_fast c ~size_mb:2 ()
      else Cl.add_infer c ~size_mb:2 ()
    in
    let r =
      (if fast then Cl.run_infer_load_fast else Cl.run_infer_load) c
        ~connections_per_core:4 ~requests_per_core:200 ()
    in
    (r, Infer.state_hash workers.(0), Infer.stats workers.(0))
  in
  let rl, hl, sl = serve false and rf, hf, sf = serve true in
  Alcotest.(check int) "legacy answers everything" 200 rl.Infer.requests;
  Alcotest.(check int) "fast answers everything" 200 rf.Infer.requests;
  Alcotest.(check int) "no legacy errors" 0 rl.Infer.errors;
  Alcotest.(check int) "no fast errors" 0 rf.Infer.errors;
  Alcotest.(check int) "identical served-set state hash" hl hf;
  Alcotest.(check int) "identical request counts server-side" sl.Infer.requests
    sf.Infer.requests;
  Alcotest.(check bool) "the fast path is faster" true
    (rf.Infer.elapsed_ns < rl.Infer.elapsed_ns)

let test_batch_knob_trades_latency_for_throughput () =
  let run max_batch =
    let c = Cl.create ~seed:9 ~n:1 () in
    ignore (Cl.add_infer_fast c ~size_mb:4 ~max_batch ());
    Cl.run_infer_load_fast c ~connections_per_core:8 ~requests_per_core:240 ()
  in
  let r1 = run 1 and r8 = run 8 in
  Alcotest.(check bool) "batching lifts throughput under concurrency" true
    (r8.Infer.rate_per_sec > r1.Infer.rate_per_sec);
  Alcotest.(check bool) "and lowers p99 under the same offered load" true
    (r8.Infer.p99_us < r1.Infer.p99_us)

let test_smp_replay_deterministic () =
  (* 8 cores: 4 server cores each loading its own weights and serving,
     4 client cores driving steered flows — replayed byte-identically. *)
  let go () =
    let c = Cl.create ~seed:21 ~n:4 () in
    ignore (Cl.add_infer_fast c ~size_mb:2 ());
    let r = Cl.run_infer_load_fast c ~connections_per_core:2 ~requests_per_core:120 () in
    (r, Cl.trace_hash c, Cl.elapsed_ns c)
  in
  let r1, h1, t1 = go () in
  let r2, h2, t2 = go () in
  Alcotest.(check int) "all requests served" 480 r1.Infer.requests;
  Alcotest.(check int) "no errors" 0 r1.Infer.errors;
  Alcotest.(check bool) "identical results" true (r1 = r2);
  Alcotest.(check int) "identical trace hash" h1 h2;
  Alcotest.(check (float 0.0)) "identical elapsed" t1 t2

let suite =
  [
    Alcotest.test_case "publish is deterministic and content-addressed" `Quick
      test_publish_deterministic;
    Alcotest.test_case "load verifies digest and charges the clock" `Quick
      test_load_verifies_and_charges;
    Alcotest.test_case "tampered weights are rejected" `Quick
      test_load_rejects_tampered_weights;
    Alcotest.test_case "weight paths resolve through vfscore" `Quick
      test_load_needs_vfs_resolution;
    Alcotest.test_case "streaming load beats the copying read path" `Quick
      test_stream_cheaper_than_pread;
    Alcotest.test_case "sticky ukapps.infer source reports loads" `Quick
      test_load_publishes_trace_source;
    Alcotest.test_case "admission queue flushes at max_batch" `Quick
      test_batch_full_flush;
    Alcotest.test_case "admission queue flushes at the deadline" `Quick
      test_batch_deadline_flush;
    Alcotest.test_case "stale deadline timers are inert" `Quick
      test_stale_timer_is_inert;
    Alcotest.test_case "batching amortizes the weight pass" `Quick
      test_batching_amortizes_weight_pass;
    Alcotest.test_case "state hash is request-order independent" `Quick
      test_state_hash_order_independent;
    Alcotest.test_case "legacy and fast servers serve identical state" `Quick
      test_legacy_fast_equivalence;
    Alcotest.test_case "max_batch trades latency for throughput" `Quick
      test_batch_knob_trades_latency_for_throughput;
    Alcotest.test_case "8-core serving replays byte-identically" `Quick
      test_smp_replay_deterministic;
  ]
