(* TCP loss-recovery coverage: a bulk transfer over a Faultnet-wrapped
   loopback that drops every 5th frame (20% systematic loss) must deliver
   every byte intact via retransmission, and the retransmit counters must
   actually fire. *)

module A = Uknetstack.Addr
module S = Uknetstack.Stack
module Tcp = Uknetstack.Tcp
module Fn = Ukfault.Faultnet

(* Two stacks over a loopback link whose [client] transmit path goes
   through a fault injector. *)
let faulty_pair plan =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let da, db = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let rng = Uksim.Rng.create 1 in
  let fn = Fn.wrap ~clock ~engine ~rng ~plan da in
  let mk dev ip mac =
    let s =
      S.create ~clock ~engine ~sched ~dev
        { S.mac = A.Mac.of_int mac; ip = A.Ipv4.of_string ip;
          netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
    in
    S.start s;
    s
  in
  let client = mk (Fn.dev fn) "10.0.0.1" 0x1 in
  let server = mk db "10.0.0.2" 0x2 in
  (sched, fn, client, server)

let transfer ~total plan =
  let sched, fn, cstack, sstack = faulty_pair plan in
  let payload = Bytes.init total (fun i -> Char.chr ((i * 7) land 0xff)) in
  let received = Buffer.create total in
  let client_flow = ref None in
  ignore
    (Uksched.Sched.spawn sched ~name:"server" (fun () ->
         let l = S.Tcp_socket.listen sstack ~port:80 () in
         match S.Tcp_socket.accept ~block:true l with
         | None -> ()
         | Some flow ->
             let rec pump () =
               if Buffer.length received < total then
                 match S.Tcp_socket.recv ~block:true sstack flow ~max:65536 with
                 | None -> ()
                 | Some data ->
                     Buffer.add_bytes received data;
                     pump ()
             in
             pump ()));
  ignore
    (Uksched.Sched.spawn sched ~name:"client" (fun () ->
         let flow = S.Tcp_socket.connect cstack ~dst:(A.Ipv4.of_string "10.0.0.2", 80) () in
         client_flow := Some flow;
         let sent = ref 0 in
         while !sent < total do
           let chunk = Bytes.sub payload !sent (min 8192 (total - !sent)) in
           sent := !sent + S.Tcp_socket.send ~block:true cstack flow chunk
         done));
  Uksched.Sched.run sched;
  (fn, Option.get !client_flow, payload, Buffer.to_bytes received)

let test_every_5th_dropped () =
  let fn, flow, payload, received = transfer ~total:32_768 (Fn.plan ~drop_every:5 ()) in
  Alcotest.(check int) "every byte delivered" (Bytes.length payload) (Bytes.length received);
  Alcotest.(check bool) "delivered intact" true (Bytes.equal payload received);
  Alcotest.(check bool) "injector really dropped frames" true ((Fn.stats fn).Fn.dropped > 0);
  Alcotest.(check bool) "RTO retransmissions fired" true (Tcp.stats_retransmits flow > 0)

let test_fast_retransmit_under_loss () =
  (* A light random-loss schedule with plenty of segments in flight: dup
     ACKs must trigger fast retransmit at least once. *)
  let _, flow, payload, received = transfer ~total:65_536 (Fn.plan ~drop:0.05 ()) in
  Alcotest.(check bool) "delivered intact" true (Bytes.equal payload received);
  Alcotest.(check bool) "fast retransmit fired" true (Tcp.stats_fast_retransmits flow >= 1)

let test_lossless_has_no_retransmits () =
  let fn, flow, payload, received = transfer ~total:16_384 (Fn.plan ()) in
  Alcotest.(check bool) "delivered intact" true (Bytes.equal payload received);
  Alcotest.(check int) "no injected drops" 0 (Fn.stats fn).Fn.dropped;
  Alcotest.(check int) "no retransmits on a clean link" 0 (Tcp.stats_retransmits flow)

let test_duplication_is_harmless () =
  let _, flow, payload, received = transfer ~total:16_384 (Fn.plan ~duplicate:0.3 ()) in
  Alcotest.(check bool) "duplicates do not corrupt the stream" true
    (Bytes.equal payload received);
  ignore flow

let test_corruption_is_detected () =
  (* Corrupted frames must be discarded by checksums and recovered by
     retransmission — never delivered to the application. *)
  let _, _, payload, received = transfer ~total:16_384 (Fn.plan ~corrupt:0.05 ()) in
  Alcotest.(check bool) "stream survives bit flips intact" true (Bytes.equal payload received)

let suite =
  [
    Alcotest.test_case "every 5th segment dropped: intact + retransmits" `Quick
      test_every_5th_dropped;
    Alcotest.test_case "fast retransmit under random loss" `Quick
      test_fast_retransmit_under_loss;
    Alcotest.test_case "clean link: zero retransmits" `Quick test_lossless_has_no_retransmits;
    Alcotest.test_case "duplication harmless" `Quick test_duplication_is_harmless;
    Alcotest.test_case "corruption detected and recovered" `Quick test_corruption_is_detected;
  ]
