(* Tests for the uksmp multicore substrate and its consumers. *)

module Smp = Uksmp.Smp
module Rss = Uknetdev.Rss
module Spin = Uklock.Lock.Spin
module Cluster = Ukapps.Cluster

(* --- coordinator basics -------------------------------------------------- *)

let test_spawn_everywhere () =
  let smp = Smp.create ~cores:4 () in
  let ran = Array.make 4 false in
  for c = 0 to 3 do
    ignore
      (Smp.spawn_on smp ~core:c ~pinned:true (fun () ->
           Smp.charge smp 1000;
           ran.(c) <- true))
  done;
  Smp.run smp;
  Alcotest.(check (array bool)) "all cores ran" [| true; true; true; true |] ran;
  for c = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "core %d advanced" c)
      true
      (Uksim.Clock.cycles (Smp.clock_of smp ~core:c) > 0)
  done

let test_cross_core_wake_is_ipi () =
  let smp = Smp.create ~cores:2 () in
  let tid = ref (-1) in
  let woken = ref false in
  tid :=
    Smp.spawn_on smp ~core:1 ~pinned:true (fun () ->
        Uksched.Sched.block ();
        woken := true);
  ignore
    (Smp.spawn_on smp ~core:0 ~pinned:true (fun () ->
         (* sleep so the core-1 thread runs (and blocks) first *)
         Uksched.Sched.sleep_ns 100.0;
         (* wake through core 0's scheduler: the thread lives on core 1,
            so the group routes it and charges an IPI there *)
         Uksched.Sched.wake (Smp.sched_of smp ~core:0) !tid));
  Smp.run smp;
  Alcotest.(check bool) "woken" true !woken;
  Alcotest.(check bool) "ipi counted" true ((Smp.stats smp ~core:1).Smp.ipis >= 1)

(* --- work stealing ------------------------------------------------------- *)

let steal_makespan ~cores ~tasks ~cost =
  let smp = Smp.create ~cores () in
  let done_count = ref 0 in
  for _ = 1 to tasks do
    (* all unpinned work lands on core 0; idle cores must steal it *)
    ignore
      (Smp.spawn_on smp ~core:0 (fun () ->
           Smp.charge smp cost;
           incr done_count))
  done;
  Smp.run smp;
  Alcotest.(check int) "all tasks ran" tasks !done_count;
  (smp, Smp.elapsed_ns smp)

let test_steal_liveness () =
  let tasks = 40 and cost = 200_000 in
  let smp, para = steal_makespan ~cores:4 ~tasks ~cost in
  let _, serial = steal_makespan ~cores:1 ~tasks ~cost in
  let total_steals =
    let s = ref 0 in
    for c = 0 to 3 do
      s := !s + (Smp.stats smp ~core:c).Smp.steals
    done;
    !s
  in
  Alcotest.(check bool) "steals happened" true (total_steals > 0);
  for c = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "core %d participated" c)
      true
      ((Smp.stats smp ~core:c).Smp.steps > 0)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "stealing beats serial (%.0f vs %.0f ns)" para serial)
    true
    (para < 0.5 *. serial)

let test_pinned_never_stolen () =
  let smp = Smp.create ~cores:4 () in
  for _ = 1 to 20 do
    ignore (Smp.spawn_on smp ~core:0 ~pinned:true (fun () -> Smp.charge smp 100_000))
  done;
  Smp.run smp;
  for c = 1 to 3 do
    Alcotest.(check int) (Printf.sprintf "core %d stole nothing" c) 0
      (Smp.stats smp ~core:c).Smp.steals
  done

(* --- determinism --------------------------------------------------------- *)

let test_trace_determinism () =
  List.iter
    (fun cores ->
      let go () =
        let smp = Smp.create ~seed:42 ~cores () in
        for i = 0 to (8 * cores) - 1 do
          ignore (Smp.spawn_on smp ~core:(i mod cores) (fun () -> Smp.charge smp (1000 * (1 + (i mod 7)))))
        done;
        Smp.run smp;
        (Smp.trace_hash smp, Smp.elapsed_ns smp)
      in
      let h1, e1 = go () and h2, e2 = go () in
      Alcotest.(check int) (Printf.sprintf "%d-core trace hash" cores) h1 h2;
      Alcotest.(check (float 0.0)) (Printf.sprintf "%d-core elapsed" cores) e1 e2)
    [ 1; 2; 4 ]

let test_cluster_determinism () =
  let go () =
    let c = Cluster.create ~seed:7 ~n:2 () in
    ignore (Cluster.add_httpd c (Ukapps.Httpd.In_memory [ ("/x", "hello") ]));
    let r = Cluster.run_httpd_load c ~connections_per_core:2 ~requests_per_core:60 ~path:"/x" () in
    (Cluster.trace_hash c, r.Ukapps.Wrk.rate_per_sec, r.Ukapps.Wrk.errors)
  in
  let h1, r1, e1 = go () and h2, r2, e2 = go () in
  Alcotest.(check int) "cluster trace hash" h1 h2;
  Alcotest.(check (float 0.0)) "cluster rate" r1 r2;
  Alcotest.(check int) "no errors" 0 (e1 + e2)

(* --- RSS ----------------------------------------------------------------- *)

let test_rss_stability () =
  let q () =
    Rss.queue_of_tuple ~n_queues:4 ~proto:6 ~src_ip:0x0a000002 ~src_port:20123
      ~dst_ip:0x0a000001 ~dst_port:80
  in
  let q0 = q () in
  for _ = 1 to 50 do
    Alcotest.(check int) "same tuple, same queue" q0 (q ())
  done;
  (* symmetric: the reply direction lands on the same queue *)
  Alcotest.(check int) "symmetric" q0
    (Rss.queue_of_tuple ~n_queues:4 ~proto:6 ~src_ip:0x0a000001 ~src_port:80
       ~dst_ip:0x0a000002 ~dst_port:20123)

let test_rss_spread () =
  let hits = Array.make 4 0 in
  for p = 0 to 255 do
    let q =
      Rss.queue_of_tuple ~n_queues:4 ~proto:6 ~src_ip:0x0a000002 ~src_port:(20000 + p)
        ~dst_ip:0x0a000001 ~dst_port:80
    in
    hits.(q) <- hits.(q) + 1
  done;
  Array.iteri
    (fun i n -> Alcotest.(check bool) (Printf.sprintf "queue %d used" i) true (n > 20))
    hits

let test_rss_frame_parsing () =
  (* Hand-build an ethernet+IPv4+TCP frame and check frame and tuple
     hashing agree; non-IP frames have no queue. *)
  let frame = Bytes.make 60 '\000' in
  Bytes.set frame 12 '\x08';
  Bytes.set frame 13 '\x00' (* ethertype IPv4 *);
  Bytes.set frame 14 '\x45' (* v4, ihl 5 *);
  Bytes.set frame 23 '\x06' (* TCP *);
  (* src 10.0.0.2, dst 10.0.0.1 *)
  Bytes.set frame 26 '\x0a';
  Bytes.set frame 29 '\x02';
  Bytes.set frame 30 '\x0a';
  Bytes.set frame 33 '\x01';
  (* sport 20123 = 0x4e9b, dport 80 *)
  Bytes.set frame 34 '\x4e';
  Bytes.set frame 35 '\x9b';
  Bytes.set frame 37 '\x50';
  let expect =
    Rss.queue_of_tuple ~n_queues:4 ~proto:6 ~src_ip:0x0a000002 ~src_port:20123
      ~dst_ip:0x0a000001 ~dst_port:80
  in
  Alcotest.(check (option int)) "frame hash = tuple hash" (Some expect)
    (Rss.queue_of_frame frame ~n_queues:4);
  let arp = Bytes.make 60 '\000' in
  Bytes.set arp 12 '\x08';
  Bytes.set arp 13 '\x06';
  Alcotest.(check (option int)) "ARP has no queue" None (Rss.queue_of_frame arp ~n_queues:4)

let test_cluster_rss_distribution () =
  (* Every server stack must see TCP traffic — flows really spread across
     the queues and stay on their cores. *)
  let c = Cluster.create ~n:4 () in
  ignore (Cluster.add_httpd c (Ukapps.Httpd.In_memory [ ("/x", "ok") ]));
  let r = Cluster.run_httpd_load c ~connections_per_core:2 ~requests_per_core:40 ~path:"/x" () in
  Alcotest.(check int) "no errors" 0 r.Ukapps.Wrk.errors;
  for i = 0 to 3 do
    let st = Uknetstack.Stack.stats (Cluster.server_stack c i) in
    Alcotest.(check bool)
      (Printf.sprintf "server stack %d saw tcp" i)
      true
      (st.Uknetstack.Stack.rx_tcp > 0)
  done

(* --- spinlock ------------------------------------------------------------ *)

let test_spin_contention () =
  let l = Spin.create ~name:"t" () in
  let c0 = Uksim.Clock.create () and c1 = Uksim.Clock.create () in
  Spin.acquire l c0 ~hold:1000;
  (* c1 is behind: it must spin until c0's release point *)
  Spin.acquire l c1 ~hold:500;
  let st = Spin.stats l in
  Alcotest.(check int) "acquisitions" 2 st.Spin.acquisitions;
  Alcotest.(check int) "contended" 1 st.Spin.contended;
  Alcotest.(check int) "wait cycles" 1000 st.Spin.wait_cycles;
  Alcotest.(check int) "c1 waited then held" 1500 (Uksim.Clock.cycles c1);
  (* c1 released at 1500; a late acquirer at 2000 sails through *)
  Uksim.Clock.advance c0 1000 (* c0 now at 2000 *);
  Spin.acquire l c0 ~hold:100;
  Alcotest.(check int) "no new contention" 1 (Spin.stats l).Spin.contended

let test_mutex_contention_accounting () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let m = Uklock.Lock.Mutex.create (Uklock.Lock.Threaded sched) in
  ignore
    (Uksched.Sched.spawn sched (fun () ->
         Uklock.Lock.Mutex.lock m;
         Uksched.Sched.sleep_ns 1000.0;
         Uklock.Lock.Mutex.unlock m));
  ignore
    (Uksched.Sched.spawn sched (fun () ->
         Uklock.Lock.Mutex.lock m;
         Uklock.Lock.Mutex.unlock m));
  Uksched.Sched.run sched;
  let waits, cycles = Uklock.Lock.Mutex.contention m in
  Alcotest.(check int) "one blocked acquisition" 1 waits;
  Alcotest.(check bool) "waited some cycles" true (cycles > 0)

(* --- per-core arena ------------------------------------------------------ *)

let test_arena_basic_and_refill () =
  let clocks = Array.init 2 (fun _ -> Uksim.Clock.create ()) in
  let backend =
    Ukalloc.Tlsf.create ~clock:(Uksim.Clock.create ()) ~base:(1 lsl 20) ~len:(1 lsl 20)
  in
  let arena = Ukalloc.Percore.create ~clocks ~backend ~batch:8 ~max_cached:16 () in
  let v0 = Ukalloc.Percore.view arena ~core:0 in
  let addrs = ref [] in
  for _ = 1 to 8 do
    match Ukalloc.Alloc.uk_malloc v0 100 with
    | Some a -> addrs := a :: !addrs
    | None -> Alcotest.fail "arena malloc failed"
  done;
  Alcotest.(check int) "unique addrs" 8 (List.length (List.sort_uniq compare !addrs));
  let ctr = Ukalloc.Percore.counters arena in
  Alcotest.(check int) "one refill of 8 serves 8 allocs" 1 ctr.Ukalloc.Percore.refills;
  Alcotest.(check int) "fast hits after first" 7 ctr.Ukalloc.Percore.fast_hits;
  (* batch amortization: backend saw one burst of allocs, not one per malloc *)
  Alcotest.(check int) "backend allocs = batch" 8 (backend.Ukalloc.Alloc.stats ()).Ukalloc.Alloc.allocs;
  List.iter (Ukalloc.Alloc.uk_free v0) !addrs;
  Alcotest.(check int) "frees accounted" 8 (v0.Ukalloc.Alloc.stats ()).Ukalloc.Alloc.frees;
  let ctr' = Ukalloc.Percore.counters arena in
  Alcotest.(check int) "freed objects cached in magazine" 8 ctr'.Ukalloc.Percore.cached_objs

let test_arena_oom_propagates () =
  let clocks = [| Uksim.Clock.create () |] in
  let rng = Uksim.Rng.create 5 in
  let backend =
    Ukalloc.Tlsf.create ~clock:(Uksim.Clock.create ()) ~base:(1 lsl 20) ~len:(1 lsl 20)
  in
  let faulty = Ukfault.Faultalloc.wrap ~rng ~fail_every:3 backend in
  let arena =
    Ukalloc.Percore.create ~clocks ~backend:(Ukfault.Faultalloc.alloc faulty) ~batch:4 ()
  in
  let v = Ukalloc.Percore.view arena ~core:0 in
  let got = ref 0 and failed = ref 0 and addrs = ref [] in
  for _ = 1 to 200 do
    match Ukalloc.Alloc.uk_malloc v 4097 (* bypass size: hits backend every time *) with
    | Some a ->
        incr got;
        addrs := a :: !addrs
    | None -> incr failed
  done;
  Alcotest.(check bool) "some failures injected" true (!failed > 0);
  Alcotest.(check bool) "some successes" true (!got > 0);
  Alcotest.(check int) "unique addrs" !got (List.length (List.sort_uniq compare !addrs));
  List.iter (Ukalloc.Alloc.uk_free v) !addrs;
  (* small-class path: a refill that gets zero objects must return None *)
  let exhausted = Ukfault.Faultalloc.wrap ~rng ~fail_rate:1.0 backend in
  let arena2 =
    Ukalloc.Percore.create ~clocks ~backend:(Ukfault.Faultalloc.alloc exhausted) ~batch:4 ()
  in
  let v2 = Ukalloc.Percore.view arena2 ~core:0 in
  Alcotest.(check (option int)) "oom propagates" None (Ukalloc.Alloc.uk_malloc v2 64)

let test_arena_beats_shared_lock_under_contention () =
  (* Same allocation trace on 4 cores: the arena's lock-free hot path must
     accumulate far less spin-wait than the everything-under-one-lock
     baseline. *)
  let run mode =
    let clocks = Array.init 4 (fun _ -> Uksim.Clock.create ()) in
    let backend =
      Ukalloc.Tlsf.create ~clock:(Uksim.Clock.create ()) ~base:(1 lsl 22) ~len:(1 lsl 22)
    in
    let views, spin =
      match mode with
      | `Arena ->
          let a = Ukalloc.Percore.create ~clocks ~backend () in
          (Array.init 4 (fun i -> Ukalloc.Percore.view a ~core:i), Ukalloc.Percore.lock a)
      | `Shared -> Ukalloc.Percore.shared_lock_views ~clocks ~backend ()
    in
    (* interleave cores like the coordinator would *)
    for round = 1 to 200 do
      ignore round;
      Array.iter
        (fun v ->
          match Ukalloc.Alloc.uk_malloc v 128 with
          | Some a -> Ukalloc.Alloc.uk_free v a
          | None -> Alcotest.fail "oom")
        views;
      Array.iter (fun c -> Uksim.Clock.advance c 50) clocks
    done;
    (Spin.stats spin).Spin.wait_cycles
  in
  let arena_wait = run `Arena and shared_wait = run `Shared in
  Alcotest.(check bool)
    (Printf.sprintf "arena wait %d << shared wait %d" arena_wait shared_wait)
    true
    (arena_wait * 4 < shared_wait)

let suite =
  [
    Alcotest.test_case "smp: spawn on every core" `Quick test_spawn_everywhere;
    Alcotest.test_case "smp: cross-core wake charges IPI" `Quick test_cross_core_wake_is_ipi;
    Alcotest.test_case "smp: work stealing liveness + speedup" `Quick test_steal_liveness;
    Alcotest.test_case "smp: pinned threads never stolen" `Quick test_pinned_never_stolen;
    Alcotest.test_case "smp: trace determinism across runs" `Quick test_trace_determinism;
    Alcotest.test_case "cluster: same-seed replay is identical" `Quick test_cluster_determinism;
    Alcotest.test_case "rss: stable and symmetric" `Quick test_rss_stability;
    Alcotest.test_case "rss: spreads over queues" `Quick test_rss_spread;
    Alcotest.test_case "rss: frame parsing" `Quick test_rss_frame_parsing;
    Alcotest.test_case "cluster: rss feeds every server stack" `Quick test_cluster_rss_distribution;
    Alcotest.test_case "spin: contention accounting" `Quick test_spin_contention;
    Alcotest.test_case "mutex: contention accounting" `Quick test_mutex_contention_accounting;
    Alcotest.test_case "arena: refill batching and fast path" `Quick test_arena_basic_and_refill;
    Alcotest.test_case "arena: OOM propagates (faultalloc)" `Quick test_arena_oom_propagates;
    Alcotest.test_case "arena vs shared lock contention" `Quick test_arena_beats_shared_lock_under_contention;
  ]
