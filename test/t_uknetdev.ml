(* Tests for uknetdev: netbufs, pools, wire, virtio driver datapaths. *)

module Nb = Uknetdev.Netbuf
module Nd = Uknetdev.Netdev
module Wire = Uknetdev.Wire
module Vn = Uknetdev.Virtio_net

let env () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  (clock, engine)

let test_netbuf_push_pull () =
  let b = Nb.of_bytes (Bytes.of_string "payload") in
  Alcotest.(check int) "len" 7 (Nb.len b);
  Nb.push b 4;
  Alcotest.(check int) "pushed" 11 (Nb.len b);
  Nb.pull b 4;
  Alcotest.(check string) "payload restored" "payload" (Bytes.to_string (Nb.to_payload b));
  Alcotest.check_raises "over-pull" (Invalid_argument "Netbuf.pull: beyond payload") (fun () ->
      Nb.pull b 100)

let test_netbuf_headroom_limit () =
  let b = Nb.alloc ~headroom:8 ~size:16 () in
  Nb.push b 8;
  Alcotest.check_raises "headroom exhausted" (Invalid_argument "Netbuf.push: no headroom")
    (fun () -> Nb.push b 1)

let netbuf_roundtrip_prop =
  QCheck.Test.make ~name:"netbuf push/pull roundtrips payload" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 0 100)) (int_range 0 64))
    (fun (payload, n) ->
      let b = Nb.of_bytes (Bytes.of_string payload) in
      Nb.push b n;
      Nb.pull b n;
      Bytes.to_string (Nb.to_payload b) = payload)

let test_pool () =
  let clock, _ = env () in
  let p = Nb.Pool.create ~clock ~count:2 ~size:128 () in
  Alcotest.(check int) "initial" 2 (Nb.Pool.available p);
  let a = Option.get (Nb.Pool.take p) in
  let b = Option.get (Nb.Pool.take p) in
  Alcotest.(check bool) "exhausted" true (Nb.Pool.take p = None);
  Nb.Pool.give p a;
  Nb.Pool.give p b;
  Alcotest.(check int) "restored" 2 (Nb.Pool.available p);
  let foreign = Nb.alloc ~size:64 () in
  Alcotest.check_raises "foreign buffer rejected"
    (Invalid_argument "Netbuf.Pool.give: buffer does not belong to this pool") (fun () ->
      Nb.Pool.give p foreign)

let test_pool_backed_by_allocator () =
  let clock, _ = env () in
  let alloc = Ukalloc.Tlsf.create ~clock ~base:(1 lsl 20) ~len:(1 lsl 20) in
  let _ = Nb.Pool.create ~clock ~alloc ~count:16 ~size:1500 () in
  Alcotest.(check int) "backing allocations made" 16 ((alloc.Ukalloc.Alloc.stats ()).Ukalloc.Alloc.allocs)

let test_wire_delivery () =
  let clock, engine = env () in
  let a, b = Wire.create_pair ~engine ~latency_ns:1000.0 () in
  let got = ref [] in
  Wire.set_receiver_bytes b (Some (fun frame -> got := Bytes.to_string frame :: !got));
  Wire.send_bytes a (Bytes.of_string "one");
  Wire.send_bytes a (Bytes.of_string "two");
  Uksim.Engine.run engine;
  Alcotest.(check (list string)) "in order" [ "one"; "two" ] (List.rev !got);
  Alcotest.(check int) "tx counted" 2 (Wire.tx_frames a);
  Alcotest.(check int) "rx counted" 2 (Wire.rx_frames b);
  Alcotest.(check bool) "latency applied" true (Uksim.Clock.ns clock >= 1000.0)

let test_wire_serialization () =
  (* Frames serialize at line rate: bulk transfer time >> latency. *)
  let _, engine = env () in
  let a, b = Wire.create_pair ~engine ~latency_ns:0.0 ~bandwidth_gbps:10.0 () in
  Wire.attach_sink b;
  for _ = 1 to 1000 do
    Wire.send_bytes a (Bytes.make 1250 'x')
  done;
  Uksim.Engine.run engine;
  let clock = Uksim.Engine.clock engine in
  (* 1000 * 1250B at 10Gb/s = 1ms *)
  Alcotest.(check bool)
    (Printf.sprintf "took %.0f ns" (Uksim.Clock.ns clock))
    true
    (Uksim.Clock.ns clock >= 0.99e6)

let test_wire_echo () =
  let _, engine = env () in
  let a, b = Wire.create_pair ~engine () in
  Wire.attach_echo b;
  let got = ref 0 in
  Wire.set_receiver a (Some (fun nb -> incr got; Nb.recycle nb));
  Wire.send_bytes a (Bytes.of_string "ping");
  Uksim.Engine.run engine;
  Alcotest.(check int) "reflected" 1 !got

let mk_virtio ?(backend = Vn.Vhost_net) () =
  let clock, engine = env () in
  let a, b = Wire.create_pair ~engine ~latency_ns:1000.0 () in
  let dev = Vn.create ~clock ~engine ~backend ~wire:a () in
  (clock, engine, dev, b)

let test_virtio_tx_reaches_wire () =
  let _, engine, dev, peer = mk_virtio () in
  Wire.attach_sink peer;
  let pkts = Array.init 8 (fun i -> Nb.of_bytes (Bytes.make (64 + i) 'p')) in
  let sent = dev.Nd.tx_burst ~qid:0 pkts in
  Alcotest.(check int) "all accepted" 8 sent;
  Uksim.Engine.run engine;
  Alcotest.(check int) "frames on the wire" 8 (Wire.rx_frames peer);
  let st = dev.Nd.stats () in
  Alcotest.(check int) "tx pkts" 8 st.Nd.tx_pkts;
  Alcotest.(check bool) "vhost-net kicked" true (st.Nd.tx_kicks >= 1)

let test_vhost_user_no_kicks () =
  let _, engine, dev, peer = mk_virtio ~backend:Vn.Vhost_user () in
  Wire.attach_sink peer;
  let pkts = Array.init 8 (fun _ -> Nb.of_bytes (Bytes.make 64 'p')) in
  ignore (dev.Nd.tx_burst ~qid:0 pkts);
  Uksim.Engine.run ~until:(Uksim.Clock.cycles (Uksim.Engine.clock engine) + 1_000_000) engine;
  Alcotest.(check int) "no VM exits" 0 ((dev.Nd.stats ()).Nd.tx_kicks);
  Alcotest.(check int) "frames still flow" 8 (Wire.rx_frames peer)

let test_virtio_rx_polling () =
  let clock, engine, dev, peer = mk_virtio () in
  dev.Nd.configure_queue ~qid:0
    { Nd.rx_path = Nd.Zero_copy; mode = Nd.Polling; rx_handler = None };
  Wire.send_bytes peer (Bytes.of_string "hello-guest");
  Uksim.Engine.run engine;
  Uksim.Clock.advance clock 1;
  let pkts = dev.Nd.rx_burst ~qid:0 ~max:4 in
  Alcotest.(check int) "one packet" 1 (List.length pkts);
  (match pkts with
  | [ nb ] -> Alcotest.(check string) "payload intact" "hello-guest" (Bytes.to_string (Nb.to_payload nb))
  | _ -> Alcotest.fail "expected one");
  Alcotest.(check int) "no irqs in polling mode" 0 ((dev.Nd.stats ()).Nd.rx_irqs)

let test_virtio_rx_interrupt_storm_avoidance () =
  let clock, engine, dev, peer = mk_virtio () in
  let irq_calls = ref 0 in
  dev.Nd.configure_queue ~qid:0
    {
      Nd.rx_path = Nd.Copy_into (fun () -> Some (Nb.alloc ~size:2048 ()));
      mode = Nd.Interrupt_driven;
      rx_handler = Some (fun () -> incr irq_calls);
    };
  (* Burst of frames before the guest drains: the line fires once. *)
  for i = 1 to 5 do
    Wire.send_bytes peer (Bytes.make (64 + i) 'z')
  done;
  Uksim.Engine.run engine;
  Alcotest.(check int) "one interrupt for the burst" 1 !irq_calls;
  Uksim.Clock.advance clock 1;
  let pkts = dev.Nd.rx_burst ~qid:0 ~max:16 in
  Alcotest.(check int) "burst drained" 5 (List.length pkts);
  (* Ring empty -> re-armed: next frame interrupts again. *)
  Wire.send_bytes peer (Bytes.make 60 'w');
  Uksim.Engine.run engine;
  Alcotest.(check int) "re-armed" 2 !irq_calls

let test_virtio_rx_drop_when_unconfigured () =
  let _, engine, dev, peer = mk_virtio () in
  Wire.send_bytes peer (Bytes.make 64 'q');
  Uksim.Engine.run engine;
  Alcotest.(check int) "dropped" 1 ((dev.Nd.stats ()).Nd.rx_dropped)

let test_virtio_ring_capacity () =
  let clock, engine = env () in
  let a, _b = Wire.create_pair ~engine () in
  let dev = Vn.create ~clock ~engine ~backend:Vn.Vhost_net ~wire:a ~ring_size:4 () in
  let pkts = Array.init 10 (fun _ -> Nb.of_bytes (Bytes.make 64 'r')) in
  let sent = dev.Nd.tx_burst ~qid:0 pkts in
  Alcotest.(check int) "bounded by ring" 4 sent

let test_loopback_pair () =
  let clock, engine = env () in
  let da, db = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let cfg = { Nd.rx_path = Nd.Zero_copy; mode = Nd.Polling; rx_handler = None } in
  da.Nd.configure_queue ~qid:0 cfg;
  db.Nd.configure_queue ~qid:0 cfg;
  ignore (da.Nd.tx_burst ~qid:0 [| Nb.of_bytes (Bytes.of_string "x-to-y") |]);
  Uksim.Engine.run engine;
  Uksim.Clock.advance clock 1;
  let got = db.Nd.rx_burst ~qid:0 ~max:4 in
  Alcotest.(check int) "delivered" 1 (List.length got);
  Alcotest.(check int) "b rx counted" 1 ((db.Nd.stats ()).Nd.rx_pkts)

let test_guest_costs_differ () =
  Alcotest.(check bool) "vhost-user cheaper per packet" true
    (Vn.guest_tx_cost Vn.Vhost_user < Vn.guest_tx_cost Vn.Vhost_net);
  Alcotest.(check bool) "host path: dpdk backend much faster" true
    (Vn.host_pkt_cost Vn.Vhost_user * 5 < Vn.host_pkt_cost Vn.Vhost_net)

let suite =
  [
    Alcotest.test_case "netbuf push/pull" `Quick test_netbuf_push_pull;
    Alcotest.test_case "netbuf headroom limit" `Quick test_netbuf_headroom_limit;
    QCheck_alcotest.to_alcotest netbuf_roundtrip_prop;
    Alcotest.test_case "netbuf pool" `Quick test_pool;
    Alcotest.test_case "pool backed by ukalloc" `Quick test_pool_backed_by_allocator;
    Alcotest.test_case "wire delivery" `Quick test_wire_delivery;
    Alcotest.test_case "wire line-rate serialization" `Quick test_wire_serialization;
    Alcotest.test_case "wire echo" `Quick test_wire_echo;
    Alcotest.test_case "virtio tx to wire" `Quick test_virtio_tx_reaches_wire;
    Alcotest.test_case "vhost-user polls without exits" `Quick test_vhost_user_no_kicks;
    Alcotest.test_case "virtio rx polling" `Quick test_virtio_rx_polling;
    Alcotest.test_case "interrupt storm avoidance (§3.1)" `Quick
      test_virtio_rx_interrupt_storm_avoidance;
    Alcotest.test_case "rx drop when unconfigured" `Quick test_virtio_rx_drop_when_unconfigured;
    Alcotest.test_case "tx ring capacity" `Quick test_virtio_ring_capacity;
    Alcotest.test_case "loopback pair" `Quick test_loopback_pair;
    Alcotest.test_case "backend cost model" `Quick test_guest_costs_differ;
  ]
