(* Aggregated test runner for the whole ukraft reproduction.

   Naming convention: each suite lives in test/t_<lib>.ml and registers
   here as ("<lib>", T_<lib>.suite), where <lib> is the lib/ directory
   it covers (suites spanning several libraries, or named after a
   scenario rather than a library, say so in their label). Keep the
   rows in alphabetical order so concurrent PRs merge cleanly. *)

let () =
  Alcotest.run "ukraft"
    [
      ("dns", T_dns.suite);
      ("fastpath (uknetdev+uknetstack+ukapps)", T_fastpath.suite);
      ("infer (ukapps+ukvfs+ukfleet)", T_infer.suite);
      ("ukalloc", T_ukalloc.suite);
      ("ukapps", T_ukapps.suite);
      ("ukblock", T_ukblock.suite);
      ("ukboot", T_ukboot.suite);
      ("ukbuild", T_ukbuild.suite);
      ("ukcheck", T_ukcheck.suite);
      ("ukcluster", T_ukcluster.suite);
      ("ukcompat", T_ukcompat.suite);
      ("ukconf", T_ukconf.suite);
      ("ukdebug", T_ukdebug.suite);
      ("ukfault", T_ukfault.suite);
      ("ukfleet", T_ukfleet.suite);
      ("ukgraph", T_ukgraph.suite);
      ("uklibparam", T_uklibparam.suite);
      ("uklock", T_uklock.suite);
      ("ukmmu+ukboot+ukplat", T_ukmmu.suite);
      ("uknetdev", T_uknetdev.suite);
      ("uknetstack", T_uknetstack.suite);
      ("ukos", T_ukos.suite);
      ("ukplat", T_ukplat.suite);
      ("ukring", T_ukring.suite);
      ("uksched", T_uksched.suite);
      ("uksec (mpk/asan/binary)", T_uksec.suite);
      ("uksim", T_uksim.suite);
      ("uksmp", T_uksmp.suite);
      ("ukstore", T_ukstore.suite);
      ("uksyscall", T_uksyscall.suite);
      ("uktcp-loss", T_uktcp_loss.suite);
      ("uktime", T_uktime.suite);
      ("uktrace", T_uktrace.suite);
      ("ukvfs", T_ukvfs.suite);
      ("unikraft", T_unikraft.suite);
    ]
