(* Aggregated test runner for the whole ukraft reproduction. *)

let () =
  Alcotest.run "ukraft"
    [
      ("uksim", T_uksim.suite);
      ("ukconf", T_ukconf.suite);
      ("ukgraph", T_ukgraph.suite);
      ("ukbuild", T_ukbuild.suite);
      ("ukalloc", T_ukalloc.suite);
      ("uksched", T_uksched.suite);
      ("uklock", T_uklock.suite);
      ("ukmmu+ukboot+ukplat", T_ukmmu.suite);
      ("uknetdev", T_uknetdev.suite);
      ("ukblock", T_ukblock.suite);
      ("uknetstack", T_uknetstack.suite);
      ("ukfault", T_ukfault.suite);
      ("uktcp-loss", T_uktcp_loss.suite);
      ("ukvfs", T_ukvfs.suite);
      ("uksyscall", T_uksyscall.suite);
      ("ukdebug", T_ukdebug.suite);
      ("uksec (mpk/asan/binary)", T_uksec.suite);
      ("uktime", T_uktime.suite);
      ("ukring", T_ukring.suite);
      ("uklibparam", T_uklibparam.suite);
      ("ukapps", T_ukapps.suite);
      ("dns", T_dns.suite);
      ("unikraft", T_unikraft.suite);
    ("uksmp", T_uksmp.suite);
      ("uktrace", T_uktrace.suite);
    ]
