(* Tests for ukcluster: network charges and partitions, host classes
   and crash/freeze lifecycle, phi-accrual detection (including the
   planted-bug control), the router's deadline/retry/hedge/admission
   machinery, live migration with abort-and-restart, the kill+clone
   baseline, seeded replay, and a ukcheck exploration fixture over the
   detector. The recurring invariant: offered = completed + shed +
   expired — no request stream ever observes a lost response. *)

module Net = Ukcluster.Netmodel
module Host = Ukcluster.Host
module Detector = Ukcluster.Detector
module Router = Ukcluster.Router
module Migrate = Ukcluster.Migrate
module Cluster = Ukcluster.Cluster
module Fh = Ukfault.Faulthost

let ms = Uksim.Units.msec
let steady ~dur rps = Ukfleet.Workload.steady ~rps ~duration_ns:(ms dur)

let check_no_lost r =
  Alcotest.(check int) "zero lost responses" 0 r.Cluster.lost

(* --- network model -------------------------------------------------------- *)

let test_net_charges () =
  (* 8 Gbps = 1 byte/ns: easy arithmetic. *)
  let n = Net.create ~latency_ns:1000.0 ~gbps:8.0 ~nodes:2 () in
  (match Net.transfer_ns n ~src:0 ~dst:1 ~bytes:500 with
  | Some d -> Alcotest.(check (float 0.01)) "latency + bytes/bw" 1500.0 d
  | None -> Alcotest.fail "open link dropped a transfer");
  Alcotest.(check (option (float 0.01))) "self-link is free" (Some 0.0)
    (Net.transfer_ns n ~src:1 ~dst:1 ~bytes:1_000_000);
  Alcotest.(check bool) "block reports the cut" true (Net.block n ~src:0 ~dst:1);
  Alcotest.(check bool) "double block is stale" false (Net.block n ~src:0 ~dst:1);
  Alcotest.(check (option (float 0.01))) "blocked link eats bytes" None
    (Net.transfer_ns n ~src:0 ~dst:1 ~bytes:1);
  Alcotest.(check bool) "reverse direction still open" true
    (Net.transfer_ns n ~src:1 ~dst:0 ~bytes:1 <> None);
  Alcotest.(check bool) "unblock restores" true (Net.unblock n ~src:0 ~dst:1);
  Alcotest.(check bool) "restored link carries" true
    (Net.transfer_ns n ~src:0 ~dst:1 ~bytes:1 <> None)

let test_net_partitions () =
  let n = Net.create ~nodes:4 () in
  Net.partition_asym n ~from_:[ 0; 1 ] ~to_:[ 3 ];
  Alcotest.(check bool) "asym: 0 -> 3 cut" false (Net.reachable n ~src:0 ~dst:3);
  Alcotest.(check bool) "asym: 3 -> 0 open" true (Net.reachable n ~src:3 ~dst:0);
  Alcotest.(check bool) "asym: bystander untouched" true (Net.reachable n ~src:2 ~dst:3);
  Net.heal n ~a:[ 0; 1 ] ~b:[ 3 ];
  Alcotest.(check bool) "healed" true (Net.reachable n ~src:0 ~dst:3);
  Net.partition n ~a:[ 0 ] ~b:[ 2; 3 ];
  Alcotest.(check bool) "sym: both directions cut" true
    ((not (Net.reachable n ~src:0 ~dst:2)) && not (Net.reachable n ~src:2 ~dst:0))

(* --- hosts ---------------------------------------------------------------- *)

let test_host_classes () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let x = Host.create ~clock ~engine ~seed:1 ~id:0 ~cls:Host.X86 ~image:Ukfleet.Image.httpd () in
  let a = Host.create ~clock ~engine ~seed:1 ~id:1 ~cls:Host.Arm ~image:Ukfleet.Image.httpd () in
  let svc h = (Ukfleet.Fleet.costs (Host.fleet h)).Ukfleet.Fleet.service_ns in
  Alcotest.(check (float 0.001)) "ARM-class serves at 2x the cost" 2.0 (svc a /. svc x);
  Alcotest.(check (float 0.001)) "capacity halves in step" 2.0
    (Host.capacity_rps x /. Host.capacity_rps a)

let test_host_crash_drops_replies () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let h = Host.create ~clock ~engine ~seed:3 ~id:0 ~cls:Host.X86 ~image:Ukfleet.Image.httpd () in
  let t0 = Host.settle_ns h in
  let at ns f = Uksim.Engine.at engine (Uksim.Clock.cycles_of_ns ns) f in
  let before = ref 0 and after = ref 0 in
  at t0 (fun () ->
      Alcotest.(check bool) "up host accepts" true
        (Host.submit h ~now_ns:t0 ~flow:7 ~on_reply:(fun ~ok:_ -> incr before));
      (* the crash lands while the request is in flight *)
      Alcotest.(check bool) "crash" true (Host.crash h ~now_ns:t0);
      Alcotest.(check bool) "crashed host refuses" false
        (Host.submit h ~now_ns:t0 ~flow:8 ~on_reply:(fun ~ok:_ -> ())));
  at (t0 +. ms 5.0) (fun () ->
      Alcotest.(check bool) "recover" true (Host.recover h ~now_ns:(t0 +. ms 5.0));
      ignore
        (Host.submit h ~now_ns:(t0 +. ms 5.0) ~flow:9 ~on_reply:(fun ~ok:_ -> incr after)));
  Uksim.Engine.run engine;
  Alcotest.(check int) "a crashed life never answers" 0 !before;
  Alcotest.(check int) "the next life does" 1 !after

(* --- detector ------------------------------------------------------------- *)

let fast_detector () = Detector.params ~interval_ns:(ms 1.0) ()

let test_detector_quiet_when_healthy () =
  let c = Cluster.create ~seed:11 ~n_hosts:2
      ~classes:[| Host.X86; Host.X86 |] ~detector_params:(fast_detector ()) () in
  let r = Cluster.run c (steady ~dur:40.0 800.0) in
  check_no_lost r;
  Alcotest.(check bool) "requests flowed" true (r.Cluster.completed > 0);
  Alcotest.(check int) "no false suspicion" 0 r.Cluster.suspects;
  Alcotest.(check int) "no false deaths" 0 r.Cluster.deads

let test_detector_crash_to_dead () =
  let c = Cluster.create ~seed:12 ~n_hosts:3
      ~classes:[| Host.X86; Host.X86; Host.X86 |]
      ~detector_params:(fast_detector ()) () in
  let t0 = Cluster.settle_ns c in
  let fh =
    Fh.arm ~clock:(Cluster.clock c) ~engine:(Cluster.engine c) ~ops:(Cluster.ops c)
      [ (t0 +. ms 10.0, Fh.Crash 1) ]
  in
  let r = Cluster.run c (steady ~dur:120.0 1500.0) in
  check_no_lost r;
  Alcotest.(check int) "the crash was applied" 1 (Fh.stats fh).Fh.applied;
  Alcotest.(check bool) "crash suspected" true (r.Cluster.suspects >= 1);
  Alcotest.(check bool) "then declared dead" true (r.Cluster.deads >= 1);
  Alcotest.(check bool) "dead is sticky" true
    (Detector.status (Cluster.detector c) 1 = Detector.Dead);
  Alcotest.(check bool) "shard collected, traffic rerouted" true
    (r.Cluster.completed > 0 && Router.collected (Cluster.router c) 1)

let test_detector_planted_bug () =
  (* The positive control: suspect_phi = 0 must flag live, reachable
     hosts. A detector change that stops this firing is broken. *)
  let c = Cluster.create ~seed:13 ~n_hosts:2
      ~classes:[| Host.X86; Host.X86 |]
      ~detector_params:(Detector.params ~interval_ns:(ms 1.0) ~suspect_phi:0.0 ()) () in
  let r = Cluster.run c (steady ~dur:30.0 500.0) in
  check_no_lost r;
  Alcotest.(check bool) "false positives on live hosts" true (r.Cluster.suspects > 0);
  Alcotest.(check bool) "pongs keep rescuing them" true (r.Cluster.recovers > 0);
  Alcotest.(check int) "but nobody is declared dead" 0 r.Cluster.deads

let test_freeze_suspect_recover () =
  let c = Cluster.create ~seed:14 ~n_hosts:2
      ~classes:[| Host.X86; Host.X86 |] ~detector_params:(fast_detector ()) () in
  let t0 = Cluster.settle_ns c in
  ignore
    (Fh.arm ~clock:(Cluster.clock c) ~engine:(Cluster.engine c) ~ops:(Cluster.ops c)
       [ (t0 +. ms 10.0, Fh.Freeze (0, ms 10.0)) ]);
  let r = Cluster.run c (steady ~dur:80.0 800.0) in
  check_no_lost r;
  Alcotest.(check bool) "gray failure suspected" true (r.Cluster.suspects >= 1);
  Alcotest.(check bool) "thaw recovers it" true (r.Cluster.recovers >= 1);
  Alcotest.(check int) "freeze is not death" 0 r.Cluster.deads;
  Alcotest.(check bool) "host is back" true (Host.up (Cluster.host c 0))

(* --- router --------------------------------------------------------------- *)

let test_full_partition_expires_not_loses () =
  let c = Cluster.create ~seed:21 ~n_hosts:2
      ~classes:[| Host.X86; Host.X86 |]
      ~detector_params:(fast_detector ())
      ~router_params:(Router.params ~deadline_ns:(ms 8.0) ()) () in
  (* the front is cut off from every host for the whole run *)
  Net.partition (Cluster.net c) ~a:[ Cluster.front c ] ~b:[ 0; 1 ];
  let r = Cluster.run c (steady ~dur:20.0 400.0) in
  check_no_lost r;
  Alcotest.(check int) "nothing completes across a full partition" 0 r.Cluster.completed;
  Alcotest.(check bool) "deadlines resolve the rest" true
    (r.Cluster.expired > 0 && r.Cluster.expired + r.Cluster.shed = r.Cluster.offered)

let test_asym_partition_detected_and_survived () =
  let c = Cluster.create ~seed:22 ~n_hosts:4
      ~classes:[| Host.X86; Host.X86; Host.X86; Host.X86 |]
      ~detector_params:(fast_detector ()) () in
  let t0 = Cluster.settle_ns c in
  (* host 0 receives requests but its responses vanish: the asymmetric
     case a naive connect-probe would never catch *)
  ignore
    (Fh.arm ~clock:(Cluster.clock c) ~engine:(Cluster.engine c) ~ops:(Cluster.ops c)
       [
         (t0 +. ms 5.0, Fh.Partition_asym ([ 0 ], [ Cluster.front c ]));
         (t0 +. ms 65.0, Fh.Heal ([ 0 ], [ Cluster.front c ]));
       ]);
  let r = Cluster.run c (steady ~dur:100.0 2000.0) in
  check_no_lost r;
  Alcotest.(check bool) "responses were eaten" true (r.Cluster.lost_replies > 0);
  Alcotest.(check bool) "pong starvation suspected the host" true (r.Cluster.suspects >= 1);
  Alcotest.(check bool) "the cluster kept serving" true
    (r.Cluster.completed > r.Cluster.offered * 8 / 10)

let test_retries_reroute_after_crash () =
  let c = Cluster.create ~seed:23 ~n_hosts:3
      ~classes:[| Host.X86; Host.X86; Host.X86 |]
      ~detector_params:(fast_detector ())
      ~router_params:(Router.params ~attempt_timeout_ns:(ms 2.0) ()) () in
  let t0 = Cluster.settle_ns c in
  ignore
    (Fh.arm ~clock:(Cluster.clock c) ~engine:(Cluster.engine c) ~ops:(Cluster.ops c)
       [ (t0 +. ms 10.0, Fh.Crash 2) ]);
  let r = Cluster.run c (steady ~dur:60.0 1500.0) in
  check_no_lost r;
  Alcotest.(check bool) "retries rerouted stranded attempts" true (r.Cluster.retries > 0);
  Alcotest.(check bool) "almost everything still completed" true
    (r.Cluster.completed > r.Cluster.offered * 8 / 10)

let test_admission_degrades_with_suspicion () =
  let c = Cluster.create ~seed:24 ~n_hosts:4
      ~classes:[| Host.X86; Host.X86; Host.X86; Host.X86 |]
      ~router_params:(Router.params ~deadline_ns:(ms 2.0) ()) () in
  let router = Cluster.router c in
  Router.suspect_host router 0;
  Router.suspect_host router 1;
  Router.suspect_host router 2;
  (* the admission window now covers one host's capacity, not four *)
  let cap3 = Host.capacity_rps (Cluster.host c 3) in
  let degraded_max = max 8 (int_of_float (2.0 *. cap3 *. ms 2.0 /. 1e9)) in
  let burst = (4 * degraded_max) + 50 in
  let t0 = Cluster.settle_ns c in
  let outcomes = Hashtbl.create 4 in
  Uksim.Engine.at (Cluster.engine c) (Uksim.Clock.cycles_of_ns t0) (fun () ->
      for i = 1 to burst do
        Router.offer router ~now_ns:t0 ~flow:i ~on_done:(fun o ~latency_ns:_ ->
            Hashtbl.replace outcomes o (1 + Option.value (Hashtbl.find_opt outcomes o) ~default:0))
      done);
  Uksim.Engine.run (Cluster.engine c);
  let count o = Option.value (Hashtbl.find_opt outcomes o) ~default:0 in
  Alcotest.(check int) "every offer resolved" burst
    (count Router.Completed + count Router.Shed + count Router.Expired);
  Alcotest.(check bool) "overload shed, not queued to death" true
    (count Router.Shed > 0);
  Alcotest.(check bool) "admitted load bounded by believed capacity" true
    (burst - count Router.Shed <= degraded_max)

let test_hedging_wins_against_straggler () =
  let c = Cluster.create ~seed:25 ~n_hosts:4
      ~classes:[| Host.X86; Host.X86; Host.X86; Host.Arm |]
      ~router_params:
        (Router.params ~hedge:true ~hedge_quantile:70.0
           ~hedge_min_ns:(Uksim.Units.usec 100.0) ~attempt_timeout_ns:(ms 4.0) ())
      () in
  (* host 3 sits behind a slow WAN hop: every request it serves pays
     ~3 ms round trip, far past the healthy hosts' p70 *)
  Net.set_link (Cluster.net c) ~src:(Cluster.front c) ~dst:3
    ~latency_ns:(ms 1.5) ~gbps:10.0;
  Net.set_link (Cluster.net c) ~src:3 ~dst:(Cluster.front c)
    ~latency_ns:(ms 1.5) ~gbps:10.0;
  let r = Cluster.run c (steady ~dur:80.0 3000.0) in
  check_no_lost r;
  Alcotest.(check bool) "hedges fired" true (r.Cluster.hedges > 0);
  Alcotest.(check bool) "some hedges beat the straggler" true (r.Cluster.hedge_wins > 0);
  Alcotest.(check bool) "losers were cancelled, not lost" true
    (r.Cluster.cancelled > 0)

(* --- migration ------------------------------------------------------------ *)

let test_migration_live () =
  let c = Cluster.create ~seed:31 ~n_hosts:3
      ~classes:[| Host.X86; Host.X86; Host.X86 |]
      ~detector_params:(fast_detector ()) () in
  let t0 = Cluster.settle_ns c in
  Cluster.migrate c ~at_ns:(t0 +. ms 10.0) ~src:0 ~dst:1;
  let r = Cluster.run c (steady ~dur:80.0 1500.0) in
  check_no_lost r;
  Alcotest.(check int) "one migration committed" 1 r.Cluster.migrations;
  Alcotest.(check int) "no aborts on the happy path" 0 r.Cluster.migration_aborts;
  Alcotest.(check int) "the shard moved" 1 (Router.host_of_slot (Cluster.router c) 0);
  Alcotest.(check bool) "blackout was bounded" true
    (Cluster.last_pause_ns c > 0.0 && Cluster.last_pause_ns c < ms 5.0)

let test_migration_aborts_when_dst_dies () =
  let c = Cluster.create ~seed:32 ~n_hosts:3
      ~classes:[| Host.X86; Host.X86; Host.X86 |]
      ~detector_params:(fast_detector ()) () in
  let t0 = Cluster.settle_ns c in
  Cluster.migrate c ~at_ns:(t0 +. ms 5.0) ~src:0 ~dst:1;
  (* the destination dies inside the first pre-copy round *)
  ignore
    (Fh.arm ~clock:(Cluster.clock c) ~engine:(Cluster.engine c) ~ops:(Cluster.ops c)
       [ (t0 +. ms 7.0, Fh.Crash 1) ]);
  let r = Cluster.run c (steady ~dur:120.0 1200.0) in
  check_no_lost r;
  Alcotest.(check bool) "the copy aborted" true (r.Cluster.migration_aborts >= 1);
  Alcotest.(check int) "and restarted to a live host" 1 r.Cluster.migrations;
  Alcotest.(check int) "landing on the survivor" 2
    (Router.host_of_slot (Cluster.router c) 0)

let test_migration_aborts_on_partition () =
  let c = Cluster.create ~seed:33 ~n_hosts:3
      ~classes:[| Host.X86; Host.X86; Host.X86 |]
      ~detector_params:(fast_detector ()) () in
  let t0 = Cluster.settle_ns c in
  Cluster.migrate c ~at_ns:(t0 +. ms 5.0) ~src:0 ~dst:1;
  ignore
    (Fh.arm ~clock:(Cluster.clock c) ~engine:(Cluster.engine c) ~ops:(Cluster.ops c)
       [ (t0 +. ms 7.0, Fh.Partition ([ 0 ], [ 1 ])) ]);
  let r = Cluster.run c (steady ~dur:120.0 1200.0) in
  check_no_lost r;
  Alcotest.(check bool) "src/dst split aborts the copy" true
    (r.Cluster.migration_aborts >= 1);
  Alcotest.(check int) "restart found a reachable destination" 1 r.Cluster.migrations;
  Alcotest.(check int) "shard landed off the cut" 2
    (Router.host_of_slot (Cluster.router c) 0)

let test_kill_clone_baseline () =
  let c = Cluster.create ~seed:34 ~n_hosts:3
      ~classes:[| Host.X86; Host.X86; Host.X86 |]
      ~detector_params:(fast_detector ()) () in
  let t0 = Cluster.settle_ns c in
  Cluster.kill_clone c ~at_ns:(t0 +. ms 10.0) ~src:0 ~dst:1;
  let r = Cluster.run c (steady ~dur:80.0 1200.0) in
  check_no_lost r;
  Alcotest.(check bool) "source is gone" true
    (Host.state (Cluster.host c 0) = Host.Crashed);
  Alcotest.(check int) "shard cloned to the destination" 1
    (Router.host_of_slot (Cluster.router c) 0);
  Alcotest.(check bool) "service continued" true (r.Cluster.completed > 0)

(* --- heavy image ----------------------------------------------------------- *)

let test_infer_image_served_across_hosts () =
  (* The serving tier is app-agnostic: an inference image (heavier boot,
     weight-pass service times) routes, completes and stays lossless
     exactly like the httpd default. *)
  let img = Ukfleet.Image.infer ~size_mb:8 () in
  let c = Cluster.create ~seed:19 ~n_hosts:3 ~image:img
      ~classes:[| Host.X86; Host.X86; Host.X86 |] () in
  let r = Cluster.run c (steady ~dur:80.0 800.0) in
  check_no_lost r;
  Alcotest.(check bool) "requests completed" true (r.Cluster.completed > 0);
  Alcotest.(check int) "offered conserves" r.Cluster.offered
    (r.Cluster.completed + r.Cluster.shed + r.Cluster.expired);
  Ukfleet.Image.uncache img

(* --- replay --------------------------------------------------------------- *)

let drill seed =
  let c = Cluster.create ~seed ~n_hosts:4
      ~detector_params:(fast_detector ())
      ~router_params:(Router.params ~hedge:true ()) () in
  let t0 = Cluster.settle_ns c in
  ignore
    (Fh.arm ~clock:(Cluster.clock c) ~engine:(Cluster.engine c) ~ops:(Cluster.ops c)
       [
         (t0 +. ms 10.0, Fh.Partition_asym ([ 1 ], [ Cluster.front c ]));
         (t0 +. ms 30.0, Fh.Heal ([ 1 ], [ Cluster.front c ]));
         (t0 +. ms 40.0, Fh.Crash 2);
       ]);
  Cluster.migrate c ~at_ns:(t0 +. ms 20.0) ~src:0 ~dst:3;
  Cluster.run c
    (Ukfleet.Workload.diurnal ~base_rps:1200.0 ~amplitude:0.6 ~period_ns:(ms 40.0)
       ~duration_ns:(ms 80.0))

let test_replay_determinism () =
  let a = drill 77 and b = drill 77 in
  Alcotest.(check bool) "same seed, byte-identical drill" true (a = b);
  Alcotest.(check int) "and still zero lost" 0 a.Cluster.lost;
  let cdiff = drill 78 in
  Alcotest.(check bool) "different seed, different trace" true
    (cdiff.Cluster.trace_hash <> a.Cluster.trace_hash)

(* --- ukcheck: schedule exploration over the detector ----------------------- *)

let detector_fixture smp ~seed =
  let clock = Uksmp.Smp.clock_of smp ~core:0 in
  let engine = Uksmp.Smp.engine_of smp ~core:0 in
  let net = Net.create ~nodes:3 () in
  let horizon = ms 30.0 in
  let d =
    Detector.create ~clock ~engine
      ~rng:(Uksim.Rng.create (seed lxor 0xdead))
      ~net ~front:2 ~hosts:[ 0; 1 ]
      ~params:(Detector.params ~interval_ns:(ms 1.0) ())
      ~probe:(fun _ -> true)
      ~running:(fun () -> Uksim.Clock.ns clock < horizon)
      ()
  in
  Detector.start d;
  (* competing work on both cores gives the explorer its choice points *)
  for core = 0 to 1 do
    ignore (Uksmp.Smp.spawn_on smp ~core (fun () -> ()))
  done;
  fun () ->
    Ukcheck.Prop.all
      [
        Ukcheck.Prop.require (Detector.deads d = 0)
          "live reachable host declared dead";
        Ukcheck.Prop.require
          (Detector.status d 0 <> Detector.Dead && Detector.status d 1 <> Detector.Dead)
          "sticky dead on a healthy host";
      ]

let test_explore_detector_never_buries_the_living () =
  Ukcheck.Prop.check ~cores:2 ~schedules:24 ~seeds:[ 1; 2 ]
    ~name:"no schedule buries a live, reachable host" detector_fixture

let suite =
  [
    Alcotest.test_case "netmodel: link charges + blocks" `Quick test_net_charges;
    Alcotest.test_case "netmodel: partitions, asym + heal" `Quick test_net_partitions;
    Alcotest.test_case "host: ARM class costs 2x" `Quick test_host_classes;
    Alcotest.test_case "host: crashed life never answers" `Quick
      test_host_crash_drops_replies;
    Alcotest.test_case "detector: quiet when healthy" `Quick
      test_detector_quiet_when_healthy;
    Alcotest.test_case "detector: crash -> suspect -> dead" `Quick
      test_detector_crash_to_dead;
    Alcotest.test_case "detector: planted bug control" `Quick test_detector_planted_bug;
    Alcotest.test_case "detector: freeze -> suspect -> recover" `Quick
      test_freeze_suspect_recover;
    Alcotest.test_case "router: full partition expires, loses nothing" `Quick
      test_full_partition_expires_not_loses;
    Alcotest.test_case "router: asymmetric partition survived" `Quick
      test_asym_partition_detected_and_survived;
    Alcotest.test_case "router: retries reroute after crash" `Quick
      test_retries_reroute_after_crash;
    Alcotest.test_case "router: admission degrades with suspicion" `Quick
      test_admission_degrades_with_suspicion;
    Alcotest.test_case "router: hedging beats the straggler" `Quick
      test_hedging_wins_against_straggler;
    Alcotest.test_case "migrate: live, bounded blackout" `Quick test_migration_live;
    Alcotest.test_case "migrate: dst death -> abort + restart" `Quick
      test_migration_aborts_when_dst_dies;
    Alcotest.test_case "migrate: partition -> abort + restart" `Quick
      test_migration_aborts_on_partition;
    Alcotest.test_case "kill+clone baseline works" `Quick test_kill_clone_baseline;
    Alcotest.test_case "seeded drill replays byte-identically" `Quick
      test_replay_determinism;
    Alcotest.test_case "inference image served across hosts" `Quick
      test_infer_image_served_across_hosts;
    Alcotest.test_case "ukcheck: no schedule buries the living" `Quick
      test_explore_detector_never_buries_the_living;
  ]
