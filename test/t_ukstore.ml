(* Tests for ukstore: the canonical merkle trie, journal durability,
   crash recovery (the matrix: a crash at every sector boundary of a
   commit's journal record must recover to exactly the last durable
   commit), three-way merge, and the Resp integration's persistence. *)

module St = Ukstore.Store
module Tr = Ukstore.Tree
module Fb = Ukfault.Faultblk
module B = Ukblock.Blockdev

let clock () = Uksim.Clock.create ()

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "ukstore error: %s" (Ukvfs.Fs.errno_to_string e)

let fresh ?(journal_sectors = 64) ?(capacity_sectors = 16384) () =
  let c = clock () in
  let dev = Ukblock.Virtio_blk.create_ramdisk ~clock:c ~capacity_sectors () in
  (c, dev, ok (St.format ~clock:c ~journal_sectors dev))

let set t k v = ok (St.set t k v)
let get t k = ok (St.get t k)
let del t k = ok (St.del t k)
let commit ?msg t = ok (St.commit t ?msg ())

(* --- basic KV + commit/checkout ------------------------------------------- *)

let test_basic_kv () =
  let _, _, t = fresh () in
  set t "alpha" "1";
  set t "beta" "2";
  Alcotest.(check (option string)) "get" (Some "1") (get t "alpha");
  Alcotest.(check (option string)) "missing" None (get t "gamma");
  set t "alpha" "updated";
  Alcotest.(check (option string)) "overwrite" (Some "updated") (get t "alpha");
  Alcotest.(check bool) "del hits" true (del t "beta");
  Alcotest.(check bool) "del misses" false (del t "beta");
  Alcotest.(check (option string)) "deleted" None (get t "beta")

let test_commit_checkout () =
  let _, _, t = fresh () in
  set t "k" "v1";
  let c1 = commit ~msg:"first" t in
  set t "k" "v2";
  set t "j" "x";
  let c2 = commit ~msg:"second" t in
  Alcotest.(check bool) "distinct commits" true (c1 <> c2);
  ok (St.checkout t c1);
  Alcotest.(check (option string)) "old value visible" (Some "v1") (get t "k");
  Alcotest.(check (option string)) "later key absent" None (get t "j");
  ok (St.checkout t c2);
  Alcotest.(check (option string)) "new value back" (Some "v2") (get t "k");
  let info = ok (St.commit_info t c2) in
  Alcotest.(check (list int)) "parent chain" [ c1 ] info.Tr.parents;
  Alcotest.(check string) "message" "second" info.Tr.msg

let test_empty_commit_noop () =
  let _, _, t = fresh () in
  set t "k" "v";
  let c1 = commit t in
  let c2 = commit t in
  Alcotest.(check int) "clean commit is a no-op" c1 c2;
  Alcotest.(check int) "only one journal record" 1 (St.stats t).St.journal_records

(* --- persistence round-trips ----------------------------------------------- *)

let test_remount_replays_journal () =
  let c, dev, t = fresh () in
  set t "a" "1";
  set t "b" "2";
  let h1 = commit t in
  set t "a" "3";
  let h2 = commit t in
  (* No checkpoint: everything lives in the journal only. *)
  let t' = ok (St.open_ ~clock:c dev) in
  Alcotest.(check int) "head recovered" h2 (St.head t');
  Alcotest.(check int) "two records replayed" 2 (St.stats t').St.replayed_records;
  Alcotest.(check (option string)) "value" (Some "3") (ok (St.get t' "a"));
  Alcotest.(check (option string)) "other value" (Some "2") (ok (St.get t' "b"));
  ok (St.checkout t' h1);
  Alcotest.(check (option string)) "history intact" (Some "1") (ok (St.get t' "a"))

let test_remount_after_checkpoint () =
  let c, dev, t = fresh () in
  for i = 1 to 50 do
    set t (Printf.sprintf "key-%02d" i) (Printf.sprintf "val-%d" (i * i))
  done;
  let h = commit t in
  ok (St.checkpoint t);
  let t' = ok (St.open_ ~clock:c dev) in
  Alcotest.(check int) "head from slot" h (St.head t');
  Alcotest.(check int) "no journal replay needed" 0 (St.stats t').St.replayed_records;
  (* Cold reads come from the data area and verify structural hashes. *)
  Alcotest.(check (option string)) "cold read" (Some "val-49") (ok (St.get t' "key-07"));
  Alcotest.(check int) "cold reads miss the cache" 0 (St.stats t').St.cache_hits |> ignore;
  Alcotest.(check bool) "misses counted" true ((St.stats t').St.cache_misses > 0)

let test_content_hash_matches_across_stores () =
  let _, _, t1 = fresh () in
  let _, _, t2 = fresh () in
  (* Different insertion orders, same final map. *)
  List.iter (fun (k, v) -> set t1 k v) [ ("a", "1"); ("b", "2"); ("c", "3"); ("d", "4") ];
  List.iter (fun (k, v) -> set t2 k v) [ ("d", "4"); ("b", "2"); ("a", "1"); ("c", "9") ];
  set t2 "c" "3";
  Alcotest.(check int) "same content, same root" (St.content_hash t1) (St.content_hash t2);
  set t2 "e" "5";
  Alcotest.(check bool) "divergence changes root" true
    (St.content_hash t1 <> St.content_hash t2)

(* --- qcheck properties ------------------------------------------------------ *)

let key_gen = QCheck.(string_gen_of_size (Gen.int_range 1 12) Gen.printable)
let kv_list_gen = QCheck.(small_list (pair key_gen (string_of_size (Gen.int_range 0 20))))

(* Dedup by key, last write wins — the map semantics of a KV store. *)
let as_map kvs =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) kvs;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let prop_commit_checkout_roundtrip =
  QCheck.Test.make ~name:"commit/checkout round-trips any KV set" ~count:60 kv_list_gen
    (fun kvs ->
      let c, dev, t = fresh () in
      List.iter (fun (k, v) -> set t k v) kvs;
      ignore (commit t);
      let t' = ok (St.open_ ~clock:c dev) in
      ok (St.to_list t') = as_map kvs)

let prop_structural_hash_order_independent =
  QCheck.Test.make ~name:"root hash ignores insertion order" ~count:60
    QCheck.(pair kv_list_gen (small_list QCheck.small_nat))
    (fun (kvs, shuffle) ->
      let _, _, t1 = fresh () in
      let _, _, t2 = fresh () in
      (* A deterministic permutation driven by the generated ints. *)
      let arr = Array.of_list kvs in
      let n = Array.length arr in
      List.iteri
        (fun i s ->
          if n > 1 then begin
            let a = i mod n and b = s mod n in
            let tmp = arr.(a) in
            arr.(a) <- arr.(b);
            arr.(b) <- tmp
          end)
        shuffle;
      List.iter (fun (k, v) -> set t1 k v) kvs;
      Array.iter (fun (k, v) -> set t2 k v) arr;
      (* Replay the original order on top to make the maps equal (the
         permutation may have changed which duplicate-key write wins). *)
      List.iter (fun (k, v) -> set t2 k v) kvs;
      St.content_hash t1 = St.content_hash t2)

let prop_delete_restores_hash =
  QCheck.Test.make ~name:"insert then delete restores the root hash" ~count:60
    QCheck.(pair kv_list_gen (pair key_gen (string_of_size (Gen.return 4))))
    (fun (kvs, (k, v)) ->
      QCheck.assume (not (List.mem_assoc k kvs));
      let _, _, t = fresh () in
      List.iter (fun (k, v) -> set t k v) kvs;
      let before = St.content_hash t in
      set t k v;
      let mid = St.content_hash t in
      ignore (del t k);
      St.content_hash t = before && mid <> before)

let prop_merge_conflict_free =
  QCheck.Test.make ~name:"merge of disjoint edits is commutative and conflict-free" ~count:40
    QCheck.(pair kv_list_gen kv_list_gen)
    (fun (left, right) ->
      (* Prefix the keys so the two edit sets are disjoint by construction. *)
      let left = List.map (fun (k, v) -> ("l:" ^ k, v)) left in
      let right = List.map (fun (k, v) -> ("r:" ^ k, v)) right in
      let run first second =
        let _, _, t = fresh () in
        set t "base" "b";
        let b = commit t in
        List.iter (fun (k, v) -> set t k v) first;
        let cf = commit t in
        ok (St.checkout t b);
        List.iter (fun (k, v) -> set t k v) second;
        ignore (commit t);
        let h, conflicts = ok (St.merge t cf ()) in
        (h, conflicts, St.content_hash t)
      in
      let h1, n1, r1 = run left right in
      let h2, n2, r2 = run right left in
      n1 = 0 && n2 = 0 && h1 = h2 && r1 = r2)

let prop_merge_idempotent =
  QCheck.Test.make ~name:"re-merging an ancestor is the identity" ~count:40 kv_list_gen
    (fun kvs ->
      let _, _, t = fresh () in
      set t "seed" "s";
      let c1 = commit t in
      List.iter (fun (k, v) -> set t k v) kvs;
      let c2 = commit t in
      let h, conflicts = ok (St.merge t c1 ()) in
      h = c2 && conflicts = 0 && St.head t = c2)

let test_merge_conflict_policy () =
  let _, _, t = fresh () in
  set t "k" "base";
  set t "stable" "s";
  let b = commit t in
  set t "k" "ours";
  let co = commit t in
  ok (St.checkout t b);
  set t "k" "theirs";
  ignore (commit t);
  let _, conflicts = ok (St.merge t co ()) in
  Alcotest.(check int) "one conflict" 1 conflicts;
  (* Winner is decided by blob hash, not by which side merged. *)
  let winner = match get t "k" with Some v -> v | None -> Alcotest.fail "k vanished" in
  Alcotest.(check bool) "winner is one of the contenders" true
    (winner = "ours" || winner = "theirs");
  Alcotest.(check (option string)) "untouched key survives" (Some "s") (get t "stable");
  (* Mirror image: same winner. *)
  let _, _, t2 = fresh () in
  set t2 "k" "base";
  set t2 "stable" "s";
  let b2 = commit t2 in
  set t2 "k" "theirs";
  let ct = commit t2 in
  ok (St.checkout t2 b2);
  set t2 "k" "ours";
  ignore (commit t2);
  let _, c2 = ok (St.merge t2 ct ()) in
  Alcotest.(check int) "mirror conflict" 1 c2;
  Alcotest.(check (option string)) "same winner either way" (Some winner) (get t2 "k")

(* --- crash matrix -----------------------------------------------------------

   The heart of the durability claim. Build a store, commit [pre]
   commits, then attempt one more commit with the device armed to die
   after n sectors, for every n from 0 up to the full record. Remount
   and check the invariant: if the doomed commit reported Ok it must be
   recovered; if it reported an error, the store must recover to
   exactly the previous commit — never a half state. *)

let crash_matrix_case ~arm_sectors ~pre =
  let c = clock () in
  let inner = Ukblock.Virtio_blk.create_ramdisk ~clock:c ~capacity_sectors:16384 () in
  let rng = Uksim.Rng.create 7 in
  let fb = Fb.wrap ~clock:c ~rng ~plan:(Fb.plan ()) inner in
  let dev = Fb.dev fb in
  let t = ok (St.format ~clock:c ~journal_sectors:64 dev) in
  for i = 1 to pre do
    set t (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i);
    ignore (commit t)
  done;
  let survivor = St.head t in
  Fb.crash_after_writes fb arm_sectors;
  set t "doomed" "payload";
  let outcome = St.commit t () in
  Fb.revive fb;
  let t' = ok (St.open_ ~clock:c inner) in
  (match outcome with
  | Ok h ->
      Alcotest.(check int)
        (Printf.sprintf "arm=%d: acked commit recovered" arm_sectors)
        h (St.head t');
      Alcotest.(check (option string))
        (Printf.sprintf "arm=%d: acked write present" arm_sectors)
        (Some "payload")
        (ok (St.get t' "doomed"))
  | Error _ ->
      Alcotest.(check int)
        (Printf.sprintf "arm=%d: unacked commit rolled back" arm_sectors)
        survivor (St.head t');
      Alcotest.(check (option string))
        (Printf.sprintf "arm=%d: torn write invisible" arm_sectors)
        None
        (ok (St.get t' "doomed")));
  (* Either way, history up to the survivor is intact. *)
  if pre > 0 then
    Alcotest.(check (option string))
      (Printf.sprintf "arm=%d: old data intact" arm_sectors)
      (Some (Printf.sprintf "v%d" pre))
      (ok (St.get t' (Printf.sprintf "k%d" pre)))

let test_crash_matrix () =
  (* A commit's record here is a handful of sectors; sweep well past it
     so the last cases are clean (no crash reached). *)
  for arm = 0 to 12 do
    crash_matrix_case ~arm_sectors:arm ~pre:3
  done

let test_crash_on_first_commit () =
  for arm = 0 to 6 do
    crash_matrix_case ~arm_sectors:arm ~pre:0
  done

let test_crash_during_checkpoint () =
  let c = clock () in
  let inner = Ukblock.Virtio_blk.create_ramdisk ~clock:c ~capacity_sectors:16384 () in
  let rng = Uksim.Rng.create 7 in
  let fb = Fb.wrap ~clock:c ~rng ~plan:(Fb.plan ()) inner in
  let dev = Fb.dev fb in
  let t = ok (St.format ~clock:c ~journal_sectors:64 dev) in
  for i = 1 to 8 do
    set t (Printf.sprintf "k%d" i) (String.make 600 (Char.chr (64 + i)));
    ignore (commit t)
  done;
  let head = St.head t in
  (* Kill the device partway through checkpoint's data-area writes: the
     journal is already durable, so nothing may be lost. *)
  for arm = 0 to 20 do
    Fb.crash_after_writes fb (arm * 2);
    ignore (St.checkpoint t : (unit, Ukvfs.Fs.errno) result);
    Fb.revive fb;
    let t' = ok (St.open_ ~clock:c inner) in
    Alcotest.(check int)
      (Printf.sprintf "ckpt arm=%d: head survives" arm)
      head (St.head t');
    Alcotest.(check (option string))
      (Printf.sprintf "ckpt arm=%d: data survives" arm)
      (Some (String.make 600 'H'))
      (ok (St.get t' "k8"))
  done

let test_recovery_is_deterministic () =
  let c = clock () in
  let dev = Ukblock.Virtio_blk.create_ramdisk ~clock:c ~capacity_sectors:16384 () in
  let t = ok (St.format ~clock:c dev) in
  for i = 1 to 20 do
    set t (Printf.sprintf "key-%d" i) (Printf.sprintf "value-%d" i);
    if i mod 3 = 0 then ignore (commit t)
  done;
  ignore (commit t);
  let t1 = ok (St.open_ ~clock:c dev) in
  let t2 = ok (St.open_ ~clock:c dev) in
  Alcotest.(check int) "same head" (St.head t1) (St.head t2);
  Alcotest.(check bool) "same content" true (ok (St.to_list t1) = ok (St.to_list t2));
  Alcotest.(check int) "same root hash" (St.content_hash t1) (St.content_hash t2)

(* --- journal ring / checkpoint pressure ------------------------------------ *)

let test_journal_ring_wraps_via_checkpoint () =
  (* A tiny journal forces the Enospc → checkpoint → retry path. *)
  let _, _, t = fresh ~journal_sectors:12 () in
  for i = 1 to 40 do
    set t (Printf.sprintf "k%d" i) (String.make 100 'x');
    ignore (commit t)
  done;
  Alcotest.(check int) "all commits landed" 40 (St.stats t).St.commits;
  Alcotest.(check bool) "checkpoints forced" true ((St.stats t).St.checkpoints > 0);
  Alcotest.(check (option string)) "data intact" (Some (String.make 100 'x')) (get t "k40")

(* --- the served workload ---------------------------------------------------- *)

let test_store_server_cluster () =
  let cl = Ukapps.Cluster.create ~seed:11 ~n:1 () in
  let srvs = Ukapps.Cluster.add_store cl ~keys:64 () in
  let r =
    Ukapps.Cluster.run_store_load cl ~connections_per_core:4 ~requests_per_core:400
      ~write_frac:0.5 ~keyspace:128 ~commit_every:50 ()
  in
  Alcotest.(check int) "no protocol errors" 0 r.Ukapps.Store.errors;
  Alcotest.(check int) "all requests answered" 400 r.Ukapps.Store.requests;
  let st = Ukapps.Store.stats srvs.(0) in
  Alcotest.(check int) "server saw them all" 400 st.Ukapps.Store.requests;
  Alcotest.(check bool) "sets happened" true (st.Ukapps.Store.sets > 0);
  Alcotest.(check bool) "commits happened" true (st.Ukapps.Store.commits > 0);
  Alcotest.(check bool) "throughput positive" true (r.Ukapps.Store.rate_per_sec > 0.0)

let test_store_server_fast_replay_identical () =
  let run () =
    let cl = Ukapps.Cluster.create ~seed:23 ~n:2 () in
    let srvs = Ukapps.Cluster.add_store_fast cl ~keys:64 () in
    let r =
      Ukapps.Cluster.run_store_load_fast cl ~connections_per_core:4
        ~requests_per_core:300 ~write_frac:0.3 ~commit_every:40 ()
    in
    let roots = Array.map Ukapps.Store.state_hash srvs in
    (r.Ukapps.Store.errors, roots, Ukapps.Cluster.trace_hash cl)
  in
  let e1, roots1, h1 = run () in
  let e2, roots2, h2 = run () in
  Alcotest.(check int) "fast path clean" 0 e1;
  Alcotest.(check bool) "same seed, same store roots" true (roots1 = roots2);
  Alcotest.(check int) "same seed, same trace hash" h1 h2;
  Alcotest.(check int) "errors deterministic" e1 e2

let test_store_server_survives_crash_restart () =
  (* Serve writes against a fault-wrapped device, kill it mid-flight,
     remount: the store must come back to the last acked COMMIT. *)
  let c = clock () in
  let inner = Ukblock.Virtio_blk.create_ramdisk ~clock:c ~capacity_sectors:16384 () in
  let rng = Uksim.Rng.create 3 in
  let fb = Fb.wrap ~clock:c ~rng ~plan:(Fb.plan ()) inner in
  let t = ok (St.format ~clock:c (Fb.dev fb)) in
  let srv = Ukapps.Store.mk ~clock:c ~commit_every:10 ~store:t () in
  let seen = ref [] in
  (* Drive the server's execute path directly (no network needed to
     exercise persistence semantics). *)
  for i = 0 to 34 do
    let r = Ukapps.Store.execute srv (Printf.sprintf "SET user%d data%d" i i) in
    seen := r :: !seen
  done;
  let durable_head = St.head t in
  Fb.crash_after_writes fb 0;
  (* These writes are acked into the working tree but the device is dead:
     the next auto-commit fails and nothing new becomes durable. *)
  for i = 100 to 120 do
    ignore (Ukapps.Store.execute srv (Printf.sprintf "SET user%d data%d" i i))
  done;
  Fb.revive fb;
  let t' = ok (St.open_ ~clock:c inner) in
  Alcotest.(check int) "recovered to last durable commit" durable_head (St.head t');
  Alcotest.(check (option string)) "committed data present" (Some "data9")
    (ok (St.get t' "user9"));
  Alcotest.(check (option string)) "post-crash writes gone" None (ok (St.get t' "user100"))

(* --- RESP persistence -------------------------------------------------------- *)

let mk_resp ?persist () =
  let c = clock () in
  let engine = Uksim.Engine.create c in
  let sched = Uksched.Sched.create_cooperative ~clock:c ~engine in
  let da, _ = Uknetdev.Loopback.create_pair ~clock:c ~engine () in
  let stack =
    Uknetstack.Stack.create ~clock:c ~engine ~sched ~dev:da
      {
        Uknetstack.Stack.mac = Uknetstack.Addr.Mac.of_int 1;
        ip = Uknetstack.Addr.Ipv4.of_string "10.0.0.1";
        netmask = Uknetstack.Addr.Ipv4.of_string "255.255.255.0";
        gateway = None;
      }
  in
  let alloc = Ukalloc.Tlsf.create ~clock:c ~base:(1 lsl 24) ~len:(1 lsl 24) in
  Ukapps.Resp_store.create ~clock:c ~sched ~stack ~alloc ?persist ()

let resp_exec s args =
  match Ukapps.Resp_store.execute s args with
  | Ukapps.Resp.Error e -> Alcotest.failf "resp error: %s" e
  | v -> v

let test_resp_persist_restart_replay () =
  let c = clock () in
  let dev = Ukblock.Virtio_blk.create_ramdisk ~clock:c ~capacity_sectors:16384 () in
  let st = ok (St.format ~clock:c dev) in
  let s = mk_resp ~persist:st () in
  ignore (resp_exec s [ "SET"; "user:1"; "ada" ]);
  ignore (resp_exec s [ "SET"; "user:2"; "grace" ]);
  ignore (resp_exec s [ "INCR"; "visits" ]);
  ignore (resp_exec s [ "INCR"; "visits" ]);
  ignore (resp_exec s [ "SET"; "tmp"; "gone" ]);
  ignore (resp_exec s [ "DEL"; "tmp" ]);
  let pre_hash = Ukapps.Resp_store.state_hash s in
  let commit_h =
    match Ukapps.Resp_store.persist_commit s with
    | Some h -> h
    | None -> Alcotest.fail "persist_commit returned None"
  in
  (* Acked-but-uncommitted writes must NOT survive the restart. *)
  ignore (resp_exec s [ "SET"; "user:3"; "lost" ]);
  (* "Restart": remount the device and hydrate a fresh server from it. *)
  let st' = ok (St.open_ ~clock:c dev) in
  Alcotest.(check int) "store recovered the commit" commit_h (St.head st');
  let s' = mk_resp ~persist:st' () in
  Alcotest.(check int) "RESP state hash matches pre-crash commit" pre_hash
    (Ukapps.Resp_store.state_hash s');
  Alcotest.(check bool) "replayed value" true
    (Ukapps.Resp_store.execute s' [ "GET"; "user:2" ] = Ukapps.Resp.Bulk "grace");
  Alcotest.(check bool) "INCR state replayed" true
    (Ukapps.Resp_store.execute s' [ "GET"; "visits" ] = Ukapps.Resp.Bulk "2");
  Alcotest.(check bool) "deleted key stayed deleted" true
    (Ukapps.Resp_store.execute s' [ "GET"; "tmp" ] = Ukapps.Resp.Null);
  Alcotest.(check bool) "uncommitted write lost" true
    (Ukapps.Resp_store.execute s' [ "GET"; "user:3" ] = Ukapps.Resp.Null);
  (* And the hydrated server keeps persisting: next epoch works too. *)
  ignore (resp_exec s' [ "SET"; "user:4"; "edsger" ]);
  (match Ukapps.Resp_store.persist_commit s' with
  | Some _ -> ()
  | None -> Alcotest.fail "second epoch commit failed");
  let st'' = ok (St.open_ ~clock:c dev) in
  let s'' = mk_resp ~persist:st'' () in
  Alcotest.(check bool) "second epoch replayed" true
    (Ukapps.Resp_store.execute s'' [ "GET"; "user:4" ] = Ukapps.Resp.Bulk "edsger")

let test_trace_source_registered () =
  let _, _, t = fresh () in
  set t "k" "v";
  ignore (commit t);
  let snap = Uktrace.Registry.snapshot () in
  Alcotest.(check bool) "ukstore source present" true
    (List.exists
       (fun e ->
         let k = e.Uktrace.Registry.suid in
         String.length k >= 7 && String.sub k 0 7 = "ukstore")
       snap)

let suite =
  [
    ("basic kv", `Quick, test_basic_kv);
    ("commit/checkout", `Quick, test_commit_checkout);
    ("clean commit is no-op", `Quick, test_empty_commit_noop);
    ("remount replays journal", `Quick, test_remount_replays_journal);
    ("remount after checkpoint", `Quick, test_remount_after_checkpoint);
    ("content hash across stores", `Quick, test_content_hash_matches_across_stores);
    QCheck_alcotest.to_alcotest prop_commit_checkout_roundtrip;
    QCheck_alcotest.to_alcotest prop_structural_hash_order_independent;
    QCheck_alcotest.to_alcotest prop_delete_restores_hash;
    QCheck_alcotest.to_alcotest prop_merge_conflict_free;
    QCheck_alcotest.to_alcotest prop_merge_idempotent;
    ("merge conflict policy", `Quick, test_merge_conflict_policy);
    ("crash matrix", `Quick, test_crash_matrix);
    ("crash on first commit", `Quick, test_crash_on_first_commit);
    ("crash during checkpoint", `Quick, test_crash_during_checkpoint);
    ("recovery deterministic", `Quick, test_recovery_is_deterministic);
    ("journal ring wraps", `Quick, test_journal_ring_wraps_via_checkpoint);
    ("store server on cluster", `Quick, test_store_server_cluster);
    ("fast store replay identical", `Quick, test_store_server_fast_replay_identical);
    ("server survives crash+restart", `Quick, test_store_server_survives_crash_restart);
    ("RESP persist restart+replay", `Quick, test_resp_persist_restart_replay);
    ("trace source", `Quick, test_trace_source_registered);
  ]
