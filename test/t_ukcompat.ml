(* Tests for the Linux-syscall personality: process address space, file
   and socket syscalls routed to real subsystems, trace format round-trip,
   the full specialization ladder end to end, and the live-shim Fig 7
   recomputation. *)

module P = Ukcompat.Process
module Pers = Ukcompat.Personality
module Trace = Ukcompat.Trace
module Driver = Ukcompat.Driver
module Shim = Uksyscall.Shim
module Errno = Uksyscall.Fs_errno
module Appdb = Uksyscall.Appdb
module Vfs = Ukvfs.Vfs

let mk_vfs clock =
  let vfs = Vfs.create ~clock in
  (match Vfs.mount vfs ~at:"/" (Ukvfs.Ramfs.create ~clock ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "mount");
  vfs

let mk_personality ?(mode = Shim.Native_link) () =
  let clock = Uksim.Clock.create () in
  let vfs = mk_vfs clock in
  (clock, vfs, Pers.create ~clock ~mode ~vfs ())

let expect_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "syscall failed: %s" (Errno.to_string e)

(* --- process address space ----------------------------------------------- *)

let test_process_mmap_brk () =
  let clock = Uksim.Clock.create () in
  let p = P.create ~clock ~ram_bytes:(16 * P.page_size) () in
  (* brk: query, grow, exhaust *)
  Alcotest.(check int) "initial break" (P.heap_base p) (P.brk p 0);
  let want = P.heap_base p + (2 * P.page_size) in
  Alcotest.(check int) "grow" want (P.brk p want);
  Alcotest.(check int) "exhaustion leaves break" want
    (P.brk p (P.heap_base p + (1024 * P.page_size)));
  (* mmap/munmap recycle pages *)
  let a = match P.mmap p ~len:(4 * P.page_size) with Ok a -> a | Error _ -> Alcotest.fail "mmap" in
  (match P.write_mem p ~addr:a (Bytes.of_string "hello") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write_mem");
  (match P.read_mem p ~addr:a ~len:5 with
  | Ok b -> Alcotest.(check string) "rw through page table" "hello" (Bytes.to_string b)
  | Error _ -> Alcotest.fail "read_mem");
  (match P.munmap p ~addr:a ~len:(4 * P.page_size) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "munmap");
  (match P.read_mem p ~addr:a ~len:1 with
  | Error Errno.Efault -> ()
  | _ -> Alcotest.fail "unmapped must EFAULT");
  (* recycled pages come back zeroed *)
  match P.mmap p ~len:P.page_size with
  | Ok b -> (
      match P.read_mem p ~addr:b ~len:5 with
      | Ok z -> Alcotest.(check string) "fresh pages zeroed" "\000\000\000\000\000" (Bytes.to_string z)
      | Error _ -> Alcotest.fail "read recycled")
  | Error _ -> Alcotest.fail "remap"

let test_process_efault () =
  let clock = Uksim.Clock.create () in
  let p = P.create ~clock ()  in
  (match P.read_mem p ~addr:0xdead000 ~len:4 with
  | Error Errno.Efault -> ()
  | _ -> Alcotest.fail "wild read");
  match P.read_str p ~addr:0xdead000 with
  | Error Errno.Efault -> ()
  | _ -> Alcotest.fail "wild string"

(* --- file syscalls through the personality -------------------------------- *)

let test_file_syscalls () =
  let _, vfs, p = mk_personality () in
  ignore vfs;
  let proc = Pers.proc p in
  let arena = expect_ok (Pers.call p "mmap" [| 0; 4096; 3; 0x22; -1; 0 |]) in
  let put addr s =
    match P.write_mem proc ~addr (Bytes.of_string (s ^ "\000")) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "marshal"
  in
  put arena "/notes.txt";
  let fd = expect_ok (Pers.call p "openat" [| P.at_fdcwd; arena; 0o100 |]) in
  Alcotest.(check bool) "fd small int" true (fd >= 3);
  put (arena + 64) "payload!";
  let n = expect_ok (Pers.call p "write" [| fd; arena + 64; 8 |]) in
  Alcotest.(check int) "write count" 8 n;
  ignore (expect_ok (Pers.call p "lseek" [| fd; 0; 0 |]));
  let n = expect_ok (Pers.call p "read" [| fd; arena + 128; 64 |]) in
  Alcotest.(check int) "read count" 8 n;
  (match P.read_mem proc ~addr:(arena + 128) ~len:8 with
  | Ok b -> Alcotest.(check string) "bytes through vfs" "payload!" (Bytes.to_string b)
  | Error _ -> Alcotest.fail "read back");
  (* fstat: S_IFREG and the size at the x86-64 offsets *)
  ignore (expect_ok (Pers.call p "fstat" [| fd; arena + 256 |]));
  (match P.read_mem proc ~addr:(arena + 256) ~len:144 with
  | Ok st ->
      let u32 off =
        Char.code (Bytes.get st off)
        lor (Char.code (Bytes.get st (off + 1)) lsl 8)
        lor (Char.code (Bytes.get st (off + 2)) lsl 16)
        lor (Char.code (Bytes.get st (off + 3)) lsl 24)
      in
      Alcotest.(check int) "st_mode" (0o100000 lor 0o644) (u32 24);
      Alcotest.(check int) "st_size" 8 (u32 48)
  | Error _ -> Alcotest.fail "stat buf");
  Alcotest.(check int) "close" 0 (expect_ok (Pers.call p "close" [| fd |]));
  (match Pers.call p "read" [| fd; arena; 1 |] with
  | Error Errno.Ebadf -> ()
  | _ -> Alcotest.fail "closed fd must EBADF");
  (* unimplemented syscalls still ENOSYS through the shim *)
  match Pers.call p "fork" [||] with
  | Error Errno.Enosys -> Alcotest.(check int) "enosys counted" 1 (Shim.enosys_count (Pers.shim p))
  | _ -> Alcotest.fail "fork must ENOSYS"

let test_getcwd_chdir () =
  let _, vfs, p = mk_personality () in
  (match Vfs.mkdir vfs "/data" with Ok () -> () | Error _ -> Alcotest.fail "mkdir");
  let proc = Pers.proc p in
  let arena = expect_ok (Pers.call p "mmap" [| 0; 4096; 3; 0x22; -1; 0 |]) in
  (match P.write_mem proc ~addr:arena (Bytes.of_string "/data\000") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "marshal");
  Alcotest.(check int) "chdir" 0 (expect_ok (Pers.call p "chdir" [| arena |]));
  let n = expect_ok (Pers.call p "getcwd" [| arena + 64; 64 |]) in
  Alcotest.(check int) "len incl NUL" 6 n;
  match P.read_str proc ~addr:(arena + 64) with
  | Ok s -> Alcotest.(check string) "cwd" "/data" s
  | Error _ -> Alcotest.fail "read cwd"

(* --- trace format --------------------------------------------------------- *)

let test_trace_roundtrip () =
  let text =
    "trace demo\n\
     # a comment\n\
     openat(-100, \"/a b,c.txt\", 0) = ok\n\
     read($0, buf[64], 64) = 5 !\n\
     sendto($0, &1, $1, 0, sa[10.0.0.9:53], 16) = *\n\
     close($0) = 0\n\
     fork() = ENOSYS\n"
  in
  match Trace.of_string text with
  | Error e -> Alcotest.fail e
  | Ok t -> (
      Alcotest.(check string) "name" "demo" (Trace.name t);
      Alcotest.(check int) "entries" 5 (Trace.length t);
      let printed = Trace.to_string t in
      match Trace.of_string printed with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok t2 ->
          Alcotest.(check string) "print/parse fixpoint" printed (Trace.to_string t2);
          let e1 = List.nth (Trace.entries t) 1 in
          Alcotest.(check bool) "blocking flag" true e1.Trace.blocking;
          Alcotest.(check bool) "expect exact" true (e1.Trace.expect = Trace.Ret 5))

let test_trace_parse_errors () =
  let bad s =
    match Trace.of_string s with Ok _ -> Alcotest.failf "accepted %S" s | Error _ -> ()
  in
  bad "openat(0) = ok\n";
  bad "trace x\nfrobnicate(0) = ok\n";
  bad "trace x\nread(0 = ok\n";
  bad "trace x\nread(0) = maybe\n";
  bad "trace x\nread(nope) = ok\n"

let test_trace_run_native () =
  let _, vfs, p = mk_personality () in
  let fd = (match Vfs.open_file vfs "/hello.txt" ~create:true () with Ok fd -> fd | Error _ -> Alcotest.fail "create") in
  ignore (Vfs.write vfs fd (Bytes.of_string "abcdef"));
  ignore (Vfs.close vfs fd);
  let t =
    Trace.of_string
      "trace t\n\
       openat(-100, \"/hello.txt\", 0) = ok\n\
       read($0, buf[16], 16) = 6\n\
       close($0) = 0\n\
       getpid() = ok\n"
    |> Result.get_ok
  in
  match Trace.run p t with
  | Error e -> Alcotest.fail e
  | Ok o ->
      (* arena mmap + 4 entries, no retries possible (nothing blocking) *)
      Alcotest.(check int) "calls" 5 o.Trace.calls;
      Alcotest.(check int) "retries" 0 o.Trace.retries;
      Alcotest.(check int) "enosys" 0 o.Trace.enosys;
      Alcotest.(check int) "boundary = calls x 4" (5 * 4) o.Trace.boundary_cycles;
      Alcotest.(check int) "no interpreter" 0 o.Trace.interp_cycles

(* --- the ladder, end to end ----------------------------------------------- *)

let test_driver_ladder_nginx () =
  match Driver.ladder ~seed:7 Driver.Nginx with
  | Error e -> Alcotest.fail e
  | Ok reports ->
      Alcotest.(check int) "four rungs" 4 (List.length reports);
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Driver.rung_name r.Driver.rung ^ " client validated payload")
            true r.Driver.client_ok;
          Alcotest.(check int)
            (Driver.rung_name r.Driver.rung ^ " zero ENOSYS on hot path")
            0 r.Driver.outcome.Trace.enosys)
        reports;
      let cycles = List.map (fun r -> r.Driver.ladder_cycles) reports in
      (match cycles with
      | [ native; rewritten; compat; linux ] ->
          Alcotest.(check bool) "native < rewritten" true (native < rewritten);
          Alcotest.(check bool) "rewritten < compat" true (rewritten < compat);
          Alcotest.(check bool) "compat < linux" true (compat < linux);
          Alcotest.(check bool) "native 5x cheaper boundary than linux" true
            (linux >= 5 * native)
      | _ -> Alcotest.fail "ladder shape")

let test_driver_redis_end_to_end () =
  match Driver.run ~seed:3 ~rung:Driver.Native Driver.Redis with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "value came back" true r.Driver.client_ok;
      Alcotest.(check int) "no ENOSYS" 0 r.Driver.outcome.Trace.enosys;
      Alcotest.(check bool) "client saw bytes" true (r.Driver.client_bytes > 0)

let test_driver_replay_deterministic () =
  let h rung =
    match Driver.run ~seed:11 ~rung Driver.Redis with
    | Ok r -> r.Driver.state_hash
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "same seed, byte-identical" (h Driver.Compat) (h Driver.Compat);
  let a = match Driver.run ~seed:11 ~rung:Driver.Native Driver.Redis with
    | Ok r -> r | Error e -> Alcotest.fail e in
  let b = match Driver.run ~seed:12 ~rung:Driver.Native Driver.Redis with
    | Ok r -> r | Error e -> Alcotest.fail e in
  (* different think-time jitter, same protocol outcome *)
  Alcotest.(check bool) "both valid" true (a.Driver.client_ok && b.Driver.client_ok)

(* --- satellite: Fig 7 against the live shim -------------------------------- *)

let test_appdb_live_shim () =
  let _, _, p = mk_personality () in
  let shim = Pers.shim p in
  (* everything the personality registers is within the paper's set *)
  let module Iset = Set.Make (Int) in
  let live = Iset.of_list (Shim.supported_set shim) in
  let static = Iset.of_list Appdb.unikraft_supported in
  Alcotest.(check bool) "personality within unikraft_supported" true (Iset.subset live static);
  (* topping up with Appdb stubs makes live coverage equal the static Fig 7 *)
  Appdb.install_supported shim;
  Alcotest.(check int) "supported_count matches static registration" (Iset.cardinal static)
    (Shim.supported_count shim);
  let stat_cov = Appdb.coverage () in
  let live_cov = Appdb.coverage_of_shim shim in
  Alcotest.(check int) "coverage rows" (List.length stat_cov) (List.length live_cov);
  List.iter2
    (fun (s : Appdb.coverage) (l : Appdb.coverage) ->
      Alcotest.(check string) "app" s.Appdb.app l.Appdb.app;
      Alcotest.(check (float 1e-9)) (s.Appdb.app ^ " now") s.Appdb.now l.Appdb.now;
      Alcotest.(check (float 1e-9)) (s.Appdb.app ^ " +15") s.Appdb.plus15 l.Appdb.plus15)
    stat_cov live_cov;
  let stat_hm = Appdb.heatmap () in
  let live_hm = Appdb.heatmap_of_shim shim in
  List.iter2
    (fun (s : Appdb.heat_cell) (l : Appdb.heat_cell) ->
      if s.Appdb.supported <> l.Appdb.supported then
        Alcotest.failf "heatmap disagrees at %s" s.Appdb.sname)
    stat_hm live_hm

let suite =
  [
    Alcotest.test_case "process mmap/brk address space" `Quick test_process_mmap_brk;
    Alcotest.test_case "process EFAULT on wild pointers" `Quick test_process_efault;
    Alcotest.test_case "file syscalls through ukvfs" `Quick test_file_syscalls;
    Alcotest.test_case "getcwd/chdir" `Quick test_getcwd_chdir;
    Alcotest.test_case "trace text round-trip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace parse errors" `Quick test_trace_parse_errors;
    Alcotest.test_case "trace native replay" `Quick test_trace_run_native;
    Alcotest.test_case "nginx ladder end to end" `Quick test_driver_ladder_nginx;
    Alcotest.test_case "redis end to end" `Quick test_driver_redis_end_to_end;
    Alcotest.test_case "seeded replay deterministic" `Quick test_driver_replay_deterministic;
    Alcotest.test_case "Fig 7 against the live shim" `Quick test_appdb_live_shim;
  ]
