(* Tests for ukboot: phase accounting of the boot report and failure
   attribution. Basic inittab/report mechanics are covered alongside the
   platform tests in t_ukmmu.ml; this suite pins down the report's
   arithmetic invariants and the Constructor_failed path. *)

module Boot = Ukboot.Boot

let advance_us clock us =
  Uksim.Clock.advance clock (Uksim.Clock.cycles_of_ns (1_000.0 *. us))

let boot_tab clock spec =
  let tab = Boot.Inittab.create () in
  List.iter
    (fun (level, name, us) ->
      Boot.Inittab.register tab ~level ~name (fun () -> advance_us clock us))
    spec;
  tab

let spec =
  [
    (Boot.Level.early, "console", 3.0);
    (Boot.Level.paging, "ukmmu", 10.0);
    (Boot.Level.alloc, "ukalloc/tlsf", 7.0);
    (Boot.Level.sched, "uksched", 5.0);
    (Boot.Level.bus, "uknetdev", 20.0);
    (Boot.Level.fs, "ukvfs", 4.0);
    (Boot.Level.late, "app", 11.0);
  ]

let run_spec () =
  let clock = Uksim.Clock.create () in
  Boot.run ~clock (boot_tab clock spec)

(* --- ordering ------------------------------------------------------------- *)

let test_phase_levels_ascend () =
  let r = run_spec () in
  let levels = List.map (fun p -> p.Boot.level) r.Boot.phases in
  Alcotest.(check (list int)) "levels ascend in execution order" (List.sort compare levels)
    levels;
  Alcotest.(check (list string))
    "phase names in registration order"
    (List.map (fun (_, n, _) -> n) spec)
    (List.map (fun p -> p.Boot.phase) r.Boot.phases)

let test_phase_starts_monotone () =
  let r = run_spec () in
  let rec check prev_end = function
    | [] -> ()
    | p :: rest ->
        Alcotest.(check bool)
          (Printf.sprintf "%s starts at the previous phase's end" p.Boot.phase)
          true
          (Float.abs (p.Boot.start_ns -. prev_end) < 0.5);
        check (p.Boot.start_ns +. p.Boot.duration_ns) rest
  in
  check 0.0 r.Boot.phases

let test_phase_sum_is_guest_boot () =
  let r = run_spec () in
  let sum = List.fold_left (fun a p -> a +. p.Boot.duration_ns) 0.0 r.Boot.phases in
  Alcotest.(check (float 0.5)) "sum of phase durations = guest_boot_ns" r.Boot.guest_boot_ns
    sum;
  let expect_us = List.fold_left (fun a (_, _, us) -> a +. us) 0.0 spec in
  Alcotest.(check (float 0.5)) "and equals the charged total" (expect_us *. 1_000.0)
    r.Boot.guest_boot_ns

(* --- failure attribution -------------------------------------------------- *)

let test_constructor_failure_names_culprit () =
  let clock = Uksim.Clock.create () in
  let tab = Boot.Inittab.create () in
  let ran_late = ref false in
  Boot.Inittab.register tab ~level:Boot.Level.alloc ~name:"ukalloc/tlsf" (fun () ->
      advance_us clock 5.0);
  Boot.Inittab.register tab ~level:Boot.Level.bus ~name:"virtio/net" (fun () ->
      failwith "no device");
  Boot.Inittab.register tab ~level:Boot.Level.late ~name:"app" (fun () ->
      ran_late := true);
  (match Boot.run ~clock tab with
  | _ -> Alcotest.fail "boot should have raised"
  | exception Boot.Constructor_failed { phase; level; cause } ->
      Alcotest.(check string) "culprit phase" "virtio/net" phase;
      Alcotest.(check int) "culprit level" Boot.Level.bus level;
      Alcotest.(check string) "original cause preserved" "no device"
        (match cause with Failure m -> m | e -> Printexc.to_string e));
  Alcotest.(check bool) "later constructors never ran" false !ran_late

(* --- the ukboot.boot trace source ----------------------------------------- *)

let find_sample samples name =
  List.assoc_opt name (List.map (fun (k, v) -> (k, v)) samples)

let test_phase_timings_published () =
  let before =
    match Uktrace.Registry.find (Uktrace.Registry.snapshot ()) "ukboot.boot" with
    | Some s -> s
    | None -> []
  in
  let boots_before =
    match find_sample before "boots" with Some (Uktrace.Metric.Count n) -> n | _ -> 0
  in
  let r = run_spec () in
  let samples =
    match Uktrace.Registry.find (Uktrace.Registry.snapshot ()) "ukboot.boot" with
    | Some s -> s
    | None -> Alcotest.fail "ukboot.boot source not registered"
  in
  (match find_sample samples "boots" with
  | Some (Uktrace.Metric.Count n) -> Alcotest.(check int) "boots counted" (boots_before + 1) n
  | _ -> Alcotest.fail "no boots counter");
  (match find_sample samples "guest_boot_ns" with
  | Some (Uktrace.Metric.Level v) ->
      Alcotest.(check (float 0.5)) "guest_boot_ns gauge" r.Boot.guest_boot_ns v
  | _ -> Alcotest.fail "no guest_boot_ns gauge");
  List.iter
    (fun p ->
      let key = Printf.sprintf "phase.%d.%s_ns" p.Boot.level p.Boot.phase in
      match find_sample samples key with
      | Some (Uktrace.Metric.Level v) ->
          Alcotest.(check (float 0.5)) (key ^ " matches report") p.Boot.duration_ns v
      | _ -> Alcotest.fail ("missing phase sample " ^ key))
    r.Boot.phases

let suite =
  [
    Alcotest.test_case "phase levels ascend" `Quick test_phase_levels_ascend;
    Alcotest.test_case "phase starts are contiguous" `Quick test_phase_starts_monotone;
    Alcotest.test_case "phase sum = guest boot time" `Quick test_phase_sum_is_guest_boot;
    Alcotest.test_case "ctor failure names culprit" `Quick
      test_constructor_failure_names_culprit;
    Alcotest.test_case "phase timings published to uktrace" `Quick
      test_phase_timings_published;
  ]
