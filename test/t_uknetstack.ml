(* Tests for the network stack: addresses, checksums, header codecs,
   the TCP engine (including loss recovery, driven through a fake io),
   and full-stack integration over loopback devices. *)

module A = Uknetstack.Addr
module W = Uknetstack.Wire_fmt
module P = Uknetstack.Pkt
module Tcp = Uknetstack.Tcp
module S = Uknetstack.Stack
module Nb = Uknetdev.Netbuf

let test_mac () =
  let m = A.Mac.of_string "aa:bb:cc:dd:ee:ff" in
  Alcotest.(check string) "roundtrip" "aa:bb:cc:dd:ee:ff" (A.Mac.to_string m);
  Alcotest.(check bool) "broadcast" true (A.Mac.is_broadcast A.Mac.broadcast);
  Alcotest.check_raises "bad syntax" (Invalid_argument "Mac.of_string: nope") (fun () ->
      ignore (A.Mac.of_string "nope"))

let test_ipv4_addr () =
  let ip = A.Ipv4.of_string "10.1.2.3" in
  Alcotest.(check string) "roundtrip" "10.1.2.3" (A.Ipv4.to_string ip);
  Alcotest.(check bool) "same subnet" true
    (A.Ipv4.same_subnet ip (A.Ipv4.of_string "10.1.2.200")
       ~netmask:(A.Ipv4.of_string "255.255.255.0"));
  Alcotest.(check bool) "different subnet" false
    (A.Ipv4.same_subnet ip (A.Ipv4.of_string "10.1.3.1")
       ~netmask:(A.Ipv4.of_string "255.255.255.0"));
  Alcotest.check_raises "bad octet" (Invalid_argument "Ipv4.of_string: 1.2.3.999") (fun () ->
      ignore (A.Ipv4.of_string "1.2.3.999"))

let test_checksum_rfc1071 () =
  (* Classic example: checksum over its own result verifies to 0. *)
  let b = Bytes.of_string "\x45\x00\x00\x3c\x1c\x46\x40\x00\x40\x06\x00\x00\xac\x10\x0a\x63\xac\x10\x0a\x0c" in
  let c = W.checksum b ~off:0 ~len:20 in
  W.set_u16 b 10 c;
  Alcotest.(check int) "self-verifies" 0 (W.checksum b ~off:0 ~len:20)

let test_checksum_odd_length () =
  let b = Bytes.of_string "abc" in
  let c = W.checksum b ~off:0 ~len:3 in
  Alcotest.(check bool) "16-bit" true (c >= 0 && c <= 0xffff)

let test_eth_roundtrip () =
  let nb = Nb.of_bytes (Bytes.of_string "data") in
  let hdr = { P.Eth.dst = A.Mac.of_int 0x112233445566; src = A.Mac.of_int 0x665544332211;
              proto = P.Eth.Ipv4 } in
  P.Eth.encode hdr nb;
  match P.Eth.decode nb with
  | Error e -> Alcotest.fail e
  | Ok h ->
      Alcotest.(check bool) "dst" true (A.Mac.equal h.P.Eth.dst hdr.P.Eth.dst);
      Alcotest.(check bool) "src" true (A.Mac.equal h.P.Eth.src hdr.P.Eth.src);
      Alcotest.(check string) "payload" "data" (Bytes.to_string (Nb.to_payload nb))

let test_arp_roundtrip () =
  let nb = Nb.alloc ~size:64 () in
  let a =
    { P.Arp.op = P.Arp.Request; sha = A.Mac.of_int 1; spa = A.Ipv4.of_string "10.0.0.1";
      tha = A.Mac.broadcast; tpa = A.Ipv4.of_string "10.0.0.2" }
  in
  P.Arp.encode a nb;
  match P.Arp.decode nb with
  | Error e -> Alcotest.fail e
  | Ok got ->
      Alcotest.(check bool) "op" true (got.P.Arp.op = P.Arp.Request);
      Alcotest.(check string) "tpa" "10.0.0.2" (A.Ipv4.to_string got.P.Arp.tpa)

let ipv4_roundtrip payload_str =
  let nb = Nb.of_bytes (Bytes.of_string payload_str) in
  let hdr =
    P.Ipv4.header ~src:(A.Ipv4.of_string "1.2.3.4") ~dst:(A.Ipv4.of_string "5.6.7.8")
      ~proto:P.Ipv4.Udp ~payload_len:(Nb.len nb)
  in
  P.Ipv4.encode hdr nb;
  match P.Ipv4.decode nb with
  | Error e -> Error e
  | Ok h -> Ok (h, Bytes.to_string (Nb.to_payload nb))

let test_ipv4_roundtrip () =
  match ipv4_roundtrip "the-payload" with
  | Error e -> Alcotest.fail e
  | Ok (h, payload) ->
      Alcotest.(check string) "src" "1.2.3.4" (A.Ipv4.to_string h.P.Ipv4.src);
      Alcotest.(check string) "payload" "the-payload" payload

let test_ipv4_checksum_rejected () =
  let nb = Nb.of_bytes (Bytes.of_string "x") in
  let hdr =
    P.Ipv4.header ~src:(A.Ipv4.of_string "1.2.3.4") ~dst:(A.Ipv4.of_string "5.6.7.8")
      ~proto:P.Ipv4.Udp ~payload_len:1
  in
  P.Ipv4.encode hdr nb;
  (* Corrupt one header byte. *)
  Bytes.set (Nb.data nb) (Nb.offset nb + 8) '\x13';
  match P.Ipv4.decode nb with
  | Error "ipv4: bad header checksum" -> ()
  | Error e -> Alcotest.failf "wrong error: %s" e
  | Ok _ -> Alcotest.fail "corrupted header accepted"

let udp_tcp_roundtrip_prop =
  QCheck.Test.make ~name:"udp+tcp codecs roundtrip random payloads" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 1200))
    (fun payload ->
      let src = A.Ipv4.of_string "10.0.0.1" and dst = A.Ipv4.of_string "10.0.0.2" in
      let nb = Nb.alloc ~headroom:128 ~size:1400 () in
      Nb.blit_payload nb (Bytes.of_string payload);
      P.Udp.encode { P.Udp.src_port = 1234; dst_port = 80 } ~src ~dst nb;
      let udp_ok =
        match P.Udp.decode ~src ~dst nb with
        | Ok { P.Udp.src_port = 1234; dst_port = 80 } ->
            Bytes.to_string (Nb.to_payload nb) = payload
        | Ok _ | Error _ -> false
      in
      let nb2 = Nb.alloc ~headroom:128 ~size:1400 () in
      Nb.blit_payload nb2 (Bytes.of_string payload);
      P.Tcp.encode
        { P.Tcp.src_port = 5; dst_port = 6; seq = 12345; ack = 999; syn = false;
          ack_flag = true; fin = false; rst = false; psh = true; window = 4096 }
        ~src ~dst nb2;
      let tcp_ok =
        match P.Tcp.decode ~src ~dst nb2 with
        | Ok h ->
            h.P.Tcp.seq = 12345 && h.P.Tcp.ack = 999 && h.P.Tcp.psh
            && Bytes.to_string (Nb.to_payload nb2) = payload
        | Error _ -> false
      in
      udp_ok && tcp_ok)

(* --- TCP engine with a fake io (loss injection, timers) ------------------- *)

type fake_net = {
  clock : Uksim.Clock.t;
  mutable sent : (Tcp.conn * P.Tcp.t * bytes) list; (* reversed *)
  mutable timers : (Tcp.conn * int) list;
  mutable drop_next : int; (* drop this many upcoming segments *)
}

let fake_io net : Tcp.io =
  {
    Tcp.now_cycles = (fun () -> Uksim.Clock.cycles net.clock);
    charge = (fun c -> Uksim.Clock.advance net.clock c);
    tx_segment =
      (fun conn hdr payload ->
        (* Materialize either payload flavour to bytes: the fake wire is a
           bytes-era test edge, and dropped netbufs must still be recycled. *)
        let data =
          match payload with
          | Tcp.Tx_bytes b -> b
          | Tcp.Tx_netbuf nb ->
              let b = Nb.copy_out nb in
              Nb.recycle nb;
              b
        in
        if net.drop_next > 0 then net.drop_next <- net.drop_next - 1
        else net.sent <- (conn, hdr, data) :: net.sent);
    set_timer =
      (fun conn ~delay_cycles ->
        net.timers <- (conn, Uksim.Clock.cycles net.clock + delay_cycles) :: net.timers);
    wake = (fun _ -> ());
    notify_accept = (fun _ -> ());
  }

let mk_fake () =
  let clock = Uksim.Clock.create () in
  { clock; sent = []; timers = []; drop_next = 0 }

let take_sent net =
  let s = List.rev net.sent in
  net.sent <- [];
  s

(* Wire two TCP engines together in-memory, with optional loss. *)
let deliver_all neta netb conn_a conn_b =
  let rec pump () =
    let from_a = take_sent neta and from_b = take_sent netb in
    List.iter (fun (_, hdr, payload) -> Tcp.on_segment conn_b hdr payload) from_a;
    List.iter (fun (_, hdr, payload) -> Tcp.on_segment conn_a hdr payload) from_b;
    if neta.sent <> [] || netb.sent <> [] then pump ()
  in
  pump ()

let handshake () =
  let neta = mk_fake () and netb = mk_fake () in
  let client =
    Tcp.create_active (fake_io neta) ~local:(A.Ipv4.of_string "10.0.0.1", 100)
      ~remote:(A.Ipv4.of_string "10.0.0.2", 200) ~iss:1000
  in
  (* Server side: take the SYN, derive the passive conn. *)
  let listener = Tcp.create_listen (fake_io netb) ~local:(A.Ipv4.of_string "10.0.0.2", 200) in
  let syn = match take_sent neta with [ (_, h, _) ] -> h | _ -> failwith "expected SYN" in
  let server =
    Tcp.derive_passive listener ~remote:(A.Ipv4.of_string "10.0.0.1", 100) ~iss:5000
      ~peer_seq:syn.P.Tcp.seq
  in
  deliver_all neta netb client server;
  (neta, netb, client, server)

let test_tcp_handshake () =
  let _, _, client, server = handshake () in
  Alcotest.(check string) "client established" "ESTABLISHED"
    (Tcp.state_to_string (Tcp.state client));
  Alcotest.(check string) "server established" "ESTABLISHED"
    (Tcp.state_to_string (Tcp.state server))

let test_tcp_data_transfer () =
  let neta, netb, client, server = handshake () in
  let n = Tcp.send client (Bytes.of_string "hello tcp") in
  Alcotest.(check int) "all queued" 9 n;
  deliver_all neta netb client server;
  Alcotest.(check (option string)) "received in order" (Some "hello tcp")
    (Option.map Bytes.to_string (Tcp.recv server ~max:100))

let test_tcp_large_transfer_segments () =
  let neta, netb, client, server = handshake () in
  let data = Bytes.make 10000 'd' in
  ignore (Tcp.send client data);
  deliver_all neta netb client server;
  let buf = Buffer.create 10000 in
  let rec drain () =
    match Tcp.recv server ~max:4096 with
    | Some b ->
        Buffer.add_bytes buf b;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all bytes arrive across segments" 10000 (Buffer.length buf)

let test_tcp_retransmission () =
  let neta, netb, client, server = handshake () in
  neta.drop_next <- 1;
  ignore (Tcp.send client (Bytes.of_string "lost-once"));
  deliver_all neta netb client server;
  Alcotest.(check int) "nothing arrived yet" 0 (Tcp.recv_available server);
  (* Fire the retransmission timer. *)
  Uksim.Clock.advance neta.clock (Uksim.Clock.cycles_of_ns 3e8);
  Tcp.on_timer client;
  deliver_all neta netb client server;
  Alcotest.(check (option string)) "recovered" (Some "lost-once")
    (Option.map Bytes.to_string (Tcp.recv server ~max:100));
  Alcotest.(check int) "one retransmit counted" 1 (Tcp.stats_retransmits client)

let test_tcp_fast_retransmit () =
  let neta, netb, client, server = handshake () in
  (* Drop the first of two segments: the second triggers dup ACKs. *)
  neta.drop_next <- 1;
  ignore (Tcp.send client (Bytes.make 1460 'a'));
  ignore (Tcp.send client (Bytes.make 100 'b'));
  deliver_all neta netb client server;
  (* Generate the remaining dup ACKs by re-delivering the out-of-order
     segment responses; three dupacks trigger fast retransmit. *)
  ignore (Tcp.send client (Bytes.make 10 'c'));
  deliver_all neta netb client server;
  ignore (Tcp.send client (Bytes.make 10 'd'));
  deliver_all neta netb client server;
  Alcotest.(check bool) "fast retransmit fired" true (Tcp.stats_fast_retransmits client >= 1);
  (* The out-of-order segments behind the hole were dropped by the
     receiver (no SACK); RTO rounds recover them one at a time. *)
  for _ = 1 to 4 do
    Uksim.Clock.advance neta.clock (Uksim.Clock.cycles_of_ns 2e9);
    Tcp.on_timer client;
    deliver_all neta netb client server
  done;
  Alcotest.(check int) "stream fully recovered" (1460 + 100 + 10 + 10)
    (Tcp.recv_available server)

let test_tcp_close_sequence () =
  let neta, netb, client, server = handshake () in
  Tcp.close client;
  deliver_all neta netb client server;
  Alcotest.(check string) "client FIN_WAIT_2" "FIN_WAIT_2"
    (Tcp.state_to_string (Tcp.state client));
  Alcotest.(check string) "server CLOSE_WAIT" "CLOSE_WAIT"
    (Tcp.state_to_string (Tcp.state server));
  Alcotest.(check bool) "server sees EOF" true (Tcp.recv_eof server);
  Tcp.close server;
  deliver_all neta netb client server;
  Alcotest.(check string) "server closed" "CLOSED" (Tcp.state_to_string (Tcp.state server));
  Alcotest.(check string) "client TIME_WAIT" "TIME_WAIT"
    (Tcp.state_to_string (Tcp.state client));
  (* 2MSL expiry. *)
  Uksim.Clock.advance neta.clock (Uksim.Clock.cycles_of_ns 3e9);
  Tcp.on_timer client;
  Alcotest.(check string) "client closed after 2MSL" "CLOSED"
    (Tcp.state_to_string (Tcp.state client))

let test_tcp_rst () =
  let neta, netb, client, server = handshake () in
  Tcp.abort client;
  deliver_all neta netb client server;
  Alcotest.(check string) "client closed" "CLOSED" (Tcp.state_to_string (Tcp.state client));
  Alcotest.(check string) "server closed by RST" "CLOSED"
    (Tcp.state_to_string (Tcp.state server))

let test_tcp_flow_control () =
  let neta, netb, client, server = handshake () in
  (* Fill beyond the receiver window (64KB): sender must stall, not lose. *)
  let total = 200_000 in
  let sent = ref 0 in
  while !sent < total do
    let n = Tcp.send client (Bytes.make (min 8192 (total - !sent)) 'f') in
    deliver_all neta netb client server;
    if n = 0 then
      (* Send buffer/window full: drain the receiver to reopen it. *)
      ignore (Tcp.recv server ~max:65536)
    else sent := !sent + n;
    deliver_all neta netb client server
  done;
  let rec drain acc =
    match Tcp.recv server ~max:65536 with
    | Some b ->
        deliver_all neta netb client server;
        drain (acc + Bytes.length b)
    | None -> acc
  in
  let drained = drain 0 in
  Alcotest.(check bool) "no bytes lost under backpressure" true (drained > 0);
  Alcotest.(check int) "sender accounted everything" total !sent

(* --- IPv4 fragmentation / reassembly ---------------------------------------- *)

module Frag = Uknetstack.Frag

let test_frag_out_of_order () =
  let clock = Uksim.Clock.create () in
  let f = Frag.create ~clock () in
  let src = A.Ipv4.of_string "10.0.0.9" in
  let chunk s len = Bytes.make len s in
  (* Three fragments delivered tail-first. *)
  (match Frag.insert f ~src ~id:7 ~proto:17 ~frag_offset:16 ~more_frags:false (chunk 'c' 4) with
  | Frag.Pending -> ()
  | _ -> Alcotest.fail "tail alone must be pending");
  (match Frag.insert f ~src ~id:7 ~proto:17 ~frag_offset:8 ~more_frags:true (chunk 'b' 8) with
  | Frag.Pending -> ()
  | _ -> Alcotest.fail "middle must be pending");
  match Frag.insert f ~src ~id:7 ~proto:17 ~frag_offset:0 ~more_frags:true (chunk 'a' 8) with
  | Frag.Complete payload ->
      Alcotest.(check string) "reassembled in order" "aaaaaaaabbbbbbbbcccc"
        (Bytes.to_string payload);
      Alcotest.(check int) "completed counted" 1 (Frag.completed f)
  | _ -> Alcotest.fail "should complete"

let test_frag_duplicates_ok () =
  let clock = Uksim.Clock.create () in
  let f = Frag.create ~clock () in
  let src = A.Ipv4.of_string "10.0.0.9" in
  ignore (Frag.insert f ~src ~id:1 ~proto:17 ~frag_offset:0 ~more_frags:true (Bytes.make 8 'x'));
  ignore (Frag.insert f ~src ~id:1 ~proto:17 ~frag_offset:0 ~more_frags:true (Bytes.make 8 'x'));
  match Frag.insert f ~src ~id:1 ~proto:17 ~frag_offset:8 ~more_frags:false (Bytes.make 2 'y') with
  | Frag.Complete p -> Alcotest.(check int) "length" 10 (Bytes.length p)
  | _ -> Alcotest.fail "duplicates must not block completion"

let test_frag_teardrop_rejected () =
  (* Same offset, different length: the classic inconsistent overlap. *)
  let clock = Uksim.Clock.create () in
  let f = Frag.create ~clock () in
  let src = A.Ipv4.of_string "10.0.0.9" in
  ignore (Frag.insert f ~src ~id:2 ~proto:17 ~frag_offset:0 ~more_frags:true (Bytes.make 8 'x'));
  match Frag.insert f ~src ~id:2 ~proto:17 ~frag_offset:0 ~more_frags:true (Bytes.make 16 'z') with
  | Frag.Rejected _ -> ()
  | _ -> Alcotest.fail "inconsistent overlap accepted"

let test_frag_expiry () =
  let clock = Uksim.Clock.create () in
  let f = Frag.create ~clock ~timeout_ns:1000.0 () in
  let src = A.Ipv4.of_string "10.0.0.9" in
  ignore (Frag.insert f ~src ~id:3 ~proto:17 ~frag_offset:0 ~more_frags:true (Bytes.make 8 'x'));
  Alcotest.(check int) "pending" 1 (Frag.pending_datagrams f);
  Uksim.Clock.advance_ns clock 5000.0;
  Frag.expire f;
  Alcotest.(check int) "expired" 0 (Frag.pending_datagrams f);
  Alcotest.(check int) "counted" 1 (Frag.expired f)

let test_udp_fragmentation_end_to_end () =
  (* A 5000-byte datagram: fragmented at the sender's IP layer (4 frames
     on the wire), reassembled at the receiver, delivered whole. *)
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let da, db = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let mk dev ip mac =
    let s =
      S.create ~clock ~engine ~sched ~dev
        { S.mac = A.Mac.of_int mac; ip = A.Ipv4.of_string ip;
          netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
    in
    S.start s;
    s
  in
  let s1 = mk da "10.0.0.1" 0x1 in
  let s2 = mk db "10.0.0.2" 0x2 in
  let payload = Bytes.init 5000 (fun i -> Char.chr (i land 0xff)) in
  let got = ref None in
  ignore
    (Uksched.Sched.spawn sched ~name:"rx" (fun () ->
         let sock = S.Udp_socket.bind s1 ~port:777 in
         match S.Udp_socket.recvfrom ~block:true sock with
         | Some (_, _, data) -> got := Some data
         | None -> ()));
  ignore
    (Uksched.Sched.spawn sched ~name:"tx" (fun () ->
         let sock = S.Udp_socket.bind s2 ~port:778 in
         S.Udp_socket.sendto sock ~dst:(A.Ipv4.of_string "10.0.0.1", 777) payload));
  Uksched.Sched.run sched;
  (match !got with
  | Some data -> Alcotest.(check bytes) "whole datagram delivered" payload data
  | None -> Alcotest.fail "datagram lost");
  (* The wire really carried fragments: > 1 frame for one datagram (plus
     one ARP exchange). *)
  let tx = (S.stats s2).S.tx_pkts in
  Alcotest.(check bool) (Printf.sprintf "fragmented on the wire (%d frames)" tx) true (tx >= 4)

let frag_random_order_prop =
  QCheck.Test.make ~name:"frag: any arrival order (with duplicates) reassembles" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 0 10000))
    (fun (n_frags, seed) ->
      let clock = Uksim.Clock.create () in
      let f = Frag.create ~clock () in
      let src = A.Ipv4.of_string "10.0.0.9" in
      (* Build a datagram of [n_frags] 8-byte fragments with recognizable
         contents, shuffle the arrival order, duplicate a few. *)
      let payload = Bytes.init (n_frags * 8) (fun i -> Char.chr ((i * 13) land 0xff)) in
      let frags =
        Array.init n_frags (fun i ->
            (i * 8, Bytes.sub payload (i * 8) 8, i < n_frags - 1))
      in
      let rng = Uksim.Rng.create seed in
      Uksim.Rng.shuffle rng frags;
      let completed = ref None in
      Array.iteri
        (fun idx (off, chunk, mf) ->
          let feed () =
            match Frag.insert f ~src ~id:99 ~proto:17 ~frag_offset:off ~more_frags:mf chunk with
            | Frag.Complete p -> completed := Some p
            | Frag.Pending -> ()
            | Frag.Rejected e -> failwith e
          in
          feed ();
          (* Duplicate roughly every third fragment (unless already done). *)
          if !completed = None && idx mod 3 = 0 then feed ())
        frags;
      match !completed with
      | Some p -> Bytes.equal p payload
      | None -> false)

(* The TCP/IPv4 wire format carries no options (Pkt.Tcp.size = 20), so
   "arbitrary header" coverage means arbitrary field values: every legal
   combination of ports, sequence numbers, flags, fragment fields and
   payload must survive encode → checksum → decode bit-exactly. *)
let tcp_header_fields_prop =
  QCheck.Test.make ~name:"tcp codec roundtrips arbitrary header fields" ~count:300
    QCheck.(
      pair
        (pair (pair (int_bound 0xffff) (int_bound 0xffff))
           (pair (int_bound 0xffffffff) (int_bound 0xffffffff)))
        (pair (pair (int_bound 31) (int_bound 0xffff)) (string_of_size (Gen.int_range 0 600))))
    (fun (((src_port, dst_port), (seq, ack)), ((flag_bits, window), payload)) ->
      let src = A.Ipv4.of_string "10.0.0.1" and dst = A.Ipv4.of_string "10.0.0.2" in
      let hdr =
        { P.Tcp.src_port; dst_port; seq; ack;
          syn = flag_bits land 1 <> 0; ack_flag = flag_bits land 2 <> 0;
          fin = flag_bits land 4 <> 0; rst = flag_bits land 8 <> 0;
          psh = flag_bits land 16 <> 0; window }
      in
      let nb = Nb.alloc ~headroom:64 ~size:800 () in
      Nb.blit_payload nb (Bytes.of_string payload);
      P.Tcp.encode hdr ~src ~dst nb;
      match P.Tcp.decode ~src ~dst nb with
      | Ok got -> got = hdr && Bytes.to_string (Nb.to_payload nb) = payload
      | Error _ -> false)

let ipv4_header_fields_prop =
  QCheck.Test.make ~name:"ipv4 codec roundtrips arbitrary header fields" ~count:300
    QCheck.(
      pair
        (pair (pair (int_range 1 255) (int_bound 0xffff))
           (pair (int_bound 200) bool))
        (pair (int_bound 3) (string_of_size (Gen.int_range 0 600))))
    (fun (((ttl, id), (frag_blocks, more_frags)), (proto_pick, payload)) ->
      let proto =
        match proto_pick with
        | 0 -> P.Ipv4.Icmp
        | 1 -> P.Ipv4.Tcp
        | 2 -> P.Ipv4.Udp
        | _ -> P.Ipv4.Unknown 42
      in
      let hdr =
        { P.Ipv4.src = A.Ipv4.of_string "192.168.7.1"; dst = A.Ipv4.of_string "10.9.8.7";
          proto; ttl; payload_len = String.length payload; id; more_frags;
          frag_offset = frag_blocks * 8 }
      in
      let nb = Nb.alloc ~headroom:64 ~size:800 () in
      Nb.blit_payload nb (Bytes.of_string payload);
      P.Ipv4.encode hdr nb;
      match P.Ipv4.decode nb with
      | Ok got -> got = hdr && Bytes.to_string (Nb.to_payload nb) = payload
      | Error _ -> false)

(* Generalizes frag_random_order_prop from sampled shuffles to every
   arrival order: one thread per fragment on a single explored core, so
   the ukcheck dispatch choice points enumerate all 4! = 24 insertion
   interleavings exhaustively within the 64-schedule budget. *)
let test_frag_reassembly_under_explored_orders () =
  let payload = Bytes.init 32 (fun i -> Char.chr ((i * 7 + 3) land 0xff)) in
  let src = A.Ipv4.of_string "10.0.0.9" in
  let fixture smp ~seed:_ =
    let f = Frag.create ~clock:(Uksmp.Smp.clock_of smp ~core:0) () in
    let completed = ref None in
    for i = 0 to 3 do
      ignore
        (Uksmp.Smp.spawn_on smp ~core:0 ~pinned:true (fun () ->
             match
               Frag.insert f ~src ~id:7 ~proto:17 ~frag_offset:(i * 8) ~more_frags:(i < 3)
                 (Bytes.sub payload (i * 8) 8)
             with
             | Frag.Complete p -> completed := Some p
             | Frag.Pending -> ()
             | Frag.Rejected e -> failwith e))
    done;
    fun () ->
      match !completed with
      | Some p when Bytes.equal p payload -> Ok ()
      | Some _ -> Error "reassembled bytes differ"
      | None -> Error "datagram never completed"
  in
  match Ukcheck.Prop.run ~cores:1 ~schedules:64 fixture with
  | Ukcheck.Explore.Passed s ->
      Alcotest.(check bool) "every arrival order enumerated" true s.Ukcheck.Explore.exhaustive;
      Alcotest.(check int) "all 24 interleavings of 4 fragments" 24 s.Ukcheck.Explore.schedules
  | Ukcheck.Explore.Failed f ->
      Alcotest.failf "order-dependent reassembly: %s (%s)" f.Ukcheck.Explore.message
        (Ukcheck.Schedule.to_string f.Ukcheck.Explore.cert)

(* --- full-stack integration over loopback --------------------------------- *)

let two_stacks () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let da, db = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let mk dev ip mac =
    S.create ~clock ~engine ~sched ~dev
      { S.mac = A.Mac.of_int mac; ip = A.Ipv4.of_string ip;
        netmask = A.Ipv4.of_string "255.255.255.0"; gateway = None }
  in
  let s1 = mk da "10.0.0.1" 0x1 in
  let s2 = mk db "10.0.0.2" 0x2 in
  S.start s1;
  S.start s2;
  (clock, sched, s1, s2)

let test_stack_udp_echo () =
  let _, sched, s1, s2 = two_stacks () in
  let seen = ref None in
  ignore
    (Uksched.Sched.spawn sched ~name:"server" (fun () ->
         let sock = S.Udp_socket.bind s1 ~port:53 in
         match S.Udp_socket.recvfrom ~block:true sock with
         | Some (src, sport, data) ->
             S.Udp_socket.sendto sock ~dst:(src, sport) (Bytes.cat data (Bytes.of_string "!"))
         | None -> ()));
  ignore
    (Uksched.Sched.spawn sched ~name:"client" (fun () ->
         let sock = S.Udp_socket.bind s2 ~port:9000 in
         S.Udp_socket.sendto sock ~dst:(A.Ipv4.of_string "10.0.0.1", 53)
           (Bytes.of_string "query");
         match S.Udp_socket.recvfrom ~block:true sock with
         | Some (_, _, data) -> seen := Some (Bytes.to_string data)
         | None -> ()));
  Uksched.Sched.run sched;
  Alcotest.(check (option string)) "udp echo" (Some "query!") !seen

let test_stack_tcp_end_to_end () =
  let _, sched, s1, s2 = two_stacks () in
  let got = ref [] in
  ignore
    (Uksched.Sched.spawn sched ~name:"server" (fun () ->
         let l = S.Tcp_socket.listen s1 ~port:80 () in
         match S.Tcp_socket.accept ~block:true l with
         | None -> ()
         | Some flow ->
             let rec serve () =
               match S.Tcp_socket.recv ~block:true s1 flow ~max:4096 with
               | None -> ()
               | Some req ->
                   ignore
                     (S.Tcp_socket.send ~block:true s1 flow
                        (Bytes.cat (Bytes.of_string "re:") req));
                   serve ()
             in
             serve ()));
  ignore
    (Uksched.Sched.spawn sched ~name:"client" (fun () ->
         let flow = S.Tcp_socket.connect s2 ~dst:(A.Ipv4.of_string "10.0.0.1", 80) () in
         for i = 1 to 3 do
           ignore
             (S.Tcp_socket.send ~block:true s2 flow (Bytes.of_string (Printf.sprintf "m%d" i)));
           match S.Tcp_socket.recv ~block:true s2 flow ~max:4096 with
           | Some data -> got := Bytes.to_string data :: !got
           | None -> ()
         done;
         S.Tcp_socket.close s2 flow));
  Uksched.Sched.run sched;
  Alcotest.(check (list string)) "three echoes" [ "re:m1"; "re:m2"; "re:m3" ] (List.rev !got)

let test_stack_arp_populated () =
  let _, sched, s1, s2 = two_stacks () in
  ignore
    (Uksched.Sched.spawn sched (fun () ->
         let sock = S.Udp_socket.bind s2 ~port:1 in
         S.Udp_socket.sendto sock ~dst:(A.Ipv4.of_string "10.0.0.1", 7) (Bytes.of_string "x");
         (* Stay alive until the datagram has traversed ARP + the wire. *)
         Uksched.Sched.sleep_ns 1.0e6));
  Uksched.Sched.run sched;
  let st2 = S.stats s2 in
  Alcotest.(check int) "one arp request" 1 st2.S.arp_requests;
  (* Packet to an unbound port on s1 is dropped there. *)
  Alcotest.(check bool) "s1 dropped the datagram" true ((S.stats s1).S.rx_drop >= 1)

let test_stack_port_management () =
  let _, _, s1, _ = two_stacks () in
  let _sock = S.Udp_socket.bind s1 ~port:777 in
  Alcotest.check_raises "port in use" (Invalid_argument "Udp_socket.bind: port in use")
    (fun () -> ignore (S.Udp_socket.bind s1 ~port:777));
  Alcotest.check_raises "bad port" (Invalid_argument "Udp_socket.bind: bad port") (fun () ->
      ignore (S.Udp_socket.bind s1 ~port:0))

let suite =
  [
    Alcotest.test_case "mac addresses" `Quick test_mac;
    Alcotest.test_case "ipv4 addresses" `Quick test_ipv4_addr;
    Alcotest.test_case "rfc1071 checksum" `Quick test_checksum_rfc1071;
    Alcotest.test_case "checksum odd length" `Quick test_checksum_odd_length;
    Alcotest.test_case "ethernet roundtrip" `Quick test_eth_roundtrip;
    Alcotest.test_case "arp roundtrip" `Quick test_arp_roundtrip;
    Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 checksum rejection" `Quick test_ipv4_checksum_rejected;
    QCheck_alcotest.to_alcotest udp_tcp_roundtrip_prop;
    Alcotest.test_case "tcp handshake" `Quick test_tcp_handshake;
    Alcotest.test_case "tcp data transfer" `Quick test_tcp_data_transfer;
    Alcotest.test_case "tcp segmentation (10KB)" `Quick test_tcp_large_transfer_segments;
    Alcotest.test_case "tcp RTO retransmission" `Quick test_tcp_retransmission;
    Alcotest.test_case "tcp fast retransmit" `Quick test_tcp_fast_retransmit;
    Alcotest.test_case "tcp close sequence" `Quick test_tcp_close_sequence;
    Alcotest.test_case "tcp reset" `Quick test_tcp_rst;
    Alcotest.test_case "tcp flow control" `Quick test_tcp_flow_control;
    Alcotest.test_case "frag: out-of-order reassembly" `Quick test_frag_out_of_order;
    Alcotest.test_case "frag: duplicates" `Quick test_frag_duplicates_ok;
    Alcotest.test_case "frag: teardrop rejected" `Quick test_frag_teardrop_rejected;
    Alcotest.test_case "frag: expiry" `Quick test_frag_expiry;
    Alcotest.test_case "frag: 5KB UDP datagram end-to-end" `Quick
      test_udp_fragmentation_end_to_end;
    QCheck_alcotest.to_alcotest frag_random_order_prop;
    QCheck_alcotest.to_alcotest tcp_header_fields_prop;
    QCheck_alcotest.to_alcotest ipv4_header_fields_prop;
    Alcotest.test_case "frag: reassembly under explored arrival orders" `Quick
      test_frag_reassembly_under_explored_orders;
    Alcotest.test_case "stack: udp echo" `Quick test_stack_udp_echo;
    Alcotest.test_case "stack: tcp end to end" `Quick test_stack_tcp_end_to_end;
    Alcotest.test_case "stack: arp" `Quick test_stack_arp_populated;
    Alcotest.test_case "stack: udp port management" `Quick test_stack_port_management;
  ]
