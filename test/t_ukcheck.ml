(* Tests for ukcheck: the schedule explorer (planted lost-wakeup bug,
   shrinking, byte-identical certificate replay), the lockset race
   detector (racy vs locked counter, false-positive silence on real
   workloads) and the property harness. *)

module Smp = Uksmp.Smp
module Explore = Ukcheck.Explore
module Schedule = Ukcheck.Schedule
module Lockset = Ukcheck.Lockset
module Shared = Ukcheck.Shared
module Prop = Ukcheck.Prop
module Sched = Uksched.Sched

(* --- planted bug: classic lost wakeup ------------------------------------ *)

(* The consumer checks the flag, then yields (the race window), then
   blocks WITHOUT re-checking. Under the default FIFO schedule the
   producer runs first, so the flag is already set and the consumer
   never blocks; dispatching the consumer first loses the wakeup (the
   wake hits a thread that is runnable, not blocked) and deadlocks. *)
let lost_wakeup_fixture smp ~seed:_ =
  let flag = ref false in
  let consumer_done = ref false in
  let ctid = ref (-1) in
  ignore
    (Smp.spawn_on smp ~core:0 ~pinned:true ~name:"producer" (fun () ->
         flag := true;
         Sched.wake (Smp.sched_of smp ~core:0) !ctid));
  ctid :=
    Smp.spawn_on smp ~core:0 ~pinned:true ~name:"consumer" (fun () ->
        if not !flag then begin
          Sched.yield ();
          Sched.block ()
        end;
        consumer_done := true);
  fun () -> Prop.require !consumer_done "consumer never completed"

let explore_lost_wakeup () =
  match Explore.run (Explore.config ~cores:1 ~budget:64 ()) lost_wakeup_fixture with
  | Explore.Passed _ -> Alcotest.fail "explorer missed the planted lost wakeup"
  | Explore.Failed f -> f

let test_explorer_finds_lost_wakeup () =
  let f = explore_lost_wakeup () in
  Alcotest.(check bool)
    (Printf.sprintf "violation is the deadlock (%s)" f.Explore.message)
    true
    (String.length f.Explore.message >= 8 && String.sub f.Explore.message 0 8 = "deadlock");
  Alcotest.(check bool)
    (Printf.sprintf "found within budget (after %d)" f.Explore.found_after)
    true (f.Explore.found_after <= 64)

let test_shrunk_cert_is_minimal () =
  let f = explore_lost_wakeup () in
  (* The bug needs exactly one non-default decision: dispatch the
     consumer (choice 1) at the first two-way choice point. *)
  Alcotest.(check int) "one decision survives shrinking" 1
    (List.length f.Explore.cert.Schedule.decisions);
  let d = List.hd f.Explore.cert.Schedule.decisions in
  Alcotest.(check string) "it is a dispatch choice" "dispatch@0" d.Schedule.kind;
  Alcotest.(check int) "non-default branch" 1 d.Schedule.choice

let test_cert_replays_byte_identically () =
  let f = explore_lost_wakeup () in
  let r1 = Explore.replay lost_wakeup_fixture f.Explore.cert in
  let r2 = Explore.replay lost_wakeup_fixture f.Explore.cert in
  Alcotest.(check bool) "replay fails" true (r1.Explore.outcome <> Ok ());
  Alcotest.(check bool) "same outcome" true (r1.Explore.outcome = r2.Explore.outcome);
  Alcotest.(check int) "same trace hash" r1.Explore.hash r2.Explore.hash;
  Alcotest.(check int) "replay hash = certificate hash" f.Explore.trace_hash r1.Explore.hash;
  Alcotest.(check bool) "same decision log" true (r1.Explore.log = r2.Explore.log)

let test_cert_string_roundtrip () =
  let f = explore_lost_wakeup () in
  let s = Schedule.to_string f.Explore.cert in
  (match Schedule.of_string s with
  | Some c -> Alcotest.(check bool) ("roundtrip of " ^ s) true (c = f.Explore.cert)
  | None -> Alcotest.failf "could not parse own output: %s" s);
  Alcotest.(check bool) "garbage rejected" true (Schedule.of_string "seed=;nope" = None)

let test_explorer_passes_correct_code () =
  (* Same shape without the bug: the consumer re-checks under no window.
     Every schedule must pass, and the space is small enough to finish. *)
  let fixture smp ~seed:_ =
    let flag = ref false in
    let consumer_done = ref false in
    let ctid = ref (-1) in
    ignore
      (Smp.spawn_on smp ~core:0 ~pinned:true ~name:"producer" (fun () ->
           flag := true;
           Sched.wake (Smp.sched_of smp ~core:0) !ctid));
    ctid :=
      Smp.spawn_on smp ~core:0 ~pinned:true ~name:"consumer" (fun () ->
          if not !flag then Sched.block ();
          consumer_done := true);
    fun () -> Prop.require !consumer_done "consumer never completed"
  in
  match Explore.run (Explore.config ~cores:1 ~budget:64 ()) fixture with
  | Explore.Passed s ->
      Alcotest.(check bool) "exhaustive" true s.Explore.exhaustive;
      Alcotest.(check bool)
        (Printf.sprintf "several schedules tried (%d)" s.Explore.schedules)
        true
        (s.Explore.schedules >= 2)
  | Explore.Failed f ->
      Alcotest.failf "false positive: %s (%s)" f.Explore.message
        (Schedule.to_string f.Explore.cert)

let test_explored_fault_seeds () =
  (* The seeds axis composes with fault injection: a fixture that
     reseeds a fault-injecting allocator from the explored seed gets a
     different (deterministic) OOM pattern per seed, and the invariant
     must hold across all of them. *)
  let failures_by_seed = ref [] in
  let fixture smp ~seed =
    let backend =
      Ukalloc.Tlsf.create ~clock:(Uksim.Clock.create ()) ~base:(1 lsl 20) ~len:(1 lsl 20)
    in
    let faulty = Ukfault.Faultalloc.wrap ~rng:(Uksim.Rng.create 0) ~fail_rate:0.3 backend in
    Ukfault.Faultalloc.reseed faulty seed;
    let view = Ukfault.Faultalloc.alloc faulty in
    let got = ref 0 and failed = ref 0 in
    ignore
      (Smp.spawn_on smp ~core:0 ~pinned:true (fun () ->
           for _ = 1 to 20 do
             match Ukalloc.Alloc.uk_malloc view 64 with
             | Some a ->
                 incr got;
                 Ukalloc.Alloc.uk_free view a
             | None -> incr failed
           done));
    fun () ->
      failures_by_seed := (seed, !failed) :: !failures_by_seed;
      Prop.all
        [
          Prop.require (!got + !failed = 20) "allocation accounting broke";
          Prop.require (!failed = Ukfault.Faultalloc.injected_failures faulty)
            "failures not all injected ones";
        ]
  in
  (match Explore.run (Explore.config ~cores:1 ~budget:8 ~seeds:[ 1; 2; 3; 4 ] ()) fixture with
  | Explore.Passed _ -> ()
  | Explore.Failed f -> Alcotest.failf "fault-seed exploration failed: %s" f.Explore.message);
  let distinct = List.sort_uniq compare (List.map snd !failures_by_seed) in
  Alcotest.(check bool) "different seeds inject different fault patterns" true
    (List.length distinct >= 2)

(* --- lockset race detector ------------------------------------------------ *)

let test_lockset_flags_racy_counter () =
  let smp = Smp.create ~cores:2 () in
  let det = Lockset.attach smp in
  let counter = Shared.cell ~name:"racy_counter" 0 in
  for c = 0 to 1 do
    ignore
      (Smp.spawn_on smp ~core:c ~pinned:true (fun () ->
           Smp.charge smp 500;
           Shared.update counter (fun v -> v + 1)))
  done;
  Smp.run smp;
  Lockset.detach det;
  (match Lockset.reports det with
  | [] -> Alcotest.fail "racy counter not flagged"
  | r :: _ ->
      Alcotest.(check string) "right cell" "racy_counter" r.Lockset.r_cell;
      Alcotest.(check bool) "two different threads" true
        (r.Lockset.r_first.Lockset.a_tid <> r.Lockset.r_second.Lockset.a_tid);
      Alcotest.(check bool) "one access per core" true
        (r.Lockset.r_first.Lockset.a_core <> r.Lockset.r_second.Lockset.a_core);
      Alcotest.(check bool) "at least one write" true
        (r.Lockset.r_first.Lockset.a_write || r.Lockset.r_second.Lockset.a_write);
      (* the report formats without raising *)
      ignore (Format.asprintf "%a" Lockset.pp_report r));
  Alcotest.(check bool) "accesses counted" true (Lockset.accesses det >= 4)

let test_lockset_silent_on_locked_counter () =
  let smp = Smp.create ~cores:1 () in
  let det = Lockset.attach smp in
  let counter = Shared.cell ~name:"locked_counter" 0 in
  let m = Uklock.Lock.Mutex.create ~name:"counter_lock" (Uklock.Lock.Threaded (Smp.sched_of smp ~core:0)) in
  for _ = 1 to 2 do
    ignore
      (Smp.spawn_on smp ~core:0 ~pinned:true (fun () ->
           Uklock.Lock.Mutex.lock m;
           Shared.update counter (fun v -> v + 1);
           Uklock.Lock.Mutex.unlock m))
  done;
  Smp.run smp;
  Lockset.detach det;
  Alcotest.(check int) "no reports" 0 (List.length (Lockset.reports det));
  Alcotest.(check int) "final value" 2 (Shared.peek counter);
  Alcotest.(check bool) "lock events seen" true (Lockset.lock_events det >= 4)

let test_lockset_wake_handoff_no_false_positive () =
  (* Handoff protocol with no lock at all: the producer writes, then
     wakes the consumer, which reads. The wake happens-before edge must
     keep this silent. *)
  let smp = Smp.create ~cores:2 () in
  let det = Lockset.attach smp in
  let cell = Shared.cell ~name:"handoff" 0 in
  let ctid = ref (-1) in
  ctid :=
    Smp.spawn_on smp ~core:1 ~pinned:true ~name:"consumer" (fun () ->
        Sched.block ();
        ignore (Shared.read cell));
  ignore
    (Smp.spawn_on smp ~core:0 ~pinned:true ~name:"producer" (fun () ->
         Sched.sleep_ns 100.0 (* let the consumer block first *);
         Shared.write cell 42;
         Sched.wake (Smp.sched_of smp ~core:0) !ctid));
  Smp.run smp;
  Lockset.detach det;
  (match Lockset.reports det with
  | [] -> ()
  | r :: _ -> Alcotest.fail ("false positive: " ^ Format.asprintf "%a" Lockset.pp_report r));
  Alcotest.(check bool) "ipi edge observed" true (Lockset.ipis det >= 1)

let test_lockset_silent_on_cluster_workload () =
  (* Zero false positives on a real multicore workload: the 4-core
     cluster smoke with the detector attached must report nothing, and
     attaching must not change the run (same trace hash as detached). *)
  let run_cluster ~detect =
    let c = Ukapps.Cluster.create ~seed:11 ~n:4 () in
    let det = if detect then Some (Lockset.attach (Ukapps.Cluster.smp c)) else None in
    ignore (Ukapps.Cluster.add_httpd c (Ukapps.Httpd.In_memory [ ("/x", "ok") ]));
    let r =
      Ukapps.Cluster.run_httpd_load c ~connections_per_core:2 ~requests_per_core:40 ~path:"/x" ()
    in
    Alcotest.(check int) "no http errors" 0 r.Ukapps.Wrk.errors;
    Option.iter Lockset.detach det;
    (Ukapps.Cluster.trace_hash c, det)
  in
  let h_plain, _ = run_cluster ~detect:false in
  let h_detect, det = run_cluster ~detect:true in
  Alcotest.(check int) "detector does not perturb the run" h_plain h_detect;
  match det with
  | None -> assert false
  | Some det ->
      Alcotest.(check int) "zero false positives" 0 (List.length (Lockset.reports det))

let test_lockset_exclusive_attach () =
  let smp = Smp.create ~cores:1 () in
  let det = Lockset.attach smp in
  Alcotest.(check bool) "second attach rejected" true
    (try
       ignore (Lockset.attach smp);
       false
     with Invalid_argument _ -> true);
  Lockset.detach det;
  Lockset.detach det (* idempotent *);
  let det2 = Lockset.attach smp in
  Lockset.detach det2

(* --- property harness ----------------------------------------------------- *)

let test_prop_check_passes () =
  Prop.check ~cores:2 ~schedules:32 ~name:"increments all land"
    (fun smp ~seed:_ ->
      let n = ref 0 in
      for c = 0 to 1 do
        ignore (Smp.spawn_on smp ~core:c ~pinned:true (fun () -> incr n))
      done;
      fun () -> Prop.require (!n = 2) "lost an increment")

let test_prop_check_raises_with_cert () =
  match Prop.check ~cores:1 ~schedules:64 ~name:"lost wakeup" lost_wakeup_fixture with
  | () -> Alcotest.fail "Prop.check missed the planted bug"
  | exception Failure msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("message names the bug: " ^ msg) true (contains msg "deadlock");
      Alcotest.(check bool) "message carries the certificate" true
        (contains msg "replay certificate: seed=")

let suite =
  [
    Alcotest.test_case "explorer finds planted lost wakeup" `Quick test_explorer_finds_lost_wakeup;
    Alcotest.test_case "shrinking yields the one-decision certificate" `Quick
      test_shrunk_cert_is_minimal;
    Alcotest.test_case "certificate replays byte-identically" `Quick
      test_cert_replays_byte_identically;
    Alcotest.test_case "certificate string roundtrip" `Quick test_cert_string_roundtrip;
    Alcotest.test_case "explorer passes the corrected fixture" `Quick
      test_explorer_passes_correct_code;
    Alcotest.test_case "explored seeds vary fault injection" `Quick test_explored_fault_seeds;
    Alcotest.test_case "lockset flags a racy counter" `Quick test_lockset_flags_racy_counter;
    Alcotest.test_case "lockset silent on the locked counter" `Quick
      test_lockset_silent_on_locked_counter;
    Alcotest.test_case "lockset respects wake happens-before" `Quick
      test_lockset_wake_handoff_no_false_positive;
    Alcotest.test_case "lockset silent on 4-core cluster smoke" `Quick
      test_lockset_silent_on_cluster_workload;
    Alcotest.test_case "one detector at a time" `Quick test_lockset_exclusive_attach;
    Alcotest.test_case "prop: invariant holds across schedules" `Quick test_prop_check_passes;
    Alcotest.test_case "prop: violation raises with certificate" `Quick
      test_prop_check_raises_with_cert;
  ]
