type t = Qemu | Qemu_microvm | Firecracker | Solo5 | Xen | Linuxu

let all = [ Qemu; Qemu_microvm; Firecracker; Solo5; Xen; Linuxu ]

let name = function
  | Qemu -> "qemu"
  | Qemu_microvm -> "qemu-microvm"
  | Firecracker -> "firecracker"
  | Solo5 -> "solo5"
  | Xen -> "xen"
  | Linuxu -> "linuxu"

let of_name s = List.find_opt (fun v -> String.equal (name v) s) all

let ms = Uksim.Units.msec
let us = Uksim.Units.usec

let startup_ns = function
  | Qemu -> ms 40.0
  | Qemu_microvm -> ms 10.0
  | Firecracker -> ms 3.0
  | Solo5 -> ms 3.0
  | Xen -> ms 120.0 (* xl toolstack domain build *)
  | Linuxu -> ms 0.8 (* fork+exec of a host process *)

let guest_early_init_ns = function
  | Qemu -> us 18.0 (* ACPI tables, PIC/APIC, PIT calibration *)
  | Qemu_microvm -> us 12.0
  | Firecracker -> us 110.0 (* MPTable parse + boot params (paper: <1ms) *)
  | Solo5 -> us 4.0 (* hypercall-based, nearly nothing to probe *)
  | Xen -> us 25.0 (* PV entry, shared-info setup *)
  | Linuxu -> us 2.0

let nic_attach_ns = function
  | Qemu | Qemu_microvm -> us 160.0 (* virtio-net feature negotiation + queues *)
  | Firecracker -> us 220.0
  | Solo5 -> us 60.0 (* solo5 net is pre-bound *)
  | Xen -> us 320.0 (* netfront/netback handshake through xenstore *)
  | Linuxu -> us 30.0 (* tap fd inherit *)

let snapshot_restore_ns = function
  | Qemu -> ms 8.0 (* full machine model to rebuild before mem load *)
  | Qemu_microvm -> ms 4.0
  | Firecracker -> ms 1.2 (* the microVM snapshot-restore fast path *)
  | Solo5 -> ms 1.0
  | Xen -> ms 30.0 (* xl restore still walks the toolstack *)
  | Linuxu -> ms 0.3 (* fork of a checkpointed process *)

let ninep_attach_ns = function
  | Qemu | Qemu_microvm | Firecracker -> 3.0e5 (* 0.3 ms, paper §5.2 *)
  | Xen -> 2.7e6 (* 2.7 ms *)
  | Solo5 | Linuxu -> 2.0e5

type boot_breakdown = {
  vmm : t;
  vmm_startup_ns : float;
  guest_ns : float;
  total_ns : float;
}

let boot vmm ~clock ?(nics = 0) ?(with_9p = false) ~inittab ?main () =
  let t0 = Uksim.Clock.ns clock in
  (* VMM startup happens before the first guest instruction; it is wall
     time for the boot experiment, so it advances the same clock. *)
  Uksim.Clock.advance_ns clock (startup_ns vmm);
  let guest_start = Uksim.Clock.ns clock in
  Uksim.Clock.advance_ns clock (guest_early_init_ns vmm);
  for _ = 1 to nics do
    Uksim.Clock.advance_ns clock (nic_attach_ns vmm)
  done;
  if with_9p then Uksim.Clock.advance_ns clock (ninep_attach_ns vmm);
  let pre_ctor_ns = Uksim.Clock.ns clock -. guest_start in
  let report = Ukboot.Boot.run ~clock ?main inittab in
  (* Guest boot ends when main() is entered; main's own run time is not
     part of the boot measurement. *)
  let guest_ns = pre_ctor_ns +. report.Ukboot.Boot.guest_boot_ns in
  ( {
      vmm;
      vmm_startup_ns = guest_start -. t0;
      guest_ns;
      total_ns = (guest_start -. t0) +. guest_ns;
    },
    report )
