(** Virtual machine monitor models (paper §5.1, Fig 10).

    A VMM contributes (a) its own startup time — process creation, memory
    setup, device model bring-up — which dominates total boot for tiny
    guests, and (b) per-device guest-visible attach costs during early
    boot. Startup times are the paper's measurements on the i7-9700K
    testbed. *)

type t = Qemu | Qemu_microvm | Firecracker | Solo5 | Xen | Linuxu

val all : t list
val name : t -> string
val of_name : string -> t option

val startup_ns : t -> float
(** Time from VMM invocation to first guest instruction: QEMU ≈ 40 ms,
    QEMU microVM ≈ 10 ms, Firecracker ≈ 3 ms, Solo5 ≈ 3 ms (Fig 10);
    Xen's xl toolstack is far slower; linuxu is a process exec. *)

val guest_early_init_ns : t -> float
(** Platform bring-up inside the guest before constructors run (console,
    interrupt controller, clock calibration). *)

val snapshot_restore_ns : t -> float
(** Time to resurrect a guest from a snapshot, {e excluding} the guest
    memory copy (which scales with footprint — the restoring layer charges
    it separately): VMM process setup plus device-state restore. The
    microVM monitors (Firecracker, Solo5) restore in ~1 ms; QEMU rebuilds
    its machine model first; Xen walks the xl toolstack. *)

val nic_attach_ns : t -> float
(** Extra guest boot time for one virtio NIC (feature negotiation, queue
    setup) — the "one NIC" bars of Fig 10. *)

val ninep_attach_ns : t -> float
(** Extra guest boot time for the 9pfs device: 0.3 ms on KVM, 2.7 ms on
    Xen (paper §5.2 / text2). *)

type boot_breakdown = {
  vmm : t;
  vmm_startup_ns : float;
  guest_ns : float;
  total_ns : float;
}

val boot :
  t ->
  clock:Uksim.Clock.t ->
  ?nics:int ->
  ?with_9p:bool ->
  inittab:Ukboot.Boot.Inittab.t ->
  ?main:(unit -> unit) ->
  unit ->
  boot_breakdown * Ukboot.Boot.report
(** Run a full boot: charge VMM startup, guest early init, device
    attaches, then the image's constructor table (and [main]). *)
