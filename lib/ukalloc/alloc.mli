(** The ukalloc API (paper §3.2).

    An allocator is a record of operations over a region of the simulated
    address space — the OCaml rendering of [struct uk_alloc]'s function
    pointers. Several allocators can coexist in one unikernel; requests name
    the backend explicitly ([uk_malloc a size]), mirroring the paper's
    multiplexing layer.

    Addresses are plain integers into the simulated physical address space;
    backends guarantee non-overlapping live allocations and alignment. All
    backends charge their work to the {!Uksim.Clock.t} they were initialized
    with, so allocation behaviour shows up in virtual-time measurements. *)

type stats = {
  allocs : int;        (** successful malloc/calloc/memalign calls *)
  frees : int;
  failed : int;        (** out-of-memory failures *)
  bytes_in_use : int;  (** live payload bytes *)
  peak_bytes : int;
  metadata_bytes : int;(** current allocator-metadata overhead *)
}

type t = {
  name : string;
  malloc : int -> int option;
  calloc : int -> int -> int option;
  memalign : align:int -> int -> int option;
  free : int -> unit;
  realloc : int -> int -> int option;
  availmem : unit -> int;  (** free bytes remaining (approximate for some backends) *)
  stats : unit -> stats;
}

val uk_malloc : t -> int -> int option
(** [uk_malloc a size] — the paper's [uk_malloc(a, size)]. *)

val uk_calloc : t -> int -> int -> int option
val uk_free : t -> int -> unit
val uk_memalign : t -> align:int -> int -> int option
val uk_realloc : t -> int -> int -> int option

val zero_stats : stats

val is_power_of_two : int -> bool
val round_up : int -> int -> int
(** [round_up n align] rounds [n] up to a multiple of [align] (a power of
    two). *)

val log2_ceil : int -> int
val log2_floor : int -> int

(** {1 Observability}

    Stats are exposed to harnesses through the {!Uktrace.Registry}, not by
    reaching for the [stats] record directly: every allocator registered
    with {!Registry.register} (the ukboot path) is mirrored as a
    ["ukalloc.<name>"] source automatically. *)

val source_of : t -> Uktrace.Source.t
(** The allocator's stats as a registry source (samples mirror {!stats}). *)

val register_source : t -> unit
(** [Uktrace.Registry.register (source_of a)] — for allocators created
    outside the boot registry. *)

val traced : clock:Uksim.Clock.t -> t -> t
(** Wrap every operation in a ["ukalloc"] tracepoint span timed on
    [clock]. Free when the default tracer is disabled. *)

(** {1 Registry}

    ukboot registers each initialized allocator here; the first registration
    becomes the default used by the libc layer (paper: "the boot process
    sets the association between memory allocators and memory sources"). *)

module Registry : sig
  type allocator := t
  type t

  val create : unit -> t

  val register : t -> allocator -> unit
  (** First registered allocator becomes the default. Raises
      [Invalid_argument] on duplicate allocator names. *)

  val default : t -> allocator option
  val find : t -> string -> allocator option

  val all : t -> allocator list
  (** Registration order. *)
end
