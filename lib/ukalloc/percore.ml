(* Per-core arena/magazine layer over any Alloc.t backend (SMP model).

   Each core keeps per-size-class magazines (stacks of free objects). The
   hot path pops/pushes a magazine and charges only Cost.arena_fast_path to
   that core's clock — no lock. When a magazine drains, the core refills a
   batch from the shared backend under a Uklock.Spin whose hold models the
   backend work; overflowing magazines flush half back the same way. The
   backend is typically created on a dummy clock so its own cost charges go
   nowhere — the Spin hold is the modeled cost, and contention on it is what
   the shared-lock-vs-arena ablation measures. *)

let max_class_size = 4096
let min_class = 4 (* 16-byte minimum object *)
let max_class = 12 (* log2 max_class_size *)

type counters = {
  fast_hits : int; (* allocations served from a magazine *)
  refills : int;
  flushes : int;
  backend_oom : int; (* refills/bypasses that got fewer objects than asked *)
  cached_objs : int; (* objects currently sitting in magazines *)
  cached_bytes : int;
}

type t = {
  clocks : Uksim.Clock.t array;
  backend : Alloc.t;
  batch : int;
  max_cached : int;
  lock : Uklock.Lock.Spin.t;
  mags : int list array array; (* core -> class -> free addrs *)
  mag_len : int array array; (* avoid O(n) List.length on the hot path *)
  addr2class : (int, int) Hashtbl.t; (* live or magazine-cached small objects *)
  bypass : (int, int) Hashtbl.t; (* addr -> size, for > max_class_size *)
  mutable fast_hits : int;
  mutable refills : int;
  mutable flushes : int;
  mutable backend_oom : int;
  mutable allocs : int;
  mutable frees : int;
  mutable failed : int;
  mutable in_use : int;
  mutable peak : int;
}

let create ~clocks ~backend ?(batch = 16) ?(max_cached = 64) () =
  if Array.length clocks = 0 then invalid_arg "Percore.create: no cores";
  if batch <= 0 then invalid_arg "Percore.create: batch must be positive";
  if max_cached < batch then invalid_arg "Percore.create: max_cached < batch";
  let n = Array.length clocks in
  let t = {
    clocks;
    backend;
    batch;
    max_cached;
    lock = Uklock.Lock.Spin.create ~name:"arena-backend" ();
    mags = Array.init n (fun _ -> Array.make (max_class + 1) []);
    mag_len = Array.init n (fun _ -> Array.make (max_class + 1) 0);
    addr2class = Hashtbl.create 256;
    bypass = Hashtbl.create 16;
    fast_hits = 0;
    refills = 0;
    flushes = 0;
    backend_oom = 0;
    allocs = 0;
    frees = 0;
    failed = 0;
    in_use = 0;
    peak = 0;
  }
  in
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukalloc" ~name:"percore"
       ~reset:(fun () ->
         t.fast_hits <- 0;
         t.refills <- 0;
         t.flushes <- 0;
         t.backend_oom <- 0)
       (fun () ->
         let objs = ref 0 and bytes = ref 0 in
         Array.iter
           (Array.iteri (fun c len ->
                objs := !objs + len;
                bytes := !bytes + (len * (1 lsl c))))
           t.mag_len;
         [
           ("fast_hits", Uktrace.Metric.Count t.fast_hits);
           ("refills", Uktrace.Metric.Count t.refills);
           ("flushes", Uktrace.Metric.Count t.flushes);
           ("backend_oom", Uktrace.Metric.Count t.backend_oom);
           ("allocs", Uktrace.Metric.Count t.allocs);
           ("frees", Uktrace.Metric.Count t.frees);
           ("cached_objs", Uktrace.Metric.Level (float_of_int !objs));
           ("cached_bytes", Uktrace.Metric.Level (float_of_int !bytes));
           ("bytes_in_use", Uktrace.Metric.Level (float_of_int t.in_use));
           ("peak_bytes", Uktrace.Metric.Level (float_of_int t.peak));
         ]));
  t

let n_cores t = Array.length t.clocks
let lock t = t.lock

let counters t =
  let objs = ref 0 and bytes = ref 0 in
  Array.iter
    (fun per_class ->
      Array.iteri
        (fun c len ->
          objs := !objs + len;
          bytes := !bytes + (len * (1 lsl c)))
        per_class)
    t.mag_len;
  {
    fast_hits = t.fast_hits;
    refills = t.refills;
    flushes = t.flushes;
    backend_oom = t.backend_oom;
    cached_objs = !objs;
    cached_bytes = !bytes;
  }

let class_of size = max min_class (Alloc.log2_ceil size)

let note_alloc t bytes =
  t.allocs <- t.allocs + 1;
  t.in_use <- t.in_use + bytes;
  if t.in_use > t.peak then t.peak <- t.in_use

let refill_hold t = Uksim.Cost.alloc_backend_op + (t.batch * Uksim.Cost.arena_refill_per_obj)

(* Pull up to [batch] objects of class [c] from the backend; returns how
   many arrived. Caller holds (held) the spinlock window already. *)
let refill t ~core c =
  let csize = 1 lsl c in
  let got = ref 0 in
  (try
     for _ = 1 to t.batch do
       match t.backend.Alloc.malloc csize with
       | Some addr ->
           Hashtbl.replace t.addr2class addr c;
           t.mags.(core).(c) <- addr :: t.mags.(core).(c);
           t.mag_len.(core).(c) <- t.mag_len.(core).(c) + 1;
           incr got
       | None -> raise Exit
     done
   with Exit -> ());
  t.refills <- t.refills + 1;
  if !got < t.batch then t.backend_oom <- t.backend_oom + 1;
  !got

let flush t ~core c =
  let keep = t.max_cached / 2 in
  let rec split i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | a :: rest -> split (i - 1) (a :: acc) rest
  in
  let kept, excess = split keep [] t.mags.(core).(c) in
  t.mags.(core).(c) <- kept;
  t.mag_len.(core).(c) <- List.length kept;
  let n = List.length excess in
  Uklock.Lock.Spin.acquire t.lock t.clocks.(core)
    ~hold:(Uksim.Cost.alloc_backend_op + (n * Uksim.Cost.arena_refill_per_obj));
  List.iter
    (fun addr ->
      Hashtbl.remove t.addr2class addr;
      t.backend.Alloc.free addr)
    excess;
  t.flushes <- t.flushes + 1

let malloc t ~core size =
  if size <= 0 then invalid_arg "Percore.malloc: size must be positive";
  let clock = t.clocks.(core) in
  if size > max_class_size then begin
    (* Large objects bypass the magazines and hit the backend directly. *)
    Uklock.Lock.Spin.acquire t.lock clock ~hold:Uksim.Cost.alloc_backend_op;
    match t.backend.Alloc.malloc size with
    | Some addr ->
        Hashtbl.replace t.bypass addr size;
        note_alloc t size;
        Some addr
    | None ->
        t.backend_oom <- t.backend_oom + 1;
        t.failed <- t.failed + 1;
        None
  end
  else begin
    let c = class_of size in
    (match t.mags.(core).(c) with
    | _ :: _ -> t.fast_hits <- t.fast_hits + 1
    | [] ->
        Uklock.Lock.Spin.acquire t.lock clock ~hold:(refill_hold t);
        ignore (refill t ~core c));
    match t.mags.(core).(c) with
    | addr :: rest ->
        t.mags.(core).(c) <- rest;
        t.mag_len.(core).(c) <- t.mag_len.(core).(c) - 1;
        Uksim.Clock.advance clock Uksim.Cost.arena_fast_path;
        note_alloc t (1 lsl c);
        Some addr
    | [] ->
        t.failed <- t.failed + 1;
        None
  end

let free t ~core addr =
  let clock = t.clocks.(core) in
  match Hashtbl.find_opt t.bypass addr with
  | Some size ->
      Hashtbl.remove t.bypass addr;
      Uklock.Lock.Spin.acquire t.lock clock ~hold:Uksim.Cost.alloc_backend_op;
      t.backend.Alloc.free addr;
      t.frees <- t.frees + 1;
      t.in_use <- t.in_use - size
  | None -> (
      match Hashtbl.find_opt t.addr2class addr with
      | Some c ->
          Uksim.Clock.advance clock Uksim.Cost.arena_fast_path;
          t.mags.(core).(c) <- addr :: t.mags.(core).(c);
          t.mag_len.(core).(c) <- t.mag_len.(core).(c) + 1;
          t.frees <- t.frees + 1;
          t.in_use <- t.in_use - (1 lsl c);
          if t.mag_len.(core).(c) > t.max_cached then flush t ~core c
      | None -> invalid_arg "Percore.free: unknown address")

let stats t =
  let ctr = counters t in
  {
    Alloc.allocs = t.allocs;
    frees = t.frees;
    failed = t.failed;
    bytes_in_use = t.in_use;
    peak_bytes = t.peak;
    metadata_bytes = ctr.cached_bytes;
  }

let view t ~core =
  if core < 0 || core >= n_cores t then invalid_arg "Percore.view: bad core";
  let clock = t.clocks.(core) in
  let malloc size = malloc t ~core size in
  let free addr = free t ~core addr in
  {
    Alloc.name = Printf.sprintf "percore[%d]/%s" core t.backend.Alloc.name;
    malloc;
    calloc = (fun n size -> malloc (n * size));
    memalign =
      (fun ~align size ->
        (* Magazines carry no alignment guarantee; go to the backend. *)
        Uklock.Lock.Spin.acquire t.lock clock ~hold:Uksim.Cost.alloc_backend_op;
        match t.backend.Alloc.memalign ~align size with
        | Some addr ->
            Hashtbl.replace t.bypass addr size;
            note_alloc t size;
            Some addr
        | None ->
            t.failed <- t.failed + 1;
            None);
    free;
    realloc =
      (fun addr size ->
        match malloc size with
        | Some naddr ->
            free addr;
            Some naddr
        | None -> None);
    availmem = (fun () -> t.backend.Alloc.availmem ());
    stats = (fun () -> stats t);
  }

(* The ablation baseline: every view funnels every operation through one
   spinlock around the shared backend. Same backend, same per-op cost — the
   only difference from the arena is the serialization. *)
let shared_lock_views ~clocks ~backend ?(hold = Uksim.Cost.alloc_backend_op) () =
  let lock = Uklock.Lock.Spin.create ~name:"alloc-shared" () in
  let view core =
    let clock = clocks.(core) in
    let locked f =
      Uklock.Lock.Spin.acquire lock clock ~hold;
      f ()
    in
    {
      Alloc.name = Printf.sprintf "sharedlock[%d]/%s" core backend.Alloc.name;
      malloc = (fun size -> locked (fun () -> backend.Alloc.malloc size));
      calloc = (fun n size -> locked (fun () -> backend.Alloc.calloc n size));
      memalign = (fun ~align size -> locked (fun () -> backend.Alloc.memalign ~align size));
      free = (fun addr -> locked (fun () -> backend.Alloc.free addr));
      realloc = (fun addr size -> locked (fun () -> backend.Alloc.realloc addr size));
      availmem = (fun () -> backend.Alloc.availmem ());
      stats = (fun () -> backend.Alloc.stats ());
    }
  in
  (Array.init (Array.length clocks) view, lock)
