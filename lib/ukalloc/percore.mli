(** Per-core arena/magazine allocator layer for the SMP model.

    Wraps any {!Alloc.t} backend with per-core, per-size-class magazines
    (stacks of pre-allocated objects). The hot path — pop on malloc, push
    on free — touches only the calling core's state and charges
    {!Uksim.Cost.arena_fast_path} to that core's clock. Magazines refill in
    batches from the shared backend under a {!Uklock.Lock.Spin} whose hold
    time models the backend work
    ([Cost.alloc_backend_op + batch * Cost.arena_refill_per_obj]);
    overflowing magazines flush half back the same way.

    Create the backend on a dummy clock: its internal cost charges then go
    nowhere and the spinlock hold is the single source of modeled backend
    cost, which keeps the arena-vs-shared-lock ablation apples-to-apples.

    Sizes above 4096 bytes bypass the magazines (backend under lock).
    Objects may be freed from any core (the class table is shared); a
    cross-core free caches the object on the {e freeing} core. Backend OOM
    propagates: a refill that obtains zero objects makes malloc return
    [None], so the layer composes with {!Ukfault.Faultalloc} injection. *)

type t

val create :
  clocks:Uksim.Clock.t array ->
  backend:Alloc.t ->
  ?batch:int ->
  ?max_cached:int ->
  unit ->
  t
(** One magazine set per entry of [clocks] (core [i] charges [clocks.(i)]).
    [batch] (default 16) objects move per refill; a magazine holding more
    than [max_cached] (default 64) objects flushes down to half of it.
    Raises [Invalid_argument] if [clocks] is empty, [batch <= 0], or
    [max_cached < batch]. *)

val view : t -> core:int -> Alloc.t
(** The ukalloc-facing allocator for one core. All views share the backend
    and stats ([stats ()] reports the whole arena, not one core). *)

val n_cores : t -> int
val lock : t -> Uklock.Lock.Spin.t
(** The backend spinlock — its {!Uklock.Lock.Spin.stats} quantify refill
    contention. *)

type counters = {
  fast_hits : int;  (** allocations served from a magazine, no lock *)
  refills : int;
  flushes : int;
  backend_oom : int;  (** refills/bypasses the backend could not satisfy *)
  cached_objs : int;  (** objects currently cached in magazines *)
  cached_bytes : int;
}

val counters : t -> counters

val shared_lock_views :
  clocks:Uksim.Clock.t array ->
  backend:Alloc.t ->
  ?hold:int ->
  unit ->
  Alloc.t array * Uklock.Lock.Spin.t
(** Ablation baseline: per-core views that funnel {e every} operation
    through one spinlock around [backend], held for [hold] cycles
    (default {!Uksim.Cost.alloc_backend_op}). Returns the views (indexed
    like [clocks]) and the lock for contention stats. *)
