type stats = {
  allocs : int;
  frees : int;
  failed : int;
  bytes_in_use : int;
  peak_bytes : int;
  metadata_bytes : int;
}

type t = {
  name : string;
  malloc : int -> int option;
  calloc : int -> int -> int option;
  memalign : align:int -> int -> int option;
  free : int -> unit;
  realloc : int -> int -> int option;
  availmem : unit -> int;
  stats : unit -> stats;
}

let uk_malloc a size = a.malloc size
let uk_calloc a n size = a.calloc n size
let uk_free a addr = a.free addr
let uk_memalign a ~align size = a.memalign ~align size
let uk_realloc a addr size = a.realloc addr size

let zero_stats =
  { allocs = 0; frees = 0; failed = 0; bytes_in_use = 0; peak_bytes = 0; metadata_bytes = 0 }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let round_up n align =
  if not (is_power_of_two align) then invalid_arg "Alloc.round_up: align not a power of two";
  (n + align - 1) land lnot (align - 1)

let log2_floor n =
  if n <= 0 then invalid_arg "Alloc.log2_floor";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let log2_ceil n =
  let f = log2_floor n in
  if 1 lsl f = n then f else f + 1

let source_of (a : t) =
  Uktrace.Source.make ~subsystem:"ukalloc" ~name:a.name (fun () ->
      let s = a.stats () in
      [
        ("allocs", Uktrace.Metric.Count s.allocs);
        ("frees", Uktrace.Metric.Count s.frees);
        ("failed", Uktrace.Metric.Count s.failed);
        ("bytes_in_use", Uktrace.Metric.Level (float_of_int s.bytes_in_use));
        ("peak_bytes", Uktrace.Metric.Level (float_of_int s.peak_bytes));
        ("metadata_bytes", Uktrace.Metric.Level (float_of_int s.metadata_bytes));
      ])

let register_source a = Uktrace.Registry.register (source_of a)

let traced ~clock (a : t) =
  let sp name f = Uktrace.Tracer.span Uktrace.Tracer.default clock ~cat:"ukalloc" name f in
  {
    a with
    malloc = (fun size -> sp "malloc" (fun () -> a.malloc size));
    calloc = (fun n size -> sp "calloc" (fun () -> a.calloc n size));
    memalign = (fun ~align size -> sp "memalign" (fun () -> a.memalign ~align size));
    free = (fun addr -> sp "free" (fun () -> a.free addr));
    realloc = (fun addr size -> sp "realloc" (fun () -> a.realloc addr size));
  }

module Registry = struct
  type allocator = t

  type t = { mutable order : allocator list (* reversed *) }

  let create () = { order = [] }

  let find t name = List.find_opt (fun (a : allocator) -> String.equal a.name name) t.order

  let register t (a : allocator) =
    if List.exists (fun (x : allocator) -> String.equal x.name a.name) t.order then
      invalid_arg (Printf.sprintf "Alloc.Registry.register: duplicate allocator %s" a.name);
    register_source a;
    t.order <- a :: t.order

  let all t = List.rev t.order

  let default t = match all t with [] -> None | a :: _ -> Some a
end
