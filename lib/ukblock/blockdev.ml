type error = Ebounds | Eio | Equeue_full

let error_to_string = function
  | Ebounds -> "out of bounds"
  | Eio -> "I/O error"
  | Equeue_full -> "queue full"

type request =
  | Read of { lba : int; sectors : int }
  | Write of { lba : int; data : bytes }

type completion = {
  req : request;
  result : (bytes, error) result;
}

type t = {
  name : string;
  sector_size : int;
  capacity_sectors : int;
  submit : request array -> int;
  poll_completions : max:int -> completion list;
  pending : unit -> int;
  set_completion_handler : (unit -> unit) option -> unit;
  read_sync : lba:int -> sectors:int -> (bytes, error) result;
  write_sync : lba:int -> bytes -> (unit, error) result;
  flush : unit -> unit;
  stats : unit -> stats;
}

and stats = { reads : int; writes : int; sectors_read : int; sectors_written : int }

let zero_stats = { reads = 0; writes = 0; sectors_read = 0; sectors_written = 0 }

let register_source (dev : t) =
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukblock" ~name:dev.name (fun () ->
         let s = dev.stats () in
         [
           ("reads", Uktrace.Metric.Count s.reads);
           ("writes", Uktrace.Metric.Count s.writes);
           ("sectors_read", Uktrace.Metric.Count s.sectors_read);
           ("sectors_written", Uktrace.Metric.Count s.sectors_written);
         ]))
