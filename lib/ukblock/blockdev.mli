(** The ukblock API (paper Fig 4, scenario 8): queue-based block I/O with
    the same design philosophy as uknetdev — the application owns buffers
    and submits request batches; completion is polled or signalled.

    Disk-bound applications (the paper's database example) can bypass
    vfscore entirely and program against this API. *)

type error = Ebounds | Eio | Equeue_full

val error_to_string : error -> string

type request =
  | Read of { lba : int; sectors : int }
  | Write of { lba : int; data : bytes }  (** length = k * sector_size *)

type completion = {
  req : request;
  result : (bytes, error) result;  (** read payload, or empty on write *)
}

type t = {
  name : string;
  sector_size : int;
  capacity_sectors : int;
  submit : request array -> int;
      (** Enqueue as many as fit; returns the count accepted. *)
  poll_completions : max:int -> completion list;
  pending : unit -> int;  (** submitted, not yet completed *)
  set_completion_handler : (unit -> unit) option -> unit;
      (** Interrupt-style notification when completions become available
          while the queue was idle. *)
  read_sync : lba:int -> sectors:int -> (bytes, error) result;
      (** Convenience: submit one read and wait for it. *)
  write_sync : lba:int -> bytes -> (unit, error) result;
  flush : unit -> unit;
  stats : unit -> stats;  (** Completed-operation counters. *)
}

and stats = { reads : int; writes : int; sectors_read : int; sectors_written : int }

val zero_stats : stats

val register_source : t -> unit
(** Mirror [stats] as a ["ukblock.<name>"] source in the
    {!Uktrace.Registry} (device implementations call this at create). *)
