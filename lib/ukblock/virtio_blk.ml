module B = Blockdev

(* Guest-side descriptor work per request; host path is latency on the
   engine. *)
let guest_req_cost = 140
let kick_cost = Uksim.Cost.vm_exit
let irq_cost = Uksim.Cost.interrupt_delivery

type backing = { store : bytes; sector_size : int; capacity : int }

let mk_backing ~sector_size ~capacity_sectors =
  { store = Bytes.make (sector_size * capacity_sectors) '\000';
    sector_size;
    capacity = capacity_sectors }

let do_request backing (req : B.request) : (bytes, B.error) result =
  match req with
  | B.Read { lba; sectors } ->
      if lba < 0 || sectors <= 0 || lba + sectors > backing.capacity then Error B.Ebounds
      else Ok (Bytes.sub backing.store (lba * backing.sector_size) (sectors * backing.sector_size))
  | B.Write { lba; data } ->
      let n = Bytes.length data in
      if
        lba < 0 || n = 0
        || n mod backing.sector_size <> 0
        || lba + (n / backing.sector_size) > backing.capacity
      then Error B.Ebounds
      else begin
        Bytes.blit data 0 backing.store (lba * backing.sector_size) n;
        Ok Bytes.empty
      end

let sectors_of ~sector_size = function
  | B.Read { sectors; _ } -> sectors
  | B.Write { data; _ } -> Bytes.length data / sector_size

let create ~clock ~engine ?(sector_size = 512) ?(capacity_sectors = 131072) ?(queue_depth = 128)
    ?(host_latency_ns = 20_000.0) () =
  let backing = mk_backing ~sector_size ~capacity_sectors in
  let inflight = ref 0 in
  let done_q : B.completion Queue.t = Queue.create () in
  let handler = ref None in
  let st = ref B.zero_stats in
  let note req = function
    | Error _ -> ()
    | Ok _ ->
        let n = sectors_of ~sector_size req in
        st :=
          (match req with
          | B.Read _ ->
              { !st with B.reads = !st.B.reads + 1; sectors_read = !st.B.sectors_read + n }
          | B.Write _ ->
              { !st with B.writes = !st.B.writes + 1;
                sectors_written = !st.B.sectors_written + n })
  in
  let charge c = Uksim.Clock.advance clock c in
  let complete req =
    let result = do_request backing req in
    note req result;
    let was_idle = Queue.is_empty done_q in
    Queue.push { B.req; result } done_q;
    decr inflight;
    if was_idle then
      match !handler with
      | Some f ->
          charge irq_cost;
          f ()
      | None -> ()
  in
  let submit reqs =
    let room = queue_depth - !inflight in
    let n = min room (Array.length reqs) in
    if n > 0 then begin
      for i = 0 to n - 1 do
        charge guest_req_cost;
        let req = reqs.(i) in
        incr inflight;
        (* Host path: latency plus per-sector transfer time. *)
        let latency =
          Uksim.Clock.cycles_of_ns host_latency_ns
          + Uksim.Cost.memcpy (sectors_of ~sector_size req * sector_size)
        in
        Uksim.Engine.after engine latency (fun () -> complete req)
      done;
      charge kick_cost
    end;
    n
  in
  let poll_completions ~max:max_c =
    Uksim.Engine.run ~until:(Uksim.Clock.cycles clock) engine;
    let rec take acc k =
      if k >= max_c then List.rev acc
      else
        match Queue.take_opt done_q with
        | Some c -> take (c :: acc) (k + 1)
        | None -> List.rev acc
    in
    take [] 0
  in
  let wait_one () =
    (* Synchronous convenience: spin virtual time until a completion. *)
    let rec go () =
      match poll_completions ~max:1 with
      | [ c ] -> c
      | _ ->
          Uksim.Clock.advance clock 500;
          go ()
    in
    go ()
  in
  let read_sync ~lba ~sectors =
    if submit [| B.Read { lba; sectors } |] = 0 then Error B.Equeue_full
    else (wait_one ()).B.result
  in
  let write_sync ~lba data =
    if submit [| B.Write { lba; data } |] = 0 then Error B.Equeue_full
    else match (wait_one ()).B.result with Ok _ -> Ok () | Error e -> Error e
  in
  let dev =
    {
      B.name = "virtio-blk";
      sector_size;
      capacity_sectors;
      submit;
      poll_completions;
      pending = (fun () -> !inflight);
      set_completion_handler = (fun f -> handler := f);
      read_sync;
      write_sync;
      flush = (fun () -> Uksim.Engine.run ~until:(Uksim.Clock.cycles clock) engine);
      stats = (fun () -> !st);
    }
  in
  B.register_source dev;
  dev

let create_ramdisk ~clock ?(sector_size = 512) ?(capacity_sectors = 131072) () =
  let backing = mk_backing ~sector_size ~capacity_sectors in
  let done_q : B.completion Queue.t = Queue.create () in
  let st = ref B.zero_stats in
  let charge c = Uksim.Clock.advance clock c in
  let run req =
    charge (40 + Uksim.Cost.memcpy (sectors_of ~sector_size req * sector_size));
    let result = do_request backing req in
    (match result with
    | Error _ -> ()
    | Ok _ ->
        let n = sectors_of ~sector_size req in
        st :=
          (match req with
          | B.Read _ ->
              { !st with B.reads = !st.B.reads + 1; sectors_read = !st.B.sectors_read + n }
          | B.Write _ ->
              { !st with B.writes = !st.B.writes + 1;
                sectors_written = !st.B.sectors_written + n }));
    result
  in
  let submit reqs =
    Array.iter (fun req -> Queue.push { B.req; result = run req } done_q) reqs;
    Array.length reqs
  in
  let poll_completions ~max:max_c =
    let rec take acc k =
      if k >= max_c then List.rev acc
      else
        match Queue.take_opt done_q with
        | Some c -> take (c :: acc) (k + 1)
        | None -> List.rev acc
    in
    take [] 0
  in
  let dev =
    {
      B.name = "ramdisk";
      sector_size;
      capacity_sectors;
      submit;
      poll_completions;
      pending = (fun () -> 0);
      set_completion_handler = (fun _ -> ());
      read_sync = (fun ~lba ~sectors -> run (B.Read { lba; sectors }));
      write_sync =
        (fun ~lba data ->
          match run (B.Write { lba; data }) with Ok _ -> Ok () | Error e -> Error e);
      flush = (fun () -> ());
      stats = (fun () -> !st);
    }
  in
  B.register_source dev;
  dev
