(* The pure merkle layer: a canonical hash-trie over the key's digest
   nibbles. "Canonical" is the load-bearing word — the trie's shape is a
   function of the key *set* alone (leaves split when they exceed
   [leaf_max], branches collapse back when they shrink to it), and every
   hash is an order-independent XOR fold, so two stores that applied the
   same updates in different orders agree on the root hash bit-for-bit.
   That property is what makes merge and replication checks a single
   integer comparison.

   Objects are addressed by structural hash, not by serialization: the
   codec (in {!Store}) may embed disk locations alongside child refs
   without perturbing content addresses. *)

module D = Ukvfs.Digest

type hash = int

let null : hash = 0

(* Fanout 16 on successive nibbles of the key digest; a leaf holds up to
   [leaf_max] entries before splitting. Small enough that a few hundred
   keys already exercise multi-level branches. *)
let leaf_max = 8
let max_depth = 12

type node =
  | Leaf of (string * hash) list  (** key -> blob hash, sorted by key *)
  | Branch of int * (int * hash) list
      (** subtree entry count; nibble -> child hash, sorted by nibble *)

type commit = { root : hash; parents : hash list; msg : string }

type obj =
  | Blob of string
  | Node of node
  | Commit of commit

(* The object source: [get] resolves a hash (raising on corruption —
   the store maps that to an errno at its API boundary), [put] interns
   an object and returns its structural hash. [depth_seen] is a cheap
   observation channel: trie ops record the deepest level they touch so
   the store can export a tree-depth gauge without a full walk. *)
type src = {
  get : hash -> obj;
  put : obj -> hash;
  mutable depth_seen : int;
}

let key_hash k = D.string_hash k
let nibble kh d = (kh lsr (4 * d)) land 15

(* --- structural hashing --------------------------------------------------
   Domain-separating tags keep blob/node/commit hashes from colliding
   across kinds; every multi-element combine is an XOR fold, so entry
   order (and merge-parent order) never matters. *)

let blob_tag = 0xb10b
let commit_tag = 0xc011
let entry_hash k vh = D.mix (key_hash k) vh
let blob_hash v = D.mix (D.string_hash v) blob_tag

let node_hash = function
  | Leaf entries -> List.fold_left (fun acc (k, vh) -> acc lxor entry_hash k vh) 0 entries
  | Branch (_, kids) -> List.fold_left (fun acc (_, ch) -> acc lxor ch) 0 kids

let commit_hash ~root ~parents ~msg =
  let ps = List.fold_left ( lxor ) 0 parents in
  D.mix (D.mix (D.mix root (D.string_hash msg)) ps) commit_tag

let hash_of_obj = function
  | Blob v -> blob_hash v
  | Node n -> node_hash n
  | Commit { root; parents; msg } -> commit_hash ~root ~parents ~msg

(* --- helpers -------------------------------------------------------------- *)

let count src h =
  if h = null then 0
  else
    match src.get h with
    | Node (Leaf entries) -> List.length entries
    | Node (Branch (n, _)) -> n
    | Blob _ | Commit _ -> invalid_arg "Tree.count: not a node"

let node_of src h =
  match src.get h with
  | Node n -> n
  | Blob _ | Commit _ -> invalid_arg "Tree: hash is not a node"

let see src d = if d > src.depth_seen then src.depth_seen <- d

(* Sorted-assoc insert/replace for leaf entries. *)
let rec leaf_set entries k vh =
  match entries with
  | [] -> [ (k, vh) ]
  | (k', vh') :: rest ->
      if String.compare k k' < 0 then (k, vh) :: entries
      else if String.equal k k' then (k, vh) :: rest
      else (k', vh') :: leaf_set rest k vh

let rec kids_set kids nb ch =
  match kids with
  | [] -> if ch = null then [] else [ (nb, ch) ]
  | (nb', ch') :: rest ->
      if nb < nb' then if ch = null then kids else (nb, ch) :: kids
      else if nb = nb' then if ch = null then rest else (nb, ch) :: rest
      else (nb', ch') :: kids_set rest nb ch

(* Split an over-full entry list into a Branch at depth [d], recursing
   while a nibble group still overflows (all keys sharing a prefix). *)
let rec build src d entries =
  if List.length entries <= leaf_max || d >= max_depth then begin
    see src d;
    src.put (Node (Leaf entries))
  end
  else begin
    let groups = Array.make 16 [] in
    List.iter (fun (k, vh) -> let nb = nibble (key_hash k) d in groups.(nb) <- (k, vh) :: groups.(nb)) entries;
    let kids = ref [] in
    for nb = 15 downto 0 do
      match groups.(nb) with
      | [] -> ()
      | g -> kids := (nb, build src (d + 1) (List.rev g)) :: !kids
    done;
    see src d;
    src.put (Node (Branch (List.length entries, !kids)))
  end

(* Flatten a subtree to its sorted (key, value-hash) list. *)
let to_list src h =
  let rec go h acc =
    if h = null then acc
    else
      match node_of src h with
      | Leaf entries -> List.rev_append entries acc
      | Branch (_, kids) -> List.fold_left (fun acc (_, ch) -> go ch acc) acc kids
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (go h [])

(* --- the three trie operations ------------------------------------------- *)

let find src h key =
  let kh = key_hash key in
  let rec go d h =
    if h = null then None
    else begin
      see src d;
      match node_of src h with
      | Leaf entries -> List.assoc_opt key entries
      | Branch (_, kids) -> (
          match List.assoc_opt (nibble kh d) kids with
          | None -> None
          | Some ch -> go (d + 1) ch)
    end
  in
  go 0 h

let set src h key vh =
  let kh = key_hash key in
  let rec go d h =
    if h = null then build src d [ (key, vh) ]
    else begin
      see src d;
      match node_of src h with
      | Leaf entries -> build src d (leaf_set entries key vh)
      | Branch (n, kids) ->
          let nb = nibble kh d in
          let old = match List.assoc_opt nb kids with Some c -> c | None -> null in
          let oldn = count src old in
          let ch = go (d + 1) old in
          let n' = n - oldn + count src ch in
          src.put (Node (Branch (n', kids_set kids nb ch)))
    end
  in
  go 0 h

let remove src h key =
  let kh = key_hash key in
  let rec go d h =
    if h = null then None
    else begin
      see src d;
      match node_of src h with
      | Leaf entries ->
          if List.mem_assoc key entries then
            let entries' = List.remove_assoc key entries in
            if entries' = [] then Some null else Some (src.put (Node (Leaf entries')))
          else None
      | Branch (n, kids) -> (
          match List.assoc_opt (nibble kh d) kids with
          | None -> None
          | Some old -> (
              match go (d + 1) old with
              | None -> None
              | Some ch ->
                  let n' = n - 1 in
                  if n' <= leaf_max then
                    (* Canonical collapse: a shrunken branch becomes the
                       leaf an insert-only history would have built. *)
                    let entries =
                      List.filter (fun (k, _) -> not (String.equal k key)) (to_list src h)
                    in
                    Some (build src d entries)
                  else Some (src.put (Node (Branch (n', kids_set kids (nibble kh d) ch))))))
    end
  in
  match go 0 h with Some h' -> h' | None -> h

let depth src h =
  let rec go d h =
    if h = null then d
    else match node_of src h with
      | Leaf _ -> d + 1
      | Branch (_, kids) -> List.fold_left (fun acc (_, ch) -> max acc (go (d + 1) ch)) (d + 1) kids
  in
  go 0 h

(* Build a tree from scratch — recovery and merge both want "the
   canonical trie for this exact key set" in one shot. *)
let of_list src entries =
  match List.sort (fun (a, _) (b, _) -> String.compare a b) entries with
  | [] -> null
  | sorted -> build src 0 sorted
