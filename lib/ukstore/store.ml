(* The crash-consistent store: {!Tree}'s merkle objects persisted over a
   {!Ukblock.Blockdev} behind a write-ahead journal.

   On-disk layout (sector granularity, 512 B default):

     sector 0,1        root slots A/B — one textual line each, checksummed;
                       written alternately (epoch mod 2), so the flip that
                       publishes a checkpoint is a single-sector write,
                       which the device model (and real hardware) performs
                       atomically.
     sector 2..2+J-1   journal ring: per commit one record =
                       [header sector][payload sectors][trailer sector].
     sector 2+J..      data area: append-only object frames, one per
                       merkle object, sector-aligned.

   Durability protocol: a commit serializes every newly reachable object
   into one journal record, writes it with a single multi-sector write,
   and fsyncs — when [commit] returns [Ok], the commit survives any
   crash. A checkpoint later copies journaled objects to their
   pre-assigned data-area frames, fsyncs, flips the root slot, and
   fsyncs again; the journal ring then restarts from zero. Recovery
   reads the newest valid root slot and replays journal records while
   the chain stays intact: header checksum valid, sequence number
   contiguous, payload checksum valid. The first torn or stale record
   ends replay — everything before it is exactly the set of commits
   whose [commit] call returned [Ok]. *)

module B = Ukblock.Blockdev
module D = Ukvfs.Digest

type hash = Tree.hash
type errno = Ukvfs.Fs.errno

exception Err of errno

let null = Tree.null

(* Guest-side compute costs (cycles); device time is charged by the
   block layer itself. *)
let node_cost = 40 (* cache-hit object resolution *)
let frame_header = 39 (* fixed-width: "o <hash16> <kind> <len8> <lba8>\n" *)

type stats = {
  commits : int;
  merges : int;
  conflicts : int;
  checkpoints : int;
  journal_records : int;
  journal_bytes : int;
  fsync_barriers : int;
  cache_hits : int;
  cache_misses : int;
  replayed_records : int;
}

let zero_stats =
  { commits = 0; merges = 0; conflicts = 0; checkpoints = 0; journal_records = 0;
    journal_bytes = 0; fsync_barriers = 0; cache_hits = 0; cache_misses = 0;
    replayed_records = 0 }

(* --- the sticky ukstore source ------------------------------------------- *)

type gstats = {
  mutable g_commits : int;
  mutable g_journal_records : int;
  mutable g_journal_bytes : int;
  mutable g_fsync_barriers : int;
  mutable g_cache_hits : int;
  mutable g_cache_misses : int;
  mutable g_checkpoints : int;
  mutable g_merges : int;
  mutable g_conflicts : int;
  mutable g_replays : int;
  mutable g_replayed_records : int;
  mutable g_tree_depth : float;
}

let g =
  { g_commits = 0; g_journal_records = 0; g_journal_bytes = 0; g_fsync_barriers = 0;
    g_cache_hits = 0; g_cache_misses = 0; g_checkpoints = 0; g_merges = 0;
    g_conflicts = 0; g_replays = 0; g_replayed_records = 0; g_tree_depth = 0.0 }

let source =
  lazy
    (Uktrace.Registry.register ~sticky:true
       (Uktrace.Source.make ~subsystem:"ukstore" ~name:"store"
          ~reset:(fun () ->
            g.g_commits <- 0;
            g.g_journal_records <- 0;
            g.g_journal_bytes <- 0;
            g.g_fsync_barriers <- 0;
            g.g_cache_hits <- 0;
            g.g_cache_misses <- 0;
            g.g_checkpoints <- 0;
            g.g_merges <- 0;
            g.g_conflicts <- 0;
            g.g_replays <- 0;
            g.g_replayed_records <- 0;
            g.g_tree_depth <- 0.0)
          (fun () ->
            [
              ("commits", Uktrace.Metric.Count g.g_commits);
              ("journal_records", Uktrace.Metric.Count g.g_journal_records);
              ("journal_bytes", Uktrace.Metric.Count g.g_journal_bytes);
              ("fsync_barriers", Uktrace.Metric.Count g.g_fsync_barriers);
              ("cache_hits", Uktrace.Metric.Count g.g_cache_hits);
              ("cache_misses", Uktrace.Metric.Count g.g_cache_misses);
              ("checkpoints", Uktrace.Metric.Count g.g_checkpoints);
              ("merges", Uktrace.Metric.Count g.g_merges);
              ("conflicts", Uktrace.Metric.Count g.g_conflicts);
              ("replays", Uktrace.Metric.Count g.g_replays);
              ("replayed_records", Uktrace.Metric.Count g.g_replayed_records);
              ("tree_depth", Uktrace.Metric.Level g.g_tree_depth);
            ])))

(* --- store state ----------------------------------------------------------- *)

type t = {
  clock : Uksim.Clock.t;
  dev : B.t;
  jstart : int;
  jcap : int; (* journal ring, sectors *)
  cache : (hash, Tree.obj) Hashtbl.t;
  locs : (hash, int * int) Hashtbl.t; (* object -> (lba, frame bytes) *)
  durable : (hash, unit) Hashtbl.t; (* journaled or checkpointed *)
  mutable unckpt : hash list; (* journal-only objects, oldest first *)
  mutable head : hash; (* last durable commit, null before the first *)
  mutable root : hash; (* working tree (may be ahead of head) *)
  mutable epoch : int;
  mutable next_seq : int;
  mutable applied_seq : int; (* folded into the current root slot *)
  mutable jsector : int; (* next free journal sector, ring-relative *)
  mutable data_head : int; (* next free absolute data-area lba *)
  mutable st : stats;
  mutable src : Tree.src; (* object source the trie ops run against *)
}

let charge t c = Uksim.Clock.advance t.clock c
let sectors_of t len = (len + t.dev.B.sector_size - 1) / t.dev.B.sector_size
let stats t = t.st
let head t = t.head
let content_hash t = t.root
let tree_depth t = t.src.Tree.depth_seen

(* --- frame codec -----------------------------------------------------------
   One frame per object, identical bytes in the journal payload and the
   data area: a fixed-width header line, then a textual body. Child refs
   carry (hash, lba, len) so a cold mount can navigate the tree from
   disk; the structural hash ignores the locations. Keys and commit
   messages are hex-encoded to survive the line format. *)

let to_hex s =
  let b = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  if String.length s mod 2 <> 0 then raise (Err Ukvfs.Fs.Eio);
  try String.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (i * 2) 2)))
  with _ -> raise (Err Ukvfs.Fs.Eio)

let loc_of t h =
  if h = null then (0, 0)
  else match Hashtbl.find_opt t.locs h with
    | Some l -> l
    | None -> raise (Err Ukvfs.Fs.Eio)

let encode_body t (o : Tree.obj) =
  let b = Buffer.create 128 in
  (match o with
  | Tree.Blob v -> Buffer.add_string b v
  | Tree.Node (Tree.Leaf entries) ->
      Buffer.add_string b (Printf.sprintf "L %d\n" (List.length entries));
      List.iter
        (fun (k, vh) ->
          let lba, len = loc_of t vh in
          Buffer.add_string b (Printf.sprintf "%016x %d %d %s\n" vh lba len (to_hex k)))
        entries
  | Tree.Node (Tree.Branch (n, kids)) ->
      Buffer.add_string b (Printf.sprintf "T %d %d\n" n (List.length kids));
      List.iter
        (fun (nb, ch) ->
          let lba, len = loc_of t ch in
          Buffer.add_string b (Printf.sprintf "%d %016x %d %d\n" nb ch lba len))
        kids
  | Tree.Commit { root; parents; msg } ->
      let rlba, rlen = loc_of t root in
      Buffer.add_string b
        (Printf.sprintf "C %016x %d %d %d %s\n" root rlba rlen (List.length parents)
           (to_hex msg));
      List.iter
        (fun p ->
          let plba, plen = loc_of t p in
          Buffer.add_string b (Printf.sprintf "%016x %d %d\n" p plba plen))
        parents);
  Buffer.contents b

let kind_of = function
  | Tree.Blob _ -> 'b'
  | Tree.Node _ -> 'n'
  | Tree.Commit _ -> 'c'

(* [lba] is the frame's own home in the data area — embedded so journal
   replay re-learns the assignment without a separate allocation map. *)
let encode_frame t h o ~lba =
  let body = encode_body t o in
  Printf.sprintf "o %016x %c %08d %08d\n%s" h (kind_of o) (String.length body) lba body

let frame_len body_len = frame_header + body_len

let int_of_hex s = try int_of_string ("0x" ^ s) with _ -> raise (Err Ukvfs.Fs.Eio)
let int_of_dec s = try int_of_string s with _ -> raise (Err Ukvfs.Fs.Eio)

(* Split [s] into its first line (without '\n') and the offset just past
   it. *)
let take_line s pos =
  match String.index_from_opt s pos '\n' with
  | None -> raise (Err Ukvfs.Fs.Eio)
  | Some nl -> (String.sub s pos (nl - pos), nl + 1)

let note_loc t h lba len = if h <> null && len > 0 then Hashtbl.replace t.locs h (lba, len)

(* Decode one frame starting at [pos]; registers child locations as a
   side effect and returns (hash, obj, own lba, frame bytes, next pos). *)
let decode_frame t s pos =
  if pos + frame_header > String.length s then raise (Err Ukvfs.Fs.Eio);
  let hdr = String.sub s pos frame_header in
  if String.length hdr <> frame_header || hdr.[0] <> 'o' || hdr.[frame_header - 1] <> '\n' then
    raise (Err Ukvfs.Fs.Eio);
  let h = int_of_hex (String.sub hdr 2 16) in
  let kind = hdr.[19] in
  let blen = int_of_dec (String.sub hdr 21 8) in
  let lba = int_of_dec (String.sub hdr 30 8) in
  if pos + frame_header + blen > String.length s then raise (Err Ukvfs.Fs.Eio);
  let body = String.sub s (pos + frame_header) blen in
  let obj =
    match kind with
    | 'b' -> Tree.Blob body
    | 'n' -> (
        let line, p = take_line body 0 in
        match String.split_on_char ' ' line with
        | [ "L"; n ] ->
            let n = int_of_dec n in
            let p = ref p in
            let entries = ref [] in
            for _ = 1 to n do
              let line, p' = take_line body !p in
              p := p';
              match String.split_on_char ' ' line with
              | [ vh; vlba; vlen; hk ] ->
                  let vh = int_of_hex vh in
                  note_loc t vh (int_of_dec vlba) (int_of_dec vlen);
                  entries := (of_hex hk, vh) :: !entries
              | _ -> raise (Err Ukvfs.Fs.Eio)
            done;
            Tree.Node (Tree.Leaf (List.rev !entries))
        | [ "T"; n; nk ] ->
            let n = int_of_dec n and nk = int_of_dec nk in
            let p = ref p in
            let kids = ref [] in
            for _ = 1 to nk do
              let line, p' = take_line body !p in
              p := p';
              match String.split_on_char ' ' line with
              | [ nb; ch; clba; clen ] ->
                  let ch = int_of_hex ch in
                  note_loc t ch (int_of_dec clba) (int_of_dec clen);
                  kids := (int_of_dec nb, ch) :: !kids
              | _ -> raise (Err Ukvfs.Fs.Eio)
            done;
            Tree.Node (Tree.Branch (n, List.rev !kids))
        | _ -> raise (Err Ukvfs.Fs.Eio))
    | 'c' -> (
        let line, p = take_line body 0 in
        match String.split_on_char ' ' line with
        | [ "C"; root; rlba; rlen; np; hmsg ] ->
            let root = int_of_hex root in
            note_loc t root (int_of_dec rlba) (int_of_dec rlen);
            let np = int_of_dec np in
            let p = ref p in
            let parents = ref [] in
            for _ = 1 to np do
              let line, p' = take_line body !p in
              p := p';
              match String.split_on_char ' ' line with
              | [ ph; plba; plen ] ->
                  let ph = int_of_hex ph in
                  note_loc t ph (int_of_dec plba) (int_of_dec plen);
                  parents := ph :: !parents
              | _ -> raise (Err Ukvfs.Fs.Eio)
            done;
            Tree.Commit { root; parents = List.rev !parents; msg = of_hex hmsg }
        | _ -> raise (Err Ukvfs.Fs.Eio))
    | _ -> raise (Err Ukvfs.Fs.Eio)
  in
  (h, obj, lba, frame_header + blen, pos + frame_header + blen)

(* --- object resolution ----------------------------------------------------- *)

let load_obj t h =
  match Hashtbl.find_opt t.cache h with
  | Some o ->
      t.st <- { t.st with cache_hits = t.st.cache_hits + 1 };
      g.g_cache_hits <- g.g_cache_hits + 1;
      charge t node_cost;
      o
  | None -> (
      t.st <- { t.st with cache_misses = t.st.cache_misses + 1 };
      g.g_cache_misses <- g.g_cache_misses + 1;
      match Hashtbl.find_opt t.locs h with
      | None -> raise (Err Ukvfs.Fs.Eio)
      | Some (lba, len) -> (
          match t.dev.B.read_sync ~lba ~sectors:(sectors_of t len) with
          | Error _ -> raise (Err Ukvfs.Fs.Eio)
          | Ok raw ->
              let s = Bytes.sub_string raw 0 len in
              charge t (Uksim.Cost.memcpy len + Uksim.Cost.checksum len);
              let h', obj, _, _, _ = decode_frame t s 0 in
              (* Structural-hash verification: a frame that does not hash
                 to its own address is a torn or misdirected read. *)
              if h' <> h || Tree.hash_of_obj obj <> h then raise (Err Ukvfs.Fs.Eio);
              Hashtbl.replace t.cache h obj;
              Hashtbl.replace t.durable h ();
              obj))

let put_obj t o =
  let h = Tree.hash_of_obj o in
  charge t node_cost;
  if not (Hashtbl.mem t.cache h) then Hashtbl.replace t.cache h o;
  h

let mk_src t = { Tree.get = (fun h -> load_obj t h); put = (fun o -> put_obj t o); depth_seen = 0 }

(* --- root slots ------------------------------------------------------------ *)

let slot_magic = "ukss1"
let jr_magic = "ukjr1"
let jc_magic = "ukjc1"

let slot_line t =
  let hlba, hlen = if t.head = null then (0, 0) else loc_of t t.head in
  let core =
    Printf.sprintf "%s %d %d %016x %d %d %d %d" slot_magic t.epoch t.jcap t.head hlba hlen
      t.applied_seq t.data_head
  in
  Printf.sprintf "%s %016x\n" core (D.fnv_string core)

let write_slot t =
  let ss = t.dev.B.sector_size in
  let line = slot_line t in
  let sec = Bytes.make ss '\000' in
  Bytes.blit_string line 0 sec 0 (String.length line);
  match t.dev.B.write_sync ~lba:(t.epoch mod 2) sec with
  | Ok () -> ()
  | Error _ -> raise (Err Ukvfs.Fs.Eio)

(* Parse a slot sector; None when invalid (unformatted, torn, stale
   magic). *)
let parse_slot raw =
  let s = Bytes.to_string raw in
  match String.index_opt s '\n' with
  | None -> None
  | Some nl -> (
      let line = String.sub s 0 nl in
      match String.rindex_opt line ' ' with
      | None -> None
      | Some sp ->
          let core = String.sub line 0 sp in
          let ck = String.sub line (sp + 1) (String.length line - sp - 1) in
          if (try int_of_string ("0x" ^ ck) <> D.fnv_string core with _ -> true) then None
          else
            (match String.split_on_char ' ' core with
            | [ m; epoch; jcap; head; hlba; hlen; aseq; dh ] when m = slot_magic -> (
                try
                  Some
                    ( int_of_string epoch,
                      int_of_string jcap,
                      int_of_string ("0x" ^ head),
                      int_of_string hlba,
                      int_of_string hlen,
                      int_of_string aseq,
                      int_of_string dh )
                with _ -> None)
            | _ -> None))

let fsync t =
  t.dev.B.flush ();
  charge t Uksim.Cost.vm_exit;
  t.st <- { t.st with fsync_barriers = t.st.fsync_barriers + 1 };
  g.g_fsync_barriers <- g.g_fsync_barriers + 1

(* --- construction ---------------------------------------------------------- *)

let default_journal_sectors = 256

let mk ~clock dev ~jcap =
  let t =
    { clock; dev; jstart = 2; jcap; cache = Hashtbl.create 256; locs = Hashtbl.create 256;
      durable = Hashtbl.create 256; unckpt = []; head = null; root = null; epoch = 0;
      next_seq = 1; applied_seq = 0; jsector = 0; data_head = 2 + jcap; st = zero_stats;
      src = { Tree.get = (fun _ -> assert false); put = (fun _ -> assert false); depth_seen = 0 } }
  in
  t.src <- mk_src t;
  Lazy.force source;
  t

let guard f = try Ok (f ()) with Err e -> Error e

let format ~clock ?(journal_sectors = default_journal_sectors) dev =
  guard (fun () ->
      if journal_sectors < 3 || 2 + journal_sectors >= dev.B.capacity_sectors then
        raise (Err Ukvfs.Fs.Einval);
      let t = mk ~clock dev ~jcap:journal_sectors in
      write_slot t;
      fsync t;
      t)

(* --- commit ---------------------------------------------------------------- *)

let commit_of t h =
  match load_obj t h with
  | Tree.Commit c -> c
  | Tree.Blob _ | Tree.Node _ -> raise (Err Ukvfs.Fs.Einval)

let dirty t =
  if t.head = null then t.root <> null
  else (commit_of t t.head).Tree.root <> t.root

(* Post-order walk of the not-yet-durable objects reachable from [root]:
   children precede parents, so location assignment can run in list
   order. *)
let collect_new t root =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec walk h =
    if h <> null && (not (Hashtbl.mem seen h)) && not (Hashtbl.mem t.durable h) then begin
      Hashtbl.replace seen h ();
      (match load_obj t h with
      | Tree.Blob _ -> ()
      | Tree.Node (Tree.Leaf entries) -> List.iter (fun (_, vh) -> walk vh) entries
      | Tree.Node (Tree.Branch (_, kids)) -> List.iter (fun (_, ch) -> walk ch) kids
      | Tree.Commit { root; parents; _ } ->
          walk root;
          List.iter walk parents);
      acc := h :: !acc
    end
  in
  walk root;
  List.rev !acc

let commit_with t ~parents ~msg =
  let ss = t.dev.B.sector_size in
  let cobj = Tree.Commit { root = t.root; parents; msg } in
  let ch = put_obj t cobj in
  let objs = collect_new t ch in
  (* Assign data-area homes (sector-aligned frames), then encode — the
     post-order guarantees every child ref resolves. Rolled back if the
     journal write fails. *)
  let assigned = ref [] in
  let dh = ref t.data_head in
  let frames =
    try
      List.map
        (fun h ->
          let o = Hashtbl.find t.cache h in
          let body = encode_body t o in
          let flen = frame_len (String.length body) in
          let lba = !dh in
          dh := !dh + sectors_of t flen;
          Hashtbl.replace t.locs h (lba, flen);
          assigned := h :: !assigned;
          (h, encode_frame t h o ~lba))
        objs
    with e ->
      List.iter (fun h -> Hashtbl.remove t.locs h) !assigned;
      raise e
  in
  let rollback () =
    List.iter (fun h -> Hashtbl.remove t.locs h) !assigned
  in
  if !dh > t.dev.B.capacity_sectors then begin
    rollback ();
    raise (Err Ukvfs.Fs.Enospc)
  end;
  let payload = String.concat "" (List.map snd frames) in
  let plen = String.length payload in
  let psec = max 1 (sectors_of t plen) in
  let rsec = 2 + psec in
  if t.jsector + rsec > t.jcap then begin
    (* Ring full: fall through to the caller-visible checkpoint path. *)
    rollback ();
    raise (Err Ukvfs.Fs.Enospc)
  end;
  let seq = t.next_seq in
  let hcore = Printf.sprintf "%s %d %d %016x" jr_magic seq psec ch in
  let hline = Printf.sprintf "%s %016x\n" hcore (D.fnv_string hcore) in
  let pck = D.string_hash payload in
  let tcore = Printf.sprintf "%s %d %d %016x" jc_magic seq plen pck in
  let tline = Printf.sprintf "%s %016x\n" tcore (D.fnv_string tcore) in
  let rec_bytes = Bytes.make (rsec * ss) '\000' in
  Bytes.blit_string hline 0 rec_bytes 0 (String.length hline);
  Bytes.blit_string payload 0 rec_bytes ss plen;
  Bytes.blit_string tline 0 rec_bytes ((1 + psec) * ss) (String.length tline);
  charge t (Uksim.Cost.memcpy (rsec * ss) + Uksim.Cost.checksum plen);
  (match t.dev.B.write_sync ~lba:(t.jstart + t.jsector) rec_bytes with
  | Ok () -> ()
  | Error _ ->
      rollback ();
      raise (Err Ukvfs.Fs.Eio));
  fsync t;
  (* The record is on the medium: the commit is durable. *)
  t.jsector <- t.jsector + rsec;
  t.next_seq <- seq + 1;
  t.data_head <- !dh;
  List.iter
    (fun h ->
      Hashtbl.replace t.durable h ();
      t.unckpt <- t.unckpt @ [ h ])
    objs;
  t.head <- ch;
  t.st <-
    { t.st with commits = t.st.commits + 1; journal_records = t.st.journal_records + 1;
      journal_bytes = t.st.journal_bytes + (rsec * ss) };
  g.g_commits <- g.g_commits + 1;
  g.g_journal_records <- g.g_journal_records + 1;
  g.g_journal_bytes <- g.g_journal_bytes + (rsec * ss);
  g.g_tree_depth <- float_of_int t.src.Tree.depth_seen;
  ch

(* --- checkpoint ------------------------------------------------------------ *)

let checkpoint_exn t =
  if t.unckpt = [] && t.jsector = 0 then ()
  else begin
    (* Copy journaled frames to their pre-assigned data-area homes. *)
    let ss = t.dev.B.sector_size in
    List.iter
      (fun h ->
        let o = Hashtbl.find t.cache h in
        let lba, flen = loc_of t h in
        let frame = encode_frame t h o ~lba in
        let buf = Bytes.make (sectors_of t flen * ss) '\000' in
        Bytes.blit_string frame 0 buf 0 (String.length frame);
        charge t (Uksim.Cost.memcpy flen);
        match t.dev.B.write_sync ~lba buf with
        | Ok () -> ()
        | Error _ -> raise (Err Ukvfs.Fs.Eio))
      t.unckpt;
    fsync t;
    (* Atomic publish: one sector, alternate slot, then barrier. *)
    t.epoch <- t.epoch + 1;
    t.applied_seq <- t.next_seq - 1;
    (try write_slot t
     with e ->
       t.epoch <- t.epoch - 1;
       raise e);
    fsync t;
    t.unckpt <- [];
    t.jsector <- 0;
    t.st <- { t.st with checkpoints = t.st.checkpoints + 1 };
    g.g_checkpoints <- g.g_checkpoints + 1
  end

let checkpoint t = guard (fun () -> checkpoint_exn t)

(* --- recovery -------------------------------------------------------------- *)

let read_sectors t ~lba ~sectors =
  match t.dev.B.read_sync ~lba ~sectors with
  | Ok raw -> raw
  | Error _ -> raise (Err Ukvfs.Fs.Eio)

(* Parse a journal header sector: (seq, payload sectors, commit hash). *)
let parse_jheader raw =
  let s = Bytes.to_string raw in
  match String.index_opt s '\n' with
  | None -> None
  | Some nl -> (
      let line = String.sub s 0 nl in
      match String.split_on_char ' ' line with
      | [ m; seq; psec; ch; ck ] when m = jr_magic -> (
          try
            let core = Printf.sprintf "%s %s %s %s" m seq psec ch in
            if int_of_string ("0x" ^ ck) <> D.fnv_string core then None
            else Some (int_of_string seq, int_of_string psec, int_of_string ("0x" ^ ch))
          with _ -> None)
      | _ -> None)

let parse_jtrailer raw =
  let s = Bytes.to_string raw in
  match String.index_opt s '\n' with
  | None -> None
  | Some nl -> (
      let line = String.sub s 0 nl in
      match String.split_on_char ' ' line with
      | [ m; seq; plen; pck; ck ] when m = jc_magic -> (
          try
            let core = Printf.sprintf "%s %s %s %s" m seq plen pck in
            if int_of_string ("0x" ^ ck) <> D.fnv_string core then None
            else Some (int_of_string seq, int_of_string plen, int_of_string ("0x" ^ pck))
          with _ -> None)
      | _ -> None)

(* Replay one record at ring offset [off]; returns the ring offset past
   it, or None when the chain breaks (torn, stale, out-of-sequence). *)
let replay_record t ~off ~expect_seq =
  if off + 3 > t.jcap then None
  else
    match parse_jheader (read_sectors t ~lba:(t.jstart + off) ~sectors:1) with
    | None -> None
    | Some (seq, psec, chash) ->
        if seq <> expect_seq || psec < 1 || off + 2 + psec > t.jcap then None
        else
          let payload_raw = read_sectors t ~lba:(t.jstart + off + 1) ~sectors:psec in
          (match parse_jtrailer (read_sectors t ~lba:(t.jstart + off + 1 + psec) ~sectors:1) with
          | None -> None
          | Some (tseq, plen, pck) ->
              if tseq <> seq || plen < 0 || plen > psec * t.dev.B.sector_size then None
              else
                let payload = Bytes.sub_string payload_raw 0 plen in
                charge t (Uksim.Cost.checksum plen);
                if D.string_hash payload <> pck then None
                else begin
                  (* Checksums hold: decode and apply every frame. *)
                  try
                    let pos = ref 0 in
                    let applied = ref [] in
                    while !pos < plen do
                      let h, obj, lba, flen, pos' = decode_frame t payload !pos in
                      if Tree.hash_of_obj obj <> h then raise (Err Ukvfs.Fs.Eio);
                      applied := (h, obj, lba, flen) :: !applied;
                      pos := pos'
                    done;
                    List.iter
                      (fun (h, obj, lba, flen) ->
                        Hashtbl.replace t.cache h obj;
                        Hashtbl.replace t.locs h (lba, flen);
                        Hashtbl.replace t.durable h ();
                        t.unckpt <- t.unckpt @ [ h ];
                        if lba + sectors_of t flen > t.data_head then
                          t.data_head <- lba + sectors_of t flen)
                      (List.rev !applied);
                    t.head <- chash;
                    t.st <- { t.st with replayed_records = t.st.replayed_records + 1 };
                    g.g_replayed_records <- g.g_replayed_records + 1;
                    Some (off + 2 + psec)
                  with Err _ -> None
                end)

let open_ ~clock dev =
  guard (fun () ->
      let best = ref None in
      for lba = 0 to 1 do
        match dev.B.read_sync ~lba ~sectors:1 with
        | Error _ -> ()
        | Ok raw -> (
            match parse_slot raw with
            | Some ((epoch, _, _, _, _, _, _) as s) -> (
                match !best with
                | Some (e', _, _, _, _, _, _) when e' >= epoch -> ()
                | _ -> best := Some s)
            | None -> ())
      done;
      match !best with
      | None -> raise (Err Ukvfs.Fs.Einval)
      | Some (epoch, jcap, hd, hlba, hlen, aseq, dh) ->
          let t = mk ~clock dev ~jcap in
          t.epoch <- epoch;
          t.applied_seq <- aseq;
          t.next_seq <- aseq + 1;
          t.data_head <- dh;
          if hd <> null then note_loc t hd hlba hlen;
          t.head <- hd;
          (* Chain-replay the journal ring from the top. *)
          let off = ref 0 in
          let continue = ref true in
          while !continue do
            match replay_record t ~off:!off ~expect_seq:t.next_seq with
            | Some off' ->
                t.next_seq <- t.next_seq + 1;
                off := off'
            | None -> continue := false
          done;
          t.jsector <- !off;
          t.root <- (if t.head = null then null else (commit_of t t.head).Tree.root);
          g.g_replays <- g.g_replays + 1;
          t)

(* --- KV operations --------------------------------------------------------- *)

let set t k v =
  guard (fun () ->
      charge t (Uksim.Cost.checksum (String.length v));
      let vh = put_obj t (Tree.Blob v) in
      t.root <- Tree.set t.src t.root k vh)

let get t k =
  guard (fun () ->
      match Tree.find t.src t.root k with
      | None -> None
      | Some vh -> (
          match load_obj t vh with
          | Tree.Blob v -> Some v
          | Tree.Node _ | Tree.Commit _ -> raise (Err Ukvfs.Fs.Eio)))

let mem t k = match get t k with Ok (Some _) -> true | _ -> false

let del t k =
  guard (fun () ->
      let r' = Tree.remove t.src t.root k in
      let changed = r' <> t.root in
      t.root <- r';
      changed)

let to_list t =
  guard (fun () ->
      List.map
        (fun (k, vh) ->
          match load_obj t vh with
          | Tree.Blob v -> (k, v)
          | Tree.Node _ | Tree.Commit _ -> raise (Err Ukvfs.Fs.Eio))
        (Tree.to_list t.src t.root))

let commit t ?(msg = "") () =
  guard (fun () ->
      if t.head <> null && not (dirty t) then t.head
      else
        try commit_with t ~parents:(if t.head = null then [] else [ t.head ]) ~msg
        with Err Ukvfs.Fs.Enospc ->
          (* Journal ring or data area full: checkpoint frees the ring
             and retry once. *)
          checkpoint_exn t;
          commit_with t ~parents:(if t.head = null then [] else [ t.head ]) ~msg)

let checkout t h =
  guard (fun () ->
      if h = null then begin
        t.head <- null;
        t.root <- null
      end
      else begin
        let c = commit_of t h in
        t.head <- h;
        t.root <- c.Tree.root
      end)

let commit_info t h = guard (fun () -> commit_of t h)
let is_dirty t = guard (fun () -> dirty t)

(* Drop every clean cached object that can be re-read from the medium —
   the cold-cache lever for recovery and hit-rate experiments. *)
let drop_caches t =
  let keep = Hashtbl.create 16 in
  List.iter (fun h -> Hashtbl.replace keep h ()) t.unckpt;
  Hashtbl.iter
    (fun h _ ->
      if Hashtbl.mem t.durable h && Hashtbl.mem t.locs h && not (Hashtbl.mem keep h) then
        Hashtbl.remove t.cache h)
    (Hashtbl.copy t.cache)

(* --- merge ------------------------------------------------------------------ *)

let ancestors t h =
  let seen = Hashtbl.create 32 in
  let q = Queue.create () in
  if h <> null then Queue.push h q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.replace seen x ();
      List.iter (fun p -> if p <> null then Queue.push p q) (commit_of t x).Tree.parents
    end
  done;
  seen

let is_ancestor t ~anc ~desc = anc <> null && Hashtbl.mem (ancestors t desc) anc

(* Lowest common ancestor: BFS from [b], first commit that is also an
   ancestor of [a]. Deterministic (queue order follows parent lists). *)
let lca t a b =
  if a = null || b = null then None
  else begin
    let of_a = ancestors t a in
    let seen = Hashtbl.create 32 in
    let q = Queue.create () in
    Queue.push b q;
    let found = ref None in
    while !found = None && not (Queue.is_empty q) do
      let x = Queue.pop q in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.replace seen x ();
        if Hashtbl.mem of_a x then found := Some x
        else List.iter (fun p -> if p <> null then Queue.push p q) (commit_of t x).Tree.parents
      end
    done;
    !found
  end

let map_of t root =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, vh) -> Hashtbl.replace tbl k vh) (Tree.to_list t.src root);
  tbl

(* Three-way merge of [other] into the current head. Deterministic and
   symmetric: conflicting updates resolve to the greater blob hash,
   modify beats delete, and the merge commit's hash is independent of
   which side initiated (parent hashes XOR-fold). Returns the merge
   commit and the number of conflicts resolved by policy. *)
let merge t other ?(msg = "merge") () =
  guard (fun () ->
      if dirty t then raise (Err Ukvfs.Fs.Einval);
      let ours = t.head in
      if other = ours || is_ancestor t ~anc:other ~desc:ours then (ours, 0)
      else if ours = null || is_ancestor t ~anc:ours ~desc:other then begin
        let c = commit_of t other in
        t.head <- other;
        t.root <- c.Tree.root;
        (other, 0)
      end
      else begin
        let base = lca t ours other in
        let bmap =
          match base with
          | None -> Hashtbl.create 1
          | Some b -> map_of t (commit_of t b).Tree.root
        in
        let omap = map_of t (commit_of t ours).Tree.root in
        let tmap = map_of t (commit_of t other).Tree.root in
        let keys = Hashtbl.create 64 in
        Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) bmap;
        Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) omap;
        Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tmap;
        let sorted = List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) keys []) in
        let conflicts = ref 0 in
        List.iter
          (fun k ->
            let b = Hashtbl.find_opt bmap k in
            let o = Hashtbl.find_opt omap k in
            let th = Hashtbl.find_opt tmap k in
            let r =
              if o = th then o
              else if th = b then o (* theirs untouched: keep ours *)
              else if o = b then th (* ours untouched: take theirs *)
              else begin
                incr conflicts;
                match (o, th) with
                | Some a, Some c -> Some (max a c) (* greater hash wins *)
                | Some a, None -> Some a (* modify beats delete *)
                | None, Some c -> Some c
                | None, None -> None
              end
            in
            if r <> o then
              match r with
              | Some vh -> t.root <- Tree.set t.src t.root k vh
              | None -> t.root <- Tree.remove t.src t.root k)
          sorted;
        let ch = commit_with t ~parents:[ ours; other ] ~msg in
        t.st <- { t.st with merges = t.st.merges + 1; conflicts = t.st.conflicts + !conflicts };
        g.g_merges <- g.g_merges + 1;
        g.g_conflicts <- g.g_conflicts + !conflicts;
        (ch, !conflicts)
      end)
