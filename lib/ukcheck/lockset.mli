(** Eraser-style lockset race detection with happens-before vector
    clocks, over the {!Uksmp.Smp} substrate.

    {!attach} installs the instrumentation seams the substrate already
    exposes — {!Uklock.Lock.Hook} for mutex/spinlock acquire/release,
    {!Uksched.Sched.set_group_observer} for thread spawn/wake/exit edges,
    {!Uksmp.Smp.set_wake_observer} for cross-core IPIs — and tracks every
    access made through a {!Shared} cell. An access pair on the same cell
    is reported as a race when it involves two different threads, at
    least one write, no common lock held at both sites, and no
    happens-before order between them (vector clocks joined along
    lock release→acquire, spawn, wake and thread-exit edges — so
    fork/join and wake-based handoff protocols do not false-positive).

    The first violation per cell is reported with both access sites,
    core ids and virtual timestamps; violations also land in
    {!Uktrace.Tracer.default} as ["ukcheck"] instants when tracing is
    enabled, and aggregate counters register in the {!Uktrace.Registry}
    under ["ukcheck.metrics"]. Exactly one detector can be attached at a
    time. The detector never advances a clock and never draws randomness:
    attaching it cannot change a run. *)

type t

type access = {
  a_tid : int;  (** thread id; 0 = driver code outside any thread *)
  a_core : int;  (** core id; -1 = outside any core *)
  a_cycles : int;  (** virtual timestamp of the access *)
  a_site : string;  (** caller-supplied site label *)
  a_write : bool;
  a_locks : string list;  (** names of locks held at the access *)
}

type report = { r_cell : string; r_first : access; r_second : access }

val attach : Uksmp.Smp.t -> t
(** Install all hooks and make this the current detector. Raises
    [Invalid_argument] if one is already attached. *)

val detach : t -> unit
(** Remove the hooks; the detector's reports stay readable. Idempotent. *)

val reports : t -> report list
(** Violations, in discovery order (at most one per cell). *)

val accesses : t -> int
(** Shared-cell accesses observed. *)

val lock_events : t -> int
val ipis : t -> int

val pp_report : Format.formatter -> report -> unit

(** {1 Cell plumbing (used by {!Shared}, not by test code)} *)

type cell_handle

val register_cell : name:string -> cell_handle
(** Bind a cell to the currently attached detector; inert if none. *)

val record : cell_handle -> write:bool -> site:string -> unit
(** Record one access in the bound detector's state machine. No-op for
    inert handles or after {!detach}. *)
