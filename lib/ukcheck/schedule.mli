(** Schedule certificates: the replayable identity of one explored run.

    A certificate is [(seed, cores, decisions)] — everything {!Explore}
    needs to reproduce a schedule byte-identically on the {!Uksmp.Smp}
    substrate: the substrate seed and core count fix the workload, and
    the decision list pins every choice point (steal victims, step-order
    tie-breaks, per-core dispatch picks) the coordinator hit. Decisions
    beyond the list take the default branch (choice 0), so a certificate
    only has to name the interesting prefix. *)

type decision = Uksmp.Smp.decision = { kind : string; arity : int; choice : int }

type cert = { seed : int; cores : int; decisions : decision list }

val strip_defaults : decision list -> decision list
(** Drop trailing default (choice-0) decisions — they are implied. *)

val to_string : cert -> string
(** Compact one-line form, e.g.
    ["seed=1;cores=2;dispatch@0:2/1;steal_victim:3/2"] — each decision as
    [kind:arity/choice]. *)

val of_string : string -> cert option
(** Parse {!to_string}'s format; [None] on malformed input. *)
