(** Systematic schedule exploration over the {!Uksmp.Smp} substrate.

    A {e fixture} builds a closed SMP workload on a fresh substrate and
    returns the invariant to check after the run. The explorer runs the
    fixture under a controlled scheduler many times, varying the choice
    points the substrate exposes (steal-victim selection, step-order
    tie-breaks, per-core dispatch order — see {!Uksmp.Smp.set_decider})
    and, via the [seeds] list, the substrate/fault-injection seeds:

    - {b bounded exhaustive enumeration} walks the decision tree
      depth-first while it fits in the schedule budget — small state
      spaces are checked completely;
    - {b seeded random walk with iterative depth bounding} takes over
      when the tree outgrows the budget: walks draw random choices down
      to a depth bound that cycles through 4, 8, 16, 32, ∞, probing both
      shallow and deep interleavings.

    A violation (invariant [Error], deadlock, or any exception) triggers
    a {e shrinking loop} that re-runs the schedule with individual
    decisions reverted to the default and the tail truncated, emitting
    the minimal failing schedule as a {!Schedule.cert} the substrate
    replays byte-identically (same [trace_hash]). *)

type fixture = Uksmp.Smp.t -> seed:int -> (unit -> (unit, string) result)
(** [fixture smp ~seed] spawns the workload on [smp] (already created
    with [~seed]) and returns the post-run invariant check. The check
    runs after {!Uksmp.Smp.run} completes; raising is treated like
    returning [Error]. *)

type config = {
  cores : int;  (** cores per substrate (default 2) *)
  budget : int;  (** max schedules explored across all seeds (default 64) *)
  seeds : int list;  (** substrate seeds to cross with schedules (default [[1]]) *)
  max_decisions : int;  (** per-run decision cap — deeper points take the default (default 256) *)
  walk_seed : int;  (** seed for the random-walk phase (default 0xC0FFEE) *)
}

val config :
  ?cores:int -> ?budget:int -> ?seeds:int list -> ?max_decisions:int -> ?walk_seed:int ->
  unit -> config

type stats = {
  schedules : int;  (** schedules actually run *)
  exhaustive : bool;  (** the whole decision tree was enumerated *)
}

type failure = {
  cert : Schedule.cert;  (** minimal failing schedule, replayable *)
  message : string;  (** the violation, from the shrunk schedule's replay *)
  trace_hash : int;  (** substrate trace hash of the shrunk schedule *)
  found_after : int;  (** schedules run when the first violation appeared *)
  shrink_runs : int;  (** extra runs spent shrinking *)
}

type replay_out = {
  outcome : (unit, string) result;
  hash : int;  (** {!Uksmp.Smp.trace_hash} of the replayed run *)
  log : Schedule.decision list;  (** decisions actually taken *)
}

type result = Passed of stats | Failed of failure

val run : config -> fixture -> result

val replay : fixture -> Schedule.cert -> replay_out
(** Re-run one certified schedule (cores and seed come from the
    certificate). Two replays of the same certificate are
    byte-identical: same outcome, same decision log, same hash. *)
