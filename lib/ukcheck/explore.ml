(* Controlled-scheduler driver: run a fixture repeatedly, steering every
   substrate choice point, to enumerate interleavings instead of sampling
   the default one. Stateless exploration — each schedule is a fresh
   substrate run identified purely by its forced decision prefix, so a
   failing run is trivially replayable. *)

module Smp = Uksmp.Smp

type fixture = Smp.t -> seed:int -> (unit -> (unit, string) result)

type config = {
  cores : int;
  budget : int;
  seeds : int list;
  max_decisions : int;
  walk_seed : int;
}

let config ?(cores = 2) ?(budget = 64) ?(seeds = [ 1 ]) ?(max_decisions = 256)
    ?(walk_seed = 0xC0FFEE) () =
  if cores <= 0 then invalid_arg "Explore.config: cores must be positive";
  if budget <= 0 then invalid_arg "Explore.config: budget must be positive";
  if max_decisions <= 0 then invalid_arg "Explore.config: max_decisions must be positive";
  { cores; budget; seeds = (if seeds = [] then [ 1 ] else seeds); max_decisions; walk_seed }

type stats = { schedules : int; exhaustive : bool }

type failure = {
  cert : Schedule.cert;
  message : string;
  trace_hash : int;
  found_after : int;
  shrink_runs : int;
}

type replay_out = {
  outcome : (unit, string) result;
  hash : int;
  log : Schedule.decision list;
}

type result = Passed of stats | Failed of failure

(* Policy for decisions beyond the forced prefix: the default branch, or
   random choices down to a depth bound (iterative depth bounding). *)
type tail = Defaults | Walk of Uksim.Rng.t * int

(* Run one schedule: forced decisions by position, [tail] policy beyond.
   Deadlocks and exceptions from the workload or the invariant check are
   violations like any other — that is half the point of the tool. *)
let run_one ~cores ~seed ~forced ~tail ~max_decisions (fixture : fixture) : replay_out =
  let smp = Smp.create ~seed ~cores () in
  let forced = Array.of_list forced in
  let idx = ref 0 in
  Smp.set_decider smp
    (Some
       (fun ~kind ~arity ->
         let i = !idx in
         incr idx;
         if i < Array.length forced then begin
           let d = forced.(i) in
           (* A divergent replay (kind mismatch or stale arity) falls back
              to the default rather than crashing: the caller compares
              outcomes/hashes, so divergence is visible, not fatal. *)
           if d.Schedule.kind = kind && d.choice < arity then d.choice else 0
         end
         else if i >= max_decisions then 0
         else
           match tail with
           | Defaults -> 0
           | Walk (rng, depth) -> if i < depth then Uksim.Rng.int rng arity else 0));
  for core = 0 to cores - 1 do
    let sched = Smp.sched_of smp ~core in
    Uksched.Sched.set_dispatch_chooser sched
      (Some (fun n -> Smp.decide smp ~kind:(Printf.sprintf "dispatch@%d" core) ~arity:n))
  done;
  let check = fixture smp ~seed in
  let outcome =
    match Smp.run smp with
    | () -> (
        try check () with e -> Error ("exception: " ^ Printexc.to_string e))
    | exception Uksched.Sched.Deadlock names ->
        Error ("deadlock: " ^ String.concat ", " names)
    | exception e -> Error ("exception: " ^ Printexc.to_string e)
  in
  { outcome; hash = Smp.trace_hash smp; log = Smp.decisions smp }

let replay fixture (cert : Schedule.cert) =
  run_one ~cores:cert.cores ~seed:cert.seed ~forced:cert.decisions ~tail:Defaults
    ~max_decisions:(max 256 (List.length cert.decisions)) fixture

(* Shrink a failing decision list: (1) revert each non-default decision to
   the default, last to first, keeping reversions that still fail; (2)
   strip the trailing defaults (implied). Repeat to a fixpoint. Returns
   the minimal list plus the number of extra runs spent. *)
let shrink ~cores ~seed ~max_decisions fixture decisions =
  let runs = ref 0 in
  let fails ds =
    incr runs;
    match (run_one ~cores ~seed ~forced:ds ~tail:Defaults ~max_decisions fixture).outcome with
    | Error _ -> true
    | Ok () -> false
  in
  let cur = ref (Schedule.strip_defaults decisions) in
  let made_progress = ref true in
  while !made_progress && !runs < 200 do
    made_progress := false;
    let arr = Array.of_list !cur in
    for i = Array.length arr - 1 downto 0 do
      if arr.(i).Schedule.choice > 0 && !runs < 200 then begin
        let saved = arr.(i) in
        arr.(i) <- { saved with Schedule.choice = 0 };
        if fails (Schedule.strip_defaults (Array.to_list arr)) then made_progress := true
        else arr.(i) <- saved
      end
    done;
    cur := Schedule.strip_defaults (Array.to_list arr)
  done;
  (!cur, !runs)

let run cfg fixture =
  let total_runs = ref 0 in
  let failed = ref None in
  let exhaustive = ref true in
  let n_seeds = List.length cfg.seeds in
  let per_seed = max 1 (cfg.budget / n_seeds) in
  let explore_seed seed =
    let seed_runs = ref 0 in
    let budget_left () = !seed_runs < per_seed && !total_runs < cfg.budget in
    let record out =
      incr seed_runs;
      incr total_runs;
      match out.outcome with
      | Error msg -> failed := Some (seed, out.log, msg, !total_runs)
      | Ok () -> ()
    in
    (* Phase 1: depth-first enumeration of the decision tree. Every pushed
       prefix ends in a non-default choice, so no prefix is visited twice. *)
    let stack = Stack.create () in
    Stack.push [] stack;
    while (not (Stack.is_empty stack)) && !failed = None && budget_left () do
      let prefix = Stack.pop stack in
      let out =
        run_one ~cores:cfg.cores ~seed ~forced:prefix ~tail:Defaults
          ~max_decisions:cfg.max_decisions fixture
      in
      record out;
      if out.outcome = Ok () then begin
        let log = Array.of_list out.log in
        let plen = List.length prefix in
        for i = Array.length log - 1 downto plen do
          let d = log.(i) in
          for alt = d.Schedule.arity - 1 downto 1 do
            Stack.push (Array.to_list (Array.sub log 0 i) @ [ { d with Schedule.choice = alt } ])
              stack
          done
        done
      end
    done;
    (* Phase 2: the tree outgrew the budget — spend what is left on seeded
       random walks, cycling the randomization depth bound. *)
    if (not (Stack.is_empty stack)) && !failed = None then begin
      exhaustive := false;
      let rng = Uksim.Rng.create (cfg.walk_seed lxor (seed * 0x9e3779b9)) in
      let depths = [| 4; 8; 16; 32; max_int |] in
      let walk = ref 0 in
      while !failed = None && budget_left () do
        let depth = depths.(!walk mod Array.length depths) in
        incr walk;
        record
          (run_one ~cores:cfg.cores ~seed ~forced:[] ~tail:(Walk (rng, depth))
             ~max_decisions:cfg.max_decisions fixture)
      done
    end
  in
  let rec loop = function
    | [] -> ()
    | seed :: rest ->
        if !failed = None && !total_runs < cfg.budget then begin
          explore_seed seed;
          loop rest
        end
  in
  loop cfg.seeds;
  match !failed with
  | None -> Passed { schedules = !total_runs; exhaustive = !exhaustive }
  | Some (seed, log, _msg, found_after) ->
      let minimal, shrink_runs =
        shrink ~cores:cfg.cores ~seed ~max_decisions:cfg.max_decisions fixture log
      in
      let cert = { Schedule.seed; cores = cfg.cores; decisions = minimal } in
      (* The authoritative message and hash come from replaying the
         minimal certificate itself. *)
      let final = replay fixture cert in
      let message = match final.outcome with Error m -> m | Ok () -> "unreproducible" in
      Failed { cert; message; trace_hash = final.hash; found_after; shrink_runs }
