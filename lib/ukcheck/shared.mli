(** Declared-shared state: the cell wrapper the {!Lockset} detector
    watches.

    Wrap any cross-thread mutable value in a cell and route reads and
    writes through it; when a detector is attached (see
    {!Lockset.attach}) every access feeds the lockset/happens-before
    state machine, and when none is attached the cell is a plain ref with
    no overhead beyond one option check. Create cells {e after}
    {!Lockset.attach} (fixture-setup time) for them to be tracked. *)

type 'a t

val cell : ?name:string -> 'a -> 'a t
(** [cell v] declares shared state with initial value [v]. [name]
    (default ["cell"]) labels race reports. *)

val read : ?site:string -> 'a t -> 'a
(** Read the value, recording the access ([site] defaults to the cell
    name). *)

val write : ?site:string -> 'a t -> 'a -> unit

val update : ?site:string -> 'a t -> ('a -> 'a) -> unit
(** Read-modify-write: records a read then a write — exactly the pattern
    an unlocked increment races on. *)

val peek : 'a t -> 'a
(** Unchecked read, for assertions outside the monitored workload. *)

val name : 'a t -> string
