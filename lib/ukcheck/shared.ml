type 'a t = { sname : string; mutable v : 'a; handle : Lockset.cell_handle }

let cell ?(name = "cell") v = { sname = name; v; handle = Lockset.register_cell ~name }

let read ?site c =
  Lockset.record c.handle ~write:false ~site:(Option.value site ~default:c.sname);
  c.v

let write ?site c v =
  Lockset.record c.handle ~write:true ~site:(Option.value site ~default:c.sname);
  c.v <- v

let update ?site c f =
  let v = read ?site c in
  write ?site c (f v)

let peek c = c.v
let name c = c.sname
