(** Property harness: assert an invariant across N explored schedules in
    a few lines.

    {[
      Ukcheck.Prop.check ~cores:2 ~schedules:64 ~name:"counter is atomic"
        (fun smp ~seed:_ ->
          let n = ref 0 in
          for _ = 1 to 2 do
            ignore (Uksmp.Smp.spawn_on smp ~core:0 (fun () -> incr n))
          done;
          fun () -> Ukcheck.Prop.require (!n = 2) "lost an increment")
    ]}

    [check] raises [Failure] with the violation message and the shrunk
    replay certificate; alcotest and qcheck both render that directly. *)

val require : bool -> string -> (unit, string) result
(** [require cond msg] is [Ok ()] when [cond] holds, else [Error msg]. *)

val all : (unit, string) result list -> (unit, string) result
(** First [Error], else [Ok ()]. *)

val run :
  ?cores:int ->
  ?schedules:int ->
  ?seeds:int list ->
  ?max_decisions:int ->
  Explore.fixture ->
  Explore.result
(** Explore and return the raw result ([schedules] is the budget,
    default 64). *)

val check :
  ?cores:int ->
  ?schedules:int ->
  ?seeds:int list ->
  ?max_decisions:int ->
  name:string ->
  Explore.fixture ->
  unit
(** Like {!run} but raises [Failure] on violation, formatting the
    message, the schedule counts and the replay certificate. *)
