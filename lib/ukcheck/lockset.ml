(* Hybrid lockset (Eraser) + happens-before (vector clock) race detector.
   Pure observation: every callback only reads substrate state and
   mutates detector-private tables, so attaching it cannot perturb a run.

   Vector clocks are sparse (tid -> count). Happens-before edges:
   - lock release -> next acquire of the same lock (mutex and spinlock);
   - spawn: parent context -> child thread;
   - wake: waking context -> woken thread (covers IPIs: a cross-core wake
     fires the same group observer after routing);
   - exit: thread -> driver context (tid 0), so post-run invariant checks
     read finished threads' writes without a false positive.
   Lockset rule on top: two accesses to one cell race if they come from
   different threads, at least one writes, they share no lock, and
   neither happens-before the other. *)

module Smp = Uksmp.Smp
module Sched = Uksched.Sched
module Hook = Uklock.Lock.Hook

type vc = (int, int) Hashtbl.t

type access = {
  a_tid : int;
  a_core : int;
  a_cycles : int;
  a_site : string;
  a_write : bool;
  a_locks : string list;
}

(* Internal access record: the public view plus HB bookkeeping. *)
type iaccess = {
  acc : access;
  i_locks : int list;  (* lock uids held *)
  i_vc : vc;  (* snapshot of the accessor's clock *)
  i_epoch : int;  (* accessor's own component at the access *)
}

type report = { r_cell : string; r_first : access; r_second : access }

type cell_state = {
  cs_name : string;
  mutable cs_last_write : iaccess option;
  mutable cs_reads : iaccess list;
  mutable cs_reported : bool;
}

type t = {
  smp : Smp.t;
  vcs : (int, vc) Hashtbl.t;  (* tid -> vector clock *)
  held : (int, (int * string) list) Hashtbl.t;  (* tid -> locks held *)
  release_vc : (int, vc) Hashtbl.t;  (* lock uid -> clock at last release *)
  mutable reports : report list;  (* newest first *)
  mutable n_accesses : int;
  mutable n_lock_events : int;
  mutable n_ipis : int;
  mutable detached : bool;
}

type cell_handle = (t * cell_state) option

let current : t option ref = ref None

(* Aggregate counters, registered once under "ukcheck.metrics" (sticky). *)
let m_accesses = lazy (Uktrace.Registry.counter ~subsystem:"ukcheck" "shared_accesses")
let m_lock_events = lazy (Uktrace.Registry.counter ~subsystem:"ukcheck" "lock_events")
let m_races = lazy (Uktrace.Registry.counter ~subsystem:"ukcheck" "races")

(* --- vector clocks ------------------------------------------------------- *)

let vc_of d tid =
  match Hashtbl.find_opt d.vcs tid with
  | Some v -> v
  | None ->
      let v = Hashtbl.create 8 in
      Hashtbl.replace d.vcs tid v;
      v

let vc_get v tid = Option.value (Hashtbl.find_opt v tid) ~default:0

let tick d tid =
  let v = vc_of d tid in
  Hashtbl.replace v tid (vc_get v tid + 1)

let join dst src = Hashtbl.iter (fun k c -> if c > vc_get dst k then Hashtbl.replace dst k c) src

(* [prev] happens-before the current moment of [tid] iff prev's own
   component is covered by [tid]'s clock. *)
let ordered_before d prev tid = prev.i_epoch <= vc_get (vc_of d tid) prev.acc.a_tid

(* --- execution context --------------------------------------------------- *)

(* Who is running right now: (tid, core, cycles). Thread 0 is the driver
   pseudo-thread — setup code before Smp.run, engine-event callbacks and
   post-run invariant checks all account there. *)
let ctx d =
  match Smp.current_core d.smp with
  | Some core ->
      let sched = Smp.sched_of d.smp ~core in
      let tid = Option.value (Sched.current_tid sched) ~default:0 in
      (tid, core, Uksim.Clock.cycles (Smp.clock_of d.smp ~core))
  | None ->
      let cycles = ref 0 in
      for core = 0 to Smp.n_cores d.smp - 1 do
        cycles := max !cycles (Uksim.Clock.cycles (Smp.clock_of d.smp ~core))
      done;
      (0, -1, !cycles)

let locks_held d tid = Option.value (Hashtbl.find_opt d.held tid) ~default:[]

(* --- hook callbacks ------------------------------------------------------ *)

let on_lock d (ev : Hook.event) =
  if not d.detached then begin
    d.n_lock_events <- d.n_lock_events + 1;
    Uktrace.Metric.Counter.incr (Lazy.force m_lock_events);
    let tid, _, _ = ctx d in
    match ev.op with
    | Hook.Acquire ->
        Hashtbl.replace d.held tid ((ev.uid, ev.lock_name) :: locks_held d tid);
        (* release -> acquire edge *)
        (match Hashtbl.find_opt d.release_vc ev.uid with
        | Some v -> join (vc_of d tid) v
        | None -> ())
    | Hook.Release ->
        Hashtbl.replace d.held tid
          (List.filter (fun (uid, _) -> uid <> ev.uid) (locks_held d tid));
        Hashtbl.replace d.release_vc ev.uid (Hashtbl.copy (vc_of d tid));
        tick d tid
  end

let on_thread d (ev : Sched.group_event) =
  if not d.detached then
    match ev with
    | Sched.Spawned child ->
        let tid, _, _ = ctx d in
        join (vc_of d child) (vc_of d tid);
        tick d tid
    | Sched.Woken dst ->
        let tid, _, _ = ctx d in
        if tid <> dst then begin
          join (vc_of d dst) (vc_of d tid);
          tick d tid
        end
    | Sched.Exited tid ->
        join (vc_of d 0) (vc_of d tid)

let on_ipi d ~src:_ ~dst:_ = if not d.detached then d.n_ipis <- d.n_ipis + 1

(* --- attach / detach ----------------------------------------------------- *)

let attach smp =
  (match !current with
  | Some _ -> invalid_arg "Lockset.attach: a detector is already attached"
  | None -> ());
  let d =
    {
      smp;
      vcs = Hashtbl.create 64;
      held = Hashtbl.create 16;
      release_vc = Hashtbl.create 16;
      reports = [];
      n_accesses = 0;
      n_lock_events = 0;
      n_ipis = 0;
      detached = false;
    }
  in
  Hook.set (Some (on_lock d));
  Sched.set_group_observer (Smp.group smp) (Some (on_thread d));
  Smp.set_wake_observer smp (Some (on_ipi d));
  current := Some d;
  d

let detach d =
  if not d.detached then begin
    d.detached <- true;
    Hook.set None;
    Sched.set_group_observer (Smp.group d.smp) None;
    Smp.set_wake_observer d.smp None;
    current := None
  end

let reports d = List.rev d.reports
let accesses d = d.n_accesses
let lock_events d = d.n_lock_events
let ipis d = d.n_ipis

(* --- the race rule ------------------------------------------------------- *)

let report d cell prev cur =
  cell.cs_reported <- true;
  d.reports <- { r_cell = cell.cs_name; r_first = prev.acc; r_second = cur.acc } :: d.reports;
  Uktrace.Metric.Counter.incr (Lazy.force m_races);
  let tr = Uktrace.Tracer.default in
  if Uktrace.Tracer.enabled tr then
    Uktrace.Tracer.instant tr
      ~core:(max 0 cur.acc.a_core)
      ~cat:"ukcheck" ~ts:cur.acc.a_cycles
      (Printf.sprintf "race:%s" cell.cs_name)

let conflicts d prev ~tid ~write cur_locks =
  prev.acc.a_tid <> tid
  && (prev.acc.a_write || write)
  && (not (List.exists (fun uid -> List.mem uid prev.i_locks) cur_locks))
  && not (ordered_before d prev tid)

let record (h : cell_handle) ~write ~site =
  match h with
  | None -> ()
  | Some (d, cell) ->
      if not d.detached then begin
        let tid, core, cycles = ctx d in
        d.n_accesses <- d.n_accesses + 1;
        Uktrace.Metric.Counter.incr (Lazy.force m_accesses);
        let held = locks_held d tid in
        let uids = List.map fst held in
        (if not cell.cs_reported then
           let candidates =
             match cell.cs_last_write with
             | Some w when write -> (w :: cell.cs_reads)
             | Some w -> [ w ]
             | None -> if write then cell.cs_reads else []
           in
           match List.find_opt (fun p -> conflicts d p ~tid ~write uids) candidates with
           | Some prev ->
               let cur =
                 {
                   acc =
                     {
                       a_tid = tid;
                       a_core = core;
                       a_cycles = cycles;
                       a_site = site;
                       a_write = write;
                       a_locks = List.map snd held;
                     };
                   i_locks = uids;
                   i_vc = Hashtbl.copy (vc_of d tid);
                   i_epoch = vc_get (vc_of d tid) tid;
                 }
               in
               report d cell prev cur
           | None -> ());
        tick d tid;
        let v = vc_of d tid in
        let ia =
          {
            acc =
              {
                a_tid = tid;
                a_core = core;
                a_cycles = cycles;
                a_site = site;
                a_write = write;
                a_locks = List.map snd held;
              };
            i_locks = uids;
            i_vc = Hashtbl.copy v;
            i_epoch = vc_get v tid;
          }
        in
        if write then begin
          cell.cs_last_write <- Some ia;
          cell.cs_reads <- []
        end
        else
          cell.cs_reads <- ia :: List.filter (fun r -> r.acc.a_tid <> tid) cell.cs_reads
      end

let register_cell ~name : cell_handle =
  match !current with
  | None -> None
  | Some d ->
      Some (d, { cs_name = name; cs_last_write = None; cs_reads = []; cs_reported = false })

let pp_access ppf a =
  Format.fprintf ppf "%s %s by thread %d on core %d at cycle %d%s"
    (if a.a_write then "write" else "read")
    a.a_site a.a_tid a.a_core a.a_cycles
    (match a.a_locks with
    | [] -> " holding no locks"
    | ls -> " holding {" ^ String.concat ", " ls ^ "}")

let pp_report ppf r =
  Format.fprintf ppf "@[<v 2>data race on %s:@,first:  %a@,second: %a@]" r.r_cell pp_access
    r.r_first pp_access r.r_second
