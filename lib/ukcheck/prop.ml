let require cond msg = if cond then Ok () else Error msg

let rec all = function
  | [] -> Ok ()
  | Ok () :: rest -> all rest
  | (Error _ as e) :: _ -> e

let run ?cores ?schedules ?seeds ?max_decisions fixture =
  Explore.run (Explore.config ?cores ?budget:schedules ?seeds ?max_decisions ()) fixture

let check ?cores ?schedules ?seeds ?max_decisions ~name fixture =
  match run ?cores ?schedules ?seeds ?max_decisions fixture with
  | Explore.Passed _ -> ()
  | Explore.Failed f ->
      failwith
        (Printf.sprintf
           "%s: %s (found after %d schedules, %d shrink runs)\n  replay certificate: %s" name
           f.Explore.message f.Explore.found_after f.Explore.shrink_runs
           (Schedule.to_string f.Explore.cert))
