type decision = Uksmp.Smp.decision = { kind : string; arity : int; choice : int }
type cert = { seed : int; cores : int; decisions : decision list }

let strip_defaults ds =
  let rec drop = function d :: rest when d.choice = 0 -> drop rest | rest -> rest in
  List.rev (drop (List.rev ds))

let to_string c =
  let ds = List.map (fun d -> Printf.sprintf "%s:%d/%d" d.kind d.arity d.choice) c.decisions in
  String.concat ";" (Printf.sprintf "seed=%d" c.seed :: Printf.sprintf "cores=%d" c.cores :: ds)

let of_string s =
  let parse_decision part =
    match String.rindex_opt part ':' with
    | None -> None
    | Some i -> (
        let kind = String.sub part 0 i in
        let rest = String.sub part (i + 1) (String.length part - i - 1) in
        match String.index_opt rest '/' with
        | None -> None
        | Some j -> (
            let arity = String.sub rest 0 j
            and choice = String.sub rest (j + 1) (String.length rest - j - 1) in
            match (int_of_string_opt arity, int_of_string_opt choice) with
            | Some arity, Some choice when kind <> "" && arity >= 2 && choice >= 0 && choice < arity
              ->
                Some { kind; arity; choice }
            | _ -> None))
  in
  let int_field ~prefix part =
    let pl = String.length prefix in
    if String.length part > pl && String.sub part 0 pl = prefix then
      int_of_string_opt (String.sub part pl (String.length part - pl))
    else None
  in
  match String.split_on_char ';' s with
  | seed_part :: cores_part :: rest -> (
      match (int_field ~prefix:"seed=" seed_part, int_field ~prefix:"cores=" cores_part) with
      | Some seed, Some cores when cores > 0 ->
          let ds = List.map parse_decision rest in
          if List.for_all Option.is_some ds then
            Some { seed; cores; decisions = List.filter_map Fun.id ds }
          else None
      | _ -> None)
  | _ -> None
