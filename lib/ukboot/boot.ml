module Level = struct
  let early = 1
  let paging = 2
  let alloc = 3
  let sched = 4
  let bus = 5
  let fs = 6
  let late = 7
end

module Inittab = struct
  type entry = { level : int; name : string; ctor : unit -> unit }
  type t = { mutable entries : entry list (* reversed registration order *) }

  let create () = { entries = [] }

  let register t ~level ~name ctor =
    if level < 1 || level > 7 then invalid_arg "Inittab.register: level must be in 1..7";
    t.entries <- { level; name; ctor } :: t.entries

  let ordered t =
    (* Stable by level, registration order within a level. *)
    List.stable_sort
      (fun a b -> compare a.level b.level)
      (List.rev t.entries)

  let entries t = List.map (fun e -> (e.level, e.name)) (ordered t)
end

type phase_report = {
  phase : string;
  level : int;
  start_ns : float;
  duration_ns : float;
}

type report = { guest_boot_ns : float; phases : phase_report list }

exception Constructor_failed of { phase : string; level : int; cause : exn }

let () =
  Printexc.register_printer (function
    | Constructor_failed { phase; level; cause } ->
        Some
          (Printf.sprintf "Constructor_failed(phase %S, level %d: %s)" phase level
             (Printexc.to_string cause))
    | _ -> None)

(* Boot observability: the last report and a cumulative boot count,
   published as one sticky ["ukboot.boot"] registry source so per-phase
   timings show up in snapshots alongside every other subsystem. *)
let boots = ref 0
let last_report : report option ref = ref None
let source_registered = ref false

let register_source () =
  if not !source_registered then begin
    source_registered := true;
    Uktrace.Registry.register ~sticky:true
      (Uktrace.Source.make ~subsystem:"ukboot" ~name:"boot"
         ~reset:(fun () ->
           boots := 0;
           last_report := None)
         (fun () ->
           let base = [ ("boots", Uktrace.Metric.Count !boots) ] in
           match !last_report with
           | None -> base
           | Some r ->
               base
               @ ("guest_boot_ns", Uktrace.Metric.Level r.guest_boot_ns)
                 :: List.map
                      (fun p ->
                        ( Printf.sprintf "phase.%d.%s_ns" p.level p.phase,
                          Uktrace.Metric.Level p.duration_ns ))
                      r.phases))
  end

let run ~clock ?main tab =
  register_source ();
  let t0 = Uksim.Clock.ns clock in
  let phases =
    List.map
      (fun (e : Inittab.entry) ->
        let start = Uksim.Clock.ns clock in
        (try e.ctor ()
         with exn ->
           raise (Constructor_failed { phase = e.name; level = e.level; cause = exn }));
        {
          phase = e.name;
          level = e.level;
          start_ns = start -. t0;
          duration_ns = Uksim.Clock.ns clock -. start;
        })
      (Inittab.ordered tab)
  in
  let guest_boot_ns = Uksim.Clock.ns clock -. t0 in
  incr boots;
  last_report := Some { guest_boot_ns; phases };
  (match main with Some f -> f () | None -> ());
  { guest_boot_ns; phases }

let pp_report ppf r =
  Fmt.pf ppf "guest boot: %a@," Uksim.Units.pp_ns r.guest_boot_ns;
  List.iter
    (fun p ->
      Fmt.pf ppf "  [%d] %-24s %a@," p.level p.phase Uksim.Units.pp_ns p.duration_ns)
    r.phases
