(** The ukboot API: ordered boot of a unikernel image (paper §3.2, §5.1).

    Micro-libraries register constructors on an init table at fixed levels;
    boot runs levels in ascending order, timing each phase on the virtual
    clock, and finally jumps to [main]. The per-phase report is what Figs
    10, 14 and 21 plot. *)

(** Conventional init levels, mirroring Unikraft's uk_inittab. *)
module Level : sig
  val early : int (* 1: platform bring-up, consoles *)
  val paging : int (* 2: ukmmu *)
  val alloc : int (* 3: ukalloc backends *)
  val sched : int (* 4: uksched *)
  val bus : int (* 5: device buses: uknetdev, virtio-9p *)
  val fs : int (* 6: filesystem mounts *)
  val late : int (* 7: application constructors *)
end

module Inittab : sig
  type t

  val create : unit -> t

  val register : t -> level:int -> name:string -> (unit -> unit) -> unit
  (** Constructors at the same level run in registration order. Levels must
      be within [1..7]. *)

  val entries : t -> (int * string) list
  (** (level, name) in execution order. *)
end

type phase_report = {
  phase : string;
  level : int;
  start_ns : float;  (** since boot start *)
  duration_ns : float;
}

type report = {
  guest_boot_ns : float;  (** first guest instruction to [main] entry *)
  phases : phase_report list;
}

exception Constructor_failed of { phase : string; level : int; cause : exn }
(** A constructor raised mid-boot: the culprit phase and level are named
    so a failed boot is attributable without re-running. *)

val run : clock:Uksim.Clock.t -> ?main:(unit -> unit) -> Inittab.t -> report
(** Execute the boot sequence. The report covers constructor phases only —
    i.e. the time from the first guest instruction until [main] is invoked,
    matching the paper's guest-boot measurements; [main]'s own run time is
    excluded. A constructor that raises aborts the boot with
    {!Constructor_failed}. Per-phase timings of the most recent boot (and
    a cumulative boot count) are published as a sticky ["ukboot.boot"]
    {!Uktrace.Registry} source. *)

val pp_report : Format.formatter -> report -> unit
