type mode = Polling | Interrupt_driven

type rx_path =
  | Zero_copy
  | Copy_into of (unit -> Netbuf.t option)

type queue_conf = {
  rx_path : rx_path;
  mode : mode;
  rx_handler : (unit -> unit) option;
}

type stats = {
  tx_pkts : int;
  tx_bytes : int;
  tx_kicks : int;
  rx_pkts : int;
  rx_bytes : int;
  rx_digest : int;
  rx_irqs : int;
  rx_dropped : int;
}

type t = {
  name : string;
  mtu : int;
  max_queues : int;
  configure_queue : qid:int -> queue_conf -> unit;
  tx_burst : qid:int -> Netbuf.t array -> int;
  tx_room : qid:int -> int;
  rx_burst : qid:int -> max:int -> Netbuf.t list;
  rx_pending : qid:int -> int;
  stats : unit -> stats;
}

let zero_stats =
  { tx_pkts = 0; tx_bytes = 0; tx_kicks = 0; rx_pkts = 0; rx_bytes = 0; rx_digest = 0;
    rx_irqs = 0; rx_dropped = 0 }

let fold_digest d nb = (d * 0x100000001b3) lxor Netbuf.payload_hash nb land max_int

let pp_stats ppf s =
  Fmt.pf ppf "tx %d pkts/%d B (%d kicks), rx %d pkts/%d B (%d irqs, %d dropped)" s.tx_pkts
    s.tx_bytes s.tx_kicks s.rx_pkts s.rx_bytes s.rx_irqs s.rx_dropped
