(* Receive-side scaling: hash a frame's 5-tuple to a queue index.

   The hash is symmetric (src and dst endpoints are combined commutatively)
   so both directions of a connection land on the same queue — what Linux
   calls an XPS-symmetric Toeplitz configuration, and what lets a per-queue
   TCP stack see both halves of its flows. Parsing duplicates the few
   offsets it needs instead of depending on uknetstack (which sits above
   this library). *)

let get_u8 b i = Char.code (Bytes.get b i)
let get_u16 b i = (get_u8 b i lsl 8) lor get_u8 b (i + 1)
let get_u32 b i = (get_u16 b i lsl 16) lor get_u16 b (i + 2)

(* splitmix64-style finalizer: avalanche a 63-bit value. *)
let mix x =
  let x = x land max_int in
  let x = (x lxor (x lsr 30)) * 0x5851f42d4c957f2d land max_int in
  let x = (x lxor (x lsr 27)) * 0x14057b7ef767814f land max_int in
  x lxor (x lsr 31)

let hash_tuple ~proto ~src_ip ~src_port ~dst_ip ~dst_port =
  let a = mix ((src_ip lsl 16) lor src_port) in
  let b = mix ((dst_ip lsl 16) lor dst_port) in
  (* + and lxor are commutative: hash (A,B) = hash (B,A). *)
  mix (((a + b) land max_int) lxor mix proto)

let queue_of_tuple ~n_queues ~proto ~src_ip ~src_port ~dst_ip ~dst_port =
  if n_queues <= 0 then invalid_arg "Rss.queue_of_tuple: n_queues must be positive";
  hash_tuple ~proto ~src_ip ~src_port ~dst_ip ~dst_port mod n_queues

type tuple = { proto : int; src_ip : int; src_port : int; dst_ip : int; dst_port : int }

let eth_size = 14

(* Parse at an arbitrary base offset so netbuf windows need no copy. *)
let tuple_at frame ~base ~len =
  if len < eth_size + 20 then None
  else if get_u16 frame (base + 12) <> 0x0800 then None (* not IPv4 *)
  else begin
    let vihl = get_u8 frame (base + eth_size) in
    if vihl lsr 4 <> 4 then None
    else begin
      let ihl = (vihl land 0xf) * 4 in
      let proto = get_u8 frame (base + eth_size + 9) in
      match proto with
      | 6 (* TCP *) | 17 (* UDP *) ->
          let l4 = eth_size + ihl in
          if len < l4 + 4 then None
          else
            Some
              {
                proto;
                src_ip = get_u32 frame (base + eth_size + 12);
                dst_ip = get_u32 frame (base + eth_size + 16);
                src_port = get_u16 frame (base + l4);
                dst_port = get_u16 frame (base + l4 + 2);
              }
      | _ -> None
    end
  end

let tuple_of_frame frame = tuple_at frame ~base:0 ~len:(Bytes.length frame)

let tuple_of_netbuf nb =
  let buf, base, len = Netbuf.view nb in
  tuple_at buf ~base ~len

let queue_of d ~n_queues =
  if n_queues <= 0 then invalid_arg "Rss.queue_of_frame: n_queues must be positive"
  else
    match d with
    | None -> None
    | Some { proto; src_ip; src_port; dst_ip; dst_port } ->
        Some (queue_of_tuple ~n_queues ~proto ~src_ip ~src_port ~dst_ip ~dst_port)

let queue_of_frame frame ~n_queues = queue_of (tuple_of_frame frame) ~n_queues
let queue_of_netbuf nb ~n_queues = queue_of (tuple_of_netbuf nb) ~n_queues
