(** uk_netbuf (paper §3.1): the packet-buffer currency of the datapath.

    A netbuf is a lightweight descriptor — an [(off, len)] window — onto a
    refcounted storage cell with reserved headroom. Descriptors are what
    the layers exchange: a driver hands one to the stack, the stack parses
    headers in place with {!push}/{!pull} and hands the payload window to
    the application, the application writes its reply into a fresh pool
    buffer and hands that back down TX. Ownership moves with the
    descriptor; nothing in that chain copies frame bytes.

    Copies still exist, but only behind four explicit calls —
    {!copy_out}, {!copy_in}, {!copy}, {!of_bytes} — each of which bumps
    the sticky ["uknetdev.copies"] uktrace source. A measurement window
    can therefore assert "the hot path copied nothing" by diffing that
    source. *)

type t

(** {1 Construction} *)

val alloc : ?headroom:int -> size:int -> unit -> t
(** Fresh heap-backed buffer with [size] bytes of payload capacity after
    [headroom] (default 64 — ethernet+IP+TCP fits). *)

val of_bytes : ?headroom:int -> bytes -> t
(** Buffer holding a copy of the given payload ({e counted} — this is a
    materialization, used at bytes-era edges). *)

(** {1 The window} *)

val data : t -> bytes
(** Underlying storage; the payload occupies
    [offset t .. offset t + len t - 1]. *)

val offset : t -> int
val len : t -> int
val headroom : t -> int
val capacity : t -> int

val set_len : t -> int -> unit

val push : t -> int -> unit
(** [push b n] extends the payload [n] bytes into the headroom (prepending
    a header); raises [Invalid_argument] without room. *)

val pull : t -> int -> unit
(** [pull b n] strips [n] leading payload bytes (consuming a header). *)

val reset : t -> unit
(** Rewind to empty-at-full-headroom. *)

val view : t -> bytes * int * int
(** Zero-copy [(storage, off, len)] window onto the payload. The reader
    must not retain it past the descriptor's ownership. *)

val payload_hash : t -> int
(** FNV-1a over the payload window — content digests without copying. *)

(** {1 Counted copies}

    The only ways to materialize payload bytes; each increments the
    ["uknetdev.copies"] source (empty payloads are free). *)

val copy_out : t -> bytes

val copy_in : t -> bytes -> unit
(** Replace the payload with the given bytes (sets length). *)

val copy_into : t -> t -> unit
(** [copy_into src dst] copies [src]'s payload window into [dst] (one
    counted copy) — the legacy driver RX path. *)

val copy : ?headroom:int -> t -> t
(** Full duplicate onto a fresh heap cell (retransmit/corruption paths
    that must not alias shared storage). *)

val to_payload : t -> bytes
(** @deprecated alias of {!copy_out}, kept for bytes-era test edges. *)

val blit_payload : t -> bytes -> unit
(** @deprecated alias of {!copy_in}. *)

(** {1 Ownership} *)

val share : t -> t
(** Clone the descriptor onto the same storage (refcount +1) — an
    indirect mbuf. Both descriptors move independently; the storage
    returns to its pool when the last one is recycled. *)

val recycle : t -> unit
(** Drop this descriptor. When it was the storage's last reference, a
    pooled cell is pushed onto its home pool's remote-free list (drained,
    and paid for, by the pool owner's next {!Pool.take}); heap cells fall
    to the GC. Safe from any core. *)

val live : t -> bool
(** False once the descriptor was recycled/given or its storage was
    reissued (generation mismatch). *)

val generation : t -> int

val set_debug : bool -> unit
(** Enable lifetime guards: using a descriptor after give/recycle, or
    double-giving, raises [Invalid_argument] instead of silently
    corrupting. Off by default (hot path pays nothing). *)

(** {1 Copy accounting} *)

val total_copies : unit -> int
val copied_bytes_total : unit -> int
val reset_copy_counters : unit -> unit

module Pool : sig
  type netbuf := t
  type t

  val create :
    clock:Uksim.Clock.t ->
    ?alloc:Ukalloc.Alloc.t ->
    ?on_op:(Uksim.Clock.t -> unit) ->
    ?headroom:int ->
    ?elastic:bool ->
    count:int ->
    size:int ->
    unit ->
    t
  (** Pre-allocate [count] cells of [size] payload bytes. [alloc] backs
      each cell with a real allocation from that ukalloc backend (the
      per-core magazine integration). [on_op] runs before every take/give
      with the charging clock — the shared-pool ablation passes a spinlock
      acquire/release here. [elastic] pools grow by one backend-charged
      cell instead of returning [None] when empty. *)

  val take : ?clock:Uksim.Clock.t -> t -> netbuf option
  (** O(1); [None] when exhausted (unless elastic). Charges [clock]
      (default: the pool's own) and drains the remote-free list first. *)

  val give : ?clock:Uksim.Clock.t -> t -> netbuf -> unit
  (** Immediate owner-context return. Raises [Invalid_argument] for
      foreign buffers, double gives, or still-shared buffers; the general
      release path is {!recycle}. *)

  val available : t -> int
  val pending_returns : t -> int
  val capacity_of : t -> int
  val total : t -> int
end
