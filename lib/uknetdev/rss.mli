(** Receive-side scaling (paper §5.3's multi-queue NICs, modeled).

    Multi-queue drivers hash each received frame's TCP/UDP 5-tuple to pick
    an rx queue, so a flow always lands on the same queue (and hence the
    same core, when queues are pinned). The hash is {e symmetric}: swapping
    source and destination endpoints gives the same value, so both
    directions of a connection share a queue. *)

type tuple = { proto : int; src_ip : int; src_port : int; dst_ip : int; dst_port : int }

val tuple_of_frame : bytes -> tuple option
(** Parse an ethernet frame (IPv4, TCP or UDP only); [None] for anything
    else — ARP, non-IP, fragments too short for ports. *)

val queue_of_tuple :
  n_queues:int -> proto:int -> src_ip:int -> src_port:int -> dst_ip:int -> dst_port:int -> int
(** Deterministic queue index in [0, n_queues). Exposed so clients can
    search for source ports that steer a flow to a chosen queue. *)

val queue_of_frame : bytes -> n_queues:int -> int option
(** [tuple_of_frame] composed with [queue_of_tuple]; [None] when the frame
    has no 5-tuple (the driver then applies its default-queue policy). *)

val tuple_of_netbuf : Netbuf.t -> tuple option
(** Parse directly from a netbuf's payload window — no copy. *)

val queue_of_netbuf : Netbuf.t -> n_queues:int -> int option

val hash_tuple : proto:int -> src_ip:int -> src_port:int -> dst_ip:int -> dst_port:int -> int
