type queue = {
  q_clock : Uksim.Clock.t;
  q_engine : Uksim.Engine.t;
  rx_ring : Netbuf.t Queue.t;
  mutable conf : Netdev.queue_conf option;
  mutable irq_armed : bool;
}

type side = {
  latency : int;
  ring_size : int;
  queues : queue array;
  mutable st : Netdev.stats;
  mutable peer : side option;
}

let tx_cost = 40
let rx_cost = 35

(* Doorbell per tx_burst invocation (MMIO write waking the peer side) —
   the cost TX coalescing amortizes across a batch. *)
let kick_cost = 250

let deliver s q nb =
  match q.conf with
  | None ->
      s.st <- { s.st with rx_dropped = s.st.rx_dropped + 1 };
      Netbuf.recycle nb
  | Some conf ->
      if Queue.length q.rx_ring >= s.ring_size then begin
        s.st <- { s.st with rx_dropped = s.st.rx_dropped + 1 };
        Netbuf.recycle nb
      end
      else begin
        Queue.push nb q.rx_ring;
        match (conf.Netdev.mode, conf.Netdev.rx_handler) with
        | Netdev.Interrupt_driven, Some handler when q.irq_armed ->
            q.irq_armed <- false;
            s.st <- { s.st with rx_irqs = s.st.rx_irqs + 1 };
            Uksim.Clock.advance q.q_clock Uksim.Cost.interrupt_delivery;
            handler ()
        | (Netdev.Interrupt_driven | Netdev.Polling), _ -> ()
      end

let dev_of_side name s =
  let n_queues = Array.length s.queues in
  let check_qid qid =
    if qid < 0 || qid >= n_queues then invalid_arg (Printf.sprintf "%s: bad qid %d" name qid)
  in
  let catch_up q = Uksim.Engine.run ~until:(Uksim.Clock.cycles q.q_clock) q.q_engine in
  {
    Netdev.name;
    mtu = 1500;
    max_queues = n_queues;
    configure_queue =
      (fun ~qid conf ->
        check_qid qid;
        let q = s.queues.(qid) in
        q.conf <- Some conf;
        q.irq_armed <- conf.Netdev.mode = Netdev.Interrupt_driven);
    tx_burst =
      (fun ~qid pkts ->
        check_qid qid;
        let q = s.queues.(qid) in
        catch_up q;
        let peer = match s.peer with Some p -> p | None -> assert false in
        let peer_n = Array.length peer.queues in
        let n = Array.length pkts in
        let bytes = ref 0 in
        Array.iter
          (fun nb ->
            Uksim.Clock.advance q.q_clock tx_cost;
            bytes := !bytes + Netbuf.len nb;
            (* Each peer queue may live on its own core clock: deliver on
               that queue's engine, no earlier than its local present. The
               descriptor itself crosses — DMA handoff, no copy. *)
            let deliver_to tq nb =
              let pq = peer.queues.(tq) in
              let at =
                max (Uksim.Clock.cycles pq.q_clock) (Uksim.Clock.cycles q.q_clock + s.latency)
              in
              Uksim.Engine.at pq.q_engine at (fun () -> deliver peer pq nb)
            in
            match Rss.queue_of_netbuf nb ~n_queues:peer_n with
            | Some tq -> deliver_to tq nb
            | None when peer_n = 1 -> deliver_to 0 nb
            | None ->
                (* No 5-tuple (ARP, non-IP): mirror to every queue so each
                   per-queue stack can resolve/answer it — like NIC
                   broadcast replication across RSS contexts. The mirrors
                   share storage; nothing is copied. *)
                for tq = 0 to peer_n - 1 do
                  deliver_to tq (Netbuf.share nb)
                done;
                Netbuf.recycle nb)
          pkts;
        if n > 0 then begin
          Uksim.Clock.advance q.q_clock kick_cost;
          s.st <-
            { s.st with tx_pkts = s.st.tx_pkts + n; tx_bytes = s.st.tx_bytes + !bytes;
              tx_kicks = s.st.tx_kicks + 1 }
        end;
        n);
    tx_room =
      (fun ~qid ->
        check_qid qid;
        max_int);
    rx_burst =
      (fun ~qid ~max:max_pkts ->
        check_qid qid;
        let q = s.queues.(qid) in
        catch_up q;
        match q.conf with
        | None -> []
        | Some conf ->
            let rec take acc n =
              if n >= max_pkts then List.rev acc
              else
                match Queue.take_opt q.rx_ring with
                | None -> List.rev acc
                | Some nb -> (
                    Uksim.Clock.advance q.q_clock rx_cost;
                    let account () =
                      s.st <-
                        {
                          s.st with
                          rx_pkts = s.st.rx_pkts + 1;
                          rx_bytes = s.st.rx_bytes + Netbuf.len nb;
                          rx_digest = Netdev.fold_digest s.st.rx_digest nb;
                        }
                    in
                    match conf.Netdev.rx_path with
                    | Netdev.Zero_copy ->
                        account ();
                        take (nb :: acc) (n + 1)
                    | Netdev.Copy_into rx_alloc -> (
                        match rx_alloc () with
                        | None ->
                            s.st <- { s.st with rx_dropped = s.st.rx_dropped + 1 };
                            Netbuf.recycle nb;
                            take acc (n + 1)
                        | Some dst ->
                            Uksim.Clock.advance q.q_clock (Uksim.Cost.memcpy (Netbuf.len nb));
                            Netbuf.copy_into nb dst;
                            account ();
                            Netbuf.recycle nb;
                            take (dst :: acc) (n + 1)))
            in
            let pkts = take [] 0 in
            if conf.Netdev.mode = Netdev.Interrupt_driven && Queue.is_empty q.rx_ring then
              q.irq_armed <- true;
            pkts);
    rx_pending =
      (fun ~qid ->
        check_qid qid;
        let q = s.queues.(qid) in
        catch_up q;
        Queue.length q.rx_ring);
    stats = (fun () -> s.st);
  }

let create_pair ~clock ~engine ?(latency_ns = 2000.0) ?(ring_size = 512) ?(n_queues = 1)
    ?queues_a ?queues_b () =
  if n_queues <= 0 then invalid_arg "Loopback.create_pair: n_queues must be positive";
  let mk_queue (q_clock, q_engine) =
    { q_clock; q_engine; rx_ring = Queue.create (); conf = None; irq_armed = false }
  in
  let mk_side = function
    | Some qs when Array.length qs > 0 ->
        {
          latency = Uksim.Clock.cycles_of_ns latency_ns;
          ring_size;
          queues = Array.map mk_queue qs;
          st = Netdev.zero_stats;
          peer = None;
        }
    | Some _ -> invalid_arg "Loopback.create_pair: empty queue array"
    | None ->
        {
          latency = Uksim.Clock.cycles_of_ns latency_ns;
          ring_size;
          queues = Array.init n_queues (fun _ -> mk_queue (clock, engine));
          st = Netdev.zero_stats;
          peer = None;
        }
  in
  let a = mk_side queues_a and b = mk_side queues_b in
  a.peer <- Some b;
  b.peer <- Some a;
  (dev_of_side "loopback-a" a, dev_of_side "loopback-b" b)
