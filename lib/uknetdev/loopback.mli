(** Zero-cost paired devices: two uknetdev instances whose tx rings feed
    each other's rx rings directly (one event-engine hop, no virtio or host
    path). Used to connect two in-simulation network stacks — e.g. a wrk
    client against an nginx unikernel — and by unit tests.

    Multi-queue: with [n_queues > 1] (or explicit per-queue clock/engine
    arrays) each side exposes that many rx/tx queues, and delivery steers
    frames by symmetric {!Rss} hashing of the 5-tuple — both directions of
    a flow land on the same peer queue index. Frames without a 5-tuple
    (ARP, non-IPv4) are mirrored to {e all} peer queues so per-queue stacks
    can resolve addresses. When a queue is given its own clock (the uksmp
    per-core setup), tx charges the sending queue's clock and delivery is
    scheduled on the target queue's engine no earlier than that queue's
    local present — cross-core sends never rewind a receiver. *)

val create_pair :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  ?latency_ns:float ->
  ?ring_size:int ->
  ?n_queues:int ->
  ?queues_a:(Uksim.Clock.t * Uksim.Engine.t) array ->
  ?queues_b:(Uksim.Clock.t * Uksim.Engine.t) array ->
  unit ->
  Netdev.t * Netdev.t
(** Default latency 2 µs (VM-to-VM on one host), ring 512, one queue per
    side on the shared [clock]/[engine]. [queues_a]/[queues_b] give a side
    one queue per array entry, each on its own clock/engine (overriding
    [n_queues] for that side). *)
