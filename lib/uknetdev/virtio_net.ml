type backend = Vhost_net | Vhost_user

(* Guest-side per-packet descriptor work. vhost-user avoids the
   notification bookkeeping of the split ring. *)
let guest_tx_cost = function Vhost_net -> 115 | Vhost_user -> 92
let guest_rx_cost = 88

(* Host-side per-packet path: tap + kernel bridge vs. DPDK poll-mode. *)
let host_pkt_cost = function Vhost_net -> 2900 | Vhost_user -> 250
let host_batch = 64
let vhost_user_poll_cycles = 1200 (* ~0.33us poll interval when idle *)

type rxq = {
  rx_ring : Netbuf.t Queue.t;
  mutable conf : Netdev.queue_conf option;
  mutable irq_armed : bool;
}

type txq = { tx_ring : Netbuf.t Queue.t; mutable drain_scheduled : bool }

type state = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  backend : backend;
  wire : Wire.endpoint;
  ring_size : int;
  rxqs : rxq array;
  txqs : txq array;
  mutable st : Netdev.stats;
}

let catch_up t = Uksim.Engine.run ~until:(Uksim.Clock.cycles t.clock) t.engine

(* Host drain loop for one tx queue: processes packets in batches at host
   speed, forwarding each onto the wire. Runs on the engine (host core). *)
let rec schedule_drain t q =
  if not q.drain_scheduled then begin
    q.drain_scheduled <- true;
    let delay =
      match t.backend with
      | Vhost_net -> host_pkt_cost Vhost_net (* wakes after kick, first pkt cost *)
      | Vhost_user -> vhost_user_poll_cycles
    in
    Uksim.Engine.after t.engine delay (fun () -> drain t q)
  end

and drain t q =
  q.drain_scheduled <- false;
  if not (Queue.is_empty q.tx_ring) then begin
    let n = min host_batch (Queue.length q.tx_ring) in
    for _ = 1 to n do
      Wire.send t.wire (Queue.pop q.tx_ring)
    done;
    (* The batch took host time; continue draining afterwards. *)
    q.drain_scheduled <- true;
    Uksim.Engine.after t.engine (n * host_pkt_cost t.backend) (fun () -> drain t q)
  end
  (* Ring empty: the next tx_burst re-arms the drain (for vhost-user one
     poll interval out — the poller's pickup latency — so the event queue
     stays finite in simulation). *)

let deliver t qid nb =
  let q = t.rxqs.(qid) in
  match q.conf with
  | None ->
      t.st <- { t.st with rx_dropped = t.st.rx_dropped + 1 };
      Netbuf.recycle nb
  | Some conf ->
      if Queue.length q.rx_ring >= t.ring_size then begin
        t.st <- { t.st with rx_dropped = t.st.rx_dropped + 1 };
        Netbuf.recycle nb
      end
      else begin
        Queue.push nb q.rx_ring;
        match (conf.mode, conf.rx_handler) with
        | Netdev.Interrupt_driven, Some handler when q.irq_armed ->
            (* Inject once; the line stays inactive until rx_burst drains
               the ring and re-arms it (paper's interrupt-storm
               avoidance). *)
            q.irq_armed <- false;
            t.st <- { t.st with rx_irqs = t.st.rx_irqs + 1 };
            Uksim.Clock.advance t.clock Uksim.Cost.interrupt_delivery;
            handler ()
        | (Netdev.Interrupt_driven | Netdev.Polling), _ -> ()
      end

let create ~clock ~engine ~backend ~wire ?(ring_size = 256) ?(n_queues = 1) () =
  if ring_size <= 0 || n_queues <= 0 then invalid_arg "Virtio_net.create";
  let t =
    {
      clock;
      engine;
      backend;
      wire;
      ring_size;
      rxqs =
        Array.init n_queues (fun _ ->
            { rx_ring = Queue.create (); conf = None; irq_armed = false });
      txqs = Array.init n_queues (fun _ -> { tx_ring = Queue.create (); drain_scheduled = false });
      st = Netdev.zero_stats;
    }
  in
  (* Inbound steering: with one queue everything lands on queue 0; with
     several, RSS hashes the 5-tuple (frames without one — ARP, non-IP —
     take queue 0, the device's default queue). *)
  Wire.set_receiver wire
    (Some
       (fun nb ->
         let qid =
           if n_queues = 1 then 0
           else match Rss.queue_of_netbuf nb ~n_queues with Some q -> q | None -> 0
         in
         deliver t qid nb));
  let check_qid qid =
    if qid < 0 || qid >= n_queues then invalid_arg "Virtio_net: bad queue id"
  in
  let configure_queue ~qid conf =
    check_qid qid;
    t.rxqs.(qid).conf <- Some conf;
    t.rxqs.(qid).irq_armed <- conf.Netdev.mode = Netdev.Interrupt_driven
  in
  let tx_burst ~qid (pkts : Netbuf.t array) =
    check_qid qid;
    catch_up t;
    let q = t.txqs.(qid) in
    let was_empty = Queue.is_empty q.tx_ring in
    let room = t.ring_size - Queue.length q.tx_ring in
    let n = min room (Array.length pkts) in
    let bytes = ref 0 in
    for i = 0 to n - 1 do
      Uksim.Clock.advance t.clock (guest_tx_cost t.backend);
      bytes := !bytes + Netbuf.len pkts.(i);
      (* Descriptor handoff into the ring: the host side DMAs straight
         from this storage; no serialization copy. *)
      Queue.push pkts.(i) q.tx_ring
    done;
    if n > 0 then begin
      t.st <- { t.st with tx_pkts = t.st.tx_pkts + n; tx_bytes = t.st.tx_bytes + !bytes };
      (match t.backend with
      | Vhost_net ->
          (* Notify the host when it may be sleeping (empty->nonempty). *)
          if was_empty then begin
            Uksim.Clock.advance t.clock Uksim.Cost.vm_exit;
            t.st <- { t.st with tx_kicks = t.st.tx_kicks + 1 }
          end
      | Vhost_user -> ());
      schedule_drain t q
    end;
    n
  in
  let tx_room ~qid =
    check_qid qid;
    catch_up t;
    t.ring_size - Queue.length t.txqs.(qid).tx_ring
  in
  let rx_burst ~qid ~max:max_pkts =
    check_qid qid;
    catch_up t;
    let q = t.rxqs.(qid) in
    match q.conf with
    | None -> []
    | Some conf ->
        let rec take acc n =
          if n >= max_pkts then List.rev acc
          else
            match Queue.take_opt q.rx_ring with
            | None -> List.rev acc
            | Some nb -> (
                Uksim.Clock.advance t.clock guest_rx_cost;
                let account () =
                  t.st <-
                    {
                      t.st with
                      rx_pkts = t.st.rx_pkts + 1;
                      rx_bytes = t.st.rx_bytes + Netbuf.len nb;
                      rx_digest = Netdev.fold_digest t.st.rx_digest nb;
                    }
                in
                match conf.rx_path with
                | Netdev.Zero_copy ->
                    account ();
                    take (nb :: acc) (n + 1)
                | Netdev.Copy_into rx_alloc -> (
                    match rx_alloc () with
                    | None ->
                        t.st <- { t.st with rx_dropped = t.st.rx_dropped + 1 };
                        Netbuf.recycle nb;
                        take acc (n + 1)
                    | Some dst ->
                        Uksim.Clock.advance t.clock (Uksim.Cost.memcpy (Netbuf.len nb));
                        Netbuf.copy_into nb dst;
                        account ();
                        Netbuf.recycle nb;
                        take (dst :: acc) (n + 1)))
        in
        let pkts = take [] 0 in
        if conf.mode = Netdev.Interrupt_driven && Queue.is_empty q.rx_ring then
          q.irq_armed <- true;
        pkts
  in
  let rx_pending ~qid =
    check_qid qid;
    catch_up t;
    Queue.length t.rxqs.(qid).rx_ring
  in
  {
    Netdev.name = (match backend with Vhost_net -> "virtio-net/vhost-net" | Vhost_user -> "virtio-net/vhost-user");
    mtu = 1500;
    max_queues = n_queues;
    configure_queue;
    tx_burst;
    tx_room;
    rx_burst;
    rx_pending;
    stats = (fun () -> t.st);
  }
