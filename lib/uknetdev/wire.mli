(** The physical medium between a device backend and its peer: a
    latency/bandwidth-modelled point-to-point link (the paper's direct 10G
    cable), plus synthetic peers (a DPDK-testpmd-like sink, an echo).

    The wire moves {!Netbuf.t} descriptors by ownership handoff: [send]
    consumes the buffer, delivery hands it to the peer's receiver (which
    must eventually {!Netbuf.recycle} it), and lost frames are recycled by
    the wire itself. Duplication shares storage instead of copying. *)

type endpoint

val create_pair :
  engine:Uksim.Engine.t ->
  ?latency_ns:float ->
  ?bandwidth_gbps:float ->
  ?loss:float ->
  ?duplicate:float ->
  ?seed:int ->
  unit ->
  endpoint * endpoint
(** Bidirectional link; default 5 µs latency, 10 Gb/s. Frames sent faster
    than the line rate are serialized (delivery times push out). [loss]
    and [duplicate] are per-frame probabilities (default 0.0 — the paper's
    direct cable) applied deterministically from [seed]; lost frames are
    counted in {!dropped_frames}. *)

val dropped_frames : endpoint -> int
(** Frames this endpoint transmitted that the fault model discarded. *)

val send : endpoint -> Netbuf.t -> unit
(** Transmit a frame towards the peer endpoint, consuming the buffer. *)

val set_receiver : endpoint -> (Netbuf.t -> unit) option -> unit
(** Who gets frames arriving at this endpoint (None = count, recycle and
    drop). The receiver takes ownership of each delivered buffer. *)

val send_bytes : endpoint -> bytes -> unit
(** @deprecated bytes-era shim for test edges: materializes a netbuf
    (counted copy) and {!send}s it. *)

val set_receiver_bytes : endpoint -> (bytes -> unit) option -> unit
(** @deprecated bytes-era shim: copies each delivered frame out (counted)
    and recycles the buffer before invoking the callback. *)

val attach_sink : endpoint -> unit
(** testpmd-style measurement peer: count frames/bytes, never reply. *)

val attach_echo : endpoint -> unit
(** Reflect every frame back (source/dest rewriting is the sender's
    problem — this is a raw reflector). *)

val rx_frames : endpoint -> int
val rx_bytes : endpoint -> int

val rx_digest : endpoint -> int
(** Running FNV fold over delivered frame contents (replay checks). *)

val tx_frames : endpoint -> int
val reset_counters : endpoint -> unit
