(* Packet buffers as an ownership currency (paper §3.1, Fig 14 narrative).

   A netbuf is split in two:

   - a [cell]: the storage — one bytes block with reserved headroom, a
     reference count, a generation stamp, and (for pooled cells) a link
     back to its home pool;
   - a descriptor [t]: a lightweight {cell, off, length} window that is
     what flows through the datapath. Drivers, the stack, and apps hand
     descriptors to each other instead of copying frames; [share] clones a
     descriptor onto the same storage (an indirect mbuf / pbuf_ref), and
     [recycle] drops one — when the last descriptor goes, the cell returns
     to its pool (or the GC for heap cells).

   Every remaining way to materialize payload bytes is an explicit, counted
   call ([copy_out] / [copy_in] / [copy] / [of_bytes]); the counts are
   published as the sticky "uknetdev.copies" uktrace source so a bench
   phase can assert the hot path performs zero copies. *)

type cell = {
  buf : bytes;
  hroom : int;
  cid : int; (* unique cell id *)
  mutable refs : int; (* live descriptors onto this storage *)
  mutable gen : int; (* bumped each time the cell returns to a pool *)
  mutable pooled : bool; (* currently sitting in a pool free list *)
  mutable home : pool option; (* owning pool; None for heap cells *)
}

and t = {
  cell : cell;
  born : int; (* cell generation at descriptor creation *)
  mutable off : int;
  mutable length : int;
  mutable dead : bool; (* this descriptor was given/recycled *)
}

and pool = {
  clock : Uksim.Clock.t;
  alloc : Ukalloc.Alloc.t option;
  size : int;
  headroom : int;
  free : cell Stack.t;
  owned : (int, int) Hashtbl.t; (* cell id -> backing addr (or 0) *)
  returns : cell Queue.t; (* deferred frees from other cores *)
  on_op : (Uksim.Clock.t -> unit) option; (* e.g. shared-pool lock model *)
  elastic : bool;
  mutable total : int;
}

(* --- copy accounting ------------------------------------------------------ *)

(* Debug-mode lifetime guards (double-give / use-after-give); off by
   default so the hot path pays nothing. *)
let debug = ref false
let set_debug b = debug := b

let copy_out_count = ref 0
let copy_in_count = ref 0
let copy_count = ref 0
let copied_bytes = ref 0

let total_copies () = !copy_out_count + !copy_in_count + !copy_count
let copied_bytes_total () = !copied_bytes

let reset_copy_counters () =
  copy_out_count := 0;
  copy_in_count := 0;
  copy_count := 0;
  copied_bytes := 0

(* Sticky: survives Registry.clear so bench trial boundaries keep the
   source (its reset still zeroes the window). *)
let () =
  Uktrace.Registry.register ~sticky:true
    (Uktrace.Source.make ~subsystem:"uknetdev" ~name:"copies" ~reset:reset_copy_counters
       (fun () ->
         [
           ("copy_out", Uktrace.Metric.Count !copy_out_count);
           ("copy_in", Uktrace.Metric.Count !copy_in_count);
           ("copy", Uktrace.Metric.Count !copy_count);
           ("bytes", Uktrace.Metric.Count !copied_bytes);
         ]))

let counted counter n =
  if n > 0 then begin
    incr counter;
    copied_bytes := !copied_bytes + n
  end

(* --- descriptors ---------------------------------------------------------- *)

let next_cid = ref 0

let fresh_cid () =
  incr next_cid;
  !next_cid

let mk_cell ~headroom ~size =
  {
    buf = Bytes.create (headroom + size);
    hroom = headroom;
    cid = fresh_cid ();
    refs = 0;
    gen = 0;
    pooled = false;
    home = None;
  }

let descr cell =
  cell.refs <- cell.refs + 1;
  { cell; born = cell.gen; off = cell.hroom; length = 0; dead = false }

let check t =
  if !debug && (t.dead || t.born <> t.cell.gen) then
    invalid_arg "Netbuf: use after give"

let alloc ?(headroom = 64) ~size () =
  if size < 0 || headroom < 0 then invalid_arg "Netbuf.alloc";
  descr (mk_cell ~headroom ~size)

let data t = t.cell.buf
let offset t = t.off
let len t = t.length
let headroom t = t.off
let capacity t = Bytes.length t.cell.buf - t.cell.hroom
let generation t = t.cell.gen
let live t = (not t.dead) && t.born = t.cell.gen

let set_len t n =
  check t;
  if n < 0 || t.off + n > Bytes.length t.cell.buf then invalid_arg "Netbuf.set_len";
  t.length <- n

let push t n =
  check t;
  if n < 0 || n > t.off then invalid_arg "Netbuf.push: no headroom";
  t.off <- t.off - n;
  t.length <- t.length + n

let pull t n =
  check t;
  if n < 0 || n > t.length then invalid_arg "Netbuf.pull: beyond payload";
  t.off <- t.off + n;
  t.length <- t.length - n

let reset t =
  check t;
  t.off <- t.cell.hroom;
  t.length <- 0

let view t =
  check t;
  (t.cell.buf, t.off, t.length)

(* --- the counted copies --------------------------------------------------- *)

let copy_out t =
  check t;
  counted copy_out_count t.length;
  Bytes.sub t.cell.buf t.off t.length

let copy_in t payload =
  check t;
  let n = Bytes.length payload in
  if t.off + n > Bytes.length t.cell.buf then invalid_arg "Netbuf.copy_in: too large";
  counted copy_in_count n;
  Bytes.blit payload 0 t.cell.buf t.off n;
  t.length <- n

(* Driver-internal transfer between two live buffers: one counted copy
   (not a copy_out + copy_in pair). *)
let copy_into src dst =
  check src;
  check dst;
  let n = src.length in
  if dst.off + n > Bytes.length dst.cell.buf then invalid_arg "Netbuf.copy_into: too large";
  counted copy_in_count n;
  Bytes.blit src.cell.buf src.off dst.cell.buf dst.off n;
  dst.length <- n

let of_bytes ?(headroom = 64) payload =
  let n = Bytes.length payload in
  let b = alloc ~headroom ~size:n () in
  counted copy_count n;
  Bytes.blit payload 0 b.cell.buf b.off n;
  b.length <- n;
  b

let copy ?headroom t =
  check t;
  let headroom = match headroom with Some h -> h | None -> t.cell.hroom in
  let b = alloc ~headroom ~size:t.length () in
  counted copy_count t.length;
  Bytes.blit t.cell.buf t.off b.cell.buf b.off t.length;
  b.length <- t.length;
  b

(* Deprecated bytes-era names, kept as counted aliases for the test edges. *)
let to_payload = copy_out
let blit_payload = copy_in

(* Content hash of the payload window (FNV-1a): replay digests and the
   copy-vs-zero-copy equivalence property compare these, never the bytes
   themselves, so hashing is copy-free by construction. *)
let payload_hash t =
  check t;
  let h = ref 0x2545f4914f6cdd1d in
  for i = t.off to t.off + t.length - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get t.cell.buf i)) * 0x100000001b3
  done;
  !h land max_int

(* --- sharing and release -------------------------------------------------- *)

let share t =
  check t;
  t.cell.refs <- t.cell.refs + 1;
  { cell = t.cell; born = t.born; off = t.off; length = t.length; dead = false }

let pool_return p cell =
  if cell.pooled then invalid_arg "Netbuf.Pool: double give";
  cell.gen <- cell.gen + 1;
  cell.pooled <- true;
  Stack.push cell p.free

let recycle t =
  if t.dead then begin
    if !debug then invalid_arg "Netbuf: double give"
  end
  else begin
    t.dead <- true;
    let c = t.cell in
    c.refs <- c.refs - 1;
    if c.refs < 0 then invalid_arg "Netbuf.recycle: over-release";
    if c.refs = 0 then
      match c.home with
      | None -> () (* heap cell: the GC owns it *)
      | Some p ->
          (* Deferred return: recycling may happen on any core; pushing the
             cell id costs the recycler nothing, and the pool's owner pays
             the give cost when it drains the list on its next take — the
             remote-free list of a real per-core magazine. *)
          Queue.push c p.returns
  end

(* --- pools ---------------------------------------------------------------- *)

module Pool = struct
  type t = pool

  let take_cost = 18
  let give_cost = 14

  let backing p =
    match p.alloc with
    | None -> 0
    | Some a -> (
        match Ukalloc.Alloc.uk_malloc a (p.size + p.headroom) with
        | Some addr -> addr
        | None -> invalid_arg "Netbuf.Pool.create: allocator exhausted")

  let add_cell p =
    let c = mk_cell ~headroom:p.headroom ~size:p.size in
    c.home <- Some p;
    c.pooled <- true;
    Hashtbl.replace p.owned c.cid (backing p);
    Stack.push c p.free;
    p.total <- p.total + 1

  let create ~clock ?alloc ?on_op ?(headroom = 64) ?(elastic = false) ~count ~size () =
    if count <= 0 || size <= 0 then invalid_arg "Netbuf.Pool.create";
    let p =
      {
        clock;
        alloc;
        size;
        headroom;
        free = Stack.create ();
        owned = Hashtbl.create count;
        returns = Queue.create ();
        on_op;
        elastic;
        total = 0;
      }
    in
    for _ = 1 to count do
      add_cell p
    done;
    p

  let take ?clock p =
    let clock = match clock with Some c -> c | None -> p.clock in
    (match p.on_op with Some f -> f clock | None -> ());
    Uksim.Clock.advance clock take_cost;
    (* Drain the remote-free list first: the taker pays for returns, as a
       magazine owner reclaiming its remote frees would. *)
    while not (Queue.is_empty p.returns) do
      let c = Queue.pop p.returns in
      Uksim.Clock.advance clock give_cost;
      pool_return p c
    done;
    match Stack.pop_opt p.free with
    | Some c ->
        c.pooled <- false;
        Some (descr c)
    | None ->
        if p.elastic then begin
          Uksim.Clock.advance clock Uksim.Cost.alloc_backend_op;
          add_cell p;
          let c = Stack.pop p.free in
          c.pooled <- false;
          Some (descr c)
        end
        else None

  let give ?clock p b =
    let clock = match clock with Some c -> c | None -> p.clock in
    (match p.on_op with Some f -> f clock | None -> ());
    Uksim.Clock.advance clock give_cost;
    if not (Hashtbl.mem p.owned b.cell.cid) then
      invalid_arg "Netbuf.Pool.give: buffer does not belong to this pool";
    if b.dead || b.cell.pooled then invalid_arg "Netbuf.Pool: double give";
    if b.cell.refs > 1 then invalid_arg "Netbuf.Pool.give: buffer still shared";
    b.dead <- true;
    b.cell.refs <- 0;
    pool_return p b.cell

  let available p =
    Stack.length p.free + Queue.length p.returns

  let pending_returns p = Queue.length p.returns
  let capacity_of p = p.size
  let total p = p.total
end
