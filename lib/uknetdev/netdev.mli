(** The uknetdev API (paper §3.1).

    Decouples drivers from the network stack / low-level application. The
    application fully operates the driver: it chooses the RX buffer
    policy per queue (zero-copy descriptor handoff, or the legacy copy
    into application-provided buffers), chooses polling or interrupt mode,
    and moves packets with burst send/receive calls that mirror the
    paper's

    {v
    uk_netdev_tx_burst(dev, queue_id, pkt, cnt)
    uk_netdev_rx_burst(dev, queue_id, pkt, cnt)
    v}

    Both burst directions speak {!Netbuf.t} with ownership handoff:
    [tx_burst] consumes accepted buffers; [rx_burst] transfers each
    returned buffer to the caller, who must eventually {!Netbuf.recycle}
    it. *)

type mode = Polling | Interrupt_driven

type rx_path =
  | Zero_copy
      (** hand ring descriptors to the consumer as-is — the fast path *)
  | Copy_into of (unit -> Netbuf.t option)
      (** legacy path: copy each frame into a consumer-supplied buffer
          (the allocation callback of the bytes era). Each copy charges
          {!Uksim.Cost.memcpy} and the ["uknetdev.copies"] source. *)

type queue_conf = {
  rx_path : rx_path;
  mode : mode;
  rx_handler : (unit -> unit) option;
      (** interrupt callback: invoked on packet arrival / tx room when the
          queue's interrupt line is armed *)
}

type stats = {
  tx_pkts : int;
  tx_bytes : int;
  tx_kicks : int;
      (** doorbells/backend notifications (VM exits for vhost-net) *)
  rx_pkts : int;
  rx_bytes : int;
  rx_digest : int;
      (** FNV fold over received frame contents in delivery order — the
          replay/equivalence fingerprint of this device's ingress *)
  rx_irqs : int;
  rx_dropped : int;  (** ring overflow or rx buffer exhaustion *)
}

type t = {
  name : string;
  mtu : int;
  max_queues : int;
  configure_queue : qid:int -> queue_conf -> unit;
  tx_burst : qid:int -> Netbuf.t array -> int;
      (** Enqueue as many as possible; returns the count accepted (the
          paper's in/out [cnt]). Accepted buffers are consumed; the caller
          keeps ownership of rejected ones. *)
  tx_room : qid:int -> int;
  rx_burst : qid:int -> max:int -> Netbuf.t list;
      (** Up to [max] packets, ownership transferred to the caller. In
          interrupt mode, draining the ring re-arms the queue's interrupt
          line (paper §3.1). *)

  rx_pending : qid:int -> int;
  stats : unit -> stats;
}

val zero_stats : stats

val fold_digest : int -> Netbuf.t -> int
(** One step of the rx_digest fold (exposed for drivers). *)

val pp_stats : Format.formatter -> stats -> unit
