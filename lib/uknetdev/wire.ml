type endpoint = {
  engine : Uksim.Engine.t;
  latency_cycles : int;
  cycles_per_byte : float;
  loss : float;
  duplicate : float;
  rng : Uksim.Rng.t;
  mutable peer : endpoint option;
  mutable receiver : (Netbuf.t -> unit) option;
  mutable line_free_at : int; (* serialization: next cycle the line is free *)
  mutable rx_frames : int;
  mutable rx_bytes : int;
  mutable rx_digest : int;
  mutable tx_frames : int;
  mutable dropped : int;
}

let make engine ~latency_ns ~bandwidth_gbps ~loss ~duplicate ~rng =
  let cycles_per_byte = Uksim.Clock.ghz *. 8.0 /. bandwidth_gbps in
  {
    engine;
    latency_cycles = Uksim.Clock.cycles_of_ns latency_ns;
    cycles_per_byte;
    loss;
    duplicate;
    rng;
    peer = None;
    receiver = None;
    line_free_at = 0;
    rx_frames = 0;
    rx_bytes = 0;
    rx_digest = 0;
    tx_frames = 0;
    dropped = 0;
  }

let create_pair ~engine ?(latency_ns = 5000.0) ?(bandwidth_gbps = 10.0) ?(loss = 0.0)
    ?(duplicate = 0.0) ?(seed = 0x5eed) () =
  if loss < 0.0 || loss >= 1.0 || duplicate < 0.0 || duplicate >= 1.0 then
    invalid_arg "Wire.create_pair: probabilities must be in [0,1)";
  let rng = Uksim.Rng.create seed in
  let a = make engine ~latency_ns ~bandwidth_gbps ~loss ~duplicate ~rng in
  let b = make engine ~latency_ns ~bandwidth_gbps ~loss ~duplicate ~rng:(Uksim.Rng.split rng) in
  a.peer <- Some b;
  b.peer <- Some a;
  (a, b)

let deliver ep nb =
  ep.rx_frames <- ep.rx_frames + 1;
  ep.rx_bytes <- ep.rx_bytes + Netbuf.len nb;
  ep.rx_digest <- (ep.rx_digest * 0x100000001b3) lxor Netbuf.payload_hash nb land max_int;
  match ep.receiver with Some f -> f nb | None -> Netbuf.recycle nb

let rec transmit ep peer nb =
  let now = Uksim.Clock.cycles (Uksim.Engine.clock ep.engine) in
  (* Serialize on the line: a frame occupies the wire for its
     transmission time at line rate. *)
  let start = max now ep.line_free_at in
  let tx_time = int_of_float (ceil (float_of_int (Netbuf.len nb) *. ep.cycles_per_byte)) in
  ep.line_free_at <- start + tx_time;
  Uksim.Engine.at ep.engine (start + tx_time + ep.latency_cycles) (fun () -> deliver peer nb);
  if ep.duplicate > 0.0 && Uksim.Rng.float ep.rng 1.0 < ep.duplicate then
    (* A duplicated frame occupies the line again; the duplicate shares
       the original's storage (the wire does not copy). *)
    transmit ep peer (Netbuf.share nb)

let send ep nb =
  match ep.peer with
  | None -> invalid_arg "Wire.send: unconnected endpoint"
  | Some peer ->
      ep.tx_frames <- ep.tx_frames + 1;
      if ep.loss > 0.0 && Uksim.Rng.float ep.rng 1.0 < ep.loss then begin
        ep.dropped <- ep.dropped + 1;
        Netbuf.recycle nb
      end
      else transmit ep peer nb

let set_receiver ep f = ep.receiver <- f
let attach_sink ep = ep.receiver <- None
let attach_echo ep = ep.receiver <- Some (fun nb -> send ep nb)

(* Deprecated bytes shims: kept for test edges; both charge the copy
   counters (of_bytes / copy_out are counted materializations). *)
let send_bytes ep frame = send ep (Netbuf.of_bytes frame)

let set_receiver_bytes ep f =
  set_receiver ep
    (Option.map
       (fun f nb ->
         let payload = Netbuf.copy_out nb in
         Netbuf.recycle nb;
         f payload)
       f)

let rx_frames ep = ep.rx_frames
let rx_bytes ep = ep.rx_bytes
let rx_digest ep = ep.rx_digest
let tx_frames ep = ep.tx_frames

let dropped_frames ep = ep.dropped

let reset_counters ep =
  ep.rx_frames <- 0;
  ep.rx_bytes <- 0;
  ep.rx_digest <- 0;
  ep.tx_frames <- 0;
  ep.dropped <- 0
