(** An lwIP-class TCP/IP stack over the uknetdev API.

    One instance binds one {!Uknetdev.Netdev.t} queue, owns (or shares) a
    netbuf pool (the paper's "memory pools in Unikraft's networking
    stack"), answers ARP and ICMP echo, and offers UDP and TCP sockets.
    Packet processing happens in {!poll} — either called directly from a
    run-to-completion application loop, or by the service thread {!start}
    spawns when a scheduler is available (woken by the device's rx
    interrupt).

    The datapath currency is {!Uknetdev.Netbuf.t}: by default RX hands the
    driver ring's descriptors straight to the stack ([Zero_copy]), headers
    are parsed in place, and in-order TCP payload can be consumed in place
    by a connection rx sink — the zero-copy run-to-completion fast path.
    The legacy socket API remains as the copy path; its materializations
    are explicit, counted calls.

    All per-layer processing charges calibrated cycle costs to the stack's
    clock, so socket-API throughput measurements include the full stack
    traversal the paper attributes to lwIP. *)

type conf = {
  mac : Addr.Mac.t;
  ip : Addr.Ipv4.t;
  netmask : Addr.Ipv4.t;
  gateway : Addr.Ipv4.t option;
}

type t

type stats = {
  rx_eth : int;
  rx_arp : int;
  rx_icmp : int;
  rx_udp : int;
  rx_tcp : int;
  rx_drop : int;  (** undecodable / no socket / checksum failures *)
  tx_pkts : int;
  arp_requests : int;
}

val create :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  ?sched:Uksched.Sched.t ->
  ?alloc:Ukalloc.Alloc.t ->
  dev:Uknetdev.Netdev.t ->
  ?qid:int ->
  ?pool_size:int ->
  ?rx_batch:int ->
  ?rx_copy:bool ->
  ?tx_coalesce:bool ->
  ?pool:Uknetdev.Netbuf.Pool.t ->
  conf ->
  t
(** Configures queue [qid] of [dev] (default 0; polling mode — {!start}
    switches it to interrupt mode). In multi-queue RSS setups one stack
    instance owns each queue, all sharing the device's MAC/IP. [pool_size]
    netbufs are pre-allocated (default 512), backed by [alloc] when given —
    the paper's "memory pools in the networking stack" — unless an external
    [pool] is supplied (the shared-pool ablation passes one pool to every
    stack). [rx_batch] bounds descriptors per {!poll} (default 64; 1 =
    batching ablated). [rx_copy] reverts RX to the legacy copy-out-of-the-
    ring path. [tx_coalesce] defers frames transmitted inside a poll window
    into one burst (one doorbell). Bring-up charges lwIP-scale init
    cost. *)

val conf : t -> conf
val stats : t -> stats

val poll : t -> int
(** Drain and process pending receive packets and due timers; returns the
    number of packets handled. *)

val start : t -> unit
(** Spawn the interrupt-driven input service thread (requires a
    scheduler). *)

val alloc_buf : t -> Uknetdev.Netbuf.t
(** Take a TX buffer from the stack's pool (heap fallback when exhausted).
    Fast-path handlers fill it and hand it to {!Tcp_socket.send_nb}. *)

(** {1 UDP sockets} *)

module Udp_socket : sig
  type stack := t
  type t

  val bind : stack -> port:int -> t
  (** Raises [Invalid_argument] if the port is taken or out of range. *)

  val sendto : t -> dst:Addr.Ipv4.t * int -> bytes -> unit
  val recvfrom : ?block:bool -> t -> (Addr.Ipv4.t * int * bytes) option
  (** [block:true] (default false) parks the thread until a datagram
      arrives (requires a scheduler). *)

  val pending : t -> int
  val close : t -> unit
end

(** {1 TCP sockets} *)

module Tcp_socket : sig
  type stack := t
  type listener
  type flow = Tcp.conn

  val listen : stack -> port:int -> ?backlog:int -> unit -> listener
  val accept : ?block:bool -> listener -> flow option

  val set_fast_accept : listener -> (flow -> unit) option -> unit
  (** Run-to-completion accept: each new connection is handed to this hook
      from within packet processing (typically to install a
      {!Tcp.set_rx_sink}) instead of being queued for blocking
      {!accept}. *)

  val connect : stack -> ?lport:int -> dst:Addr.Ipv4.t * int -> unit -> flow
  (** Blocks (scheduler) or spins (no scheduler) until established; raises
      [Failure] if the connection is refused/aborted. [lport] forces the
      source port (so clients can steer the flow's RSS hash to a chosen
      queue); raises [Invalid_argument] if it is out of range or already
      used for this destination. Default: a fresh ephemeral port. *)

  val send : ?block:bool -> stack -> flow -> bytes -> int
  (** Bytes accepted into the send buffer. [block:true] waits for buffer
      space until everything is queued. *)

  val send_nb : stack -> flow -> Uknetdev.Netbuf.t -> int
  (** Zero-copy send: ownership of the buffer passes to TCP (see
      {!Tcp.send_nb}); no socket-layer enqueue cost. *)

  val recv : ?block:bool -> stack -> flow -> max:int -> bytes option
  (** [Some data] (non-empty) when in-order data is available; [None] at
      EOF (peer closed, queue drained). When the queue is merely empty:
      [block:true] parks the thread until data or EOF; [block:false]
      (default) returns [Some Bytes.empty] as a would-block marker. *)

  val close : stack -> flow -> unit
  val state : flow -> Tcp.state
end
