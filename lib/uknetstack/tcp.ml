module Nb = Uknetdev.Netbuf

type state =
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

let state_to_string = function
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"
  | Closed -> "CLOSED"

let mss = 1460
let default_window = 65535
let sndbuf_max = 65536
let rcvbuf_max = 65536
let rto_base_cycles = Uksim.Clock.cycles_of_ns 2.0e8 (* 200 ms *)
let max_retransmits = 10 (* give-up threshold (RFC 1122's R2) *)
let msl_cycles = Uksim.Clock.cycles_of_ns 1.0e9
let seg_proc_cost = 160 (* state-machine work per segment *)

(* 32-bit sequence arithmetic. *)
let seq_add a n = (a + n) land 0xffffffff
let seq_diff a b = (a - b) land 0xffffffff
let seq_lt a b = seq_diff b a < 0x80000000 && a <> b
let seq_le a b = a = b || seq_lt a b

(* What a queued/in-flight segment carries. [Zc] segments keep a descriptor
   onto the sender's buffer: the first transmission shares it (an indirect
   mbuf under the wire's storage), a retransmission pays an explicit,
   counted copy — loss recovery is the quarantined slow path. *)
type seg_payload = Plain of bytes | Zc of Nb.t

type seg = { sseq : int; pl : seg_payload; plen : int; syn : bool; fin : bool }

(* What goes down to the IP layer per transmitted segment. [Tx_netbuf] is
   consumed by the callee (headers are pushed into its headroom, the
   descriptor rides the TX ring). *)
type tx_payload = Tx_bytes of bytes | Tx_netbuf of Nb.t

type conn = {
  io : io;
  local : Addr.Ipv4.t * int;
  mutable remote : Addr.Ipv4.t * int;
  mutable st : state;
  (* send side *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_wnd : int;
  sendq : Buffer.t; (* app data not yet segmented (legacy bytes path) *)
  zc_sendq : Nb.t Queue.t; (* whole-buffer sends awaiting window room *)
  mutable inflight : seg list; (* oldest first *)
  mutable fin_queued : bool;
  mutable fin_seq : int option;
  (* receive side *)
  mutable rcv_nxt : int;
  recvq : bytes Queue.t;
  mutable recvq_head_off : int;
  mutable recvq_bytes : int;
  mutable fin_received : bool;
  mutable rx_sink : (Nb.t -> unit) option; (* fast path: in-order data handler *)
  (* timers / loss recovery *)
  mutable timer_deadline : int option;
  mutable backoff : int;
  mutable attempts : int; (* consecutive RTOs without progress *)
  mutable dupacks : int;
  mutable retransmits : int;
  mutable fast_retransmits : int;
  (* blocked application threads *)
  mutable recv_waiter : Uksched.Sched.tid option;
  mutable send_waiter : Uksched.Sched.tid option;
  mutable connect_waiter : Uksched.Sched.tid option;
}

and io = {
  now_cycles : unit -> int;
  charge : int -> unit;
  tx_segment : conn -> Pkt.Tcp.t -> tx_payload -> unit;
  set_timer : conn -> delay_cycles:int -> unit;
  wake : Uksched.Sched.tid -> unit;
  notify_accept : conn -> unit;
}

let state c = c.st
let local_addr c = c.local
let remote_addr c = c.remote
let stats_retransmits c = c.retransmits
let stats_fast_retransmits c = c.fast_retransmits
let set_recv_waiter c w = c.recv_waiter <- w
let set_send_waiter c w = c.send_waiter <- w
let set_connect_waiter c w = c.connect_waiter <- w
let set_rx_sink c f = c.rx_sink <- f

let wake_opt c wref =
  match wref with
  | Some tid -> c.io.wake tid
  | None -> ()

let rcv_window c = max 0 (rcvbuf_max - c.recvq_bytes)

(* Release the buffer a segment holds (if any) — acknowledged, aborted, or
   given-up segments must hand their storage back to the driver pool. *)
let drop_seg s = match s.pl with Zc nb -> Nb.recycle nb | Plain _ -> ()

let drop_inflight c =
  List.iter drop_seg c.inflight;
  c.inflight <- []

let drop_pending c =
  drop_inflight c;
  while not (Queue.is_empty c.zc_sendq) do
    Nb.recycle (Queue.pop c.zc_sendq)
  done

let header c ~syn ~ack_flag ~fin ~rst ~psh ~seq =
  {
    Pkt.Tcp.src_port = snd c.local;
    dst_port = snd c.remote;
    seq;
    ack = c.rcv_nxt;
    syn;
    ack_flag;
    fin;
    rst;
    psh;
    window = min (rcv_window c) 0xffff;
  }

let tx c ?(syn = false) ?(ack_flag = true) ?(fin = false) ?(rst = false) ?(psh = false) ~seq
    payload =
  c.io.tx_segment c (header c ~syn ~ack_flag ~fin ~rst ~psh ~seq) payload

let send_ack c = tx c ~seq:c.snd_nxt (Tx_bytes Bytes.empty)

let arm_timer c delay =
  let deadline = c.io.now_cycles () + delay in
  c.timer_deadline <- Some deadline;
  c.io.set_timer c ~delay_cycles:delay

let disarm_timer c = c.timer_deadline <- None

let make io ~local ~remote ~st =
  {
    io;
    local;
    remote;
    st;
    snd_una = 0;
    snd_nxt = 0;
    snd_wnd = default_window;
    sendq = Buffer.create 1024;
    zc_sendq = Queue.create ();
    inflight = [];
    fin_queued = false;
    fin_seq = None;
    rcv_nxt = 0;
    recvq = Queue.create ();
    recvq_head_off = 0;
    recvq_bytes = 0;
    fin_received = false;
    rx_sink = None;
    timer_deadline = None;
    backoff = 1;
    attempts = 0;
    dupacks = 0;
    retransmits = 0;
    fast_retransmits = 0;
    recv_waiter = None;
    send_waiter = None;
    connect_waiter = None;
  }

let create_listen io ~local = make io ~local ~remote:(Addr.Ipv4.any, 0) ~st:Listen

let transmit_seg ?(rexmit = false) c (s : seg) =
  let payload =
    match s.pl with
    | Plain b -> Tx_bytes b
    | Zc nb ->
        (* First transmission: share the descriptor — the wire DMAs out of
           the sender's storage. Retransmission: the original share may
           still sit in a rx ring somewhere; duplicate onto fresh storage
           (explicit, counted — the quarantined copy). *)
        if rexmit then Tx_netbuf (Nb.copy nb) else Tx_netbuf (Nb.share nb)
  in
  tx c ~syn:s.syn ~ack_flag:(not s.syn || c.st <> Syn_sent) ~fin:s.fin ~psh:(s.plen > 0)
    ~seq:s.sseq payload

(* Push queued application data (bytes first, then whole-buffer zero-copy
   sends, then a queued FIN) into segments as far as the peer's advertised
   window allows. *)
let rec pump c =
  let in_flight = seq_diff c.snd_nxt c.snd_una in
  let window_room = c.snd_wnd - in_flight in
  if Buffer.length c.sendq > 0 && window_room > 0 then begin
    let n = min (min mss (Buffer.length c.sendq)) window_room in
    let payload = Bytes.of_string (String.sub (Buffer.contents c.sendq) 0 n) in
    let rest = String.sub (Buffer.contents c.sendq) n (Buffer.length c.sendq - n) in
    Buffer.clear c.sendq;
    Buffer.add_string c.sendq rest;
    let s = { sseq = c.snd_nxt; pl = Plain payload; plen = n; syn = false; fin = false } in
    c.snd_nxt <- seq_add c.snd_nxt n;
    c.inflight <- c.inflight @ [ s ];
    transmit_seg c s;
    if c.timer_deadline = None then arm_timer c (rto_base_cycles * c.backoff);
    pump c
  end
  else if
    Buffer.length c.sendq = 0
    && (not (Queue.is_empty c.zc_sendq))
    && window_room >= Nb.len (Queue.peek c.zc_sendq)
  then begin
    let nb = Queue.pop c.zc_sendq in
    let n = Nb.len nb in
    let s = { sseq = c.snd_nxt; pl = Zc nb; plen = n; syn = false; fin = false } in
    c.snd_nxt <- seq_add c.snd_nxt n;
    c.inflight <- c.inflight @ [ s ];
    transmit_seg c s;
    if c.timer_deadline = None then arm_timer c (rto_base_cycles * c.backoff);
    pump c
  end
  else if
    Buffer.length c.sendq = 0
    && Queue.is_empty c.zc_sendq
    && c.fin_queued && c.fin_seq = None
    && (c.st = Fin_wait_1 || c.st = Last_ack || c.st = Closing)
  then begin
    let s = { sseq = c.snd_nxt; pl = Plain Bytes.empty; plen = 0; syn = false; fin = true } in
    c.fin_seq <- Some c.snd_nxt;
    c.snd_nxt <- seq_add c.snd_nxt 1;
    c.inflight <- c.inflight @ [ s ];
    transmit_seg c s;
    if c.timer_deadline = None then arm_timer c (rto_base_cycles * c.backoff)
  end

let send_syn c =
  let s = { sseq = c.snd_nxt; pl = Plain Bytes.empty; plen = 0; syn = true; fin = false } in
  c.snd_nxt <- seq_add c.snd_nxt 1;
  c.inflight <- [ s ];
  (* SYN and SYN+ACK forms differ: in SYN_SENT no ack flag. *)
  (match c.st with
  | Syn_sent -> tx c ~syn:true ~ack_flag:false ~seq:s.sseq (Tx_bytes Bytes.empty)
  | Syn_rcvd | Listen | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
  | Time_wait | Closed ->
      tx c ~syn:true ~seq:s.sseq (Tx_bytes Bytes.empty));
  arm_timer c (rto_base_cycles * c.backoff)

let create_active io ~local ~remote ~iss =
  let c = make io ~local ~remote ~st:Syn_sent in
  c.snd_una <- iss;
  c.snd_nxt <- iss;
  send_syn c;
  c

let derive_passive listener ~remote ~iss ~peer_seq =
  let c = make listener.io ~local:listener.local ~remote ~st:Syn_rcvd in
  c.snd_una <- iss;
  c.snd_nxt <- iss;
  c.rcv_nxt <- seq_add peer_seq 1;
  send_syn c;
  c

(* --- ACK processing -------------------------------------------------- *)

let handle_ack c (h : Pkt.Tcp.t) =
  if not h.ack_flag then ()
  else if seq_lt c.snd_una h.ack && seq_le h.ack c.snd_nxt then begin
    c.snd_una <- h.ack;
    c.dupacks <- 0;
    c.backoff <- 1;
    c.attempts <- 0;
    let keep, acked =
      List.partition
        (fun s ->
          let seg_end = seq_add s.sseq (s.plen + if s.syn || s.fin then 1 else 0) in
          seq_lt h.ack seg_end)
        c.inflight
    in
    List.iter drop_seg acked;
    c.inflight <- keep;
    if c.inflight = [] then disarm_timer c else arm_timer c rto_base_cycles;
    wake_opt c c.send_waiter;
    (* Our FIN acknowledged? *)
    match c.fin_seq with
    | Some fseq when seq_lt fseq h.ack -> (
        match c.st with
        | Fin_wait_1 -> c.st <- Fin_wait_2
        | Closing ->
            c.st <- Time_wait;
            arm_timer c (2 * msl_cycles)
        | Last_ack ->
            c.st <- Closed;
            disarm_timer c;
            wake_opt c c.recv_waiter
        | Listen | Syn_sent | Syn_rcvd | Established | Fin_wait_2 | Close_wait | Time_wait
        | Closed ->
            ())
    | Some _ | None -> ()
  end
  else if h.ack = c.snd_una && c.inflight <> [] then begin
    c.dupacks <- c.dupacks + 1;
    if c.dupacks = 3 then begin
      (* Fast retransmit of the oldest outstanding segment. *)
      c.dupacks <- 0;
      c.fast_retransmits <- c.fast_retransmits + 1;
      match c.inflight with
      | s :: _ -> transmit_seg ~rexmit:true c s
      | [] -> ()
    end
  end

(* --- receive-side data ------------------------------------------------ *)

let deliver_data c payload =
  Queue.push payload c.recvq;
  c.recvq_bytes <- c.recvq_bytes + Bytes.length payload;
  wake_opt c c.recv_waiter

(* Consumes [nb]. In-order data either runs the connection's rx sink in
   place (fast path: the handler parses the payload window and usually
   answers inside the same call — in which case its data segment already
   carried our ACK and the pure ACK is suppressed), or is materialized into
   the socket receive queue (legacy path — an explicit, counted copy). *)
let handle_data_nb c (h : Pkt.Tcp.t) nb =
  let len = Nb.len nb in
  if len = 0 then Nb.recycle nb
  else if h.seq = c.rcv_nxt && len <= rcv_window c then begin
    c.rcv_nxt <- seq_add c.rcv_nxt len;
    match c.rx_sink with
    | Some sink when c.st = Established ->
        let snd_nxt_before = c.snd_nxt in
        sink nb;
        if c.snd_nxt = snd_nxt_before then send_ack c
    | Some _ | None ->
        deliver_data c (Nb.copy_out nb);
        Nb.recycle nb;
        send_ack c
  end
  else begin
    (* Out of order, retransmitted overlap, or no buffer space: drop and
       re-advertise our expectation (duplicate ACK). *)
    Nb.recycle nb;
    send_ack c
  end

let handle_fin c (h : Pkt.Tcp.t) payload_len =
  if h.fin then begin
    let fin_seq = seq_add h.seq payload_len in
    if fin_seq = c.rcv_nxt then begin
      c.rcv_nxt <- seq_add c.rcv_nxt 1;
      c.fin_received <- true;
      (match c.st with
      | Established -> c.st <- Close_wait
      | Fin_wait_1 ->
          (* Our FIN not yet acked: simultaneous close. *)
          c.st <- Closing
      | Fin_wait_2 ->
          c.st <- Time_wait;
          arm_timer c (2 * msl_cycles)
      | Listen | Syn_sent | Syn_rcvd | Close_wait | Closing | Last_ack | Time_wait | Closed -> ());
      send_ack c;
      wake_opt c c.recv_waiter
    end
    else send_ack c
  end

(* Consumes [nb] (exactly one release on every path). *)
let on_segment_nb c (h : Pkt.Tcp.t) nb =
  c.io.charge seg_proc_cost;
  let plen = Nb.len nb in
  if h.rst then begin
    Nb.recycle nb;
    c.st <- Closed;
    drop_pending c;
    disarm_timer c;
    wake_opt c c.recv_waiter;
    wake_opt c c.send_waiter;
    wake_opt c c.connect_waiter
  end
  else begin
    c.snd_wnd <- h.window;
    match c.st with
    | Syn_sent ->
        if h.syn && h.ack_flag && h.ack = c.snd_nxt then begin
          c.snd_una <- h.ack;
          c.rcv_nxt <- seq_add h.seq 1;
          drop_inflight c;
          disarm_timer c;
          c.st <- Established;
          send_ack c;
          wake_opt c c.connect_waiter
        end;
        Nb.recycle nb
    | Syn_rcvd ->
        if h.ack_flag && h.ack = c.snd_nxt then begin
          c.snd_una <- h.ack;
          drop_inflight c;
          disarm_timer c;
          c.st <- Established;
          c.io.notify_accept c;
          handle_data_nb c h nb;
          handle_fin c h plen
        end
        else Nb.recycle nb
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack | Time_wait ->
        handle_ack c h;
        (match c.st with
        | Established | Fin_wait_1 | Fin_wait_2 -> handle_data_nb c h nb
        | Listen | Syn_sent | Syn_rcvd | Close_wait | Closing | Last_ack | Time_wait | Closed ->
            Nb.recycle nb);
        handle_fin c h plen;
        pump c
    | Listen | Closed -> Nb.recycle nb
  end

(* Bytes-era edge (tests, trace replay): materializes a buffer — counted. *)
let on_segment c h payload = on_segment_nb c h (Nb.of_bytes payload)

let on_timer c =
  let due =
    match c.timer_deadline with
    | Some d -> c.io.now_cycles () >= d
    | None -> false
  in
  if due then begin
    disarm_timer c;
    match c.st with
    | Time_wait ->
        c.st <- Closed;
        wake_opt c c.recv_waiter
    | Listen | Closed -> ()
    | Syn_sent | Syn_rcvd | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
    | Last_ack -> (
        match c.inflight with
        | [] -> ()
        | s :: _ ->
            c.attempts <- c.attempts + 1;
            if c.attempts > max_retransmits then begin
              (* Peer unreachable: give up, as real TCP does after ~R2
                 retries (RFC 1122). *)
              c.st <- Closed;
              drop_pending c;
              wake_opt c c.recv_waiter;
              wake_opt c c.send_waiter;
              wake_opt c c.connect_waiter
            end
            else begin
              c.retransmits <- c.retransmits + 1;
              c.backoff <- min 64 (c.backoff * 2);
              transmit_seg ~rexmit:true c s;
              arm_timer c (rto_base_cycles * c.backoff)
            end)
  end

(* --- application interface -------------------------------------------- *)

let send_buffer_space c = max 0 (sndbuf_max - Buffer.length c.sendq)

let send c data =
  match c.st with
  | Established | Close_wait ->
      let n = min (Bytes.length data) (send_buffer_space c) in
      Buffer.add_subbytes c.sendq data 0 n;
      pump c;
      n
  | Listen | Syn_sent | Syn_rcvd | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait
  | Closed ->
      0

(* Zero-copy send: the connection takes ownership of [nb] and transmits it
   as one segment when the window allows. Buffers larger than one MSS fall
   back to the byte path (counted copy) — the fast path's callers size
   their replies under the MSS. *)
let send_nb c nb =
  match c.st with
  | Established | Close_wait ->
      let n = Nb.len nb in
      if n > mss then begin
        let data = Nb.copy_out nb in
        Nb.recycle nb;
        send c data
      end
      else begin
        Queue.push nb c.zc_sendq;
        pump c;
        n
      end
  | Listen | Syn_sent | Syn_rcvd | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait
  | Closed ->
      Nb.recycle nb;
      0

let recv_available c = c.recvq_bytes
let recv_eof c = c.fin_received && c.recvq_bytes = 0

let recv c ~max:max_bytes =
  if max_bytes <= 0 then invalid_arg "Tcp.recv: max must be positive";
  if c.recvq_bytes = 0 then None
  else begin
    let window_was_closed = rcv_window c < mss in
    let out = Buffer.create (min max_bytes c.recvq_bytes) in
    let remaining = ref max_bytes in
    let continue = ref true in
    while !continue && !remaining > 0 do
      match Queue.peek_opt c.recvq with
      | None -> continue := false
      | Some chunk ->
          let avail = Bytes.length chunk - c.recvq_head_off in
          let take = min avail !remaining in
          Buffer.add_subbytes out chunk c.recvq_head_off take;
          remaining := !remaining - take;
          c.recvq_bytes <- c.recvq_bytes - take;
          if take = avail then begin
            ignore (Queue.pop c.recvq);
            c.recvq_head_off <- 0
          end
          else c.recvq_head_off <- c.recvq_head_off + take
    done;
    (* Window update: tell a stalled peer that buffer space reopened. *)
    if window_was_closed && rcv_window c >= mss && c.st <> Closed then send_ack c;
    Some (Buffer.to_bytes out)
  end

let close c =
  match c.st with
  | Established ->
      c.st <- Fin_wait_1;
      c.fin_queued <- true;
      pump c
  | Close_wait ->
      c.st <- Last_ack;
      c.fin_queued <- true;
      pump c
  | Syn_sent | Syn_rcvd | Listen ->
      c.st <- Closed;
      drop_pending c;
      disarm_timer c
  | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait | Closed -> ()

let abort c =
  (match c.st with
  | Closed | Listen -> ()
  | Syn_sent | Syn_rcvd | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
  | Last_ack | Time_wait ->
      tx c ~rst:true ~seq:c.snd_nxt (Tx_bytes Bytes.empty));
  c.st <- Closed;
  drop_pending c;
  disarm_timer c;
  wake_opt c c.recv_waiter;
  wake_opt c c.send_waiter;
  wake_opt c c.connect_waiter

(* --- equivalence digest ----------------------------------------------- *)

let int_of_state = function
  | Listen -> 0
  | Syn_sent -> 1
  | Syn_rcvd -> 2
  | Established -> 3
  | Fin_wait_1 -> 4
  | Fin_wait_2 -> 5
  | Close_wait -> 6
  | Closing -> 7
  | Last_ack -> 8
  | Time_wait -> 9
  | Closed -> 10

(* FNV-1a over the protocol-visible connection state — the zero-copy and
   copy datapaths must agree on this after processing the same traffic. *)
let state_hash c =
  let h = ref 0x2545f4914f6cdd1d in
  let mix v = h := (!h lxor (v land 0xffffffff)) * 0x100000001b3 in
  mix (int_of_state c.st);
  mix c.snd_una;
  mix c.snd_nxt;
  mix c.rcv_nxt;
  mix c.recvq_bytes;
  mix c.retransmits;
  mix c.fast_retransmits;
  mix (if c.fin_received then 1 else 0);
  mix (if c.fin_queued then 1 else 0);
  !h land max_int
