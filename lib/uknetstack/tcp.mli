(** TCP engine: connection state machines, retransmission, flow control.

    Transport-only logic, decoupled from IP/device concerns through an
    {!io} record the stack supplies (segment transmit, timer arming, thread
    wakeups). Implements the standard state diagram (LISTEN through
    TIME_WAIT), cumulative ACKs, receiver flow control, go-back-N
    retransmission with exponential backoff, and fast retransmit on three
    duplicate ACKs. Out-of-order segments are dropped and recovered by
    retransmission (lwIP-without-SACK behaviour); congestion control is
    omitted — the paper's evaluation runs on an uncongested direct link.

    The datapath currency is {!Uknetdev.Netbuf.t}: inbound segments arrive
    as descriptors ({!on_segment_nb}), outbound payloads leave as
    descriptors ({!send_nb}, [Tx_netbuf]). In-order data can be consumed in
    place by a per-connection rx sink ({!set_rx_sink}) — the run-to-
    completion fast path — with the legacy socket receive queue (an
    explicit, counted copy) as fallback. *)

type state =
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait
  | Closed

val state_to_string : state -> string

type conn

type tx_payload =
  | Tx_bytes of bytes  (** legacy path: the IP layer materializes a buffer *)
  | Tx_netbuf of Uknetdev.Netbuf.t
      (** zero-copy path: ownership passes to the callee, which pushes
          headers into the descriptor's headroom and hands it to TX *)

type io = {
  now_cycles : unit -> int;
  charge : int -> unit;  (** burn guest cycles *)
  tx_segment : conn -> Pkt.Tcp.t -> tx_payload -> unit;
      (** hand a fully-specified segment (header template + payload) to the
          IP layer; ports are already filled in *)
  set_timer : conn -> delay_cycles:int -> unit;
      (** arm (or re-arm) the connection's retransmission timer; the stack
          must call {!on_timer} when it fires *)
  wake : Uksched.Sched.tid -> unit;
  notify_accept : conn -> unit;  (** a passive open reached ESTABLISHED *)
}

val mss : int
val default_window : int

(** {1 Connection lifecycle} *)

val create_listen : io -> local:Addr.Ipv4.t * int -> conn
(** A listening "template" connection; incoming SYNs clone it. *)

val create_active :
  io -> local:Addr.Ipv4.t * int -> remote:Addr.Ipv4.t * int -> iss:int -> conn
(** Active open: allocates the connection and transmits the SYN. *)

val derive_passive : conn -> remote:Addr.Ipv4.t * int -> iss:int -> peer_seq:int -> conn
(** Child connection for a SYN (with sequence number [peer_seq]) arriving
    at a listener: moves to SYN_RCVD and answers SYN+ACK. *)

val state : conn -> state
val local_addr : conn -> Addr.Ipv4.t * int
val remote_addr : conn -> Addr.Ipv4.t * int

(** {1 Input path} *)

val on_segment_nb : conn -> Pkt.Tcp.t -> Uknetdev.Netbuf.t -> unit
(** Process one inbound segment whose payload window is [nb] (header
    already validated/checksummed and pulled). Consumes the descriptor on
    every path: handed to the rx sink, copied (counted) into the receive
    queue, or recycled. *)

val on_segment : conn -> Pkt.Tcp.t -> bytes -> unit
(** Bytes-era edge: wraps the payload in a fresh netbuf ({e counted} when
    non-empty) and calls {!on_segment_nb}. *)

val on_timer : conn -> unit
(** Retransmission / TIME_WAIT timer callback. *)

val set_rx_sink : conn -> (Uknetdev.Netbuf.t -> unit) option -> unit
(** Fast-path delivery: in-order payload descriptors are handed to this
    sink (which takes ownership) instead of the socket receive queue. If
    the sink transmits on the same connection during the callback, that
    segment carries the ACK and the pure ACK is suppressed (piggyback). *)

(** {1 Application side} *)

val send : conn -> bytes -> int
(** Queue application data; returns bytes accepted (bounded by the send
    buffer). Transmits immediately as far as the peer's window allows. *)

val send_nb : conn -> Uknetdev.Netbuf.t -> int
(** Zero-copy send: takes ownership of the buffer and transmits it as one
    segment when the window allows (first transmission shares the storage;
    only a retransmission copies). Buffers over one MSS fall back to the
    counted byte path. Returns bytes accepted (0 — and the buffer is
    recycled — when the connection cannot send). *)

val send_buffer_space : conn -> int

val recv : conn -> max:int -> bytes option
(** Dequeue up to [max] bytes of in-order data; [None] when the queue is
    empty (check {!recv_eof} to distinguish would-block from EOF). Also
    sends a window update if consuming reopened a closed receive
    window. *)

val recv_available : conn -> int
val recv_eof : conn -> bool
(** Peer FIN received and queue drained. *)

val close : conn -> unit
(** Send FIN (half-close of our side). *)

val abort : conn -> unit
(** RST out, connection to CLOSED. *)

val state_hash : conn -> int
(** FNV-1a digest of the protocol-visible connection state (state, send
    and receive sequence space, loss-recovery counters). The zero-copy and
    copy datapaths must produce identical hashes for identical traffic —
    the equivalence property tests compare these. *)

(** {1 Blocking-support hooks (used by the stack's socket layer)} *)

val set_recv_waiter : conn -> Uksched.Sched.tid option -> unit
val set_send_waiter : conn -> Uksched.Sched.tid option -> unit
val set_connect_waiter : conn -> Uksched.Sched.tid option -> unit

val stats_retransmits : conn -> int
val stats_fast_retransmits : conn -> int
