module Nb = Uknetdev.Netbuf
module Nd = Uknetdev.Netdev

type conf = {
  mac : Addr.Mac.t;
  ip : Addr.Ipv4.t;
  netmask : Addr.Ipv4.t;
  gateway : Addr.Ipv4.t option;
}

type stats = {
  rx_eth : int;
  rx_arp : int;
  rx_icmp : int;
  rx_udp : int;
  rx_tcp : int;
  rx_drop : int;
  tx_pkts : int;
  arp_requests : int;
}

let zero_stats =
  { rx_eth = 0; rx_arp = 0; rx_icmp = 0; rx_udp = 0; rx_tcp = 0; rx_drop = 0; tx_pkts = 0;
    arp_requests = 0 }

(* Per-layer processing costs (cycles), lwIP-calibrated: the full socket
   path costs thousands of cycles per packet. *)
let eth_cost = 45
let ip_cost = 140
let udp_cost = 180
let tcp_demux_cost = 120
let sock_enqueue_cost = 220
let arp_cost = 60

type udp_sock = {
  uport : int;
  urxq : (Addr.Ipv4.t * int * bytes) Queue.t;
  mutable uwaiter : Uksched.Sched.tid option;
  mutable uclosed : bool;
}

type listener = {
  lport : int;
  lconn : Tcp.conn;
  backlog : int;
  acceptq : Tcp.conn Queue.t;
  mutable lwaiter : Uksched.Sched.tid option;
  mutable lfast : (Tcp.conn -> unit) option;
      (* fast-accept hook: new connections are handed here (run-to-
         completion setup, e.g. installing an rx sink) instead of being
         queued for a blocking accept. *)
}

type t = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  sched : Uksched.Sched.t option;
  dev : Nd.t;
  qid : int; (* the device queue this stack owns (multi-queue RSS setups) *)
  cfg : conf;
  pool : Nb.Pool.t;
  rx_batch : int;
  rx_copy : bool; (* legacy RX: copy each frame out of the ring *)
  tx_coalesce : bool;
  txq : Nb.t Queue.t; (* frames deferred to the poll-window flush *)
  mutable coalescing : bool; (* inside a poll window right now *)
  arp_table : (int, Addr.Mac.t) Hashtbl.t;
  arp_waiting : (int, (Addr.Mac.t -> unit) list) Hashtbl.t;
  udp_socks : (int, udp_sock) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  conns : (int * int * int, Tcp.conn) Hashtbl.t; (* local port, remote ip, remote port *)
  mutable conn_of : (Tcp.conn * listener option) list; (* reverse: for accept routing *)
  frag : Frag.t;
  mutable ip_id : int;
  mutable iss : int;
  mutable next_port : int;
  mutable st : stats;
  mutable service_tid : Uksched.Sched.tid option;
  mutable tcp_io : Tcp.io option;
}

let conf t = t.cfg
let stats t = t.st
let charge t c = Uksim.Clock.advance t.clock c
let drop t = t.st <- { t.st with rx_drop = t.st.rx_drop + 1 }

(* The pool may be shared between stacks (ablation); always charge this
   stack's own clock for pool traffic. *)
let take_buf t =
  match Nb.Pool.take ~clock:t.clock t.pool with
  | Some nb -> nb
  | None -> Nb.alloc ~size:2048 () (* pool exhausted: fall back to heap *)

let alloc_buf = take_buf

(* --- transmit path ----------------------------------------------------- *)

(* Ownership handoff: the device ring takes the descriptor. Inside a poll
   window frames are coalesced into one burst (one doorbell); outside it —
   timer retransmits, ARP — they go out immediately, which keeps progress
   independent of the poll loop. *)
let tx_frame t nb =
  if t.coalescing then Queue.push nb t.txq
  else begin
    let sent = t.dev.Nd.tx_burst ~qid:t.qid [| nb |] in
    if sent = 1 then t.st <- { t.st with tx_pkts = t.st.tx_pkts + 1 } else Nb.recycle nb
  end

let flush_tx t =
  if not (Queue.is_empty t.txq) then begin
    let pkts = Array.init (Queue.length t.txq) (fun _ -> Queue.pop t.txq) in
    let sent = t.dev.Nd.tx_burst ~qid:t.qid pkts in
    t.st <- { t.st with tx_pkts = t.st.tx_pkts + sent };
    for i = sent to Array.length pkts - 1 do
      Nb.recycle pkts.(i)
    done
  end

let send_arp t ~op ~tha ~tpa =
  let nb = take_buf t in
  charge t arp_cost;
  Pkt.Arp.encode { op; sha = t.cfg.mac; spa = t.cfg.ip; tha; tpa } nb;
  Pkt.Eth.encode
    { dst = (if Addr.Mac.is_broadcast tha then Addr.Mac.broadcast else tha);
      src = t.cfg.mac; proto = Pkt.Eth.Arp }
    nb;
  tx_frame t nb

(* Resolve the next-hop MAC for [dst], then call [k mac]. Queues behind an
   ARP request when unresolved; the request is retried (the wire may drop
   it) and parked packets are dropped after the attempts run out. *)
let arp_retries = 5
let arp_retry_cycles = Uksim.Clock.cycles_of_ns 2.0e8 (* 200 ms *)

let rec arp_request t key next_hop attempt =
  if Hashtbl.mem t.arp_waiting key then
    if attempt > arp_retries then begin
      (* Unresolvable: drop whatever was parked (packet loss — the upper
         layers' timers own recovery). *)
      Hashtbl.remove t.arp_waiting key;
      drop t
    end
    else begin
      t.st <- { t.st with arp_requests = t.st.arp_requests + 1 };
      send_arp t ~op:Pkt.Arp.Request ~tha:Addr.Mac.broadcast ~tpa:next_hop;
      Uksim.Engine.after t.engine arp_retry_cycles (fun () ->
          arp_request t key next_hop (attempt + 1))
    end

let resolve t dst k =
  let next_hop =
    if Addr.Ipv4.same_subnet dst t.cfg.ip ~netmask:t.cfg.netmask then dst
    else match t.cfg.gateway with Some gw -> gw | None -> dst
  in
  let key = Addr.Ipv4.to_int next_hop in
  match Hashtbl.find_opt t.arp_table key with
  | Some mac -> k mac
  | None ->
      let pending = match Hashtbl.find_opt t.arp_waiting key with Some l -> l | None -> [] in
      Hashtbl.replace t.arp_waiting key (k :: pending);
      if pending = [] then arp_request t key next_hop 1

let mtu = 1500
let max_ip_payload = mtu - Pkt.Ipv4.size (* 1480, already 8-byte aligned *)

let send_ip_packet t header nb =
  Pkt.Ipv4.encode header nb;
  charge t (Uksim.Cost.checksum Pkt.Ipv4.size);
  resolve t header.Pkt.Ipv4.dst (fun mac ->
      Pkt.Eth.encode { dst = mac; src = t.cfg.mac; proto = Pkt.Eth.Ipv4 } nb;
      charge t eth_cost;
      tx_frame t nb)

let output_ip t ~proto ~dst nb =
  charge t ip_cost;
  t.ip_id <- (t.ip_id + 1) land 0xffff;
  let base =
    { (Pkt.Ipv4.header ~src:t.cfg.ip ~dst ~proto ~payload_len:(Nb.len nb)) with
      Pkt.Ipv4.id = t.ip_id }
  in
  if Nb.len nb <= max_ip_payload then send_ip_packet t base nb
  else begin
    (* Fragment: RFC 791 — 8-byte-aligned offsets, MF on all but the
       tail. Fragmentation is off the fast path: explicit, counted
       copies. *)
    let payload = Nb.copy_out nb in
    Nb.recycle nb;
    let total = Bytes.length payload in
    let rec emit off =
      if off < total then begin
        let len = min max_ip_payload (total - off) in
        let fnb = take_buf t in
        Nb.copy_in fnb (Bytes.sub payload off len);
        charge t (Uksim.Cost.memcpy len);
        send_ip_packet t
          { base with Pkt.Ipv4.payload_len = len; frag_offset = off;
            more_frags = off + len < total }
          fnb;
        emit (off + len)
      end
    in
    emit 0
  end

(* --- TCP glue ----------------------------------------------------------- *)

let conn_key ~lport ~rip ~rport = (lport, Addr.Ipv4.to_int rip, rport)

let tcp_io t : Tcp.io =
  match t.tcp_io with
  | Some io -> io
  | None ->
      let io =
        {
          Tcp.now_cycles = (fun () -> Uksim.Clock.cycles t.clock);
          charge = (fun c -> charge t c);
          tx_segment =
            (fun conn hdr payload ->
              let rip, _ = Tcp.remote_addr conn in
              let nb =
                match payload with
                | Tcp.Tx_netbuf nb ->
                    (* Zero-copy: headers go into this descriptor's
                       headroom; the device DMAs out of the sender's
                       storage. *)
                    nb
                | Tcp.Tx_bytes b ->
                    (* Legacy/control path: materialize into a fresh pool
                       buffer (counted when the payload is non-empty). *)
                    let nb =
                      if Bytes.length b + 128 > 2048 then
                        Nb.alloc ~headroom:64 ~size:(Bytes.length b + 64) ()
                      else take_buf t
                    in
                    Nb.copy_in nb b;
                    nb
              in
              Pkt.Tcp.encode hdr ~src:t.cfg.ip ~dst:rip nb;
              charge t (Uksim.Cost.checksum (Nb.len nb));
              output_ip t ~proto:Pkt.Ipv4.Tcp ~dst:rip nb);
          set_timer =
            (fun conn ~delay_cycles ->
              Uksim.Engine.after t.engine delay_cycles (fun () -> Tcp.on_timer conn));
          wake =
            (fun tid -> match t.sched with Some s -> Uksched.Sched.wake s tid | None -> ());
          notify_accept =
            (fun conn ->
              match List.assq_opt conn t.conn_of with
              | Some (Some l) -> (
                  match l.lfast with
                  | Some f -> f conn
                  | None ->
                      if Queue.length l.acceptq < l.backlog then begin
                        Queue.push conn l.acceptq;
                        match (t.sched, l.lwaiter) with
                        | Some s, Some tid -> Uksched.Sched.wake s tid
                        | (Some _ | None), _ -> ()
                      end
                      else Tcp.abort conn)
              | Some None | None -> ());
        }
      in
      t.tcp_io <- Some io;
      io

let next_iss t =
  t.iss <- (t.iss + 64000) land 0xffffffff;
  t.iss

(* --- receive path -------------------------------------------------------

   Every handler below CONSUMES its netbuf: exactly one release (recycle,
   sink handoff, or counted materialization followed by recycle) on every
   path. The descriptor that leaves the driver ring is the same storage the
   application parses. *)

let handle_arp t nb =
  t.st <- { t.st with rx_arp = t.st.rx_arp + 1 };
  charge t arp_cost;
  (match Pkt.Arp.decode nb with
  | Error _ -> drop t
  | Ok a ->
      Hashtbl.replace t.arp_table (Addr.Ipv4.to_int a.spa) a.sha;
      (* Release any frames parked on this resolution. *)
      (match Hashtbl.find_opt t.arp_waiting (Addr.Ipv4.to_int a.spa) with
      | Some ks ->
          Hashtbl.remove t.arp_waiting (Addr.Ipv4.to_int a.spa);
          List.iter (fun k -> k a.sha) (List.rev ks)
      | None -> ());
      if a.op = Pkt.Arp.Request && Addr.Ipv4.equal a.tpa t.cfg.ip then
        send_arp t ~op:Pkt.Arp.Reply ~tha:a.sha ~tpa:a.spa);
  Nb.recycle nb

let handle_icmp t (ip : Pkt.Ipv4.t) nb =
  t.st <- { t.st with rx_icmp = t.st.rx_icmp + 1 };
  (match Pkt.Icmp.decode nb with
  | Error _ -> drop t
  | Ok { echo_reply = false; ident; seq } ->
      let reply = take_buf t in
      Nb.copy_in reply (Nb.copy_out nb);
      Pkt.Icmp.encode { echo_reply = true; ident; seq } reply;
      output_ip t ~proto:Pkt.Ipv4.Icmp ~dst:ip.src reply
  | Ok { echo_reply = true; _ } -> ());
  Nb.recycle nb

let handle_udp t (ip : Pkt.Ipv4.t) nb =
  charge t udp_cost;
  (match Pkt.Udp.decode ~src:ip.src ~dst:ip.dst nb with
  | Error _ -> drop t
  | Ok u -> (
      charge t (Uksim.Cost.checksum (Nb.len nb + Pkt.Udp.size));
      match Hashtbl.find_opt t.udp_socks u.dst_port with
      | None -> drop t
      | Some sock ->
          charge t sock_enqueue_cost;
          t.st <- { t.st with rx_udp = t.st.rx_udp + 1 };
          (* Socket API: materialize into the receive queue (counted). *)
          Queue.push (ip.src, u.src_port, Nb.copy_out nb) sock.urxq;
          (match (t.sched, sock.uwaiter) with
          | Some s, Some tid -> Uksched.Sched.wake s tid
          | (Some _ | None), _ -> ())));
  Nb.recycle nb

let handle_tcp t (ip : Pkt.Ipv4.t) nb =
  charge t tcp_demux_cost;
  charge t (Uksim.Cost.checksum (Nb.len nb));
  match Pkt.Tcp.decode ~src:ip.src ~dst:ip.dst nb with
  | Error _ ->
      drop t;
      Nb.recycle nb
  | Ok h -> (
      t.st <- { t.st with rx_tcp = t.st.rx_tcp + 1 };
      let key = conn_key ~lport:h.dst_port ~rip:ip.src ~rport:h.src_port in
      match Hashtbl.find_opt t.conns key with
      | Some conn ->
          Tcp.on_segment_nb conn h nb;
          if Tcp.state conn = Tcp.Closed then begin
            Hashtbl.remove t.conns key;
            t.conn_of <- List.filter (fun (c, _) -> c != conn) t.conn_of
          end
      | None -> (
          match Hashtbl.find_opt t.listeners h.dst_port with
          | Some l when h.syn && not h.ack_flag ->
              let conn =
                Tcp.derive_passive l.lconn ~remote:(ip.src, h.src_port) ~iss:(next_iss t)
                  ~peer_seq:h.seq
              in
              Hashtbl.replace t.conns key conn;
              t.conn_of <- (conn, Some l) :: t.conn_of;
              Nb.recycle nb
          | Some _ | None ->
              (* No socket: RST unless it is itself an RST. *)
              let payload_len = Nb.len nb in
              Nb.recycle nb;
              if not h.rst then begin
                let rnb = take_buf t in
                Nb.set_len rnb 0;
                Pkt.Tcp.encode
                  {
                    Pkt.Tcp.src_port = h.dst_port;
                    dst_port = h.src_port;
                    seq = (if h.ack_flag then h.ack else 0);
                    ack = (h.seq + payload_len + (if h.syn || h.fin then 1 else 0))
                          land 0xffffffff;
                    syn = false;
                    ack_flag = true;
                    fin = false;
                    rst = true;
                    psh = false;
                    window = 0;
                  }
                  ~src:t.cfg.ip ~dst:ip.src rnb;
                output_ip t ~proto:Pkt.Ipv4.Tcp ~dst:ip.src rnb
              end;
              drop t))

let process_frame t nb =
  t.st <- { t.st with rx_eth = t.st.rx_eth + 1 };
  charge t eth_cost;
  match Pkt.Eth.decode nb with
  | Error _ ->
      drop t;
      Nb.recycle nb
  | Ok eth -> (
      match eth.proto with
      | Pkt.Eth.Arp -> handle_arp t nb
      | Pkt.Eth.Ipv4 -> (
          charge t ip_cost;
          match Pkt.Ipv4.decode nb with
          | Error _ ->
              drop t;
              Nb.recycle nb
          | Ok ip ->
              if Addr.Ipv4.equal ip.dst t.cfg.ip || Addr.Ipv4.equal ip.dst Addr.Ipv4.broadcast
              then begin
                charge t (Uksim.Cost.checksum Pkt.Ipv4.size);
                let deliver ip nb =
                  match ip.Pkt.Ipv4.proto with
                  | Pkt.Ipv4.Icmp -> handle_icmp t ip nb
                  | Pkt.Ipv4.Udp -> handle_udp t ip nb
                  | Pkt.Ipv4.Tcp -> handle_tcp t ip nb
                  | Pkt.Ipv4.Unknown _ ->
                      drop t;
                      Nb.recycle nb
                in
                if Pkt.Ipv4.is_fragment ip then begin
                  charge t ip_cost (* reassembly bookkeeping *);
                  let r =
                    Frag.insert t.frag ~src:ip.src ~id:ip.id
                      ~proto:(Pkt.Ipv4.proto_number ip.proto) ~frag_offset:ip.frag_offset
                      ~more_frags:ip.more_frags (Nb.copy_out nb)
                  in
                  Nb.recycle nb;
                  match r with
                  | Frag.Pending -> ()
                  | Frag.Rejected _ -> drop t
                  | Frag.Complete payload ->
                      let rnb = Nb.alloc ~headroom:64 ~size:(Bytes.length payload) () in
                      Nb.copy_in rnb payload;
                      deliver
                        { ip with Pkt.Ipv4.payload_len = Bytes.length payload;
                          more_frags = false; frag_offset = 0 }
                        rnb
                end
                else deliver ip nb
              end
              else begin
                drop t;
                Nb.recycle nb
              end)
      | Pkt.Eth.Unknown _ ->
          drop t;
          Nb.recycle nb)

let poll t =
  Frag.expire t.frag;
  let pkts = t.dev.Nd.rx_burst ~qid:t.qid ~max:t.rx_batch in
  (match pkts with
  | [] -> ()
  | _ ->
      Uktrace.Tracer.span Uktrace.Tracer.default t.clock ~cat:"uknetstack" "rx_burst"
        (fun () ->
          if t.tx_coalesce then t.coalescing <- true;
          List.iter (fun nb -> process_frame t nb) pkts;
          t.coalescing <- false;
          flush_tx t));
  List.length pkts

let rx_alloc_of t () = Nb.Pool.take ~clock:t.clock t.pool

let rx_path_of t = if t.rx_copy then Nd.Copy_into (rx_alloc_of t) else Nd.Zero_copy

(* lwIP bring-up: memory pools, pcb tables, timers (~0.35 ms, part of the
   0.49 ms nginx boot floor in Fig 14). *)
let stack_init_cost = 1_250_000

let create ~clock ~engine ?sched ?alloc ~dev ?(qid = 0) ?(pool_size = 512) ?(rx_batch = 64)
    ?(rx_copy = false) ?(tx_coalesce = false) ?pool cfg =
  Uksim.Clock.advance clock stack_init_cost;
  let pool =
    match pool with
    | Some p -> p
    | None -> Nb.Pool.create ~clock ?alloc ~count:pool_size ~size:2048 ()
  in
  let t =
    {
      clock;
      engine;
      sched;
      dev;
      qid;
      cfg;
      pool;
      rx_batch = max 1 rx_batch;
      rx_copy;
      tx_coalesce;
      txq = Queue.create ();
      coalescing = false;
      arp_table = Hashtbl.create 32;
      arp_waiting = Hashtbl.create 8;
      udp_socks = Hashtbl.create 16;
      listeners = Hashtbl.create 8;
      conns = Hashtbl.create 64;
      conn_of = [];
      frag = Frag.create ~clock ();
      ip_id = 0;
      iss = 0x1000;
      next_port = 49152;
      st = zero_stats;
      service_tid = None;
      tcp_io = None;
    }
  in
  dev.Nd.configure_queue ~qid
    { Nd.rx_path = rx_path_of t; mode = Nd.Polling; rx_handler = None };
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"uknetstack" ~name:"stack"
       ~reset:(fun () -> t.st <- zero_stats)
       (fun () ->
         let rt = ref 0 and frt = ref 0 in
         Hashtbl.iter
           (fun _ c ->
             rt := !rt + Tcp.stats_retransmits c;
             frt := !frt + Tcp.stats_fast_retransmits c)
           t.conns;
         [
           ("rx_eth", Uktrace.Metric.Count t.st.rx_eth);
           ("rx_arp", Uktrace.Metric.Count t.st.rx_arp);
           ("rx_icmp", Uktrace.Metric.Count t.st.rx_icmp);
           ("rx_udp", Uktrace.Metric.Count t.st.rx_udp);
           ("rx_tcp", Uktrace.Metric.Count t.st.rx_tcp);
           ("rx_drop", Uktrace.Metric.Count t.st.rx_drop);
           ("tx_pkts", Uktrace.Metric.Count t.st.tx_pkts);
           ("arp_requests", Uktrace.Metric.Count t.st.arp_requests);
           ("tcp_retransmits", Uktrace.Metric.Count !rt);
           ("tcp_fast_retransmits", Uktrace.Metric.Count !frt);
         ]));
  t

let start t =
  match t.sched with
  | None -> invalid_arg "Stack.start: no scheduler available"
  | Some sched ->
      if t.service_tid = None then begin
        let tid =
          (* Pinned: the stack charges its home clock, so work stealing
             must not migrate it to another core. *)
          Uksched.Sched.spawn sched ~name:"netstack-input" ~daemon:true ~pinned:true (fun () ->
              let rec loop () =
                let n = poll t in
                if n > 0 then begin
                  Uksched.Sched.yield ();
                  loop ()
                end
                else begin
                  Uksched.Sched.block ();
                  loop ()
                end
              in
              loop ())
        in
        t.service_tid <- Some tid;
        (* Interrupt mode: the device wakes the service thread. *)
        t.dev.Nd.configure_queue ~qid:t.qid
          {
            Nd.rx_path = rx_path_of t;
            mode = Nd.Interrupt_driven;
            rx_handler = Some (fun () -> Uksched.Sched.wake sched tid);
          }
      end

(* --- UDP sockets -------------------------------------------------------- *)

module Udp_socket = struct
  type nonrec stack = t [@@warning "-34"]
  type nonrec t = { stack : stack; sock : udp_sock }

  let bind stack ~port =
    if port <= 0 || port > 0xffff then invalid_arg "Udp_socket.bind: bad port";
    if Hashtbl.mem stack.udp_socks port then invalid_arg "Udp_socket.bind: port in use";
    let sock = { uport = port; urxq = Queue.create (); uwaiter = None; uclosed = false } in
    Hashtbl.replace stack.udp_socks port sock;
    { stack; sock }

  let sendto { stack; sock } ~dst:(dip, dport) payload =
    if sock.uclosed then invalid_arg "Udp_socket.sendto: closed";
    charge stack udp_cost;
    (* Datagrams beyond the pool's buffer size (they will be fragmented
       at the IP layer) get a right-sized heap buffer. *)
    let nb =
      if Bytes.length payload + 128 > 2048 then
        Nb.alloc ~headroom:64 ~size:(Bytes.length payload + 64) ()
      else take_buf stack
    in
    Nb.copy_in nb payload;
    Pkt.Udp.encode { src_port = sock.uport; dst_port = dport } ~src:stack.cfg.ip ~dst:dip nb;
    charge stack (Uksim.Cost.checksum (Nb.len nb));
    output_ip stack ~proto:Pkt.Ipv4.Udp ~dst:dip nb

  let rec recvfrom ?(block = false) ({ stack; sock } as s) =
    match Queue.take_opt sock.urxq with
    | Some dgram ->
        charge stack sock_enqueue_cost;
        Some dgram
    | None ->
        if not block then None
        else begin
          (match stack.sched with
          | None -> invalid_arg "Udp_socket.recvfrom: blocking needs a scheduler"
          | Some _ -> ());
          sock.uwaiter <- Some (Uksched.Sched.self ());
          Uksched.Sched.block ();
          sock.uwaiter <- None;
          if sock.uclosed then None else recvfrom ~block s
        end

  let pending { sock; _ } = Queue.length sock.urxq

  let close { stack; sock } =
    sock.uclosed <- true;
    Hashtbl.remove stack.udp_socks sock.uport;
    match (stack.sched, sock.uwaiter) with
    | Some sch, Some tid -> Uksched.Sched.wake sch tid
    | (Some _ | None), _ -> ()
end

(* --- TCP sockets ---------------------------------------------------------- *)

module Tcp_socket = struct
  type nonrec stack = t [@@warning "-34"]
  type nonrec listener = listener
  type flow = Tcp.conn

  let listen stack ~port ?(backlog = 64) () =
    if port <= 0 || port > 0xffff then invalid_arg "Tcp_socket.listen: bad port";
    if Hashtbl.mem stack.listeners port then invalid_arg "Tcp_socket.listen: port in use";
    let lconn = Tcp.create_listen (tcp_io stack) ~local:(stack.cfg.ip, port) in
    let l =
      { lport = port; lconn; backlog; acceptq = Queue.create (); lwaiter = None; lfast = None }
    in
    Hashtbl.replace stack.listeners port l;
    l

  let set_fast_accept l f = l.lfast <- f

  let rec accept ?(block = false) l =
    match Queue.take_opt l.acceptq with
    | Some conn -> Some conn
    | None ->
        if not block then None
        else begin
          l.lwaiter <- Some (Uksched.Sched.self ());
          Uksched.Sched.block ();
          l.lwaiter <- None;
          accept ~block l
        end

  let fresh_port stack ~dst:(dip, dport) =
    (* Sequential ephemeral ports, skipping four-tuples still in use. *)
    let rec pick tries =
      if tries > 16384 then failwith "Tcp_socket.connect: ephemeral ports exhausted";
      let p = stack.next_port in
      stack.next_port <- (if p >= 65535 then 49152 else p + 1);
      if Hashtbl.mem stack.conns (conn_key ~lport:p ~rip:dip ~rport:dport) then pick (tries + 1)
      else p
    in
    pick 0

  let connect stack ?lport ~dst:(dip, dport) () =
    let lport =
      match lport with
      | None -> fresh_port stack ~dst:(dip, dport)
      | Some p ->
          if p <= 0 || p > 0xffff then invalid_arg "Tcp_socket.connect: bad lport";
          if Hashtbl.mem stack.conns (conn_key ~lport:p ~rip:dip ~rport:dport) then
            invalid_arg "Tcp_socket.connect: lport in use for this destination";
          p
    in
    let conn =
      Tcp.create_active (tcp_io stack) ~local:(stack.cfg.ip, lport) ~remote:(dip, dport)
        ~iss:(next_iss stack)
    in
    let key = conn_key ~lport ~rip:dip ~rport:dport in
    Hashtbl.replace stack.conns key conn;
    stack.conn_of <- (conn, None) :: stack.conn_of;
    (match stack.sched with
    | Some _ ->
        let rec wait () =
          match Tcp.state conn with
          | Tcp.Established -> ()
          | Tcp.Closed -> failwith "Tcp_socket.connect: connection refused"
          | Tcp.Syn_sent | Tcp.Syn_rcvd ->
              Tcp.set_connect_waiter conn (Some (Uksched.Sched.self ()));
              Uksched.Sched.block ();
              Tcp.set_connect_waiter conn None;
              wait ()
          | Tcp.Listen | Tcp.Fin_wait_1 | Tcp.Fin_wait_2 | Tcp.Close_wait | Tcp.Closing
          | Tcp.Last_ack | Tcp.Time_wait ->
              failwith "Tcp_socket.connect: unexpected state"
        in
        wait ()
    | None ->
        (* No scheduler: spin on the poll loop in virtual time. *)
        let deadline = Uksim.Clock.cycles stack.clock + Uksim.Clock.cycles_of_ns 5e9 in
        let rec spin () =
          match Tcp.state conn with
          | Tcp.Established -> ()
          | Tcp.Closed -> failwith "Tcp_socket.connect: connection refused"
          | _ ->
              if Uksim.Clock.cycles stack.clock > deadline then
                failwith "Tcp_socket.connect: timeout";
              Uksim.Clock.advance stack.clock 2000;
              ignore (poll stack);
              spin ()
        in
        spin ());
    conn

  let rec send ?(block = false) stack flow data =
    let n = Tcp.send flow data in
    charge stack sock_enqueue_cost;
    if (not block) || n = Bytes.length data then n
    else begin
      (* Wait for buffer space, then queue the remainder. *)
      Tcp.set_send_waiter flow (Some (Uksched.Sched.self ()));
      Uksched.Sched.block ();
      Tcp.set_send_waiter flow None;
      let rest = Bytes.sub data n (Bytes.length data - n) in
      n + send ~block stack flow rest
    end

  (* Fast path: hand a filled buffer straight to TCP — no socket-layer
     enqueue cost, no copy. *)
  let send_nb _stack flow nb = Tcp.send_nb flow nb

  let rec recv ?(block = false) stack flow ~max =
    charge stack sock_enqueue_cost;
    match Tcp.recv flow ~max with
    | Some data -> Some data
    | None ->
        if Tcp.recv_eof flow || Tcp.state flow = Tcp.Closed then None
        else if not block then Some Bytes.empty
        else begin
          Tcp.set_recv_waiter flow (Some (Uksched.Sched.self ()));
          Uksched.Sched.block ();
          Tcp.set_recv_waiter flow None;
          recv ~block stack flow ~max
        end

  let close _stack flow = Tcp.close flow
  let state flow = Tcp.state flow
end
