(** A Redis-like in-memory key-value server over the TCP stack (Figs 12
    and 18).

    Single-threaded event handling (Redis's model, which is why the paper
    pairs it with the cooperative scheduler). Values live in memory
    obtained from the configured ukalloc backend, so allocator choice
    shows up directly in sustained throughput. Supports PING, SET, GET,
    DEL, EXISTS, INCR, LPUSH, LRANGE, DBSIZE and FLUSHALL. *)

type t

type stats = { commands : int; hits : int; misses : int }

val create :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  alloc:Ukalloc.Alloc.t ->
  ?port:int ->
  ?core:int ->
  ?share_with:t ->
  ?persist:Ukstore.Store.t ->
  unit ->
  t
(** Spawns the accept thread (daemon, pinned) on [sched]; port defaults to
    6379. [share_with] reuses another instance's key space — SMP workers
    on per-core stacks then serve one logical database (commands and
    hit/miss counters stay per-worker; see {!sum_stats}). [core] (default
    0) labels this worker's tracepoints; stats also register as an
    ["ukapps.resp"] {!Uktrace.Registry} source.

    [persist] mirrors the string keyspace (SET/DEL/INCR/FLUSHALL) into a
    crash-consistent {!Ukstore.Store}: on creation the keyspace is
    hydrated from the store's last durable commit, and mutations
    write through (durable once {!persist_commit} — or a server-side
    auto-commit policy — runs). List keys stay memory-only. *)

val create_fast :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  alloc:Ukalloc.Alloc.t ->
  ?port:int ->
  ?core:int ->
  ?share_with:t ->
  ?persist:Ukstore.Store.t ->
  ?rtc:bool ->
  unit ->
  t
(** The zero-copy run-to-completion build: commands are parsed in place in
    the driver's ring buffer (per-connection {!Uknetstack.Tcp.set_rx_sink})
    with a specialized dispatch for the hot commands (PING/GET/SET/DEL/
    INCR; everything else falls back to the generic engine), and all
    replies for one received segment batch into minimal TX segments
    ({!Nbio}). [rtc:false] ablates run-to-completion by hopping each batch
    through a pinned worker thread. *)

val stats : t -> stats

val sum_stats : t list -> stats
(** Aggregate over SMP workers sharing one database. *)

val dbsize : t -> int

val persist_commit : t -> int option
(** Flush the mirrored keyspace to the backing store as one commit;
    [None] when no [persist] store is attached (or the commit failed).
    The returned commit hash is durable. *)

val state_hash : t -> int
(** Order-independent digest of the live string keyspace: two servers
    hold the same logical state iff the hashes agree, regardless of
    command interleaving. *)

val execute : t -> string list -> Resp.value
(** Run one command directly (bypassing the network) — used by unit
    tests. *)
