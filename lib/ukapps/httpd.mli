(** An nginx-like static HTTP/1.1 server (Figs 13, 14, 15, 22).

    Single worker, keep-alive connections, per-request buffers from the
    configured ukalloc backend (so Fig 15's allocator choice matters).
    Content can come from memory, through vfscore, or straight from SHFS
    (the Fig 22 specialization axis when combined with {!Webcache}). *)

type content =
  | In_memory of (string * string) list  (** path -> body *)
  | Via_vfs of Ukvfs.Vfs.t  (** open/read/close through vfscore *)
  | Via_shfs of Ukvfs.Shfs.t  (** direct hash-filesystem lookups *)

type t

type stats = {
  requests : int;
  errors_404 : int;
  errors_503 : int;
      (** requests shed in degraded mode (the per-request pool allocation
          failed — e.g. under a {!Ukfault.Faultalloc} OOM sweep) *)
  bytes_sent : int;
}

val default_page : string
(** The paper's 612-byte static page. *)

val create :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  alloc:Ukalloc.Alloc.t ->
  ?port:int ->
  ?core:int ->
  content ->
  t
(** Spawns the accept thread (daemon, pinned to [sched]'s core); port
    defaults to 80. Multi-worker SMP mode: create one instance per core,
    each on its own per-core stack/clock/alloc view — RSS then spreads
    connections across them like SO_REUSEPORT sharding. [core] (default 0)
    labels this worker's tracepoints; stats also register as an
    ["ukapps.httpd"] {!Uktrace.Registry} source. *)

val create_fast :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  alloc:Ukalloc.Alloc.t ->
  ?port:int ->
  ?core:int ->
  ?rtc:bool ->
  content ->
  t
(** The zero-copy run-to-completion build (Fig 14's netbuf port): requests
    are parsed in place in the driver's ring buffer from a per-connection
    {!Uknetstack.Tcp.set_rx_sink}, and replies are written straight into
    pool netbufs ({!Nbio}) handed down TX by ownership — the hot path
    makes no counted payload copies. Handlers run inside packet processing
    on the receiving core; [rtc:false] ablates that by hopping each
    request through a pinned worker thread. Requests that straddle a
    segment fall back to a counted-copy stash until the pipeline
    realigns. *)

val stats : t -> stats

val sum_stats : t list -> stats
(** Aggregate over SMP workers. *)
