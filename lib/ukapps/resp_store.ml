module S = Uknetstack.Stack
module St = Ukstore.Store

type entry = { addr : int; value : string }

type stats = { commands : int; hits : int; misses : int }

type t = {
  clock : Uksim.Clock.t;
  sched : Uksched.Sched.t;
  stack : S.t;
  alloc : Ukalloc.Alloc.t;
  table : (string, entry) Hashtbl.t;
  lists : (string, string list ref) Hashtbl.t;
  core : int; (* tracepoint lane; the owning core under SMP *)
  persist : St.t option;
      (* write-through merkle backing: the string keyspace (SET/DEL/INCR/
         FLUSHALL) mirrors into the crash-consistent store; list keys stay
         memory-only (Redis-without-AOF semantics for them) *)
  mutable commands : int;
  mutable hits : int;
  mutable misses : int;
}

let persist_set t k v =
  match t.persist with None -> () | Some st -> ignore (St.set st k v : (unit, _) result)

let persist_del t k =
  match t.persist with None -> () | Some st -> ignore (St.del st k : (bool, _) result)

(* Durability barrier: flush the mirrored keyspace as one commit. *)
let persist_commit t =
  match t.persist with
  | None -> None
  | Some st -> ( match St.commit st () with Ok h -> Some h | Error _ -> None)

(* Order-independent digest of the live string keyspace — two servers
   hold the same logical state iff the hashes agree, however the
   commands interleaved. *)
let state_hash t =
  Hashtbl.fold
    (fun k e acc ->
      acc lxor Ukvfs.Digest.mix (Ukvfs.Digest.string_hash k) (Ukvfs.Digest.string_hash e.value))
    t.table 0

(* Command-processing work besides allocation and hashing: dispatch
   table, argument parsing, reply formatting, dict bookkeeping — Redis
   spends a couple of thousand cycles per command outside the stack. *)
let cmd_cost = 2000
let hash_cost = 140

let charge t c = Uksim.Clock.advance t.clock c

let store_bytes t s =
  match Ukalloc.Alloc.uk_malloc t.alloc (max 16 (String.length s)) with
  | Some addr ->
      charge t (Uksim.Cost.memcpy (String.length s));
      Some { addr; value = s }
  | None -> None

let drop_entry t e = Ukalloc.Alloc.uk_free t.alloc e.addr

(* Redis allocates short-lived robj/SDS objects for each argument and
   the reply; routing them through ukalloc exposes allocator behaviour
   (Fig 18). *)
let with_cmd_objects t args f =
  let held =
    List.filter_map
      (fun a -> Ukalloc.Alloc.uk_malloc t.alloc (16 + String.length a))
      args
  in
  let r = f () in
  List.iter (Ukalloc.Alloc.uk_free t.alloc) held;
  r

let rec execute t args =
  Uktrace.Tracer.span Uktrace.Tracer.default t.clock ~core:t.core ~cat:"ukapps"
    "resp_command" (fun () -> execute_untraced t args)

and execute_untraced t args =
  t.commands <- t.commands + 1;
  charge t cmd_cost;
  with_cmd_objects t args @@ fun () ->
  let upper = String.uppercase_ascii in
  match args with
  | [] -> Resp.Error "ERR empty command"
  | cmd :: rest -> (
      match (upper cmd, rest) with
      | "PING", [] -> Resp.Simple "PONG"
      | "PING", [ msg ] -> Resp.Bulk msg
      | "SET", [ key; value ] -> (
          charge t hash_cost;
          match store_bytes t value with
          | None -> Resp.Error "OOM command not allowed when used memory > 'maxmemory'"
          | Some e ->
              (match Hashtbl.find_opt t.table key with
              | Some old -> drop_entry t old
              | None -> ());
              Hashtbl.replace t.table key e;
              persist_set t key value;
              Resp.Simple "OK")
      | "GET", [ key ] -> (
          charge t hash_cost;
          match Hashtbl.find_opt t.table key with
          | Some e ->
              t.hits <- t.hits + 1;
              charge t (Uksim.Cost.memcpy (String.length e.value));
              Resp.Bulk e.value
          | None ->
              t.misses <- t.misses + 1;
              Resp.Null)
      | "DEL", keys ->
          charge t (hash_cost * List.length keys);
          let n =
            List.fold_left
              (fun acc key ->
                match Hashtbl.find_opt t.table key with
                | Some e ->
                    drop_entry t e;
                    Hashtbl.remove t.table key;
                    persist_del t key;
                    acc + 1
                | None -> acc)
              0 keys
          in
          Resp.Integer n
      | "EXISTS", [ key ] ->
          charge t hash_cost;
          Resp.Integer (if Hashtbl.mem t.table key then 1 else 0)
      | "INCR", [ key ] -> (
          charge t hash_cost;
          let cur =
            match Hashtbl.find_opt t.table key with
            | Some e -> int_of_string_opt e.value
            | None -> Some 0
          in
          match cur with
          | None -> Resp.Error "ERR value is not an integer or out of range"
          | Some v -> (
              let s = string_of_int (v + 1) in
              match store_bytes t s with
              | None -> Resp.Error "OOM"
              | Some e ->
                  (match Hashtbl.find_opt t.table key with
                  | Some old -> drop_entry t old
                  | None -> ());
                  Hashtbl.replace t.table key e;
                  persist_set t key s;
                  Resp.Integer (v + 1)))
      | "LPUSH", key :: values when values <> [] ->
          charge t hash_cost;
          let l =
            match Hashtbl.find_opt t.lists key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace t.lists key l;
                l
          in
          List.iter (fun v -> l := v :: !l) values;
          Resp.Integer (List.length !l)
      | "LRANGE", [ key; a; b ] -> (
          charge t hash_cost;
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b ->
              let l = match Hashtbl.find_opt t.lists key with Some l -> !l | None -> [] in
              let n = List.length l in
              let b = if b < 0 then n + b else b in
              let selected =
                List.filteri (fun i _ -> i >= a && i <= b) l |> List.map (fun v -> Resp.Bulk v)
              in
              Resp.Array selected
          | _, _ -> Resp.Error "ERR value is not an integer or out of range")
      | "DBSIZE", [] -> Resp.Integer (Hashtbl.length t.table)
      | "FLUSHALL", [] ->
          Hashtbl.iter
            (fun key e ->
              drop_entry t e;
              persist_del t key)
            t.table;
          Hashtbl.reset t.table;
          Hashtbl.reset t.lists;
          Resp.Simple "OK"
      | _, _ -> Resp.Error (Printf.sprintf "ERR unknown command '%s'" cmd))

let value_of_command = function
  | Resp.Array parts ->
      let strings =
        List.filter_map (function Resp.Bulk s | Resp.Simple s -> Some s | _ -> None) parts
      in
      if List.length strings = List.length parts then Some strings else None
  | _ -> None

let handle_connection t flow =
  let parser = Resp.Parser.create () in
  let out = Buffer.create 1024 in
  let rec serve () =
    match S.Tcp_socket.recv ~block:true t.stack flow ~max:16384 with
    | None -> S.Tcp_socket.close t.stack flow
    | Some data ->
        if Bytes.length data > 0 then begin
          Resp.Parser.feed parser data;
          Buffer.clear out;
          let rec drain () =
            match Resp.Parser.next parser with
            | Ok (Some v) ->
                let reply =
                  match value_of_command v with
                  | Some args -> execute t args
                  | None -> Resp.Error "ERR protocol error"
                in
                Buffer.add_string out (Resp.encode reply);
                drain ()
            | Ok None -> ()
            | Error e ->
                Buffer.add_string out (Resp.encode (Resp.Error ("ERR " ^ e)))
          in
          drain ();
          if Buffer.length out > 0 then
            ignore (S.Tcp_socket.send ~block:true t.stack flow (Buffer.to_bytes out))
        end;
        serve ()
  in
  serve ()

(* --- zero-copy run-to-completion fast path -------------------------------- *)

module Nb = Uknetdev.Netbuf
module Tcp = Uknetstack.Tcp

(* Specialized dispatch for the hot commands: no robj churn, no generic
   command table, no reply buffering — the in-place parser feeds a direct
   match whose real work (key hashing, value memcpy) is charged
   separately, so this envelope is just parse + dispatch glue. Redis's
   couple-of-thousand-cycle generic path shrinks to about a hundred. *)
let fast_cmd_cost = 120

(* In-place RESP parse of one command ("*N\r\n$len\r\narg\r\n...") at
   [pos] in [buf[.., limit)]. Argument strings are materialized (they are
   keys and stored values — the app's objects, not payload frames). *)
let parse_cmd buf pos limit =
  let exception Incomplete in
  let exception Bad in
  let line p =
    let rec go i =
      if i + 1 >= limit then raise Incomplete
      else if Bytes.get buf i = '\r' && Bytes.get buf (i + 1) = '\n' then i
      else go (i + 1)
    in
    go p
  in
  let int_at p e =
    match int_of_string_opt (Bytes.sub_string buf p (e - p)) with
    | Some v -> v
    | None -> raise Bad
  in
  try
    if pos >= limit then Error `Incomplete
    else if Bytes.get buf pos <> '*' then Error `Bad
    else begin
      let e = line pos in
      let n = int_at (pos + 1) e in
      if n < 0 || n > 64 then Error `Bad
      else begin
        let p = ref (e + 2) in
        let args = ref [] in
        for _ = 1 to n do
          if !p >= limit || Bytes.get buf !p <> '$' then raise Bad;
          let e = line !p in
          let len = int_at (!p + 1) e in
          if len < 0 then raise Bad;
          let s = e + 2 in
          if s + len + 2 > limit then raise Incomplete;
          if not (Bytes.get buf (s + len) = '\r' && Bytes.get buf (s + len + 1) = '\n') then
            raise Bad;
          args := Bytes.sub_string buf s len :: !args;
          p := s + len + 2
        done;
        Ok (List.rev !args, !p)
      end
    end
  with
  | Incomplete -> Error `Incomplete
  | Bad -> Error `Bad

let execute_fast t args =
  t.commands <- t.commands + 1;
  charge t fast_cmd_cost;
  match args with
  | [ g; key ] when g = "GET" || g = "get" -> (
      charge t hash_cost;
      match Hashtbl.find_opt t.table key with
      | Some e ->
          t.hits <- t.hits + 1;
          charge t (Uksim.Cost.memcpy (String.length e.value));
          Resp.Bulk e.value
      | None ->
          t.misses <- t.misses + 1;
          Resp.Null)
  | [ s; key; value ] when s = "SET" || s = "set" -> (
      charge t hash_cost;
      match store_bytes t value with
      | None -> Resp.Error "OOM command not allowed when used memory > 'maxmemory'"
      | Some e ->
          (match Hashtbl.find_opt t.table key with
          | Some old -> drop_entry t old
          | None -> ());
          Hashtbl.replace t.table key e;
          persist_set t key value;
          Resp.Simple "OK")
  | [ p ] when p = "PING" || p = "ping" -> Resp.Simple "PONG"
  | [ d; key ] when d = "DEL" || d = "del" -> (
      charge t hash_cost;
      match Hashtbl.find_opt t.table key with
      | Some e ->
          drop_entry t e;
          Hashtbl.remove t.table key;
          persist_del t key;
          Resp.Integer 1
      | None -> Resp.Integer 0)
  | [ i; key ] when i = "INCR" || i = "incr" -> (
      charge t hash_cost;
      let cur =
        match Hashtbl.find_opt t.table key with
        | Some e -> int_of_string_opt e.value
        | None -> Some 0
      in
      match cur with
      | None -> Resp.Error "ERR value is not an integer or out of range"
      | Some v -> (
          let s = string_of_int (v + 1) in
          match store_bytes t s with
          | None -> Resp.Error "OOM"
          | Some e ->
              (match Hashtbl.find_opt t.table key with
              | Some old -> drop_entry t old
              | None -> ());
              Hashtbl.replace t.table key e;
              persist_set t key s;
              Resp.Integer (v + 1)))
  | _ ->
      (* Cold commands go through the generic engine (undo the counter
         bump: execute_untraced counts it again). *)
      t.commands <- t.commands - 1;
      execute_untraced t args

(* All replies for one received segment batch into one TX writer. *)
let fast_scan t w buf off len =
  let limit = off + len in
  let rec go pos =
    if pos >= limit then pos - off
    else
      match parse_cmd buf pos limit with
      | Ok (args, next) ->
          let reply =
            Uktrace.Tracer.span Uktrace.Tracer.default t.clock ~core:t.core ~cat:"ukapps"
              "resp_command_fast" (fun () -> execute_fast t args)
          in
          Nbio.add w (Resp.encode reply);
          go next
      | Error `Incomplete -> pos - off
      | Error `Bad ->
          Nbio.add w (Resp.encode (Resp.Error "ERR protocol error"));
          len
  in
  go off

let stash_drain t w stash =
  let s = Buffer.contents stash in
  let consumed = fast_scan t w (Bytes.unsafe_of_string s) 0 (String.length s) in
  if consumed > 0 then begin
    let rest = String.sub s consumed (String.length s - consumed) in
    Buffer.clear stash;
    Buffer.add_string stash rest
  end

let fast_on_data t flow stash nb =
  let w = Nbio.writer ~clock:t.clock ~stack:t.stack ~flow in
  (if Buffer.length stash = 0 then begin
     let buf, off, len = Nb.view nb in
     let consumed = fast_scan t w buf off len in
     if consumed < len then begin
       Nb.pull nb consumed;
       Buffer.add_bytes stash (Nb.copy_out nb)
     end;
     Nb.recycle nb
   end
   else begin
     Buffer.add_bytes stash (Nb.copy_out nb);
     Nb.recycle nb;
     stash_drain t w stash
   end);
  Nbio.flush w

let mk ~clock ~sched ~stack ~alloc ~core ?share_with ?persist () =
  (* [share_with]: SMP workers serve one logical database — every worker
     reuses the first worker's key space (per-worker command counters stay
     separate; see [sum_stats]). The merkle backing is likewise shared. *)
  let table, lists =
    match share_with with
    | Some peer -> (peer.table, peer.lists)
    | None -> (Hashtbl.create 4096, Hashtbl.create 64)
  in
  let persist =
    match (persist, share_with) with
    | (Some _ as p), _ -> p
    | None, Some peer -> peer.persist
    | None, None -> None
  in
  let t =
    { clock; sched; stack; alloc; table; lists; core; persist; commands = 0; hits = 0;
      misses = 0 }
  in
  (* Restart-and-replay: hydrate the keyspace from the store's last
     durable commit (a fresh table only — share_with peers already share
     the hydrated one). *)
  (match (t.persist, share_with) with
  | Some st, None when St.head st <> 0 -> (
      match St.to_list st with
      | Ok kvs ->
          List.iter
            (fun (k, v) ->
              match store_bytes t v with
              | Some e -> Hashtbl.replace table k e
              | None -> invalid_arg "Resp_store: OOM hydrating from store")
            kvs
      | Error e ->
          invalid_arg ("Resp_store: persist replay: " ^ Ukvfs.Fs.errno_to_string e))
  | _ -> ());
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukapps" ~name:"resp"
       ~reset:(fun () ->
         t.commands <- 0;
         t.hits <- 0;
         t.misses <- 0)
       (fun () ->
         [
           ("commands", Uktrace.Metric.Count t.commands);
           ("hits", Uktrace.Metric.Count t.hits);
           ("misses", Uktrace.Metric.Count t.misses);
         ]));
  t

let create ~clock ~sched ~stack ~alloc ?(port = 6379) ?(core = 0) ?share_with ?persist () =
  let t = mk ~clock ~sched ~stack ~alloc ~core ?share_with ?persist () in
  (* Listen synchronously so the port is open before any other core's
     virtual time reaches a connect — under SMP this core's clock may
     lag or lead the clients' by the time the coordinator first reaches
     the accept thread. *)
  let l = S.Tcp_socket.listen stack ~port () in
  let _ =
    (* Pinned: server threads charge this instance's clock and stack, so
       work stealing must not migrate them to another core. *)
    Uksched.Sched.spawn sched ~name:"redis-accept" ~daemon:true ~pinned:true (fun () ->
        let rec loop () =
          match S.Tcp_socket.accept ~block:true l with
          | Some flow ->
              let _ =
                Uksched.Sched.spawn sched ~name:"redis-conn" ~daemon:true ~pinned:true
                  (fun () -> handle_connection t flow)
              in
              loop ()
          | None -> loop ()
        in
        loop ())
  in
  t

let create_fast ~clock ~sched ~stack ~alloc ?(port = 6379) ?(core = 0) ?share_with
    ?persist ?(rtc = true) () =
  let t = mk ~clock ~sched ~stack ~alloc ~core ?share_with ?persist () in
  let l = S.Tcp_socket.listen stack ~port () in
  let dispatch =
    if rtc then fun job -> job ()
    else begin
      (* Ablation: hop each command batch through a pinned worker thread
         instead of executing inside packet processing. *)
      let q : (unit -> unit) Queue.t = Queue.create () in
      let wtid =
        Uksched.Sched.spawn sched ~name:"redis-fast-worker" ~daemon:true ~pinned:true
          (fun () ->
            let rec loop () =
              (match Queue.take_opt q with
              | Some job -> job ()
              | None -> Uksched.Sched.block ());
              loop ()
            in
            loop ())
      in
      fun job ->
        Queue.push job q;
        Uksched.Sched.wake sched wtid
    end
  in
  S.Tcp_socket.set_fast_accept l
    (Some
       (fun flow ->
         let stash = Buffer.create 64 in
         Tcp.set_rx_sink flow (Some (fun nb -> dispatch (fun () -> fast_on_data t flow stash nb)))));
  t

let stats t = { commands = t.commands; hits = t.hits; misses = t.misses }

let sum_stats ts =
  List.fold_left
    (fun (acc : stats) t ->
      ({
         commands = acc.commands + t.commands;
         hits = acc.hits + t.hits;
         misses = acc.misses + t.misses;
       }
        : stats))
    { commands = 0; hits = 0; misses = 0 }
    ts
let dbsize t = Hashtbl.length t.table
