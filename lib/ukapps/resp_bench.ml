module S = Uknetstack.Stack
module Nb = Uknetdev.Netbuf
module Tcp = Uknetstack.Tcp

type workload = Get | Set

type result = {
  requests : int;
  elapsed_ns : float;
  rate_per_sec : float;
  errors : int;
}

(* Shared across client groups (one per core in SMP runs); every finishing
   connection pushes the end-time forward. *)
type agg = { mutable errors : int; mutable requests : int; mutable t_end : float }

let new_agg () = { errors = 0; requests = 0; t_end = 0.0 }

(* Client-side cost of producing a command and consuming a reply — the
   benchmark tool runs on its own pinned core in the paper, so this only
   matters for pipelining depth, not for contention with the server. *)
let client_cmd_cost = 120

(* The fast client formats commands straight into pool netbufs (the bytes
   themselves are charged by {!Nbio}) and consumes replies with the
   in-place boundary scanner — no parser, no value materialization. *)
let fast_client_cmd_cost = 40

let spawn ~clock ~sched ~stack ~server ?(connections = 30) ?(pipeline = 16)
    ?(requests = 100_000) ?(value_size = 3) ?(port_for = fun _ -> None) ~agg workload =
  let value = String.make value_size 'x' in
  let per_conn = max 1 (requests / connections) in
  agg.requests <- agg.requests + (per_conn * connections);
  let key_of i = Printf.sprintf "key:%06d" (i land 0xfff) in
  let command i =
    match workload with
    | Get -> Resp.encode_command [ "GET"; key_of i ]
    | Set -> Resp.encode_command [ "SET"; key_of i; value ]
  in
  let client_thread ci () =
    let flow = S.Tcp_socket.connect stack ?lport:(port_for ci) ~dst:server () in
    let parser = Resp.Parser.create () in
    let replies_needed = ref 0 in
    let sent = ref 0 in
    let received = ref 0 in
    let rec read_replies () =
      if !replies_needed > 0 then begin
        match S.Tcp_socket.recv ~block:true stack flow ~max:65536 with
        | None -> failwith "resp_bench: server closed connection"
        | Some data ->
            Resp.Parser.feed parser data;
            let rec drain () =
              if !replies_needed > 0 then
                match Resp.Parser.next parser with
                | Ok (Some v) ->
                    Uksim.Clock.advance clock client_cmd_cost;
                    (match v with Resp.Error _ -> agg.errors <- agg.errors + 1 | _ -> ());
                    decr replies_needed;
                    incr received;
                    drain ()
                | Ok None -> ()
                | Error _ ->
                    agg.errors <- agg.errors + 1;
                    decr replies_needed;
                    drain ()
            in
            drain ();
            read_replies ()
      end
    in
    while !sent < per_conn do
      let batch = min pipeline (per_conn - !sent) in
      let buf = Buffer.create (batch * 40) in
      for k = 0 to batch - 1 do
        Uksim.Clock.advance clock client_cmd_cost;
        Buffer.add_string buf (command ((ci * per_conn) + !sent + k))
      done;
      sent := !sent + batch;
      replies_needed := batch;
      ignore (S.Tcp_socket.send ~block:true stack flow (Bytes.of_string (Buffer.contents buf)));
      read_replies ()
    done;
    ignore !received;
    S.Tcp_socket.close stack flow;
    agg.t_end <- Float.max agg.t_end (Uksim.Clock.ns clock)
  in
  for ci = 0 to connections - 1 do
    (* Pinned: the client charges its home core's clock and stack. *)
    ignore
      (Uksched.Sched.spawn sched ~name:(Printf.sprintf "bench-%d" ci) ~pinned:true
         (client_thread ci))
  done

(* Incremental RESP reply-boundary scanner: counts complete replies in a
   byte stream without materializing values. State is tiny — bulk-body
   bytes still to skip, plus an accumulator for the current header line —
   so replies can be counted directly in the driver's ring buffer. Only
   the reply shapes the hot commands produce (simple/error/integer/bulk/
   null) are recognized; the fast client never issues array-valued
   commands. *)
type rscan = { mutable skip : int; line : Buffer.t }

let rscan_create () = { skip = 0; line = Buffer.create 16 }

let rscan_feed sc buf off len ~on_reply =
  let i = ref off in
  let limit = off + len in
  while !i < limit do
    if sc.skip > 0 then begin
      let n = min sc.skip (limit - !i) in
      sc.skip <- sc.skip - n;
      i := !i + n;
      if sc.skip = 0 then on_reply `Ok
    end
    else begin
      let c = Bytes.get buf !i in
      Buffer.add_char sc.line c;
      incr i;
      let l = Buffer.length sc.line in
      if l >= 2 && c = '\n' && Buffer.nth sc.line (l - 2) = '\r' then begin
        let s = Buffer.contents sc.line in
        Buffer.clear sc.line;
        match s.[0] with
        | '-' -> on_reply `Err
        | '$' -> (
            match int_of_string_opt (String.sub s 1 (String.length s - 3)) with
            | Some n when n >= 0 -> sc.skip <- n + 2 (* body + CRLF *)
            | Some _ | None -> on_reply `Ok (* $-1 null *))
        | _ -> on_reply `Ok
      end
    end
  done

(* The zero-copy client: replies are counted by an in-place scanner running
   as the flow's rx sink (no socket queue, no parser allocation), requests
   go out pipelined through an {!Nbio} writer. Count-then-block is
   race-free under the shared cooperative per-core scheduler. *)
let spawn_fast ~clock ~sched ~stack ~server ?(connections = 30) ?(pipeline = 16)
    ?(requests = 100_000) ?(value_size = 3) ?(port_for = fun _ -> None) ~agg workload =
  let value = String.make value_size 'x' in
  let per_conn = max 1 (requests / connections) in
  agg.requests <- agg.requests + (per_conn * connections);
  let key_of i = Printf.sprintf "key:%06d" (i land 0xfff) in
  let command i =
    match workload with
    | Get -> Resp.encode_command [ "GET"; key_of i ]
    | Set -> Resp.encode_command [ "SET"; key_of i; value ]
  in
  let client_thread ci () =
    let flow = S.Tcp_socket.connect stack ?lport:(port_for ci) ~dst:server () in
    let me = Uksched.Sched.self () in
    let got = ref 0 in
    let sc = { skip = 0; line = Buffer.create 16 } in
    Tcp.set_rx_sink flow
      (Some
         (fun nb ->
           let buf, off, len = Nb.view nb in
           rscan_feed sc buf off len ~on_reply:(fun r ->
               Uksim.Clock.advance clock fast_client_cmd_cost;
               (match r with `Err -> agg.errors <- agg.errors + 1 | `Ok -> ());
               incr got);
           Nb.recycle nb;
           Uksched.Sched.wake sched me));
    let sent = ref 0 in
    while !sent < per_conn do
      let batch = min pipeline (per_conn - !sent) in
      let w = Nbio.writer ~clock ~stack ~flow in
      for k = 0 to batch - 1 do
        Uksim.Clock.advance clock fast_client_cmd_cost;
        Nbio.add w (command ((ci * per_conn) + !sent + k))
      done;
      Nbio.flush w;
      sent := !sent + batch;
      let want = !sent in
      while !got < want do
        Uksched.Sched.block ()
      done
    done;
    Tcp.set_rx_sink flow None;
    S.Tcp_socket.close stack flow;
    agg.t_end <- Float.max agg.t_end (Uksim.Clock.ns clock)
  in
  for ci = 0 to connections - 1 do
    ignore
      (Uksched.Sched.spawn sched ~name:(Printf.sprintf "bench-%d" ci) ~pinned:true
         (client_thread ci))
  done

let result_of_agg agg ~t_start =
  let elapsed = agg.t_end -. t_start in
  {
    requests = agg.requests;
    elapsed_ns = elapsed;
    rate_per_sec = Uksim.Stats.throughput_per_sec ~events:agg.requests ~elapsed_ns:elapsed;
    errors = agg.errors;
  }

let run ~clock ~sched ~stack ~server ?connections ?pipeline ?requests ?value_size workload =
  let agg = new_agg () in
  let t_start = Uksim.Clock.ns clock in
  spawn ~clock ~sched ~stack ~server ?connections ?pipeline ?requests ?value_size ~agg
    workload;
  Uksched.Sched.run sched;
  result_of_agg agg ~t_start
