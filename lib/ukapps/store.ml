(* The second stateful fleet workload: a line-protocol front-end over
   {!Ukstore.Store} — every mutation runs against the crash-consistent
   merkle store, so a served image that loses power recovers to its last
   acknowledged COMMIT on the next boot.

   Wire protocol (one request per line, fixed 20-byte replies so the
   zero-copy client counts boundaries by byte arithmetic, split-proof
   like Infer's):

     SET <key> <value>      -> "OK <root16>\n"     new working-root hash
     GET <key>              -> "OK <blob16>\n"     value's content hash
                               "NF <zero16>\n"     absent
     DEL <key>              -> "OK <root16>\n" | "NF <zero16>\n"
     COMMIT                 -> "OK <commit16>\n"   durable on return
     ROOT                   -> "OK <root16>\n"

   GET answers with the value's content address rather than its bytes —
   same modeling choice as Infer's output digest: the reply stays
   fixed-size for the fast path while still proving end-to-end which
   value was read. 'N' (not found) is a negative answer, not an error;
   only 'E' counts against the error budget. *)

module S = Uknetstack.Stack
module Nb = Uknetdev.Netbuf
module Tcp = Uknetstack.Tcp
module St = Ukstore.Store

let parse_cost = 150 (* legacy: line materialization + field parse *)
let fast_parse_cost = 50 (* in-place scan of the request line *)
let client_cmd_cost = 120
let fast_client_cmd_cost = 40

let reply_len = 3 + 16 + 1 (* "OK <hash16>\n" *)

type stats = {
  requests : int;
  sets : int;
  gets : int;
  dels : int;
  commits : int;
  errors : int;
  bytes_out : int;
}

let zero_stats =
  { requests = 0; sets = 0; gets = 0; dels = 0; commits = 0; errors = 0; bytes_out = 0 }

type t = {
  clock : Uksim.Clock.t;
  core : int;
  store : St.t;
  commit_every : int; (* auto-commit period in mutations; 0 = explicit only *)
  mutable muts : int; (* mutations since last commit *)
  mutable st : stats;
}

let charge t c = Uksim.Clock.advance t.clock c
let stats t = t.st
let store t = t.store
let state_hash t = St.content_hash t.store

let reply_line status h = Printf.sprintf "%s %016x\n" status h
let ok_reply h = reply_line "OK" h
let nf_reply = reply_line "NF" 0
let er_reply = reply_line "ER" 0

let mk ~clock ?(core = 0) ?(commit_every = 0) ~store () =
  { clock; core; store; commit_every; muts = 0; st = zero_stats }

let do_commit t =
  Uktrace.Tracer.span Uktrace.Tracer.default t.clock ~core:t.core ~cat:"ukapps"
    "store_commit" (fun () ->
      match St.commit t.store () with
      | Ok h ->
          t.muts <- 0;
          t.st <- { t.st with commits = t.st.commits + 1 };
          ok_reply h
      | Error _ ->
          t.st <- { t.st with errors = t.st.errors + 1 };
          er_reply)

let after_mutation t =
  t.muts <- t.muts + 1;
  if t.commit_every > 0 && t.muts >= t.commit_every then ignore (do_commit t)

let execute t line =
  let r =
    match String.split_on_char ' ' line with
    | [ "SET"; k; v ] -> (
        t.st <- { t.st with sets = t.st.sets + 1 };
        match St.set t.store k v with
        | Ok () ->
            after_mutation t;
            ok_reply (St.content_hash t.store)
        | Error _ ->
            t.st <- { t.st with errors = t.st.errors + 1 };
            er_reply)
    | [ "GET"; k ] -> (
        t.st <- { t.st with gets = t.st.gets + 1 };
        match St.get t.store k with
        | Ok (Some v) -> ok_reply (Ukvfs.Digest.string_hash v)
        | Ok None -> nf_reply
        | Error _ ->
            t.st <- { t.st with errors = t.st.errors + 1 };
            er_reply)
    | [ "DEL"; k ] -> (
        t.st <- { t.st with dels = t.st.dels + 1 };
        match St.del t.store k with
        | Ok true ->
            after_mutation t;
            ok_reply (St.content_hash t.store)
        | Ok false -> nf_reply
        | Error _ ->
            t.st <- { t.st with errors = t.st.errors + 1 };
            er_reply)
    | [ "COMMIT" ] -> do_commit t
    | [ "ROOT" ] -> ok_reply (St.content_hash t.store)
    | _ ->
        t.st <- { t.st with errors = t.st.errors + 1 };
        er_reply
  in
  t.st <- { t.st with requests = t.st.requests + 1; bytes_out = t.st.bytes_out + reply_len };
  r

(* Server-side seeding: [n] deterministic keys, committed durable — the
   fleet image preps its disk with this before first boot. *)
let populate t ?(value_len = 32) n =
  for i = 0 to n - 1 do
    let k = Printf.sprintf "k%05d" i in
    let v = String.init value_len (fun j -> Char.chr (97 + ((i + j) mod 26))) in
    match St.set t.store k v with
    | Ok () -> ()
    | Error e -> invalid_arg ("Store.populate: " ^ Ukvfs.Fs.errno_to_string e)
  done;
  match St.commit t.store ~msg:"populate" () with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Store.populate commit: " ^ Ukvfs.Fs.errno_to_string e)

(* --- legacy socket server -------------------------------------------------- *)

let handle_connection t stack flow =
  let acc = Buffer.create 128 in
  let rec serve () =
    match S.Tcp_socket.recv ~block:true stack flow ~max:16384 with
    | None -> S.Tcp_socket.close stack flow
    | Some data ->
        Buffer.add_bytes acc data;
        let s = Buffer.contents acc in
        let rec lines from =
          match String.index_from_opt s from '\n' with
          | Some nl ->
              charge t parse_cost;
              let r = execute t (String.sub s from (nl - from)) in
              ignore (S.Tcp_socket.send ~block:false stack flow (Bytes.of_string r));
              lines (nl + 1)
          | None -> from
        in
        let consumed = lines 0 in
        if consumed > 0 then begin
          let rest = String.sub s consumed (String.length s - consumed) in
          Buffer.clear acc;
          Buffer.add_string acc rest
        end;
        serve ()
  in
  serve ()

let create ~clock ~sched ~stack ?(port = 7000) ?core ?commit_every ~store () =
  let t = mk ~clock ?core ?commit_every ~store () in
  let l = S.Tcp_socket.listen stack ~port () in
  let _ =
    Uksched.Sched.spawn sched ~name:"store-accept" ~daemon:true ~pinned:true (fun () ->
        let rec loop () =
          match S.Tcp_socket.accept ~block:true l with
          | Some flow ->
              let _ =
                Uksched.Sched.spawn sched ~name:"store-conn" ~daemon:true ~pinned:true
                  (fun () -> handle_connection t stack flow)
              in
              loop ()
          | None -> loop ()
        in
        loop ())
  in
  t

(* --- zero-copy fast path ---------------------------------------------------- *)

let fast_reply t stack flow s =
  ignore t;
  let w = Nbio.writer ~clock:t.clock ~stack ~flow in
  Nbio.add w s;
  Nbio.flush w

let fast_scan t stack flow buf off len =
  let limit = off + len in
  let rec go ls =
    match Bytes.index_from_opt buf ls '\n' with
    | Some nl when nl < limit ->
        charge t fast_parse_cost;
        fast_reply t stack flow (execute t (Bytes.sub_string buf ls (nl - ls)));
        go (nl + 1)
    | Some _ | None -> ls - off
  in
  go off

let stash_drain t stack flow stash =
  let s = Buffer.contents stash in
  let b = Bytes.unsafe_of_string s in
  let consumed = fast_scan t stack flow b 0 (String.length s) in
  if consumed > 0 then begin
    let rest = String.sub s consumed (String.length s - consumed) in
    Buffer.clear stash;
    Buffer.add_string stash rest
  end

let fast_on_data t stack flow stash nb =
  if Buffer.length stash = 0 then begin
    let buf, off, len = Nb.view nb in
    let consumed = fast_scan t stack flow buf off len in
    if consumed < len then begin
      Nb.pull nb consumed;
      Buffer.add_bytes stash (Nb.copy_out nb)
    end;
    Nb.recycle nb
  end
  else begin
    Buffer.add_bytes stash (Nb.copy_out nb);
    Nb.recycle nb;
    stash_drain t stack flow stash
  end

let create_fast ~clock ~sched ~stack ?(port = 7000) ?core ?(rtc = true) ?commit_every
    ~store () =
  let t = mk ~clock ?core ?commit_every ~store () in
  let l = S.Tcp_socket.listen stack ~port () in
  let dispatch =
    if rtc then fun job -> job ()
    else begin
      (* Ablation: hop through a pinned worker instead of running to
         completion inside packet processing. *)
      let q : (unit -> unit) Queue.t = Queue.create () in
      let wtid =
        Uksched.Sched.spawn sched ~name:"store-fast-worker" ~daemon:true ~pinned:true
          (fun () ->
            let rec loop () =
              (match Queue.take_opt q with
              | Some job -> job ()
              | None -> Uksched.Sched.block ());
              loop ()
            in
            loop ())
      in
      fun job ->
        Queue.push job q;
        Uksched.Sched.wake sched wtid
    end
  in
  S.Tcp_socket.set_fast_accept l
    (Some
       (fun flow ->
         let stash = Buffer.create 64 in
         Tcp.set_rx_sink flow
           (Some (fun nb -> dispatch (fun () -> fast_on_data t stack flow stash nb)))));
  t

(* --- load generation -------------------------------------------------------- *)

type result = {
  requests : int;
  elapsed_ns : float;
  rate_per_sec : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  errors : int;
}

type agg = {
  lat : Uksim.Stats.t;
  mutable a_requests : int;
  mutable a_errors : int;
  mutable t_end : float;
}

let new_agg () =
  { lat = Uksim.Stats.create (); a_requests = 0; a_errors = 0; t_end = 0.0 }

(* The op mix: a seeded per-connection stream of SET/GET/DEL over a
   bounded keyspace, [write_frac] of them mutations, one COMMIT every
   [commit_every] requests (0 = none — the server may auto-commit
   instead). Deterministic per (seed, connection). *)
let op_line rng ~ci ~j ~write_frac ~keyspace ~commit_every =
  if commit_every > 0 && j mod commit_every = commit_every - 1 then "COMMIT\n"
  else begin
    let k = Printf.sprintf "k%05d" (Uksim.Rng.int rng keyspace) in
    if Uksim.Rng.float rng 1.0 < write_frac then
      Printf.sprintf "SET %s w%d-%d-%d\n" k ci j (Uksim.Rng.int rng 1000)
    else Printf.sprintf "GET %s\n" k
  end

let spawn_load ~clock ~sched ~stack ~server ?(connections = 16) ?(pipeline = 1)
    ?(requests = 4096) ?(write_frac = 0.5) ?(keyspace = 512) ?(commit_every = 0)
    ?(seed = 0x57012E) ?(port_for = fun _ -> None) ~agg () =
  let per_conn = max 1 (requests / connections) in
  agg.a_requests <- agg.a_requests + (per_conn * connections);
  let client_thread ci () =
    let rng = Uksim.Rng.create (seed + ci) in
    let flow = S.Tcp_socket.connect stack ?lport:(port_for ci) ~dst:server () in
    let recvd = ref 0 in
    let sent = ref 0 in
    while !sent < per_conn do
      let batch = min pipeline (per_conn - !sent) in
      let buf = Buffer.create (batch * 24) in
      for k = 0 to batch - 1 do
        Uksim.Clock.advance clock client_cmd_cost;
        Buffer.add_string buf
          (op_line rng ~ci ~j:(!sent + k) ~write_frac ~keyspace ~commit_every)
      done;
      let t0 = Uksim.Clock.ns clock in
      ignore (S.Tcp_socket.send ~block:true stack flow (Buffer.to_bytes buf));
      sent := !sent + batch;
      let target = !sent * reply_len in
      while !recvd < target do
        match S.Tcp_socket.recv ~block:true stack flow ~max:65536 with
        | None -> failwith "store load: server closed connection"
        | Some data ->
            let before = !recvd / reply_len in
            Bytes.iter
              (fun c ->
                if !recvd mod reply_len = 0 && c = 'E' then
                  agg.a_errors <- agg.a_errors + 1;
                incr recvd)
              data;
            let now = Uksim.Clock.ns clock in
            for _ = before + 1 to !recvd / reply_len do
              Uksim.Clock.advance clock client_cmd_cost;
              Uksim.Stats.add agg.lat (now -. t0)
            done
      done
    done;
    S.Tcp_socket.close stack flow;
    agg.t_end <- Float.max agg.t_end (Uksim.Clock.ns clock)
  in
  for ci = 0 to connections - 1 do
    ignore
      (Uksched.Sched.spawn sched ~name:(Printf.sprintf "store-load-%d" ci) ~pinned:true
         (client_thread ci))
  done

let spawn_load_fast ~clock ~sched ~stack ~server ?(connections = 16) ?(pipeline = 1)
    ?(requests = 4096) ?(write_frac = 0.5) ?(keyspace = 512) ?(commit_every = 0)
    ?(seed = 0x57012E) ?(port_for = fun _ -> None) ~agg () =
  let per_conn = max 1 (requests / connections) in
  agg.a_requests <- agg.a_requests + (per_conn * connections);
  let client_thread ci () =
    let rng = Uksim.Rng.create (seed + ci) in
    let flow = S.Tcp_socket.connect stack ?lport:(port_for ci) ~dst:server () in
    let me = Uksched.Sched.self () in
    let recvd = ref 0 in
    Tcp.set_rx_sink flow
      (Some
         (fun nb ->
           let buf, off, len = Nb.view nb in
           for i = off to off + len - 1 do
             if !recvd mod reply_len = 0 && Bytes.get buf i = 'E' then
               agg.a_errors <- agg.a_errors + 1;
             incr recvd
           done;
           Nb.recycle nb;
           Uksched.Sched.wake sched me));
    let sent = ref 0 in
    while !sent < per_conn do
      let batch = min pipeline (per_conn - !sent) in
      let w = Nbio.writer ~clock ~stack ~flow in
      for k = 0 to batch - 1 do
        Uksim.Clock.advance clock fast_client_cmd_cost;
        Nbio.add w (op_line rng ~ci ~j:(!sent + k) ~write_frac ~keyspace ~commit_every)
      done;
      let t0 = Uksim.Clock.ns clock in
      Nbio.flush w;
      sent := !sent + batch;
      let target = !sent * reply_len in
      while !recvd < target do
        Uksched.Sched.block ()
      done;
      let now = Uksim.Clock.ns clock in
      for _ = 1 to batch do
        Uksim.Clock.advance clock fast_client_cmd_cost;
        Uksim.Stats.add agg.lat (now -. t0)
      done
    done;
    Tcp.set_rx_sink flow None;
    S.Tcp_socket.close stack flow;
    agg.t_end <- Float.max agg.t_end (Uksim.Clock.ns clock)
  in
  for ci = 0 to connections - 1 do
    ignore
      (Uksched.Sched.spawn sched ~name:(Printf.sprintf "store-load-%d" ci) ~pinned:true
         (client_thread ci))
  done

let result_of_agg (agg : agg) ~t_start =
  let elapsed = agg.t_end -. t_start in
  {
    requests = agg.a_requests;
    elapsed_ns = elapsed;
    rate_per_sec =
      Uksim.Stats.throughput_per_sec ~events:agg.a_requests ~elapsed_ns:elapsed;
    mean_us = Uksim.Stats.mean agg.lat /. 1e3;
    p50_us = Uksim.Stats.percentile agg.lat 50.0 /. 1e3;
    p99_us = Uksim.Stats.percentile agg.lat 99.0 /. 1e3;
    errors = agg.a_errors;
  }

let run_load ~clock ~sched ~stack ~server ?connections ?pipeline ?requests
    ?write_frac ?keyspace ?commit_every ?seed () =
  let agg = new_agg () in
  let t_start = Uksim.Clock.ns clock in
  spawn_load ~clock ~sched ~stack ~server ?connections ?pipeline ?requests
    ?write_frac ?keyspace ?commit_every ?seed ~agg ();
  Uksched.Sched.run sched;
  result_of_agg agg ~t_start
