module S = Uknetstack.Stack
module Nb = Uknetdev.Netbuf
module Tcp = Uknetstack.Tcp
module Bfs = Ukvfs.Blockfs

(* --- cost model ----------------------------------------------------------

   Per-batch compute is one full sweep over the weights (the GEMM reads
   every parameter once per forward pass, 16 B/cycle — same bandwidth
   figure as Cost.memcpy) plus a per-item term for activations that
   scales with the item's token width. Batching amortizes the sweep:
   that asymmetry is the whole latency-vs-throughput knob. *)

let weight_pass_per_mb = 65536 (* cycles: 1 MiB of weights at 16 B/cycle *)
let item_per_mb_width = 64 (* cycles per MiB of model per token of width *)
let admit_cost = 90 (* queue insert + deadline bookkeeping *)
let parse_cost = 180 (* legacy: line materialization + field parse *)
let fast_parse_cost = 60 (* in-place scan of the request line *)
let client_cmd_cost = 120
let fast_client_cmd_cost = 40

let weight_pass_cycles size_mb = size_mb * weight_pass_per_mb
let item_cycles size_mb width = max 1 (size_mb * width * item_per_mb_width)

let page = 4096

(* Same avalanche as Blockfs's digest mix (independent copy: the output
   digest is an app-level contract, not a storage-format one). *)
let mix a b =
  let z = ref ((a + 0x101 + (b * 0x2545F4914F6CDD1D)) land max_int) in
  z := ((!z lxor (!z lsr 30)) * 0x1b8b2188105bd9f) land max_int;
  z := ((!z lxor (!z lsr 27)) * 0x194d049bb13311) land max_int;
  !z lxor (!z lsr 31)

(* --- the sticky ukapps.infer source ------------------------------------- *)

type gstats = {
  mutable g_loads : int;
  mutable g_load_ns : float; (* most recent weight load *)
  mutable g_weight_bytes : int;
  mutable g_requests : int;
  mutable g_batches : int;
}

let g = { g_loads = 0; g_load_ns = 0.0; g_weight_bytes = 0; g_requests = 0; g_batches = 0 }

let source =
  lazy
    (Uktrace.Registry.register ~sticky:true
       (Uktrace.Source.make ~subsystem:"ukapps" ~name:"infer"
          ~reset:(fun () ->
            g.g_loads <- 0;
            g.g_load_ns <- 0.0;
            g.g_weight_bytes <- 0;
            g.g_requests <- 0;
            g.g_batches <- 0)
          (fun () ->
            [
              ("weight_loads", Uktrace.Metric.Count g.g_loads);
              ("weight_bytes", Uktrace.Metric.Count g.g_weight_bytes);
              ("load_ns", Uktrace.Metric.Level g.g_load_ns);
              ("requests", Uktrace.Metric.Count g.g_requests);
              ("batches", Uktrace.Metric.Count g.g_batches);
            ])))

(* --- weights -------------------------------------------------------------- *)

type model = { name : string; digest : int; size_mb : int; bytes : int; load_ns : float }

(* Deterministic seeded weights: a 64-byte header per 4 KiB page derived
   from (seed, page index), zeros elsewhere — exactly the bytes the
   Blockfs digest samples, so every page contributes to the content
   address without host-side generation cost scaling past O(size). *)
let weight_fill ~seed ~off buf ~pos ~len =
  let p = ref 0 in
  while !p < len do
    let idx = (off + !p) / page in
    let n = min 64 (len - !p) in
    let h = ref (mix seed idx) in
    for w = 0 to (n / 8) - 1 do
      h := mix !h w;
      Bytes.set_int64_le buf (pos + !p + (w * 8)) (Int64.of_int !h)
    done;
    p := !p + page
  done

let publish ~clock ~dev ?(seed = 0x5EED) ~size_mb () =
  let bytes = size_mb * 1024 * 1024 in
  (* Content addressing: the name is the digest, so a first generator
     pass computes it before the store sees a single byte. *)
  let digest = Bfs.digest_of_stream ~size:bytes ~fill:(weight_fill ~seed) in
  let name = Printf.sprintf "%016x" digest in
  let store = Bfs.create ~clock dev in
  (match Bfs.add_stream store ~name ~size:bytes ~fill:(weight_fill ~seed) with
  | Ok d -> assert (d = digest)
  | Error e -> invalid_arg ("Infer.publish: " ^ Ukvfs.Fs.errno_to_string e));
  (store, name)

let basename path =
  match List.rev (Ukvfs.Fs.split_path path) with n :: _ -> n | [] -> path

let load ~clock ~vfs ~store ~path () =
  Lazy.force source;
  let t0 = Uksim.Clock.ns clock in
  let name = basename path in
  (* Resolution and metadata go through vfscore — the mount table, path
     walk and stat of the generic stack... *)
  match Ukvfs.Vfs.stat vfs path with
  | Error e -> Error (Printf.sprintf "weights %s: stat: %s" path (Ukvfs.Fs.errno_to_string e))
  | Ok { Ukvfs.Fs.size; _ } -> (
      (* ...while the bulk bytes take the specialized streaming path:
         windowed chunk reads overlap on the device queue, and the guest
         only pays page installs (PTE writes) plus the sampled digest
         verification — no counted copy of the weight bytes. *)
      let install data ~off:_ ~len =
        ignore data;
        Uksim.Clock.advance clock
          ((len + page - 1) / page * Uksim.Cost.page_table_entry_write)
      in
      match Bfs.stream store ~name ~f:install () with
      | Error e ->
          Error
            (Printf.sprintf "weights %s: stream: %s" path (Ukvfs.Fs.errno_to_string e))
      | Ok { Bfs.bytes; digest; _ } ->
          if bytes <> size then Error (Printf.sprintf "weights %s: size mismatch" path)
          else if
            (* The content address must agree with the content. *)
            match int_of_string_opt ("0x" ^ name) with
            | Some d -> d <> digest
            | None -> false
          then Error (Printf.sprintf "weights %s: content address mismatch" path)
          else begin
            let load_ns = Uksim.Clock.ns clock -. t0 in
            g.g_loads <- g.g_loads + 1;
            g.g_load_ns <- load_ns;
            g.g_weight_bytes <- g.g_weight_bytes + bytes;
            Ok
              {
                name;
                digest;
                size_mb = (bytes + (1 lsl 20) - 1) / (1 lsl 20);
                bytes;
                load_ns;
              }
          end)

(* --- admission queue + batch executor ------------------------------------ *)

type stats = {
  requests : int;
  batches : int;
  errors : int;
  max_occupancy : int;
  bytes_out : int;
}

let zero_stats = { requests = 0; batches = 0; errors = 0; max_occupancy = 0; bytes_out = 0 }

type pending = { prid : int; pwidth : int; preply : string -> unit }

type t = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  max_batch : int;
  max_wait_ns : float;
  core : int;
  model : model;
  q : pending Queue.t;
  mutable timer_gen : int; (* armed deadlines carry the gen they saw *)
  mutable timer_armed : bool;
  mutable st : stats;
  mutable state : int;
  alloc : Ukalloc.Alloc.t option;
}

let charge t c = Uksim.Clock.advance t.clock c
let reply_len = 3 + 8 + 1 + 16 + 1 (* "OK <id8> <digest16>\n" *)
let request ~rid ~width = Printf.sprintf "INF %08x %d\n" (rid land 0xFFFFFFFF) width
let out_digest model ~rid ~width = mix (mix model.digest rid) width

let reply_line ~ok ~rid out =
  Printf.sprintf "%s %08x %016x\n" (if ok then "OK" else "ER") (rid land 0xFFFFFFFF) out

let rec run_batch t =
  (* Invalidate any armed deadline: it belongs to requests served now. *)
  t.timer_gen <- t.timer_gen + 1;
  t.timer_armed <- false;
  let b = min (Queue.length t.q) t.max_batch in
  if b > 0 then begin
    Uktrace.Tracer.span Uktrace.Tracer.default t.clock ~core:t.core ~cat:"ukapps"
      "infer_batch" (fun () ->
        let items = List.init b (fun _ -> Queue.pop t.q) in
        (* Activation scratch from the app allocator, freed with the batch. *)
        let scratch =
          Option.bind t.alloc (fun a -> Ukalloc.Alloc.uk_malloc a 4096)
        in
        charge t (weight_pass_cycles t.model.size_mb);
        List.iter
          (fun it ->
            charge t (item_cycles t.model.size_mb it.pwidth);
            let out = out_digest t.model ~rid:it.prid ~width:it.pwidth in
            let r = reply_line ~ok:true ~rid:it.prid out in
            (* Commutative fold: legacy and fast servers may batch the
               same request set differently, the hash must not care. *)
            t.state <- t.state lxor mix out (it.prid + (it.pwidth * 0x10001));
            t.st <-
              { t.st with
                requests = t.st.requests + 1;
                bytes_out = t.st.bytes_out + String.length r };
            g.g_requests <- g.g_requests + 1;
            it.preply r)
          items;
        (match (scratch, t.alloc) with
        | Some addr, Some a -> Ukalloc.Alloc.uk_free a addr
        | _ -> ());
        t.st <-
          { t.st with
            batches = t.st.batches + 1;
            max_occupancy = max t.st.max_occupancy b };
        g.g_batches <- g.g_batches + 1);
    if Queue.length t.q >= t.max_batch then run_batch t
    else if not (Queue.is_empty t.q) then arm_timer t
  end

and arm_timer t =
  t.timer_armed <- true;
  let gen = t.timer_gen in
  Uksim.Engine.after_ns t.engine t.max_wait_ns (fun () ->
      if gen = t.timer_gen && not (Queue.is_empty t.q) then run_batch t)

let submit t ~rid ~width ~reply =
  charge t admit_cost;
  Queue.push { prid = rid; pwidth = max 0 width; preply = reply } t.q;
  if Queue.length t.q >= t.max_batch then run_batch t
  else if not t.timer_armed then arm_timer t

let pump t = if not (Queue.is_empty t.q) then run_batch t

let mk_bare ~clock ~engine ?(max_batch = 8) ?(max_wait_ns = Uksim.Units.usec 20.0)
    ?(core = 0) ?alloc ~model () =
  Lazy.force source;
  if max_batch < 1 then invalid_arg "Infer: max_batch must be >= 1";
  {
    clock;
    engine;
    max_batch;
    max_wait_ns;
    core;
    model;
    q = Queue.create ();
    timer_gen = 0;
    timer_armed = false;
    st = zero_stats;
    state = 0;
    alloc;
  }

let create_bare ~clock ~engine ?max_batch ?max_wait_ns ?core ~model () =
  mk_bare ~clock ~engine ?max_batch ?max_wait_ns ?core ~model ()

let stats t = t.st
let state_hash t = t.state
let the_model t = t.model

(* --- wire parsing --------------------------------------------------------- *)

let parse_req line =
  match String.split_on_char ' ' line with
  | [ "INF"; id; w ] -> (
      match (int_of_string_opt ("0x" ^ id), int_of_string_opt w) with
      | Some rid, Some width when width >= 0 -> Some (rid, width)
      | _ -> None)
  | _ -> None

let bad_reply = reply_line ~ok:false ~rid:0 0

(* --- legacy socket server ------------------------------------------------- *)

let handle_line t stack flow line =
  (* Batch completions run in engine context (no current thread), so the
     reply closure must not block; 29-byte replies sit well inside the
     send buffer at any sane pipeline depth. *)
  let reply s = ignore (S.Tcp_socket.send ~block:false stack flow (Bytes.of_string s)) in
  charge t parse_cost;
  match parse_req line with
  | Some (rid, width) -> submit t ~rid ~width ~reply
  | None ->
      t.st <- { t.st with errors = t.st.errors + 1 };
      reply bad_reply

let handle_connection t stack flow =
  let acc = Buffer.create 128 in
  let rec serve () =
    match S.Tcp_socket.recv ~block:true stack flow ~max:16384 with
    | None -> S.Tcp_socket.close stack flow
    | Some data ->
        Buffer.add_bytes acc data;
        let s = Buffer.contents acc in
        let rec lines from =
          match String.index_from_opt s from '\n' with
          | Some nl ->
              handle_line t stack flow (String.sub s from (nl - from));
              lines (nl + 1)
          | None -> from
        in
        let consumed = lines 0 in
        if consumed > 0 then begin
          let rest = String.sub s consumed (String.length s - consumed) in
          Buffer.clear acc;
          Buffer.add_string acc rest
        end;
        serve ()
  in
  serve ()

let create ~clock ~engine ~sched ~stack ~alloc ?(port = 8000) ?core ?max_batch
    ?max_wait_ns ~model () =
  let t = mk_bare ~clock ~engine ?max_batch ?max_wait_ns ?core ~alloc ~model () in
  (* Listen synchronously so the port is open before any other core's
     virtual time reaches a connect (see the Resp_store note). *)
  let l = S.Tcp_socket.listen stack ~port () in
  let _ =
    Uksched.Sched.spawn sched ~name:"infer-accept" ~daemon:true ~pinned:true (fun () ->
        let rec loop () =
          match S.Tcp_socket.accept ~block:true l with
          | Some flow ->
              let _ =
                Uksched.Sched.spawn sched ~name:"infer-conn" ~daemon:true ~pinned:true
                  (fun () -> handle_connection t stack flow)
              in
              loop ()
          | None -> loop ()
        in
        loop ())
  in
  t

(* --- zero-copy fast path --------------------------------------------------- *)

let fast_reply t stack flow s =
  let w = Nbio.writer ~clock:t.clock ~stack ~flow in
  Nbio.add w s;
  Nbio.flush w

(* Scan [buf[off, off+len)] for complete request lines; returns consumed. *)
let fast_scan t stack flow buf off len =
  let limit = off + len in
  let rec go ls =
    match Bytes.index_from_opt buf ls '\n' with
    | Some nl when nl < limit ->
        charge t fast_parse_cost;
        (match parse_req (Bytes.sub_string buf ls (nl - ls)) with
        | Some (rid, width) ->
            submit t ~rid ~width ~reply:(fast_reply t stack flow)
        | None ->
            t.st <- { t.st with errors = t.st.errors + 1 };
            fast_reply t stack flow bad_reply);
        go (nl + 1)
    | Some _ | None -> ls - off
  in
  go off

(* Stash path: a request line straddled a segment boundary — one counted
   copy per stashed segment until the pipeline realigns (same fallback
   contract as Httpd's). *)
let stash_drain t stack flow stash =
  let s = Buffer.contents stash in
  let b = Bytes.unsafe_of_string s in
  let consumed = fast_scan t stack flow b 0 (String.length s) in
  if consumed > 0 then begin
    let rest = String.sub s consumed (String.length s - consumed) in
    Buffer.clear stash;
    Buffer.add_string stash rest
  end

let fast_on_data t stack flow stash nb =
  if Buffer.length stash = 0 then begin
    let buf, off, len = Nb.view nb in
    let consumed = fast_scan t stack flow buf off len in
    if consumed < len then begin
      Nb.pull nb consumed;
      Buffer.add_bytes stash (Nb.copy_out nb)
    end;
    Nb.recycle nb
  end
  else begin
    Buffer.add_bytes stash (Nb.copy_out nb);
    Nb.recycle nb;
    stash_drain t stack flow stash
  end

let create_fast ~clock ~engine ~sched ~stack ~alloc ?(port = 8000) ?core ?(rtc = true)
    ?max_batch ?max_wait_ns ~model () =
  let t = mk_bare ~clock ~engine ?max_batch ?max_wait_ns ?core ~alloc ~model () in
  let l = S.Tcp_socket.listen stack ~port () in
  let dispatch =
    if rtc then fun job -> job ()
    else begin
      (* Ablation: hop through a pinned worker instead of running to
         completion inside packet processing. *)
      let q : (unit -> unit) Queue.t = Queue.create () in
      let wtid =
        Uksched.Sched.spawn sched ~name:"infer-fast-worker" ~daemon:true ~pinned:true
          (fun () ->
            let rec loop () =
              (match Queue.take_opt q with
              | Some job -> job ()
              | None -> Uksched.Sched.block ());
              loop ()
            in
            loop ())
      in
      fun job ->
        Queue.push job q;
        Uksched.Sched.wake sched wtid
    end
  in
  S.Tcp_socket.set_fast_accept l
    (Some
       (fun flow ->
         let stash = Buffer.create 64 in
         Tcp.set_rx_sink flow
           (Some (fun nb -> dispatch (fun () -> fast_on_data t stack flow stash nb)))));
  t

(* --- load generation ------------------------------------------------------- *)

type result = {
  requests : int;
  elapsed_ns : float;
  rate_per_sec : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  errors : int;
}

type agg = {
  lat : Uksim.Stats.t; (* per-request latency, ns *)
  mutable a_requests : int;
  mutable a_errors : int;
  mutable t_end : float;
}

let new_agg () =
  { lat = Uksim.Stats.create (); a_requests = 0; a_errors = 0; t_end = 0.0 }

let spawn_load ~clock ~sched ~stack ~server ?(connections = 16) ?(pipeline = 1)
    ?(requests = 4096) ?(width = 16) ?(port_for = fun _ -> None) ~agg () =
  let per_conn = max 1 (requests / connections) in
  agg.a_requests <- agg.a_requests + (per_conn * connections);
  let client_thread ci () =
    let flow = S.Tcp_socket.connect stack ?lport:(port_for ci) ~dst:server () in
    let recvd = ref 0 (* reply-stream bytes; replies are fixed-size *) in
    let sent = ref 0 in
    while !sent < per_conn do
      let batch = min pipeline (per_conn - !sent) in
      let buf = Buffer.create (batch * 24) in
      for k = 0 to batch - 1 do
        Uksim.Clock.advance clock client_cmd_cost;
        Buffer.add_string buf (request ~rid:((ci lsl 20) lor (!sent + k)) ~width)
      done;
      let t0 = Uksim.Clock.ns clock in
      ignore (S.Tcp_socket.send ~block:true stack flow (Buffer.to_bytes buf));
      sent := !sent + batch;
      let target = !sent * reply_len in
      while !recvd < target do
        match S.Tcp_socket.recv ~block:true stack flow ~max:65536 with
        | None -> failwith "infer load: server closed connection"
        | Some data ->
            let before = !recvd / reply_len in
            Bytes.iter
              (fun c ->
                (* Status byte of every fixed-size reply block. *)
                if !recvd mod reply_len = 0 && c <> 'O' then
                  agg.a_errors <- agg.a_errors + 1;
                incr recvd)
              data;
            let now = Uksim.Clock.ns clock in
            for _ = before + 1 to !recvd / reply_len do
              Uksim.Clock.advance clock client_cmd_cost;
              Uksim.Stats.add agg.lat (now -. t0)
            done
      done
    done;
    S.Tcp_socket.close stack flow;
    agg.t_end <- Float.max agg.t_end (Uksim.Clock.ns clock)
  in
  for ci = 0 to connections - 1 do
    (* Pinned: the client charges its home core's clock and stack. *)
    ignore
      (Uksched.Sched.spawn sched ~name:(Printf.sprintf "infer-load-%d" ci) ~pinned:true
         (client_thread ci))
  done

let spawn_load_fast ~clock ~sched ~stack ~server ?(connections = 16) ?(pipeline = 1)
    ?(requests = 4096) ?(width = 16) ?(port_for = fun _ -> None) ~agg () =
  let per_conn = max 1 (requests / connections) in
  agg.a_requests <- agg.a_requests + (per_conn * connections);
  let client_thread ci () =
    let flow = S.Tcp_socket.connect stack ?lport:(port_for ci) ~dst:server () in
    let me = Uksched.Sched.self () in
    let recvd = ref 0 in
    (* Fixed-size replies make the sink pure arithmetic: boundaries are
       byte offsets mod reply_len, immune to netbuf splits. *)
    Tcp.set_rx_sink flow
      (Some
         (fun nb ->
           let buf, off, len = Nb.view nb in
           for i = off to off + len - 1 do
             if !recvd mod reply_len = 0 && Bytes.get buf i <> 'O' then
               agg.a_errors <- agg.a_errors + 1;
             incr recvd
           done;
           Nb.recycle nb;
           Uksched.Sched.wake sched me));
    let sent = ref 0 in
    while !sent < per_conn do
      let batch = min pipeline (per_conn - !sent) in
      let w = Nbio.writer ~clock ~stack ~flow in
      for k = 0 to batch - 1 do
        Uksim.Clock.advance clock fast_client_cmd_cost;
        Nbio.add w (request ~rid:((ci lsl 20) lor (!sent + k)) ~width)
      done;
      let t0 = Uksim.Clock.ns clock in
      Nbio.flush w;
      sent := !sent + batch;
      let target = !sent * reply_len in
      (* Count-then-block is race-free under the shared cooperative
         per-core scheduler. *)
      while !recvd < target do
        Uksched.Sched.block ()
      done;
      let now = Uksim.Clock.ns clock in
      for _ = 1 to batch do
        Uksim.Clock.advance clock fast_client_cmd_cost;
        Uksim.Stats.add agg.lat (now -. t0)
      done
    done;
    Tcp.set_rx_sink flow None;
    S.Tcp_socket.close stack flow;
    agg.t_end <- Float.max agg.t_end (Uksim.Clock.ns clock)
  in
  for ci = 0 to connections - 1 do
    ignore
      (Uksched.Sched.spawn sched ~name:(Printf.sprintf "infer-load-%d" ci) ~pinned:true
         (client_thread ci))
  done

let result_of_agg agg ~t_start =
  let elapsed = agg.t_end -. t_start in
  {
    requests = agg.a_requests;
    elapsed_ns = elapsed;
    rate_per_sec =
      Uksim.Stats.throughput_per_sec ~events:agg.a_requests ~elapsed_ns:elapsed;
    mean_us = Uksim.Stats.mean agg.lat /. 1e3;
    p50_us = Uksim.Stats.percentile agg.lat 50.0 /. 1e3;
    p99_us = Uksim.Stats.percentile agg.lat 99.0 /. 1e3;
    errors = agg.a_errors;
  }

let run_load ~clock ~sched ~stack ~server ?connections ?pipeline ?requests ?width () =
  let agg = new_agg () in
  let t_start = Uksim.Clock.ns clock in
  spawn_load ~clock ~sched ~stack ~server ?connections ?pipeline ?requests ?width ~agg ();
  Uksched.Sched.run sched;
  result_of_agg agg ~t_start
