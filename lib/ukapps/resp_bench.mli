(** redis-benchmark stand-in (paper Figs 12, 18: 30 connections, 100k
    requests, pipelining level 16).

    Opens [connections] TCP flows from a client stack, issues [requests]
    total commands split across them in pipelined batches, and reports the
    sustained rate in virtual time. *)

type workload = Get | Set
(** GET hits pre-populated keys; SET writes fresh values (exercising the
    server allocator differently — Fig 18's request-type axis). *)

type result = {
  requests : int;
  elapsed_ns : float;
  rate_per_sec : float;
  errors : int;
}

type agg
(** Shared aggregator for SMP runs — see {!Wrk.agg}. *)

val new_agg : unit -> agg

val spawn :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  server:Uknetstack.Addr.Ipv4.t * int ->
  ?connections:int ->
  ?pipeline:int ->
  ?requests:int ->
  ?value_size:int ->
  ?port_for:(int -> int option) ->
  agg:agg ->
  workload ->
  unit
(** Spawn the client threads (pinned) without driving the scheduler;
    [port_for ci] forces connection [ci]'s source port for RSS steering. *)

val spawn_fast :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  server:Uknetstack.Addr.Ipv4.t * int ->
  ?connections:int ->
  ?pipeline:int ->
  ?requests:int ->
  ?value_size:int ->
  ?port_for:(int -> int option) ->
  agg:agg ->
  workload ->
  unit
(** Zero-copy pipelined client for {!Resp_store.create_fast} servers:
    replies are counted by an incremental boundary scanner running
    in-place over ring netbufs ({!Uknetstack.Tcp.set_rx_sink}) and
    commands go out through an {!Nbio} writer — no counted payload copies
    on either direction. *)

val result_of_agg : agg -> t_start:float -> result

val run :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  server:Uknetstack.Addr.Ipv4.t * int ->
  ?connections:int ->
  ?pipeline:int ->
  ?requests:int ->
  ?value_size:int ->
  workload ->
  result
(** Defaults mirror the paper: 30 connections, pipeline 16, 100k
    requests, 3-byte values. Must be called outside any scheduler thread;
    drives [sched] internally until the load completes. *)

(** {2 Reply-boundary scanner}

    The incremental scanner the zero-copy client runs as its rx sink.
    Exposed for regression tests: its persistent state (bulk bytes left
    to skip + partial header line) is what makes replies that straddle
    netbuf boundaries count correctly. *)

type rscan

val rscan_create : unit -> rscan

val rscan_feed :
  rscan -> bytes -> int -> int -> on_reply:([ `Ok | `Err ] -> unit) -> unit
(** Feed the scanner [len] bytes at [off]; [on_reply] fires once per
    complete reply, regardless of how the stream is segmented. *)
