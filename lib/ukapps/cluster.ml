(* Multicore serving harness: 2n cores over uksmp — n server cores and n
   client cores — joined by a multi-queue loopback pair with RSS.

   Topology (for n = 2):

     server core 0  stack qid 0 --\            /-- stack qid 0  client core 2
                                   loopback pair
     server core 1  stack qid 1 --/            \-- stack qid 1  client core 3

   Each side behaves like one machine with a multi-queue NIC: all queues
   of a side share that side's MAC and IP, and one stack instance owns
   each queue (SO_REUSEPORT-style sharding — every per-core stack runs its
   own listener on the same port). The symmetric RSS hash sends both
   directions of a flow to queue [hash mod n], and the load runners pick
   client source ports whose hash selects their own queue, so core j talks
   to server core j and flows never cross cores. *)

module S = Uknetstack.Stack
module A = Uknetstack.Addr
module Nb = Uknetdev.Netbuf

type alloc_mode = Arena | Shared_lock

(* Datapath ingredient knobs — each independently ablatable (the fast-path
   ablation matrix). [None] fastpath in {!create} keeps the stacks on
   their historical defaults, byte-for-byte compatible with pre-fast-path
   schedules. *)
type fastpath = {
  rx_batch : int;  (** descriptors per poll; 1 = per-packet processing *)
  rx_copy : bool;  (** true = legacy copy-into-fresh-buffer RX path *)
  tx_coalesce : bool;  (** one TX ring burst per poll window *)
  shared_pool : bool;  (** one spinlocked netbuf pool for all server cores *)
}

let fastpath_default =
  { rx_batch = 64; rx_copy = false; tx_coalesce = true; shared_pool = false }

type t = {
  smp : Uksmp.Smp.t;
  n : int;
  mode : alloc_mode;
  server_stacks : S.t array;
  client_stacks : S.t array;
  allocs : Ukalloc.Alloc.t array; (* server-side per-core views *)
  alloc_spin : Uklock.Lock.Spin.t;
  arena : Ukalloc.Percore.t option;
  backend : Ukalloc.Alloc.t;
}

let server_ip = A.Ipv4.of_string "10.0.0.1"
let client_ip = A.Ipv4.of_string "10.0.0.2"

let create ?(seed = 1) ?(alloc_mode = Arena) ?fastpath ~n () =
  if n <= 0 then invalid_arg "Cluster.create: n must be positive";
  let smp = Uksmp.Smp.create ~seed ~cores:(2 * n) () in
  (* Feed the uktrace profiling sampler: per-step cycle deltas attribute
     to whatever span is open on the stepped core. A no-op (and
     behaviour-preserving) when the default tracer is disabled. *)
  Uksmp.Smp.set_step_observer smp
    (Some
       (fun ~core ~cycles -> Uktrace.Tracer.attribute Uktrace.Tracer.default ~core ~cycles));
  let queues side =
    (* server cores are 0..n-1, client cores n..2n-1 *)
    Array.init n (fun i ->
        let core = (match side with `Server -> i | `Client -> n + i) in
        (Uksmp.Smp.clock_of smp ~core, Uksmp.Smp.engine_of smp ~core))
  in
  let dev_a, dev_b =
    Uknetdev.Loopback.create_pair
      ~clock:(Uksmp.Smp.clock_of smp ~core:0)
      ~engine:(Uksmp.Smp.engine_of smp ~core:0)
      ~queues_a:(queues `Server) ~queues_b:(queues `Client) ()
  in
  (* The allocator backend lives on a dummy clock: its internal charges go
     nowhere, and the spinlock hold in Percore / shared_lock_views is the
     modeled cost — identical for both modes, so the ablation compares
     pure serialization. *)
  let backend =
    Ukalloc.Tlsf.create ~clock:(Uksim.Clock.create ()) ~base:(1 lsl 26) ~len:(1 lsl 26)
  in
  let server_clocks = Array.init n (fun i -> Uksmp.Smp.clock_of smp ~core:i) in
  let allocs, alloc_spin, arena =
    match alloc_mode with
    | Arena ->
        let arena = Ukalloc.Percore.create ~clocks:server_clocks ~backend () in
        ( Array.init n (fun i -> Ukalloc.Percore.view arena ~core:i),
          Ukalloc.Percore.lock arena,
          Some arena )
    | Shared_lock ->
        let views, spin = Ukalloc.Percore.shared_lock_views ~clocks:server_clocks ~backend () in
        (views, spin, None)
  in
  (* Shared-pool ablation: one netbuf pool serves every server stack, and
     each take/give pays a spinlock acquire against the caller's core
     clock — the serialization the per-core pools exist to avoid. The
     pool's own clock is a dummy; costs are charged via [on_op]. *)
  let shared_pool =
    match fastpath with
    | Some fp when fp.shared_pool ->
        let psp = Uklock.Lock.Spin.create ~name:"nbpool" () in
        Some
          (Nb.Pool.create ~clock:(Uksim.Clock.create ())
             ~on_op:(fun clock -> Uklock.Lock.Spin.acquire psp clock ~hold:30)
             ~count:(n * 512) ~size:2048 ())
    | _ -> None
  in
  let mk_stack ~core ~dev ~qid ~ip ~mac ~server =
    let cfg =
      { S.mac = A.Mac.of_int mac; ip; netmask = A.Ipv4.of_string "255.255.255.0";
        gateway = None }
    in
    let clock = Uksmp.Smp.clock_of smp ~core in
    let engine = Uksmp.Smp.engine_of smp ~core in
    let sched = Uksmp.Smp.sched_of smp ~core in
    let s =
      match fastpath with
      | None -> S.create ~clock ~engine ~sched ~dev ~qid cfg
      | Some fp ->
          S.create ~clock ~engine ~sched ~dev ~qid ~rx_batch:fp.rx_batch
            ~rx_copy:fp.rx_copy ~tx_coalesce:fp.tx_coalesce
            ?pool:(if server then shared_pool else None)
            cfg
    in
    S.start s;
    s
  in
  let server_stacks =
    Array.init n (fun i ->
        mk_stack ~core:i ~dev:dev_a ~qid:i ~ip:server_ip ~mac:0xA ~server:true)
  in
  let client_stacks =
    Array.init n (fun j ->
        mk_stack ~core:(n + j) ~dev:dev_b ~qid:j ~ip:client_ip ~mac:0xB ~server:false)
  in
  { smp; n; mode = alloc_mode; server_stacks; client_stacks; allocs; alloc_spin; arena;
    backend }

let smp t = t.smp
let n t = t.n
let mode t = t.mode
let server_stack t i = t.server_stacks.(i)
let client_stack t j = t.client_stacks.(j)
let alloc_view t i = t.allocs.(i)
let alloc_spin t = t.alloc_spin
let arena t = t.arena
let trace_hash t = Uksmp.Smp.trace_hash t.smp
let elapsed_ns t = Uksmp.Smp.elapsed_ns t.smp

(* Distribute globally unique source ports so that connection [ci] of
   client core [j] hashes to queue [j]. Ports must be globally unique
   because all client stacks share one IP — a reused port would collide
   in the target server stack's connection table. *)
let steered_ports t ~dport ~per_core =
  let buckets = Array.make t.n [] in
  let filled = ref 0 in
  let p = ref 20000 in
  while !filled < t.n do
    let q =
      Uknetdev.Rss.queue_of_tuple ~n_queues:t.n ~proto:6
        ~src_ip:(A.Ipv4.to_int client_ip) ~src_port:!p ~dst_ip:(A.Ipv4.to_int server_ip)
        ~dst_port:dport
    in
    if List.length buckets.(q) < per_core then begin
      buckets.(q) <- !p :: buckets.(q);
      if List.length buckets.(q) = per_core then incr filled
    end;
    incr p;
    if !p > 60000 then invalid_arg "Cluster.steered_ports: port search exhausted"
  done;
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

let t_start t =
  (* Barrier before the load: align every core on the slowest core's
     present (bring-up work — stacks, servers, prepopulation — is uneven
     across cores). Without this, a lagging core's first contended lock
     acquire would spin across the whole bring-up epoch and pollute the
     contention stats; with it, the measurement window opens with all
     cores synchronized, as a wall-clock benchmark would. *)
  let target = ref 0 in
  for core = 0 to (2 * t.n) - 1 do
    target := max !target (Uksim.Clock.cycles (Uksmp.Smp.clock_of t.smp ~core))
  done;
  for core = 0 to (2 * t.n) - 1 do
    let c = Uksmp.Smp.clock_of t.smp ~core in
    let d = !target - Uksim.Clock.cycles c in
    if d > 0 then Uksim.Clock.advance c d
  done;
  Uksim.Clock.ns (Uksmp.Smp.clock_of t.smp ~core:0)

(* --- httpd ---------------------------------------------------------------- *)

let add_httpd t ?(port = 80) content =
  Array.init t.n (fun i ->
      Httpd.create
        ~clock:(Uksmp.Smp.clock_of t.smp ~core:i)
        ~sched:(Uksmp.Smp.sched_of t.smp ~core:i)
        ~stack:t.server_stacks.(i) ~alloc:t.allocs.(i) ~port ~core:i content)

let run_httpd_load t ?(port = 80) ?(connections_per_core = 8) ?(requests_per_core = 4000)
    ?path () =
  let agg = Wrk.new_agg () in
  let ports = steered_ports t ~dport:port ~per_core:connections_per_core in
  for j = 0 to t.n - 1 do
    let core = t.n + j in
    Wrk.spawn
      ~clock:(Uksmp.Smp.clock_of t.smp ~core)
      ~sched:(Uksmp.Smp.sched_of t.smp ~core)
      ~stack:t.client_stacks.(j) ~server:(server_ip, port)
      ~connections:connections_per_core ~requests:requests_per_core ?path
      ~port_for:(fun ci -> Some ports.(j).(ci))
      ~agg ()
  done;
  let start = t_start t in
  Uksmp.Smp.run t.smp;
  Wrk.result_of_agg agg ~t_start:start

let add_httpd_fast t ?(port = 80) ?rtc content =
  Array.init t.n (fun i ->
      Httpd.create_fast
        ~clock:(Uksmp.Smp.clock_of t.smp ~core:i)
        ~sched:(Uksmp.Smp.sched_of t.smp ~core:i)
        ~stack:t.server_stacks.(i) ~alloc:t.allocs.(i) ~port ~core:i ?rtc content)

let run_httpd_load_fast t ?(port = 80) ?(connections_per_core = 8)
    ?(requests_per_core = 4000) ?path ?pipeline () =
  let agg = Wrk.new_agg () in
  let ports = steered_ports t ~dport:port ~per_core:connections_per_core in
  for j = 0 to t.n - 1 do
    let core = t.n + j in
    Wrk.spawn_fast
      ~clock:(Uksmp.Smp.clock_of t.smp ~core)
      ~sched:(Uksmp.Smp.sched_of t.smp ~core)
      ~stack:t.client_stacks.(j) ~server:(server_ip, port)
      ~connections:connections_per_core ~requests:requests_per_core ?path ?pipeline
      ~port_for:(fun ci -> Some ports.(j).(ci))
      ~agg ()
  done;
  let start = t_start t in
  Uksmp.Smp.run t.smp;
  Wrk.result_of_agg agg ~t_start:start

(* --- RESP store ----------------------------------------------------------- *)

let add_resp t ?(port = 6379) ?(populate = 0) () =
  let workers =
    let first = ref None in
    Array.init t.n (fun i ->
        let w =
          Resp_store.create
            ~clock:(Uksmp.Smp.clock_of t.smp ~core:i)
            ~sched:(Uksmp.Smp.sched_of t.smp ~core:i)
            ~stack:t.server_stacks.(i) ~alloc:t.allocs.(i) ~port ~core:i
            ?share_with:!first ()
        in
        if !first = None then first := Some w;
        w)
  in
  (* Pre-populate the shared database (key pattern matches Resp_bench's)
     through worker 0 so GET workloads measure hits. *)
  for k = 0 to populate - 1 do
    ignore (Resp_store.execute workers.(0) [ "SET"; Printf.sprintf "key:%06d" k; "xxx" ])
  done;
  workers

let add_resp_fast t ?(port = 6379) ?(populate = 0) ?rtc () =
  let workers =
    let first = ref None in
    Array.init t.n (fun i ->
        let w =
          Resp_store.create_fast
            ~clock:(Uksmp.Smp.clock_of t.smp ~core:i)
            ~sched:(Uksmp.Smp.sched_of t.smp ~core:i)
            ~stack:t.server_stacks.(i) ~alloc:t.allocs.(i) ~port ~core:i
            ?share_with:!first ?rtc ()
        in
        if !first = None then first := Some w;
        w)
  in
  for k = 0 to populate - 1 do
    ignore (Resp_store.execute workers.(0) [ "SET"; Printf.sprintf "key:%06d" k; "xxx" ])
  done;
  workers

let run_resp_load_fast t ?(port = 6379) ?(connections_per_core = 8) ?(pipeline = 16)
    ?(requests_per_core = 10_000) workload =
  let agg = Resp_bench.new_agg () in
  let ports = steered_ports t ~dport:port ~per_core:connections_per_core in
  for j = 0 to t.n - 1 do
    let core = t.n + j in
    Resp_bench.spawn_fast
      ~clock:(Uksmp.Smp.clock_of t.smp ~core)
      ~sched:(Uksmp.Smp.sched_of t.smp ~core)
      ~stack:t.client_stacks.(j) ~server:(server_ip, port)
      ~connections:connections_per_core ~pipeline ~requests:requests_per_core
      ~port_for:(fun ci -> Some ports.(j).(ci))
      ~agg workload
  done;
  let start = t_start t in
  Uksmp.Smp.run t.smp;
  Resp_bench.result_of_agg agg ~t_start:start

(* --- inference ------------------------------------------------------------- *)

(* Per-core model serving: each server core gets its own virtio-blk
   store, weight file, vfs mount and admission queue (the replicated-
   image deployment — no cross-core weight sharing to serialize on). *)
let add_infer_with mk t ?(port = 8000) ?(size_mb = 4) ?max_batch ?max_wait_ns () =
  Array.init t.n (fun i ->
      let clock = Uksmp.Smp.clock_of t.smp ~core:i in
      let engine = Uksmp.Smp.engine_of t.smp ~core:i in
      let dev =
        Ukblock.Virtio_blk.create ~clock ~engine
          ~capacity_sectors:((size_mb + 2) * 2048) ()
      in
      let store, name = Infer.publish ~clock ~dev ~size_mb () in
      let vfs = Ukvfs.Vfs.create ~clock in
      (match Ukvfs.Vfs.mount vfs ~at:"/models" (Ukvfs.Blockfs.to_fs store) with
      | Ok () -> ()
      | Error e -> invalid_arg ("Cluster.add_infer: " ^ Ukvfs.Fs.errno_to_string e));
      let model =
        match Infer.load ~clock ~vfs ~store ~path:("/models/" ^ name) () with
        | Ok m -> m
        | Error e -> invalid_arg ("Cluster.add_infer: " ^ e)
      in
      mk ~clock ~engine
        ~sched:(Uksmp.Smp.sched_of t.smp ~core:i)
        ~stack:t.server_stacks.(i) ~alloc:t.allocs.(i) ~port ~core:i ?max_batch
        ?max_wait_ns ~model ())

let add_infer t ?port ?size_mb ?max_batch ?max_wait_ns () =
  add_infer_with
    (fun ~clock ~engine ~sched ~stack ~alloc ~port ~core ?max_batch ?max_wait_ns ~model () ->
      Infer.create ~clock ~engine ~sched ~stack ~alloc ~port ~core ?max_batch
        ?max_wait_ns ~model ())
    t ?port ?size_mb ?max_batch ?max_wait_ns ()

let add_infer_fast t ?port ?size_mb ?rtc ?max_batch ?max_wait_ns () =
  add_infer_with
    (fun ~clock ~engine ~sched ~stack ~alloc ~port ~core ?max_batch ?max_wait_ns ~model () ->
      Infer.create_fast ~clock ~engine ~sched ~stack ~alloc ~port ~core ?rtc ?max_batch
        ?max_wait_ns ~model ())
    t ?port ?size_mb ?max_batch ?max_wait_ns ()

let run_infer_load_with spawn t ?(port = 8000) ?(connections_per_core = 8)
    ?(requests_per_core = 4000) ?pipeline ?width () =
  let agg = Infer.new_agg () in
  let ports = steered_ports t ~dport:port ~per_core:connections_per_core in
  for j = 0 to t.n - 1 do
    let core = t.n + j in
    spawn
      ~clock:(Uksmp.Smp.clock_of t.smp ~core)
      ~sched:(Uksmp.Smp.sched_of t.smp ~core)
      ~stack:t.client_stacks.(j) ~server:(server_ip, port)
      ~connections:connections_per_core ?pipeline ~requests:requests_per_core ?width
      ~port_for:(fun ci -> Some ports.(j).(ci))
      ~agg ()
  done;
  let start = t_start t in
  Uksmp.Smp.run t.smp;
  Infer.result_of_agg agg ~t_start:start

let run_infer_load t =
  run_infer_load_with
    (fun ~clock ~sched ~stack ~server ~connections ?pipeline ~requests ?width ~port_for
         ~agg () ->
      Infer.spawn_load ~clock ~sched ~stack ~server ~connections ?pipeline ~requests
        ?width ~port_for ~agg ())
    t

let run_infer_load_fast t =
  run_infer_load_with
    (fun ~clock ~sched ~stack ~server ~connections ?pipeline ~requests ?width ~port_for
         ~agg () ->
      Infer.spawn_load_fast ~clock ~sched ~stack ~server ~connections ?pipeline
        ~requests ?width ~port_for ~agg ())
    t

(* --- merkle store ----------------------------------------------------------- *)

(* Per-core store serving: each server core owns a virtio-blk device
   formatted as a ukstore, pre-populated and committed before the load
   starts (the fleet image's disk prep, replicated per core). *)
let add_store_with mk t ?(port = 7000) ?(keys = 256) ?(journal_sectors = 512)
    ?commit_every () =
  Array.init t.n (fun i ->
      let clock = Uksmp.Smp.clock_of t.smp ~core:i in
      let engine = Uksmp.Smp.engine_of t.smp ~core:i in
      let dev =
        Ukblock.Virtio_blk.create ~clock ~engine ~capacity_sectors:32768 ()
      in
      let store =
        match Ukstore.Store.format ~clock ~journal_sectors dev with
        | Ok s -> s
        | Error e -> invalid_arg ("Cluster.add_store: " ^ Ukvfs.Fs.errno_to_string e)
      in
      let srv =
        mk ~clock
          ~sched:(Uksmp.Smp.sched_of t.smp ~core:i)
          ~stack:t.server_stacks.(i) ~port ~core:i ?commit_every ~store ()
      in
      Store.populate srv keys;
      srv)

let add_store t ?port ?keys ?journal_sectors ?commit_every () =
  add_store_with
    (fun ~clock ~sched ~stack ~port ~core ?commit_every ~store () ->
      Store.create ~clock ~sched ~stack ~port ~core ?commit_every ~store ())
    t ?port ?keys ?journal_sectors ?commit_every ()

let add_store_fast t ?port ?keys ?journal_sectors ?rtc ?commit_every () =
  add_store_with
    (fun ~clock ~sched ~stack ~port ~core ?commit_every ~store () ->
      Store.create_fast ~clock ~sched ~stack ~port ~core ?rtc ?commit_every ~store ())
    t ?port ?keys ?journal_sectors ?commit_every ()

let run_store_load_with spawn t ?(port = 7000) ?(connections_per_core = 8)
    ?(requests_per_core = 4000) ?pipeline ?write_frac ?keyspace ?commit_every ?seed () =
  let agg = Store.new_agg () in
  let ports = steered_ports t ~dport:port ~per_core:connections_per_core in
  for j = 0 to t.n - 1 do
    let core = t.n + j in
    spawn
      ~clock:(Uksmp.Smp.clock_of t.smp ~core)
      ~sched:(Uksmp.Smp.sched_of t.smp ~core)
      ~stack:t.client_stacks.(j) ~server:(server_ip, port)
      ~connections:connections_per_core ?pipeline ~requests:requests_per_core
      ?write_frac ?keyspace ?commit_every ?seed
      ~port_for:(fun ci -> Some ports.(j).(ci))
      ~agg ()
  done;
  let start = t_start t in
  Uksmp.Smp.run t.smp;
  Store.result_of_agg agg ~t_start:start

let run_store_load t =
  run_store_load_with
    (fun ~clock ~sched ~stack ~server ~connections ?pipeline ~requests ?write_frac
         ?keyspace ?commit_every ?seed ~port_for ~agg () ->
      Store.spawn_load ~clock ~sched ~stack ~server ~connections ?pipeline ~requests
        ?write_frac ?keyspace ?commit_every ?seed ~port_for ~agg ())
    t

let run_store_load_fast t =
  run_store_load_with
    (fun ~clock ~sched ~stack ~server ~connections ?pipeline ~requests ?write_frac
         ?keyspace ?commit_every ?seed ~port_for ~agg () ->
      Store.spawn_load_fast ~clock ~sched ~stack ~server ~connections ?pipeline
        ~requests ?write_frac ?keyspace ?commit_every ?seed ~port_for ~agg ())
    t

let run_resp_load t ?(port = 6379) ?(connections_per_core = 8) ?(pipeline = 16)
    ?(requests_per_core = 10_000) workload =
  let agg = Resp_bench.new_agg () in
  let ports = steered_ports t ~dport:port ~per_core:connections_per_core in
  for j = 0 to t.n - 1 do
    let core = t.n + j in
    Resp_bench.spawn
      ~clock:(Uksmp.Smp.clock_of t.smp ~core)
      ~sched:(Uksmp.Smp.sched_of t.smp ~core)
      ~stack:t.client_stacks.(j) ~server:(server_ip, port)
      ~connections:connections_per_core ~pipeline ~requests:requests_per_core
      ~port_for:(fun ci -> Some ports.(j).(ci))
      ~agg workload
  done;
  let start = t_start t in
  Uksmp.Smp.run t.smp;
  Resp_bench.result_of_agg agg ~t_start:start
