(** wrk-like HTTP load generator (paper Fig 13: 1 minute, 14 threads, 30
    connections, static 612 B page).

    Each connection issues sequential keep-alive GETs; throughput and
    latency are measured in virtual time. The request count is given
    explicitly instead of a wall-clock minute — in a simulator a fixed
    sample with rate = n/elapsed is the same estimator without the dead
    time. *)

type result = {
  requests : int;
  elapsed_ns : float;
  rate_per_sec : float;
  latency_us_mean : float;
  latency_us_p99 : float;
  errors : int;
}

type agg
(** Shared aggregator for SMP runs: {!spawn} one client group per core
    into the same [agg], drive the cores (e.g. [Uksmp.Smp.run]), then read
    {!result_of_agg}. Every finishing connection pushes the end-time
    forward, so elapsed closes with the slowest core. *)

val new_agg : unit -> agg

val spawn :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  server:Uknetstack.Addr.Ipv4.t * int ->
  ?connections:int ->
  ?requests:int ->
  ?path:string ->
  ?port_for:(int -> int option) ->
  agg:agg ->
  unit ->
  unit
(** Spawn the client threads (pinned) without driving the scheduler.
    [port_for ci] forces connection [ci]'s source port — used to steer its
    RSS hash to a chosen queue. Defaults as {!run}. *)

val spawn_fast :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  server:Uknetstack.Addr.Ipv4.t * int ->
  ?connections:int ->
  ?requests:int ->
  ?path:string ->
  ?pipeline:int ->
  ?port_for:(int -> int option) ->
  agg:agg ->
  unit ->
  unit
(** Zero-copy pipelined client for driving {!Httpd.create_fast} servers:
    one legacy warm-up request per connection learns the fixed response
    length, then requests go out [pipeline] (default 16) at a time through
    an {!Nbio} writer and responses are drained by a byte-counting
    {!Uknetstack.Tcp.set_rx_sink} — the client makes no counted payload
    copies after warm-up. Latency samples are per-request (batch time /
    batch size). *)

val result_of_agg : agg -> t_start:float -> result

val run :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  server:Uknetstack.Addr.Ipv4.t * int ->
  ?connections:int ->
  ?requests:int ->
  ?path:string ->
  unit ->
  result
(** Defaults: 30 connections, 30k requests, "/index.html". Drives [sched]
    until the load completes; call from outside any scheduler thread. *)
