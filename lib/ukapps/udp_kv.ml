module S = Uknetstack.Stack
module A = Uknetstack.Addr
module Nb = Uknetdev.Netbuf
module Nd = Uknetdev.Netdev
module P = Uknetstack.Pkt

type store = {
  clock : Uksim.Clock.t;
  alloc : Ukalloc.Alloc.t;
  table : (string, int * string) Hashtbl.t; (* key -> (alloc addr, value) *)
}

let hash_cost = 130

let create_store ~clock ~alloc = { clock; alloc; table = Hashtbl.create 1024 }

let store_set st key value =
  Uksim.Clock.advance st.clock hash_cost;
  (match Hashtbl.find_opt st.table key with
  | Some (addr, _) -> Ukalloc.Alloc.uk_free st.alloc addr
  | None -> ());
  match Ukalloc.Alloc.uk_malloc st.alloc (max 16 (String.length value)) with
  | Some addr -> Hashtbl.replace st.table key (addr, value)
  | None -> ()

let store_get st key =
  Uksim.Clock.advance st.clock hash_cost;
  match Hashtbl.find_opt st.table key with
  | Some (_, v) -> Some v
  | None -> None

let store_size st = Hashtbl.length st.table

(* Request processing shared by both servers. *)
let answer st request =
  match String.split_on_char ' ' request with
  | [ "G"; key ] -> ( match store_get st key with Some v -> v | None -> "MISS")
  | "S" :: key :: rest ->
      store_set st key (String.concat " " rest);
      "OK"
  | _ -> "ERR"

(* --- socket build (the LWIP row) ---------------------------------------- *)

let serve_sockets ~sched ~stack ~store ?(port = 5000) ?(syscall_cost = 0) () =
  let _ =
    Uksched.Sched.spawn sched ~name:"udpkv-socket" ~daemon:true (fun () ->
        let sock = S.Udp_socket.bind stack ~port in
        let rec loop () =
          match S.Udp_socket.recvfrom ~block:true sock with
          | None -> ()
          | Some (src, sport, data) ->
              if syscall_cost > 0 then Uksim.Clock.advance store.clock syscall_cost;
              let reply = answer store (Bytes.to_string data) in
              if syscall_cost > 0 then Uksim.Clock.advance store.clock syscall_cost;
              S.Udp_socket.sendto sock ~dst:(src, sport) (Bytes.of_string reply);
              loop ()
        in
        loop ())
  in
  ()

(* --- specialized build (the uknetdev row) -------------------------------- *)

(* Per-packet budget of the specialized path: inline header validation and
   in-place swap (no stack layers, no socket, no scheduler hand-offs). *)
let spec_parse_cost = 95
let spec_reply_cost = 80

let serve_netdev ~clock ~sched ~dev ~store ~mac ~ip ?(port = 5000) () =
  (* The paper's mixed mode (§3.1): poll under load, arm the queue
     interrupt and park only when the ring runs dry. *)
  let tid =
    Uksched.Sched.spawn sched ~name:"udpkv-netdev" ~daemon:true (fun () ->
        let rec loop () =
          let pkts = dev.Nd.rx_burst ~qid:0 ~max:64 in
          let replies = ref [] in
          List.iter
            (fun nb ->
              Uksim.Clock.advance clock spec_parse_cost;
              (match P.Eth.decode nb with
              | Ok { P.Eth.proto = P.Eth.Ipv4; src = peer_mac; _ } -> (
                  match P.Ipv4.decode nb with
                  | Ok { P.Ipv4.proto = P.Ipv4.Udp; src = peer_ip; dst; _ }
                    when A.Ipv4.equal dst ip -> (
                      match P.Udp.decode ~src:peer_ip ~dst nb with
                      | Ok { P.Udp.src_port; dst_port } when dst_port = port ->
                          let reply = answer store (Bytes.to_string (Nb.to_payload nb)) in
                          Uksim.Clock.advance clock spec_reply_cost;
                          let out = Nb.of_bytes (Bytes.of_string reply) in
                          P.Udp.encode
                            { P.Udp.src_port = port; dst_port = src_port }
                            ~src:ip ~dst:peer_ip out;
                          P.Ipv4.encode
                            (P.Ipv4.header ~src:ip ~dst:peer_ip ~proto:P.Ipv4.Udp
                               ~payload_len:(Nb.len out))
                            out;
                          P.Eth.encode { P.Eth.dst = peer_mac; src = mac; proto = P.Eth.Ipv4 } out;
                          replies := out :: !replies
                      | Ok _ | Error _ -> ())
                  | Ok _ | Error _ -> ())
              | Ok _ | Error _ -> ());
              Nb.recycle nb)
            pkts;
          if !replies <> [] then
            ignore (dev.Nd.tx_burst ~qid:0 (Array.of_list (List.rev !replies)));
          if pkts = [] then Uksched.Sched.block () else Uksched.Sched.yield ();
          loop ()
        in
        loop ())
  in
  dev.Nd.configure_queue ~qid:0
    {
      Nd.rx_path = Nd.Zero_copy;
      mode = Nd.Interrupt_driven;
      rx_handler = Some (fun () -> Uksched.Sched.wake sched tid);
    }

(* --- clients --------------------------------------------------------------- *)

module Client = struct
  type result = { requests : int; replies : int; elapsed_ns : float; rate_per_sec : float }

  let key_of i = Printf.sprintf "k%04d" (i land 0x3ff)

  let request_of i =
    if i land 7 = 0 then Printf.sprintf "S %s value-%d" (key_of i) i
    else Printf.sprintf "G %s" (key_of i)

  let run_sockets ~clock ~sched ~stack ~server:(sip, sport) ?(requests = 20_000)
      ?(inflight = 32) () =
    let sock = S.Udp_socket.bind stack ~port:6000 in
    let replies = ref 0 in
    let t_start = ref 0.0 and t_end = ref 0.0 in
    let _ =
      Uksched.Sched.spawn sched ~name:"udpkv-client" (fun () ->
          t_start := Uksim.Clock.ns clock;
          let sent = ref 0 in
          let window () =
            while !sent < requests && !sent - !replies < inflight do
              Uksim.Clock.advance clock 80;
              S.Udp_socket.sendto sock ~dst:(sip, sport) (Bytes.of_string (request_of !sent));
              incr sent
            done
          in
          window ();
          while !replies < requests do
            (match S.Udp_socket.recvfrom ~block:true sock with
            | Some _ -> incr replies
            | None -> ());
            window ()
          done;
          t_end := Uksim.Clock.ns clock)
    in
    Uksched.Sched.run sched;
    let elapsed = !t_end -. !t_start in
    {
      requests;
      replies = !replies;
      elapsed_ns = elapsed;
      rate_per_sec = Uksim.Stats.throughput_per_sec ~events:!replies ~elapsed_ns:elapsed;
    }

  let run_netdev ~clock ~sched ~dev ~mac ~ip ~server_mac ~server:(sip, sport)
      ?(requests = 50_000) ?(batch = 32) () =
    dev.Nd.configure_queue ~qid:0
      { Nd.rx_path = Nd.Zero_copy; mode = Nd.Polling; rx_handler = None };
    let replies = ref 0 in
    let t_start = ref 0.0 and t_end = ref 0.0 in
    let craft i =
      let out = Nb.of_bytes (Bytes.of_string (request_of i)) in
      P.Udp.encode { P.Udp.src_port = 6000; dst_port = sport } ~src:ip ~dst:sip out;
      P.Ipv4.encode
        (P.Ipv4.header ~src:ip ~dst:sip ~proto:P.Ipv4.Udp ~payload_len:(Nb.len out))
        out;
      P.Eth.encode { P.Eth.dst = server_mac; src = mac; proto = P.Eth.Ipv4 } out;
      out
    in
    let _ =
      Uksched.Sched.spawn sched ~name:"udpkv-pktgen" (fun () ->
          t_start := Uksim.Clock.ns clock;
          let sent = ref 0 in
          while !replies < requests do
            (* Keep a bounded number of requests outstanding. *)
            if !sent < requests && !sent - !replies < 128 then begin
              let n = min batch (requests - !sent) in
              let pkts = Array.init n (fun k -> craft (!sent + k)) in
              Uksim.Clock.advance clock (40 * n);
              let accepted = dev.Nd.tx_burst ~qid:0 pkts in
              sent := !sent + accepted
            end;
            let got = dev.Nd.rx_burst ~qid:0 ~max:64 in
            List.iter
              (fun nb ->
                incr replies;
                Nb.recycle nb)
              got;
            Uksim.Clock.advance clock 60;
            Uksched.Sched.yield ()
          done;
          t_end := Uksim.Clock.ns clock)
    in
    Uksched.Sched.run sched;
    let elapsed = !t_end -. !t_start in
    {
      requests;
      replies = !replies;
      elapsed_ns = elapsed;
      rate_per_sec = Uksim.Stats.throughput_per_sec ~events:!replies ~elapsed_ns:elapsed;
    }
end
