module S = Uknetstack.Stack

type content =
  | In_memory of (string * string) list
  | Via_vfs of Ukvfs.Vfs.t
  | Via_shfs of Ukvfs.Shfs.t

type stats = { requests : int; errors_404 : int; errors_503 : int; bytes_sent : int }

type t = {
  clock : Uksim.Clock.t;
  sched : Uksched.Sched.t;
  stack : S.t;
  alloc : Ukalloc.Alloc.t;
  content : content;
  core : int; (* tracepoint lane; the owning core under SMP *)
  mutable st : stats;
}

(* nginx-ish request handling work: header parse, route, log. *)
let parse_cost = 540
let respond_cost = 380

let default_page =
  let body =
    "<!DOCTYPE html><html><head><title>Unikraft</title></head><body>"
    ^ "<h1>It works!</h1><p>"
    ^ String.concat ""
        (List.init 16 (fun i -> Printf.sprintf "line %02d of the static test page......." i))
    ^ "</p></body></html>"
  in
  (* Pad to exactly 612 bytes, the paper's page size. *)
  if String.length body >= 612 then String.sub body 0 612
  else body ^ String.make (612 - String.length body) ' '

let charge t c = Uksim.Clock.advance t.clock c

let lookup t path =
  match t.content with
  | In_memory pages -> (
      match List.assoc_opt path pages with
      | Some body -> Some body
      | None -> None)
  | Via_vfs vfs -> (
      match Ukvfs.Vfs.open_file vfs path () with
      | Error _ -> None
      | Ok fd -> (
          let result =
            match Ukvfs.Vfs.stat vfs path with
            | Ok { Ukvfs.Fs.size; _ } -> (
                match Ukvfs.Vfs.pread vfs fd ~off:0 ~len:size with
                | Ok data -> Some (Bytes.to_string data)
                | Error _ -> None)
            | Error _ -> None
          in
          ignore (Ukvfs.Vfs.close vfs fd);
          result))
  | Via_shfs shfs -> (
      let name = match Ukvfs.Fs.split_path path with [ n ] -> n | _ -> path in
      match Ukvfs.Shfs.open_direct shfs name with
      | Error _ -> None
      | Ok h ->
          let size = Ukvfs.Shfs.size_direct shfs h in
          let result =
            match Ukvfs.Shfs.read_direct shfs h ~off:0 ~len:size with
            | Ok data -> Some (Bytes.to_string data)
            | Error _ -> None
          in
          Ukvfs.Shfs.close_direct shfs h;
          result)

let response ~status ~body =
  Printf.sprintf "HTTP/1.1 %s\r\nServer: ukraft\r\nContent-Length: %d\r\nConnection: keep-alive\r\n\r\n%s"
    status (String.length body) body

(* Extract the path of a "GET <path> HTTP/1.x" request line. *)
let parse_request line =
  match String.split_on_char ' ' line with
  | [ "GET"; path; _version ] -> Some path
  | _ -> None

let rec handle_request t req_line =
  Uktrace.Tracer.span Uktrace.Tracer.default t.clock ~core:t.core ~cat:"ukapps"
    "http_request" (fun () -> handle_request_untraced t req_line)

and handle_request_untraced t req_line =
  charge t parse_cost;
  (* Per-request buffer from the app allocator, as nginx's request pool. *)
  let pool = Ukalloc.Alloc.uk_malloc t.alloc 1024 in
  let reply =
    match pool with
    | None ->
        (* Allocator under pressure: shed the request instead of serving
           it half-built (degraded mode). *)
        t.st <- { t.st with errors_503 = t.st.errors_503 + 1 };
        response ~status:"503 Service Unavailable" ~body:"overloaded"
    | Some _ -> (
        match parse_request req_line with
        | None -> response ~status:"400 Bad Request" ~body:"bad request"
        | Some path -> (
            match lookup t path with
            | Some body ->
                charge t (Uksim.Cost.memcpy (String.length body));
                response ~status:"200 OK" ~body
            | None ->
                t.st <- { t.st with errors_404 = t.st.errors_404 + 1 };
                response ~status:"404 Not Found" ~body:"not found"))
  in
  charge t respond_cost;
  (match pool with Some addr -> Ukalloc.Alloc.uk_free t.alloc addr | None -> ());
  t.st <- { t.st with requests = t.st.requests + 1; bytes_sent = t.st.bytes_sent + String.length reply };
  reply

let handle_connection t flow =
  let acc = Buffer.create 512 in
  let rec serve () =
    match S.Tcp_socket.recv ~block:true t.stack flow ~max:16384 with
    | None -> S.Tcp_socket.close t.stack flow
    | Some data ->
        Buffer.add_bytes acc data;
        let s = Buffer.contents acc in
        (* Handle every complete request (terminated by CRLFCRLF); the
           scan cursor is distinct from the unconsumed-request start. *)
        let rec split_requests req_start scan acc_out =
          match String.index_from_opt s scan '\r' with
          | Some i when i + 3 < String.length s && String.sub s i 4 = "\r\n\r\n" ->
              let req = String.sub s req_start (i - req_start) in
              let first_line =
                match String.index_opt req '\r' with
                | Some j -> String.sub req 0 j
                | None -> req
              in
              split_requests (i + 4) (i + 4) (first_line :: acc_out)
          | Some i -> split_requests req_start (i + 1) acc_out
          | None -> (req_start, List.rev acc_out)
        in
        let consumed, requests = split_requests 0 0 [] in
        if consumed > 0 then begin
          let rest = String.sub s consumed (String.length s - consumed) in
          Buffer.clear acc;
          Buffer.add_string acc rest
        end;
        let out = Buffer.create 1024 in
        List.iter (fun line -> Buffer.add_string out (handle_request t line)) requests;
        if Buffer.length out > 0 then
          ignore (S.Tcp_socket.send ~block:true t.stack flow (Buffer.to_bytes out));
        serve ()
  in
  serve ()

(* --- zero-copy run-to-completion fast path (the paper's Fig 14 port) ------ *)

module Nb = Uknetdev.Netbuf
module Tcp = Uknetstack.Tcp

(* Specialized request handling: the request line is parsed in place in
   the driver's ring buffer (no per-request pool, no header
   re-materialization), so the per-request budget shrinks from
   [parse_cost + respond_cost] to a scan plus a template write. *)
let fast_parse_cost = 150
let fast_respond_cost = 110

(* Find "\r\n\r\n" in [buf] within [from, limit); the index after it. *)
let find_reqend buf from limit =
  let rec go i =
    if i + 3 >= limit then None
    else if
      Bytes.get buf i = '\r'
      && Bytes.get buf (i + 1) = '\n'
      && Bytes.get buf (i + 2) = '\r'
      && Bytes.get buf (i + 3) = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go from

(* Parse "GET <path> <version>" in place; the path is the only substring
   materialized (it is the lookup key, not payload). *)
let parse_fast buf rs limit =
  if limit - rs > 4 && Bytes.sub_string buf rs 4 = "GET " then
    match Bytes.index_from_opt buf (rs + 4) ' ' with
    | Some sp when sp < limit -> Some (Bytes.sub_string buf (rs + 4) (sp - rs - 4))
    | Some _ | None -> None
  else None

let fast_reply t w buf rs re =
  Uktrace.Tracer.span Uktrace.Tracer.default t.clock ~core:t.core ~cat:"ukapps"
    "http_request_fast" (fun () ->
      charge t fast_parse_cost;
      let line_end =
        match Bytes.index_from_opt buf rs '\r' with
        | Some i when i < re -> i
        | Some _ | None -> re
      in
      let reply =
        match parse_fast buf rs line_end with
        | None -> response ~status:"400 Bad Request" ~body:"bad request"
        | Some path -> (
            match lookup t path with
            | Some body -> response ~status:"200 OK" ~body
            | None ->
                t.st <- { t.st with errors_404 = t.st.errors_404 + 1 };
                response ~status:"404 Not Found" ~body:"not found")
      in
      charge t fast_respond_cost;
      Nbio.add w reply;
      t.st <-
        { t.st with
          requests = t.st.requests + 1;
          bytes_sent = t.st.bytes_sent + String.length reply })

(* Scan [buf[off, off+len)] for complete requests; returns bytes consumed. *)
let fast_scan t w buf off len =
  let limit = off + len in
  let rec go rs =
    match find_reqend buf rs limit with
    | Some re ->
        fast_reply t w buf rs re;
        go re
    | None -> rs - off
  in
  go off

(* Stash path: a request straddled a segment boundary, so this connection
   temporarily falls back to materialized bytes (one counted copy per
   stashed segment) until the pipeline realigns. *)
let stash_drain t w stash =
  let s = Buffer.contents stash in
  let b = Bytes.unsafe_of_string s in
  let consumed = fast_scan t w b 0 (String.length s) in
  if consumed > 0 then begin
    let rest = String.sub s consumed (String.length s - consumed) in
    Buffer.clear stash;
    Buffer.add_string stash rest
  end

let fast_on_data t flow stash nb =
  let w = Nbio.writer ~clock:t.clock ~stack:t.stack ~flow in
  (if Buffer.length stash = 0 then begin
     let buf, off, len = Nb.view nb in
     let consumed = fast_scan t w buf off len in
     if consumed < len then begin
       Nb.pull nb consumed;
       Buffer.add_bytes stash (Nb.copy_out nb)
     end;
     Nb.recycle nb
   end
   else begin
     Buffer.add_bytes stash (Nb.copy_out nb);
     Nb.recycle nb;
     stash_drain t w stash
   end);
  Nbio.flush w

let create_fast ~clock ~sched ~stack ~alloc ?(port = 80) ?(core = 0) ?(rtc = true) content =
  let t =
    { clock; sched; stack; alloc; content; core;
      st = { requests = 0; errors_404 = 0; errors_503 = 0; bytes_sent = 0 } }
  in
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukapps" ~name:"httpd"
       ~reset:(fun () ->
         t.st <- { requests = 0; errors_404 = 0; errors_503 = 0; bytes_sent = 0 })
       (fun () ->
         [
           ("requests", Uktrace.Metric.Count t.st.requests);
           ("errors_404", Uktrace.Metric.Count t.st.errors_404);
           ("errors_503", Uktrace.Metric.Count t.st.errors_503);
           ("bytes_sent", Uktrace.Metric.Count t.st.bytes_sent);
         ]));
  let l = S.Tcp_socket.listen stack ~port () in
  let dispatch =
    if rtc then fun job -> job ()
    else begin
      (* Ablation: instead of running to completion inside packet
         processing, hop through a pinned worker thread — the classic
         softirq-to-server handoff the fast path removes. *)
      let q : (unit -> unit) Queue.t = Queue.create () in
      let wtid =
        Uksched.Sched.spawn sched ~name:"httpd-fast-worker" ~daemon:true ~pinned:true
          (fun () ->
            let rec loop () =
              (match Queue.take_opt q with
              | Some job -> job ()
              | None -> Uksched.Sched.block ());
              loop ()
            in
            loop ())
      in
      fun job ->
        Queue.push job q;
        Uksched.Sched.wake sched wtid
    end
  in
  S.Tcp_socket.set_fast_accept l
    (Some
       (fun flow ->
         let stash = Buffer.create 64 in
         Tcp.set_rx_sink flow (Some (fun nb -> dispatch (fun () -> fast_on_data t flow stash nb)))));
  t

let create ~clock ~sched ~stack ~alloc ?(port = 80) ?(core = 0) content =
  let t =
    { clock; sched; stack; alloc; content; core;
      st = { requests = 0; errors_404 = 0; errors_503 = 0; bytes_sent = 0 } }
  in
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukapps" ~name:"httpd"
       ~reset:(fun () ->
         t.st <- { requests = 0; errors_404 = 0; errors_503 = 0; bytes_sent = 0 })
       (fun () ->
         [
           ("requests", Uktrace.Metric.Count t.st.requests);
           ("errors_404", Uktrace.Metric.Count t.st.errors_404);
           ("errors_503", Uktrace.Metric.Count t.st.errors_503);
           ("bytes_sent", Uktrace.Metric.Count t.st.bytes_sent);
         ]));
  (* Listen synchronously so the port is open before any other core's
     virtual time reaches a connect (see the Resp_store note). *)
  let l = S.Tcp_socket.listen stack ~port () in
  let _ =
    (* Pinned: server threads charge this instance's clock and stack, so
       work stealing must not migrate them to another core. *)
    Uksched.Sched.spawn sched ~name:"httpd-accept" ~daemon:true ~pinned:true (fun () ->
        let rec loop () =
          match S.Tcp_socket.accept ~block:true l with
          | Some flow ->
              let _ =
                Uksched.Sched.spawn sched ~name:"httpd-conn" ~daemon:true ~pinned:true
                  (fun () -> handle_connection t flow)
              in
              loop ()
          | None -> loop ()
        in
        loop ())
  in
  t

let stats t = t.st

let sum_stats ts =
  List.fold_left
    (fun acc t ->
      {
        requests = acc.requests + t.st.requests;
        errors_404 = acc.errors_404 + t.st.errors_404;
        errors_503 = acc.errors_503 + t.st.errors_503;
        bytes_sent = acc.bytes_sent + t.st.bytes_sent;
      })
    { requests = 0; errors_404 = 0; errors_503 = 0; bytes_sent = 0 }
    ts
