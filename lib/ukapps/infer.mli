(** Batched ML inference serving — the repo's first compute-dominated
    request shape (ROADMAP: production workloads beyond httpd/RESP).

    The server half of a TorchServe/Triton-style model server, specialized
    unikernel-wise:

    - {b Weights} are a content-addressed file (name = digest) published
      into a {!Ukvfs.Blockfs} store on a {!Ukblock.Blockdev}. At boot,
      {!load} resolves the file through vfscore (mount + stat), then
      streams it with {!Ukvfs.Blockfs.stream}: a deep window of chunk
      reads overlaps host latency and DMA, pages are installed into the
      model arena for page-table-write cycles only (no counted guest
      copy), and the per-page digest samples verify the content address
      on the fly. The full load time is charged to the virtual clock and
      exported on the sticky ["ukapps.infer"] {!Uktrace} source — it is
      the dominant term of a large-model cold boot.
    - {b Requests} ([INF <id> <width>\n]) cost an analytic cycle charge:
      every batch pays one weight-pass sweep proportional to the model
      size, plus a per-item term proportional to the item's width and the
      model size. Batching therefore amortizes the dominant term — the
      latency-vs-throughput knob the admission queue exposes.
    - {b Admission queue}: requests coalesce until [max_batch] are
      waiting (immediate flush) or [max_wait_ns] elapses on the engine
      timer (partial flush). Replies ([OK <id> <digest>\n], fixed
      {!reply_len} bytes) carry a per-request output digest derived from
      (weights digest, id, width), so fast/legacy servers can be checked
      for state-hash equivalence.

    Both server flavors of the PR-8 ablation exist: {!create} (legacy
    socket accept loop) and {!create_fast} (netbuf rx-sink
    run-to-completion port). *)

(** {1 Weights} *)

type model = {
  name : string;  (** content address (16 hex digits of [digest]) *)
  digest : int;
  size_mb : int;
  bytes : int;
  load_ns : float;  (** virtual time the boot-time weight stream took *)
}

val publish :
  clock:Uksim.Clock.t ->
  dev:Ukblock.Blockdev.t ->
  ?seed:int ->
  size_mb:int ->
  unit ->
  Ukvfs.Blockfs.t * string
(** Host-side population: format [dev] as a Blockfs store and write a
    deterministic seeded weight file of [size_mb] MiB. Returns the store
    and the file's content-address name. Same [seed] and [size_mb] always
    produce the same name. *)

val load :
  clock:Uksim.Clock.t ->
  vfs:Ukvfs.Vfs.t ->
  store:Ukvfs.Blockfs.t ->
  path:string ->
  unit ->
  (model, string) result
(** Boot-time weight load. [path] must resolve through [vfs] to the
    object (the store mounted at the path's directory); the bulk bytes
    then go through the store's streaming read path. Fails when the
    streamed digest does not match the manifest or the content-address
    name (tampered or rotten weights). *)

(** {1 Server} *)

type t

val create_bare :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  ?max_batch:int ->
  ?max_wait_ns:float ->
  ?core:int ->
  model:model ->
  unit ->
  t
(** The admission queue + batch executor without any networking — the
    unit-testable core both servers wrap. Defaults: [max_batch] 8,
    [max_wait_ns] 20 µs. *)

val create :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  alloc:Ukalloc.Alloc.t ->
  ?port:int ->
  ?core:int ->
  ?max_batch:int ->
  ?max_wait_ns:float ->
  model:model ->
  unit ->
  t
(** Legacy socket server (accept thread + per-connection threads), port
    defaults to 8000. Batch completions run in engine context, so replies
    go out through non-blocking sends. *)

val create_fast :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  alloc:Ukalloc.Alloc.t ->
  ?port:int ->
  ?core:int ->
  ?rtc:bool ->
  ?max_batch:int ->
  ?max_wait_ns:float ->
  model:model ->
  unit ->
  t
(** Zero-copy port: requests are scanned in place in ring netbufs
    ({!Uknetstack.Tcp.set_rx_sink}), replies leave through {!Nbio}
    writers. [rtc:false] ablates run-to-completion (requests hop through
    a pinned worker thread). *)

val submit : t -> rid:int -> width:int -> reply:(string -> unit) -> unit
(** Enqueue one request directly (bypassing the network) — the unit-test
    and embedding entry point. [reply] fires when the batch executes. *)

val pump : t -> unit
(** Flush a pending partial batch immediately (drains the admission
    queue without waiting for the engine timer). *)

type stats = {
  requests : int;
  batches : int;
  errors : int;
  max_occupancy : int;  (** largest batch executed *)
  bytes_out : int;
}

val stats : t -> stats
val state_hash : t -> int
(** Order-independent fold over every (id, width, output digest) served —
    equal across legacy/fast servers given the same request set. *)

val the_model : t -> model

val request : rid:int -> width:int -> string
(** Wire format of one request line. *)

val reply_len : int
(** Every reply is exactly this many bytes (the fast clients count reply
    boundaries by arithmetic, immune to netbuf splits). *)

(** {1 Load generation} *)

type result = {
  requests : int;
  elapsed_ns : float;
  rate_per_sec : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  errors : int;
}

type agg
(** Shared aggregator for SMP runs — see {!Wrk.agg}. *)

val new_agg : unit -> agg

val spawn_load :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  server:Uknetstack.Addr.Ipv4.t * int ->
  ?connections:int ->
  ?pipeline:int ->
  ?requests:int ->
  ?width:int ->
  ?port_for:(int -> int option) ->
  agg:agg ->
  unit ->
  unit
(** Legacy client: [connections] (default 16) flows each issuing
    [pipeline] (default 1) requests at a time. Concurrency across
    connections is what gives the server's admission queue something to
    coalesce. *)

val spawn_load_fast :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  server:Uknetstack.Addr.Ipv4.t * int ->
  ?connections:int ->
  ?pipeline:int ->
  ?requests:int ->
  ?width:int ->
  ?port_for:(int -> int option) ->
  agg:agg ->
  unit ->
  unit
(** Zero-copy client: requests leave through an {!Nbio} writer, replies
    are counted in place by fixed-size arithmetic over the rx sink. *)

val result_of_agg : agg -> t_start:float -> result

val run_load :
  clock:Uksim.Clock.t ->
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  server:Uknetstack.Addr.Ipv4.t * int ->
  ?connections:int ->
  ?pipeline:int ->
  ?requests:int ->
  ?width:int ->
  unit ->
  result
(** Drives [sched] to completion; call from outside any scheduler
    thread. Defaults: 16 connections, pipeline 1, 4096 requests. *)
