module S = Uknetstack.Stack
module Nb = Uknetdev.Netbuf
module Tcp = Uknetstack.Tcp

type result = {
  requests : int;
  elapsed_ns : float;
  rate_per_sec : float;
  latency_us_mean : float;
  latency_us_p99 : float;
  errors : int;
}

(* Shared across client groups (one group per core in SMP runs): every
   finishing connection pushes the end-time forward, so the elapsed window
   closes with the last connection on the slowest core. *)
type agg = {
  latencies : Uksim.Stats.t;
  mutable errors : int;
  mutable requests : int; (* total scheduled *)
  mutable t_end : float;
}

let new_agg () =
  { latencies = Uksim.Stats.create (); errors = 0; requests = 0; t_end = 0.0 }

let client_cost = 150 (* request formatting + response validation *)

(* The fast client replays one preformatted request and validates replies
   by counting bytes in place — no per-request formatting, no header
   parse. *)
let fast_client_cost = 60

(* Scan an HTTP response stream; return bytes consumed when one full
   response (headers + content-length body) is present. *)
let response_complete s =
  match
    let rec find i =
      if i + 3 >= String.length s then None
      else if String.sub s i 4 = "\r\n\r\n" then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some hdr_end ->
      let headers = String.sub s 0 hdr_end in
      let content_length =
        String.split_on_char '\n' headers
        |> List.find_map (fun line ->
               let line = String.trim line in
               match String.index_opt line ':' with
               | Some i when String.lowercase_ascii (String.sub line 0 i) = "content-length" ->
                   int_of_string_opt
                     (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
               | Some _ | None -> None)
      in
      let body_len = Option.value ~default:0 content_length in
      let total = hdr_end + 4 + body_len in
      if String.length s >= total then Some total else None

let spawn ~clock ~sched ~stack ~server ?(connections = 30) ?(requests = 30_000)
    ?(path = "/index.html") ?(port_for = fun _ -> None) ~agg () =
  let per_conn = max 1 (requests / connections) in
  agg.requests <- agg.requests + (per_conn * connections);
  let request = Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench\r\n\r\n" path in
  let client_thread ci () =
    let flow = S.Tcp_socket.connect stack ?lport:(port_for ci) ~dst:server () in
    let acc = Buffer.create 2048 in
    for _ = 1 to per_conn do
      Uksim.Clock.advance clock client_cost;
      let sent_at = Uksim.Clock.ns clock in
      ignore (S.Tcp_socket.send ~block:true stack flow (Bytes.of_string request));
      let rec await () =
        match response_complete (Buffer.contents acc) with
        | Some consumed ->
            let s = Buffer.contents acc in
            let rest = String.sub s consumed (String.length s - consumed) in
            Buffer.clear acc;
            Buffer.add_string acc rest;
            if not (String.length s >= 12 && String.sub s 9 3 = "200") then
              agg.errors <- agg.errors + 1;
            Uksim.Stats.add agg.latencies ((Uksim.Clock.ns clock -. sent_at) /. 1000.0)
        | None -> (
            match S.Tcp_socket.recv ~block:true stack flow ~max:65536 with
            | None ->
                agg.errors <- agg.errors + 1;
                agg.t_end <- Float.max agg.t_end (Uksim.Clock.ns clock);
                Uksched.Sched.exit_thread ()
            | Some data ->
                Buffer.add_bytes acc data;
                await ())
      in
      await ()
    done;
    S.Tcp_socket.close stack flow;
    agg.t_end <- Float.max agg.t_end (Uksim.Clock.ns clock)
  in
  for ci = 0 to connections - 1 do
    (* Pinned: the client charges its home core's clock and stack. *)
    ignore
      (Uksched.Sched.spawn sched ~name:(Printf.sprintf "wrk-%d" ci) ~pinned:true
         (client_thread ci))
  done

(* The zero-copy client: after one legacy warm-up request (validates the
   200 and learns the fixed response length), responses are consumed by a
   byte-counting rx sink directly off the driver ring — no socket queue,
   no parsing — and requests go out pipelined through an {!Nbio} writer.
   The count-then-block handshake is race-free because sink and client
   share one cooperative per-core scheduler. *)
let spawn_fast ~clock ~sched ~stack ~server ?(connections = 30) ?(requests = 30_000)
    ?(path = "/index.html") ?(pipeline = 16) ?(port_for = fun _ -> None) ~agg () =
  let per_conn = max 1 (requests / connections) in
  agg.requests <- agg.requests + (per_conn * connections);
  let request = Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench\r\n\r\n" path in
  let client_thread ci () =
    let flow = S.Tcp_socket.connect stack ?lport:(port_for ci) ~dst:server () in
    let acc = Buffer.create 2048 in
    Uksim.Clock.advance clock client_cost;
    let sent_at0 = Uksim.Clock.ns clock in
    ignore (S.Tcp_socket.send ~block:true stack flow (Bytes.of_string request));
    let rec await () =
      match response_complete (Buffer.contents acc) with
      | Some consumed ->
          let s = Buffer.contents acc in
          if not (String.length s >= 12 && String.sub s 9 3 = "200") then
            agg.errors <- agg.errors + 1;
          consumed
      | None -> (
          match S.Tcp_socket.recv ~block:true stack flow ~max:65536 with
          | None ->
              agg.errors <- agg.errors + 1;
              agg.t_end <- Float.max agg.t_end (Uksim.Clock.ns clock);
              Uksched.Sched.exit_thread ()
          | Some data ->
              Buffer.add_bytes acc data;
              await ())
    in
    let resp_len = await () in
    Uksim.Stats.add agg.latencies ((Uksim.Clock.ns clock -. sent_at0) /. 1000.0);
    let received = ref 0 in
    let me = Uksched.Sched.self () in
    Tcp.set_rx_sink flow
      (Some
         (fun nb ->
           received := !received + Nb.len nb;
           Nb.recycle nb;
           Uksched.Sched.wake sched me));
    let remaining = ref (per_conn - 1) in
    while !remaining > 0 do
      let batch = min pipeline !remaining in
      Uksim.Clock.advance clock (fast_client_cost * batch);
      let sent_at = Uksim.Clock.ns clock in
      let w = Nbio.writer ~clock ~stack ~flow in
      for _ = 1 to batch do
        Nbio.add w request
      done;
      Nbio.flush w;
      let want = batch * resp_len in
      while !received < want do
        Uksched.Sched.block ()
      done;
      received := !received - want;
      let lat = (Uksim.Clock.ns clock -. sent_at) /. 1000.0 /. float_of_int batch in
      for _ = 1 to batch do
        Uksim.Stats.add agg.latencies lat
      done;
      remaining := !remaining - batch
    done;
    Tcp.set_rx_sink flow None;
    S.Tcp_socket.close stack flow;
    agg.t_end <- Float.max agg.t_end (Uksim.Clock.ns clock)
  in
  for ci = 0 to connections - 1 do
    ignore
      (Uksched.Sched.spawn sched ~name:(Printf.sprintf "wrk-%d" ci) ~pinned:true
         (client_thread ci))
  done

let result_of_agg agg ~t_start =
  let elapsed = agg.t_end -. t_start in
  {
    requests = agg.requests;
    elapsed_ns = elapsed;
    rate_per_sec = Uksim.Stats.throughput_per_sec ~events:agg.requests ~elapsed_ns:elapsed;
    latency_us_mean = Uksim.Stats.mean agg.latencies;
    latency_us_p99 = Uksim.Stats.percentile agg.latencies 99.0;
    errors = agg.errors;
  }

let run ~clock ~sched ~stack ~server ?connections ?requests ?path () =
  let agg = new_agg () in
  let t_start = Uksim.Clock.ns clock in
  spawn ~clock ~sched ~stack ~server ?connections ?requests ?path ~agg ();
  Uksched.Sched.run sched;
  result_of_agg agg ~t_start
