(** Multicore serving harness over {!Uksmp.Smp}: [n] server cores and [n]
    client cores joined by a multi-queue loopback link with symmetric RSS.

    Each side models one machine with a multi-queue NIC: queue [i] of the
    server side belongs to core [i], queue [j] of the client side to core
    [n + j]; all queues of a side share that side's MAC and IP, and one
    per-core {!Uknetstack.Stack} owns each queue. Servers listen on every
    core (SO_REUSEPORT-style sharding); load runners pick client source
    ports whose RSS hash steers each flow to the matching queue index, so
    core [j] drives server core [j] and flows never cross cores. Runs are
    deterministic: same seed, same core count — same {!trace_hash}. *)

type t

type alloc_mode =
  | Arena  (** per-core magazines over the shared backend ({!Ukalloc.Percore}) *)
  | Shared_lock  (** every allocation takes one global spinlock — the ablation baseline *)

val create : ?seed:int -> ?alloc_mode:alloc_mode -> n:int -> unit -> t
(** [2 * n] cores, stacks brought up and started (per-core bring-up runs
    in parallel virtual time). Default [alloc_mode] is [Arena]. *)

val smp : t -> Uksmp.Smp.t
val n : t -> int
val mode : t -> alloc_mode
val server_stack : t -> int -> Uknetstack.Stack.t
val client_stack : t -> int -> Uknetstack.Stack.t
val alloc_view : t -> int -> Ukalloc.Alloc.t
val alloc_spin : t -> Uklock.Lock.Spin.t
(** The allocator's backend lock (arena refill lock, or the global lock in
    [Shared_lock] mode) — its stats quantify allocator contention. *)

val arena : t -> Ukalloc.Percore.t option
(** The arena, in [Arena] mode. *)

val trace_hash : t -> int
val elapsed_ns : t -> float

val add_httpd : t -> ?port:int -> Httpd.content -> Httpd.t array
(** One worker per server core (port defaults to 80). *)

val run_httpd_load :
  t ->
  ?port:int ->
  ?connections_per_core:int ->
  ?requests_per_core:int ->
  ?path:string ->
  unit ->
  Wrk.result
(** Spawn one wrk client group per client core (defaults: 8 connections,
    4000 requests per core) and drive the whole SMP domain to completion.
    Weak scaling: the per-core load is fixed, so ideal scaling keeps
    elapsed flat while total throughput grows with [n]. *)

val add_resp : t -> ?port:int -> ?populate:int -> unit -> Resp_store.t array
(** One worker per server core sharing a single database (port defaults to
    6379); [populate] pre-loads that many keys in Resp_bench's key pattern
    so GET workloads measure hits. *)

val run_resp_load :
  t ->
  ?port:int ->
  ?connections_per_core:int ->
  ?pipeline:int ->
  ?requests_per_core:int ->
  Resp_bench.workload ->
  Resp_bench.result
(** Defaults: 8 connections, pipeline 16, 10k requests per core. *)
