(** Multicore serving harness over {!Uksmp.Smp}: [n] server cores and [n]
    client cores joined by a multi-queue loopback link with symmetric RSS.

    Each side models one machine with a multi-queue NIC: queue [i] of the
    server side belongs to core [i], queue [j] of the client side to core
    [n + j]; all queues of a side share that side's MAC and IP, and one
    per-core {!Uknetstack.Stack} owns each queue. Servers listen on every
    core (SO_REUSEPORT-style sharding); load runners pick client source
    ports whose RSS hash steers each flow to the matching queue index, so
    core [j] drives server core [j] and flows never cross cores. Runs are
    deterministic: same seed, same core count — same {!trace_hash}. *)

type t

type alloc_mode =
  | Arena  (** per-core magazines over the shared backend ({!Ukalloc.Percore}) *)
  | Shared_lock  (** every allocation takes one global spinlock — the ablation baseline *)

type fastpath = {
  rx_batch : int;  (** descriptors per poll; 1 ablates RX batching *)
  rx_copy : bool;  (** true ablates zero-copy RX (copy into fresh buffers) *)
  tx_coalesce : bool;  (** one TX ring burst per poll window *)
  shared_pool : bool;
      (** one spinlocked netbuf pool shared by all server cores — ablates
          the per-core pools *)
}
(** Datapath ingredient knobs for the fast-path ablation matrix. *)

val fastpath_default : fastpath
(** All ingredients on: [{rx_batch = 64; rx_copy = false;
    tx_coalesce = true; shared_pool = false}]. *)

val create : ?seed:int -> ?alloc_mode:alloc_mode -> ?fastpath:fastpath -> n:int -> unit -> t
(** [2 * n] cores, stacks brought up and started (per-core bring-up runs
    in parallel virtual time). Default [alloc_mode] is [Arena]. Omitting
    [fastpath] keeps the stacks on their historical defaults (identical
    schedules to pre-fast-path runs); passing one applies the ingredient
    knobs to every stack on both sides. *)

val smp : t -> Uksmp.Smp.t
val n : t -> int
val mode : t -> alloc_mode
val server_stack : t -> int -> Uknetstack.Stack.t
val client_stack : t -> int -> Uknetstack.Stack.t
val alloc_view : t -> int -> Ukalloc.Alloc.t
val alloc_spin : t -> Uklock.Lock.Spin.t
(** The allocator's backend lock (arena refill lock, or the global lock in
    [Shared_lock] mode) — its stats quantify allocator contention. *)

val arena : t -> Ukalloc.Percore.t option
(** The arena, in [Arena] mode. *)

val trace_hash : t -> int
val elapsed_ns : t -> float

val add_httpd : t -> ?port:int -> Httpd.content -> Httpd.t array
(** One worker per server core (port defaults to 80). *)

val run_httpd_load :
  t ->
  ?port:int ->
  ?connections_per_core:int ->
  ?requests_per_core:int ->
  ?path:string ->
  unit ->
  Wrk.result
(** Spawn one wrk client group per client core (defaults: 8 connections,
    4000 requests per core) and drive the whole SMP domain to completion.
    Weak scaling: the per-core load is fixed, so ideal scaling keeps
    elapsed flat while total throughput grows with [n]. *)

val add_httpd_fast : t -> ?port:int -> ?rtc:bool -> Httpd.content -> Httpd.t array
(** One {!Httpd.create_fast} worker per server core. [rtc:false] ablates
    run-to-completion (requests hop through a pinned worker thread). *)

val run_httpd_load_fast :
  t ->
  ?port:int ->
  ?connections_per_core:int ->
  ?requests_per_core:int ->
  ?path:string ->
  ?pipeline:int ->
  unit ->
  Wrk.result
(** {!run_httpd_load} driven by {!Wrk.spawn_fast} (zero-copy pipelined
    clients; [pipeline] defaults to 16). *)

val add_resp : t -> ?port:int -> ?populate:int -> unit -> Resp_store.t array
(** One worker per server core sharing a single database (port defaults to
    6379); [populate] pre-loads that many keys in Resp_bench's key pattern
    so GET workloads measure hits. *)

val run_resp_load :
  t ->
  ?port:int ->
  ?connections_per_core:int ->
  ?pipeline:int ->
  ?requests_per_core:int ->
  Resp_bench.workload ->
  Resp_bench.result
(** Defaults: 8 connections, pipeline 16, 10k requests per core. *)

val add_resp_fast :
  t -> ?port:int -> ?populate:int -> ?rtc:bool -> unit -> Resp_store.t array
(** One {!Resp_store.create_fast} worker per server core sharing a single
    database. *)

val run_resp_load_fast :
  t ->
  ?port:int ->
  ?connections_per_core:int ->
  ?pipeline:int ->
  ?requests_per_core:int ->
  Resp_bench.workload ->
  Resp_bench.result
(** {!run_resp_load} driven by {!Resp_bench.spawn_fast}. *)

val add_infer :
  t ->
  ?port:int ->
  ?size_mb:int ->
  ?max_batch:int ->
  ?max_wait_ns:float ->
  unit ->
  Infer.t array
(** One {!Infer.create} worker per server core (port defaults to 8000),
    each with its own virtio-blk weight store, published seeded model of
    [size_mb] (default 4) MiB, vfs mount at [/models] and boot-time weight
    load — the replicated-image deployment, no cross-core sharing. *)

val add_infer_fast :
  t ->
  ?port:int ->
  ?size_mb:int ->
  ?rtc:bool ->
  ?max_batch:int ->
  ?max_wait_ns:float ->
  unit ->
  Infer.t array
(** {!add_infer} with {!Infer.create_fast} workers. *)

val run_infer_load :
  t ->
  ?port:int ->
  ?connections_per_core:int ->
  ?requests_per_core:int ->
  ?pipeline:int ->
  ?width:int ->
  unit ->
  Infer.result
(** Defaults: 8 connections, 4000 requests per core. *)

val run_infer_load_fast :
  t ->
  ?port:int ->
  ?connections_per_core:int ->
  ?requests_per_core:int ->
  ?pipeline:int ->
  ?width:int ->
  unit ->
  Infer.result
(** {!run_infer_load} driven by {!Infer.spawn_load_fast}. *)

val add_store :
  t ->
  ?port:int ->
  ?keys:int ->
  ?journal_sectors:int ->
  ?commit_every:int ->
  unit ->
  Store.t array
(** One {!Store.create} worker per server core (port defaults to 7000),
    each with its own virtio-blk device formatted as a crash-consistent
    ukstore, pre-populated with [keys] (default 256) committed entries —
    the replicated stateful-image deployment. [commit_every] arms the
    server-side auto-commit (default: explicit COMMITs only). *)

val add_store_fast :
  t ->
  ?port:int ->
  ?keys:int ->
  ?journal_sectors:int ->
  ?rtc:bool ->
  ?commit_every:int ->
  unit ->
  Store.t array
(** {!add_store} with {!Store.create_fast} workers. *)

val run_store_load :
  t ->
  ?port:int ->
  ?connections_per_core:int ->
  ?requests_per_core:int ->
  ?pipeline:int ->
  ?write_frac:float ->
  ?keyspace:int ->
  ?commit_every:int ->
  ?seed:int ->
  unit ->
  Store.result
(** Seeded SET/GET mix against the store tier; [write_frac] (default 0.5)
    of requests mutate, every [commit_every]th request (client-side,
    default off) is a COMMIT barrier. *)

val run_store_load_fast :
  t ->
  ?port:int ->
  ?connections_per_core:int ->
  ?requests_per_core:int ->
  ?pipeline:int ->
  ?write_frac:float ->
  ?keyspace:int ->
  ?commit_every:int ->
  ?seed:int ->
  unit ->
  Store.result
(** {!run_store_load} driven by {!Store.spawn_load_fast}. *)
