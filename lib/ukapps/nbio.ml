(* Batched zero-copy TX writer: the netbuf-era replacement for
   Buffer.add_string + Tcp_socket.send. Generated reply bytes are written
   straight into pool netbufs (no intermediate materialization, so the
   ["uknetdev.copies"] counter stays untouched); each buffer is handed to
   {!Uknetstack.Stack.Tcp_socket.send_nb} when MSS-full or on [flush], so
   every reply batch leaves as few segments as possible. *)

module S = Uknetstack.Stack
module Nb = Uknetdev.Netbuf
module Tcp = Uknetstack.Tcp

type t = {
  clock : Uksim.Clock.t;
  stack : S.t;
  flow : S.Tcp_socket.flow;
  mutable cur : Nb.t option;
  mutable written : int;
}

let writer ~clock ~stack ~flow = { clock; stack; flow; cur = None; written = 0 }

let written t = t.written

let flush t =
  match t.cur with
  | None -> ()
  | Some nb ->
      t.cur <- None;
      if Nb.len nb = 0 then Nb.recycle nb
      else ignore (S.Tcp_socket.send_nb t.stack t.flow nb)

let fresh t =
  let nb = S.alloc_buf t.stack in
  t.cur <- Some nb;
  nb

(* Append [s], chunking across segments at MSS boundaries. Writing into
   the buffer is the reply's one materialization; it is charged as a
   memcpy of that many bytes (cycle cost), but it is generation, not a
   payload copy — no counted-copy traffic. *)
let add t s =
  let n = String.length s in
  if n > 0 then begin
    Uksim.Clock.advance t.clock (Uksim.Cost.memcpy n);
    t.written <- t.written + n;
    let pos = ref 0 in
    while !pos < n do
      let nb = match t.cur with Some nb -> nb | None -> fresh t in
      let room = min (Tcp.mss - Nb.len nb) (Nb.capacity nb - Nb.len nb) in
      if room <= 0 then flush t
      else begin
        let k = min room (n - !pos) in
        Bytes.blit_string s !pos (Nb.data nb) (Nb.offset nb + Nb.len nb) k;
        Nb.set_len nb (Nb.len nb + k);
        pos := !pos + k
      end
    done
  end
