(* Multicore simulation substrate.

   Everything stays sequential OCaml: a "core" is a (clock, engine,
   cooperative scheduler) triple, and the coordinator interleaves
   single-steps across cores in virtual-time order — conservative
   discrete-event simulation with one local clock per core, all counting
   cycles since boot on a shared absolute axis. The core whose next
   possible action is earliest always runs next (ties to the lowest id),
   so a run is a deterministic function of the seed and core count. *)

type cstats = { steps : int; steals : int; stolen_from : int; ipis : int }

type core = {
  id : int;
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  sched : Uksched.Sched.t;
  mutable c_steps : int;
  mutable c_steals : int;
  mutable c_stolen_from : int;
  mutable c_ipis : int;
}

type decision = { kind : string; arity : int; choice : int }

type t = {
  cores : core array;
  rng : Uksim.Rng.t;
  group : Uksched.Sched.group;
  mutable running : int option;
  mutable trace : int;
  mutable step_observer : (core:int -> cycles:int -> unit) option;
  mutable decider : (kind:string -> arity:int -> int) option;
  mutable decision_log : decision list; (* newest first *)
  mutable wake_observer : (src:int -> dst:int -> unit) option;
}

let n_cores t = Array.length t.cores
let set_step_observer t f = t.step_observer <- f
let set_wake_observer t f = t.wake_observer <- f
let sched_of t ~core = t.cores.(core).sched
let clock_of t ~core = t.cores.(core).clock
let engine_of t ~core = t.cores.(core).engine
let current_core t = t.running
let group t = t.group

let set_decider t f =
  t.decider <- f;
  t.decision_log <- []

let decisions t = List.rev t.decision_log

(* Route a choice point through the installed decider and log the outcome.
   Only called when [arity >= 2]: forced choices are not decisions, so
   recording and replay skip them identically. Without a decider the
   default (choice 0) applies and nothing is logged. *)
let decide t ~kind ~arity =
  if arity < 2 then 0
  else
    match t.decider with
    | None -> 0
    | Some f ->
        let c = f ~kind ~arity in
        let c = if c < 0 || c >= arity then 0 else c in
        t.decision_log <- { kind; arity; choice = c } :: t.decision_log;
        c

let stats t ~core =
  let c = t.cores.(core) in
  { steps = c.c_steps; steals = c.c_steals; stolen_from = c.c_stolen_from; ipis = c.c_ipis }

let core_of_sched t s =
  let found = ref None in
  Array.iter (fun c -> if c.sched == s then found := Some c) t.cores;
  !found

let create ?(seed = 1) ~cores () =
  if cores <= 0 then invalid_arg "Smp.create: cores must be positive";
  let group = Uksched.Sched.create_group () in
  let mk id =
    let clock = Uksim.Clock.create () in
    let engine = Uksim.Engine.create clock in
    let sched = Uksched.Sched.create_cooperative ~clock ~engine in
    Uksched.Sched.join_group group sched;
    { id; clock; engine; sched; c_steps = 0; c_steals = 0; c_stolen_from = 0; c_ipis = 0 }
  in
  let t =
    {
      cores = Array.init cores mk;
      rng = Uksim.Rng.create (seed lxor 0x534d50 (* "SMP" *));
      group;
      running = None;
      trace = 0;
      step_observer = None;
      decider = None;
      decision_log = [];
      wake_observer = None;
    }
  in
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"uksmp" ~name:"cores"
       ~reset:(fun () ->
         Array.iter
           (fun c ->
             c.c_steps <- 0;
             c.c_steals <- 0;
             c.c_stolen_from <- 0;
             c.c_ipis <- 0)
           t.cores)
       (fun () ->
         Array.to_list t.cores
         |> List.concat_map (fun c ->
                [
                  (Printf.sprintf "core%d.steps" c.id, Uktrace.Metric.Count c.c_steps);
                  (Printf.sprintf "core%d.steals" c.id, Uktrace.Metric.Count c.c_steals);
                  (Printf.sprintf "core%d.stolen_from" c.id,
                   Uktrace.Metric.Count c.c_stolen_from);
                  (Printf.sprintf "core%d.ipis" c.id, Uktrace.Metric.Count c.c_ipis);
                ])));
  (* A wake that crosses cores is an IPI: the destination pays delivery. *)
  Uksched.Sched.set_remote_wake group
    (Some
       (fun ~src ~dst ->
         match core_of_sched t dst with
         | Some c -> (
             Uksim.Clock.advance c.clock Uksim.Cost.ipi;
             c.c_ipis <- c.c_ipis + 1;
             match t.wake_observer with
             | Some f ->
                 let s = match core_of_sched t src with Some sc -> sc.id | None -> -1 in
                 f ~src:s ~dst:c.id
             | None -> ())
         | None -> ()));
  t

let spawn_on t ~core ?name ?(pinned = false) f =
  Uksched.Sched.spawn t.cores.(core).sched ?name ~pinned f

let charge t cycles =
  match t.running with
  | Some i -> Uksim.Clock.advance t.cores.(i).clock cycles
  | None -> invalid_arg "Smp.charge: no core is running"

let ipi t ~src ~dst f =
  let s = t.cores.(src) and d = t.cores.(dst) in
  let at =
    max (Uksim.Clock.cycles d.clock) (Uksim.Clock.cycles s.clock + Uksim.Cost.ipi)
  in
  d.c_ipis <- d.c_ipis + 1;
  (match t.wake_observer with Some obs -> obs ~src ~dst | None -> ());
  Uksim.Engine.at d.engine at f

(* splitmix64-style avalanche, for the rolling trace hash. *)
let mix h v =
  let x = (h lxor v) land max_int in
  let x = (x lxor (x lsr 30)) * 0x5851f42d4c957f2d land max_int in
  let x = (x lxor (x lsr 27)) * 0x14057b7ef767814f land max_int in
  x lxor (x lsr 31)

let trace_hash t = t.trace

let elapsed_ns t =
  Array.fold_left (fun acc c -> Stdlib.max acc (Uksim.Clock.ns c.clock)) 0.0 t.cores

(* When a core has nothing at all to do, it tries to poach the oldest
   ready unpinned thread from a random victim that has work to spare.
   The thief's clock jumps to the victim's present (it cannot run state
   it has not yet seen) plus the cache-refill penalty of migration. *)
let try_steal t thief =
  let candidates =
    Array.of_list
      (List.filter
         (fun c -> c.id <> thief.id && Uksched.Sched.runnable c.sched >= 2)
         (Array.to_list t.cores))
  in
  Array.length candidates > 0
  && begin
       (* Victim selection is a schedule decision point: the default draws
          from the seeded RNG; with a decider installed (ukcheck) the
          choice is external and logged for replay. *)
       let victim =
         match t.decider with
         | None -> Uksim.Rng.choose t.rng candidates
         | Some _ ->
             candidates.(decide t ~kind:"steal_victim" ~arity:(Array.length candidates))
       in
       Uksched.Sched.steal ~from_:victim.sched thief.sched
       && begin
            let vc = Uksim.Clock.cycles victim.clock
            and tc = Uksim.Clock.cycles thief.clock in
            if vc > tc then Uksim.Clock.advance thief.clock (vc - tc);
            Uksim.Clock.advance thief.clock Uksim.Cost.cache_migration;
            thief.c_steals <- thief.c_steals + 1;
            victim.c_stolen_from <- victim.c_stolen_from + 1;
            t.trace <- mix (mix t.trace (0x57ea1 + thief.id)) victim.id;
            true
          end
     end

(* Earliest time [c] could act: now if it has a ready thread, else its
   next event (no earlier than its local present), else never. *)
let next_action c =
  if Uksched.Sched.runnable c.sched > 0 then Some (Uksim.Clock.cycles c.clock)
  else
    match Uksim.Engine.next_at c.engine with
    | Some cyc -> Some (Stdlib.max cyc (Uksim.Clock.cycles c.clock))
    | None -> None

let run t =
  let rec loop () =
    (* Fully idle cores attempt one steal each, in id order. *)
    Array.iter
      (fun c -> if next_action c = None then ignore (try_steal t c))
      t.cores;
    let best = ref None in
    Array.iter
      (fun c ->
        match (next_action c, !best) with
        | Some at, Some (bat, _) when at < bat -> best := Some (at, c)
        | Some at, None -> best := Some (at, c)
        | Some _, Some _ | None, _ -> ())
      t.cores;
    (* Cores tied for the earliest action are a per-core step-order
       decision point (default: lowest id, i.e. the first tied core). *)
    (match (!best, t.decider) with
    | Some (bat, _), Some _ ->
        let tied =
          Array.to_list t.cores |> List.filter (fun c -> next_action c = Some bat)
        in
        if List.length tied >= 2 then
          best :=
            Some (bat, List.nth tied (decide t ~kind:"step_core" ~arity:(List.length tied)))
    | (Some _ | None), _ -> ());
    match !best with
    | Some (_, c) ->
        t.running <- Some c.id;
        let c0 = Uksim.Clock.cycles c.clock in
        let progressed = Uksched.Sched.step c.sched in
        t.running <- None;
        if progressed then begin
          c.c_steps <- c.c_steps + 1;
          t.trace <- mix (mix t.trace c.id) (Uksim.Clock.cycles c.clock);
          match t.step_observer with
          | Some obs -> obs ~core:c.id ~cycles:(Uksim.Clock.cycles c.clock - c0)
          | None -> ()
        end;
        loop ()
    | None -> (
        let stuck =
          Array.fold_left (fun acc c -> acc @ Uksched.Sched.stuck c.sched) [] t.cores
        in
        match stuck with [] -> () | names -> raise (Uksched.Sched.Deadlock names))
  in
  loop ()
