(** uksmp: multicore simulation substrate.

    The Unikraft paper evaluates single-core unikernels and leaves SMP as
    future work; this module models it. A {e core} is a (clock, engine,
    cooperative scheduler) triple — all cores' clocks count cycles since
    boot on one shared absolute axis, so cross-core timestamps compare
    directly. {!run} interleaves single-steps across cores in virtual-time
    order (the core whose next possible action is earliest runs next, ties
    to the lowest id): conservative parallel discrete-event simulation,
    fully deterministic for a given seed and core count at any host
    machine — verified by {!trace_hash} replay checks.

    Cross-core interactions and their calibrated costs:
    - a wake that crosses cores (a thread migrated, or a stack on core A
      wakes a thread on core B) charges {!Uksim.Cost.ipi} to the
      destination core;
    - a fully idle core steals the oldest ready {e unpinned} thread from a
      random victim with work to spare; the thief's clock jumps to the
      victim's present plus {!Uksim.Cost.cache_migration}. Threads whose
      closures charge a specific core's clock must be spawned
      [~pinned:true]; work-stealing is for core-agnostic tasks that charge
      through {!charge}. *)

type t

val create : ?seed:int -> cores:int -> unit -> t
(** [cores] fresh cores, schedulers joined into one {!Uksched.Sched.group}.
    [seed] (default 1) drives steal-victim selection only. *)

val n_cores : t -> int
val sched_of : t -> core:int -> Uksched.Sched.t
val clock_of : t -> core:int -> Uksim.Clock.t
val engine_of : t -> core:int -> Uksim.Engine.t

val spawn_on : t -> core:int -> ?name:string -> ?pinned:bool -> (unit -> unit) -> Uksched.Sched.tid
(** Spawn a thread on a core's scheduler. [pinned] (default false) excludes
    it from work stealing. *)

val run : t -> unit
(** Drive all cores until no thread is runnable, no event is pending, and
    no steal can help. Raises {!Uksched.Sched.Deadlock} if blocked
    non-daemon threads remain anywhere. *)

val charge : t -> int -> unit
(** Charge cycles to the clock of the core currently being stepped — how
    migratable (unpinned) tasks account their work wherever they run.
    Raises [Invalid_argument] outside {!run}. *)

val ipi : t -> src:int -> dst:int -> (unit -> unit) -> unit
(** Explicitly run a closure on another core: it fires on [dst]'s engine
    no earlier than [dst]'s present and [src]'s present plus
    {!Uksim.Cost.ipi}. *)

val current_core : t -> int option
(** The core being stepped right now, if any. *)

val group : t -> Uksched.Sched.group
(** The scheduler group joining all cores — correctness tooling (ukcheck)
    attaches its {!Uksched.Sched.set_group_observer} here. *)

(** {1 Schedule decision points (consumed by [lib/ukcheck])}

    The coordinator's nondeterminism-as-configuration: the places where a
    run could legally go more than one way. With no decider installed the
    substrate behaves exactly as documented above (seeded RNG steal
    victims, lowest-id tie-breaks) — installing one replaces those
    policies with external choices and logs every choice made, which is
    what lets ukcheck enumerate schedules and replay failing ones. *)

type decision = {
  kind : string;  (** "steal_victim", "step_core", or an external kind *)
  arity : int;  (** number of alternatives (>= 2; forced choices are not logged) *)
  choice : int;  (** the branch taken, in [0, arity) — 0 is the default *)
}

val set_decider : t -> (kind:string -> arity:int -> int) option -> unit
(** Install (or remove) the choice-point callback and clear the decision
    log. Out-of-range answers fall back to 0. *)

val decide : t -> kind:string -> arity:int -> int
(** Route an {e external} choice point (e.g. a per-core dispatch choice
    from {!Uksched.Sched.set_dispatch_chooser}) through the installed
    decider so it lands in the same decision log. Returns 0 — the
    default — when no decider is installed or [arity < 2]. *)

val decisions : t -> decision list
(** Chronological log of all decisions since {!set_decider}. *)

val set_wake_observer : t -> (src:int -> dst:int -> unit) option -> unit
(** Fires on every cross-core wake/IPI with the core ids involved
    ([src = -1] if the waker is outside any core) — feeds ukcheck's
    happens-before edges. Observers must not perturb the run. *)

(** {1 Observation} *)

type cstats = {
  steps : int;  (** coordinator steps that made progress on this core *)
  steals : int;  (** threads this core stole *)
  stolen_from : int;  (** threads stolen from this core *)
  ipis : int;  (** cross-core wakes/IPIs delivered to this core *)
}

val stats : t -> core:int -> cstats
(** Per-core counters are also published to the {!Uktrace.Registry} as a
    ["uksmp.cores"] source at {!create}; this accessor remains for direct
    inspection. *)

val set_step_observer : t -> (core:int -> cycles:int -> unit) option -> unit
(** [set_step_observer t (Some f)] calls [f ~core ~cycles] after every
    coordinator step that made progress, with the cycles the stepped
    core's clock advanced. Feeds the uktrace profiling sampler; observers
    must not touch clocks, engines or the RNG (determinism). *)

val trace_hash : t -> int
(** Rolling hash over (core, clock) of every step and every migration —
    two runs with equal seeds and workloads must produce equal hashes. *)

val elapsed_ns : t -> float
(** Max over all core clocks. *)
