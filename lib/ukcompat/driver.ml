module Shim = Uksyscall.Shim
module Binary = Uksyscall.Binary
module A = Uknetstack.Addr
module S = Uknetstack.Stack
module Vfs = Ukvfs.Vfs

type rung = Native | Rewritten | Compat | Linux

let all_rungs = [ Native; Rewritten; Compat; Linux ]

let rung_name = function
  | Native -> "native"
  | Rewritten -> "binary-rewritten"
  | Compat -> "binary-compat"
  | Linux -> "linux-vm"

let dispatch_of = function
  | Native | Rewritten -> Shim.Native_link
  | Compat -> Shim.Binary_compat
  | Linux -> Shim.Linux_vm

type app = Nginx | Redis

let app_name = function Nginx -> "nginx" | Redis -> "redis"

(* --- the recorded traces ------------------------------------------------- *)

let http_header = "HTTP/1.0 200 OK\n\n"
let index_body = "<html>hello from unikraft</html>\n"
let redis_set = "SET k1 v123\n"
let redis_get = "GET k1\n"

(* nginx-class hot loop: stat+read the document once, then serve it over
   an accepted connection. The response body is written from the very
   buffer the file read filled ([&2]), so bytes flow ukvfs -> process
   memory -> uknetstack. *)
let nginx_trace () =
  Trace.of_string
    (Printf.sprintf
       {|trace nginx
openat(-100, "/srv/index.html", 0) = ok
fstat($0, buf[144]) = 0
read($0, buf[4096], 4096) = %d
close($0) = 0
brk(0) = ok
clock_gettime(1, buf[16]) = 0
socket(2, 1, 0) = ok
bind($6, sa[10.0.0.1:80], 16) = 0
listen($6, 8) = 0
accept($6, 0, 0) = ok !
read($9, buf[256], 256) = ok !
write($9, %S, %d) = %d
write($9, &2, $2) = %d
close($9) = 0
close($6) = 0
|}
       (String.length index_body) http_header (String.length http_header)
       (String.length http_header) (String.length index_body))
  |> Result.get_ok

(* redis-class hot loop: SET then GET over one connection. The GET reply
   echoes the buffer the SET request was read into ([&5]) — the value
   travels client -> uknetstack -> process memory -> back. *)
let redis_trace () =
  Trace.of_string
    (Printf.sprintf
       {|trace redis
socket(2, 1, 0) = ok
bind($0, sa[10.0.0.1:6379], 16) = 0
listen($0, 8) = 0
gettimeofday(buf[16], 0) = 0
accept($0, 0, 0) = ok !
read($4, buf[128], 128) = %d !
write($4, "+OK\n", 4) = 4
read($4, buf[128], 128) = %d !
write($4, &5, $5) = %d
close($4) = 0
close($0) = 0
|}
       (String.length redis_set) (String.length redis_get) (String.length redis_set))
  |> Result.get_ok

let trace_of = function Nginx -> nginx_trace () | Redis -> redis_trace ()

(* --- the client side ----------------------------------------------------- *)

(* Deterministic think-time jitter so "seeded replay" exercises real
   timing variation: an LCG stream of 0.1-1 us sleeps. *)
let jitter seed =
  let state = ref (seed land 0x3fffffff) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    Uksched.Sched.sleep_ns (100.0 +. float_of_int (!state mod 900))

let server_ip = A.Ipv4.of_string "10.0.0.1"

let recv_all stack flow buf =
  let rec go () =
    match S.Tcp_socket.recv ~block:true stack flow ~max:4096 with
    | None -> ()
    | Some data ->
        Buffer.add_bytes buf data;
        go ()
  in
  go ()

let nginx_client stack ~seed ~received ~ok () =
  let think = jitter seed in
  think ();
  let flow = S.Tcp_socket.connect stack ~dst:(server_ip, 80) () in
  think ();
  ignore (S.Tcp_socket.send ~block:true stack flow (Bytes.of_string "GET / HTTP/1.0\n\n"));
  recv_all stack flow received;
  S.Tcp_socket.close stack flow;
  ok := Buffer.contents received = http_header ^ index_body

let redis_client stack ~seed ~received ~ok () =
  let think = jitter seed in
  think ();
  let flow = S.Tcp_socket.connect stack ~dst:(server_ip, 6379) () in
  think ();
  ignore (S.Tcp_socket.send ~block:true stack flow (Bytes.of_string redis_set));
  (match S.Tcp_socket.recv ~block:true stack flow ~max:128 with
  | Some data -> Buffer.add_bytes received data
  | None -> ());
  think ();
  ignore (S.Tcp_socket.send ~block:true stack flow (Bytes.of_string redis_get));
  (match S.Tcp_socket.recv ~block:true stack flow ~max:128 with
  | Some data -> Buffer.add_bytes received data
  | None -> ());
  S.Tcp_socket.close stack flow;
  let got = Buffer.contents received in
  ok :=
    String.length got >= 4
    && String.sub got 0 4 = "+OK\n"
    && (let rec find i =
          i + 4 <= String.length got && (String.sub got i 4 = "v123" || find (i + 1))
        in
        find 4)

(* --- one ladder rung, end to end ----------------------------------------- *)

type report = {
  app : string;
  rung : rung;
  outcome : Trace.outcome;
  ladder_cycles : int;
  wall_cycles : int;
  state_hash : string;
  client_bytes : int;
  client_ok : bool;
}

let must = function Ok v -> v | Error e -> failwith ("Driver: " ^ Ukvfs.Fs.errno_to_string e)

let populate_vfs vfs = function
  | Redis -> ()
  | Nginx ->
      must (Vfs.mkdir vfs "/srv");
      let fd = must (Vfs.open_file vfs "/srv/index.html" ~create:true ()) in
      ignore (must (Vfs.write vfs fd (Bytes.of_string index_body)));
      must (Vfs.close vfs fd)

let run ?(seed = 42) ~rung app =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let da, db = Uknetdev.Loopback.create_pair ~clock ~engine () in
  let mk dev ip mac =
    S.create ~clock ~engine ~sched ~dev
      {
        S.mac = A.Mac.of_int mac;
        ip = A.Ipv4.of_string ip;
        netmask = A.Ipv4.of_string "255.255.255.0";
        gateway = None;
      }
  in
  let server_stack = mk da "10.0.0.1" 0x1 in
  let client_stack = mk db "10.0.0.2" 0x2 in
  S.start server_stack;
  S.start client_stack;
  let vfs = Vfs.create ~clock in
  (match Vfs.mount vfs ~at:"/" (Ukvfs.Ramfs.create ~clock ()) with
  | Ok () -> ()
  | Error e -> failwith ("Driver: mount: " ^ Ukvfs.Fs.errno_to_string e));
  populate_vfs vfs app;
  let p =
    Personality.create ~clock ~mode:(dispatch_of rung) ~vfs ~stack:server_stack ~sched ()
  in
  let trace = trace_of app in
  let server_result = ref (Error "server fiber did not run") in
  ignore
    (Uksched.Sched.spawn sched ~name:"server" (fun () ->
         server_result :=
           match rung with
           | Native -> Trace.run p trace
           | Rewritten ->
               Trace.run_binary p ~binary:(Binary.rewrite (Trace.to_binary trace)) trace
           | Compat | Linux -> Trace.run_binary p ~binary:(Trace.to_binary trace) trace));
  let received = Buffer.create 256 in
  let client_ok = ref false in
  let client = match app with Nginx -> nginx_client | Redis -> redis_client in
  ignore
    (Uksched.Sched.spawn sched ~name:"client"
       (client client_stack ~seed ~received ~ok:client_ok));
  Uksched.Sched.run sched;
  match !server_result with
  | Error e -> Error (Printf.sprintf "%s/%s: %s" (app_name app) (rung_name rung) e)
  | Ok outcome ->
      let shim = Personality.shim p in
      let counts =
        Shim.call_counts shim
        |> List.map (fun (s, c) -> Printf.sprintf "%d:%d" s c)
        |> String.concat ","
      in
      let state_hash =
        Digest.to_hex
          (Digest.string
             (String.concat "|"
                [
                  Buffer.contents received;
                  Process.mem_digest (Personality.proc p);
                  String.concat "," (Array.to_list (Array.map string_of_int outcome.Trace.results));
                  counts;
                  string_of_int (Uksim.Clock.cycles clock);
                ]))
      in
      Ok
        {
          app = app_name app;
          rung;
          outcome;
          ladder_cycles =
            (Shim.dispatch_cost (dispatch_of rung) * (Trace.length trace + 1))
            + outcome.Trace.interp_cycles;
          wall_cycles = Uksim.Clock.cycles clock;
          state_hash;
          client_bytes = Buffer.length received;
          client_ok = !client_ok;
        }

let ladder ?seed app =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | rung :: rest -> (
        match run ?seed ~rung app with
        | Ok r -> go (r :: acc) rest
        | Error e -> Error e)
  in
  go [] all_rungs
