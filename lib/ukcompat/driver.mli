(** End-to-end application runs down the specialization ladder.

    Two application-class traces — nginx (static file serving: the
    document is read through ukvfs and served from the very buffer the
    read filled) and redis (SET/GET over a TCP connection, the value
    echoed back out of process memory) — each executed against a live
    harness: loopback netdev pair, one {!Uknetstack.Stack} per side, a
    ramfs-backed {!Ukvfs.Vfs}, a cooperative scheduler, and a scripted
    client fiber with seeded think-time jitter asserting the payload.

    A {!rung} picks the call convention of paper Table 1:

    - [Native]: trace entries dispatch as plain function calls (4 cy);
    - [Rewritten]: the trace compiled to a binary, [Syscall] sites
      patched by {!Uksyscall.Binary.rewrite} into direct calls — the
      function-call boundary plus binary-interpretation cycles;
    - [Compat]: the unmodified binary, each site trapping at the
      binary-compatibility cost (84 cy);
    - [Linux]: the same binary under the Linux-guest syscall cost with
      mitigations (222 cy). *)

type rung = Native | Rewritten | Compat | Linux

val all_rungs : rung list
(** In ladder order, cheapest boundary first. *)

val rung_name : rung -> string
val dispatch_of : rung -> Uksyscall.Shim.dispatch

type app = Nginx | Redis

val app_name : app -> string
val trace_of : app -> Trace.t

(** {1 Running} *)

type report = {
  app : string;
  rung : rung;
  outcome : Trace.outcome;
  ladder_cycles : int;
      (** deterministic ladder metric: dispatch cost x (entries + arena
          mmap) + binary-interpreter cycles — strictly ordered down the
          ladder for a given trace *)
  wall_cycles : int;  (** full-harness virtual cycles, retries included *)
  state_hash : string;
      (** digest of client bytes, process memory, per-entry results, shim
          call counts and final clock — byte-identical across replays of
          the same (app, rung, seed) *)
  client_bytes : int;
  client_ok : bool;  (** the client fiber validated the payload *)
}

val run : ?seed:int -> rung:rung -> app -> (report, string) result

val ladder : ?seed:int -> app -> (report list, string) result
(** {!run} once per rung, in {!all_rungs} order. *)
