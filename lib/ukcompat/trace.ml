module Errno = Uksyscall.Fs_errno
module Sysno = Uksyscall.Sysno
module Shim = Uksyscall.Shim
module Binary = Uksyscall.Binary

type arg =
  | I of int
  | Str of string
  | Buf of int
  | Sa of string * int
  | Slot of int
  | Ptr of int

type expect = Any | Nonneg | Ret of int | Err of Errno.t

type entry = { name : string; args : arg list; expect : expect; blocking : bool }

type t = { tname : string; entries : entry list }

let name t = t.tname
let entries t = t.entries
let length t = List.length t.entries

let make ~name entries =
  List.iteri
    (fun i e ->
      if Sysno.number e.name = None then
        invalid_arg (Printf.sprintf "Trace.make: entry %d: unknown syscall %s" i e.name))
    entries;
  { tname = name; entries }

(* --- text format -------------------------------------------------------- *)

let string_of_arg = function
  | I n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Buf n -> Printf.sprintf "buf[%d]" n
  | Sa (ip, port) -> Printf.sprintf "sa[%s:%d]" ip port
  | Slot k -> Printf.sprintf "$%d" k
  | Ptr k -> Printf.sprintf "&%d" k

let string_of_expect = function
  | Any -> "*"
  | Nonneg -> "ok"
  | Ret n -> string_of_int n
  | Err e -> Errno.to_string e

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "trace %s\n" t.tname);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%s(%s) = %s%s\n" e.name
           (String.concat ", " (List.map string_of_arg e.args))
           (string_of_expect e.expect)
           (if e.blocking then " !" else "")))
    t.entries;
  Buffer.contents b

(* Split an argument list on top-level commas (commas inside string
   literals don't count). *)
let split_args s =
  if String.trim s = "" then []
  else begin
    let out = ref [] in
    let buf = Buffer.create 16 in
    let in_q = ref false in
    let esc = ref false in
    String.iter
      (fun c ->
        if !esc then begin
          Buffer.add_char buf c;
          esc := false
        end
        else
          match c with
          | '\\' when !in_q ->
              Buffer.add_char buf c;
              esc := true
          | '"' ->
              Buffer.add_char buf c;
              in_q := not !in_q
          | ',' when not !in_q ->
              out := Buffer.contents buf :: !out;
              Buffer.clear buf
          | c -> Buffer.add_char buf c)
      s;
    out := Buffer.contents buf :: !out;
    List.rev_map String.trim !out
  end

let parse_arg s =
  let fail () = Error (Printf.sprintf "bad argument %S" s) in
  if s = "" then fail ()
  else if s.[0] = '"' then
    if String.length s >= 2 && s.[String.length s - 1] = '"' then
      try Ok (Str (Scanf.unescaped (String.sub s 1 (String.length s - 2)))) with _ -> fail ()
    else fail ()
  else if s.[0] = '$' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some k -> Ok (Slot k)
    | None -> fail ()
  else if s.[0] = '&' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some k -> Ok (Ptr k)
    | None -> fail ()
  else if String.length s > 4 && String.sub s 0 4 = "buf[" && s.[String.length s - 1] = ']' then
    match int_of_string_opt (String.sub s 4 (String.length s - 5)) with
    | Some n -> Ok (Buf n)
    | None -> fail ()
  else if String.length s > 3 && String.sub s 0 3 = "sa[" && s.[String.length s - 1] = ']' then begin
    let body = String.sub s 3 (String.length s - 4) in
    match String.rindex_opt body ':' with
    | Some i -> (
        let ip = String.sub body 0 i in
        match int_of_string_opt (String.sub body (i + 1) (String.length body - i - 1)) with
        | Some port -> Ok (Sa (ip, port))
        | None -> fail ())
    | None -> fail ()
  end
  else
    match int_of_string_opt s with Some n -> Ok (I n) | None -> fail ()

let parse_expect s =
  match s with
  | "*" -> Ok Any
  | "ok" -> Ok Nonneg
  | _ -> (
      match int_of_string_opt s with
      | Some n -> Ok (Ret n)
      | None -> (
          match Errno.of_string s with
          | Some e -> Ok (Err e)
          | None -> Error (Printf.sprintf "bad expectation %S" s)))

let parse_line lineno line =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let err msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let line, blocking =
    let l = String.trim line in
    if String.length l > 1 && String.sub l (String.length l - 2) 2 = " !" then
      (String.trim (String.sub l 0 (String.length l - 2)), true)
    else (l, false)
  in
  match (String.index_opt line '(', String.rindex_opt line ')') with
  | Some op, Some cl when op < cl -> (
      let name = String.trim (String.sub line 0 op) in
      let args_s = String.sub line (op + 1) (cl - op - 1) in
      let rest = String.trim (String.sub line (cl + 1) (String.length line - cl - 1)) in
      let* expect =
        if rest = "" then Ok Any
        else if String.length rest > 1 && rest.[0] = '=' then
          Result.map_error (Printf.sprintf "line %d: %s" lineno)
            (parse_expect (String.trim (String.sub rest 1 (String.length rest - 1))))
        else err "expected '= <ret>' after ')'"
      in
      if Sysno.number name = None then err (Printf.sprintf "unknown syscall %S" name)
      else
        let rec args acc = function
          | [] -> Ok (List.rev acc)
          | s :: rest -> (
              match parse_arg s with
              | Ok a -> args (a :: acc) rest
              | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
        in
        let* args = args [] (split_args args_s) in
        Ok { name; args; expect; blocking })
  | _ -> err "expected <syscall>(<args>) = <ret>"

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno tname acc = function
    | [] -> (
        match tname with
        | None -> Error "missing 'trace <name>' header"
        | Some tname -> Ok { tname; entries = List.rev acc })
    | line :: rest -> (
        let l = String.trim line in
        if l = "" || l.[0] = '#' then go (lineno + 1) tname acc rest
        else
          match tname with
          | None ->
              if String.length l > 6 && String.sub l 0 6 = "trace " then
                go (lineno + 1) (Some (String.trim (String.sub l 6 (String.length l - 6)))) acc rest
              else Error (Printf.sprintf "line %d: expected 'trace <name>' header" lineno)
          | Some _ -> (
              match parse_line lineno l with
              | Ok e -> go (lineno + 1) tname (e :: acc) rest
              | Error e -> Error e))
  in
  go 1 None [] lines

(* --- replay ------------------------------------------------------------- *)

type outcome = {
  results : int array;
  calls : int;  (** shim dispatches, including the arena mmap and retries *)
  retries : int;
  enosys : int;
  boundary_cycles : int;  (** calls x the dispatch mode's Table-1 cost *)
  interp_cycles : int;  (** binary-interpreter cycles outside the boundary *)
}

let arena_need e =
  List.fold_left
    (fun acc -> function
      | Str s -> acc + String.length s + 1
      | Buf n -> acc + n
      | Sa _ -> acc + 16
      | I _ | Slot _ | Ptr _ -> acc)
    0 e.args

(* Allocate the arena with a real mmap syscall, then bump-allocate and
   marshal every Str/Buf/Sa argument into process memory. Returns the
   per-entry allocation base (for [Ptr]) and a resolver turning an
   entry's args into raw register values given earlier results. *)
let prepare p t =
  let total = List.fold_left (fun acc e -> acc + arena_need e) 0 t.entries in
  let page = Process.page_size in
  let total = (total + page - 1) / page * page in
  let arena =
    if total = 0 then Ok 0
    else Personality.call p "mmap" [| 0; total; 3; 0x22; -1; 0 |]
  in
  match arena with
  | Error e -> Error (Printf.sprintf "arena mmap failed: %s" (Errno.to_string e))
  | Ok base ->
      let bump = ref base in
      let alloc n =
        let a = !bump in
        bump := !bump + n;
        a
      in
      let n = List.length t.entries in
      let bases = Array.make n 0 in
      let entry_args = Array.make n [||] in
      let proc = Personality.proc p in
      (try
         List.iteri
           (fun i e ->
             let vals =
               List.map
                 (fun a ->
                   match a with
                   | I v -> `Now v
                   | Slot k ->
                       if k < 0 || k >= i then
                         failwith (Printf.sprintf "entry %d: $%d out of range" i k)
                       else `Slot k
                   | Ptr k ->
                       if k < 0 || k >= i || bases.(k) = 0 then
                         failwith (Printf.sprintf "entry %d: &%d does not allocate" i k)
                       else `Now bases.(k)
                   | Str s ->
                       let a = alloc (String.length s + 1) in
                       if bases.(i) = 0 then bases.(i) <- a;
                       (match Process.write_mem proc ~addr:a (Bytes.of_string (s ^ "\000")) with
                       | Ok () -> ()
                       | Error e -> failwith (Errno.to_string e));
                       `Now a
                   | Buf len ->
                       let a = alloc len in
                       if bases.(i) = 0 then bases.(i) <- a;
                       `Now a
                   | Sa (ip, port) ->
                       let a = alloc 16 in
                       if bases.(i) = 0 then bases.(i) <- a;
                       let sa =
                         Personality.sockaddr_bytes (Uknetstack.Addr.Ipv4.of_string ip, port)
                       in
                       (match Process.write_mem proc ~addr:a sa with
                       | Ok () -> ()
                       | Error e -> failwith (Errno.to_string e));
                       `Now a)
                 e.args
             in
             entry_args.(i) <- Array.of_list vals)
           t.entries;
         Ok
           (fun i results ->
             Array.map (function `Now v -> v | `Slot k -> results.(k)) entry_args.(i))
       with Failure msg -> Error msg)

let check_expect i e result =
  let ok =
    match (e.expect, result) with
    | Any, _ -> true
    | Nonneg, Ok v -> v >= 0
    | Nonneg, Error _ -> false
    | Ret n, Ok v -> v = n
    | Ret _, Error _ -> false
    | Err want, Error got -> want = got
    | Err _, Ok _ -> false
  in
  if ok then Ok ()
  else
    Error
      (Printf.sprintf "entry %d (%s): expected %s, got %s" i e.name (string_of_expect e.expect)
         (match result with
         | Ok v -> string_of_int v
         | Error e -> Errno.to_string e))

let default_wait () = Uksched.Sched.sleep_ns 1000.0

let default_max_retries = 200_000

(* Issue one entry through the personality, retrying would-block results
   after [wait] lets virtual time (and the network) make progress. *)
let issue ~wait ~max_retries ~retries p sysno args blocking =
  let rec go budget =
    match Personality.call_sysno p sysno args with
    | Error Errno.Eagain when blocking ->
        if budget = 0 then Error `Stuck
        else begin
          incr retries;
          wait ();
          go (budget - 1)
        end
    | r -> Ok r
  in
  go max_retries

let run ?(wait = default_wait) ?(max_retries = default_max_retries) p t =
  let shim = Personality.shim p in
  let calls0 = Shim.calls_made shim in
  match prepare p t with
  | Error e -> Error e
  | Ok resolve -> (
      let n = List.length t.entries in
      let results = Array.make n 0 in
      let retries = ref 0 in
      let enosys0 = Shim.enosys_count shim in
      let rec go i = function
        | [] -> Ok ()
        | e :: rest -> (
            let sysno = Option.get (Sysno.number e.name) in
            match issue ~wait ~max_retries ~retries p sysno (resolve i results) e.blocking with
            | Error `Stuck -> Error (Printf.sprintf "entry %d (%s): still EAGAIN after %d retries" i e.name max_retries)
            | Ok r -> (
                results.(i) <- (match r with Ok v -> v | Error e -> Errno.to_code e);
                match check_expect i e r with Ok () -> go (i + 1) rest | Error m -> Error m))
      in
      match go 0 t.entries with
      | Error e -> Error e
      | Ok () ->
          let calls = Shim.calls_made shim - calls0 in
          Ok
            {
              results;
              calls;
              retries = !retries;
              enosys = Shim.enosys_count shim - enosys0;
              boundary_cycles = calls * Shim.dispatch_cost (Shim.mode shim);
              interp_cycles = 0;
            })

(* --- binary compilation ------------------------------------------------- *)

(* Each entry compiles to a short basic block of ordinary instructions
   (address computation, argument set-up) followed by the syscall
   instruction — enough text for the rewriter to have something to scan
   past, deterministic per entry index. *)
let pad_insns i =
  Binary.
    [ Mov (i land 7, (i + 1) land 7); Add (1, 2); Cmp (0, 1); Nop; Mov (2, 3); Add (3, 4); Nop ]

let to_binary t =
  let insns =
    List.concat
      (List.mapi
         (fun i e -> pad_insns i @ [ Binary.Syscall (Option.get (Sysno.number e.name)) ])
         t.entries)
    @ [ Binary.Ret ]
  in
  Binary.assemble insns

let run_binary ?(wait = default_wait) ?(max_retries = default_max_retries) p ~binary t =
  let shim = Personality.shim p in
  let calls0 = Shim.calls_made shim in
  match prepare p t with
  | Error e -> Error e
  | Ok resolve ->
      let entries = Array.of_list t.entries in
      let n = Array.length entries in
      let results = Array.make n 0 in
      let retries = ref 0 in
      let enosys0 = Shim.enosys_count shim in
      let site = ref 0 in
      let failure = ref None in
      let dispatch ~trap:_ ~sysno =
        let i = !site in
        incr site;
        if i >= n || !failure <> None then Error Errno.Einval
        else begin
          let e = entries.(i) in
          let expected = Option.get (Sysno.number e.name) in
          if sysno <> expected then begin
            failure := Some (Printf.sprintf "site %d: binary has sysno %d, trace has %s" i sysno e.name);
            Error Errno.Einval
          end
          else
            match issue ~wait ~max_retries ~retries p sysno (resolve i results) e.blocking with
            | Error `Stuck ->
                failure := Some (Printf.sprintf "entry %d (%s): still EAGAIN after %d retries" i e.name max_retries);
                Error Errno.Eagain
            | Ok r ->
                results.(i) <- (match r with Ok v -> v | Error e -> Errno.to_code e);
                (match check_expect i e r with Ok () -> () | Error m -> failure := Some m);
                r
        end
      in
      let stats = Binary.execute_with ~clock:(Personality.clock p) ~dispatch binary in
      (match !failure with
      | Some m -> Error m
      | None ->
          if !site <> n then
            Error (Printf.sprintf "binary executed %d syscall sites, trace has %d" !site n)
          else
            let calls = Shim.calls_made shim - calls0 in
            Ok
              {
                results;
                calls;
                retries = !retries;
                enosys = Shim.enosys_count shim - enosys0;
                boundary_cycles = calls * Shim.dispatch_cost (Shim.mode shim);
                interp_cycles = stats.Binary.instructions - stats.Binary.syscalls;
              })
