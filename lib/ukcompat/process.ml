module Pt = Ukmmu.Pagetable
module Errno = Uksyscall.Fs_errno

let page_size = Pt.page_size
let at_fdcwd = -100

type file = { vfd : Ukvfs.Vfs.fd; path : string }

type sock = Unbound of [ `Stream | `Dgram ] | Bound_stream of int

type obj =
  | File of file
  | Sock of sock
  | Udp of Uknetstack.Stack.Udp_socket.t
  | Listener of Uknetstack.Stack.Tcp_socket.listener
  | Flow of Uknetstack.Stack.Tcp_socket.flow

type t = {
  clock : Uksim.Clock.t;
  pt : Pt.t;
  ram : Bytes.t;
  mutable free_pages : int list;  (* physical page numbers *)
  fds : (int, obj) Hashtbl.t;
  mutable next_fd : int;
  mutable cwd : string;
  pid : int;
  heap_base : int;
  mutable break : int;
  mmap_base : int;
  mutable mmap_next : int;
}

let heap_base_default = 0x1000_0000
let mmap_base_default = 0x2000_0000

let create ~clock ?(ram_bytes = 1 lsl 20) ?(pid = 1) () =
  let pages = (ram_bytes + page_size - 1) / page_size in
  let ram_bytes = pages * page_size in
  let pt = Pt.create ~clock ~mode:Pt.Dynamic ~ram_bytes in
  {
    clock;
    pt;
    ram = Bytes.make ram_bytes '\000';
    free_pages = List.init pages (fun i -> i);
    fds = Hashtbl.create 16;
    next_fd = 3;
    cwd = "/";
    pid;
    heap_base = heap_base_default;
    break = heap_base_default;
    mmap_base = mmap_base_default;
    mmap_next = mmap_base_default;
  }

let pagetable t = t.pt
let pid t = t.pid
let cwd t = t.cwd
let set_cwd t d = t.cwd <- d

let resolve t path =
  if path = "" then t.cwd
  else if path.[0] = '/' then path
  else if t.cwd = "/" then "/" ^ path
  else t.cwd ^ "/" ^ path

(* --- user memory -------------------------------------------------------- *)

let map_fresh_page t ~vaddr =
  match t.free_pages with
  | [] -> Error Errno.Enomem
  | p :: rest ->
      t.free_pages <- rest;
      let paddr = p * page_size in
      Bytes.fill t.ram paddr page_size '\000';
      Pt.map_page t.pt ~vaddr ~paddr;
      Ok ()

let unmap_user_page t ~vaddr =
  match Pt.translate t.pt vaddr with
  | None -> ()
  | Some paddr ->
      Pt.unmap_page t.pt ~vaddr;
      t.free_pages <- (paddr / page_size) :: t.free_pages

(* Walk [addr, addr+len) one page segment at a time, translating each
   segment through the page table (charging TLB hit/walk costs), and hand
   [f] the physical range. *)
let iter_segments t ~addr ~len f =
  let rec go vaddr remaining off =
    if remaining = 0 then Ok ()
    else
      let in_page = page_size - (vaddr land (page_size - 1)) in
      let seg = min remaining in_page in
      match Pt.translate t.pt vaddr with
      | None -> Error Errno.Efault
      | Some paddr ->
          f ~paddr ~off ~len:seg;
          go (vaddr + seg) (remaining - seg) (off + seg)
  in
  if len < 0 || addr < 0 then Error Errno.Efault else go addr len 0

let read_mem t ~addr ~len =
  let out = Bytes.create len in
  match iter_segments t ~addr ~len (fun ~paddr ~off ~len -> Bytes.blit t.ram paddr out off len) with
  | Ok () -> Ok out
  | Error e -> Error e

let write_mem t ~addr data =
  let len = Bytes.length data in
  match iter_segments t ~addr ~len (fun ~paddr ~off ~len -> Bytes.blit data off t.ram paddr len) with
  | Ok () -> Ok ()
  | Error e -> Error e

let max_str = 4096

let read_str t ~addr =
  let rec go vaddr acc acc_len =
    if acc_len > max_str then Error Errno.Efault
    else
      let in_page = page_size - (vaddr land (page_size - 1)) in
      match Pt.translate t.pt vaddr with
      | None -> Error Errno.Efault
      | Some paddr -> (
          match Bytes.index_from_opt t.ram paddr '\000' with
          | Some i when i < paddr + in_page ->
              let chunk = Bytes.sub_string t.ram paddr (i - paddr) in
              Ok (String.concat "" (List.rev (chunk :: acc)))
          | _ ->
              go (vaddr + in_page)
                (Bytes.sub_string t.ram paddr in_page :: acc)
                (acc_len + in_page))
  in
  go addr [] 0

(* --- address-space operations ------------------------------------------- *)

let pages_of len = (len + page_size - 1) / page_size

let mmap t ~len =
  if len <= 0 then Error Errno.Einval
  else begin
    let n = pages_of len in
    let vaddr = t.mmap_next in
    let rec map i =
      if i = n then Ok vaddr
      else
        match map_fresh_page t ~vaddr:(vaddr + (i * page_size)) with
        | Ok () -> map (i + 1)
        | Error e ->
            (* undo partial mapping *)
            for j = 0 to i - 1 do
              unmap_user_page t ~vaddr:(vaddr + (j * page_size))
            done;
            Error e
    in
    match map 0 with
    | Ok v ->
        t.mmap_next <- t.mmap_next + (n * page_size);
        Ok v
    | Error e -> Error e
  end

let munmap t ~addr ~len =
  if addr land (page_size - 1) <> 0 || len <= 0 then Error Errno.Einval
  else begin
    for i = 0 to pages_of len - 1 do
      unmap_user_page t ~vaddr:(addr + (i * page_size))
    done;
    Ok 0
  end

let brk t addr =
  if addr <= t.break then t.break (* query (0) or shrink attempt: break unchanged *)
  else begin
    let cur_pages = pages_of (t.break - t.heap_base) in
    let want_pages = pages_of (addr - t.heap_base) in
    let rec grow i =
      if i >= want_pages then true
      else
        match map_fresh_page t ~vaddr:(t.heap_base + (i * page_size)) with
        | Ok () -> grow (i + 1)
        | Error _ ->
            (* undo the partial growth: failed brk must not eat pages *)
            for j = cur_pages to i - 1 do
              unmap_user_page t ~vaddr:(t.heap_base + (j * page_size))
            done;
            false
    in
    if grow cur_pages then begin
      t.break <- addr;
      addr
    end
    else t.break (* ENOMEM: Linux leaves the break unchanged *)
  end

let break t = t.break
let heap_base t = t.heap_base

let mem_digest t =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%d|%d|%d" (Digest.bytes t.ram) t.break t.mmap_next
          (List.length t.free_pages)))

(* --- file descriptor table ---------------------------------------------- *)

let alloc_fd t obj =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.replace t.fds fd obj;
  fd

let lookup t fd = Hashtbl.find_opt t.fds fd
let set_obj t fd obj = Hashtbl.replace t.fds fd obj

let close_fd t fd =
  match Hashtbl.find_opt t.fds fd with
  | None -> None
  | Some obj ->
      Hashtbl.remove t.fds fd;
      Some obj

let open_fd_count t = Hashtbl.length t.fds
