(** The executable Linux-syscall personality (paper §4.1, "syscall shim
    layer" made real).

    [create] builds a process ({!Process}) and a {!Uksyscall.Shim.t} and
    registers real handlers for the core file syscalls (routed to
    {!Ukvfs.Vfs}), socket syscalls (routed to a {!Uknetstack.Stack}),
    memory syscalls (routed to the process's {!Ukmmu.Pagetable}) and time
    syscalls (the virtual clock) — plus the quickly-stubbed identity
    chatter every glibc startup emits. Everything registered is within
    {!Uksyscall.Appdb.unikraft_supported}, so live-shim coverage equals
    the paper's static Fig 7 analysis. Unregistered syscalls still return
    [ENOSYS] through the shim.

    Handlers are strictly non-blocking: would-block conditions surface as
    [EAGAIN] and the caller (e.g. {!Trace.run}) retries after letting
    virtual time advance. *)

type t

val create :
  clock:Uksim.Clock.t ->
  mode:Uksyscall.Shim.dispatch ->
  vfs:Ukvfs.Vfs.t ->
  ?stack:Uknetstack.Stack.t ->
  ?sched:Uksched.Sched.t ->
  ?ram_bytes:int ->
  ?pid:int ->
  unit ->
  t
(** Socket syscalls return [ENOTSUP] when no [stack] is given; [nanosleep]
    parks the fiber when a [sched] is given, else advances the clock
    directly. Registers a ["ukcompat.personality"] uktrace source
    (per-call cycle histogram + per-syscall cycle totals). *)

val clock : t -> Uksim.Clock.t
val shim : t -> Uksyscall.Shim.t
val proc : t -> Process.t
val vfs : t -> Ukvfs.Vfs.t

val exited : t -> int option
(** Set once the process has issued [exit]/[exit_group]. *)

val call : t -> string -> int array -> (int, Uksyscall.Fs_errno.t) result
(** [call t name args]: dispatch by syscall name through the shim
    (charging the shim's dispatch cost), recording cycles into the
    personality's trace source. Raises [Invalid_argument] on unknown
    names. *)

val call_sysno : t -> int -> int array -> (int, Uksyscall.Fs_errno.t) result

val sockaddr_bytes : Uknetstack.Addr.Ipv4.t * int -> bytes
(** The 16-byte [struct sockaddr_in] encoding handlers parse — exposed so
    the trace replayer can marshal address arguments into process
    memory. *)
