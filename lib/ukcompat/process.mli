(** Per-process Linux-personality state (ukcompat's "task_struct").

    One process owns:
    - a file-descriptor table mapping small integers onto vfscore files,
      uknetstack sockets (UDP, TCP listeners, TCP flows) and pre-bind
      socket placeholders;
    - a user address space: a flat RAM backing store plus a real
      {!Ukmmu.Pagetable} in [Dynamic] mode. The heap ([brk]) and [mmap]
      regions live at high virtual addresses backed by a physical page
      allocator, so every user-buffer access a syscall handler performs
      walks the page table (charging TLB hit/walk costs) and faults with
      [EFAULT] on unmapped addresses;
    - identity bits (pid, cwd).

    Syscall handlers in {!Personality} marshal raw register-style [int]
    arguments through this module: pointers are virtual addresses into
    the process address space, strings are NUL-terminated bytes there. *)

val page_size : int

val at_fdcwd : int
(** Linux's [AT_FDCWD] (-100), accepted by [openat]. *)

type file = { vfd : Ukvfs.Vfs.fd; path : string }

type sock = Unbound of [ `Stream | `Dgram ] | Bound_stream of int

type obj =
  | File of file
  | Sock of sock  (** created by [socket], not yet usable for I/O *)
  | Udp of Uknetstack.Stack.Udp_socket.t
  | Listener of Uknetstack.Stack.Tcp_socket.listener
  | Flow of Uknetstack.Stack.Tcp_socket.flow

type t

val create : clock:Uksim.Clock.t -> ?ram_bytes:int -> ?pid:int -> unit -> t
(** [ram_bytes] (default 1 MiB, rounded to pages) bounds the physical
    pages available to [mmap]/[brk]; building the page table charges the
    dynamic boot cost to [clock]. *)

val pagetable : t -> Ukmmu.Pagetable.t
val pid : t -> int
val cwd : t -> string
val set_cwd : t -> string -> unit

val resolve : t -> string -> string
(** Absolute paths pass through; relative paths are joined to the cwd. *)

(** {1 User memory} *)

val read_mem : t -> addr:int -> len:int -> (bytes, Uksyscall.Fs_errno.t) result
val write_mem : t -> addr:int -> bytes -> (unit, Uksyscall.Fs_errno.t) result

val read_str : t -> addr:int -> (string, Uksyscall.Fs_errno.t) result
(** NUL-terminated string at [addr] (bounded at 4 KiB). *)

val mmap : t -> len:int -> (int, Uksyscall.Fs_errno.t) result
(** Map fresh zeroed pages; returns the new region's virtual address.
    [ENOMEM] when the physical pool is exhausted (partial maps are
    undone). *)

val munmap : t -> addr:int -> len:int -> (int, Uksyscall.Fs_errno.t) result
(** Unmap and recycle the pages covering [addr, addr+len); [addr] must be
    page-aligned. Unmapped pages in the range are skipped, as in Linux. *)

val brk : t -> int -> int
(** Linux [brk] semantics: a request at or below the current break (e.g.
    0) queries it; growing maps pages and returns the new break; on
    exhaustion the break is unchanged and the old value returns. *)

val break : t -> int
val heap_base : t -> int

val mem_digest : t -> string
(** Digest over RAM contents + break/mmap cursors — the replay-determinism
    fingerprint. *)

(** {1 File descriptors} *)

val alloc_fd : t -> obj -> int
val lookup : t -> int -> obj option
val set_obj : t -> int -> obj -> unit
(** Replace the object behind a descriptor (bind/listen transitions). *)

val close_fd : t -> int -> obj option
val open_fd_count : t -> int
