module Shim = Uksyscall.Shim
module Sysno = Uksyscall.Sysno
module Errno = Uksyscall.Fs_errno
module Vfs = Ukvfs.Vfs
module Stack = Uknetstack.Stack
module Metric = Uktrace.Metric

type t = {
  clock : Uksim.Clock.t;
  shim : Shim.t;
  proc : Process.t;
  vfs : Vfs.t;
  stack : Stack.t option;
  sched : Uksched.Sched.t option;
  hist : Metric.Histogram.t;  (* dispatch + handler cycles per call *)
  cycles_by_name : (string, int ref) Hashtbl.t;
  mutable exited : int option;
}

let clock t = t.clock
let shim t = t.shim
let proc t = t.proc
let vfs t = t.vfs
let exited t = t.exited

(* vfscore errnos crossing the syscall boundary. *)
let errno_of_fs : Ukvfs.Fs.errno -> Errno.t = function
  | Ukvfs.Fs.Enoent -> Errno.Enoent
  | Ukvfs.Fs.Eexist -> Errno.Einval
  | Ukvfs.Fs.Enotdir -> Errno.Enoent
  | Ukvfs.Fs.Eisdir -> Errno.Einval
  | Ukvfs.Fs.Ebadf -> Errno.Ebadf
  | Ukvfs.Fs.Enospc -> Errno.Enomem
  | Ukvfs.Fs.Einval -> Errno.Einval
  | Ukvfs.Fs.Eio -> Errno.Einval
  | Ukvfs.Fs.Enosys -> Errno.Enosys

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e
let lift_fs r = Result.map_error errno_of_fs r

(* Little-endian stores into a local struct buffer. *)
let put64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let put32 b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

(* sockaddr_in: sa_family (2, LE) | port (2, network order) | addr (4,
   network order) | zero padding to 16 bytes. *)
let sockaddr_bytes (ip, port) =
  let b = Bytes.make 16 '\000' in
  Bytes.set b 0 '\002';
  Bytes.set b 2 (Char.chr ((port lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (port land 0xff));
  let a = Uknetstack.Addr.Ipv4.to_int ip in
  for i = 0 to 3 do
    Bytes.set b (4 + i) (Char.chr ((a lsr (8 * (3 - i))) land 0xff))
  done;
  b

let parse_sockaddr t ~addr =
  let* b = Process.read_mem t.proc ~addr ~len:8 in
  let family = Char.code (Bytes.get b 0) lor (Char.code (Bytes.get b 1) lsl 8) in
  if family <> 2 then Error Errno.Einval
  else begin
    let port = (Char.code (Bytes.get b 2) lsl 8) lor Char.code (Bytes.get b 3) in
    let ip = ref 0 in
    for i = 0 to 3 do
      ip := (!ip lsl 8) lor Char.code (Bytes.get b (4 + i))
    done;
    Ok (Uknetstack.Addr.Ipv4.of_int !ip, port)
  end

let write_sockaddr t ~addr peer =
  if addr = 0 then Ok () else Process.write_mem t.proc ~addr (sockaddr_bytes peer)

let stack t = match t.stack with Some s -> Ok s | None -> Error Errno.Enotsup

(* struct stat: st_mode (u32) at offset 24, st_size (u64) at offset 48,
   144 bytes total — the x86-64 layout libc reads back. *)
let stat_bytes ~mode ~size =
  let b = Bytes.make 144 '\000' in
  put32 b 24 mode;
  put64 b 48 size;
  b

let s_ifreg = 0o100000
let s_ifdir = 0o040000
let s_ifsock = 0o140000

(* --- handlers ----------------------------------------------------------- *)

let arg args i = if i < Array.length args then args.(i) else 0

let h_openat t args =
  let dirfd = arg args 0 and path_ptr = arg args 1 and flags = arg args 2 in
  let* path = Process.read_str t.proc ~addr:path_ptr in
  if dirfd <> Process.at_fdcwd && not (String.length path > 0 && path.[0] = '/') then
    Error Errno.Enotsup
  else
    let path = Process.resolve t.proc path in
    let create = flags land 0o100 <> 0 (* O_CREAT *) in
    let* vfd = lift_fs (Vfs.open_file t.vfs path ~create ()) in
    Ok (Process.alloc_fd t.proc (Process.File { vfd; path }))

let h_open t args = h_openat t [| Process.at_fdcwd; arg args 0; arg args 1 |]

let h_read t args =
  let fd = arg args 0 and buf = arg args 1 and len = arg args 2 in
  if len < 0 then Error Errno.Einval
  else
    match Process.lookup t.proc fd with
    | Some (Process.File f) ->
        let* data = lift_fs (Vfs.read t.vfs f.vfd ~len) in
        let* () = Process.write_mem t.proc ~addr:buf data in
        Ok (Bytes.length data)
    | Some (Process.Flow fl) -> (
        let* s = stack t in
        if len = 0 then Ok 0
        else
          match Stack.Tcp_socket.recv s fl ~max:len with
          | None -> Ok 0 (* EOF *)
          | Some b when Bytes.length b = 0 -> Error Errno.Eagain
          | Some b ->
              let* () = Process.write_mem t.proc ~addr:buf b in
              Ok (Bytes.length b))
    | Some (Process.Udp u) -> (
        match Stack.Udp_socket.recvfrom u with
        | None -> Error Errno.Eagain
        | Some (_, _, data) ->
            let data = if Bytes.length data > len then Bytes.sub data 0 len else data in
            let* () = Process.write_mem t.proc ~addr:buf data in
            Ok (Bytes.length data))
    | Some _ -> Error Errno.Einval
    | None -> Error Errno.Ebadf

let h_write t args =
  let fd = arg args 0 and buf = arg args 1 and len = arg args 2 in
  if len < 0 then Error Errno.Einval
  else
    let* data = Process.read_mem t.proc ~addr:buf ~len in
    match Process.lookup t.proc fd with
    | Some (Process.File f) -> lift_fs (Vfs.write t.vfs f.vfd data)
    | Some (Process.Flow fl) ->
        let* s = stack t in
        let n = Stack.Tcp_socket.send s fl data in
        if n = 0 && len > 0 then Error Errno.Eagain else Ok n
    | Some _ -> Error Errno.Einval
    | None -> Error Errno.Ebadf

let h_close t args =
  let fd = arg args 0 in
  match Process.close_fd t.proc fd with
  | None -> Error Errno.Ebadf
  | Some obj ->
      (match obj with
      | Process.File f -> ignore (Vfs.close t.vfs f.vfd)
      | Process.Udp u -> Stack.Udp_socket.close u
      | Process.Flow fl -> ( match t.stack with Some s -> Stack.Tcp_socket.close s fl | None -> ())
      | Process.Listener _ | Process.Sock _ -> ());
      Ok 0

let h_lseek t args =
  let fd = arg args 0 and off = arg args 1 and whence = arg args 2 in
  match Process.lookup t.proc fd with
  | Some (Process.File f) -> (
      match whence with
      | 0 (* SEEK_SET *) -> lift_fs (Vfs.lseek t.vfs f.vfd off)
      | 2 (* SEEK_END *) ->
          let* st = lift_fs (Vfs.stat t.vfs f.path) in
          lift_fs (Vfs.lseek t.vfs f.vfd (st.Ukvfs.Fs.size + off))
      | _ -> Error Errno.Enotsup)
  | Some _ -> Error Errno.Einval
  | None -> Error Errno.Ebadf

let h_fstat t args =
  let fd = arg args 0 and st_ptr = arg args 1 in
  match Process.lookup t.proc fd with
  | None -> Error Errno.Ebadf
  | Some obj ->
      let* b =
        match obj with
        | Process.File f ->
            let* st = lift_fs (Vfs.stat t.vfs f.path) in
            let mode =
              match st.Ukvfs.Fs.ftype with
              | Ukvfs.Fs.Regular -> s_ifreg lor 0o644
              | Ukvfs.Fs.Directory -> s_ifdir lor 0o755
            in
            Ok (stat_bytes ~mode ~size:st.Ukvfs.Fs.size)
        | _ -> Ok (stat_bytes ~mode:(s_ifsock lor 0o777) ~size:0)
      in
      let* () = Process.write_mem t.proc ~addr:st_ptr b in
      Ok 0

let h_stat t args =
  let path_ptr = arg args 0 and st_ptr = arg args 1 in
  let* path = Process.read_str t.proc ~addr:path_ptr in
  let path = Process.resolve t.proc path in
  let* st = lift_fs (Vfs.stat t.vfs path) in
  let mode =
    match st.Ukvfs.Fs.ftype with
    | Ukvfs.Fs.Regular -> s_ifreg lor 0o644
    | Ukvfs.Fs.Directory -> s_ifdir lor 0o755
  in
  let* () = Process.write_mem t.proc ~addr:st_ptr (stat_bytes ~mode ~size:st.Ukvfs.Fs.size) in
  Ok 0

let h_socket t args =
  let domain = arg args 0 and typ = arg args 1 land 0xf in
  let* _ = stack t in
  if domain <> 2 (* AF_INET *) then Error Errno.Enotsup
  else
    match typ with
    | 1 -> Ok (Process.alloc_fd t.proc (Process.Sock (Process.Unbound `Stream)))
    | 2 -> Ok (Process.alloc_fd t.proc (Process.Sock (Process.Unbound `Dgram)))
    | _ -> Error Errno.Enotsup

let h_bind t args =
  let fd = arg args 0 and sa = arg args 1 in
  let* s = stack t in
  let* _, port = parse_sockaddr t ~addr:sa in
  match Process.lookup t.proc fd with
  | Some (Process.Sock (Process.Unbound `Dgram)) ->
      let u = Stack.Udp_socket.bind s ~port in
      Process.set_obj t.proc fd (Process.Udp u);
      Ok 0
  | Some (Process.Sock (Process.Unbound `Stream)) ->
      Process.set_obj t.proc fd (Process.Sock (Process.Bound_stream port));
      Ok 0
  | Some _ -> Error Errno.Einval
  | None -> Error Errno.Ebadf

let h_listen t args =
  let fd = arg args 0 and backlog = arg args 1 in
  let* s = stack t in
  match Process.lookup t.proc fd with
  | Some (Process.Sock (Process.Bound_stream port)) ->
      let l = Stack.Tcp_socket.listen s ~port ~backlog:(max 1 backlog) () in
      Process.set_obj t.proc fd (Process.Listener l);
      Ok 0
  | Some _ -> Error Errno.Einval
  | None -> Error Errno.Ebadf

let h_accept t args =
  let fd = arg args 0 and sa = arg args 1 in
  let* _ = stack t in
  match Process.lookup t.proc fd with
  | Some (Process.Listener l) -> (
      match Stack.Tcp_socket.accept l with
      | None -> Error Errno.Eagain
      | Some flow ->
          let* () = write_sockaddr t ~addr:sa (Uknetstack.Tcp.remote_addr flow) in
          Ok (Process.alloc_fd t.proc (Process.Flow flow)))
  | Some _ -> Error Errno.Einval
  | None -> Error Errno.Ebadf

let h_connect t args =
  let fd = arg args 0 and sa = arg args 1 in
  let* s = stack t in
  let* dst = parse_sockaddr t ~addr:sa in
  match Process.lookup t.proc fd with
  | Some (Process.Sock (Process.Unbound `Stream)) ->
      let flow = Stack.Tcp_socket.connect s ~dst () in
      Process.set_obj t.proc fd (Process.Flow flow);
      Ok 0
  | Some _ -> Error Errno.Einval
  | None -> Error Errno.Ebadf

let h_sendto t args =
  let fd = arg args 0 and buf = arg args 1 and len = arg args 2 and sa = arg args 4 in
  match Process.lookup t.proc fd with
  | Some (Process.Udp u) ->
      let* data = Process.read_mem t.proc ~addr:buf ~len in
      let* dst = parse_sockaddr t ~addr:sa in
      Stack.Udp_socket.sendto u ~dst data;
      Ok len
  | Some (Process.Flow _) -> h_write t [| fd; buf; len |]
  | Some _ -> Error Errno.Einval
  | None -> Error Errno.Ebadf

let h_recvfrom t args =
  let fd = arg args 0 and buf = arg args 1 and len = arg args 2 and sa = arg args 4 in
  match Process.lookup t.proc fd with
  | Some (Process.Udp u) -> (
      match Stack.Udp_socket.recvfrom u with
      | None -> Error Errno.Eagain
      | Some (ip, port, data) ->
          let data = if Bytes.length data > len then Bytes.sub data 0 len else data in
          let* () = Process.write_mem t.proc ~addr:buf data in
          let* () = write_sockaddr t ~addr:sa (ip, port) in
          Ok (Bytes.length data))
  | Some (Process.Flow _) -> h_read t [| fd; buf; len |]
  | Some _ -> Error Errno.Einval
  | None -> Error Errno.Ebadf

let h_mmap t args = Process.mmap t.proc ~len:(arg args 1)
let h_munmap t args = Process.munmap t.proc ~addr:(arg args 0) ~len:(arg args 1)
let h_brk t args = Ok (Process.brk t.proc (arg args 0))

let ns_now t = Uksim.Clock.ns t.clock

let h_clock_gettime t args =
  let tp = arg args 1 in
  let ns = ns_now t in
  let b = Bytes.make 16 '\000' in
  put64 b 0 (int_of_float (ns /. 1e9));
  put64 b 8 (int_of_float (Float.rem ns 1e9));
  let* () = Process.write_mem t.proc ~addr:tp b in
  Ok 0

let h_gettimeofday t args =
  let tv = arg args 0 in
  let ns = ns_now t in
  let b = Bytes.make 16 '\000' in
  put64 b 0 (int_of_float (ns /. 1e9));
  put64 b 8 (int_of_float (Float.rem ns 1e9 /. 1e3));
  let* () = Process.write_mem t.proc ~addr:tv b in
  Ok 0

let h_time t args =
  let ptr = arg args 0 in
  let sec = int_of_float (ns_now t /. 1e9) in
  let* () =
    if ptr = 0 then Ok ()
    else begin
      let b = Bytes.make 8 '\000' in
      put64 b 0 sec;
      Process.write_mem t.proc ~addr:ptr b
    end
  in
  Ok sec

let h_nanosleep t args =
  let req = arg args 0 in
  let* b = Process.read_mem t.proc ~addr:req ~len:16 in
  let get64 off =
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
    done;
    !v
  in
  let ns = (float_of_int (get64 0) *. 1e9) +. float_of_int (get64 8) in
  (match t.sched with
  | Some _ -> Uksched.Sched.sleep_ns ns
  | None -> Uksim.Clock.advance_ns t.clock ns);
  Ok 0

let h_getcwd t args =
  let buf = arg args 0 and size = arg args 1 in
  let s = Process.cwd t.proc ^ "\000" in
  if String.length s > size then Error Errno.Einval
  else
    let* () = Process.write_mem t.proc ~addr:buf (Bytes.of_string s) in
    Ok (String.length s)

let h_chdir t args =
  let* path = Process.read_str t.proc ~addr:(arg args 0) in
  let path = Process.resolve t.proc path in
  let* st = lift_fs (Vfs.stat t.vfs path) in
  match st.Ukvfs.Fs.ftype with
  | Ukvfs.Fs.Directory ->
      Process.set_cwd t.proc path;
      Ok 0
  | Ukvfs.Fs.Regular -> Error Errno.Enoent

let h_uname t args =
  (* struct utsname: six NUL-padded 65-byte fields. *)
  let b = Bytes.make (6 * 65) '\000' in
  let put off s = Bytes.blit_string s 0 b (off * 65) (String.length s) in
  put 0 "Linux";
  put 1 "ukcompat";
  put 2 "5.4.0-ukraft";
  put 3 "#1 ukcompat personality";
  put 4 "x86_64";
  let* () = Process.write_mem t.proc ~addr:(arg args 0) b in
  Ok 0

let h_exit_group t args =
  t.exited <- Some (arg args 0);
  Ok 0

(* --- assembly ----------------------------------------------------------- *)

let no n = match Sysno.number n with Some v -> v | None -> invalid_arg ("Personality: unknown syscall " ^ n)

let register_handlers t =
  let reg name h = Shim.register t.shim ~sysno:(no name) (fun args -> h t args) in
  let stub name ret = Shim.register_stub t.shim ~sysno:(no name) ~ret in
  (* files -> ukvfs *)
  reg "openat" h_openat;
  reg "open" h_open;
  reg "read" h_read;
  reg "write" h_write;
  reg "close" h_close;
  reg "lseek" h_lseek;
  reg "fstat" h_fstat;
  reg "stat" h_stat;
  reg "getcwd" h_getcwd;
  reg "chdir" h_chdir;
  (* sockets -> uknetstack *)
  reg "socket" h_socket;
  reg "bind" h_bind;
  reg "listen" h_listen;
  reg "accept" h_accept;
  reg "connect" h_connect;
  reg "sendto" h_sendto;
  reg "recvfrom" h_recvfrom;
  (* memory -> ukmmu *)
  reg "mmap" h_mmap;
  reg "munmap" h_munmap;
  reg "brk" h_brk;
  (* time -> the virtual clock *)
  reg "clock_gettime" h_clock_gettime;
  reg "gettimeofday" h_gettimeofday;
  reg "time" h_time;
  reg "nanosleep" h_nanosleep;
  (* identity and the usual startup chatter, quickly stubbed (§4.1) *)
  reg "uname" h_uname;
  reg "exit_group" h_exit_group;
  reg "exit" h_exit_group;
  stub "getpid" (Process.pid t.proc);
  stub "gettid" (Process.pid t.proc);
  stub "getppid" 0;
  stub "getuid" 0;
  stub "getgid" 0;
  stub "geteuid" 0;
  stub "getegid" 0;
  stub "arch_prctl" 0;
  stub "set_tid_address" (Process.pid t.proc);
  stub "rt_sigaction" 0;
  stub "rt_sigprocmask" 0;
  stub "ioctl" 0;
  stub "fcntl" 0;
  stub "madvise" 0

let create ~clock ~mode ~vfs ?stack ?sched ?ram_bytes ?(pid = 1) () =
  let shim = Shim.create ~clock ~mode in
  let proc = Process.create ~clock ?ram_bytes ~pid () in
  let t =
    {
      clock;
      shim;
      proc;
      vfs;
      stack;
      sched;
      hist = Metric.Histogram.create ();
      cycles_by_name = Hashtbl.create 32;
      exited = None;
    }
  in
  register_handlers t;
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukcompat" ~name:"personality"
       ~reset:(fun () ->
         Metric.Histogram.reset t.hist;
         Hashtbl.reset t.cycles_by_name)
       (fun () ->
         let per =
           Hashtbl.fold
             (fun name c acc -> ("cycles." ^ name, Metric.Count !c) :: acc)
             t.cycles_by_name []
           |> List.sort compare
         in
         ("call_cycles", Metric.Histogram.value t.hist) :: per));
  t

let call_sysno t sysno args =
  let name = if sysno >= 0 && sysno <= Sysno.max_sysno then Sysno.name sysno else "bad" in
  let c0 = Uksim.Clock.cycles t.clock in
  let r =
    Uktrace.Tracer.span Uktrace.Tracer.default t.clock ~cat:"ukcompat" name (fun () ->
        Shim.call t.shim ~sysno args)
  in
  let dc = Uksim.Clock.cycles t.clock - c0 in
  Metric.Histogram.observe t.hist dc;
  (match Hashtbl.find_opt t.cycles_by_name name with
  | Some c -> c := !c + dc
  | None -> Hashtbl.replace t.cycles_by_name name (ref dc));
  r

let call t name args = call_sysno t (no name) args
