(** Recorded syscall traces and their replay.

    A trace is an ordered list of syscall invocations — the shape an
    strace of an application's hot loop has — with a tiny argument
    language so one recording can be replayed into a live address space:

    - [I n]: immediate register value;
    - [Str s]: NUL-terminated string marshalled into the process arena,
      pointer passed;
    - [Buf n]: [n] scratch bytes in the arena, pointer passed;
    - [Sa (ip, port)]: a [struct sockaddr_in] in the arena;
    - [Slot k]: the return value of entry [k] (fd dataflow);
    - [Ptr k]: the arena address entry [k]'s first allocation got
      (e.g. write back the buffer a previous read filled).

    The text format is line-oriented: a [trace <name>] header, then one
    entry per line, ['#'] comments:

    {v
    trace redis-get
    socket(2, 1, 0) = ok
    connect($0, sa[10.0.0.1:6379], 16) = 0
    write($0, "GET k1\n", 7) = 7
    read($0, buf[64], 64) = ok !
    v}

    [= ok] asserts a non-negative return, [= *] anything, [= <int>] an
    exact value, [= ENOENT] an errno; a trailing [!] marks the entry
    blocking — replay retries [EAGAIN] after a wait callback (default
    {!Uksched.Sched.sleep_ns}) so virtual time and the network stack make
    progress.

    Replay goes through a {!Personality} under any of the three call
    conventions of paper Table 1: {!run} dispatches directly (native
    function-call convention), {!to_binary} compiles the trace to a
    {!Uksyscall.Binary} whose syscall sites {!run_binary} executes either
    trapping (binary compatibility) or — after
    {!Uksyscall.Binary.rewrite} — as patched direct calls. *)

type arg =
  | I of int
  | Str of string
  | Buf of int
  | Sa of string * int
  | Slot of int
  | Ptr of int

type expect = Any | Nonneg | Ret of int | Err of Uksyscall.Fs_errno.t

type entry = { name : string; args : arg list; expect : expect; blocking : bool }

type t

val make : name:string -> entry list -> t
(** Raises [Invalid_argument] on unknown syscall names. *)

val name : t -> string
val entries : t -> entry list
val length : t -> int

val to_string : t -> string
val of_string : string -> (t, string) result
(** Round-trips with {!to_string}. *)

(** {1 Replay} *)

type outcome = {
  results : int array;  (** per-entry return value (errno-coded when negative) *)
  calls : int;  (** shim dispatches, including the arena mmap and retries *)
  retries : int;
  enosys : int;
  boundary_cycles : int;  (** calls x the dispatch mode's Table-1 cost *)
  interp_cycles : int;  (** binary-interpreter cycles outside the boundary *)
}

val run :
  ?wait:(unit -> unit) -> ?max_retries:int -> Personality.t -> t -> (outcome, string) result
(** Native-link replay: arguments are marshalled into an arena obtained
    with a real leading [mmap] syscall, then each entry dispatches
    through the personality's shim. Fails on an expectation mismatch or
    an entry still [EAGAIN] after [max_retries]. *)

val to_binary : t -> Uksyscall.Binary.t
(** Compile: per entry a deterministic pad of ordinary instructions plus
    one [Syscall] site, terminated by [Ret]. *)

val run_binary :
  ?wait:(unit -> unit) ->
  ?max_retries:int ->
  Personality.t ->
  binary:Uksyscall.Binary.t ->
  t ->
  (outcome, string) result
(** Execute the compiled binary via {!Uksyscall.Binary.execute_with},
    marshalling each site's arguments positionally from the trace. Works
    on the original (trapping) and {!Uksyscall.Binary.rewrite}n binary
    alike. *)
