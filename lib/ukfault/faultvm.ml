type plan = {
  at_ns : float;
  kill_fraction : float;
  min_kills : int;
  stagger_ns : float;
  repeat_ns : float;
  rounds : int;
}

let plan ~at_ns ?(kill_fraction = 0.2) ?(min_kills = 1) ?(stagger_ns = 10_000.0)
    ?(repeat_ns = 0.0) ?(rounds = 1) () =
  if kill_fraction < 0.0 || kill_fraction > 1.0 then
    invalid_arg "Faultvm.plan: kill_fraction not in [0,1]";
  if min_kills < 0 then invalid_arg "Faultvm.plan: negative min_kills";
  if rounds < 1 then invalid_arg "Faultvm.plan: rounds must be >= 1";
  { at_ns; kill_fraction; min_kills; stagger_ns; repeat_ns; rounds }

type stats = { rounds_run : int; killed : int; missed : int }

type t = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  rng : Uksim.Rng.t;
  p : plan;
  targets : unit -> int list;
  kill : now_ns:float -> int -> bool;
  mutable st : stats;
}

let stats t = t.st

let victims ~rng ~fraction ~min_kills ids =
  let arr = Array.of_list ids in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let want =
      min n (max min_kills (int_of_float (Float.round (fraction *. float_of_int n))))
    in
    (* Partial Fisher-Yates: the first [want] slots are a uniform sample
       without replacement, already in kill order. *)
    for i = 0 to want - 1 do
      let j = i + Uksim.Rng.int rng (n - i) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list (Array.sub arr 0 want)
  end

let at_abs t ns f =
  Uksim.Engine.at t.engine
    (max (Uksim.Clock.cycles_of_ns ns) (Uksim.Clock.cycles t.clock))
    f

let rec round t ~start ~left =
  at_abs t start (fun () ->
      t.st <- { t.st with rounds_run = t.st.rounds_run + 1 };
      let vs =
        victims ~rng:t.rng ~fraction:t.p.kill_fraction ~min_kills:t.p.min_kills
          (t.targets ())
      in
      List.iteri
        (fun i iid ->
          let when_ = start +. (float_of_int i *. t.p.stagger_ns) in
          at_abs t when_ (fun () ->
              if t.kill ~now_ns:when_ iid then t.st <- { t.st with killed = t.st.killed + 1 }
              else t.st <- { t.st with missed = t.st.missed + 1 }))
        vs;
      if left > 1 && t.p.repeat_ns > 0.0 then
        round t ~start:(start +. t.p.repeat_ns) ~left:(left - 1))

let arm ~clock ~engine ~rng ~plan:p ~targets ~kill =
  let t =
    { clock; engine; rng; p; targets; kill; st = { rounds_run = 0; killed = 0; missed = 0 } }
  in
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukfault" ~name:"vm" (fun () ->
         [
           ("rounds", Uktrace.Metric.Count t.st.rounds_run);
           ("killed", Uktrace.Metric.Count t.st.killed);
           ("missed", Uktrace.Metric.Count t.st.missed);
         ]));
  round t ~start:p.at_ns ~left:p.rounds;
  t
