module B = Ukblock.Blockdev

type plan = {
  io_error : float;
  torn_write : float;
  latency_spike : float;
  spike_ns : float;
}

let plan ?(io_error = 0.0) ?(torn_write = 0.0) ?(latency_spike = 0.0) ?(spike_ns = 2.0e6) () =
  { io_error; torn_write; latency_spike; spike_ns }

type stats = {
  forwarded : int;
  io_errors : int;
  torn_writes : int;
  latency_spikes : int;
}

(* Per-request verdict; like Faultnet, a fixed number of Rng draws per
   request keeps the stream aligned across plans. *)
type verdict = Pass | Fail_io | Tear

type t = {
  clock : Uksim.Clock.t;
  rng : Uksim.Rng.t;
  p : plan;
  inner : B.t;
  synthetic : B.completion Queue.t;
  mutable st : stats;
  mutable wrapped : B.t option;
}

let judge t ~is_write =
  let u_err = Uksim.Rng.float t.rng 1.0 in
  let u_torn = Uksim.Rng.float t.rng 1.0 in
  let u_spike = Uksim.Rng.float t.rng 1.0 in
  if u_spike < t.p.latency_spike then begin
    t.st <- { t.st with latency_spikes = t.st.latency_spikes + 1 };
    Uksim.Clock.advance_ns t.clock t.p.spike_ns
  end;
  if u_err < t.p.io_error then begin
    t.st <- { t.st with io_errors = t.st.io_errors + 1 };
    Fail_io
  end
  else if is_write && u_torn < t.p.torn_write then begin
    t.st <- { t.st with torn_writes = t.st.torn_writes + 1; io_errors = t.st.io_errors + 1 };
    Tear
  end
  else begin
    t.st <- { t.st with forwarded = t.st.forwarded + 1 };
    Pass
  end

(* Persist the first half of a torn write's sectors, then fail it. *)
let tear t ~lba data =
  let ss = t.inner.B.sector_size in
  let sectors = Bytes.length data / ss in
  let prefix = sectors / 2 in
  if prefix > 0 then ignore (t.inner.B.write_sync ~lba (Bytes.sub data 0 (prefix * ss)))

let wrap ~clock ~rng ~plan:p inner =
  let t =
    { clock; rng; p; inner; synthetic = Queue.create (); st = { forwarded = 0; io_errors = 0;
      torn_writes = 0; latency_spikes = 0 }; wrapped = None }
  in
  let submit reqs =
    let accepted = ref 0 in
    (try
       Array.iter
         (fun req ->
           let is_write = match req with B.Write _ -> true | B.Read _ -> false in
           match judge t ~is_write with
           | Pass ->
               if t.inner.B.submit [| req |] = 1 then incr accepted
               else raise Exit (* inner queue full: stop accepting *)
           | Fail_io ->
               Queue.push { B.req; result = Error B.Eio } t.synthetic;
               incr accepted
           | Tear ->
               (match req with B.Write { lba; data } -> tear t ~lba data | B.Read _ -> ());
               Queue.push { B.req; result = Error B.Eio } t.synthetic;
               incr accepted)
         reqs
     with Exit -> ());
    !accepted
  in
  let poll_completions ~max =
    let rec take acc n =
      if n >= max then List.rev acc
      else
        match Queue.take_opt t.synthetic with
        | Some c -> take (c :: acc) (n + 1)
        | None -> List.rev acc @ t.inner.B.poll_completions ~max:(max - n)
    in
    take [] 0
  in
  let read_sync ~lba ~sectors =
    match judge t ~is_write:false with
    | Fail_io | Tear -> Error B.Eio
    | Pass -> t.inner.B.read_sync ~lba ~sectors
  in
  let write_sync ~lba data =
    match judge t ~is_write:true with
    | Fail_io -> Error B.Eio
    | Tear ->
        tear t ~lba data;
        Error B.Eio
    | Pass -> t.inner.B.write_sync ~lba data
  in
  let dev =
    { inner with
      B.name = inner.B.name ^ "+fault";
      submit;
      poll_completions;
      pending = (fun () -> Queue.length t.synthetic + inner.B.pending ());
      read_sync;
      write_sync }
  in
  t.wrapped <- Some dev;
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukfault" ~name:"blk"
       ~reset:(fun () ->
         t.st <- { forwarded = 0; io_errors = 0; torn_writes = 0; latency_spikes = 0 })
       (fun () ->
         [
           ("forwarded", Uktrace.Metric.Count t.st.forwarded);
           ("io_errors", Uktrace.Metric.Count t.st.io_errors);
           ("torn_writes", Uktrace.Metric.Count t.st.torn_writes);
           ("latency_spikes", Uktrace.Metric.Count t.st.latency_spikes);
         ]));
  t

let dev t = match t.wrapped with Some d -> d | None -> assert false
let stats t = t.st
