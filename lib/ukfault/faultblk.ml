module B = Ukblock.Blockdev

type plan = {
  io_error : float;
  torn_write : float;
  latency_spike : float;
  spike_ns : float;
}

let plan ?(io_error = 0.0) ?(torn_write = 0.0) ?(latency_spike = 0.0) ?(spike_ns = 2.0e6) () =
  { io_error; torn_write; latency_spike; spike_ns }

type stats = {
  forwarded : int;
  io_errors : int;
  torn_writes : int;
  latency_spikes : int;
  crash_stops : int;
}

(* Per-request verdict; like Faultnet, a fixed number of Rng draws per
   request keeps the stream aligned across plans. *)
type verdict = Pass | Fail_io | Tear

type t = {
  clock : Uksim.Clock.t;
  rng : Uksim.Rng.t;
  p : plan;
  inner : B.t;
  synthetic : B.completion Queue.t;
  mutable st : stats;
  mutable wrapped : B.t option;
  (* Deterministic stop-the-device crash mode: a countdown in *sectors*
     written. When the budget runs out mid-write the prefix persists
     (the torn write) and the device goes dead — every subsequent
     request fails with Eio, like a machine that lost power. Counting
     sectors rather than requests lets a crash matrix enumerate every
     sector boundary of a multi-sector journal record under one seed. *)
  mutable crash_budget : int option;
  mutable dead : bool;
}

let judge t ~is_write =
  let u_err = Uksim.Rng.float t.rng 1.0 in
  let u_torn = Uksim.Rng.float t.rng 1.0 in
  let u_spike = Uksim.Rng.float t.rng 1.0 in
  if u_spike < t.p.latency_spike then begin
    t.st <- { t.st with latency_spikes = t.st.latency_spikes + 1 };
    Uksim.Clock.advance_ns t.clock t.p.spike_ns
  end;
  if u_err < t.p.io_error then begin
    t.st <- { t.st with io_errors = t.st.io_errors + 1 };
    Fail_io
  end
  else if is_write && u_torn < t.p.torn_write then begin
    t.st <- { t.st with torn_writes = t.st.torn_writes + 1; io_errors = t.st.io_errors + 1 };
    Tear
  end
  else begin
    t.st <- { t.st with forwarded = t.st.forwarded + 1 };
    Pass
  end

(* Persist the first half of a torn write's sectors, then fail it. *)
let tear t ~lba data =
  let ss = t.inner.B.sector_size in
  let sectors = Bytes.length data / ss in
  let prefix = sectors / 2 in
  if prefix > 0 then ignore (t.inner.B.write_sync ~lba (Bytes.sub data 0 (prefix * ss)))

(* Charge a write of [sectors] against the crash budget. Returns how many
   of its sectors persist; on partial persistence the device dies. *)
let crash_take t ~sectors =
  match t.crash_budget with
  | None -> sectors
  | Some budget ->
      if budget >= sectors then begin
        t.crash_budget <- Some (budget - sectors);
        sectors
      end
      else begin
        t.crash_budget <- Some 0;
        t.dead <- true;
        t.st <- { t.st with crash_stops = t.st.crash_stops + 1 };
        budget
      end

let wrap ~clock ~rng ~plan:p inner =
  let t =
    { clock; rng; p; inner; synthetic = Queue.create (); st = { forwarded = 0; io_errors = 0;
      torn_writes = 0; latency_spikes = 0; crash_stops = 0 }; wrapped = None;
      crash_budget = None; dead = false }
  in
  (* Crash-mode write: persist whatever prefix the budget allows, fail
     the rest. [Ok] when the whole write fit the budget. *)
  let crash_write ~lba data =
    let ss = t.inner.B.sector_size in
    let sectors = (Bytes.length data + ss - 1) / ss in
    let keep = crash_take t ~sectors in
    if keep >= sectors then t.inner.B.write_sync ~lba data
    else begin
      if keep > 0 then ignore (t.inner.B.write_sync ~lba (Bytes.sub data 0 (keep * ss)));
      Error B.Eio
    end
  in
  let submit reqs =
    let accepted = ref 0 in
    (try
       Array.iter
         (fun req ->
           if t.dead then begin
             Queue.push { B.req; result = Error B.Eio } t.synthetic;
             incr accepted
           end
           else
             let is_write = match req with B.Write _ -> true | B.Read _ -> false in
             match judge t ~is_write with
             | Pass when is_write && t.crash_budget <> None ->
                 (match req with
                 | B.Write { lba; data } -> (
                     match crash_write ~lba data with
                     | Ok () ->
                         Queue.push { B.req; result = Ok Bytes.empty } t.synthetic;
                         incr accepted
                     | Error e ->
                         Queue.push { B.req; result = Error e } t.synthetic;
                         incr accepted)
                 | B.Read _ -> assert false)
             | Pass ->
                 if t.inner.B.submit [| req |] = 1 then incr accepted
                 else raise Exit (* inner queue full: stop accepting *)
             | Fail_io ->
                 Queue.push { B.req; result = Error B.Eio } t.synthetic;
                 incr accepted
             | Tear ->
                 (match req with B.Write { lba; data } -> tear t ~lba data | B.Read _ -> ());
                 Queue.push { B.req; result = Error B.Eio } t.synthetic;
                 incr accepted)
         reqs
     with Exit -> ());
    !accepted
  in
  let poll_completions ~max =
    let rec take acc n =
      if n >= max then List.rev acc
      else
        match Queue.take_opt t.synthetic with
        | Some c -> take (c :: acc) (n + 1)
        | None -> List.rev acc @ t.inner.B.poll_completions ~max:(max - n)
    in
    take [] 0
  in
  let read_sync ~lba ~sectors =
    if t.dead then Error B.Eio
    else
      match judge t ~is_write:false with
      | Fail_io | Tear -> Error B.Eio
      | Pass -> t.inner.B.read_sync ~lba ~sectors
  in
  let write_sync ~lba data =
    if t.dead then Error B.Eio
    else
      match judge t ~is_write:true with
      | Fail_io -> Error B.Eio
      | Tear ->
          tear t ~lba data;
          Error B.Eio
      | Pass ->
          if t.crash_budget = None then t.inner.B.write_sync ~lba data
          else crash_write ~lba data
  in
  let dev =
    { inner with
      B.name = inner.B.name ^ "+fault";
      submit;
      poll_completions;
      pending = (fun () -> Queue.length t.synthetic + inner.B.pending ());
      read_sync;
      write_sync }
  in
  t.wrapped <- Some dev;
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukfault" ~name:"blk"
       ~reset:(fun () ->
         t.st <-
           { forwarded = 0; io_errors = 0; torn_writes = 0; latency_spikes = 0;
             crash_stops = 0 })
       (fun () ->
         [
           ("forwarded", Uktrace.Metric.Count t.st.forwarded);
           ("io_errors", Uktrace.Metric.Count t.st.io_errors);
           ("torn_writes", Uktrace.Metric.Count t.st.torn_writes);
           ("latency_spikes", Uktrace.Metric.Count t.st.latency_spikes);
           ("crash_stops", Uktrace.Metric.Count t.st.crash_stops);
         ]));
  t

let dev t = match t.wrapped with Some d -> d | None -> assert false
let stats t = t.st

(* --- deterministic crash injection ---------------------------------------- *)

let crash_after_writes t n =
  if n < 0 then invalid_arg "Faultblk.crash_after_writes: negative budget";
  (* Budget 0 means "die at the first write, persisting nothing" — reads
     keep working until a write trips the countdown. *)
  t.crash_budget <- Some n;
  t.dead <- false

let crashed t = t.dead

let revive t =
  t.crash_budget <- None;
  t.dead <- false
