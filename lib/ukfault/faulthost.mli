(** Deterministic host- and link-level fault injection: the cluster
    fault plane.

    Where {!Faultvm} kills single instances inside one host, this layer
    breaks whole hosts and the network between them — the chaos drill
    for a multi-host serving tier. Like {!Faultvm} it is deliberately
    ignorant of what a "host" is: the owner provides the five fault
    primitives over integer host ids, and the plane schedules a typed
    timeline of events over them. Partitions (symmetric or asymmetric)
    expand into directed [block src -> dst] link cuts, which is what
    makes {e asymmetric} partitions — requests arrive, responses vanish
    — expressible at all.

    Everything runs on the owner's virtual clock from an explicit
    timeline, so a drill replays byte-identically; randomness (victim
    choice, flap phase) stays with the caller, e.g. via
    {!Faultvm.victims}. *)

type event =
  | Crash of int  (** host dies: loses in-flight work, stops responding *)
  | Recover of int  (** crashed host reboots *)
  | Freeze of int * float  (** [(host, dur_ns)]: stalls, then resumes — no state lost *)
  | Flap of int * int * float * float
      (** [(host, cycles, down_ns, up_ns)]: crash/recover cycles *)
  | Block of int * int  (** cut the directed link [src -> dst] *)
  | Unblock of int * int
  | Partition of int list * int list  (** cut all links between the groups, both ways *)
  | Partition_asym of int list * int list
      (** cut [a -> b] only: b still reaches a — the asymmetric case *)
  | Heal of int list * int list  (** undo a partition (both directions) *)

type ops = {
  crash : now_ns:float -> int -> bool;
  recover : now_ns:float -> int -> bool;
  freeze : now_ns:float -> int -> dur_ns:float -> bool;
  block : now_ns:float -> src:int -> dst:int -> bool;
  unblock : now_ns:float -> src:int -> dst:int -> bool;
}
(** The owner's fault primitives; returning [false] counts as missed
    (target already gone, link already cut). *)

type stats = { applied : int; missed : int }

type t

val arm :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  ops:ops ->
  (float * event) list ->
  t
(** Schedule the timeline (absolute engine nanoseconds). Registers a
    ["ukfault.host"] source with the registry. *)

val stats : t -> stats
