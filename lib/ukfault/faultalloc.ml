module A = Ukalloc.Alloc

type t = {
  inner : A.t;
  mutable rng : Uksim.Rng.t option;
  fail_nth : int;
  fail_every : int;
  fail_rate : float;
  mutable attempts : int;
  mutable injected : int;
  mutable pressure : bool;
  mutable on_pressure : (unit -> unit) option;
  mutable shimmed : A.t option;
}

let should_fail t =
  t.attempts <- t.attempts + 1;
  let nth = t.fail_nth > 0 && t.attempts = t.fail_nth in
  let every = t.fail_every > 0 && t.attempts mod t.fail_every = 0 in
  let rate =
    t.fail_rate > 0.0
    && match t.rng with
       | Some rng -> Uksim.Rng.float rng 1.0 < t.fail_rate
       | None -> false
  in
  if nth || every || rate then begin
    t.injected <- t.injected + 1;
    t.pressure <- true;
    (match t.on_pressure with Some f -> f () | None -> ());
    true
  end
  else false

let gate t k = if should_fail t then None else k ()

let wrap ?rng ?(fail_nth = 0) ?(fail_every = 0) ?(fail_rate = 0.0) inner =
  if fail_rate > 0.0 && rng = None then invalid_arg "Faultalloc.wrap: fail_rate needs an rng";
  let t =
    { inner; rng; fail_nth; fail_every; fail_rate; attempts = 0; injected = 0;
      pressure = false; on_pressure = None; shimmed = None }
  in
  let shimmed =
    { inner with
      A.name = inner.A.name ^ "+oom";
      malloc = (fun size -> gate t (fun () -> inner.A.malloc size));
      calloc = (fun n size -> gate t (fun () -> inner.A.calloc n size));
      memalign = (fun ~align size -> gate t (fun () -> inner.A.memalign ~align size));
      realloc = (fun addr size -> gate t (fun () -> inner.A.realloc addr size)) }
  in
  t.shimmed <- Some shimmed;
  t

let alloc t = match t.shimmed with Some a -> a | None -> assert false

let reseed t seed =
  t.rng <- Some (Uksim.Rng.create seed);
  t.attempts <- 0;
  t.injected <- 0;
  t.pressure <- false
let attempts t = t.attempts
let injected_failures t = t.injected
let under_pressure t = t.pressure
let clear_pressure t = t.pressure <- false
let set_pressure_handler t f = t.on_pressure <- f
