(** Deterministic block-device fault injection over the ukblock API.

    Wraps a {!Ukblock.Blockdev.t} with seeded injection of I/O errors,
    torn writes (a prefix of the sectors reaches the medium, then the
    request fails — the classic power-cut artifact), and latency spikes.
    The wrapped record is a drop-in replacement; both the synchronous
    convenience calls and the submit/poll queue path are intercepted. *)

type plan = {
  io_error : float;  (** per-request probability of [Eio] *)
  torn_write : float;  (** per-write probability the first half of the
                           sectors is persisted and the request then
                           fails with [Eio] *)
  latency_spike : float;  (** per-request probability of stalling the
                              caller for [spike_ns] before the request
                              proceeds *)
  spike_ns : float;
}

val plan :
  ?io_error:float -> ?torn_write:float -> ?latency_spike:float -> ?spike_ns:float -> unit -> plan
(** All rates default to 0.0; [spike_ns] defaults to 2 ms. *)

type stats = {
  forwarded : int;
  io_errors : int;  (** injected [Eio] failures *)
  torn_writes : int;
  latency_spikes : int;
  crash_stops : int;  (** deterministic stop-the-device crashes fired *)
}

type t

val wrap : clock:Uksim.Clock.t -> rng:Uksim.Rng.t -> plan:plan -> Ukblock.Blockdev.t -> t
val dev : t -> Ukblock.Blockdev.t
val stats : t -> stats

val crash_after_writes : t -> int -> unit
(** [crash_after_writes t n] arms the deterministic crash mode: the
    device accepts [n] more *sectors* of writes, then dies. A write that
    straddles the budget persists exactly the in-budget sector prefix (a
    torn write at that sector boundary) and fails; after that every
    request — read or write, sync or queued — fails with [Eio], like a
    machine that lost power. Counting sectors lets a crash matrix
    enumerate every sector boundary of a multi-sector journal record
    under one seed, independent of the probabilistic plan. *)

val crashed : t -> bool
(** The armed budget has been exhausted and the device is dead. *)

val revive : t -> unit
(** Disarm crash mode and bring the device back (the medium keeps
    whatever was persisted — remount recovery's entry point). *)
