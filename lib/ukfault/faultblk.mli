(** Deterministic block-device fault injection over the ukblock API.

    Wraps a {!Ukblock.Blockdev.t} with seeded injection of I/O errors,
    torn writes (a prefix of the sectors reaches the medium, then the
    request fails — the classic power-cut artifact), and latency spikes.
    The wrapped record is a drop-in replacement; both the synchronous
    convenience calls and the submit/poll queue path are intercepted. *)

type plan = {
  io_error : float;  (** per-request probability of [Eio] *)
  torn_write : float;  (** per-write probability the first half of the
                           sectors is persisted and the request then
                           fails with [Eio] *)
  latency_spike : float;  (** per-request probability of stalling the
                              caller for [spike_ns] before the request
                              proceeds *)
  spike_ns : float;
}

val plan :
  ?io_error:float -> ?torn_write:float -> ?latency_spike:float -> ?spike_ns:float -> unit -> plan
(** All rates default to 0.0; [spike_ns] defaults to 2 ms. *)

type stats = {
  forwarded : int;
  io_errors : int;  (** injected [Eio] failures *)
  torn_writes : int;
  latency_spikes : int;
}

type t

val wrap : clock:Uksim.Clock.t -> rng:Uksim.Rng.t -> plan:plan -> Ukblock.Blockdev.t -> t
val dev : t -> Ukblock.Blockdev.t
val stats : t -> stats
