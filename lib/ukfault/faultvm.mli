(** Deterministic instance-level fault injection: the VM killer.

    Where {!Faultnet} damages packets and {!Faultalloc} fails
    allocations, this layer kills whole instances — the chaos drill for
    fleet supervision. It is deliberately ignorant of what an "instance"
    is: the owner hands over a way to enumerate live target ids and a way
    to kill one, so the same injector drives a {e ukfleet} fleet, a
    scheduler's thread set, or anything else with integer-named members.

    All randomness flows through the supplied {!Uksim.Rng.t}: equal
    seeds pick the same victims at the same instants, so a chaos run
    replays byte-identically. *)

type plan = {
  at_ns : float;  (** when the drill starts (absolute engine time) *)
  kill_fraction : float;  (** fraction of live targets to kill, in [0,1] *)
  min_kills : int;  (** kill at least this many (if enough targets) *)
  stagger_ns : float;  (** delay between consecutive kills *)
  repeat_ns : float;  (** re-run the drill every period (0 = one-shot) *)
  rounds : int;  (** number of drill rounds when repeating *)
}

val plan :
  at_ns:float ->
  ?kill_fraction:float ->
  ?min_kills:int ->
  ?stagger_ns:float ->
  ?repeat_ns:float ->
  ?rounds:int ->
  unit ->
  plan
(** Defaults: kill 20% of live targets, at least 1, 10 µs apart,
    one-shot. *)

type stats = {
  rounds_run : int;
  killed : int;  (** kills the owner confirmed *)
  missed : int;  (** victims already gone when the shot landed *)
}

type t

val victims : rng:Uksim.Rng.t -> fraction:float -> min_kills:int -> int list -> int list
(** The seeded victim draw on its own: a uniform sample without
    replacement of [max min_kills (round (fraction * n))] ids, in kill
    order. Exposed for tests and for owners that want to schedule kills
    themselves. *)

val arm :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  rng:Uksim.Rng.t ->
  plan:plan ->
  targets:(unit -> int list) ->
  kill:(now_ns:float -> int -> bool) ->
  t
(** Schedule the drill on [engine]. At each round's start the injector
    snapshots [targets ()], draws victims, and fires [kill] for each at
    its staggered instant; [kill] returning [false] counts as missed.
    Registers a ["ukfault.vm"] source with the registry. *)

val stats : t -> stats
