(** Deterministic network fault injection over the uknetdev API.

    [wrap] interposes on a {!Uknetdev.Netdev.t} without its consumers
    noticing: the wrapped device has the identical record type, so a
    network stack bound to it exercises its loss-recovery machinery
    against injected packet drop, duplication, reordering (via delayed
    redelivery on the event engine), bit corruption, and link flap
    windows.

    All randomness flows through the supplied {!Uksim.Rng.t}: equal seeds
    give byte-for-byte identical fault schedules, so every chaos run
    replays exactly. Per transmitted frame the injector consumes a fixed
    number of draws regardless of which faults fire, keeping the stream
    aligned across plan changes that only alter rates. *)

type plan = {
  drop : float;  (** per-frame drop probability in [0,1] *)
  drop_every : int;  (** additionally drop every Nth frame (0 = off); the
                         counter only advances on frames the random faults
                         let through, giving a systematic loss pattern *)
  duplicate : float;  (** per-frame duplication probability *)
  corrupt : float;  (** per-frame single-bit-flip probability *)
  reorder : float;  (** probability a frame is held back and redelivered
                        after [reorder_delay_ns] (overtaken by later
                        frames) *)
  reorder_delay_ns : float;
  flap_period_ns : float;  (** link flap cycle length (0 = link never
                               flaps) *)
  flap_down_ns : float;  (** trailing window of each period during which
                             the link is down and every frame is lost *)
}

val plan :
  ?drop:float ->
  ?drop_every:int ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?reorder:float ->
  ?reorder_delay_ns:float ->
  ?flap_period_ns:float ->
  ?flap_down_ns:float ->
  unit ->
  plan
(** All faults default to off (rate 0.0 / every 0); [reorder_delay_ns]
    defaults to 50 µs. *)

type stats = {
  forwarded : int;  (** frames passed through unharmed *)
  dropped : int;  (** random + systematic drops *)
  duplicated : int;
  corrupted : int;
  reordered : int;
  flap_dropped : int;  (** frames lost to a link-down window *)
}

type t

val wrap :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  rng:Uksim.Rng.t ->
  plan:plan ->
  Uknetdev.Netdev.t ->
  t
(** Faults are injected on the transmit path (between the stack and the
    inner device); wrap both endpoints of a link to damage both
    directions. Receive-side calls pass straight through. *)

val dev : t -> Uknetdev.Netdev.t
(** The wrapped device to hand to the consumer (e.g.
    {!Uknetstack.Stack.create}). *)

val stats : t -> stats
val link_up : t -> bool
(** Whether the current instant falls outside a flap-down window. *)
