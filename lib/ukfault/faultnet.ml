type plan = {
  drop : float;
  drop_every : int;
  duplicate : float;
  corrupt : float;
  reorder : float;
  reorder_delay_ns : float;
  flap_period_ns : float;
  flap_down_ns : float;
}

let plan ?(drop = 0.0) ?(drop_every = 0) ?(duplicate = 0.0) ?(corrupt = 0.0) ?(reorder = 0.0)
    ?(reorder_delay_ns = 50_000.0) ?(flap_period_ns = 0.0) ?(flap_down_ns = 0.0) () =
  if drop < 0.0 || drop > 1.0 then invalid_arg "Faultnet.plan: drop not in [0,1]";
  if drop_every < 0 then invalid_arg "Faultnet.plan: negative drop_every";
  { drop; drop_every; duplicate; corrupt; reorder; reorder_delay_ns; flap_period_ns;
    flap_down_ns }

type stats = {
  forwarded : int;
  dropped : int;
  duplicated : int;
  corrupted : int;
  reordered : int;
  flap_dropped : int;
}

type t = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  rng : Uksim.Rng.t;
  p : plan;
  inner : Uknetdev.Netdev.t;
  mutable passed : int; (* frames not randomly dropped, drives drop_every *)
  mutable st : stats;
  mutable wrapped : Uknetdev.Netdev.t option;
}

let zero_stats =
  { forwarded = 0; dropped = 0; duplicated = 0; corrupted = 0; reordered = 0; flap_dropped = 0 }

let link_up t =
  t.p.flap_period_ns <= 0.0 || t.p.flap_down_ns <= 0.0
  || Float.rem (Uksim.Clock.ns t.clock) t.p.flap_period_ns
     < t.p.flap_period_ns -. t.p.flap_down_ns

let copy_frame nb = Uknetdev.Netbuf.copy nb

let flip_bit t nb aux =
  let data = Uknetdev.Netbuf.data nb in
  let len = Uknetdev.Netbuf.len nb in
  if len > 0 then begin
    let bit = aux mod (len * 8) in
    let i = Uknetdev.Netbuf.offset nb + (bit / 8) in
    Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor (1 lsl (bit mod 8))));
    t.st <- { t.st with corrupted = t.st.corrupted + 1 }
  end

(* The fate of one frame: [None] = consumed by the injector (dropped or
   held back for delayed redelivery), [Some nb] = forward now. Exactly
   five Rng draws per frame, whatever happens, so the random stream stays
   aligned across plans that differ only in rates. *)
let judge t ~qid nb =
  let u_drop = Uksim.Rng.float t.rng 1.0 in
  let u_dup = Uksim.Rng.float t.rng 1.0 in
  let u_corrupt = Uksim.Rng.float t.rng 1.0 in
  let u_reorder = Uksim.Rng.float t.rng 1.0 in
  let aux = Uksim.Rng.int t.rng max_int in
  if not (link_up t) then begin
    t.st <- { t.st with flap_dropped = t.st.flap_dropped + 1 };
    Uknetdev.Netbuf.recycle nb;
    None
  end
  else if u_drop < t.p.drop then begin
    t.st <- { t.st with dropped = t.st.dropped + 1 };
    Uknetdev.Netbuf.recycle nb;
    None
  end
  else begin
    t.passed <- t.passed + 1;
    if t.p.drop_every > 0 && t.passed mod t.p.drop_every = 0 then begin
      t.st <- { t.st with dropped = t.st.dropped + 1 };
      Uknetdev.Netbuf.recycle nb;
      None
    end
    else begin
      let dup = if u_dup < t.p.duplicate then Some (copy_frame nb) else None in
      let nb =
        if u_corrupt < t.p.corrupt then begin
          (* Copy-on-write: the sender may retain a descriptor onto this
             storage (the zero-copy retransmit source) — corrupt a private
             duplicate, never the shared cell. *)
          let c = copy_frame nb in
          Uknetdev.Netbuf.recycle nb;
          flip_bit t c aux;
          c
        end
        else nb
      in
      (match dup with
      | Some d ->
          t.st <- { t.st with duplicated = t.st.duplicated + 1 };
          ignore (t.inner.Uknetdev.Netdev.tx_burst ~qid [| d |])
      | None -> ());
      if u_reorder < t.p.reorder then begin
        t.st <- { t.st with reordered = t.st.reordered + 1 };
        Uksim.Engine.after_ns t.engine t.p.reorder_delay_ns (fun () ->
            ignore (t.inner.Uknetdev.Netdev.tx_burst ~qid [| nb |]));
        None
      end
      else Some nb
    end
  end

let tx_burst t ~qid pkts =
  let offered = Array.length pkts in
  let survivors =
    Array.to_list pkts |> List.filter_map (fun nb -> judge t ~qid nb) |> Array.of_list
  in
  if Array.length survivors > 0 then begin
    let accepted = t.inner.Uknetdev.Netdev.tx_burst ~qid survivors in
    t.st <-
      { t.st with
        forwarded = t.st.forwarded + accepted;
        dropped = t.st.dropped + (Array.length survivors - accepted) }
  end;
  offered

let wrap ~clock ~engine ~rng ~plan:p inner =
  let t =
    { clock; engine; rng; p; inner; passed = 0; st = zero_stats; wrapped = None }
  in
  let dev =
    { inner with
      Uknetdev.Netdev.name = inner.Uknetdev.Netdev.name ^ "+fault";
      tx_burst = (fun ~qid pkts -> tx_burst t ~qid pkts) }
  in
  t.wrapped <- Some dev;
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukfault" ~name:"net"
       ~reset:(fun () -> t.st <- zero_stats)
       (fun () ->
         [
           ("forwarded", Uktrace.Metric.Count t.st.forwarded);
           ("dropped", Uktrace.Metric.Count t.st.dropped);
           ("duplicated", Uktrace.Metric.Count t.st.duplicated);
           ("corrupted", Uktrace.Metric.Count t.st.corrupted);
           ("reordered", Uktrace.Metric.Count t.st.reordered);
           ("flap_dropped", Uktrace.Metric.Count t.st.flap_dropped);
         ]));
  t

let dev t = match t.wrapped with Some d -> d | None -> assert false
let stats t = t.st
