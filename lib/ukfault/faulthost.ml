type event =
  | Crash of int
  | Recover of int
  | Freeze of int * float
  | Flap of int * int * float * float
  | Block of int * int
  | Unblock of int * int
  | Partition of int list * int list
  | Partition_asym of int list * int list
  | Heal of int list * int list

type ops = {
  crash : now_ns:float -> int -> bool;
  recover : now_ns:float -> int -> bool;
  freeze : now_ns:float -> int -> dur_ns:float -> bool;
  block : now_ns:float -> src:int -> dst:int -> bool;
  unblock : now_ns:float -> src:int -> dst:int -> bool;
}

type stats = { applied : int; missed : int }

type t = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  ops : ops;
  mutable st : stats;
}

let stats t = t.st

let count t ok =
  if ok then t.st <- { t.st with applied = t.st.applied + 1 }
  else t.st <- { t.st with missed = t.st.missed + 1 }

let at_abs t ns f =
  Uksim.Engine.at t.engine
    (max (Uksim.Clock.cycles_of_ns ns) (Uksim.Clock.cycles t.clock))
    f

(* Cross products expand a partition into its directed link cuts, so the
   owner only ever implements one primitive: block src->dst. *)
let pairs a b = List.concat_map (fun x -> List.map (fun y -> (x, y)) b) a

let rec apply t ~now_ns ev =
  match ev with
  | Crash h -> count t (t.ops.crash ~now_ns h)
  | Recover h -> count t (t.ops.recover ~now_ns h)
  | Freeze (h, dur) -> count t (t.ops.freeze ~now_ns h ~dur_ns:dur)
  | Flap (h, cycles, down_ns, up_ns) ->
      if cycles > 0 then begin
        count t (t.ops.crash ~now_ns h);
        at_abs t (now_ns +. down_ns) (fun () ->
            let now_ns = now_ns +. down_ns in
            count t (t.ops.recover ~now_ns h);
            if cycles > 1 then
              at_abs t (now_ns +. up_ns) (fun () ->
                  apply t ~now_ns:(now_ns +. up_ns)
                    (Flap (h, cycles - 1, down_ns, up_ns))))
      end
  | Block (src, dst) -> count t (t.ops.block ~now_ns ~src ~dst)
  | Unblock (src, dst) -> count t (t.ops.unblock ~now_ns ~src ~dst)
  | Partition (a, b) ->
      List.iter (fun (src, dst) -> count t (t.ops.block ~now_ns ~src ~dst))
        (pairs a b @ pairs b a)
  | Partition_asym (a, b) ->
      List.iter (fun (src, dst) -> count t (t.ops.block ~now_ns ~src ~dst)) (pairs a b)
  | Heal (a, b) ->
      List.iter (fun (src, dst) -> count t (t.ops.unblock ~now_ns ~src ~dst))
        (pairs a b @ pairs b a)

let arm ~clock ~engine ~ops timeline =
  let t = { clock; engine; ops; st = { applied = 0; missed = 0 } } in
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukfault" ~name:"host" (fun () ->
         [
           ("applied", Uktrace.Metric.Count t.st.applied);
           ("missed", Uktrace.Metric.Count t.st.missed);
         ]));
  List.iter (fun (at_ns, ev) -> at_abs t at_ns (fun () -> apply t ~now_ns:at_ns ev))
    timeline;
  t
