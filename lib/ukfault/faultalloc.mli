(** Allocation-failure injection over the ukalloc API.

    Wraps an {!Ukalloc.Alloc.t} so chosen allocation attempts return
    [None], proving every caller handles out-of-memory instead of
    assuming success. Three triggers compose (any one firing fails the
    attempt):

    - [fail_nth n]: the [n]th attempt (1-based) fails — sweeping [n]
      across a workload is a systematic OOM coverage sweep;
    - [fail_every n]: every [n]th attempt fails;
    - [fail_rate p] (with the wrap-time [rng]): each attempt fails with
      probability [p].

    An attempt is any [malloc]/[calloc]/[memalign]/[realloc] call.
    [free] always passes through. An optional pressure handler fires on
    every injected failure — the hook degraded-mode logic (load shedding,
    cache eviction) can attach to. *)

type t

val wrap :
  ?rng:Uksim.Rng.t ->
  ?fail_nth:int ->
  ?fail_every:int ->
  ?fail_rate:float ->
  Ukalloc.Alloc.t ->
  t
(** [fail_rate > 0.0] requires [rng]. With no trigger configured the shim
    is a transparent pass-through (useful as an always-on seam). *)

val alloc : t -> Ukalloc.Alloc.t
(** The shimmed allocator to hand to consumers. *)

val reseed : t -> int -> unit
(** Restart the injector for a new trial: fresh RNG from [seed], attempt
    and injection counters zeroed, pressure cleared. ukcheck's schedule
    explorer uses this to cross explored schedules with explored fault
    seeds without rebuilding the fixture. *)

val attempts : t -> int
(** Allocation attempts observed so far. *)

val injected_failures : t -> int

val under_pressure : t -> bool
(** True once at least one failure has been injected; cleared by
    {!clear_pressure}. Degraded-mode consumers poll this. *)

val clear_pressure : t -> unit

val set_pressure_handler : t -> (unit -> unit) option -> unit
(** Called synchronously on each injected failure. *)
