type mode = Compiled_out | Threaded of Uksched.Sched.t

(* Acquire/release instrumentation seam for correctness tooling (ukcheck's
   lockset race detector). One process-wide hook: the observer must not
   block, advance clocks or draw randomness, so installing it cannot
   change a run. Every compiled-in lock carries a process-unique uid. *)
module Hook = struct
  type op = Acquire | Release
  type event = { op : op; uid : int; lock_name : string }

  let hook : (event -> unit) option ref = ref None
  let set f = hook := f
  let next_uid = ref 0

  let fresh_uid () =
    incr next_uid;
    !next_uid

  let emit op uid lock_name =
    match !hook with Some f -> f { op; uid; lock_name } | None -> ()
end

module Mutex = struct
  type inner = {
    sched : Uksched.Sched.t;
    uid : int;
    mname : string;
    mutable holder : Uksched.Sched.tid option;
    waiters : Uksched.Sched.tid Queue.t;
    mutable waits : int;
    mutable wait_cycles : int;
  }

  type t = Nop | Real of inner

  let create ?(name = "mutex") mode =
    match mode with
    | Compiled_out -> Nop
    | Threaded sched ->
        Real
          {
            sched;
            uid = Hook.fresh_uid ();
            mname = name;
            holder = None;
            waiters = Queue.create ();
            waits = 0;
            wait_cycles = 0;
          }

  let rec lock = function
    | Nop -> ()
    | Real m as t -> (
        match m.holder with
        | None ->
            m.holder <- Some (Uksched.Sched.self ());
            Hook.emit Hook.Acquire m.uid m.mname
        | Some _ ->
            let clk = Uksched.Sched.clock m.sched in
            let blocked_at = Uksim.Clock.cycles clk in
            Queue.push (Uksched.Sched.self ()) m.waiters;
            Uksched.Sched.block ();
            m.waits <- m.waits + 1;
            m.wait_cycles <- m.wait_cycles + (Uksim.Clock.cycles clk - blocked_at);
            (* Woken by unlock, which already transferred ownership to us;
               re-check defensively in case of spurious wakeups. *)
            if m.holder = Some (Uksched.Sched.self ()) then
              Hook.emit Hook.Acquire m.uid m.mname
            else lock t)

  let try_lock = function
    | Nop -> true
    | Real m -> (
        match m.holder with
        | None ->
            m.holder <- Some (Uksched.Sched.self ());
            Hook.emit Hook.Acquire m.uid m.mname;
            true
        | Some _ -> false)

  let unlock = function
    | Nop -> ()
    | Real m -> (
        match m.holder with
        | None -> invalid_arg "Lock.Mutex.unlock: not locked"
        | Some _ -> (
            Hook.emit Hook.Release m.uid m.mname;
            match Queue.take_opt m.waiters with
            | Some next ->
                m.holder <- Some next;
                Uksched.Sched.wake m.sched next
            | None -> m.holder <- None))

  let locked = function Nop -> false | Real m -> m.holder <> None

  let contention = function
    | Nop -> (0, 0)
    | Real m -> (m.waits, m.wait_cycles)

  let reset_contention = function
    | Nop -> ()
    | Real m ->
        m.waits <- 0;
        m.wait_cycles <- 0

  let with_lock t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception e ->
        unlock t;
        raise e
end

module Semaphore = struct
  type inner = {
    sched : Uksched.Sched.t;
    mutable n : int;
    waiters : Uksched.Sched.tid Queue.t;
  }

  type t = Nop of int ref | Real of inner

  let create mode n =
    if n < 0 then invalid_arg "Lock.Semaphore.create: negative count";
    match mode with
    | Compiled_out -> Nop (ref n)
    | Threaded sched -> Real { sched; n; waiters = Queue.create () }

  let wait = function
    | Nop r -> r := max 0 (!r - 1)
    | Real s ->
        if s.n > 0 then s.n <- s.n - 1
        else begin
          Queue.push (Uksched.Sched.self ()) s.waiters;
          Uksched.Sched.block ()
          (* the signaller consumed the count on our behalf *)
        end

  let try_wait = function
    | Nop r ->
        if !r > 0 then begin
          decr r;
          true
        end
        else false
    | Real s ->
        if s.n > 0 then begin
          s.n <- s.n - 1;
          true
        end
        else false

  let signal = function
    | Nop r -> incr r
    | Real s -> (
        match Queue.take_opt s.waiters with
        | Some tid -> Uksched.Sched.wake s.sched tid
        | None -> s.n <- s.n + 1)

  let count = function Nop r -> !r | Real s -> s.n
end

(* A cross-core spinlock for the SMP model. Per-core clocks all count
   cycles since boot on one global axis, so the lock can be simulated
   conservatively with a single [free_at] watermark: an acquirer whose
   clock is behind the watermark spins (its clock advances to the
   watermark, the wait is recorded), then holds the lock for [hold]
   cycles. Deterministic given a deterministic acquisition order. *)
module Spin = struct
  type stats = {
    acquisitions : int;
    contended : int;
    wait_cycles : int;
    held_cycles : int;
  }

  type t = {
    sname : string;
    suid : int;
    mutable free_at : int;
    mutable st : stats;
  }

  let reset_stats t =
    t.st <- { acquisitions = 0; contended = 0; wait_cycles = 0; held_cycles = 0 }

  let create ?(name = "spinlock") () =
    let t =
      { sname = name; suid = Hook.fresh_uid (); free_at = 0;
        st = { acquisitions = 0; contended = 0; wait_cycles = 0; held_cycles = 0 } }
    in
    Uktrace.Registry.register
      (Uktrace.Source.make ~subsystem:"uklock" ~name
         ~reset:(fun () -> reset_stats t)
         (fun () ->
           [
             ("acquisitions", Uktrace.Metric.Count t.st.acquisitions);
             ("contended", Uktrace.Metric.Count t.st.contended);
             ("wait_cycles", Uktrace.Metric.Count t.st.wait_cycles);
             ("held_cycles", Uktrace.Metric.Count t.st.held_cycles);
           ]));
    t

  let name t = t.sname

  let acquire t clock ~hold =
    if hold < 0 then invalid_arg "Lock.Spin.acquire: negative hold";
    let now = Uksim.Clock.cycles clock in
    let wait = max 0 (t.free_at - now) in
    if wait > 0 then begin
      Uksim.Clock.advance clock wait;
      t.st <- { t.st with contended = t.st.contended + 1; wait_cycles = t.st.wait_cycles + wait }
    end;
    let entered = Uksim.Clock.cycles clock in
    Hook.emit Hook.Acquire t.suid t.sname;
    Uksim.Clock.advance clock hold;
    t.free_at <- entered + hold;
    t.st <-
      { t.st with acquisitions = t.st.acquisitions + 1; held_cycles = t.st.held_cycles + hold };
    Hook.emit Hook.Release t.suid t.sname

  let stats t = t.st
end

module Condvar = struct
  type inner = { sched : Uksched.Sched.t; waiters : Uksched.Sched.tid Queue.t }
  type t = Nop | Real of inner

  let create = function
    | Compiled_out -> Nop
    | Threaded sched -> Real { sched; waiters = Queue.create () }

  let wait t mutex =
    match t with
    | Nop -> ()
    | Real c ->
        Queue.push (Uksched.Sched.self ()) c.waiters;
        Mutex.unlock mutex;
        Uksched.Sched.block ();
        Mutex.lock mutex

  let signal = function
    | Nop -> ()
    | Real c -> (
        match Queue.take_opt c.waiters with
        | Some tid -> Uksched.Sched.wake c.sched tid
        | None -> ())

  let broadcast = function
    | Nop -> ()
    | Real c ->
        Queue.iter (fun tid -> Uksched.Sched.wake c.sched tid) c.waiters;
        Queue.clear c.waiters
end
