(** The uklock API (paper §3.3): synchronization primitives whose
    implementation is chosen by configuration.

    Two dimensions select the implementation, as in the paper: threading
    on/off (multi-core is future work there and here). With threading off
    the primitives compile out — operations are free and never block, which
    is sound for a single-threaded run-to-completion unikernel. With
    threading on they block on a {!Uksched.Sched.t}. *)

type mode = Compiled_out | Threaded of Uksched.Sched.t

(** Acquire/release instrumentation seam, consumed by ukcheck's lockset
    race detector. One process-wide hook observes every compiled-in
    {!Mutex} and {!Spin} acquire/release (compiled-out primitives stay
    invisible — they compile out). Each lock carries a process-unique
    [uid]; a {!Spin.acquire} emits its acquire/release pair back-to-back
    (the hold is modelled, no user code runs inside). Observers must not
    block, advance clocks or draw randomness: installing one cannot
    change a run. *)
module Hook : sig
  type op = Acquire | Release

  type event = { op : op; uid : int; lock_name : string }

  val set : (event -> unit) option -> unit
end

module Mutex : sig
  type t

  val create : ?name:string -> mode -> t
  (** [name] (default ["mutex"]) labels the lock in {!Hook} events and race reports. *)


  val lock : t -> unit
  (** Blocks (via the scheduler) while held by another thread. *)

  val try_lock : t -> bool
  val unlock : t -> unit
  (** Ownership is handed to the longest-waiting thread, if any. Unlocking a
      free compiled-in mutex raises [Invalid_argument]. *)

  val locked : t -> bool

  val contention : t -> int * int
  (** [(waits, wait_cycles)]: how many lock acquisitions had to block, and
      the total virtual cycles spent blocked. [(0, 0)] when compiled out. *)

  val reset_contention : t -> unit
  (** Zero the contention counters (per-trial reset). *)

  val with_lock : t -> (unit -> 'a) -> 'a
end

module Semaphore : sig
  type t

  val create : mode -> int -> t
  (** Initial count must be >= 0. *)

  val wait : t -> unit
  (** Decrement; blocks at zero (compiled-out mode never blocks). *)

  val try_wait : t -> bool
  val signal : t -> unit
  val count : t -> int
end

(** Cross-core spinlock for the SMP model (consumed by [lib/uksmp] and the
    per-core allocator). Unlike {!Mutex} it involves no scheduler: per-core
    clocks all count cycles since boot on one shared time axis, so the lock
    is simulated with a [free_at] watermark — an acquirer whose clock is
    behind the watermark spins (its clock advances to the watermark and the
    wait is recorded as contention), then holds the lock for a caller-stated
    number of cycles. *)
module Spin : sig
  type t

  type stats = {
    acquisitions : int;
    contended : int;  (** acquisitions that found the lock held *)
    wait_cycles : int;  (** total cycles spent spinning *)
    held_cycles : int;  (** total cycles the lock was held *)
  }

  val create : ?name:string -> unit -> t
  (** Also registers the lock's stats as a [Uktrace.Registry] source
      under ["uklock.<name>"]. *)

  val acquire : t -> Uksim.Clock.t -> hold:int -> unit
  (** Acquire on the core owning [clock], hold for [hold] cycles, release.
      Advances [clock] by the spin wait (if any) plus [hold]. *)

  val stats : t -> stats
  val reset_stats : t -> unit
  val name : t -> string
end

module Condvar : sig
  type t

  val create : mode -> t
  val wait : t -> Mutex.t -> unit
  (** Atomically release the mutex and block; re-acquires before
      returning. *)

  val signal : t -> unit
  val broadcast : t -> unit
end
