type sample = string * Metric.value

type t = {
  subsystem : string;
  name : string;
  snapshot : unit -> sample list;
  reset : unit -> unit;
}

let make ~subsystem ~name ?(reset = fun () -> ()) snapshot =
  { subsystem; name; snapshot; reset }

let id t = t.subsystem ^ "." ^ t.name
