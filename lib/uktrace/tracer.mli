(** Tracepoints on the virtual clock.

    Spans ([begin_span]/[end_span] or the bracketing {!span}) and
    {!instant} events carry a category (owning subsystem), a core id and
    a cycle timestamp. Events land in a bounded ring — overflow drops
    the oldest and is counted — so tracing is always safe to leave
    enabled. Span nesting is folded online into a flamegraph table
    (exact even after ring overflow), and the innermost open span's
    category is what the profiling sampler ({!attribute}) charges
    stepped cycles to.

    Determinism guarantee: the tracer never advances a clock and never
    draws randomness, so enabling or disabling it cannot change a
    simulation's behaviour (verified by the [trace_hash] replay tests —
    see DESIGN.md §7). When disabled, every entry point is a single
    branch. *)

type phase = B | E | I

type event = { ph : phase; ts : int (* cycles *); core : int; cat : string; name : string }

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity in events (default 65536). *)

val default : t
(** The process-wide tracer instrumentation points use. Disabled until
    {!set_enabled}. *)

val set_enabled : t -> bool -> unit
(** Disabling abandons any open spans. *)

val enabled : t -> bool

val reset : t -> unit
(** Drop all events, open spans, flamegraph and sampler state. Keeps the
    enabled flag. *)

(** {1 Recording} *)

val instant : t -> ?core:int -> cat:string -> ts:int -> string -> unit

val begin_span : t -> ?core:int -> cat:string -> ts:int -> string -> unit

val end_span : t -> ?core:int -> ts:int -> unit -> unit
(** Closes the innermost open span on [core]; unmatched ends are
    ignored. *)

val span : t -> Uksim.Clock.t -> ?core:int -> cat:string -> string -> (unit -> 'a) -> 'a
(** Bracket [f] in a span timed on [clock]; exception-safe. When the
    tracer is disabled this is just [f ()]. *)

(** {1 Profiling sampler} *)

val attribute : t -> core:int -> cycles:int -> unit
(** Charge [cycles] (from an engine/SMP step observer) to the innermost
    open span's category on [core], or to ["unattributed"]. *)

val attribution : t -> (string * int) list
(** Category -> cycles, largest first. *)

val core_cycles : t -> (int * int) list

(** {1 Inspection & export} *)

val events : t -> event list
(** Ring contents, oldest first. *)

val dropped : t -> int
val recorded : t -> int
val spans_closed : t -> int

val flame : t -> (string * int) list
(** Folded flamegraph: ["cat:name;cat:name"] root-first path -> self
    cycles (children's cycles excluded), largest first. *)

val flame_folded : t -> string
(** flamegraph.pl-style "path cycles" lines. *)

val to_chrome_json : t -> string
(** Chrome [trace_event] JSON (load in chrome://tracing or Perfetto);
    spans as B/E pairs, instants as "i", tid = core. *)

val source : t -> Source.t
val register_source : ?sticky:bool -> t -> unit
(** Register the tracer's own counters (events, drops, spans, sampler
    attribution) as a registry source; sticky by default. *)
