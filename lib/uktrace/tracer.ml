(* Tracepoints on the virtual clock.

   Spans and instants carry a category (the owning subsystem), a core id
   and a cycle timestamp. Events land in a bounded ring (overflow drops
   the oldest), so tracing is always safe to leave on; span nesting is
   additionally folded online into a flamegraph table (exact even after
   ring overflow) and the innermost-open-span category is what the
   profiling sampler attributes stepped cycles to.

   Nothing here writes the clock or draws from an RNG: enabling tracing
   cannot perturb a simulation, which is what keeps trace_hash replay
   checks identical with tracing on and off. *)

type phase = B | E | I

type event = { ph : phase; ts : int; core : int; cat : string; name : string }

type frame = {
  fcat : string;
  fname : string;
  fstart : int;
  mutable child_cycles : int;
}

type t = {
  capacity : int;
  buf : event option array;
  mutable head : int; (* index of the oldest event *)
  mutable len : int;
  mutable dropped : int;
  mutable recorded : int;
  mutable spans_closed : int;
  mutable enabled : bool;
  stacks : (int, frame list ref) Hashtbl.t; (* core -> open spans, innermost first *)
  flame : (string, int ref) Hashtbl.t; (* "cat:name;..." -> self cycles *)
  span_cycles : Metric.Histogram.t; (* distribution of span durations *)
  attrib : (string, int ref) Hashtbl.t; (* sampler: category -> cycles *)
  cores : (int, int ref) Hashtbl.t; (* sampler: core -> cycles *)
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  {
    capacity;
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    dropped = 0;
    recorded = 0;
    spans_closed = 0;
    enabled = false;
    stacks = Hashtbl.create 16;
    flame = Hashtbl.create 64;
    span_cycles = Metric.Histogram.create ();
    attrib = Hashtbl.create 16;
    cores = Hashtbl.create 16;
  }

let enabled t = t.enabled

let reset t =
  Array.fill t.buf 0 t.capacity None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.recorded <- 0;
  t.spans_closed <- 0;
  Hashtbl.reset t.stacks;
  Hashtbl.reset t.flame;
  Metric.Histogram.reset t.span_cycles;
  Hashtbl.reset t.attrib;
  Hashtbl.reset t.cores

let set_enabled t on =
  if t.enabled && not on then Hashtbl.reset t.stacks (* abandon open spans *);
  t.enabled <- on

let push t e =
  t.recorded <- t.recorded + 1;
  if t.len < t.capacity then begin
    t.buf.((t.head + t.len) mod t.capacity) <- Some e;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.head) <- Some e;
    t.head <- (t.head + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end

let events t =
  List.init t.len (fun i ->
      match t.buf.((t.head + i) mod t.capacity) with Some e -> e | None -> assert false)

let dropped t = t.dropped
let recorded t = t.recorded
let spans_closed t = t.spans_closed

let stack_of t core =
  match Hashtbl.find_opt t.stacks core with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.replace t.stacks core s;
      s

let instant t ?(core = 0) ~cat ~ts name =
  if t.enabled then push t { ph = I; ts; core; cat; name }

let begin_span t ?(core = 0) ~cat ~ts name =
  if t.enabled then begin
    let s = stack_of t core in
    s := { fcat = cat; fname = name; fstart = ts; child_cycles = 0 } :: !s;
    push t { ph = B; ts; core; cat; name }
  end

let bump tbl key cycles =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + cycles
  | None -> Hashtbl.replace tbl key (ref cycles)

let path_of frames =
  (* frames is innermost-first; the folded path reads root-first. *)
  String.concat ";"
    (List.rev_map (fun f -> f.fcat ^ ":" ^ f.fname) frames)

let end_span t ?(core = 0) ~ts () =
  if t.enabled then begin
    let s = stack_of t core in
    match !s with
    | [] -> () (* unmatched end: ignore *)
    | f :: rest ->
        s := rest;
        let dur = max 0 (ts - f.fstart) in
        let self = max 0 (dur - f.child_cycles) in
        (match rest with p :: _ -> p.child_cycles <- p.child_cycles + dur | [] -> ());
        bump t.flame (path_of (f :: rest)) self;
        Metric.Histogram.observe t.span_cycles dur;
        t.spans_closed <- t.spans_closed + 1;
        push t { ph = E; ts; core; cat = f.fcat; name = f.fname }
  end

let span t clock ?(core = 0) ~cat name f =
  if not t.enabled then f ()
  else begin
    begin_span t ~core ~cat ~ts:(Uksim.Clock.cycles clock) name;
    match f () with
    | v ->
        end_span t ~core ~ts:(Uksim.Clock.cycles clock) ();
        v
    | exception e ->
        end_span t ~core ~ts:(Uksim.Clock.cycles clock) ();
        raise e
  end

(* --- profiling sampler --------------------------------------------------- *)

(* Called from the Uksim.Engine / Uksmp.Smp step observers with the
   cycles one step consumed: charge them to the innermost open span's
   category on that core (or "unattributed") and to the core itself. *)
let attribute t ~core ~cycles =
  if t.enabled && cycles > 0 then begin
    let cat =
      match Hashtbl.find_opt t.stacks core with
      | Some { contents = f :: _ } -> f.fcat
      | Some { contents = [] } | None -> "unattributed"
    in
    bump t.attrib cat cycles;
    bump t.cores core cycles
  end

let table_to_list tbl =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let attribution t = table_to_list t.attrib

let core_cycles t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.cores [] |> List.sort compare

(* --- flamegraph ---------------------------------------------------------- *)

let flame t = table_to_list t.flame

let flame_folded t =
  String.concat "\n" (List.map (fun (p, c) -> Printf.sprintf "%s %d" p c) (flame t))

(* --- Chrome trace_event export ------------------------------------------- *)

let us_of_cycles c = Uksim.Clock.ns_of_cycles c /. 1000.0

let chrome_event e =
  let common =
    Printf.sprintf "\"name\": \"%s\", \"cat\": \"%s\", \"ts\": %.3f, \"pid\": 0, \"tid\": %d"
      e.name e.cat (us_of_cycles e.ts) e.core
  in
  match e.ph with
  | B -> Printf.sprintf "{\"ph\": \"B\", %s}" common
  | E -> Printf.sprintf "{\"ph\": \"E\", %s}" common
  | I -> Printf.sprintf "{\"ph\": \"i\", \"s\": \"t\", %s}" common

let to_chrome_json t =
  let evs = List.map chrome_event (events t) in
  Printf.sprintf
    "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n%s\n]}\n"
    (String.concat ",\n" evs)

(* --- integration --------------------------------------------------------- *)

let default = create ()

let source t =
  Source.make ~subsystem:"uktrace" ~name:"tracer" ~reset:(fun () -> reset t) (fun () ->
      [
        ("events", Metric.Count t.recorded);
        ("ring_dropped", Metric.Count t.dropped);
        ("spans", Metric.Count t.spans_closed);
        ("span_cycles", Metric.Histogram.value t.span_cycles);
      ]
      @ List.map (fun (cat, c) -> ("cycles." ^ cat, Metric.Count c)) (attribution t)
      @ List.map
          (fun (core, c) -> (Printf.sprintf "core%d.cycles" core, Metric.Count c))
          (core_cycles t))

let register_source ?(sticky = true) t = Registry.register ~sticky (source t)
