(** The common stats interface every subsystem registers behind.

    A source is a named, resettable window onto one component's counters:
    the component keeps whatever internal representation it likes and
    exposes a [snapshot] closure producing metric samples, plus a [reset]
    closure zeroing the resettable part. {!Registry} collects sources and
    serves uniform snapshot/diff/to_json/reset over all of them. *)

type sample = string * Metric.value

type t = {
  subsystem : string;  (** owning library, e.g. ["uklock"] *)
  name : string;  (** instance name within the subsystem *)
  snapshot : unit -> sample list;
  reset : unit -> unit;
}

val make :
  subsystem:string -> name:string -> ?reset:(unit -> unit) -> (unit -> sample list) -> t
(** [reset] defaults to a no-op (for sources whose readings are pure
    gauges). *)

val id : t -> string
(** ["subsystem.name"]. *)
