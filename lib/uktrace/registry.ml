(* The global metrics registry.

   Subsystems register a Source.t per instance at creation time (a stack,
   a spinlock, an allocator...); harnesses take uniform snapshots, diff
   them across measurement windows, reset everything between trials, and
   export JSON. A single global registry matches how the stats are used:
   one simulated machine per process at a time, with [clear] as the
   trial boundary.

   Sticky sources (the tracer, registry-owned metric groups) survive
   [clear]; instance sources do not — their objects are recreated each
   trial anyway, and dropping the old closures lets the dead instances be
   collected. *)

type entry = { src : Source.t; uid : string; sticky : bool; gen : int }

let max_sources = 4096

type state = {
  mutable entries : entry list; (* newest first *)
  mutable dropped : int;
  mutable gen : int; (* bumped by [clear]: uids never diff across trials *)
  seen : (string, int) Hashtbl.t; (* base id -> #instances, for unique uids *)
}

let st = { entries = []; dropped = 0; gen = 0; seen = Hashtbl.create 64 }

let unique_id base =
  match Hashtbl.find_opt st.seen base with
  | None ->
      Hashtbl.replace st.seen base 1;
      base
  | Some n ->
      Hashtbl.replace st.seen base (n + 1);
      Printf.sprintf "%s#%d" base (n + 1)

let register ?(sticky = false) src =
  if List.length st.entries >= max_sources then st.dropped <- st.dropped + 1
  else
    st.entries <-
      { src; uid = unique_id (Source.id src); sticky; gen = st.gen } :: st.entries

let dropped_registrations () = st.dropped

let clear () =
  st.entries <- List.filter (fun e -> e.sticky) st.entries;
  st.gen <- st.gen + 1;
  Hashtbl.reset st.seen;
  (* Re-seed uid dedup with the survivors. *)
  List.iter (fun e -> Hashtbl.replace st.seen e.uid 1) st.entries

let reset () = List.iter (fun e -> e.src.Source.reset ()) st.entries

let sources () = List.rev_map (fun e -> e.src) st.entries

(* --- registry-owned metrics -------------------------------------------- *)

(* [counter ~subsystem name] style creation: metrics grouped into one
   sticky source per subsystem, so ad-hoc instrumentation points need no
   Source plumbing of their own. *)

type owned = {
  mutable metrics : (string * [ `C of Metric.Counter.t | `G of Metric.Gauge.t | `H of Metric.Histogram.t ]) list;
}

let owned : (string, owned) Hashtbl.t = Hashtbl.create 8

let owned_group subsystem =
  match Hashtbl.find_opt owned subsystem with
  | Some g -> g
  | None ->
      let g = { metrics = [] } in
      Hashtbl.replace owned subsystem g;
      register ~sticky:true
        (Source.make ~subsystem ~name:"metrics"
           ~reset:(fun () ->
             List.iter
               (fun (_, m) ->
                 match m with
                 | `C c -> Metric.Counter.reset c
                 | `G x -> Metric.Gauge.reset x
                 | `H h -> Metric.Histogram.reset h)
               g.metrics)
           (fun () ->
             List.rev_map
               (fun (n, m) ->
                 ( n,
                   match m with
                   | `C c -> Metric.Counter.value c
                   | `G x -> Metric.Gauge.value x
                   | `H h -> Metric.Histogram.value h ))
               g.metrics));
      g

let counter ~subsystem name =
  let g = owned_group subsystem in
  let c = Metric.Counter.create () in
  g.metrics <- (name, `C c) :: g.metrics;
  c

let gauge ~subsystem name =
  let g = owned_group subsystem in
  let x = Metric.Gauge.create () in
  g.metrics <- (name, `G x) :: g.metrics;
  x

let histogram ~subsystem name =
  let g = owned_group subsystem in
  let h = Metric.Histogram.create () in
  g.metrics <- (name, `H h) :: g.metrics;
  h

(* --- snapshots ---------------------------------------------------------- *)

type entry_snap = { suid : string; sgen : int; samples : Source.sample list }
type snapshot = entry_snap list

let snapshot () =
  List.rev_map
    (fun e -> { suid = e.uid; sgen = e.gen; samples = e.src.Source.snapshot () })
    st.entries

let diff ~before ~after =
  List.map
    (fun e ->
      (* Subtract only when the uid denotes the SAME registration — a
         [clear] in between means the uid was reused by a new instance
         whose counters started from zero. *)
      match List.find_opt (fun b -> b.suid = e.suid && b.sgen = e.sgen) before with
      | None -> e
      | Some old ->
          { e with
            samples =
              List.map
                (fun (n, v) ->
                  match List.assoc_opt n old.samples with
                  | None -> (n, v)
                  | Some b -> (n, Metric.diff_value ~before:b ~after:v))
                e.samples })
    after

let is_empty_sample = function
  | Metric.Count 0 -> true
  | Metric.Level v -> v = 0.0
  | Metric.Buckets b -> Array.for_all (fun n -> n = 0) b
  | Metric.Count _ -> false

let prune snap =
  List.filter_map
    (fun e ->
      match List.filter (fun (_, v) -> not (is_empty_sample v)) e.samples with
      | [] -> None
      | kept -> Some { e with samples = kept })
    snap

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(indent = 0) snap =
  let pad = String.make indent ' ' in
  let source_json e =
    Printf.sprintf "%s  \"%s\": {%s}" pad (escape e.suid)
      (String.concat ", "
         (List.map
            (fun (n, v) -> Printf.sprintf "\"%s\": %s" (escape n) (Metric.value_to_json v))
            e.samples))
  in
  if snap = [] then "{}"
  else Printf.sprintf "{\n%s\n%s}" (String.concat ",\n" (List.map source_json snap)) pad

let find snap uid =
  Option.map (fun e -> e.samples) (List.find_opt (fun e -> e.suid = uid) snap)

let find_sample snap uid name =
  Option.bind (find snap uid) (fun samples -> List.assoc_opt name samples)
