(* Metric primitives: named counters, gauges and log2-bucketed cycle
   histograms. Hot-path updates are O(1) field writes; everything heavier
   (snapshots, summaries) happens off the measured path. *)

type value =
  | Count of int
  | Level of float
  | Buckets of int array

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t d = t.n <- t.n + d
  let get t = t.n
  let reset t = t.n <- 0
  let value t = Count t.n
end

module Gauge = struct
  type t = { mutable v : float }

  let create () = { v = 0.0 }
  let set t v = t.v <- v
  let add t d = t.v <- t.v +. d
  let get t = t.v
  let reset t = t.v <- 0.0
  let value t = Level t.v
end

module Histogram = struct
  (* Bucket 0 holds non-positive observations; value v >= 1 lands in
     bucket 1 + floor(log2 v). On a 64-bit host max_int = 2^62 - 1, so
     floor(log2 max_int) = 61 and the highest reachable bucket is 62. *)
  let n_buckets = 63

  type t = {
    counts : int array;
    mutable total : int;
    mutable sum : int;
    mutable vmax : int;
  }

  let create () = { counts = Array.make n_buckets 0; total = 0; sum = 0; vmax = min_int }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 1 and v = ref v in
      while !v > 1 do
        v := !v lsr 1;
        incr b
      done;
      min (n_buckets - 1) !b
    end

  let observe t v =
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum + v;
    if v > t.vmax then t.vmax <- v

  let count t = t.total
  let sum t = t.sum
  let max t = if t.total = 0 then 0 else t.vmax
  let bucket_count t i = t.counts.(i)

  let bucket_bounds i =
    if i < 0 || i >= n_buckets then invalid_arg "Histogram.bucket_bounds";
    if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

  let reset t =
    Array.fill t.counts 0 n_buckets 0;
    t.total <- 0;
    t.sum <- 0;
    t.vmax <- min_int

  let value t = Buckets (Array.copy t.counts)
end

let value_to_json = function
  | Count n -> string_of_int n
  | Level v ->
      if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%g" v
  | Buckets b ->
      (* Trim trailing empty buckets for compactness. *)
      let last = ref (-1) in
      Array.iteri (fun i n -> if n > 0 then last := i) b;
      let total = Array.fold_left ( + ) 0 b in
      let cells = List.init (!last + 1) (fun i -> string_of_int b.(i)) in
      Printf.sprintf "{\"total\": %d, \"log2_buckets\": [%s]}" total (String.concat ", " cells)

let diff_value ~before ~after =
  match (before, after) with
  | Count b, Count a -> Count (a - b)
  | Buckets b, Buckets a ->
      Buckets (Array.init (Array.length a) (fun i -> a.(i) - (if i < Array.length b then b.(i) else 0)))
  | _, v -> v (* gauges (and kind changes) keep the newer reading *)
