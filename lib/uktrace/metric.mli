(** Metric primitives for the uktrace registry.

    Counters are monotonic event counts (diffable across snapshots),
    gauges are instantaneous levels (a diff keeps the newer reading), and
    histograms count observations into log2-sized cycle buckets. All
    updates are O(1) mutations of pre-allocated state, safe on hot
    paths. *)

type value =
  | Count of int  (** monotonic counter reading *)
  | Level of float  (** instantaneous gauge reading *)
  | Buckets of int array  (** log2-histogram bucket counts *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
  val value : t -> value
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val get : t -> float
  val reset : t -> unit
  val value : t -> value
end

(** Log2-bucketed histogram, sized for cycle measurements. Bucket 0
    collects non-positive observations; a value [v >= 1] lands in bucket
    [1 + floor(log2 v)], clamped to the last bucket. *)
module Histogram : sig
  type t

  val n_buckets : int

  val create : unit -> t
  val observe : t -> int -> unit
  val bucket_of : int -> int
  val bucket_count : t -> int -> int

  val bucket_bounds : int -> int * int
  (** [(lo, hi)] inclusive value range of a bucket. *)

  val count : t -> int
  val sum : t -> int
  val max : t -> int
  (** Largest observation; [0] when empty. *)

  val reset : t -> unit
  val value : t -> value
end

val value_to_json : value -> string

val diff_value : before:value -> after:value -> value
(** Counters and histogram buckets subtract; gauges keep [after]. *)
