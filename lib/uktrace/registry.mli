(** The global metrics registry: one place every subsystem's stats live.

    Components register a {!Source.t} per instance at creation time;
    harnesses snapshot the whole registry, diff snapshots across
    measurement windows, reset all sources between trials, and export the
    result as JSON. [clear] is the trial boundary: it drops all
    non-sticky (instance) sources so recreated components start from a
    clean slate. *)

val register : ?sticky:bool -> Source.t -> unit
(** Add a source. Duplicate ["subsystem.name"] ids get a ["#n"] suffix.
    [sticky] (default false) sources survive {!clear}. Registrations
    beyond an internal cap are counted and dropped, not an error. *)

val clear : unit -> unit
(** Remove all non-sticky sources (per-trial setup). *)

val reset : unit -> unit
(** Call every registered source's [reset]. *)

val sources : unit -> Source.t list
(** Registration order. *)

val dropped_registrations : unit -> int

(** {1 Registry-owned metrics}

    For instrumentation points that don't have a natural object to hang a
    source on: metrics created here are grouped into one sticky
    ["<subsystem>.metrics"] source per subsystem. *)

val counter : subsystem:string -> string -> Metric.Counter.t
val gauge : subsystem:string -> string -> Metric.Gauge.t
val histogram : subsystem:string -> string -> Metric.Histogram.t

(** {1 Snapshots} *)

type entry_snap = {
  suid : string;  (** source uid *)
  sgen : int;  (** registration generation (bumped by {!clear}) *)
  samples : Source.sample list;
}

type snapshot = entry_snap list
(** Registration order. *)

val snapshot : unit -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-sample {!Metric.diff_value}; sources present only in [after] — or
    re-registered under a reused uid after a {!clear} — are kept as-is,
    sources gone from [after] are dropped. *)

val prune : snapshot -> snapshot
(** Drop all-zero samples and then empty sources — keeps exported JSON
    readable. *)

val to_json : ?indent:int -> snapshot -> string

val find : snapshot -> string -> Source.sample list option
val find_sample : snapshot -> string -> string -> Metric.value option
