(** The fleet's L4 front door: backend selection policies.

    The front door owns {e which} backend instance a request lands on;
    the fleet owns the event plumbing around it (queues, completions,
    admission, shedding). Keeping the policy state pure and deterministic
    — no clocks, no RNG — is what lets a seeded fleet run replay
    byte-identically under any policy.

    Three classic L4 policies:
    - {e round robin}: rotate over ready members;
    - {e least loaded}: the member with the smallest backlog estimate
      (ties to the lowest id);
    - {e consistent hash}: members are placed on a hash ring with
      [vnodes] virtual nodes each; a request's flow hashes to its ring
      successor, so member churn only remaps the failed arc — the policy
      that keeps per-flow affinity across scale-out. *)

type policy = Round_robin | Least_loaded | Consistent_hash

val policy_name : policy -> string

type t

val create : ?vnodes:int -> policy -> t
(** [vnodes] (default 32) only matters for [Consistent_hash]. *)

val policy : t -> policy

val add : t -> int -> unit
(** Add a member id (a backend that became ready). Idempotent. *)

val remove : t -> int -> unit
(** Remove a member (crashed, retired). Idempotent; also clears any
    quarantine on it. *)

val quarantine : t -> int -> unit
(** Exclude a member from {!pick} {e without} removing it: its ring
    points stay in place, so flows divert to live successors while it is
    out and return to the exact same member on {!unquarantine}. This is
    the failure detector's suspect state — a false positive costs no
    arc remapping, unlike {!remove}. No-op on non-members. *)

val unquarantine : t -> int -> unit
(** Readmit a quarantined member. Idempotent. *)

val quarantined : t -> int -> bool

val members : t -> int list
(** Ascending ids, including quarantined members. *)

val active : t -> int list
(** {!members} minus quarantined — the pickable set. *)

val pick : t -> flow:int -> load:(int -> float) -> int option
(** Choose a member for a request of [flow]: [None] iff no members.
    [load] is the backlog estimate the least-loaded policy minimizes. *)
