(** A real-TCP front door for an externally driven fleet.

    Where {!Fleet.run} replays workloads analytically, an ingress puts an
    actual {!Uknetstack} listener in front of a fleet on an [`Engine]
    substrate: clients connect over TCP, send one request line per
    request, and get one response line back when the fleet answers (or
    sheds). This is the wiring that demonstrates the fleet is a drop-in
    L4 tier over the real stack — the request path crosses genuine
    Ethernet/IP/TCP processing on both sides of the loopback before it
    reaches the dispatcher.

    Protocol, line-oriented like RESP's inline commands:
    - request: ["REQ <flow>\n"] — [<flow>] keys consistent-hash routing;
      anything unparsable hashes the whole line;
    - response: ["OK <latency_us>\n"] on completion, ["SHED\n"] when
      admission control rejects.

    The acceptor and per-connection readers are daemon threads on the
    caller's scheduler; the caller drives the shared engine/scheduler as
    usual ({!Uksched.Sched.run}). *)

type t

val serve :
  sched:Uksched.Sched.t ->
  stack:Uknetstack.Stack.t ->
  port:int ->
  fleet:Fleet.t ->
  unit ->
  t
(** Listen on [port] and submit every request line to [fleet] (which must
    be started and share the stack's engine). *)

val requests : t -> int
(** Request lines accepted so far. *)

val responses : t -> int
(** Response lines written back (completions + sheds). *)

val stop : t -> unit
(** Stop accepting; existing connections drain on EOF. *)
