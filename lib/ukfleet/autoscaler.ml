type params = {
  interval_ns : float;
  target_queue : float;
  scale_in_hold : int;
  cooldown_out_ns : float;
  cooldown_in_ns : float;
  min_instances : int;
  max_instances : int;
}

let default =
  {
    interval_ns = Uksim.Units.msec 2.0;
    target_queue = 4.0;
    scale_in_hold = 5;
    cooldown_out_ns = Uksim.Units.msec 2.0;
    cooldown_in_ns = Uksim.Units.msec 50.0;
    min_instances = 1;
    max_instances = 64;
  }

type action = Hold | Scale_out of int | Scale_in of int

type t = {
  p : params;
  mutable last_out_ns : float;
  mutable last_in_ns : float;
  mutable low_ticks : int;
}

let create p =
  if p.min_instances < 1 || p.max_instances < p.min_instances then
    invalid_arg "Autoscaler.create: need 1 <= min_instances <= max_instances";
  { p; last_out_ns = neg_infinity; last_in_ns = neg_infinity; low_ticks = 0 }

let params t = t.p

let decide t ~now_ns ~ready ~warming ~outstanding ~p99_ns ~slo_ns =
  let p = t.p in
  let live = ready + warming in
  let by_demand =
    int_of_float (Float.ceil (float_of_int outstanding /. p.target_queue))
  in
  (* A breached SLO means the queue estimate is already behind reality:
     kick capacity by half again on top of whatever demand says. *)
  let by_slo = if p99_ns > slo_ns && ready > 0 then live + max 1 (live / 2) else 0 in
  let desired = max p.min_instances (min p.max_instances (max by_demand by_slo)) in
  if desired > live then begin
    t.low_ticks <- 0;
    if now_ns -. t.last_out_ns >= p.cooldown_out_ns then begin
      t.last_out_ns <- now_ns;
      Scale_out (desired - live)
    end
    else Hold
  end
  else if desired < ready && warming = 0 then begin
    t.low_ticks <- t.low_ticks + 1;
    if t.low_ticks >= p.scale_in_hold && now_ns -. t.last_in_ns >= p.cooldown_in_ns then begin
      t.low_ticks <- 0;
      t.last_in_ns <- now_ns;
      Scale_in 1
    end
    else Hold
  end
  else begin
    t.low_ticks <- 0;
    Hold
  end
