(** Fleet images and their one-time calibration.

    An image names an application plus its memory footprint. Calibration
    runs a {e real} boot of the image's constructor table through
    {!Ukplat.Vmm.boot} (VMM startup, guest early init, NIC attach, then
    ukalloc / uknetstack / application constructors charging the virtual
    clock) and a {e real} closed-loop load over a loopback
    {!Uknetstack.Stack} pair to measure the per-request service time.
    Every fleet-model cost therefore descends from the same calibrated
    substrate the single-instance experiments measure — the fleet pays
    full boot once, here, and replays it at scale.

    Calibration is deterministic and cached per (image, VMM). *)

type app =
  | Httpd
  | Resp
  | Infer of int  (** model size, MiB *)
  | Store  (** crash-consistent merkle KV ({!Ukapps.Store}) *)

type t = {
  name : string;
  app : app;
  mem_mb : int;  (** guest memory footprint — sets the snapshot-clone copy cost *)
}

val httpd : t
(** The nginx-like static server, 612 B page, 8 MB guest (Fig 11 scale). *)

val resp : t
(** The redis-like store, 10 MB guest. *)

val store : unit -> t
(** The crash-consistent content-addressed KV server ({!Ukapps.Store}),
    12 MB guest. The image's disk is formatted, populated and
    checkpointed host-side (the registry build); a cold boot pays the
    mount — root-slot scan plus journal replay — instead of a weight
    stream, so boot time grows with the journal depth the image (or a
    crash) left behind. *)

val infer : ?size_mb:int -> unit -> t
(** The batched model server ({!Ukapps.Infer}); [size_mb] (default 32)
    is the weight file streamed from a {!Ukvfs.Blockfs} store at boot.
    Guest footprint is [8 + size_mb] MB — a cold boot streams weights
    through the windowed block path, while a snapshot clone must copy
    the full loaded footprint, which is what makes the clone-vs-cold
    crossover model-size dependent. *)

type calib = {
  breakdown : Ukplat.Vmm.boot_breakdown;  (** VMM + guest split of one cold boot *)
  boot_report : Ukboot.Boot.report;  (** per-constructor phases of that boot *)
  service_ns : float;  (** measured per-request occupancy on the real stack *)
}

val calibrate : t -> vmm:Ukplat.Vmm.t -> calib

val uncache : t -> unit
(** Drop every cached calibration of this image (any VMM) — lets a
    model-size sweep release each size's calibration rig state before
    building the next. *)

val profile_app : t -> string
(** The {!Ukos.Profiles} application key ("nginx" / "redis") used to
    derive baseline-OS request costs for this image. *)
