type app = Httpd | Resp | Infer of int | Store

type t = { name : string; app : app; mem_mb : int }

let httpd = { name = "httpd"; app = Httpd; mem_mb = 8 }
let resp = { name = "resp"; app = Resp; mem_mb = 10 }

(* Model weights live in guest memory after the boot-time load, so the
   footprint (what a snapshot clone must copy) is base + model. *)
let infer ?(size_mb = 32) () =
  { name = Printf.sprintf "infer-%dmb" size_mb; app = Infer size_mb; mem_mb = 8 + size_mb }

(* The merkle store's working set is the object cache plus journal
   staging; the data itself lives on the virtio disk, so the guest
   footprint stays small and a cold boot pays journal replay instead of
   a weight stream. *)
let store () = { name = "store"; app = Store; mem_mb = 12 }

let profile_app t =
  match t.app with
  | Httpd -> "nginx"
  | Resp | Store -> "redis"
  | Infer _ -> "inference"

type calib = {
  breakdown : Ukplat.Vmm.boot_breakdown;
  boot_report : Ukboot.Boot.report;
  service_ns : float;
}

module A = Uknetstack.Addr
module S = Uknetstack.Stack

(* The calibration rig: a server and a client machine over a loopback
   link, one shared timeline. The image's constructors build the server
   side; the client side exists only to drive the measuring load. *)
type rig = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  sched : Uksched.Sched.t;
  server_dev : Uknetdev.Netdev.t;
  client_dev : Uknetdev.Netdev.t;
  mutable server_stack : S.t option;
  mutable infer_prep : (Ukvfs.Blockfs.t * string) option;
      (* host-side published weight store, set before boot *)
  mutable store_prep : Ukblock.Blockdev.t option;
      (* host-formatted+populated merkle store disk, mounted at boot *)
}

let mk_rig () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let server_dev, client_dev = Uknetdev.Loopback.create_pair ~clock ~engine () in
  {
    clock;
    engine;
    sched;
    server_dev;
    client_dev;
    server_stack = None;
    infer_prep = None;
    store_prep = None;
  }

(* The weight disk is populated by the host (image build / registry pull)
   before the VMM ever starts, so this runs pre-boot: the clock it
   advances is host time, not part of the measured breakdown. *)
let store_keys = 256

let prep img rig =
  match img.app with
  | Httpd | Resp -> ()
  | Store ->
      (* Format + populate + commit happen host-side (registry image
         build); the boot-time cost the calibration should see is the
         mount: slot scan plus journal replay of whatever the image
         shipped undurable — here nothing, because the build ends on a
         checkpoint. *)
      let dev =
        Ukblock.Virtio_blk.create ~clock:rig.clock ~engine:rig.engine
          ~capacity_sectors:32768 ()
      in
      let st =
        match Ukstore.Store.format ~clock:rig.clock ~journal_sectors:512 dev with
        | Ok s -> s
        | Error e -> invalid_arg ("Image: store format: " ^ Ukvfs.Fs.errno_to_string e)
      in
      for i = 0 to store_keys - 1 do
        match Ukstore.Store.set st (Printf.sprintf "k%05d" i) (String.make 32 'v') with
        | Ok () -> ()
        | Error e -> invalid_arg ("Image: store set: " ^ Ukvfs.Fs.errno_to_string e)
      done;
      (match Ukstore.Store.commit st ~msg:"image build" () with
      | Ok _ -> ()
      | Error e -> invalid_arg ("Image: store commit: " ^ Ukvfs.Fs.errno_to_string e));
      (match Ukstore.Store.checkpoint st with
      | Ok () -> ()
      | Error e ->
          invalid_arg ("Image: store checkpoint: " ^ Ukvfs.Fs.errno_to_string e));
      rig.store_prep <- Some dev
  | Infer size_mb ->
      let dev =
        Ukblock.Virtio_blk.create ~clock:rig.clock ~engine:rig.engine
          ~capacity_sectors:((size_mb + 2) * 2048) ()
      in
      rig.infer_prep <- Some (Ukapps.Infer.publish ~clock:rig.clock ~dev ~size_mb ())

let stack_conf ip mac =
  {
    S.mac = A.Mac.of_int mac;
    ip = A.Ipv4.of_string ip;
    netmask = A.Ipv4.of_string "255.255.255.0";
    gateway = None;
  }

let inittab_of_rig img rig =
  let tab = Ukboot.Boot.Inittab.create () in
  let alloc = ref None in
  Ukboot.Boot.Inittab.register tab ~level:Ukboot.Boot.Level.alloc ~name:"ukalloc/tlsf"
    (fun () ->
      let bytes = Uksim.Units.mib img.mem_mb in
      alloc := Some (Ukalloc.Tlsf.create ~clock:rig.clock ~base:bytes ~len:bytes));
  Ukboot.Boot.Inittab.register tab ~level:Ukboot.Boot.Level.bus ~name:"uknetstack"
    (fun () ->
      let s =
        S.create ~clock:rig.clock ~engine:rig.engine ~sched:rig.sched ~dev:rig.server_dev
          (stack_conf "10.99.0.1" 0xF1EE7)
      in
      S.start s;
      rig.server_stack <- Some s);
  Ukboot.Boot.Inittab.register tab ~level:Ukboot.Boot.Level.late
    ~name:
      (match img.app with
      | Httpd -> "app/httpd"
      | Resp -> "app/resp"
      | Store -> "app/store"
      | Infer _ -> "app/infer")
    (fun () ->
      let stack = Option.get rig.server_stack in
      let alloc = Option.get !alloc in
      match img.app with
      | Httpd ->
          ignore
            (Ukapps.Httpd.create ~clock:rig.clock ~sched:rig.sched ~stack ~alloc
               (Ukapps.Httpd.In_memory [ ("/index.html", Ukapps.Httpd.default_page) ]))
      | Resp ->
          ignore
            (Ukapps.Resp_store.create ~clock:rig.clock ~sched:rig.sched ~stack ~alloc ())
      | Store ->
          (* Mount runs inside the constructor: recovery (slot scan +
             journal replay) is charged to boot, exactly like a crashed
             instance restarting in the fleet would pay it. *)
          let dev = Option.get rig.store_prep in
          let store =
            match Ukstore.Store.open_ ~clock:rig.clock dev with
            | Ok s -> s
            | Error e ->
                invalid_arg ("Image: store mount: " ^ Ukvfs.Fs.errno_to_string e)
          in
          ignore (Ukapps.Store.create ~clock:rig.clock ~sched:rig.sched ~stack ~store ())
      | Infer _ ->
          (* The weight load runs inside the constructor, so a cold boot's
             breakdown charges the full stream — the dominant term for
             large models. *)
          let store, name = Option.get rig.infer_prep in
          let vfs = Ukvfs.Vfs.create ~clock:rig.clock in
          (match Ukvfs.Vfs.mount vfs ~at:"/models" (Ukvfs.Blockfs.to_fs store) with
          | Ok () -> ()
          | Error e -> invalid_arg ("Image: mount: " ^ Ukvfs.Fs.errno_to_string e));
          let model =
            match
              Ukapps.Infer.load ~clock:rig.clock ~vfs ~store
                ~path:("/models/" ^ name) ()
            with
            | Ok m -> m
            | Error e -> invalid_arg ("Image: weight load: " ^ e)
          in
          ignore
            (Ukapps.Infer.create ~clock:rig.clock ~engine:rig.engine ~sched:rig.sched
               ~stack ~alloc ~model ()));
  tab

(* Closed-loop measurement: one connection, sequential requests, so the
   elapsed-per-request quotient is the full per-request occupancy of one
   instance (stack traversal both ways + application work). *)
let calib_requests = 256

let measure_service img rig =
  let client =
    S.create ~clock:rig.clock ~engine:rig.engine ~sched:rig.sched ~dev:rig.client_dev
      (stack_conf "10.99.0.2" 0xC11E7)
  in
  S.start client;
  let server =
    ( A.Ipv4.of_string "10.99.0.1",
      match img.app with Httpd -> 80 | Resp -> 6379 | Store -> 7000 | Infer _ -> 8000 )
  in
  match img.app with
  | Httpd ->
      let r =
        Ukapps.Wrk.run ~clock:rig.clock ~sched:rig.sched ~stack:client ~server ~connections:1
          ~requests:calib_requests ()
      in
      r.Ukapps.Wrk.elapsed_ns /. float_of_int r.Ukapps.Wrk.requests
  | Resp ->
      let r =
        Ukapps.Resp_bench.run ~clock:rig.clock ~sched:rig.sched ~stack:client ~server
          ~connections:1 ~pipeline:1 ~requests:calib_requests Ukapps.Resp_bench.Set
      in
      r.Ukapps.Resp_bench.elapsed_ns /. float_of_int r.Ukapps.Resp_bench.requests
  | Store ->
      (* The calibration mix is the benchmark default (half mutations,
         periodic COMMIT) so service_ns amortizes journal fsyncs the way
         steady-state traffic does. *)
      let r =
        Ukapps.Store.run_load ~clock:rig.clock ~sched:rig.sched ~stack:client ~server
          ~connections:1 ~pipeline:1 ~requests:calib_requests ~commit_every:32 ()
      in
      r.Ukapps.Store.elapsed_ns /. float_of_int r.Ukapps.Store.requests
  | Infer _ ->
      let r =
        Ukapps.Infer.run_load ~clock:rig.clock ~sched:rig.sched ~stack:client ~server
          ~connections:1 ~pipeline:1 ~requests:calib_requests ()
      in
      r.Ukapps.Infer.elapsed_ns /. float_of_int r.Ukapps.Infer.requests

let cache : (string * string, calib) Hashtbl.t = Hashtbl.create 8

let calibrate img ~vmm =
  let key = (img.name, Ukplat.Vmm.name vmm) in
  match Hashtbl.find_opt cache key with
  | Some c -> c
  | None ->
      let rig = mk_rig () in
      prep img rig;
      let tab = inittab_of_rig img rig in
      let breakdown, boot_report =
        Ukplat.Vmm.boot vmm ~clock:rig.clock ~nics:1 ~inittab:tab ()
      in
      let service_ns = measure_service img rig in
      let c = { breakdown; boot_report; service_ns } in
      Hashtbl.replace cache key c;
      c

let uncache img =
  Hashtbl.iter
    (fun ((name, _) as key) _ -> if name = img.name then Hashtbl.remove cache key)
    (Hashtbl.copy cache)
