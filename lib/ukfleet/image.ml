type app = Httpd | Resp | Infer of int

type t = { name : string; app : app; mem_mb : int }

let httpd = { name = "httpd"; app = Httpd; mem_mb = 8 }
let resp = { name = "resp"; app = Resp; mem_mb = 10 }

(* Model weights live in guest memory after the boot-time load, so the
   footprint (what a snapshot clone must copy) is base + model. *)
let infer ?(size_mb = 32) () =
  { name = Printf.sprintf "infer-%dmb" size_mb; app = Infer size_mb; mem_mb = 8 + size_mb }

let profile_app t =
  match t.app with Httpd -> "nginx" | Resp -> "redis" | Infer _ -> "inference"

type calib = {
  breakdown : Ukplat.Vmm.boot_breakdown;
  boot_report : Ukboot.Boot.report;
  service_ns : float;
}

module A = Uknetstack.Addr
module S = Uknetstack.Stack

(* The calibration rig: a server and a client machine over a loopback
   link, one shared timeline. The image's constructors build the server
   side; the client side exists only to drive the measuring load. *)
type rig = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  sched : Uksched.Sched.t;
  server_dev : Uknetdev.Netdev.t;
  client_dev : Uknetdev.Netdev.t;
  mutable server_stack : S.t option;
  mutable infer_prep : (Ukvfs.Blockfs.t * string) option;
      (* host-side published weight store, set before boot *)
}

let mk_rig () =
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let sched = Uksched.Sched.create_cooperative ~clock ~engine in
  let server_dev, client_dev = Uknetdev.Loopback.create_pair ~clock ~engine () in
  { clock; engine; sched; server_dev; client_dev; server_stack = None; infer_prep = None }

(* The weight disk is populated by the host (image build / registry pull)
   before the VMM ever starts, so this runs pre-boot: the clock it
   advances is host time, not part of the measured breakdown. *)
let prep img rig =
  match img.app with
  | Httpd | Resp -> ()
  | Infer size_mb ->
      let dev =
        Ukblock.Virtio_blk.create ~clock:rig.clock ~engine:rig.engine
          ~capacity_sectors:((size_mb + 2) * 2048) ()
      in
      rig.infer_prep <- Some (Ukapps.Infer.publish ~clock:rig.clock ~dev ~size_mb ())

let stack_conf ip mac =
  {
    S.mac = A.Mac.of_int mac;
    ip = A.Ipv4.of_string ip;
    netmask = A.Ipv4.of_string "255.255.255.0";
    gateway = None;
  }

let inittab_of_rig img rig =
  let tab = Ukboot.Boot.Inittab.create () in
  let alloc = ref None in
  Ukboot.Boot.Inittab.register tab ~level:Ukboot.Boot.Level.alloc ~name:"ukalloc/tlsf"
    (fun () ->
      let bytes = Uksim.Units.mib img.mem_mb in
      alloc := Some (Ukalloc.Tlsf.create ~clock:rig.clock ~base:bytes ~len:bytes));
  Ukboot.Boot.Inittab.register tab ~level:Ukboot.Boot.Level.bus ~name:"uknetstack"
    (fun () ->
      let s =
        S.create ~clock:rig.clock ~engine:rig.engine ~sched:rig.sched ~dev:rig.server_dev
          (stack_conf "10.99.0.1" 0xF1EE7)
      in
      S.start s;
      rig.server_stack <- Some s);
  Ukboot.Boot.Inittab.register tab ~level:Ukboot.Boot.Level.late
    ~name:
      (match img.app with
      | Httpd -> "app/httpd"
      | Resp -> "app/resp"
      | Infer _ -> "app/infer")
    (fun () ->
      let stack = Option.get rig.server_stack in
      let alloc = Option.get !alloc in
      match img.app with
      | Httpd ->
          ignore
            (Ukapps.Httpd.create ~clock:rig.clock ~sched:rig.sched ~stack ~alloc
               (Ukapps.Httpd.In_memory [ ("/index.html", Ukapps.Httpd.default_page) ]))
      | Resp ->
          ignore
            (Ukapps.Resp_store.create ~clock:rig.clock ~sched:rig.sched ~stack ~alloc ())
      | Infer _ ->
          (* The weight load runs inside the constructor, so a cold boot's
             breakdown charges the full stream — the dominant term for
             large models. *)
          let store, name = Option.get rig.infer_prep in
          let vfs = Ukvfs.Vfs.create ~clock:rig.clock in
          (match Ukvfs.Vfs.mount vfs ~at:"/models" (Ukvfs.Blockfs.to_fs store) with
          | Ok () -> ()
          | Error e -> invalid_arg ("Image: mount: " ^ Ukvfs.Fs.errno_to_string e));
          let model =
            match
              Ukapps.Infer.load ~clock:rig.clock ~vfs ~store
                ~path:("/models/" ^ name) ()
            with
            | Ok m -> m
            | Error e -> invalid_arg ("Image: weight load: " ^ e)
          in
          ignore
            (Ukapps.Infer.create ~clock:rig.clock ~engine:rig.engine ~sched:rig.sched
               ~stack ~alloc ~model ()));
  tab

(* Closed-loop measurement: one connection, sequential requests, so the
   elapsed-per-request quotient is the full per-request occupancy of one
   instance (stack traversal both ways + application work). *)
let calib_requests = 256

let measure_service img rig =
  let client =
    S.create ~clock:rig.clock ~engine:rig.engine ~sched:rig.sched ~dev:rig.client_dev
      (stack_conf "10.99.0.2" 0xC11E7)
  in
  S.start client;
  let server =
    ( A.Ipv4.of_string "10.99.0.1",
      match img.app with Httpd -> 80 | Resp -> 6379 | Infer _ -> 8000 )
  in
  match img.app with
  | Httpd ->
      let r =
        Ukapps.Wrk.run ~clock:rig.clock ~sched:rig.sched ~stack:client ~server ~connections:1
          ~requests:calib_requests ()
      in
      r.Ukapps.Wrk.elapsed_ns /. float_of_int r.Ukapps.Wrk.requests
  | Resp ->
      let r =
        Ukapps.Resp_bench.run ~clock:rig.clock ~sched:rig.sched ~stack:client ~server
          ~connections:1 ~pipeline:1 ~requests:calib_requests Ukapps.Resp_bench.Set
      in
      r.Ukapps.Resp_bench.elapsed_ns /. float_of_int r.Ukapps.Resp_bench.requests
  | Infer _ ->
      let r =
        Ukapps.Infer.run_load ~clock:rig.clock ~sched:rig.sched ~stack:client ~server
          ~connections:1 ~pipeline:1 ~requests:calib_requests ()
      in
      r.Ukapps.Infer.elapsed_ns /. float_of_int r.Ukapps.Infer.requests

let cache : (string * string, calib) Hashtbl.t = Hashtbl.create 8

let calibrate img ~vmm =
  let key = (img.name, Ukplat.Vmm.name vmm) in
  match Hashtbl.find_opt cache key with
  | Some c -> c
  | None ->
      let rig = mk_rig () in
      prep img rig;
      let tab = inittab_of_rig img rig in
      let breakdown, boot_report =
        Ukplat.Vmm.boot vmm ~clock:rig.clock ~nics:1 ~inittab:tab ()
      in
      let service_ns = measure_service img rig in
      let c = { breakdown; boot_report; service_ns } in
      Hashtbl.replace cache key c;
      c

let uncache img =
  Hashtbl.iter
    (fun ((name, _) as key) _ -> if name = img.name then Hashtbl.remove cache key)
    (Hashtbl.copy cache)
