(** Deterministic open-arrival workload shapes for fleet experiments.

    A workload is a request-rate function over a bounded horizon; the
    fleet replays it as an inhomogeneous Poisson process drawn from its
    own seeded RNG, so a fixed seed gives a byte-identical arrival
    stream. Time 0 is the start of the measured window (the fleet adds
    its own settle offset for initial boots). *)

type t = {
  name : string;
  duration_ns : float;
  rate_rps : float -> float;
      (** requests per second offered at offset [t] in [0, duration_ns] *)
}

val steady : rps:float -> duration_ns:float -> t

val ramp : from_rps:float -> to_rps:float -> duration_ns:float -> t
(** Linear ramp across the whole horizon. *)

val diurnal : base_rps:float -> amplitude:float -> period_ns:float -> duration_ns:float -> t
(** [base * (1 + amplitude * sin(2pi t / period))], clamped at 0 — the
    compressed day/night cycle. *)

val spike :
  base_rps:float -> factor:float -> at_ns:float -> spike_ns:float -> duration_ns:float -> t
(** Steady [base_rps], multiplied by [factor] inside
    [[at_ns, at_ns + spike_ns)] — the flash-crowd shape the paper's
    millisecond boots are motivated by. *)
