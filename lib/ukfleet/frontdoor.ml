type policy = Round_robin | Least_loaded | Consistent_hash

let policy_name = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Consistent_hash -> "consistent-hash"

type t = {
  pol : policy;
  vnodes : int;
  mutable members : int list; (* ascending *)
  mutable cursor : int; (* round-robin position, indexes members *)
  mutable ring : (int * int) array; (* (point, member), sorted by point *)
  quarantined : (int, unit) Hashtbl.t; (* excluded from pick, ring spot kept *)
}

(* splitmix64-style avalanche over the positive int range: the ring
   placement and flow hashes — stable across runs by construction. *)
let mix v =
  let x = v land max_int in
  let x = (x lxor (x lsr 30)) * 0x5851f42d4c957f2d land max_int in
  let x = (x lxor (x lsr 27)) * 0x14057b7ef767814f land max_int in
  x lxor (x lsr 31)

let create ?(vnodes = 32) pol =
  if vnodes <= 0 then invalid_arg "Frontdoor.create: vnodes must be positive";
  { pol; vnodes; members = []; cursor = 0; ring = [||]; quarantined = Hashtbl.create 8 }

let policy t = t.pol
let members t = t.members
let quarantined t m = Hashtbl.mem t.quarantined m
let active t = List.filter (fun m -> not (quarantined t m)) t.members
let quarantine t m = if List.mem m t.members then Hashtbl.replace t.quarantined m ()
let unquarantine t m = Hashtbl.remove t.quarantined m

let rebuild_ring t =
  let pts =
    List.concat_map
      (fun m -> List.init t.vnodes (fun v -> (mix ((m * 8191) + v), m)))
      t.members
  in
  let a = Array.of_list pts in
  Array.sort compare a;
  t.ring <- a

let add t m =
  if not (List.mem m t.members) then begin
    t.members <- List.sort compare (m :: t.members);
    if t.pol = Consistent_hash then rebuild_ring t
  end

let remove t m =
  if List.mem m t.members then begin
    t.members <- List.filter (fun x -> x <> m) t.members;
    Hashtbl.remove t.quarantined m;
    if t.cursor >= List.length t.members then t.cursor <- 0;
    if t.pol = Consistent_hash then rebuild_ring t
  end

let pick_rr t =
  match active t with
  | [] -> None
  | ms ->
      let n = List.length ms in
      let i = t.cursor mod n in
      t.cursor <- i + 1;
      Some (List.nth ms i)

let pick_least t ~load =
  match active t with
  | [] -> None
  | m :: ms ->
      Some
        (fst
           (List.fold_left
              (fun (bm, bl) m ->
                let l = load m in
                if l < bl then (m, l) else (bm, bl))
              (m, load m) ms))

let pick_hash t ~flow =
  let n = Array.length t.ring in
  if n = 0 || Hashtbl.length t.quarantined >= List.length t.members then None
  else begin
    let h = mix flow in
    (* successor of h on the ring (wrapping) *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
    done;
    (* Quarantined members keep their ring points but are skipped: the
       flow lands on the next live successor, and comes back to the
       exact same member on unquarantine — no arc remapping. *)
    let rec scan i left =
      if left = 0 then None
      else
        let m = snd t.ring.(i mod n) in
        if quarantined t m then scan (i + 1) (left - 1)
        else Some m
    in
    scan !lo n
  end

let pick t ~flow ~load =
  match t.pol with
  | Round_robin -> pick_rr t
  | Least_loaded -> pick_least t ~load
  | Consistent_hash -> pick_hash t ~flow
