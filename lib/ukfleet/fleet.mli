(** Elastic unikernel fleet orchestration: boot-for-scale as a control
    plane.

    The paper's headline property — millisecond guest boots at megabyte
    footprints — matters because it makes {e reactive} scaling viable:
    spin instances up when traffic arrives instead of over-provisioning.
    This module turns that property into an end-to-end serving model. A
    fleet is a set of instance slots behind an L4 {!Frontdoor}; every
    instance's boot and per-request costs are calibrated from the real
    substrate ({!Image.calibrate} boots the image's constructor table
    through {!Ukplat.Vmm.boot} and measures service time over a real
    {!Uknetstack} loopback), and the fleet replays open-arrival
    {!Workload}s against those costs as a discrete-event simulation:
    instance capacity is modeled per instance, so a fleet of [n] serves
    [n] instances' worth of traffic in parallel virtual time.

    Three scale-out paths compete:
    - {e cold boot}: VMM create + full guest boot, per instance;
    - {e warm pool}: spares boot cold ahead of demand; activation is a
      config push. Taking a spare triggers a background refill;
    - {e snapshot clone}: the first instance pays full boot once, then a
      snapshot restore plus a memory copy of the footprint clones it —
      the fast path the paper's tiny images enable.

    Crashed instances are respawned {!Uksched.Supervisor}-style (same
    policy record: exponential backoff, restart budget), with their
    queued requests re-dispatched through the front door so no response
    is lost. An {!Autoscaler} drives scale-out/in from the
    [ukfleet.metrics] {!Uktrace.Registry} gauges the fleet publishes
    every control tick. Admission control sheds requests when the
    best-case queueing delay exceeds the configured bound.

    Everything is deterministic: a fixed seed produces a byte-identical
    {!trace_hash}, with or without observers attached. *)

type boot_mode =
  | Cold
  | Warm_pool of int  (** target number of pre-booted spares *)
  | Snapshot  (** first boot is cold and becomes the clone template *)

type backend =
  | Unikraft of Ukplat.Vmm.t
  | Baseline of Ukos.Profiles.t
      (** a baseline OS fleet: boot time from the profile, per-request
          cost scaled by its §5.3 request-cost factor *)

type substrate =
  [ `Own  (** a private clock + engine (the default) *)
  | `Engine of Uksim.Clock.t * Uksim.Engine.t
    (** share a caller's timeline — e.g. to put a real
        {!Uknetstack} TCP ingress ({!Ingress}) in front of the fleet *)
  | `Smp of Uksmp.Smp.t
    (** spread instance completions over an SMP domain's per-core
        engines; ukcheck attaches to the domain as usual *) ]

type costs = {
  cold_boot_ns : float;
  clone_ns : float;  (** snapshot restore + footprint memory copy *)
  warm_activation_ns : float;
  service_ns : float;  (** per-request occupancy of one instance *)
}

type report = {
  offered : int;
  completed : int;
  shed : int;  (** rejected by admission control (an explicit response) *)
  lost : int;  (** neither completed nor shed — must be 0 *)
  redispatched : int;  (** re-queued from crashed instances *)
  mean_us : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
  slo_violation_ns : float;
      (** total width of measurement buckets containing an over-SLO
          completion or a shed *)
  cold_boots : int;
  clones : int;
  warm_hits : int;
  crashes : int;
  restarts : int;
  retired : int;  (** scaled-in *)
  peak_instances : int;
  final_ready : int;
  elapsed_ns : float;  (** measured window: first arrival to last response *)
  trace_hash : int;
}

type t

val create :
  ?seed:int ->
  ?substrate:substrate ->
  ?backend:backend ->
  ?boot_mode:boot_mode ->
  ?policy:Frontdoor.policy ->
  ?autoscale:Autoscaler.params ->
  ?restart:Uksched.Supervisor.policy ->
  ?slo_ns:float ->
  ?shed_after_ns:float ->
  ?slo_bucket_ns:float ->
  ?lb_queue_cap:int ->
  ?initial:int ->
  ?cost_factor:float ->
  image:Image.t ->
  unit ->
  t
(** Defaults: seed 1, [`Own] substrate, [Unikraft Firecracker] backend,
    [Cold] boots, [Least_loaded] policy, no autoscaler (fixed size),
    {!Uksched.Supervisor.default_policy} restarts, 1 ms SLO, shedding
    past 4 ms best-case wait, 5 ms SLO buckets, a 4096-deep front-door
    queue, 1 initial instance. [cost_factor] (default 1.0) stretches
    every calibrated cost — boot, clone, activation, per-request service
    — by a host-class multiplier (e.g. an ARM-class edge host at 2x the
    x86 reference; see the edge-computing heterogeneity motivation). *)

val image : t -> Image.t
val costs : t -> costs
val policy : t -> Frontdoor.policy
val control_engine : t -> Uksim.Engine.t
val control_clock : t -> Uksim.Clock.t
val now_ns : t -> float

val settle_ns : t -> float
(** The offset {!run} adds before the first arrival (covers the slowest
    initial bring-up path) — workload time 0 in engine time is
    [now_ns at start + settle_ns]. Lets experiments aim external events
    (e.g. a {!Ukfault}-driven kill) at workload-relative instants. *)

val ready_count : t -> int
val warming_count : t -> int
val pool_spares : t -> int
val ready_ids : t -> int list

val run : t -> Workload.t -> report
(** Bring up the initial fleet, replay the workload (arrivals start
    after a settle window covering initial boots), drive the substrate
    until every request is answered, and report. One-shot per fleet. *)

val start : t -> unit
(** Bring up the initial fleet without a workload — for externally
    driven fleets ([`Engine] substrate): requests then arrive via
    {!submit} (e.g. from an {!Ingress}) and the caller drives the shared
    engine/scheduler. *)

val submit :
  ?flow:int -> ?on_reply:(ok:bool -> latency_ns:float -> unit) -> t -> now_ns:float -> unit
(** Offer one request. [on_reply] fires exactly once, at completion
    ([ok = true]) or shed ([ok = false]). [flow] keys consistent-hash
    placement (default: drawn from the fleet's RNG). *)

val kill : t -> now_ns:float -> iid:int -> bool
(** Crash a ready instance (fault injection): pending requests are
    re-dispatched, the slot respawns supervisor-style. [false] if [iid]
    is not currently ready. *)

(** {2 Drain / freeze hooks}

    Handles a cluster tier needs on a whole host's fleet: draining
    around a migration pause, freezing for a host-stall fault. Both are
    meant for externally driven fleets ({!start}/{!submit}). *)

val set_draining : t -> bool -> unit
(** While draining, {!submit} answers every request with an immediate
    shed (an explicit response, never a drop); in-flight requests keep
    completing. *)

val draining : t -> bool

val freeze : t -> now_ns:float -> unit
(** Host stall: completions due while frozen are held (not lost) and
    land at the thaw instant, with the stall counted in their latency.
    Idempotent. *)

val thaw : t -> now_ns:float -> unit
(** End a freeze: held completions fire now, and every instance's
    backlog horizon shifts by the stall — capacity lost to the freeze is
    really lost. No-op when not frozen. *)

val frozen : t -> bool

val report : t -> report
(** Accumulated stats so far — for externally driven fleets; {!run}
    returns the same thing. *)

val trace_hash : t -> int
(** Rolling hash over every fleet event (arrival, dispatch, completion,
    shed, boot, crash, scale decision) with its timestamp. Equal seeds
    and configs must give equal hashes; in [`Smp] mode the domain's own
    {!Uksmp.Smp.trace_hash} is folded in by {!report}. *)
