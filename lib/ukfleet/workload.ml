type t = {
  name : string;
  duration_ns : float;
  rate_rps : float -> float;
}

let steady ~rps ~duration_ns = { name = "steady"; duration_ns; rate_rps = (fun _ -> rps) }

let ramp ~from_rps ~to_rps ~duration_ns =
  {
    name = "ramp";
    duration_ns;
    rate_rps =
      (fun t ->
        let frac = if duration_ns <= 0.0 then 1.0 else t /. duration_ns in
        from_rps +. ((to_rps -. from_rps) *. Float.max 0.0 (Float.min 1.0 frac)));
  }

let diurnal ~base_rps ~amplitude ~period_ns ~duration_ns =
  {
    name = "diurnal";
    duration_ns;
    rate_rps =
      (fun t ->
        let phase = 2.0 *. Float.pi *. t /. period_ns in
        Float.max 0.0 (base_rps *. (1.0 +. (amplitude *. sin phase))));
  }

let spike ~base_rps ~factor ~at_ns ~spike_ns ~duration_ns =
  {
    name = "spike";
    duration_ns;
    rate_rps =
      (fun t -> if t >= at_ns && t < at_ns +. spike_ns then base_rps *. factor else base_rps);
  }
