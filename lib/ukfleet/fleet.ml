(* Fleet orchestration as a deterministic discrete-event control plane.

   All scheduling decisions run on analytic timestamps (floats carried
   through event closures); the engine clocks only order event delivery.
   That keeps instance capacity parallel — n instances serve n requests'
   worth of virtual time concurrently — while every cost (boot, clone,
   activation, per-request service) descends from the calibrated
   substrate via Image.calibrate. Randomness (arrival draws, flow ids)
   comes from one seeded RNG, so a fixed seed replays byte-identically:
   trace_hash folds every event. *)

type boot_mode = Cold | Warm_pool of int | Snapshot
type backend = Unikraft of Ukplat.Vmm.t | Baseline of Ukos.Profiles.t

type substrate =
  [ `Own | `Engine of Uksim.Clock.t * Uksim.Engine.t | `Smp of Uksmp.Smp.t ]

type costs = {
  cold_boot_ns : float;
  clone_ns : float;
  warm_activation_ns : float;
  service_ns : float;
}

type report = {
  offered : int;
  completed : int;
  shed : int;
  lost : int;
  redispatched : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
  slo_violation_ns : float;
  cold_boots : int;
  clones : int;
  warm_hits : int;
  crashes : int;
  restarts : int;
  retired : int;
  peak_instances : int;
  final_ready : int;
  elapsed_ns : float;
  trace_hash : int;
}

type istate = Booting | Ready | Dead

type req = {
  rid : int;
  flow : int;
  arrival_ns : float;
  mutable done_ : bool;
  on_reply : (ok:bool -> latency_ns:float -> unit) option;
}

type instance = {
  iid : int;
  mutable state : istate;
  mutable busy_until_ns : float;
  pending : req Queue.t;
  mutable inflight : int;
  mutable epoch : int;  (* bumped on crash: orphaned completion events no-op *)
  mutable served : int;
  mutable crashes_in_row : int;
  mutable restarts_used : int;
  mutable fresh : bool;  (* respawned; first completion closes the backoff run *)
  mutable retired : bool;
}

type sub = Sub_one of Uksim.Clock.t * Uksim.Engine.t | Sub_smp of Uksmp.Smp.t

type t = {
  rng : Uksim.Rng.t;
  img : Image.t;
  backend : backend;
  boot_mode : boot_mode;
  fd : Frontdoor.t;
  auto : Autoscaler.t option;
  restart : Uksched.Supervisor.policy;
  slo_ns : float;
  shed_after_ns : float;
  bucket_ns : float;
  lb_cap : int;
  initial : int;
  costs : costs;
  sub : sub;
  external_sub : bool;  (* [`Engine]: caller drives; run is invalid *)
  instances : (int, instance) Hashtbl.t;
  mutable next_iid : int;
  mutable next_rid : int;
  lb_q : req Queue.t;
  mutable outstanding : int;  (* dispatched-not-answered + lb_q *)
  mutable ready_n : int;
  mutable warming_n : int;
  mutable pool : int;
  mutable pool_warming : int;
  mutable template_eta : float option;
  lat : Uksim.Stats.t;  (* completion latencies, ns, whole run *)
  win : Uksim.Stats.t;  (* same, current control window *)
  viol : (int, unit) Hashtbl.t;  (* violated SLO buckets *)
  mutable t_measure : float;
  mutable last_event : float;
  mutable c_offered : int;
  mutable c_completed : int;
  mutable c_shed : int;
  mutable c_redispatched : int;
  mutable c_cold_boots : int;
  mutable c_clones : int;
  mutable c_warm_hits : int;
  mutable c_crashes : int;
  mutable c_restarts : int;
  mutable c_retired : int;
  mutable peak : int;
  mutable started : bool;
  mutable ran : bool;
  mutable replay_active : bool;
  mutable tick_armed : bool;
  mutable draining : bool;  (* submit sheds immediately; in-flight completes *)
  mutable frozen_at : float option;  (* host-freeze fault: completions held *)
  frozen_q : (instance * req * int) Queue.t;  (* held (inst, req, epoch) *)
  mutable trace : int;
}

(* --- gauges every fleet publishes (the autoscaler's inputs) ------------- *)

let g_up = lazy (Uktrace.Registry.gauge ~subsystem:"ukfleet" "instances_up")
let g_warming = lazy (Uktrace.Registry.gauge ~subsystem:"ukfleet" "instances_warming")
let g_lbq = lazy (Uktrace.Registry.gauge ~subsystem:"ukfleet" "lb_queue_depth")
let g_queue = lazy (Uktrace.Registry.gauge ~subsystem:"ukfleet" "queue_depth")
let g_p99 = lazy (Uktrace.Registry.gauge ~subsystem:"ukfleet" "window_p99_us")
let c_shed_total = lazy (Uktrace.Registry.counter ~subsystem:"ukfleet" "shed")

let publish_gauges t =
  Uktrace.Metric.Gauge.set (Lazy.force g_up) (float_of_int t.ready_n);
  Uktrace.Metric.Gauge.set (Lazy.force g_warming) (float_of_int t.warming_n);
  Uktrace.Metric.Gauge.set (Lazy.force g_lbq) (float_of_int (Queue.length t.lb_q));
  Uktrace.Metric.Gauge.set (Lazy.force g_queue) (float_of_int t.outstanding)

(* --- plumbing ------------------------------------------------------------ *)

let control_pair t =
  match t.sub with
  | Sub_one (c, e) -> (c, e)
  | Sub_smp s -> (Uksmp.Smp.clock_of s ~core:0, Uksmp.Smp.engine_of s ~core:0)

let instance_pair t iid =
  match t.sub with
  | Sub_one (c, e) -> (c, e)
  | Sub_smp s ->
      let core = iid mod Uksmp.Smp.n_cores s in
      (Uksmp.Smp.clock_of s ~core, Uksmp.Smp.engine_of s ~core)

let at_abs (clock, engine) ns f =
  Uksim.Engine.at engine
    (max (Uksim.Clock.cycles_of_ns ns) (Uksim.Clock.cycles clock))
    f

let at_control t ns f = at_abs (control_pair t) ns f
let control_engine t = snd (control_pair t)
let control_clock t = fst (control_pair t)
let now_ns t = Uksim.Clock.ns (fst (control_pair t))

let settle_ns t =
  t.costs.cold_boot_ns +. t.costs.clone_ns +. t.costs.warm_activation_ns
  +. Uksim.Units.msec 1.0

(* splitmix64-style avalanche (same shape as uksmp's trace hash). *)
let mix h v =
  let x = (h lxor v) land max_int in
  let x = (x lxor (x lsr 30)) * 0x5851f42d4c957f2d land max_int in
  let x = (x lxor (x lsr 27)) * 0x14057b7ef767814f land max_int in
  x lxor (x lsr 31)

let trace t tag a ns =
  t.trace <- mix (mix (mix t.trace tag) a) (Int64.to_int (Int64.bits_of_float ns) land max_int)

let mark_bucket t ns =
  if ns >= t.t_measure && t.bucket_ns > 0.0 then
    Hashtbl.replace t.viol (int_of_float ((ns -. t.t_measure) /. t.bucket_ns)) ()

(* --- cost model ---------------------------------------------------------- *)

let derive_costs ~image ~backend =
  let mem_copy_ns mb =
    Uksim.Clock.ns_of_cycles (Uksim.Cost.memcpy (Uksim.Units.mib mb))
  in
  match backend with
  | Unikraft vmm ->
      let calib = Image.calibrate image ~vmm in
      {
        cold_boot_ns = calib.Image.breakdown.Ukplat.Vmm.total_ns;
        clone_ns = Ukplat.Vmm.snapshot_restore_ns vmm +. mem_copy_ns image.Image.mem_mb;
        warm_activation_ns = Uksim.Units.usec 120.0;
        service_ns = calib.Image.service_ns;
      }
  | Baseline prof ->
      (* Service cost derives from the measured Unikraft QEMU/KVM path
         (the §5.3 reference) times the profile's request-cost factor. *)
      let calib = Image.calibrate image ~vmm:Ukplat.Vmm.Qemu in
      let app = Image.profile_app image in
      let factor =
        Option.value (Ukos.Profiles.request_cost_factor prof ~app) ~default:1.8
      in
      let mem =
        Option.value (List.assoc_opt app prof.Ukos.Profiles.min_mem_mb) ~default:64
      in
      {
        cold_boot_ns =
          Option.value prof.Ukos.Profiles.boot_ns ~default:(Uksim.Units.msec 500.0);
        clone_ns = Ukplat.Vmm.snapshot_restore_ns Ukplat.Vmm.Qemu +. mem_copy_ns mem;
        warm_activation_ns = Uksim.Units.usec 250.0;
        service_ns = calib.Image.service_ns *. factor;
      }

(* --- construction -------------------------------------------------------- *)

let create ?(seed = 1) ?(substrate = `Own) ?(backend = Unikraft Ukplat.Vmm.Firecracker)
    ?(boot_mode = Cold) ?(policy = Frontdoor.Least_loaded) ?autoscale
    ?(restart = Uksched.Supervisor.default_policy) ?(slo_ns = Uksim.Units.msec 1.0)
    ?(shed_after_ns = Uksim.Units.msec 4.0) ?(slo_bucket_ns = Uksim.Units.msec 5.0)
    ?(lb_queue_cap = 4096) ?(initial = 1) ?(cost_factor = 1.0) ~image () =
  if initial < 1 then invalid_arg "Fleet.create: initial must be >= 1";
  if cost_factor <= 0.0 then invalid_arg "Fleet.create: cost_factor must be positive";
  let sub, external_sub =
    match substrate with
    | `Own ->
        let clock = Uksim.Clock.create () in
        (Sub_one (clock, Uksim.Engine.create clock), false)
    | `Engine (c, e) -> (Sub_one (c, e), true)
    | `Smp smp -> (Sub_smp smp, false)
  in
  let t =
    {
      rng = Uksim.Rng.create (seed lxor 0xF1EE7);
      img = image;
      backend;
      boot_mode;
      fd = Frontdoor.create policy;
      auto = Option.map Autoscaler.create autoscale;
      restart;
      slo_ns;
      shed_after_ns;
      bucket_ns = slo_bucket_ns;
      lb_cap = lb_queue_cap;
      initial;
      costs =
        (* A per-host cost multiplier (ARM-class vs. x86-class silicon):
           every calibrated x86 cost stretches by the same factor. *)
        (let c = derive_costs ~image ~backend in
         {
           cold_boot_ns = c.cold_boot_ns *. cost_factor;
           clone_ns = c.clone_ns *. cost_factor;
           warm_activation_ns = c.warm_activation_ns *. cost_factor;
           service_ns = c.service_ns *. cost_factor;
         });
      sub;
      external_sub;
      instances = Hashtbl.create 64;
      next_iid = 0;
      next_rid = 0;
      lb_q = Queue.create ();
      outstanding = 0;
      ready_n = 0;
      warming_n = 0;
      pool = 0;
      pool_warming = 0;
      template_eta = None;
      lat = Uksim.Stats.create ();
      win = Uksim.Stats.create ();
      viol = Hashtbl.create 64;
      t_measure = 0.0;
      last_event = 0.0;
      c_offered = 0;
      c_completed = 0;
      c_shed = 0;
      c_redispatched = 0;
      c_cold_boots = 0;
      c_clones = 0;
      c_warm_hits = 0;
      c_crashes = 0;
      c_restarts = 0;
      c_retired = 0;
      peak = 0;
      started = false;
      ran = false;
      replay_active = false;
      tick_armed = false;
      draining = false;
      frozen_at = None;
      frozen_q = Queue.create ();
      trace = 0;
    }
  in
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukfleet" ~name:"fleet" (fun () ->
         [
           ("offered", Uktrace.Metric.Count t.c_offered);
           ("completed", Uktrace.Metric.Count t.c_completed);
           ("shed", Uktrace.Metric.Count t.c_shed);
           ("redispatched", Uktrace.Metric.Count t.c_redispatched);
           ("cold_boots", Uktrace.Metric.Count t.c_cold_boots);
           ("clones", Uktrace.Metric.Count t.c_clones);
           ("warm_hits", Uktrace.Metric.Count t.c_warm_hits);
           ("crashes", Uktrace.Metric.Count t.c_crashes);
           ("restarts", Uktrace.Metric.Count t.c_restarts);
           ("instances_up", Uktrace.Metric.Level (float_of_int t.ready_n));
         ]));
  t

let image t = t.img
let costs t = t.costs
let policy t = Frontdoor.policy t.fd
let ready_count t = t.ready_n
let warming_count t = t.warming_n
let pool_spares t = t.pool
let ready_ids t = Frontdoor.members t.fd
let trace_hash t = t.trace

(* --- request path -------------------------------------------------------- *)

let reply req ~ok ~latency_ns =
  match req.on_reply with Some f -> f ~ok ~latency_ns | None -> ()

let shed t req ~now =
  req.done_ <- true;
  t.c_shed <- t.c_shed + 1;
  Uktrace.Metric.Counter.incr (Lazy.force c_shed_total);
  t.outstanding <- t.outstanding - 1;
  t.last_event <- Float.max t.last_event now;
  mark_bucket t now;
  trace t 0x5ed req.rid now;
  publish_gauges t;
  reply req ~ok:false ~latency_ns:(now -. req.arrival_ns)

let complete t inst req ~fin =
  req.done_ <- true;
  (match Queue.peek_opt inst.pending with
  | Some h when h == req -> ignore (Queue.pop inst.pending)
  | Some _ | None -> ());
  inst.inflight <- inst.inflight - 1;
  inst.served <- inst.served + 1;
  if inst.fresh then begin
    inst.fresh <- false;
    inst.crashes_in_row <- 0
  end;
  let latency = fin -. req.arrival_ns in
  Uksim.Stats.add t.lat latency;
  Uksim.Stats.add t.win latency;
  if latency > t.slo_ns then mark_bucket t fin;
  t.c_completed <- t.c_completed + 1;
  t.outstanding <- t.outstanding - 1;
  t.last_event <- Float.max t.last_event fin;
  trace t 0xd09e ((req.rid * 31) + inst.iid) fin;
  publish_gauges t;
  reply req ~ok:true ~latency_ns:latency

let dispatch t inst req ~now =
  let start = Float.max now inst.busy_until_ns in
  let fin = start +. t.costs.service_ns in
  inst.busy_until_ns <- fin;
  inst.inflight <- inst.inflight + 1;
  Queue.push req inst.pending;
  trace t 0xd15 ((req.rid * 31) + inst.iid) now;
  let ep = inst.epoch in
  at_abs (instance_pair t inst.iid) fin (fun () ->
      if (not req.done_) && inst.epoch = ep && inst.state = Ready then
        if t.frozen_at <> None then Queue.push (inst, req, ep) t.frozen_q
        else complete t inst req ~fin)

(* Best-case queueing delay across ready members — the admission
   controller's estimate of what an accepted request would wait. *)
let best_wait t ~now =
  List.fold_left
    (fun acc iid ->
      let inst = Hashtbl.find t.instances iid in
      Float.min acc (Float.max 0.0 (inst.busy_until_ns -. now)))
    infinity (Frontdoor.members t.fd)

let route t req ~now =
  let load iid =
    let inst = Hashtbl.find t.instances iid in
    Float.max 0.0 (inst.busy_until_ns -. now)
  in
  match Frontdoor.pick t.fd ~flow:req.flow ~load with
  | None ->
      if Queue.length t.lb_q < t.lb_cap then begin
        Queue.push req t.lb_q;
        publish_gauges t
      end
      else shed t req ~now
  | Some iid ->
      if best_wait t ~now > t.shed_after_ns then shed t req ~now
      else dispatch t (Hashtbl.find t.instances iid) req ~now

let drain_lb t ~now =
  if Frontdoor.members t.fd <> [] then begin
    let parked = Queue.fold (fun acc r -> r :: acc) [] t.lb_q in
    Queue.clear t.lb_q;
    List.iter (fun r -> route t r ~now) (List.rev parked)
  end

(* --- instance lifecycle -------------------------------------------------- *)

let accepting t = t.replay_active || t.external_sub

let refill_pool t ~now =
  if accepting t then begin
    t.pool_warming <- t.pool_warming + 1;
    t.c_cold_boots <- t.c_cold_boots + 1;
    at_control t (now +. t.costs.cold_boot_ns) (fun () ->
        t.pool_warming <- t.pool_warming - 1;
        t.pool <- t.pool + 1)
  end

(* Pick the boot path for a new (or respawning) instance and charge its
   latency: the Cold/Warm_pool/Snapshot distinction the bench measures. *)
let spawn_latency t ~now =
  match t.boot_mode with
  | Cold ->
      t.c_cold_boots <- t.c_cold_boots + 1;
      t.costs.cold_boot_ns
  | Warm_pool _ ->
      if t.pool > 0 then begin
        t.pool <- t.pool - 1;
        t.c_warm_hits <- t.c_warm_hits + 1;
        refill_pool t ~now;
        t.costs.warm_activation_ns
      end
      else begin
        t.c_cold_boots <- t.c_cold_boots + 1;
        t.costs.cold_boot_ns
      end
  | Snapshot -> (
      match t.template_eta with
      | None ->
          t.template_eta <- Some (now +. t.costs.cold_boot_ns);
          t.c_cold_boots <- t.c_cold_boots + 1;
          t.costs.cold_boot_ns
      | Some eta ->
          t.c_clones <- t.c_clones + 1;
          Float.max 0.0 (eta -. now) +. t.costs.clone_ns)

let make_ready t inst ~now =
  if (not inst.retired) && inst.state = Booting then begin
    inst.state <- Ready;
    inst.busy_until_ns <- now;
    t.ready_n <- t.ready_n + 1;
    t.warming_n <- t.warming_n - 1;
    if t.ready_n > t.peak then t.peak <- t.ready_n;
    Frontdoor.add t.fd inst.iid;
    trace t 0xb007 inst.iid now;
    publish_gauges t;
    drain_lb t ~now
  end

let scale_out t n ~now =
  for _ = 1 to n do
    let iid = t.next_iid in
    t.next_iid <- iid + 1;
    let inst =
      {
        iid;
        state = Booting;
        busy_until_ns = now;
        pending = Queue.create ();
        inflight = 0;
        epoch = 0;
        served = 0;
        crashes_in_row = 0;
        restarts_used = 0;
        fresh = false;
        retired = false;
      }
    in
    Hashtbl.replace t.instances iid inst;
    t.warming_n <- t.warming_n + 1;
    let latency = spawn_latency t ~now in
    trace t 0x59a iid (now +. latency);
    at_control t (now +. latency) (fun () -> make_ready t inst ~now:(now +. latency))
  done;
  publish_gauges t

let scale_in t ~now =
  (* Retire the youngest idle ready instance; hold if none is idle. *)
  let victim =
    Hashtbl.fold
      (fun _ inst best ->
        if inst.state = Ready && inst.inflight = 0 then
          match best with
          | Some b when b.iid >= inst.iid -> best
          | _ -> Some inst
        else best)
      t.instances None
  in
  match victim with
  | None -> ()
  | Some inst ->
      inst.state <- Dead;
      inst.retired <- true;
      t.ready_n <- t.ready_n - 1;
      t.c_retired <- t.c_retired + 1;
      Frontdoor.remove t.fd inst.iid;
      trace t 0x0ff inst.iid now;
      publish_gauges t

let kill t ~now_ns ~iid =
  match Hashtbl.find_opt t.instances iid with
  | Some inst when inst.state = Ready ->
      let now = now_ns in
      inst.state <- Dead;
      inst.epoch <- inst.epoch + 1;
      inst.crashes_in_row <- inst.crashes_in_row + 1;
      t.ready_n <- t.ready_n - 1;
      t.c_crashes <- t.c_crashes + 1;
      Frontdoor.remove t.fd iid;
      trace t 0xdead iid now;
      (* Orphaned requests go back through the front door. *)
      let orphans = Queue.fold (fun acc r -> r :: acc) [] inst.pending in
      Queue.clear inst.pending;
      inst.inflight <- 0;
      inst.busy_until_ns <- now;
      List.iter
        (fun r ->
          if not r.done_ then begin
            t.c_redispatched <- t.c_redispatched + 1;
            route t r ~now
          end)
        (List.rev orphans);
      (* Supervisor-style respawn: exponential backoff per consecutive
         crash, bounded by the restart budget. *)
      if inst.restarts_used < t.restart.Uksched.Supervisor.max_restarts then begin
        inst.restarts_used <- inst.restarts_used + 1;
        t.c_restarts <- t.c_restarts + 1;
        let p = t.restart in
        let backoff =
          Float.min p.Uksched.Supervisor.max_backoff_ns
            (p.Uksched.Supervisor.backoff_ns
            *. (p.Uksched.Supervisor.backoff_factor
               ** float_of_int (max 0 (inst.crashes_in_row - 1))))
        in
        inst.state <- Booting;
        inst.fresh <- true;
        t.warming_n <- t.warming_n + 1;
        let latency = spawn_latency t ~now in
        let at = now +. backoff +. latency in
        at_control t at (fun () -> make_ready t inst ~now:at)
      end;
      publish_gauges t;
      true
  | Some _ | None -> false

(* --- drain / freeze hooks (the cluster tier's handles on a host) --------- *)

let set_draining t on =
  t.draining <- on;
  trace t 0xd4a1 (if on then 1 else 0) t.last_event

let draining t = t.draining

let freeze t ~now_ns =
  if t.frozen_at = None then begin
    t.frozen_at <- Some now_ns;
    trace t 0xf42e 0 now_ns
  end

let frozen t = t.frozen_at <> None

let thaw t ~now_ns =
  match t.frozen_at with
  | None -> ()
  | Some since ->
      t.frozen_at <- None;
      let stall = Float.max 0.0 (now_ns -. since) in
      (* Capacity lost to the stall: every instance's backlog horizon
         shifts by the freeze duration. *)
      Hashtbl.iter
        (fun _ inst ->
          if inst.state = Ready && inst.busy_until_ns > since then
            inst.busy_until_ns <- inst.busy_until_ns +. stall)
        t.instances;
      trace t 0x7a4 0 now_ns;
      (* Held completions land at the thaw instant — the stall is part of
         their latency, exactly what a frozen host's clients observe. *)
      let held = Queue.fold (fun acc e -> e :: acc) [] t.frozen_q in
      Queue.clear t.frozen_q;
      List.iter
        (fun (inst, req, ep) ->
          if (not req.done_) && inst.epoch = ep && inst.state = Ready then
            complete t inst req ~fin:now_ns)
        (List.rev held)

(* --- control loop -------------------------------------------------------- *)

let rec tick t ~now =
  t.tick_armed <- true;
  let p99 = if Uksim.Stats.count t.win > 0 then Uksim.Stats.percentile t.win 99.0 else 0.0 in
  Uktrace.Metric.Gauge.set (Lazy.force g_p99) (p99 /. 1e3);
  Uksim.Stats.clear t.win;
  publish_gauges t;
  (match t.auto with
  | None -> ()
  | Some a ->
      (* The controller consumes the published registry gauges — the same
         numbers any external observer sees. *)
      let ready = int_of_float (Uktrace.Metric.Gauge.get (Lazy.force g_up)) in
      let warming = int_of_float (Uktrace.Metric.Gauge.get (Lazy.force g_warming)) in
      let outstanding = int_of_float (Uktrace.Metric.Gauge.get (Lazy.force g_queue)) in
      let p99_ns = Uktrace.Metric.Gauge.get (Lazy.force g_p99) *. 1e3 in
      (match
         Autoscaler.decide a ~now_ns:now ~ready ~warming ~outstanding ~p99_ns
           ~slo_ns:t.slo_ns
       with
      | Autoscaler.Hold -> ()
      | Autoscaler.Scale_out n ->
          trace t 0x5ca1e n now;
          scale_out t n ~now
      | Autoscaler.Scale_in _ ->
          trace t 0x5ca10 1 now;
          scale_in t ~now));
  match t.auto with
  | Some a when t.replay_active || t.outstanding > 0 ->
      let next = now +. (Autoscaler.params a).Autoscaler.interval_ns in
      at_control t next (fun () -> tick t ~now:next)
  | Some _ | None -> t.tick_armed <- false

(* --- top-level ----------------------------------------------------------- *)

let refill_pool_initial t ~now =
  t.pool_warming <- t.pool_warming + 1;
  t.c_cold_boots <- t.c_cold_boots + 1;
  at_control t (now +. t.costs.cold_boot_ns) (fun () ->
      t.pool_warming <- t.pool_warming - 1;
      t.pool <- t.pool + 1)

let start_at t ~now =
  if t.started then invalid_arg "Fleet.start: already started";
  t.started <- true;
  t.t_measure <- now;
  t.last_event <- now;
  publish_gauges t;
  (match t.boot_mode with
  | Warm_pool target ->
      for _ = 1 to target do
        refill_pool_initial t ~now
      done
  | Cold | Snapshot -> ());
  scale_out t t.initial ~now

let start t = start_at t ~now:(now_ns t)

let mk_req t flow arrival on_reply =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  { rid; flow; arrival_ns = arrival; done_ = false; on_reply }

let submit ?flow ?on_reply t ~now_ns:now =
  if not t.started then invalid_arg "Fleet.submit: fleet not started";
  let flow = match flow with Some f -> f | None -> Uksim.Rng.int t.rng 0x3FFFFFFF in
  let req = mk_req t flow now on_reply in
  t.c_offered <- t.c_offered + 1;
  t.outstanding <- t.outstanding + 1;
  trace t 0xa1 req.rid now;
  (* A draining fleet answers everything immediately with a shed: the
     migration stop-and-copy window must never queue new work here. *)
  if t.draining then shed t req ~now else route t req ~now;
  (* Externally driven fleets re-arm the control loop on demand. *)
  if t.auto <> None && not t.tick_armed then tick t ~now

let report t =
  let conv ns = ns /. 1e3 in
  let n = Uksim.Stats.count t.lat in
  {
    offered = t.c_offered;
    completed = t.c_completed;
    shed = t.c_shed;
    lost = t.c_offered - t.c_completed - t.c_shed;
    redispatched = t.c_redispatched;
    mean_us = (if n = 0 then 0.0 else conv (Uksim.Stats.mean t.lat));
    p50_us = (if n = 0 then 0.0 else conv (Uksim.Stats.median t.lat));
    p99_us = (if n = 0 then 0.0 else conv (Uksim.Stats.percentile t.lat 99.0));
    max_us = (if n = 0 then 0.0 else conv (Uksim.Stats.max t.lat));
    slo_violation_ns = float_of_int (Hashtbl.length t.viol) *. t.bucket_ns;
    cold_boots = t.c_cold_boots;
    clones = t.c_clones;
    warm_hits = t.c_warm_hits;
    crashes = t.c_crashes;
    restarts = t.c_restarts;
    retired = t.c_retired;
    peak_instances = t.peak;
    final_ready = t.ready_n;
    elapsed_ns = Float.max 0.0 (t.last_event -. t.t_measure);
    trace_hash =
      (match t.sub with
      | Sub_smp s -> mix t.trace (Uksmp.Smp.trace_hash s)
      | Sub_one _ -> t.trace);
  }

let run t (w : Workload.t) =
  if t.external_sub then
    invalid_arg "Fleet.run: [`Engine] fleets are externally driven (use start/submit)";
  if t.ran then invalid_arg "Fleet.run: one workload per fleet";
  t.ran <- true;
  let t0 = now_ns t in
  start_at t ~now:t0;
  (* Arrivals begin once the slowest initial bring-up path has settled,
     so the measured window isolates scale-out behavior from t=0 boots. *)
  let t_start = t0 +. settle_ns t in
  t.t_measure <- t_start;
  t.last_event <- t_start;
  t.replay_active <- true;
  let rec arrive ta =
    if ta -. t_start <= w.Workload.duration_ns then begin
      let flow = Uksim.Rng.int t.rng 0x3FFFFFFF in
      let req = mk_req t flow ta None in
      t.c_offered <- t.c_offered + 1;
      t.outstanding <- t.outstanding + 1;
      trace t 0xa1 req.rid ta;
      route t req ~now:ta;
      let rate = Float.max 1e-3 (w.Workload.rate_rps (ta -. t_start)) in
      let dt = Uksim.Rng.exponential t.rng (1e9 /. rate) in
      at_control t (ta +. dt) (fun () -> arrive (ta +. dt))
    end
    else t.replay_active <- false
  in
  at_control t t_start (fun () -> arrive t_start);
  if t.auto <> None then at_control t t_start (fun () -> tick t ~now:t_start);
  (match t.sub with
  | Sub_one (_, e) -> Uksim.Engine.run e
  | Sub_smp s -> Uksmp.Smp.run s);
  report t
