(** Reactive autoscaling: scale-out/in decisions with hysteresis.

    The controller is deliberately simple and fully deterministic — a
    pure function of its observations plus two pieces of state (cooldown
    stamps and a consecutive-low-tick counter). The fleet feeds it the
    {!Uktrace} gauge readings it publishes every control interval.

    Scale-out is demand-driven: keep roughly [target_queue] outstanding
    requests per ready instance, counting instances already warming so a
    burst does not double-order capacity; an SLO breach (windowed p99
    above the fleet's SLO) adds a 50% capacity kick on top. Scale-in is
    conservative: only after [scale_in_hold] consecutive low ticks
    (hysteresis), one instance at a time, respecting [cooldown_in_ns] —
    the asymmetry that stops a diurnal trough from thrashing the pool. *)

type params = {
  interval_ns : float;  (** control-loop period *)
  target_queue : float;  (** outstanding requests per ready instance *)
  scale_in_hold : int;  (** low ticks required before one scale-in *)
  cooldown_out_ns : float;  (** min spacing between scale-outs *)
  cooldown_in_ns : float;  (** min spacing between scale-ins *)
  min_instances : int;
  max_instances : int;
}

val default : params
(** 2 ms interval, 4 outstanding per instance, 5-tick hold, 2 ms out /
    50 ms in cooldowns, 1..64 instances. *)

type action = Hold | Scale_out of int | Scale_in of int

type t

val create : params -> t
val params : t -> params

val decide :
  t ->
  now_ns:float ->
  ready:int ->
  warming:int ->
  outstanding:int ->
  p99_ns:float ->
  slo_ns:float ->
  action
(** One control tick. [outstanding] counts dispatched-but-uncompleted
    plus front-door-queued requests; [p99_ns] is the completion-latency
    p99 of the last window (0 when idle). *)
