module S = Uknetstack.Stack

type t = {
  sched : Uksched.Sched.t;
  stack : S.t;
  fleet : Fleet.t;
  listener : S.Tcp_socket.listener;
  mutable running : bool;
  mutable requests : int;
  mutable responses : int;
}

let requests t = t.requests
let responses t = t.responses
let stop t = t.running <- false

(* A flow key from a request line: "REQ <n>" uses n directly (so tests
   can steer consistent-hash placement); anything else hashes the line. *)
let flow_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "REQ"; n ] -> ( match int_of_string_opt n with Some v -> abs v | None -> Hashtbl.hash line)
  | _ -> Hashtbl.hash line

let respond t flow line =
  let b = Bytes.of_string line in
  ignore (S.Tcp_socket.send t.stack flow b);
  t.responses <- t.responses + 1

let handle_line t flow line =
  t.requests <- t.requests + 1;
  Fleet.submit ~flow:(flow_of_line line) t.fleet ~now_ns:(Fleet.now_ns t.fleet)
    ~on_reply:(fun ~ok ~latency_ns ->
      if ok then
        respond t flow (Printf.sprintf "OK %d\n" (int_of_float (latency_ns /. 1e3)))
      else respond t flow "SHED\n")

(* One reader thread per connection: block on recv, split into lines,
   submit each. Responses are written from the fleet's completion events
   (same engine), so they interleave with reads naturally. *)
let reader t flow =
  let buf = Buffer.create 64 in
  let rec drain_lines () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
        let line = String.sub s 0 i in
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        if String.trim line <> "" then handle_line t flow line;
        drain_lines ()
    | None -> ()
  in
  let rec loop () =
    match S.Tcp_socket.recv ~block:true t.stack flow ~max:1024 with
    | Some data when Bytes.length data > 0 ->
        Buffer.add_bytes buf data;
        drain_lines ();
        loop ()
    | Some _ -> loop ()
    | None -> ()
  in
  loop ()

let serve ~sched ~stack ~port ~fleet () =
  let listener = S.Tcp_socket.listen stack ~port () in
  let t =
    { sched; stack; fleet; listener; running = true; requests = 0; responses = 0 }
  in
  let rec acceptor () =
    if t.running then
      match S.Tcp_socket.accept ~block:true t.listener with
      | Some flow ->
          ignore
            (Uksched.Sched.spawn t.sched ~name:"ingress/conn" ~daemon:true (fun () ->
                 reader t flow));
          acceptor ()
      | None -> ()
  in
  ignore (Uksched.Sched.spawn sched ~name:"ingress/accept" ~daemon:true acceptor);
  t
