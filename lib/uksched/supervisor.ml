type policy = {
  max_restarts : int;
  backoff_ns : float;
  backoff_factor : float;
  max_backoff_ns : float;
  jitter : float;
}

let default_policy =
  { max_restarts = 5; backoff_ns = 1.0e6; backoff_factor = 2.0; max_backoff_ns = 1.0e8;
    jitter = 0.0 }

type state = Running | Restarting | Completed | Gave_up

type t = {
  sched : Sched.t;
  engine : Uksim.Engine.t;
  policy : policy;
  sname : string;
  daemon : bool;
  on_crash : (exn -> unit) option;
  body : unit -> unit;
  rng : Uksim.Rng.t option;  (* jitter draws; None when jitter = 0 *)
  mutable st : state;
  mutable crashes : int;
  mutable restarts : int;
  mutable backoff : float;
  mutable last_error : exn option;
}

(* The undithered backoff plus a uniform fraction of itself: two
   supervisors crashing in lockstep restart [0, jitter] backoffs apart
   instead of colliding on every retry. *)
let jittered t delay =
  match t.rng with
  | None -> delay
  | Some rng -> delay *. (1.0 +. (t.policy.jitter *. Uksim.Rng.float rng 1.0))

let rec launch t =
  t.st <- Running;
  ignore
    (Sched.spawn t.sched ~name:t.sname ~daemon:t.daemon (fun () ->
         match t.body () with
         | () -> t.st <- Completed
         | exception Sched.Thread_exit ->
             (* Voluntary exit is a normal completion, not a crash. *)
             t.st <- Completed;
             raise Sched.Thread_exit
         | exception exn ->
             t.crashes <- t.crashes + 1;
             t.last_error <- Some exn;
             (match t.on_crash with Some f -> f exn | None -> ());
             if t.restarts >= t.policy.max_restarts then t.st <- Gave_up
             else begin
               t.st <- Restarting;
               let delay = jittered t t.backoff in
               t.backoff <-
                 Float.min (t.backoff *. t.policy.backoff_factor) t.policy.max_backoff_ns;
               t.restarts <- t.restarts + 1;
               Uksim.Engine.after_ns t.engine delay (fun () -> launch t)
             end))

let supervise sched ~engine ?(policy = default_policy) ?(name = "supervised")
    ?(daemon = true) ?jitter_seed ?on_crash body =
  if policy.jitter < 0.0 then invalid_arg "Supervisor.supervise: negative jitter";
  let rng =
    if policy.jitter = 0.0 then None
    else
      (* Deterministic by construction: the seed defaults to a hash of
         the supervisor's name, so equal runs jitter identically. *)
      let seed =
        match jitter_seed with Some s -> s | None -> Hashtbl.hash name lxor 0x1AB5
      in
      Some (Uksim.Rng.create seed)
  in
  let t =
    { sched; engine; policy; sname = name; daemon; on_crash; body; rng; st = Running;
      crashes = 0; restarts = 0; backoff = policy.backoff_ns; last_error = None }
  in
  launch t;
  t

let state t = t.st
let crashes t = t.crashes
let restarts t = t.restarts
let last_error t = t.last_error
let restarts_remaining t = max 0 (t.policy.max_restarts - t.restarts)
