(** The uksched API (paper §3.3).

    Scheduling in Unikraft is available but optional. This module provides
    the scheduler interface plus three implementations:

    - {!create_cooperative}: run-to-yield threads (the paper's default for
      Redis-style single-threaded servers);
    - {!create_preemptive}: round-robin with a virtual-time timeslice;
      preemption points are the OS API entry points (see {!checkpoint});
    - {!create_null}: no scheduler at all — [spawn] runs the function to
      completion immediately (run-to-completion unikernels, §3.3).

    Threads are OCaml effect-based fibers; the scheduler trampolines them so
    arbitrarily many context switches use constant stack. All switches
    charge {!Uksim.Cost.context_switch} to the scheduler's clock. *)

type t
type tid = int

type kind = Cooperative | Preemptive | Null

val create_cooperative : clock:Uksim.Clock.t -> engine:Uksim.Engine.t -> t
val create_preemptive : slice_cycles:int -> clock:Uksim.Clock.t -> engine:Uksim.Engine.t -> t
val create_null : clock:Uksim.Clock.t -> engine:Uksim.Engine.t -> t

val kind : t -> kind
val name : t -> string

val clock : t -> Uksim.Clock.t
val engine : t -> Uksim.Engine.t

val spawn : t -> ?name:string -> ?daemon:bool -> ?pinned:bool -> (unit -> unit) -> tid
(** Create a thread. Under the null scheduler the body runs to completion
    before [spawn] returns. Otherwise it becomes runnable and will run on
    {!run}. May also be called from inside a running thread. [daemon]
    threads (default false) do not keep {!run} alive: when only daemons
    remain blocked, [run] returns instead of raising [Deadlock]. [pinned]
    threads (default false) are never migrated by {!steal} — pin anything
    whose costs are charged to a specific core's clock (per-core service
    loops, accept loops, load generators). *)

val run : t -> unit
(** Trampoline until no thread is runnable and no engine event can make one
    runnable. Raises [Deadlock] if blocked non-daemon threads remain but no
    event can wake them. *)

exception Deadlock of string list
(** Names of the stuck threads. *)

exception Thread_exit
(** Raised by {!exit_thread}; the scheduler treats it as a normal thread
    termination (exported so crash barriers like {!Supervisor} can tell a
    voluntary exit from a crash). *)

(** {1 Callable from inside a thread} *)

val yield : unit -> unit
(** Give up the CPU; the thread stays runnable. Performs an effect — only
    valid inside a thread of a running scheduler (no-op under null). *)

val self : unit -> tid

val block : unit -> unit
(** Block until {!wake}. *)

val sleep_ns : float -> unit
(** Block for a span of virtual time. *)

val exit_thread : unit -> 'a
(** Terminate the current thread. *)

(** {1 Callable from anywhere} *)

val wake : t -> tid -> unit
(** Make a blocked thread runnable; no-op if it is not blocked. *)

val checkpoint : t -> unit
(** Preemption point: under the preemptive scheduler, yields if the current
    thread has exceeded its timeslice. OS APIs call this on entry. No-op
    for other schedulers or outside threads. *)

val alive : t -> int
(** Threads not yet exited. *)

val context_switches : t -> int
val thread_name : t -> tid -> string option

(** {1 SMP coordination (consumed by [lib/uksmp])}

    A single scheduler instance stays single-core; multicore runs are
    built from one cooperative scheduler per core, joined into a group
    and driven by an external coordinator that interleaves {!step} calls
    in virtual-time order. *)

type group
(** A set of schedulers sharing one tid namespace and wake routing. *)

val create_group : unit -> group

val join_group : group -> t -> unit
(** Joining makes tids unique across members and reroutes {!wake} calls
    that name a thread which migrated (or was addressed via a stale
    scheduler reference) to its current owner. Raises [Invalid_argument]
    if the scheduler is already in a group. *)

val set_remote_wake : group -> (src:t -> dst:t -> unit) option -> unit
(** Hook invoked when a wake is routed from one member to another and
    actually unblocks a thread — uksmp charges the IPI cost here. *)

type group_event =
  | Spawned of tid  (** a thread was created on some member *)
  | Woken of tid  (** a blocked thread became ready *)
  | Exited of tid  (** a thread ran to completion *)

val set_group_observer : group -> (group_event -> unit) option -> unit
(** Lifecycle hook for correctness tooling (ukcheck's happens-before
    tracker): fires on every member's spawn/wake/exit. Observers must not
    touch clocks, engines, queues or randomness — determinism requires
    that installing one cannot change a run. *)

val current_tid : t -> tid option
(** The thread this scheduler is executing right now, if any — usable from
    outside thread context (unlike {!self}, which performs an effect). *)

val set_dispatch_chooser : t -> (int -> int) option -> unit
(** [set_dispatch_chooser t (Some f)] turns ready-thread dispatch in
    {!step} into an explicit decision point: with [n >= 2] genuinely
    ready threads, [f n] picks which one runs (0 = FIFO head, i.e. the
    default; out-of-range choices fall back to 0). ukcheck's schedule
    explorer drives this; without a chooser, dispatch is FIFO exactly as
    before. Only affects {!step} (the SMP coordinator path), not
    {!run}. *)

val step : t -> bool
(** Make one unit of progress: dispatch one ready thread, else run one
    engine event. [false] when neither is possible. *)

val runnable : t -> int
(** Number of genuinely ready threads in the run queue. *)

val steal : from_:t -> t -> bool
(** [steal ~from_ t] migrates the oldest ready, unpinned thread of
    [from_] into [t]'s run queue (with its identity and continuation).
    Requires both schedulers to be in the same group so later wakes find
    the thread. [false] if nothing was stealable. *)

val stuck : t -> string list
(** Names of blocked non-daemon threads (the {!Deadlock} payload). *)
