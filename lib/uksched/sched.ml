type tid = int
type kind = Cooperative | Preemptive | Null

exception Deadlock of string list
exception Thread_exit

type _ Effect.t +=
  | Yield : unit Effect.t
  | Block : unit Effect.t
  | Sleep : int -> unit Effect.t
  | Self : tid Effect.t

(* What a thread's fiber reports back to the trampoline when it stops. *)
type outcome =
  | Done
  | Yielded of (unit, outcome) Effect.Deep.continuation
  | Blocked_k of (unit, outcome) Effect.Deep.continuation
  | Slept of int * (unit, outcome) Effect.Deep.continuation

type tstate = Sready | Srunning | Sblocked | Sexited

type thread = {
  tid : tid;
  tname : string;
  daemon : bool;
  pinned : bool; (* never migrated by Sched.steal *)
  mutable state : tstate;
  mutable cont : (unit, outcome) Effect.Deep.continuation option;
  mutable body : (unit -> unit) option; (* not yet started *)
}

type t = {
  skind : kind;
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  slice : int; (* cycles; max_int when not preemptive *)
  ready : thread Queue.t;
  threads : (tid, thread) Hashtbl.t;
  mutable next_tid : int;
  mutable current : thread option;
  mutable dispatch_at : int;
  mutable switches : int;
  mutable grp : group option;
  mutable dispatch_chooser : (int -> int) option;
}

(* A group ties several per-core schedulers into one SMP domain: tids are
   unique across members, and wakes addressed to a member that no longer
   owns the thread (it migrated) are routed to the owner. The optional
   remote-wake hook lets uksmp charge an IPI when that routing crosses
   cores. *)
and group = {
  mutable members : t list; (* registration order *)
  g_next : int ref;
  mutable remote_wake : (src:t -> dst:t -> unit) option;
  mutable observer : (group_event -> unit) option;
}

and group_event = Spawned of tid | Woken of tid | Exited of tid

let make skind ?(slice = max_int) ~clock ~engine () =
  {
    skind;
    clock;
    engine;
    slice;
    ready = Queue.create ();
    threads = Hashtbl.create 16;
    next_tid = 1;
    current = None;
    dispatch_at = 0;
    switches = 0;
    grp = None;
    dispatch_chooser = None;
  }

let create_cooperative ~clock ~engine = make Cooperative ~clock ~engine ()

let create_preemptive ~slice_cycles ~clock ~engine =
  if slice_cycles <= 0 then invalid_arg "Sched.create_preemptive: slice must be positive";
  make Preemptive ~slice:slice_cycles ~clock ~engine ()

let create_null ~clock ~engine = make Null ~clock ~engine ()

let kind t = t.skind
let clock t = t.clock
let engine t = t.engine

let name t =
  match t.skind with Cooperative -> "coop" | Preemptive -> "preempt" | Null -> "null"

let create_group () = { members = []; g_next = ref 1; remote_wake = None; observer = None }

let join_group g t =
  (match t.grp with Some _ -> invalid_arg "Sched.join_group: already grouped" | None -> ());
  t.grp <- Some g;
  g.members <- g.members @ [ t ];
  g.g_next := max !(g.g_next) t.next_tid

let set_remote_wake g hook = g.remote_wake <- hook
let set_group_observer g hook = g.observer <- hook
let set_dispatch_chooser t f = t.dispatch_chooser <- f
let current_tid t = match t.current with Some th -> Some th.tid | None -> None

(* Notify the group's observer (ukcheck's happens-before tracker), if any. *)
let notify t ev =
  match t.grp with
  | Some { observer = Some f; _ } -> f ev
  | Some _ | None -> ()

let yield () = Effect.perform Yield
let self () = Effect.perform Self
let block () = Effect.perform Block
let sleep_ns ns = Effect.perform (Sleep (Uksim.Clock.cycles_of_ns ns))
let exit_thread () = raise Thread_exit

let handler th =
  {
    Effect.Deep.retc = (fun o -> o);
    exnc = (function Thread_exit -> Done | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some (fun (k : (a, outcome) Effect.Deep.continuation) -> Yielded k)
        | Block -> Some (fun (k : (a, outcome) Effect.Deep.continuation) -> Blocked_k k)
        | Sleep c ->
            Some (fun (k : (a, outcome) Effect.Deep.continuation) -> Slept (c, k))
        | Self ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                Effect.Deep.continue k th.tid)
        | _ -> None);
  }

(* The null "scheduler": run the body to completion inline. Yields are
   no-ops, sleeps advance the clock synchronously, blocking is a
   programming error in a run-to-completion unikernel. *)
let null_handler t th =
  {
    Effect.Deep.retc = (fun () -> ());
    exnc = (function Thread_exit -> () | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> Effect.Deep.continue k ())
        | Block ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                ignore k;
                raise (Deadlock [ th.tname ]))
        | Sleep c ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                Uksim.Engine.run ~until:(Uksim.Clock.cycles t.clock + c) t.engine;
                Effect.Deep.continue k ())
        | Self ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) -> Effect.Deep.continue k th.tid)
        | _ -> None);
  }

let spawn t ?name:(tname = "thread") ?(daemon = false) ?(pinned = false) f =
  let tid =
    match t.grp with
    | Some g ->
        let v = !(g.g_next) in
        g.g_next := v + 1;
        v
    | None ->
        let v = t.next_tid in
        t.next_tid <- v + 1;
        v
  in
  let th = { tid; tname; daemon; pinned; state = Sready; cont = None; body = Some f } in
  Hashtbl.replace t.threads tid th;
  notify t (Spawned tid);
  (match t.skind with
  | Null ->
      th.state <- Srunning;
      let saved = t.current in
      t.current <- Some th;
      Effect.Deep.match_with f () (null_handler t th);
      th.state <- Sexited;
      t.current <- saved;
      notify t (Exited tid)
  | Cooperative | Preemptive -> Queue.push th t.ready);
  tid

let wake_local t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some th when th.state = Sblocked ->
      th.state <- Sready;
      Queue.push th t.ready;
      notify t (Woken tid);
      true
  | Some _ | None -> false

(* Wakes route through the group when the thread is not (or no longer)
   local — either it migrated via [steal], or the waker holds a stale
   scheduler reference (a stack or lock created on another core). *)
let wake t tid =
  if not (Hashtbl.mem t.threads tid) then
    match t.grp with
    | None -> ()
    | Some g -> (
        match List.find_opt (fun m -> m != t && Hashtbl.mem m.threads tid) g.members with
        | Some owner ->
            if wake_local owner tid then
              (match g.remote_wake with Some hook -> hook ~src:t ~dst:owner | None -> ())
        | None -> ())
  else ignore (wake_local t tid)

let dispatch t th =
  t.switches <- t.switches + 1;
  Uksim.Clock.advance t.clock Uksim.Cost.context_switch;
  th.state <- Srunning;
  t.current <- Some th;
  t.dispatch_at <- Uksim.Clock.cycles t.clock;
  let out =
    match th.body with
    | Some f ->
        th.body <- None;
        Effect.Deep.match_with
          (fun () ->
            f ();
            Done)
          () (handler th)
    | None -> (
        match th.cont with
        | Some k ->
            th.cont <- None;
            Effect.Deep.continue k ()
        | None -> Done)
  in
  t.current <- None;
  match out with
  | Done ->
      th.state <- Sexited;
      notify t (Exited th.tid)
  | Yielded k ->
      th.cont <- Some k;
      th.state <- Sready;
      Queue.push th t.ready
  | Blocked_k k ->
      th.cont <- Some k;
      th.state <- Sblocked
  | Slept (c, k) ->
      th.cont <- Some k;
      th.state <- Sblocked;
      Uksim.Engine.after t.engine c (fun () -> wake t th.tid)

let blocked_names t =
  Hashtbl.fold
    (fun _ th acc ->
      if th.state = Sblocked && not th.daemon then th.tname :: acc else acc)
    t.threads []

let runnable t =
  Queue.fold (fun acc th -> if th.state = Sready then acc + 1 else acc) 0 t.ready

(* Remove the [k]-th (0-based) genuinely ready thread from the run queue,
   preserving the relative order of the others. Stale entries (threads
   woken twice, or exited while queued) are dropped along the way. *)
let take_ready_nth t k =
  let n = Queue.length t.ready in
  let chosen = ref None in
  let seen = ref 0 in
  for _ = 1 to n do
    let th = Queue.pop t.ready in
    if th.state <> Sready then () (* drop stale entry *)
    else if Option.is_none !chosen && !seen = k then chosen := Some th
    else begin
      incr seen;
      Queue.push th t.ready
    end
  done;
  !chosen

(* One unit of progress for an external coordinator (uksmp): dispatch one
   ready thread, else run one engine event. A popped-but-stale queue entry
   still counts as progress (the queue shrank). With a dispatch chooser
   installed (ukcheck's schedule explorer), the choice of which ready
   thread runs becomes an explicit decision point instead of FIFO order. *)
let step t =
  match t.dispatch_chooser with
  | Some choose -> (
      let n = runnable t in
      if n = 0 then Uksim.Engine.step t.engine
      else
        let k =
          if n = 1 then 0
          else
            let c = choose n in
            if c < 0 || c >= n then 0 else c
        in
        match take_ready_nth t k with
        | Some th ->
            dispatch t th;
            true
        | None -> true)
  | None -> (
      match Queue.take_opt t.ready with
      | Some th ->
          if th.state = Sready then dispatch t th;
          true
      | None -> Uksim.Engine.step t.engine)

let steal ~from_ t =
  if from_ == t then false
  else begin
    let n = Queue.length from_.ready in
    let stolen = ref None in
    for _ = 1 to n do
      let th = Queue.pop from_.ready in
      if Option.is_none !stolen && th.state = Sready && not th.pinned then stolen := Some th
      else Queue.push th from_.ready
    done;
    match !stolen with
    | None -> false
    | Some th ->
        Hashtbl.remove from_.threads th.tid;
        Hashtbl.replace t.threads th.tid th;
        Queue.push th t.ready;
        true
  end

let rec run t =
  match Queue.take_opt t.ready with
  | Some th ->
      (* A thread can sit in the queue with a stale state (e.g. woken twice
         before running); only dispatch genuinely ready ones. *)
      if th.state = Sready then dispatch t th;
      run t
  | None ->
      let blocked = blocked_names t in
      if blocked <> [] then
        if Uksim.Engine.step t.engine then run t else raise (Deadlock blocked)

let checkpoint t =
  match (t.skind, t.current) with
  | Preemptive, Some _ ->
      if Uksim.Clock.cycles t.clock - t.dispatch_at >= t.slice then yield ()
  | (Preemptive | Cooperative | Null), _ -> ()

let alive t =
  Hashtbl.fold (fun _ th acc -> if th.state = Sexited then acc else acc + 1) t.threads 0

let context_switches t = t.switches

let thread_name t tid =
  match Hashtbl.find_opt t.threads tid with Some th -> Some th.tname | None -> None

let stuck t = blocked_names t
