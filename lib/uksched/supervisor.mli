(** Thread supervision: restart-on-crash with exponential backoff and a
    restart-budget circuit breaker.

    [supervise] spawns the body on the scheduler with a crash barrier: an
    escaping exception is caught (instead of tearing down the whole
    scheduler run), counted, and — budget permitting — the body is
    respawned after a backoff delay that doubles per consecutive crash.
    A body that runs to completion normally closes the supervisor.

    Once [max_restarts] restarts have been consumed the circuit breaker
    opens ({!state} = [Gave_up]) and the component stays down — the
    erlang-style "let it crash, but not forever" policy.

    Restart delays ride the event engine: they fire while the scheduler
    keeps running (other threads blocked on I/O keep the engine
    stepping). *)

type policy = {
  max_restarts : int;  (** total restart budget before giving up *)
  backoff_ns : float;  (** delay before the first restart *)
  backoff_factor : float;  (** multiplier per consecutive crash *)
  max_backoff_ns : float;  (** backoff ceiling *)
  jitter : float;
      (** each restart delay is stretched by a uniform draw in
          [\[0, jitter\]] of itself (0 = pure exponential backoff, the
          default). Seeded and deterministic: see [jitter_seed] on
          {!supervise}. Jitter decorrelates supervisors that crashed
          together so they do not restart in lockstep. *)
}

val default_policy : policy
(** 5 restarts, 1 ms initial backoff, doubling, capped at 100 ms, no
    jitter. *)

type state = Running | Restarting | Completed | Gave_up

type t

val supervise :
  Sched.t ->
  engine:Uksim.Engine.t ->
  ?policy:policy ->
  ?name:string ->
  ?daemon:bool ->
  ?jitter_seed:int ->
  ?on_crash:(exn -> unit) ->
  (unit -> unit) ->
  t
(** Spawns immediately; [daemon] (default true) is passed to each
    (re)spawn so a crashed-and-waiting component does not deadlock the
    scheduler. [jitter_seed] seeds the backoff-jitter RNG when the
    policy's [jitter] is non-zero (default: a hash of [name], so equal
    configurations replay identically). *)

val state : t -> state
val crashes : t -> int
val restarts : t -> int
val last_error : t -> exn option

val restarts_remaining : t -> int
(** Budget left before the circuit breaker opens. *)
