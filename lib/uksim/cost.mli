(** Calibrated primitive costs, in cycles.

    Anchored to the paper's own measurements on an Intel i7-9700K @ 3.6 GHz
    (Table 1 and §5/§6 of the Unikraft paper). Everything else in the
    simulator composes these primitives, so figure *shapes* follow from the
    same mechanisms as on the testbed. *)

val function_call : int
(** A plain (shim) function call: 4 cycles / 1.11 ns (Table 1). *)

val syscall_unikraft : int
(** Unikraft run-time syscall translation: 84 cycles / 23.33 ns (Table 1). *)

val syscall_linux : int
(** Linux syscall with KPTI and other mitigations: 222 cycles (Table 1). *)

val syscall_linux_nomitig : int
(** Linux syscall without mitigations: 154 cycles (Table 1). *)

val vm_exit : int
(** A lightweight VM exit/entry round trip (e.g. virtio kick to vhost). *)

val interrupt_delivery : int
(** Virtual interrupt injection + guest handler entry. *)

val context_switch : int
(** Guest-internal thread context switch (register save/restore). *)

val page_table_entry_write : int
(** Writing and accounting one page-table entry during boot-time
    population. *)

val tlb_miss : int
(** One 4-level page walk. *)

val memcpy_per_byte : float
(** Bulk copy cost per byte (cached, ~16 B/cycle). *)

val memcpy : int -> int
(** [memcpy n] is the cycle cost of copying [n] bytes (includes fixed
    call overhead). *)

val checksum_per_byte : float
(** Internet checksum cost per byte. *)

val checksum : int -> int

val cache_miss : int
(** Last-level cache miss / memory fetch. *)

val cache_hit : int
(** L1 hit. *)

(** {1 SMP-model costs (consumed by [lib/uksmp])} *)

val ipi : int
(** Cross-core inter-processor interrupt: send, remote vector entry and
    acknowledge. Charged to the receiving core. *)

val cache_migration : int
(** Cold-cache penalty when a stolen task starts on a different core
    (working-set re-warm, modelled as a burst of LLC misses). *)

val alloc_backend_op : int
(** One alloc/free critical section on a shared (lock-protected)
    allocator backend. *)

val arena_refill_per_obj : int
(** Per-object cost of a batched magazine refill from the shared backend
    (amortized list carving; cheaper than {!alloc_backend_op} because one
    lock acquisition covers the whole batch). *)

val arena_fast_path : int
(** Per-core magazine hit: lock-free pop/push. *)
