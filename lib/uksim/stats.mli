(** Online statistics and summaries for experiment reporting. *)

type t
(** An accumulating sample set (stores all observations). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

val clear : t -> unit
(** Drop all observations (per-trial reset); capacity is kept. *)

val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val min : t -> float
val max : t -> float
val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], linear interpolation;
    [nan] when empty. *)

val median : t -> float

val summary : t -> string
(** "n=…, mean=…, p50=…, p99=…, min=…, max=…" *)

(** {1 One-shot helpers} *)

val mean_of : float list -> float
val throughput_per_sec : events:int -> elapsed_ns:float -> float
(** Events per second of virtual time. *)
