(** Discrete-event execution engine.

    Events are closures scheduled at absolute or relative cycle timestamps on
    a shared {!Clock.t}. Running the engine pops events in time order,
    advancing the clock to each event's timestamp before executing it. *)

type t

val create : Clock.t -> t
val clock : t -> Clock.t

val at : t -> int -> (unit -> unit) -> unit
(** [at t cycle f] schedules [f] at absolute cycle [cycle]. Scheduling in the
    past raises [Invalid_argument]. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t d f] schedules [f] [d] cycles from now. Negative [d] raises
    [Invalid_argument] (like {!at} with a timestamp in the past); [d = 0]
    is valid and fires at the current cycle. *)

val after_ns : t -> float -> (unit -> unit) -> unit

val pending : t -> int
(** Number of scheduled, not-yet-run events. *)

val next_at : t -> int option
(** Absolute cycle of the earliest queued event, if any. Lets a
    coordinator (e.g. the uksmp multicore loop) order several engines on
    one time axis without popping. *)

val step : t -> bool
(** Run the next event, if any; [true] if one ran. *)

val set_observer : t -> (int -> unit) option -> unit
(** [set_observer t (Some f)] calls [f cycles] after each event runs,
    with the cycles the event's closure consumed (the idle advance to
    the event's timestamp is excluded). Used by the uktrace profiling
    sampler to attribute cycles; observers must not schedule events or
    advance the clock. *)

val run : ?until:int -> t -> unit
(** Drain the queue, or stop once the next event would be past cycle
    [until] (that event stays queued and the clock advances to [until]). *)

val run_for_ns : t -> float -> unit
(** [run_for_ns t d] runs events for the next [d] nanoseconds of virtual
    time. *)
