type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { data = [||]; size = 0; sorted = true }

let add t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let nd = Array.make (if cap = 0 then 64 else cap * 2) 0.0 in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let clear t =
  t.size <- 0;
  t.sorted <- true

let fold f acc t =
  let r = ref acc in
  for i = 0 to t.size - 1 do
    r := f !r t.data.(i)
  done;
  !r

let mean t = if t.size = 0 then nan else fold ( +. ) 0.0 t /. float_of_int t.size

let min t =
  if t.size = 0 then nan else fold Stdlib.min infinity t

let max t =
  if t.size = 0 then nan else fold Stdlib.max neg_infinity t

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let m = mean t in
    let ss = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t in
    sqrt (ss /. float_of_int (t.size - 1))
  end

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.data 0 t.size in
    Array.sort compare sub;
    Array.blit sub 0 t.data 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if t.size = 0 then nan
  else begin
    ensure_sorted t;
    let p = Stdlib.min 100.0 (Stdlib.max 0.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.size - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then t.data.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)
    end
  end

let median t = percentile t 50.0

let summary t =
  if t.size = 0 then "n=0"
  else
    Printf.sprintf "n=%d, mean=%.2f, p50=%.2f, p99=%.2f, min=%.2f, max=%.2f"
      t.size (mean t) (median t) (percentile t 99.0) (min t) (max t)

let mean_of = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let throughput_per_sec ~events ~elapsed_ns =
  if elapsed_ns <= 0.0 then 0.0 else float_of_int events /. (elapsed_ns /. 1e9)
