let function_call = 4
let syscall_unikraft = 84
let syscall_linux = 222
let syscall_linux_nomitig = 154

(* Not in Table 1; standard order-of-magnitude figures for KVM on the same
   class of hardware. A kick that reaches vhost in the host kernel costs a
   few microseconds end to end; the exit itself is ~1-2k cycles. *)
let vm_exit = 1800
let interrupt_delivery = 2600
let context_switch = 320
let page_table_entry_write = 12
let tlb_miss = 90
let memcpy_per_byte = 1.0 /. 16.0
let memcpy n = function_call + int_of_float (ceil (float_of_int n *. memcpy_per_byte))
let checksum_per_byte = 1.0 /. 8.0
let checksum n = function_call + int_of_float (ceil (float_of_int n *. checksum_per_byte))
let cache_miss = 200
let cache_hit = 4

(* SMP-model costs (lib/uksmp). Order-of-magnitude figures for the same
   hardware class as Table 1: an IPI is send + remote vector entry; a
   task that changes cores eats a burst of LLC misses re-warming its
   working set; a shared-allocator critical section is a few hundred
   cycles of list surgery under the lock. *)
let ipi = 1400
let cache_migration = 2400
let alloc_backend_op = 400
let arena_refill_per_obj = 60
let arena_fast_path = 24
