type t = {
  clock : Clock.t;
  queue : (unit -> unit) Heapq.t;
  mutable observer : (int -> unit) option;
}

let create clock = { clock; queue = Heapq.create (); observer = None }
let clock t = t.clock
let set_observer t f = t.observer <- f

let at t cycle f =
  if cycle < Clock.cycles t.clock then invalid_arg "Engine.at: event in the past";
  Heapq.push t.queue cycle f

let after t d f =
  if d < 0 then invalid_arg "Engine.after: negative delay";
  at t (Clock.cycles t.clock + d) f

let after_ns t d = after t (Clock.cycles_of_ns d)
let pending t = Heapq.length t.queue
let next_at t = match Heapq.peek t.queue with Some (cycle, _) -> Some cycle | None -> None

let step t =
  match Heapq.pop t.queue with
  | None -> false
  | Some (cycle, f) ->
      if cycle > Clock.cycles t.clock then
        Clock.advance t.clock (cycle - Clock.cycles t.clock);
      (match t.observer with
      | None -> f ()
      | Some obs ->
          let c0 = Clock.cycles t.clock in
          f ();
          obs (Clock.cycles t.clock - c0));
      true

let rec run ?until t =
  match until with
  | None -> if step t then run t
  | Some limit -> (
      match Heapq.peek t.queue with
      | Some (cycle, _) when cycle <= limit ->
          ignore (step t);
          run ~until:limit t
      | Some _ | None ->
          if Clock.cycles t.clock < limit then
            Clock.advance t.clock (limit - Clock.cycles t.clock))

let run_for_ns t d = run ~until:(Clock.cycles t.clock + Clock.cycles_of_ns d) t
