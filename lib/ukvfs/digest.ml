(* The shared content-addressing primitives: FNV-1a sampling, an
   avalanche mix, and the order-independent XOR page fold. Blockfs's
   object digests and ukstore's merkle hashes are both built from these,
   so the two stores agree on what "the digest scheme" means. *)

let page = 4096
let sample = 64

let fnv buf off len =
  let h = ref 0x3bf29ce484222325 in
  for i = off to off + len - 1 do
    h := ((!h lxor Char.code (Bytes.get buf i)) * 0x100000001b3) land max_int
  done;
  !h

let fnv_string s =
  let h = ref 0x3bf29ce484222325 in
  String.iter (fun c -> h := ((!h lxor Char.code c) * 0x100000001b3) land max_int) s;
  !h

let mix a b =
  let z = ref ((a + 0x101 + (b * 0x2545F4914F6CDD1D)) land max_int) in
  z := ((!z lxor (!z lsr 30)) * 0x1b8b2188105bd9f) land max_int;
  z := ((!z lxor (!z lsr 27)) * 0x194d049bb13311) land max_int;
  !z lxor (!z lsr 31)

(* Fold the pages covered by [buf[pos..pos+len)], which holds the object
   bytes [off..off+len); [off] must be page-aligned. Per 4 KiB page, an
   FNV of the page's first [sample] bytes is mixed with the page index
   and XOR-folded — order-independent, so chunks can be verified in
   completion order. *)
let fold_pages acc buf ~pos ~off ~len =
  let d = ref acc in
  let p = ref 0 in
  while !p < len do
    let n = min sample (len - !p) in
    d := !d lxor mix ((off + !p) / page) (fnv buf (pos + !p) n);
    p := !p + page
  done;
  !d

(* Full-content hashes for small objects (merkle nodes, commits, values):
   every byte contributes, the length breaks extension ambiguity. *)
let bytes_hash b = mix (fnv b 0 (Bytes.length b)) (Bytes.length b)
let string_hash s = mix (fnv_string s) (String.length s)
