(** Blockfs — a content-addressed, read-only object store over a
    {!Ukblock.Blockdev}.

    The on-disk layout is a tiny superblock (sectors 0..7 hold a textual
    manifest of [name -> (lba, size, digest)]) followed by the objects,
    sector-aligned. Objects are immutable once published; the intended
    naming discipline is content addressing (the object's name {e is} its
    digest), which is what {!Ukapps.Infer} uses for model weights.

    Digests are positional page samples: for every 4 KiB page, an FNV-1a
    hash of the page's first 64 bytes is mixed with the page index and
    XOR-folded. The fold is order-independent, so {!stream} can verify
    chunks in completion order (the device finishes a short tail chunk
    before earlier full ones) without reordering.

    Two read paths, mirroring {!Shfs}'s split:

    - {!to_fs} mounts the store under vfscore. Reads go through
      [read_sync] one request at a time and pay a full per-byte copy —
      the generic path, fine for metadata and small files.
    - {!stream} is the specialized bulk path: it keeps a deep window of
      chunk-sized reads in flight on the device queue, so per-chunk host
      latency and DMA transfer overlap, and hands each completed chunk to
      the caller {e without} a counted guest copy (the device's
      completion latency already carries the transfer cost). Guest-side
      work per page is only the 64-byte digest verification. This is
      what makes cold-booting a large-model image cheaper per byte than
      a snapshot clone's eager full-footprint copy. *)

type t

val create : clock:Uksim.Clock.t -> Ukblock.Blockdev.t -> t
(** Format the device with an empty manifest (host-side population
    entry point). *)

val attach : clock:Uksim.Clock.t -> Ukblock.Blockdev.t -> (t, Fs.errno) result
(** Read and parse the superblock of an already-populated device
    ([Einval] if it is not a Blockfs). *)

val add : t -> name:string -> bytes -> (unit, Fs.errno) result
(** Publish a small object ([Eexist] on duplicates, [Enospc] when the
    data area is full). *)

val add_stream :
  t ->
  name:string ->
  size:int ->
  fill:(off:int -> bytes -> pos:int -> len:int -> unit) ->
  (int, Fs.errno) result
(** Publish a large object without materializing it: [fill ~off buf ~pos
    ~len] must write the object's bytes [off, off+len) into
    [buf[pos..pos+len)]. Returns the object's digest. *)

val digest_of_stream :
  size:int -> fill:(off:int -> bytes -> pos:int -> len:int -> unit) -> int
(** Pure host-side digest of a generated stream — what {!add_stream}
    would return, without a device. Lets a publisher derive an object's
    content-address name before writing it. *)

val exists : t -> string -> bool
val names : t -> string list
val size_of : t -> string -> (int, Fs.errno) result
val digest_of : t -> string -> (int, Fs.errno) result

type streamed = { bytes : int; digest : int; chunks : int }

val stream :
  t ->
  name:string ->
  ?window:int ->
  ?chunk_sectors:int ->
  ?f:(bytes -> off:int -> len:int -> unit) ->
  unit ->
  (streamed, Fs.errno) result
(** Stream an object through the device queue with [window] (default 32)
    chunks of [chunk_sectors] (default 512, i.e. 256 KiB) in flight, and
    verify its digest on the fly. [f buf ~off ~len] receives each
    completed chunk ([off] is the object offset — chunks may arrive out
    of order). Returns [Eio] on a digest mismatch against the manifest
    (bit rot, or a tampered content address). *)

val to_fs : t -> Fs.t
(** vfscore-mountable read-only view (the generic copying path). *)
