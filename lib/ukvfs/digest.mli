(** Shared content-addressing primitives.

    One digest scheme for both block-layer stores: {!Blockfs} names
    read-only objects by the page-sampling {!fold_pages} digest, and
    [Ukstore] builds its merkle hashes from the same {!fnv}/{!mix}
    primitives with the same XOR-fold order-independence property. *)

val page : int
(** Sampling granularity: one probe per 4 KiB page. *)

val sample : int
(** Bytes hashed per page probe (64). *)

val fnv : bytes -> int -> int -> int
(** [fnv buf off len] is FNV-1a over [buf[off..off+len)], masked to
    [max_int]. *)

val fnv_string : string -> int

val mix : int -> int -> int
(** Avalanche mix of two words (splitmix-style finalizer); the
    combinator under every fold below. *)

val fold_pages : int -> bytes -> pos:int -> off:int -> len:int -> int
(** [fold_pages acc buf ~pos ~off ~len] XOR-folds per-page samples of the
    object bytes [off, off+len) held at [buf[pos..)] into [acc]. [off]
    must be page-aligned. Order-independent across chunks. *)

val bytes_hash : bytes -> int
(** Full-content hash for small objects (every byte contributes). *)

val string_hash : string -> int
