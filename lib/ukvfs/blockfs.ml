module B = Ukblock.Blockdev

(* On-disk layout: sectors 0..7 hold the manifest ("blockfs1" magic line,
   then one "name lba size digest" line per object), data follows. *)
let sb_sectors = 8
let page = Digest.page
let sample = Digest.sample

(* Guest-side costs. Lookup is a manifest scan (the store holds a handful
   of large objects, not a directory tree); verification is the per-page
   64-byte sample checksum — the whole point of sampling is that the
   integrity check does not re-touch every streamed byte. *)
let lookup_base_cost = 60
let lookup_probe_cost = 20
let read_base_cost = 30

type obj = { name : string; lba : int; size : int; digest : int }

type t = {
  clock : Uksim.Clock.t;
  dev : B.t;
  mutable objs : obj list; (* oldest first *)
  mutable next_lba : int;
  open_handles : (int, obj) Hashtbl.t;
  mutable next_handle : int;
}

let charge t c = Uksim.Clock.advance t.clock c

(* --- digest: XOR-fold of (page index, FNV of the page's first 64 B) -----
   The primitives live in the shared {!Digest} module; ukstore's merkle
   hashing composes the same ones. *)

let digest_fold = Digest.fold_pages

(* --- superblock ---------------------------------------------------------- *)

let magic = "blockfs1"

let write_sb t =
  let b = Buffer.create 256 in
  Buffer.add_string b (magic ^ "\n");
  List.iter
    (fun o -> Buffer.add_string b (Printf.sprintf "%s %d %d %016x\n" o.name o.lba o.size o.digest))
    t.objs;
  let cap = sb_sectors * t.dev.B.sector_size in
  if Buffer.length b > cap then invalid_arg "Blockfs: manifest overflows the superblock";
  let sb = Bytes.make cap '\000' in
  Buffer.blit b 0 sb 0 (Buffer.length b);
  match t.dev.B.write_sync ~lba:0 sb with
  | Ok () -> ()
  | Error e -> invalid_arg ("Blockfs: superblock write failed: " ^ B.error_to_string e)

let create ~clock dev =
  let t =
    { clock; dev; objs = []; next_lba = sb_sectors;
      open_handles = Hashtbl.create 8; next_handle = 1 }
  in
  write_sb t;
  t

let attach ~clock dev =
  match dev.B.read_sync ~lba:0 ~sectors:sb_sectors with
  | Error _ -> Error Fs.Eio
  | Ok raw -> (
      let text = Bytes.to_string raw in
      let lines = String.split_on_char '\n' text in
      match lines with
      | m :: rest when m = magic ->
          let objs =
            List.filter_map
              (fun line ->
                match String.split_on_char ' ' (String.trim line) with
                | [ name; lba; size; dg ] ->
                    Some
                      { name; lba = int_of_string lba; size = int_of_string size;
                        digest = int_of_string ("0x" ^ dg) }
                | _ -> None)
              rest
          in
          let next_lba =
            List.fold_left
              (fun acc o -> max acc (o.lba + ((o.size + dev.B.sector_size - 1) / dev.B.sector_size)))
              sb_sectors objs
          in
          Ok
            { clock; dev; objs; next_lba; open_handles = Hashtbl.create 8;
              next_handle = 1 }
      | _ -> Error Fs.Einval)

(* --- publication (host-side population) ---------------------------------- *)

let find t name =
  charge t lookup_base_cost;
  let rec probe = function
    | [] -> None
    | o :: rest ->
        charge t lookup_probe_cost;
        if String.equal o.name name then Some o else probe rest
  in
  probe t.objs

let exists t name = find t name <> None
let names t = List.map (fun o -> o.name) t.objs

let size_of t name =
  match find t name with Some o -> Ok o.size | None -> Error Fs.Enoent

let digest_of t name =
  match find t name with Some o -> Ok o.digest | None -> Error Fs.Enoent

(* 1 MiB publication chunks: few enough write_syncs that host-side
   population of a 512 MB object stays cheap. *)
let pub_chunk = 1 lsl 20

(* Host-side pure digest of a generated stream (no device, no clock) —
   lets publishers compute an object's content address before writing a
   single byte. *)
let digest_of_stream ~size ~fill =
  let buf = Bytes.create pub_chunk in
  let digest = ref 0 in
  let off = ref 0 in
  while !off < size do
    let len = min pub_chunk (size - !off) in
    Bytes.fill buf 0 len '\000';
    fill ~off:!off buf ~pos:0 ~len;
    digest := digest_fold !digest buf ~pos:0 ~off:!off ~len;
    off := !off + len
  done;
  !digest

let add_stream t ~name ~size ~fill =
  if exists t name then Error Fs.Eexist
  else if size < 0 then Error Fs.Einval
  else begin
    let ss = t.dev.B.sector_size in
    let sectors = (size + ss - 1) / ss in
    if t.next_lba + sectors > t.dev.B.capacity_sectors then Error Fs.Enospc
    else begin
      let lba = t.next_lba in
      let buf = Bytes.create pub_chunk in
      let digest = ref 0 in
      let off = ref 0 in
      let ok = ref true in
      while !ok && !off < size do
        let len = min pub_chunk (size - !off) in
        (* Round the tail up to a sector multiple, zero-padded. *)
        let wlen = (len + ss - 1) / ss * ss in
        Bytes.fill buf 0 wlen '\000';
        fill ~off:!off buf ~pos:0 ~len;
        digest := digest_fold !digest buf ~pos:0 ~off:!off ~len;
        (match t.dev.B.write_sync ~lba:(lba + (!off / ss)) (Bytes.sub buf 0 wlen) with
        | Ok () -> ()
        | Error _ -> ok := false);
        off := !off + len
      done;
      if not !ok then Error Fs.Eio
      else begin
        t.objs <- t.objs @ [ { name; lba; size; digest = !digest } ];
        t.next_lba <- lba + sectors;
        write_sb t;
        Ok !digest
      end
    end
  end

let add t ~name content =
  let size = Bytes.length content in
  match
    add_stream t ~name ~size ~fill:(fun ~off buf ~pos ~len ->
        Bytes.blit content off buf pos len)
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

(* --- the specialized streaming read path --------------------------------- *)

type streamed = { bytes : int; digest : int; chunks : int }

let stream t ~name ?(window = 32) ?(chunk_sectors = 512) ?(f = fun _ ~off:_ ~len:_ -> ()) () =
  match find t name with
  | None -> Error Fs.Enoent
  | Some o ->
      let ss = t.dev.B.sector_size in
      let total_sectors = (o.size + ss - 1) / ss in
      let submitted = ref 0 (* sectors *) in
      let inflight = ref 0 (* chunks *) in
      let done_bytes = ref 0 in
      let digest = ref 0 in
      let chunks = ref 0 in
      let failed = ref false in
      let top_up () =
        let reqs = ref [] in
        let sect_acc = ref 0 in
        while List.length !reqs < window - !inflight && !submitted + !sect_acc < total_sectors do
          let sect = min chunk_sectors (total_sectors - !submitted - !sect_acc) in
          reqs := B.Read { lba = o.lba + !submitted + !sect_acc; sectors = sect } :: !reqs;
          sect_acc := !sect_acc + sect
        done;
        let arr = Array.of_list (List.rev !reqs) in
        if Array.length arr > 0 then begin
          (* One kick per window, not per chunk. The device may accept
             fewer than offered; only the accepted prefix counts. *)
          let n = t.dev.B.submit arr in
          for i = 0 to n - 1 do
            match arr.(i) with
            | B.Read { sectors; _ } ->
                submitted := !submitted + sectors;
                incr inflight
            | B.Write _ -> ()
          done
        end
      in
      let process (c : B.completion) =
        decr inflight;
        incr chunks;
        match (c.B.req, c.B.result) with
        | B.Read { lba; sectors }, Ok data ->
            let off = (lba - o.lba) * ss in
            let len = min (o.size - off) (sectors * ss) in
            charge t (read_base_cost + ((len + page - 1) / page * Uksim.Cost.checksum sample));
            digest := !digest lxor digest_fold 0 data ~pos:0 ~off ~len;
            f data ~off ~len;
            done_bytes := !done_bytes + len
        | _, Error _ | B.Write _, _ -> failed := true
      in
      while (not !failed) && !done_bytes < o.size do
        top_up ();
        match t.dev.B.poll_completions ~max:window with
        | [] -> Uksim.Clock.advance t.clock 500
        | cs -> List.iter process cs
      done;
      if !failed then Error Fs.Eio
      else if !digest <> o.digest then Error Fs.Eio
      else Ok { bytes = !done_bytes; digest = !digest; chunks = !chunks }

(* --- generic vfscore view ------------------------------------------------- *)

let to_fs t =
  let base = Fs.not_supported "blockfs" in
  let resolve path =
    match Fs.split_path path with [ n ] -> n | _ -> path
  in
  let open_direct name =
    match find t name with
    | None -> Error Fs.Enoent
    | Some o ->
        let h = t.next_handle in
        t.next_handle <- h + 1;
        Hashtbl.replace t.open_handles h o;
        Ok h
  in
  {
    base with
    Fs.open_file =
      (fun path ~create ->
        if create then Error Fs.Enosys else open_direct (resolve path));
    read =
      (fun h ~off ~len ->
        charge t read_base_cost;
        match Hashtbl.find_opt t.open_handles h with
        | None -> Error Fs.Ebadf
        | Some o ->
            if off < 0 || len < 0 then Error Fs.Einval
            else begin
              let n = max 0 (min len (o.size - off)) in
              if n = 0 then Ok Bytes.empty
              else begin
                let ss = t.dev.B.sector_size in
                let first = off / ss and last = (off + n - 1) / ss in
                match
                  t.dev.B.read_sync ~lba:(o.lba + first) ~sectors:(last - first + 1)
                with
                | Error _ -> Error Fs.Eio
                | Ok raw ->
                    (* The generic path pays the copy the streaming path
                       avoids. *)
                    charge t (Uksim.Cost.memcpy n);
                    Ok (Bytes.sub raw (off - (first * ss)) n)
              end
            end);
    close = (fun h -> Hashtbl.remove t.open_handles h);
    stat =
      (fun path ->
        match find t (resolve path) with
        | Some o -> Ok { Fs.size = o.size; ftype = Fs.Regular }
        | None -> Error Fs.Enoent);
    readdir = (fun _ -> Ok (List.sort compare (names t)));
    fsync = (fun _ -> Ok ());
  }
