(** uk_ring: bounded single-producer/single-consumer ring buffer — the
    descriptor-ring shape under every virtio queue (FreeBSD's buf_ring,
    which Unikraft's lib/ukring ports).

    A power-of-two slot array indexed by free-running head/tail counters;
    producer touches only [tail], consumer only [head], so in a real
    kernel the two sides never contend on a lock. Burst variants mirror
    the uknetdev/ukblock batch APIs.

    The single-producer half of that contract is easy to violate once
    work stealing moves threads between cores, so it is enforced at
    runtime: producers that identify themselves via {!enqueue_from}
    register with the ring, and a second producer identity on an SPSC
    ring raises instead of silently corrupting. Rings created with
    [~mpsc:true] model buf_ring's CAS-based multi-producer variant —
    any producer may enqueue, with per-producer accounting. *)

type 'a t

val create : ?mpsc:bool -> capacity:int -> unit -> 'a t
(** Rounded up to a power of two; capacity must be positive. [mpsc]
    (default false) permits multiple distinct producers in
    {!enqueue_from}. *)

val is_mpsc : 'a t -> bool

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val enqueue : 'a t -> 'a -> bool
(** [false] when full. Anonymous — no producer contract is checked; use
    {!enqueue_from} wherever the producer can be identified. *)

val enqueue_from : 'a t -> producer:int -> 'a -> bool
(** Enqueue, identifying the producer (e.g. a core id). On an SPSC ring
    the first producer registers as the owner and any other producer
    raises [Invalid_argument]; on an [~mpsc:true] ring all producers are
    accepted. [false] when full. *)

val producers : 'a t -> (int * int) list
(** [(producer, accepted enqueues)] for every producer seen by
    {!enqueue_from}, sorted by producer id. *)

val dequeue : 'a t -> 'a option

val peek : 'a t -> 'a option

val enqueue_burst : 'a t -> 'a array -> int
(** As many as fit; returns the count accepted. *)

val dequeue_burst : 'a t -> max:int -> 'a list
(** In FIFO order. *)

val enqueued_total : 'a t -> int
val dropped_total : 'a t -> int
(** Rejected enqueues (ring-full events). *)
