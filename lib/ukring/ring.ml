type 'a t = {
  slots : 'a option array;
  mask : int;
  mpsc : bool; (* multi-producer enqueues allowed (buf_ring's CAS variant) *)
  mutable head : int; (* next dequeue position (free-running) *)
  mutable tail : int; (* next enqueue position (free-running) *)
  mutable owner : int option; (* SPSC: the producer registered by enqueue_from *)
  per_producer : (int, int) Hashtbl.t; (* producer -> accepted enqueues *)
  mutable enq_total : int;
  mutable drop_total : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(mpsc = false) ~capacity () =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let cap = next_pow2 capacity in
  { slots = Array.make cap None; mask = cap - 1; mpsc; head = 0; tail = 0; owner = None;
    per_producer = Hashtbl.create 4; enq_total = 0; drop_total = 0 }

let is_mpsc t = t.mpsc

let capacity t = t.mask + 1
let length t = t.tail - t.head
let is_empty t = t.head = t.tail
let is_full t = length t = capacity t

let enqueue t v =
  if is_full t then begin
    t.drop_total <- t.drop_total + 1;
    false
  end
  else begin
    t.slots.(t.tail land t.mask) <- Some v;
    t.tail <- t.tail + 1;
    t.enq_total <- t.enq_total + 1;
    true
  end

let enqueue_from t ~producer v =
  if not t.mpsc then begin
    match t.owner with
    | None -> t.owner <- Some producer
    | Some p when p <> producer ->
        invalid_arg
          (Printf.sprintf
             "Ring.enqueue_from: SPSC ring owned by producer %d, enqueue from %d \
              (create with ~mpsc:true for multi-producer use)"
             p producer)
    | Some _ -> ()
  end;
  let accepted = enqueue t v in
  if accepted then
    Hashtbl.replace t.per_producer producer
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_producer producer));
  accepted

let producers t =
  Hashtbl.fold (fun p n acc -> (p, n) :: acc) t.per_producer []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let dequeue t =
  if is_empty t then None
  else begin
    let i = t.head land t.mask in
    let v = t.slots.(i) in
    t.slots.(i) <- None;
    t.head <- t.head + 1;
    v
  end

let peek t = if is_empty t then None else t.slots.(t.head land t.mask)

let enqueue_burst t items =
  let room = capacity t - length t in
  let n = min room (Array.length items) in
  for i = 0 to n - 1 do
    ignore (enqueue t items.(i))
  done;
  t.drop_total <- t.drop_total + (Array.length items - n);
  n

let dequeue_burst t ~max:max_n =
  (* Explicit recursion: the dequeues must happen in order (List.init's
     application order is unspecified). *)
  let n = min max_n (length t) in
  let rec take k acc = if k = 0 then List.rev acc else take (k - 1) (Option.get (dequeue t) :: acc) in
  take n []

let enqueued_total t = t.enq_total
let dropped_total t = t.drop_total
