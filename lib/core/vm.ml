type env = {
  config : Config.t;
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  sched : Uksched.Sched.t option;
  alloc : Ukalloc.Alloc.t;
  registry : Ukalloc.Alloc.Registry.t;
  mmu : Ukmmu.Pagetable.t;
  shim : Uksyscall.Shim.t;
  dev : Uknetdev.Netdev.t option;
  stack : Uknetstack.Stack.t option;
  vfs : Ukvfs.Vfs.t option;
  shfs : Ukvfs.Shfs.t option;
  debug : Ukdebug.Debug.t;
  params : Uklibparam.Libparam.t;
  argv : string list;  (** post-"--" remainder of the boot command line *)
  asan : Ukalloc.Asan.t option;
  mpk : Ukmpk.Mpk.t option;
  breakdown : Ukplat.Vmm.boot_breakdown;
  report : Ukboot.Boot.report;
}

let heap_base = 1 lsl 26 (* 64 MiB: clear of image + boot stacks *)

(* Largest power of two <= n (buddy wants a power-of-two region). *)
let floor_pow2 n =
  let rec go p = if p * 2 > n then p else go (p * 2) in
  go 1

let make_alloc (c : Config.t) ~clock =
  let len = max (1 lsl 20) (c.mem_bytes - (c.mem_bytes / 8)) in
  match c.alloc with
  | Config.Buddy ->
      let len = floor_pow2 len in
      Ukalloc.Buddy.create ~clock ~base:len ~len
  | Config.Tlsf -> Ukalloc.Tlsf.create ~clock ~base:heap_base ~len
  | Config.Tinyalloc -> Ukalloc.Tinyalloc.create ~clock ~base:heap_base ~len ()
  | Config.Mimalloc -> Ukalloc.Mimalloc.create ~clock ~base:heap_base ~len
  | Config.Bootalloc -> Ukalloc.Bootalloc.create ~clock ~base:heap_base ~len
  | Config.Oscar -> Ukalloc.Oscar.create ~clock ~base:heap_base ~len

let paging_mode = function
  | Config.Static_pt -> Ukmmu.Pagetable.Static
  | Config.Dynamic_pt -> Ukmmu.Pagetable.Dynamic
  | Config.Protected32_pt -> Ukmmu.Pagetable.Protected32

let boot ~vmm ?clock ?engine ?wire ?(ip = "172.44.0.2") ?(netmask = "255.255.255.0") ?gateway
    ?(mac = 0x00163e001002) ?host_share ?(cmdline = "") (c : Config.t) =
  match Config.resolve c with
  | Error e -> Error e
  | Ok _ -> (
      match (c.net, wire) with
      | (Config.Vhost_net | Config.Vhost_user), None ->
          Error "networking configured but no wire attached"
      | (Config.No_net | Config.Vhost_net | Config.Vhost_user), _ -> (
          (* Kernel command line: uklibparam tunables first, app argv
             after "--". *)
          let params = Uklibparam.Libparam.create () in
          let reg_p = Uklibparam.Libparam.register params in
          reg_p ~lib:"netdev" ~name:"ip" ~doc:"interface address"
            (Uklibparam.Libparam.String ip);
          reg_p ~lib:"netdev" ~name:"netmask" ~doc:"interface netmask"
            (Uklibparam.Libparam.String netmask);
          reg_p ~lib:"netdev" ~name:"gw" ~doc:"default gateway"
            (Uklibparam.Libparam.String (Option.value gateway ~default:""));
          reg_p ~lib:"ukdebug" ~name:"loglevel" ~doc:"0=crit..4=debug"
            (Uklibparam.Libparam.Int 3);
          match Uklibparam.Libparam.parse params cmdline with
          | Error e -> Error ("bad command line: " ^ e)
          | Ok argv ->
          let pstr lib name fallback =
            match Uklibparam.Libparam.get_string params ~lib ~name with
            | Some "" | None -> fallback
            | Some s -> s
          in
          let ip = pstr "netdev" "ip" ip in
          let netmask = pstr "netdev" "netmask" netmask in
          let gateway =
            match Uklibparam.Libparam.get_string params ~lib:"netdev" ~name:"gw" with
            | Some "" | None -> gateway
            | Some g -> Some g
          in
          let clock = match clock with Some c -> c | None -> Uksim.Clock.create () in
          let engine = match engine with Some e -> e | None -> Uksim.Engine.create clock in
          (* Component slots filled by the constructors below. *)
          let mmu = ref None in
          let alloc = ref None in
          let sched = ref None in
          let dev = ref None in
          let stack = ref None in
          let vfs = ref None in
          let shfs = ref None in
          let asan_t = ref None in
          let mpk_t = ref None in
          let registry = Ukalloc.Alloc.Registry.create () in
          let loglevel =
            match Uklibparam.Libparam.get_int params ~lib:"ukdebug" ~name:"loglevel" with
            | Some 0 -> Ukdebug.Debug.Crit
            | Some 1 -> Ukdebug.Debug.Error
            | Some 2 -> Ukdebug.Debug.Warn
            | Some 4 -> Ukdebug.Debug.Debug
            | Some _ | None -> Ukdebug.Debug.Info
          in
          let debug = Ukdebug.Debug.create ~clock ~threshold:loglevel () in
          Ukdebug.Debug.Trace.register debug "boot.ctor";
          let shim = Uksyscall.Shim.create ~clock ~mode:Uksyscall.Shim.Native_link in
          let tab = Ukboot.Boot.Inittab.create () in
          let reg ~level ~name ctor =
            Ukboot.Boot.Inittab.register tab ~level ~name (fun () ->
                Ukdebug.Debug.Trace.fire debug "boot.ctor" level;
                Ukdebug.Debug.printk debug Ukdebug.Debug.Info ("init " ^ name);
                ctor ())
          in
          reg ~level:Ukboot.Boot.Level.paging ~name:"ukmmu" (fun () ->
              mmu := Some (Ukmmu.Pagetable.create ~clock ~mode:(paging_mode c.paging)
                             ~ram_bytes:c.mem_bytes));
          reg ~level:Ukboot.Boot.Level.alloc
            ~name:(Printf.sprintf "ukalloc/%s" (Config.alloc_backend_name c.alloc))
            (fun () ->
              let a = make_alloc c ~clock in
              if c.asan then begin
                (* §7: sanitized build — the heap every consumer sees is
                   the redzoned, quarantined wrapper. *)
                let wrapped = Ukalloc.Asan.wrap ~clock a in
                asan_t := Some wrapped;
                let traced = Ukalloc.Alloc.traced ~clock (Ukalloc.Asan.alloc wrapped) in
                Ukalloc.Alloc.Registry.register registry traced;
                alloc := Some traced
              end
              else begin
                let traced = Ukalloc.Alloc.traced ~clock a in
                Ukalloc.Alloc.Registry.register registry traced;
                alloc := Some traced
              end);
          (match c.sched with
          | Config.None_ -> ()
          | Config.Coop ->
              reg ~level:Ukboot.Boot.Level.sched ~name:"uksched/coop" (fun () ->
                  sched := Some (Uksched.Sched.create_cooperative ~clock ~engine))
          | Config.Preempt ->
              reg ~level:Ukboot.Boot.Level.sched ~name:"uksched/preempt" (fun () ->
                  sched :=
                    Some
                      (Uksched.Sched.create_preemptive
                         ~slice_cycles:(Uksim.Clock.cycles_of_ns 1.0e7) ~clock ~engine)));
          (match c.net with
          | Config.No_net -> ()
          | Config.Vhost_net | Config.Vhost_user ->
              let backend =
                match c.net with
                | Config.Vhost_user -> Uknetdev.Virtio_net.Vhost_user
                | Config.Vhost_net | Config.No_net -> Uknetdev.Virtio_net.Vhost_net
              in
              reg ~level:Ukboot.Boot.Level.bus ~name:"virtio-net" (fun () ->
                  let w = Option.get wire in
                  let d = Uknetdev.Virtio_net.create ~clock ~engine ~backend ~wire:w () in
                  dev := Some d);
              reg ~level:Ukboot.Boot.Level.bus ~name:"lwip" (fun () ->
                  let d = Option.get !dev in
                  let s =
                    Uknetstack.Stack.create ~clock ~engine ?sched:!sched ?alloc:!alloc ~dev:d
                      {
                        Uknetstack.Stack.mac = Uknetstack.Addr.Mac.of_int mac;
                        ip = Uknetstack.Addr.Ipv4.of_string ip;
                        netmask = Uknetstack.Addr.Ipv4.of_string netmask;
                        gateway = Option.map Uknetstack.Addr.Ipv4.of_string gateway;
                      }
                  in
                  (match !sched with Some _ -> Uknetstack.Stack.start s | None -> ());
                  stack := Some s));
          (match c.fs with
          | Config.No_fs -> ()
          | Config.Ramfs ->
              reg ~level:Ukboot.Boot.Level.fs ~name:"vfscore+ramfs" (fun () ->
                  let v = Ukvfs.Vfs.create ~clock in
                  (match Ukvfs.Vfs.mount v ~at:"/" (Ukvfs.Ramfs.create ~clock ()) with
                  | Ok () -> ()
                  | Error e -> failwith (Ukvfs.Fs.errno_to_string e));
                  vfs := Some v)
          | Config.Ninep ->
              reg ~level:Ukboot.Boot.Level.fs ~name:"vfscore+9pfs" (fun () ->
                  let host_clock = Uksim.Clock.create () in
                  let backing =
                    match host_share with
                    | Some fs -> fs
                    | None -> Ukvfs.Ramfs.create ~clock:host_clock ()
                  in
                  let server = Ukvfs.Ninep_server.create ~backing in
                  let transport = Ukvfs.Ninep_client.Transport.virtio_9p ~clock ~server in
                  match Ukvfs.Ninep_client.create ~transport with
                  | Error e -> failwith e
                  | Ok fs ->
                      let v = Ukvfs.Vfs.create ~clock in
                      (match Ukvfs.Vfs.mount v ~at:"/" fs with
                      | Ok () -> ()
                      | Error e -> failwith (Ukvfs.Fs.errno_to_string e));
                      vfs := Some v)
          | Config.Shfs_fs ->
              reg ~level:Ukboot.Boot.Level.fs ~name:"shfs" (fun () ->
                  shfs := Some (Ukvfs.Shfs.create ~clock ())));
          if c.mpk then
            reg ~level:Ukboot.Boot.Level.early ~name:"ukmpk" (fun () ->
                mpk_t := Some (Ukmpk.Mpk.create ~clock));
          (* POSIX surface: register the supported syscall set when a real
             libc is configured. *)
          (match c.libc with
          | Config.Musl | Config.Newlib ->
              reg ~level:Ukboot.Boot.Level.late ~name:"posix/syscall-shim" (fun () ->
                  Uksyscall.Appdb.install_supported shim;
                  Uksim.Clock.advance clock 9000)
          | Config.Nolibc -> ());
          let nics = if c.net = Config.No_net then 0 else 1 in
          let with_9p = c.fs = Config.Ninep in
          match
            Ukplat.Vmm.boot vmm ~clock ~nics ~with_9p ~inittab:tab ()
          with
          | breakdown, report ->
              Ok
                {
                  config = c;
                  clock;
                  engine;
                  sched = !sched;
                  alloc = Option.get !alloc;
                  registry;
                  mmu = Option.get !mmu;
                  shim;
                  dev = !dev;
                  stack = !stack;
                  vfs = !vfs;
                  shfs = !shfs;
                  debug;
                  params;
                  argv;
                  asan = !asan_t;
                  mpk = !mpk_t;
                  breakdown;
                  report;
                }
          | exception Failure e -> Error e))

let run_main env f =
  match env.sched with
  | Some sched ->
      let _ = Uksched.Sched.spawn sched ~name:"main" (fun () -> f env) in
      Uksched.Sched.run sched
  | None -> f env
