(** The syscall shim micro-library (paper §4, Table 1).

    Libraries register handlers per syscall number; the shim generates a
    libc-level syscall interface. Dispatch cost depends on how the
    application reached us:

    - {!Native_link}: application objects linked against Unikraft — the
      "syscall" is a plain function call (4 cycles, Table 1 bottom row);
    - {!Binary_compat}: run-time syscall-instruction translation as in
      OSv/HermiTux-style binary compatibility (84 cycles);
    - {!Linux_vm} / {!Linux_vm_nomitig}: baseline Linux guest syscall cost
      with/without KPTI and other mitigations (222 / 154 cycles) — used by
      the ukos baseline models.

    Unregistered syscalls return [ENOSYS] (the paper notes many
    applications run fine with some syscalls stubbed this way). *)

type dispatch = Native_link | Binary_compat | Linux_vm | Linux_vm_nomitig

val dispatch_cost : dispatch -> int

type handler = int array -> (int, Fs_errno.t) result
(** Arguments are raw register values; result is the return value or an
    errno. *)

and t

val create : clock:Uksim.Clock.t -> mode:dispatch -> t
val mode : t -> dispatch

val register : t -> sysno:int -> handler -> unit
(** Raises [Invalid_argument] on out-of-range numbers or duplicates. *)

val register_stub : t -> sysno:int -> ret:int -> unit
(** Register a trivial stub returning [ret] (the paper's "quickly stubbed
    in a unikernel context", e.g. getcpu -> 0). *)

val supports : t -> int -> bool
val supported_count : t -> int
val supported_set : t -> int list

val call : t -> sysno:int -> int array -> (int, Fs_errno.t) result
(** Charges the dispatch cost, then runs the handler; unknown syscalls
    charge the cost and return [Error Enosys]. *)

val enosys_hits : t -> (int * int) list
(** (sysno, count) of ENOSYS returns — which stubs the workload leans
    on. *)

val enosys_count : t -> int
(** Total ENOSYS returns across all syscall numbers. Also surfaced (with
    the per-sysno call counts, keyed ["calls.<name>"]) through a
    ["uksyscall.shim"] uktrace source registered at {!create} time, so a
    registry snapshot makes ENOSYS leaks observable. *)

val calls_made : t -> int

val set_tracer : t -> (int -> unit) option -> unit
(** strace-style hook invoked with each syscall number before dispatch —
    the dynamic-analysis instrument behind the paper's Fig 5/7 study. *)

val call_counts : t -> (int * int) list
(** (sysno, calls) histogram across the shim's lifetime, sorted. *)
