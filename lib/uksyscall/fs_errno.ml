type t =
  | Enosys
  | Enoent
  | Ebadf
  | Einval
  | Enomem
  | Eagain
  | Enotsup
  | Efault

let to_code = function
  | Enosys -> -38
  | Enoent -> -2
  | Ebadf -> -9
  | Einval -> -22
  | Enomem -> -12
  | Eagain -> -11
  | Enotsup -> -95
  | Efault -> -14

let to_string = function
  | Enosys -> "ENOSYS"
  | Enoent -> "ENOENT"
  | Ebadf -> "EBADF"
  | Einval -> "EINVAL"
  | Enomem -> "ENOMEM"
  | Eagain -> "EAGAIN"
  | Enotsup -> "ENOTSUP"
  | Efault -> "EFAULT"

let of_string = function
  | "ENOSYS" -> Some Enosys
  | "ENOENT" -> Some Enoent
  | "EBADF" -> Some Ebadf
  | "EINVAL" -> Some Einval
  | "ENOMEM" -> Some Enomem
  | "EAGAIN" -> Some Eagain
  | "ENOTSUP" -> Some Enotsup
  | "EFAULT" -> Some Efault
  | _ -> None
