type insn =
  | Nop
  | Add of int * int
  | Cmp of int * int
  | Mov of int * int
  | Call of int
  | Syscall of int
  | Ret

(* Word layout shared with ukdebug's zydis_like plug-in: opcode in bits
   24-31, operands in bits 12-23 and 0-11. *)
let encode = function
  | Nop -> 0x90 lsl 24
  | Add (a, b) -> (0x01 lsl 24) lor ((a land 0xfff) lsl 12) lor (b land 0xfff)
  | Cmp (a, b) -> (0x39 lsl 24) lor ((a land 0xfff) lsl 12) lor (b land 0xfff)
  | Mov (a, b) -> (0x89 lsl 24) lor ((a land 0xfff) lsl 12) lor (b land 0xfff)
  | Call target -> (0xe8 lsl 24) lor (target land 0xffffff)
  | Syscall n -> (0x0f lsl 24) lor (n land 0xfff)
  | Ret -> 0xc3 lsl 24

let decode word =
  let op = (word lsr 24) land 0xff in
  let a = (word lsr 12) land 0xfff in
  let b = word land 0xfff in
  match op with
  | 0x90 -> Some Nop
  | 0x01 -> Some (Add (a, b))
  | 0x39 -> Some (Cmp (a, b))
  | 0x89 -> Some (Mov (a, b))
  | 0xe8 -> Some (Call (word land 0xffffff))
  | 0x0f -> Some (Syscall b)
  | 0xc3 -> Some Ret
  | _ -> None

(* Rewritten syscalls become calls whose target encodes the syscall
   number in a reserved shim-stub range. *)
let shim_stub_base = 0xf00000
let stub_of_sysno n = shim_stub_base lor (n land 0xfff)
let sysno_of_stub target = if target >= shim_stub_base then Some (target land 0xfff) else None

type t = { words : int array; is_rewritten : bool }

let assemble insns = { words = Array.of_list (List.map encode insns); is_rewritten = false }
let length t = Array.length t.words

let syscall_sites t =
  let acc = ref [] in
  Array.iteri
    (fun i w ->
      match decode w with
      | Some (Syscall _) -> acc := i :: !acc
      | Some (Call target) when sysno_of_stub target <> None -> acc := i :: !acc
      | Some _ | None -> ())
    t.words;
  List.rev !acc

let disassemble_with dbg t =
  Ukdebug.Debug.Disasm.disassemble dbg ~arch:"x86_64" (Array.to_list t.words)

let rewrite t =
  let words =
    Array.map
      (fun w ->
        match decode w with
        | Some (Syscall n) -> encode (Call (stub_of_sysno n))
        | Some _ | None -> w)
      t.words
  in
  { words; is_rewritten = true }

let rewritten t = t.is_rewritten

type run_stats = {
  instructions : int;
  syscalls : int;
  cycles : int;
  enosys : int;
}

let execute_with ~clock ~dispatch t =
  let start = Uksim.Clock.cycles clock in
  let instructions = ref 0 in
  let syscalls = ref 0 in
  let enosys = ref 0 in
  let dispatch ~trap n =
    incr syscalls;
    match (dispatch ~trap ~sysno:n : (int, Fs_errno.t) result) with
    | Ok _ -> ()
    | Error Fs_errno.Enosys -> incr enosys
    | Error _ -> ()
  in
  let n = Array.length t.words in
  let rec step pc =
    if pc >= n then ()
    else begin
      incr instructions;
      match decode t.words.(pc) with
      | None -> invalid_arg (Printf.sprintf "Binary.execute: undecodable word at %d" pc)
      | Some Ret -> ()
      | Some (Nop | Add _ | Cmp _ | Mov _) ->
          Uksim.Clock.advance clock 1;
          step (pc + 1)
      | Some (Syscall sysno) ->
          dispatch ~trap:true sysno;
          step (pc + 1)
      | Some (Call target) -> (
          match sysno_of_stub target with
          | Some sysno ->
              dispatch ~trap:false sysno;
              step (pc + 1)
          | None ->
              (* Ordinary intra-binary call: treat as one cycle (no call
                 graph in this toy ISA). *)
              Uksim.Clock.advance clock 1;
              step (pc + 1))
    end
  in
  step 0;
  {
    instructions = !instructions;
    syscalls = !syscalls;
    cycles = Uksim.Clock.cycles clock - start;
    enosys = !enosys;
  }

let execute ~clock ~shim t =
  execute_with ~clock t ~dispatch:(fun ~trap ~sysno ->
      (* The shim charges its own dispatch-mode cost; binary execution
         adds the trap path or the plain call around it. *)
      let target_cost =
        if trap then Uksim.Cost.syscall_unikraft else Uksim.Cost.function_call
      in
      (* Top up whatever the shim's own dispatch mode will charge so the
         total lands on the trap / plain-call cost. *)
      Uksim.Clock.advance clock (max 0 (target_cost - Shim.dispatch_cost (Shim.mode shim)));
      Shim.call shim ~sysno [||])
