(** Errno values crossing the syscall boundary. *)

type t =
  | Enosys
  | Enoent
  | Ebadf
  | Einval
  | Enomem
  | Eagain
  | Enotsup
  | Efault

val to_code : t -> int
(** Negative return-value encoding (e.g. ENOSYS = -38). *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} (used by the ukcompat trace parser). *)
