(** Syscall requirements of the 30 most popular Debian server applications
    (paper §4.1, Figs 5 and 7).

    The paper derives these sets with a static-plus-dynamic (strace-based)
    analysis framework; we encode the resulting per-application syscall
    sets and re-run the published analyses over them: the requirement/
    support heatmap (Fig 5) and the "how close is each app to full
    support" projection under the next-N-most-wanted syscalls (Fig 7). *)

val apps : string list
(** 30 server applications, by Debian popularity. *)

val required : string -> int list
(** Sorted syscall numbers an application needs to run. Raises
    [Invalid_argument] for unknown applications. *)

val unikraft_supported : int list
(** The 146 syscalls implemented at paper time (§4.1). *)

val install_supported : Shim.t -> unit
(** Register a stub handler for every supported syscall on a shim (what
    linking the full posix layer does). *)

(** {1 Fig 5} *)

type heat_cell = { sysno : int; sname : string; needed_by : int; supported : bool }

val heatmap : unit -> heat_cell list
(** One cell per syscall 0..313. *)

(** {1 Fig 7} *)

type coverage = {
  app : string;
  n_required : int;
  now : float;  (** fraction of required syscalls currently supported *)
  plus5 : float;  (** after implementing the 5 most-wanted missing ones *)
  plus10 : float;
  plus15 : float;
}

val coverage : unit -> coverage list
(** Per app, sorted by name. The "next N" sets are chosen greedily by how
    many applications want each missing syscall (the paper's method). *)

val most_wanted_missing : int -> int list
(** The N unsupported syscalls wanted by the most applications. *)

(** {1 Against a live shim}

    The analyses above use the static paper-time support list. With
    ukcompat populating a shim with executable handlers, the same
    analyses can be recomputed against what is actually registered. *)

val heatmap_against : supported:int list -> heat_cell list
val most_wanted_missing_against : supported:int list -> int -> int list
val coverage_against : supported:int list -> coverage list

val heatmap_of_shim : Shim.t -> heat_cell list
(** {!heatmap_against} the shim's live {!Shim.supported_set}. *)

val coverage_of_shim : Shim.t -> coverage list
