type dispatch = Native_link | Binary_compat | Linux_vm | Linux_vm_nomitig

let dispatch_cost = function
  | Native_link -> Uksim.Cost.function_call
  | Binary_compat -> Uksim.Cost.syscall_unikraft
  | Linux_vm -> Uksim.Cost.syscall_linux
  | Linux_vm_nomitig -> Uksim.Cost.syscall_linux_nomitig

type handler = int array -> (int, Fs_errno.t) result

and t = {
  clock : Uksim.Clock.t;
  dmode : dispatch;
  table : handler option array;
  enosys : (int, int) Hashtbl.t;
  histogram : int array;
  mutable tracer : (int -> unit) option;
  mutable count : int;
}

(* ENOSYS leaks and per-syscall hit counts surface through uktrace so a
   registry snapshot shows which stubs a workload leans on (named by
   Sysno, not raw numbers). *)
let source_of t =
  Uktrace.Source.make ~subsystem:"uksyscall" ~name:"shim"
    ~reset:(fun () ->
      Hashtbl.reset t.enosys;
      Array.fill t.histogram 0 (Array.length t.histogram) 0;
      t.count <- 0)
    (fun () ->
      let enosys_total = Hashtbl.fold (fun _ v acc -> acc + v) t.enosys 0 in
      let per_sysno = ref [] in
      Array.iteri
        (fun i n ->
          if n > 0 then
            per_sysno := ("calls." ^ Sysno.name i, Uktrace.Metric.Count n) :: !per_sysno)
        t.histogram;
      ("calls", Uktrace.Metric.Count t.count)
      :: ("enosys", Uktrace.Metric.Count enosys_total)
      :: List.rev !per_sysno)

let create ~clock ~mode =
  let t =
    { clock; dmode = mode; table = Array.make (Sysno.max_sysno + 1) None;
      enosys = Hashtbl.create 16; histogram = Array.make (Sysno.max_sysno + 1) 0;
      tracer = None; count = 0 }
  in
  Uktrace.Registry.register (source_of t);
  t

let mode t = t.dmode

let register t ~sysno h =
  if sysno < 0 || sysno > Sysno.max_sysno then
    invalid_arg
      (Printf.sprintf "Shim.register: sysno %d out of range (0..%d = %s..%s)" sysno
         Sysno.max_sysno (Sysno.name 0) (Sysno.name Sysno.max_sysno));
  (match t.table.(sysno) with
  | Some _ -> invalid_arg (Printf.sprintf "Shim.register: duplicate handler for %s (sysno %d)" (Sysno.name sysno) sysno)
  | None -> ());
  t.table.(sysno) <- Some h

let register_stub t ~sysno ~ret = register t ~sysno (fun _ -> Ok ret)

let supports t n = n >= 0 && n <= Sysno.max_sysno && Option.is_some t.table.(n)
let supported_count t =
  Array.fold_left (fun acc h -> if Option.is_some h then acc + 1 else acc) 0 t.table

let supported_set t =
  let acc = ref [] in
  Array.iteri (fun i h -> if Option.is_some h then acc := i :: !acc) t.table;
  List.rev !acc

let call t ~sysno args =
  Uksim.Clock.advance t.clock (dispatch_cost t.dmode);
  t.count <- t.count + 1;
  (match t.tracer with Some f -> f sysno | None -> ());
  if sysno >= 0 && sysno <= Sysno.max_sysno then
    t.histogram.(sysno) <- t.histogram.(sysno) + 1;
  if sysno < 0 || sysno > Sysno.max_sysno then Error Fs_errno.Enosys
  else
    match t.table.(sysno) with
    | Some h -> h args
    | None ->
        (* The shim auto-stubs missing syscalls with ENOSYS (paper §4.1). *)
        Hashtbl.replace t.enosys sysno
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.enosys sysno));
        Error Fs_errno.Enosys

let enosys_hits t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.enosys [] |> List.sort compare
let enosys_count t = Hashtbl.fold (fun _ v acc -> acc + v) t.enosys 0
let calls_made t = t.count
let set_tracer t f = t.tracer <- f

let call_counts t =
  let acc = ref [] in
  Array.iteri (fun i n -> if n > 0 then acc := (i, n) :: !acc) t.histogram;
  List.rev !acc
