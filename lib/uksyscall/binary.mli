(** Binary compatibility and binary rewriting (paper §4.1: "for cases
    where the source code is not available, Unikraft also supports binary
    compatibility and binary rewriting as done in HermiTux").

    A "binary" is a word-encoded instruction stream (the encoding shared
    with ukdebug's disassembler plug-in: opcode in the top byte, operands
    below). Its [syscall] instructions execute one of two ways:

    - unmodified: each [syscall] traps and is translated at run time
      (OSv/HermiTux-style binary compatibility, 84 cycles per call —
      Table 1);
    - after {!rewrite}: the loader scans the text once and patches every
      [syscall] into a direct call to the shim handler (HermiTux's binary
      rewriting), after which each costs a plain function call. *)

type insn =
  | Nop
  | Add of int * int  (** register indices *)
  | Cmp of int * int
  | Mov of int * int
  | Call of int
  | Syscall of int  (** syscall number *)
  | Ret

val encode : insn -> int
val decode : int -> insn option

type t
(** A loaded binary (instruction words + patch table). *)

val assemble : insn list -> t
val length : t -> int
val syscall_sites : t -> int list
(** Instruction indices holding [Syscall]s (or rewritten calls). *)

val disassemble_with : Ukdebug.Debug.t -> t -> (string list, string) result
(** Render through a registered ukdebug disassembler plug-in. *)

val rewrite : t -> t
(** The binary-rewriting pass: a new binary with every [Syscall n]
    patched into [Call]-to-shim; the original is untouched. *)

val rewritten : t -> bool

type run_stats = {
  instructions : int;
  syscalls : int;
  cycles : int;
  enosys : int;  (** syscalls the shim had to stub *)
}

val execute : clock:Uksim.Clock.t -> shim:Shim.t -> t -> run_stats
(** Run the binary to its final [Ret]: ordinary instructions cost one
    cycle; [Syscall] dispatches through [shim] at the binary-compat trap
    cost; [Call]s produced by {!rewrite} dispatch at function-call cost.
    Raises [Invalid_argument] on undecodable words. *)

val execute_with :
  clock:Uksim.Clock.t ->
  dispatch:(trap:bool -> sysno:int -> (int, Fs_errno.t) result) ->
  t ->
  run_stats
(** Generic executor behind {!execute}: the caller owns syscall dispatch
    (cost charging, argument marshalling, retries). [trap] is true at an
    unrewritten [Syscall] site, false at a {!rewrite}-patched call site.
    Ordinary instructions still cost one cycle; [enosys] counts
    dispatches returning [Error Enosys]. ukcompat's trace replayer uses
    this to run recorded application traces through the binary-compat and
    binary-rewritten call conventions. *)
