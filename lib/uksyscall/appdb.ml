(* Encoded output of the paper's static+dynamic syscall analysis over the
   30 most popular Debian server applications. Sets are expressed as the
   common runtime core every ELF/glibc program touches, plus per-category
   and per-application extras. *)

let n = Sysno.number

let nums names = List.filter_map n names

(* Syscalls essentially every glibc-linked server touches at startup. *)
let core =
  nums
    [ "read"; "write"; "open"; "close"; "fstat"; "lseek"; "mmap"; "mprotect"; "munmap"; "brk";
      "rt_sigaction"; "rt_sigprocmask"; "ioctl"; "access"; "getpid"; "exit"; "uname"; "fcntl";
      "getcwd"; "getuid"; "getgid"; "geteuid"; "getegid"; "arch_prctl"; "gettid"; "futex";
      "set_tid_address"; "exit_group"; "clock_gettime"; "openat"; "newfstatat"; "getdents64";
      "readlink"; "getrlimit"; "set_robust_list"; "prlimit64"; "getrandom_placeholder" ]

(* "getrandom" is beyond sysno 313 on x86-64 (318); the heatmap range stops
   at 313, so we drop the placeholder above. *)
let core = List.filter (fun x -> x <= Sysno.max_sysno) core

let net =
  nums
    [ "socket"; "connect"; "accept"; "accept4"; "bind"; "listen"; "sendto"; "recvfrom";
      "sendmsg"; "recvmsg"; "shutdown"; "getsockname"; "getpeername"; "setsockopt";
      "getsockopt"; "poll"; "select"; "epoll_create1"; "epoll_ctl"; "epoll_wait"; "pipe2" ]

let storage =
  nums
    [ "pread64"; "pwrite64"; "fsync"; "fdatasync"; "ftruncate"; "rename"; "unlink"; "mkdir";
      "stat"; "lstat"; "statfs"; "fallocate"; "flock"; "sync_file_range" ]

let proc =
  nums
    [ "clone"; "fork"; "execve"; "wait4"; "kill"; "setsid"; "setuid"; "setgid"; "setgroups";
      "chdir"; "umask"; "dup"; "dup2"; "dup3"; "pipe"; "prctl"; "sigaltstack"; "tgkill" ]

let timers = nums [ "nanosleep"; "setitimer"; "alarm"; "timerfd_create"; "timerfd_settime"; "eventfd2" ]
let shm = nums [ "shmget"; "shmat"; "shmctl"; "shmdt"; "semget"; "semop"; "semctl" ]
let aio = nums [ "io_setup"; "io_submit"; "io_getevents"; "io_destroy" ]
let inotify = nums [ "inotify_init1"; "inotify_add_watch"; "inotify_rm_watch" ]
let xattr = nums [ "getxattr"; "setxattr"; "listxattr"; "removexattr"; "lgetxattr" ]
let sched = nums [ "sched_yield"; "sched_getaffinity"; "sched_setaffinity"; "getcpu" ]

let union lists =
  List.sort_uniq compare (List.concat lists)

(* (app, syscall set) — category composition + app-specific extras. *)
let table =
  [
    ("apache2", union [ core; net; storage; proc; timers; shm; sched; nums [ "sendfile"; "writev"; "madvise" ] ]);
    ("nginx", union [ core; net; storage; proc; timers; sched; nums [ "sendfile"; "writev"; "pwritev"; "madvise"; "recvmmsg" ] ]);
    ("mysql-server", union [ core; net; storage; proc; timers; aio; sched; nums [ "readv"; "writev"; "madvise"; "mremap" ] ]);
    ("postgresql", union [ core; net; storage; proc; timers; shm; sched; nums [ "readv"; "writev"; "sync"; "getrusage"; "setitimer" ] ]);
    ("mongodb", union [ core; net; storage; proc; timers; aio; sched; nums [ "madvise"; "mremap"; "getrusage" ] ]);
    ("redis-server", union [ core; net; storage; proc; timers; sched; nums [ "writev"; "madvise"; "getrusage" ] ]);
    ("memcached", union [ core; net; proc; timers; sched; nums [ "writev"; "getrusage"; "sendmmsg" ] ]);
    ("bind9", union [ core; net; storage; proc; timers; sched; nums [ "writev"; "sendmmsg"; "recvmmsg"; "getrusage" ] ]);
    ("dnsmasq", union [ core; net; proc; timers; nums [ "recvmmsg" ] ]);
    ("openssh-server", union [ core; net; storage; proc; timers; nums [ "chown"; "chmod"; "getgroups"; "setresuid"; "setresgid"; "getsid" ] ]);
    ("vsftpd", union [ core; net; storage; proc; timers; nums [ "chown"; "chmod"; "chroot"; "sendfile"; "setresuid" ] ]);
    ("postfix", union [ core; net; storage; proc; timers; nums [ "chown"; "chmod"; "link"; "utimes"; "setresuid"; "setresgid" ] ]);
    ("exim4", union [ core; net; storage; proc; timers; nums [ "chown"; "link"; "utimes"; "getgroups" ] ]);
    ("dovecot", union [ core; net; storage; proc; timers; inotify; nums [ "chown"; "link"; "writev"; "pwritev"; "preadv" ] ]);
    ("squid", union [ core; net; storage; proc; timers; sched; nums [ "chown"; "writev"; "getrusage"; "madvise" ] ]);
    ("haproxy", union [ core; net; proc; timers; sched; nums [ "writev"; "splice"; "sendfile"; "getrusage" ] ]);
    ("varnish", union [ core; net; storage; proc; timers; shm; sched; nums [ "writev"; "madvise"; "mremap" ] ]);
    ("node", union [ core; net; storage; proc; timers; inotify; sched; nums [ "writev"; "madvise"; "mremap"; "pipe" ] ]);
    ("php-fpm", union [ core; net; storage; proc; timers; shm; nums [ "writev"; "chown"; "chmod"; "getrusage" ] ]);
    ("lighttpd", union [ core; net; storage; proc; timers; nums [ "sendfile"; "writev"; "madvise" ] ]);
    ("etcd", union [ core; net; storage; proc; timers; sched; nums [ "writev"; "madvise"; "mremap"; "sync" ] ]);
    ("rabbitmq", union [ core; net; storage; proc; timers; sched; nums [ "writev"; "madvise"; "getrusage" ] ]);
    ("influxdb", union [ core; net; storage; proc; timers; sched; nums [ "writev"; "madvise"; "mremap" ] ]);
    ("sqlite3", union [ core; storage; nums [ "pread64"; "pwrite64"; "fdatasync" ] ]);
    ("samba", union [ core; net; storage; proc; timers; shm; xattr; nums [ "chown"; "chmod"; "link"; "sendfile"; "writev" ] ]);
    ("nfs-kernel-server", union [ core; net; storage; proc; timers; nums [ "mount"; "sync" ] ]);
    ("rsync", union [ core; net; storage; proc; timers; xattr; nums [ "chown"; "chmod"; "link"; "utimes"; "mknod" ] ]);
    ("cups", union [ core; net; storage; proc; timers; nums [ "chown"; "chmod"; "getgroups"; "writev" ] ]);
    ("ntp", union [ core; net; proc; timers; nums [ "adjtimex"; "settimeofday"; "clock_settime"; "clock_adjtime" ] ]);
    ("telegraf", union [ core; net; storage; proc; timers; sched; nums [ "writev"; "madvise" ] ]);
  ]

let apps = List.map fst table

let required app =
  match List.assoc_opt app table with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Appdb.required: unknown application %s" app)

(* The 146 syscalls Unikraft implemented at paper time: the runtime core,
   files, sockets, threads/futexes, timers — but no processes
   (fork/execve/wait4), no epoll/eventfd (in progress then), no SysV IPC,
   no AIO, no inotify, no xattrs. *)
let unikraft_supported =
  let extra =
    nums
      [ "stat"; "lstat"; "poll"; "select"; "pread64"; "pwrite64"; "readv"; "writev"; "pipe";
        "pipe2"; "dup"; "dup2"; "dup3"; "sched_yield"; "madvise"; "nanosleep"; "getitimer";
        "setitimer"; "alarm"; "sendfile"; "socket"; "connect"; "accept"; "accept4"; "sendto";
        "recvfrom"; "sendmsg"; "recvmsg"; "shutdown"; "bind"; "listen"; "getsockname";
        "getpeername"; "socketpair"; "setsockopt"; "getsockopt"; "fsync"; "fdatasync";
        "truncate"; "ftruncate"; "getdents"; "chdir"; "fchdir"; "rename"; "mkdir"; "rmdir";
        "link"; "unlink"; "symlink"; "chmod"; "fchmod"; "chown"; "fchown"; "umask";
        "gettimeofday"; "getrusage"; "setuid"; "setgid";
        "setpgid"; "getppid"; "getpgrp"; "setsid"; "setreuid"; "setregid"; "getgroups";
        "setgroups"; "setresuid"; "getresuid"; "setresgid"; "getresgid";
        "sigaltstack"; "statfs"; "fstatfs";
        "getpriority"; "setpriority"; "prctl";
        "setrlimit"; "sync"; "time"; "mremap";
        "tkill"; "tgkill"; "utimes"; "utimensat"; "mkdirat"; "unlinkat";
        "renameat"; "linkat"; "symlinkat"; "readlinkat"; "fchmodat"; "fchownat"; "faccessat";
        "pselect6"; "ppoll"; "splice"; "preadv"; "pwritev"; "recvmmsg";
        "sendmmsg"; "clock_settime"; "clock_getres"; "clock_nanosleep";
        "fallocate"; "flock";
        "kill"; "sched_getaffinity"; "sched_setaffinity"; "getcpu"; "settimeofday" ]
  in
  List.sort_uniq compare (core @ extra)

let install_supported shim =
  List.iter
    (fun sysno -> if not (Shim.supports shim sysno) then Shim.register_stub shim ~sysno ~ret:0)
    unikraft_supported

module Iset = Set.Make (Int)

type heat_cell = { sysno : int; sname : string; needed_by : int; supported : bool }

(* Fig 5/7 analyses, parameterized by the supported set so they can be
   recomputed against a *live* shim (ukcompat's executable personality)
   rather than only the static paper-time list. *)
let heatmap_against ~supported =
  let supported = Iset.of_list supported in
  let needs = Array.make (Sysno.max_sysno + 1) 0 in
  List.iter (fun (_, reqs) -> List.iter (fun s -> needs.(s) <- needs.(s) + 1) reqs) table;
  List.init (Sysno.max_sysno + 1) (fun i ->
      { sysno = i; sname = Sysno.name i; needed_by = needs.(i); supported = Iset.mem i supported })

let heatmap () = heatmap_against ~supported:unikraft_supported

type coverage = {
  app : string;
  n_required : int;
  now : float;
  plus5 : float;
  plus10 : float;
  plus15 : float;
}

let most_wanted_missing_against ~supported k =
  let cells = heatmap_against ~supported in
  let missing =
    List.filter (fun c -> (not c.supported) && c.needed_by > 0) cells
    |> List.sort (fun a b -> compare (b.needed_by, a.sysno) (a.needed_by, b.sysno))
  in
  List.filteri (fun i _ -> i < k) missing |> List.map (fun c -> c.sysno)

let most_wanted_missing k = most_wanted_missing_against ~supported:unikraft_supported k

let coverage_against ~supported =
  let sset = Iset.of_list supported in
  let frac extra (_, reqs) =
    let extra = Iset.of_list extra in
    let n =
      List.length (List.filter (fun s -> Iset.mem s sset || Iset.mem s extra) reqs)
    in
    float_of_int n /. float_of_int (List.length reqs)
  in
  let wanted = most_wanted_missing_against ~supported in
  List.map
    (fun ((app, reqs) as row) ->
      {
        app;
        n_required = List.length reqs;
        now = frac [] row;
        plus5 = frac (wanted 5) row;
        plus10 = frac (wanted 10) row;
        plus15 = frac (wanted 15) row;
      })
    table
  |> List.sort compare

let coverage () = coverage_against ~supported:unikraft_supported

let coverage_of_shim shim = coverage_against ~supported:(Shim.supported_set shim)
let heatmap_of_shim shim = heatmap_against ~supported:(Shim.supported_set shim)
