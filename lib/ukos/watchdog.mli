(** A guest-side watchdog timer.

    The supervised component must call {!pet} at least once per
    [timeout_ns] of virtual time; if a full timeout elapses without a
    pet, the watchdog {e bites}: the bite counter increments and the
    configured action runs. Expiry checks ride the event engine, so the
    watchdog behaves deterministically under simulated load.

    After a bite the watchdog re-arms (a wedged component keeps getting
    bitten every timeout until {!stop} or a pet) — bite actions that
    restart the component (e.g. via {!Uksched.Supervisor}) therefore get
    a fresh grace period. *)

type t

val create :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  timeout_ns:float ->
  ?name:string ->
  ?on_bite:(t -> unit) ->
  unit ->
  t
(** Armed immediately; the first deadline is one timeout from now. *)

val pet : t -> unit
(** Reset the deadline to one timeout from now. *)

val stop : t -> unit
(** Disarm; pending expiry events become no-ops. *)

val bites : t -> int
val name : t -> string
val running : t -> bool
