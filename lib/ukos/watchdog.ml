type t = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  timeout : int; (* cycles *)
  wname : string;
  on_bite : (t -> unit) option;
  mutable last_pet : int;
  mutable bites : int;
  mutable armed : bool;
}

(* One expiry event is in flight at any time: on fire it either bites and
   re-arms, or reschedules itself at the petted deadline. *)
let rec arm t at_cycle =
  Uksim.Engine.at t.engine at_cycle (fun () -> check t)

and check t =
  if t.armed then begin
    let now = Uksim.Clock.cycles t.clock in
    let deadline = t.last_pet + t.timeout in
    if now >= deadline then begin
      t.bites <- t.bites + 1;
      t.last_pet <- now; (* fresh grace period after a bite *)
      (match t.on_bite with Some f -> f t | None -> ());
      if t.armed then arm t (now + t.timeout)
    end
    else arm t deadline
  end

let create ~clock ~engine ~timeout_ns ?(name = "watchdog") ?on_bite () =
  if timeout_ns <= 0.0 then invalid_arg "Watchdog.create: timeout must be positive";
  let t =
    { clock; engine; timeout = Uksim.Clock.cycles_of_ns timeout_ns; wname = name; on_bite;
      last_pet = Uksim.Clock.cycles clock; bites = 0; armed = true }
  in
  arm t (t.last_pet + t.timeout);
  t

let pet t = t.last_pet <- Uksim.Clock.cycles t.clock
let stop t = t.armed <- false
let bites t = t.bites
let name t = t.wname
let running t = t.armed
