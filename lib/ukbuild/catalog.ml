let kb n = n * 1024

(* Library-level API-use fractions drive DCE: an edge (dep, f) keeps
   fraction f of dep's clusters when this library survives the link. *)
let defs () =
  let d = Microlib.define in
  [
    (* Platforms. plat-kvm carries full legacy boot, ACPI tables and
       virtio bus glue; plat-xen is tiny (PV entry), giving the paper's
       200KB-vs-40KB hello split. *)
    d ~name:"plat-kvm" ~kind:Platform ~code_size:(kb 140)
      ~deps:[ ("ukboot", 1.0); ("ukdebug", 0.5) ] ();
    d ~name:"plat-xen" ~kind:Platform ~code_size:(kb 8)
      ~deps:[ ("ukboot", 1.0); ("ukdebug", 0.3) ] ();
    d ~name:"plat-fc" ~kind:Platform ~code_size:(kb 96)
      ~deps:[ ("ukboot", 1.0); ("ukdebug", 0.5) ] ();
    d ~name:"plat-solo5" ~kind:Platform ~code_size:(kb 52)
      ~deps:[ ("ukboot", 1.0); ("ukdebug", 0.3) ] ();
    d ~name:"plat-linuxu" ~kind:Platform ~code_size:(kb 30)
      ~deps:[ ("ukboot", 1.0); ("ukdebug", 0.3) ] ();
    (* Core APIs and support. *)
    d ~name:"ukboot" ~kind:Core_api ~code_size:(kb 6) ();
    d ~name:"ukdebug" ~kind:Library ~code_size:(kb 14) ();
    d ~name:"uklibparam" ~kind:Library ~code_size:(kb 3) ~deps:[ ("ukboot", 0.5) ] ();
    d ~name:"ukring" ~kind:Library ~code_size:(kb 2) ();
    d ~name:"uktime" ~kind:Library ~code_size:(kb 5) ();
    d ~name:"ukmpk" ~kind:Library ~code_size:(kb 6) ~deps:[ ("ukmmu", 0.5) ] ();
    d ~name:"ukasan" ~kind:Library ~code_size:(kb 11) ~deps:[ ("ukalloc", 0.8) ] ();
    d ~name:"ukalloc" ~kind:Core_api ~code_size:(kb 9) ();
    d ~name:"uksched" ~kind:Core_api ~code_size:(kb 11) ~deps:[ ("ukalloc", 0.4) ] ();
    d ~name:"uklock" ~kind:Core_api ~code_size:(kb 5) ~deps:[ ("uksched", 0.3) ] ();
    d ~name:"ukmmu" ~kind:Core_api ~code_size:(kb 14) ~deps:[ ("ukalloc", 0.3) ] ();
    d ~name:"uknetdev" ~kind:Core_api ~code_size:(kb 18) ~deps:[ ("ukalloc", 0.4) ] ();
    d ~name:"ukblock" ~kind:Core_api ~code_size:(kb 12) ~deps:[ ("ukalloc", 0.3) ] ();
    d ~name:"uksyscall" ~kind:Core_api ~code_size:(kb 24)
      ~deps:[ ("vfscore", 0.5); ("ukalloc", 0.7); ("uksched", 0.5); ("ukmmu", 0.3) ] ();
    (* The executable Linux personality: per-process state, the handler
       surface routing syscalls into vfscore/lwip/ukmmu, the trace
       replayer and the HermiTux-style binary rewriter. Only images that
       opt into Linux compatibility link it. *)
    d ~name:"lib-ukcompat" ~kind:Library ~code_size:(kb 46)
      ~deps:
        [ ("uksyscall", 0.9); ("vfscore", 0.6); ("lwip", 0.4); ("ukmmu", 0.5);
          ("uksched", 0.3) ] ();
    (* Allocator backends (one micro-library each, paper §5.5). *)
    d ~name:"alloc-buddy" ~kind:Library ~code_size:(kb 16) ~deps:[ ("ukalloc", 1.0) ] ();
    d ~name:"alloc-tlsf" ~kind:Library ~code_size:(kb 24) ~deps:[ ("ukalloc", 1.0) ] ();
    d ~name:"alloc-tinyalloc" ~kind:Library ~code_size:(kb 7) ~deps:[ ("ukalloc", 1.0) ] ();
    d ~name:"alloc-mimalloc" ~kind:Library ~code_size:(kb 84)
      ~deps:[ ("ukalloc", 1.0); ("uksched", 0.5); ("uklock", 0.6) ] ();
    d ~name:"alloc-bootalloc" ~kind:Library ~code_size:(kb 3) ~deps:[ ("ukalloc", 1.0) ] ();
    d ~name:"alloc-oscar" ~kind:Library ~code_size:(kb 14)
      ~deps:[ ("ukalloc", 1.0); ("ukmmu", 0.6) ] ();
    (* Scheduler backends. *)
    d ~name:"sched-coop" ~kind:Library ~code_size:(kb 7) ~deps:[ ("uksched", 1.0) ] ();
    d ~name:"sched-preempt" ~kind:Library ~code_size:(kb 13)
      ~deps:[ ("uksched", 1.0); ("uklock", 0.5) ] ();
    (* Network stack and drivers. *)
    d ~name:"lwip" ~kind:Library ~code_size:(kb 330)
      ~deps:[ ("uknetdev", 0.8); ("ukalloc", 0.5); ("uksched", 0.5); ("uklock", 0.6) ] ();
    d ~name:"virtio-net" ~kind:Library ~code_size:(kb 22) ~deps:[ ("uknetdev", 0.9) ] ();
    d ~name:"netfront" ~kind:Library ~code_size:(kb 20) ~deps:[ ("uknetdev", 0.9) ] ();
    (* Storage / filesystems. *)
    d ~name:"vfscore" ~kind:Library ~code_size:(kb 38)
      ~deps:[ ("ukalloc", 0.6); ("uklock", 0.5) ] ();
    d ~name:"ramfs" ~kind:Library ~code_size:(kb 13) ~deps:[ ("vfscore", 0.7) ] ();
    d ~name:"9pfs" ~kind:Library ~code_size:(kb 32)
      ~deps:[ ("vfscore", 0.7); ("ukalloc", 0.4) ] ();
    d ~name:"virtio-9p" ~kind:Library ~code_size:(kb 18) ~deps:[ ("9pfs", 0.8) ] ();
    d ~name:"shfs" ~kind:Library ~code_size:(kb 28)
      ~deps:[ ("ukblock", 0.6); ("ukalloc", 0.4) ] ();
    (* C libraries. *)
    d ~name:"nolibc" ~kind:Libc ~code_size:(kb 40) ~deps:[ ("ukalloc", 0.5) ] ();
    d ~name:"musl" ~kind:Libc ~code_size:(kb 740) ~deps:[ ("uksyscall", 0.7) ] ();
    d ~name:"newlib" ~kind:Libc ~code_size:(kb 680) ~deps:[ ("uksyscall", 0.6) ] ();
    d ~name:"glibc-compat" ~kind:Libc ~code_size:(kb 26) ~deps:[ ("musl", 0.3) ] ();
    (* Applications. *)
    d ~name:"app-hello" ~kind:App ~code_size:(kb 2)
      ~deps:[ ("nolibc", 0.25); ("ukboot", 1.0) ] ();
    d ~name:"app-nginx" ~kind:App ~code_size:(kb 420)
      ~deps:
        [ ("musl", 0.32); ("lwip", 0.55); ("vfscore", 0.5); ("ramfs", 0.8); ("ukboot", 1.0) ]
      ();
    d ~name:"app-redis" ~kind:App ~code_size:(kb 560)
      ~deps:[ ("musl", 0.38); ("lwip", 0.6); ("vfscore", 0.3); ("ukboot", 1.0) ] ();
    d ~name:"app-sqlite" ~kind:App ~code_size:(kb 760)
      ~deps:[ ("musl", 0.42); ("vfscore", 0.8); ("ramfs", 0.9); ("ukboot", 1.0) ] ();
    d ~name:"app-webcache" ~kind:App ~code_size:(kb 36)
      ~deps:[ ("nolibc", 0.4); ("shfs", 0.9); ("lwip", 0.5); ("ukboot", 1.0) ] ();
    d ~name:"app-udpkv" ~kind:App ~code_size:(kb 18)
      ~deps:[ ("nolibc", 0.3); ("uknetdev", 0.9); ("ukboot", 1.0) ] ();
    d ~name:"app-httpreply" ~kind:App ~code_size:(kb 9)
      ~deps:[ ("nolibc", 0.3); ("lwip", 0.45); ("ukboot", 1.0) ] ();
  ]

let registry () =
  let r = Registry.create () in
  Registry.add_all r (defs ());
  r

let platforms = [ "plat-kvm"; "plat-xen"; "plat-fc"; "plat-solo5"; "plat-linuxu" ]

let allocator_libs =
  [ "alloc-buddy"; "alloc-tlsf"; "alloc-tinyalloc"; "alloc-mimalloc"; "alloc-bootalloc";
    "alloc-oscar" ]

let scheduler_libs = [ "sched-coop"; "sched-preempt" ]

let apps =
  [ "app-hello"; "app-nginx"; "app-redis"; "app-sqlite"; "app-webcache"; "app-udpkv";
    "app-httpreply" ]

let app_roots ~app ~net ~fs ?(compat = false) ?alloc ?sched () =
  if not (List.mem app apps) then invalid_arg (Printf.sprintf "Catalog.app_roots: unknown app %s" app);
  let check_opt what valid = function
    | None -> []
    | Some name ->
        if not (List.mem name valid) then
          invalid_arg (Printf.sprintf "Catalog.app_roots: unknown %s %s" what name);
        [ name ]
  in
  let base =
    (app :: check_opt "allocator" allocator_libs alloc)
    @ check_opt "scheduler" scheduler_libs sched
  in
  let base = if net then "virtio-net" :: base else base in
  let base = if fs then "virtio-9p" :: base else base in
  let base = if compat then "lib-ukcompat" :: base else base in
  base
