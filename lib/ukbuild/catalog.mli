(** The Unikraft micro-library catalog: every library the paper's images
    are composed from, with code sizes calibrated so that linked image
    sizes land where Figs 8/9 put them (hello ≈ 200 KB on KVM / 40 KB on
    Xen; nginx/redis/sqlite ≈ 1–2 MB with DCE+LTO). *)

val registry : unit -> Registry.t
(** A fresh registry holding the whole catalog. *)

val platforms : string list
(** "plat-kvm", "plat-xen", "plat-fc", "plat-solo5", "plat-linuxu". *)

val allocator_libs : string list
(** One micro-library per ukalloc backend. *)

val scheduler_libs : string list

val apps : string list
(** "app-hello", "app-nginx", "app-redis", "app-sqlite", "app-webcache",
    "app-udpkv", "app-httpreply". *)

val app_roots :
  app:string ->
  net:bool ->
  fs:bool ->
  ?compat:bool ->
  ?alloc:string ->
  ?sched:string ->
  unit ->
  string list
(** Root libraries for linking [app]: the app itself plus the selected
    allocator/scheduler backends (omitted = none, e.g. helloworld) and,
    when enabled, the network and filesystem driver stacks. [compat]
    (default false) additionally roots ["lib-ukcompat"], the Linux
    personality — letting DCE quantify the image-size cost of binary
    compatibility. Raises [Invalid_argument] for unknown names. *)
