type t = {
  seed : int;
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  rng : Uksim.Rng.t;
  net : Netmodel.t;
  hosts : Host.t array;
  router : Router.t;
  detector : Detector.t;
  image : Ukfleet.Image.t;
  mig_params : Migrate.params;
  mutable loading : bool;
  mutable c_migrations : int;
  mutable c_mig_aborts : int;
  mutable last_pause_ns : float;
  mutable c_collected : int;
  mutable pending_clone : (int * int * int) option; (* src, dst, slot *)
}

let default_classes n =
  (* A heterogeneous default: every third host is ARM-class. *)
  Array.init n (fun i -> if i mod 3 = 2 then Host.Arm else Host.X86)

let create ?(seed = 42) ?(n_hosts = 4) ?classes ?instances
    ?(image = Ukfleet.Image.httpd) ?(net_latency_ns = 50_000.0) ?(net_gbps = 10.0)
    ?(detector_params = Detector.params ()) ?(router_params = Router.params ())
    ?(mig_params = Migrate.params ()) () =
  if n_hosts < 2 then invalid_arg "Cluster.create: need at least two hosts";
  let classes = Option.value classes ~default:(default_classes n_hosts) in
  if Array.length classes <> n_hosts then
    invalid_arg "Cluster.create: classes/n_hosts mismatch";
  let clock = Uksim.Clock.create () in
  let engine = Uksim.Engine.create clock in
  let rng = Uksim.Rng.create (seed lxor 0xc105) in
  (* Node ids: hosts are 0..n-1, the front tier is node n — it shares
     the fabric, so partitions can isolate it from any subset. *)
  let net =
    Netmodel.create ~latency_ns:net_latency_ns ~gbps:net_gbps ~nodes:(n_hosts + 1) ()
  in
  let hosts =
    Array.init n_hosts (fun i ->
        Host.create ~clock ~engine ~seed ~id:i ~cls:classes.(i) ?instances ~image ())
  in
  let router =
    Router.create ~clock ~engine ~seed ~net ~front:n_hosts ~n_hosts
      ~params:router_params
      ~submit:(fun ~host ~now_ns ~flow ~on_reply ->
        Host.submit hosts.(host) ~now_ns ~flow ~on_reply)
      ~capacity_rps:(fun ~host -> Host.capacity_rps hosts.(host))
      ()
  in
  let tref = ref None in
  let detector =
    Detector.create ~clock ~engine ~rng:(Uksim.Rng.create (seed lxor 0xbea7))
      ~net ~front:n_hosts
      ~hosts:(List.init n_hosts Fun.id)
      ~params:detector_params
      ~probe:(fun h -> Host.state hosts.(h) = Host.Up)
      ~running:(fun () ->
        match !tref with
        | None -> true
        | Some t -> t.loading || Router.outstanding router > 0)
      ~on_suspect:(fun ~now_ns:_ h -> Router.suspect_host router h)
      ~on_recover:(fun ~now_ns:_ h -> Router.recover_host router h)
      ~on_dead:(fun ~now_ns h ->
        Router.collect_host router h;
        match !tref with
        | None -> ()
        | Some t ->
            t.c_collected <- t.c_collected + 1;
            (* The kill+clone baseline is reactive: the clone only
               starts once the detector has buried the source. *)
            (match t.pending_clone with
            | Some (src, dst, slot) when src = h ->
                t.pending_clone <- None;
                let clone_ns =
                  (Ukfleet.Fleet.costs (Host.fleet t.hosts.(dst)))
                    .Ukfleet.Fleet.clone_ns
                  +. Option.value
                       (Netmodel.transfer_ns t.net ~src ~dst
                          ~bytes:(Uksim.Units.mib t.image.Ukfleet.Image.mem_mb))
                       ~default:infinity
                in
                if clone_ns < infinity then
                  Uksim.Engine.at t.engine
                    (max
                       (Uksim.Clock.cycles_of_ns (now_ns +. clone_ns))
                       (Uksim.Clock.cycles t.clock))
                    (fun () -> Router.reassign t.router ~slot ~host:dst)
            | _ -> ()))
      ()
  in
  let t =
    {
      seed;
      clock;
      engine;
      rng;
      net;
      hosts;
      router;
      detector;
      image;
      mig_params;
      loading = false;
      c_migrations = 0;
      c_mig_aborts = 0;
      last_pause_ns = 0.0;
      c_collected = 0;
      pending_clone = None;
    }
  in
  tref := Some t;
  t

let clock t = t.clock
let engine t = t.engine
let net t = t.net
let router t = t.router
let detector t = t.detector
let n_hosts t = Array.length t.hosts
let host t i = t.hosts.(i)
let front t = Array.length t.hosts
let migrations t = t.c_migrations
let migration_aborts t = t.c_mig_aborts
let last_pause_ns t = t.last_pause_ns

let at_abs t ns f =
  Uksim.Engine.at t.engine
    (max (Uksim.Clock.cycles_of_ns ns) (Uksim.Clock.cycles t.clock))
    f

(* --- fault plane --------------------------------------------------------- *)

(* The Faulthost primitives over this cluster: hosts by id, the front
   tier as node [n_hosts], links through the shared Netmodel. Recovery
   re-admits a collected host's shards — the control-plane half the
   sticky-dead detector deliberately leaves to us. *)
let ops t =
  {
    Ukfault.Faulthost.crash = (fun ~now_ns h -> Host.crash t.hosts.(h) ~now_ns);
    recover =
      (fun ~now_ns h ->
        let did = Host.recover t.hosts.(h) ~now_ns in
        if did then begin
          Router.readmit_host t.router h;
          Router.recover_host t.router h
        end;
        did);
    freeze = (fun ~now_ns h ~dur_ns -> Host.freeze t.hosts.(h) ~now_ns ~dur_ns);
    block = (fun ~now_ns:_ ~src ~dst -> Netmodel.block t.net ~src ~dst);
    unblock = (fun ~now_ns:_ ~src ~dst -> Netmodel.unblock t.net ~src ~dst);
  }

(* --- migration ----------------------------------------------------------- *)

let footprint_bytes t = Uksim.Units.mib t.image.Ukfleet.Image.mem_mb

let alive_dst t ~src ~avoid =
  let best = ref None in
  Array.iter
    (fun h ->
      let i = Host.id h in
      if i <> src && i <> avoid && Host.up h && !best = None then best := Some i)
    t.hosts;
  !best

let rec start_migration t ~at_ns ~slot ~src ~dst ~attempt =
  let fp = footprint_bytes t in
  ignore
    (Migrate.start ~clock:t.clock ~engine:t.engine ~net:t.net ~src ~dst
       ~src_up:(fun () -> Host.up t.hosts.(src))
       ~dst_up:(fun () -> Host.up t.hosts.(dst))
       ~footprint_bytes:fp
       ~dirty_bps:(fun () -> 0.25 *. float_of_int fp)
       ~params:t.mig_params
       ~on_drain:(fun ~now_ns on ->
         Router.drain_slot t.router ~slot on;
         Ukfleet.Fleet.set_draining (Host.fleet t.hosts.(src)) on;
         ignore now_ns)
       ~on_commit:(fun ~now_ns ~pause_ns ->
         t.c_migrations <- t.c_migrations + 1;
         t.last_pause_ns <- pause_ns;
         Router.reassign t.router ~slot ~host:dst;
         ignore now_ns)
       ~on_abort:(fun ~now_ns reason ->
         t.c_mig_aborts <- t.c_mig_aborts + 1;
         (* Abort-and-restart: pick a live destination and go again
            after a short backoff — unless the *source* died, in which
            case the detector/collection path owns recovery. *)
         if reason <> Migrate.Src_down && attempt < 4 then
           match alive_dst t ~src ~avoid:dst with
           | Some dst' ->
               start_migration t
                 ~at_ns:(now_ns +. Uksim.Units.msec 2.0)
                 ~slot ~src ~dst:dst' ~attempt:(attempt + 1)
           | None -> ())
       ~at_ns ())

let migrate t ~at_ns ~src ~dst =
  if src = dst then invalid_arg "Cluster.migrate: src = dst";
  match Router.slots_of_host t.router src with
  | [] -> invalid_arg "Cluster.migrate: src owns no shard"
  | slot :: _ -> start_migration t ~at_ns ~slot ~src ~dst ~attempt:0

(* The naive baseline: kill the source outright and recover
   reactively. Nothing happens until the failure detector walks the
   crash through suspect to dead; only then does the cold clone
   (snapshot restore + footprint over the wire) start toward the
   destination. In-flight work dies with the source, the shard's flows
   eat timeouts until suspicion lands, and the arcs remap twice —
   everything live migration's drain-and-copy avoids. *)
let kill_clone t ~at_ns ~src ~dst =
  if src = dst then invalid_arg "Cluster.kill_clone: src = dst";
  match Router.slots_of_host t.router src with
  | [] -> invalid_arg "Cluster.kill_clone: src owns no shard"
  | slot :: _ ->
      at_abs t at_ns (fun () ->
          t.pending_clone <- Some (src, dst, slot);
          ignore (Host.crash t.hosts.(src) ~now_ns:at_ns))

(* --- load + report ------------------------------------------------------- *)

type report = {
  offered : int;
  completed : int;
  shed : int;
  expired : int;
  lost : int;
  retries : int;
  hedges : int;
  hedge_wins : int;
  cancelled : int;
  lost_replies : int;
  suspects : int;
  recovers : int;
  deads : int;
  migrations : int;
  migration_aborts : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
  trace_hash : int;
}

let mix h v =
  let x = (h lxor v) land max_int in
  let x = (x lxor (x lsr 30)) * 0x5851f42d4c957f2d land max_int in
  let x = (x lxor (x lsr 27)) * 0x14057b7ef767814f land max_int in
  x lxor (x lsr 31)

let trace_hash t =
  Array.fold_left
    (fun h host -> mix h (Ukfleet.Fleet.trace_hash (Host.fleet host)))
    (mix (Router.trace_hash t.router)
       (mix (Detector.suspects t.detector)
          (mix (Detector.recovers t.detector) (Detector.deads t.detector))))
    t.hosts

let settle_ns t =
  Array.fold_left (fun m h -> Float.max m (Host.settle_ns h)) 0.0 t.hosts
  +. Uksim.Units.msec 1.0

let run t (wl : Ukfleet.Workload.t) =
  let t0 = settle_ns t in
  t.loading <- true;
  Detector.start t.detector;
  let rec arrive now =
    if now -. t0 >= wl.Ukfleet.Workload.duration_ns then t.loading <- false
    else begin
      Router.offer t.router ~now_ns:now
        ~flow:(Uksim.Rng.int t.rng 4096)
        ~on_done:(fun _ ~latency_ns:_ -> ());
      let rate = wl.Ukfleet.Workload.rate_rps (now -. t0) in
      let dt =
        if rate <= 0.01 then Uksim.Units.msec 1.0
        else Uksim.Rng.exponential t.rng (1e9 /. rate)
      in
      at_abs t (now +. dt) (fun () -> arrive (now +. dt))
    end
  in
  at_abs t t0 (fun () -> arrive t0);
  Uksim.Engine.run t.engine;
  let r = t.router in
  let lat = Router.latency r in
  let conv ns = ns /. 1e3 in
  let n = Uksim.Stats.count lat in
  {
    offered = Router.offered r;
    completed = Router.completed r;
    shed = Router.shed r;
    expired = Router.expired r;
    lost =
      Router.offered r - Router.completed r - Router.shed r - Router.expired r;
    retries = Router.retries r;
    hedges = Router.hedges r;
    hedge_wins = Router.hedge_wins r;
    cancelled = Router.cancelled r;
    lost_replies = Router.lost_replies r;
    suspects = Detector.suspects t.detector;
    recovers = Detector.recovers t.detector;
    deads = Detector.deads t.detector;
    migrations = t.c_migrations;
    migration_aborts = t.c_mig_aborts;
    mean_us = (if n = 0 then 0.0 else conv (Uksim.Stats.mean lat));
    p50_us = (if n = 0 then 0.0 else conv (Uksim.Stats.percentile lat 50.0));
    p99_us = (if n = 0 then 0.0 else conv (Uksim.Stats.percentile lat 99.0));
    p999_us = (if n = 0 then 0.0 else conv (Uksim.Stats.percentile lat 99.9));
    max_us = (if n = 0 then 0.0 else conv (Uksim.Stats.max lat));
    trace_hash = trace_hash t;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>offered %d  completed %d  shed %d  expired %d  lost %d@,\
     retries %d  hedges %d (wins %d)  cancelled %d  lost_replies %d@,\
     detector: %d suspects, %d recovers, %d deads@,\
     migrations %d (aborts %d)@,\
     latency us: mean %.1f  p50 %.1f  p99 %.1f  p99.9 %.1f  max %.1f@,\
     trace %x@]"
    r.offered r.completed r.shed r.expired r.lost r.retries r.hedges
    r.hedge_wins r.cancelled r.lost_replies r.suspects r.recovers r.deads
    r.migrations r.migration_aborts r.mean_us r.p50_us r.p99_us r.p999_us
    r.max_us r.trace_hash
