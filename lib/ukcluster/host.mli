(** One host of the cluster: an {!Ukfleet.Fleet} with its own cost
    class, wrapped in a crash/freeze lifecycle.

    The host's fleet runs on the cluster's shared clock/engine
    ([`Engine] substrate, externally driven); its calibrated costs are
    stretched by the host-class multiplier (x86 reference vs. ARM-class
    edge silicon — the heterogeneity the edge-computing literature
    motivates). Failure semantics:

    - {e crash}: the host's life (epoch) ends. In-flight work freezes
      and any replies from the old life are dropped on delivery — a
      crashed host never answers. {!recover} starts the next life.
    - {e freeze}: the host stalls for a duration, then resumes. Held
      replies are released late, with the stall in their latency — the
      gray-failure case that makes routers hedge. *)

type cls = X86 | Arm

val cls_name : cls -> string
val cls_factor : cls -> float
(** The {!Ukfleet.Fleet} [cost_factor] for the class: 1.0 / 2.0. *)

type state = Up | Frozen | Crashed

type t

val create :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  seed:int ->
  id:int ->
  cls:cls ->
  ?instances:int ->
  image:Ukfleet.Image.t ->
  unit ->
  t
(** Builds and starts the host's fleet ([instances] fixed slots,
    default 2) on the shared timeline. *)

val id : t -> int
val cls : t -> cls
val state : t -> state
val up : t -> bool
val fleet : t -> Ukfleet.Fleet.t
val crashes : t -> int

val capacity_rps : t -> float
(** Aggregate steady-state service rate (0 when crashed). *)

val settle_ns : t -> float

val submit : t -> now_ns:float -> flow:int -> on_reply:(ok:bool -> unit) -> bool
(** Offer one request to the host's fleet. [false] if the host is not
    [Up] (the request vanishes — the caller's timeout recovers).
    [on_reply] fires when the reply leaves the host: never after a
    crash of the life that accepted it, late after a freeze. *)

val crash : t -> now_ns:float -> bool
val recover : t -> now_ns:float -> bool

val freeze : t -> now_ns:float -> dur_ns:float -> bool
(** Stall for [dur_ns], then auto-thaw (unless a crash superseded it). *)
