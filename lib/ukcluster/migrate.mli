(** Live migration of one shard between hosts: iterative pre-copy over
    the inter-host link, stop-and-copy behind front-door draining, and
    {e abort-and-restart} when the destination dies or the link
    partitions mid-copy.

    Each round copies the previous round's dirty footprint, charged as
    wire time ({!Netmodel}) plus the source's memcpy
    ({!Uksim.Cost.memcpy}); the guest keeps serving, dirtying
    [dirty_bps] bytes per second of copy. When the residue fits in
    [stop_copy_bytes] (or rounds run out) the shard drains at the front
    door, pauses for the final copy, and commits — or aborts if the
    destination crashed or either direction of the link is cut at
    handover. On abort, draining is always undone first, so the request
    stream never observes a lost response; the owner restarts toward a
    new destination. *)

type reason = Dst_down | Src_down | Partitioned

val reason_name : reason -> string

type phase = Precopy of int | Stop_copy | Committed | Aborted of reason

val phase_name : phase -> string

type params = private { max_rounds : int; stop_copy_bytes : int }

val params : ?max_rounds:int -> ?stop_copy_bytes:int -> unit -> params
(** Defaults: 8 rounds max, 64 KiB stop-and-copy threshold. *)

type t

val start :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  net:Netmodel.t ->
  src:int ->
  dst:int ->
  src_up:(unit -> bool) ->
  dst_up:(unit -> bool) ->
  footprint_bytes:int ->
  dirty_bps:(unit -> float) ->
  params:params ->
  ?on_drain:(now_ns:float -> bool -> unit) ->
  on_commit:(now_ns:float -> pause_ns:float -> unit) ->
  on_abort:(now_ns:float -> reason -> unit) ->
  at_ns:float ->
  unit ->
  t
(** Begins the first pre-copy round at [at_ns]. Exactly one of
    [on_commit] / [on_abort] eventually fires; [on_drain true] …
    [on_drain false] brackets the blackout (the [false] edge also fires
    on any abort that began draining). *)

val phase : t -> phase
val done_ : t -> bool
val rounds : t -> int
val bytes_copied : t -> int
val pause_ns : t -> float
(** Stop-and-copy blackout length (0 until that phase runs). *)
