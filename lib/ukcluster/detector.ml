type status = Alive | Suspect | Dead

let status_name = function Alive -> "alive" | Suspect -> "suspect" | Dead -> "dead"

type params = {
  interval_ns : float;
  suspect_phi : float;
  dead_phi : float;
  ping_bytes : int;
}

let params ?(interval_ns = Uksim.Units.msec 5.0) ?(suspect_phi = 1.0)
    ?(dead_phi = 8.0) ?(ping_bytes = 64) () =
  if interval_ns <= 0.0 then invalid_arg "Detector.params: interval must be positive";
  if dead_phi < suspect_phi then
    invalid_arg "Detector.params: dead_phi below suspect_phi";
  { interval_ns; suspect_phi; dead_phi; ping_bytes }

type hstate = {
  host : int;
  mutable last_pong_ns : float;
  mutable mean_gap_ns : float; (* EWMA of pong inter-arrivals *)
  mutable phi : float; (* as of the last check *)
  mutable status : status;
  mutable pings : int;
  mutable pongs : int;
}

type t = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  rng : Uksim.Rng.t;
  net : Netmodel.t;
  front : int;
  p : params;
  probe : int -> bool;
  running : unit -> bool;
  on_suspect : now_ns:float -> int -> unit;
  on_recover : now_ns:float -> int -> unit;
  on_dead : now_ns:float -> int -> unit;
  hs : hstate array;
  mutable c_suspects : int;
  mutable c_recovers : int;
  mutable c_deads : int;
}

(* Exponential-arrival phi accrual: phi = -log10 P(gap > observed),
   with inter-pong gaps modelled exponential at the observed mean. A
   pong exactly on schedule keeps phi ~ 0.43; each missed interval adds
   ~0.43 more, so suspect_phi trades detection delay for false-positive
   rate directly. *)
let log10_e = 0.4342944819032518

let phi_of hs ~now = log10_e *. (now -. hs.last_pong_ns) /. hs.mean_gap_ns

let status t host =
  (Array.to_list t.hs
  |> List.find (fun h -> h.host = host))
    .status

let phi t host = (Array.to_list t.hs |> List.find (fun h -> h.host = host)).phi
let suspects t = t.c_suspects
let recovers t = t.c_recovers
let deads t = t.c_deads

let pong t hs ~now =
  hs.pongs <- hs.pongs + 1;
  let gap = now -. hs.last_pong_ns in
  hs.last_pong_ns <- now;
  hs.mean_gap_ns <- (0.8 *. hs.mean_gap_ns) +. (0.2 *. gap);
  (* Dead is sticky: a collected host has lost its ring arc; a late pong
     does not resurrect it (rejoin is the owner's decision). *)
  if hs.status = Suspect then begin
    hs.status <- Alive;
    t.c_recovers <- t.c_recovers + 1;
    t.on_recover ~now_ns:now hs.host
  end

let check t hs ~now =
  hs.phi <- phi_of hs ~now;
  match hs.status with
  | Dead -> ()
  | Alive when hs.phi >= t.p.suspect_phi ->
      hs.status <- Suspect;
      t.c_suspects <- t.c_suspects + 1;
      t.on_suspect ~now_ns:now hs.host;
      if hs.phi >= t.p.dead_phi then begin
        hs.status <- Dead;
        t.c_deads <- t.c_deads + 1;
        t.on_dead ~now_ns:now hs.host
      end
  | Suspect when hs.phi >= t.p.dead_phi ->
      hs.status <- Dead;
      t.c_deads <- t.c_deads + 1;
      t.on_dead ~now_ns:now hs.host
  | Alive | Suspect -> ()

let at_abs t ns f =
  Uksim.Engine.at t.engine
    (max (Uksim.Clock.cycles_of_ns ns) (Uksim.Clock.cycles t.clock))
    f

let rec beat t hs ~now =
  check t hs ~now;
  hs.pings <- hs.pings + 1;
  (match Netmodel.transfer_ns t.net ~src:t.front ~dst:hs.host ~bytes:t.p.ping_bytes with
  | None -> () (* ping lost on the forward path *)
  | Some d1 ->
      at_abs t (now +. d1) (fun () ->
          (* The host answers only if it is actually responsive when the
             ping arrives; the pong then races the reverse path. *)
          if t.probe hs.host then
            match
              Netmodel.transfer_ns t.net ~src:hs.host ~dst:t.front ~bytes:t.p.ping_bytes
            with
            | None -> () (* pong lost: the asymmetric-partition signature *)
            | Some d2 -> at_abs t (now +. d1 +. d2) (fun () -> pong t hs ~now:(now +. d1 +. d2))));
  (* Seeded dither keeps the gap history non-degenerate and desynchronizes
     the per-host heartbeat trains. *)
  let dt = t.p.interval_ns *. (0.95 +. (0.1 *. Uksim.Rng.float t.rng 1.0)) in
  at_abs t (now +. dt) (fun () -> if t.running () then beat t hs ~now:(now +. dt))

let nop ~now_ns:_ _ = ()

let create ~clock ~engine ~rng ~net ~front ~hosts ~params:p ~probe ~running
    ?(on_suspect = nop) ?(on_recover = nop) ?(on_dead = nop) () =
  let now = Uksim.Clock.ns clock in
  let t =
    {
      clock;
      engine;
      rng;
      net;
      front;
      p;
      probe;
      running;
      on_suspect;
      on_recover;
      on_dead;
      hs =
        Array.of_list
          (List.map
             (fun h ->
               {
                 host = h;
                 last_pong_ns = now;
                 mean_gap_ns = p.interval_ns;
                 phi = 0.0;
                 status = Alive;
                 pings = 0;
                 pongs = 0;
               })
             hosts);
      c_suspects = 0;
      c_recovers = 0;
      c_deads = 0;
    }
  in
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukcluster" ~name:"detector" (fun () ->
         ("suspects", Uktrace.Metric.Count t.c_suspects)
         :: ("recovers", Uktrace.Metric.Count t.c_recovers)
         :: ("deads", Uktrace.Metric.Count t.c_deads)
         :: List.concat_map
              (fun hs ->
                [
                  (Printf.sprintf "phi_%d" hs.host, Uktrace.Metric.Level hs.phi);
                  ( Printf.sprintf "status_%d" hs.host,
                    Uktrace.Metric.Level
                      (match hs.status with Alive -> 0.0 | Suspect -> 1.0 | Dead -> 2.0) );
                ])
              (Array.to_list t.hs)));
  t

let start t =
  let now = Uksim.Clock.ns t.clock in
  Array.iter
    (fun hs ->
      (* Stagger first pings across the interval so n hosts never probe
         in one burst. *)
      let dt = Uksim.Rng.float t.rng t.p.interval_ns in
      hs.last_pong_ns <- now +. dt;
      at_abs t (now +. dt) (fun () -> beat t hs ~now:(now +. dt)))
    t.hs
