type params = {
  deadline_ns : float;
  attempt_timeout_ns : float;
  max_retries : int;
  retry_base_ns : float;
  retry_factor : float;
  retry_jitter : float;
  hedge : bool;
  hedge_quantile : float;
  hedge_min_ns : float;
  admit_factor : float;
  req_bytes : int;
  resp_bytes : int;
  vnodes : int;
}

let params ?(deadline_ns = Uksim.Units.msec 50.0)
    ?(attempt_timeout_ns = Uksim.Units.msec 10.0) ?(max_retries = 2)
    ?(retry_base_ns = Uksim.Units.msec 1.0) ?(retry_factor = 2.0)
    ?(retry_jitter = 0.5) ?(hedge = false) ?(hedge_quantile = 97.0)
    ?(hedge_min_ns = Uksim.Units.usec 500.0) ?(admit_factor = 2.0)
    ?(req_bytes = 512) ?(resp_bytes = 4096) ?(vnodes = 64) () =
  if deadline_ns <= 0.0 || attempt_timeout_ns <= 0.0 then
    invalid_arg "Router.params: deadline/timeout must be positive";
  if max_retries < 0 then invalid_arg "Router.params: negative retry budget";
  if hedge_quantile <= 0.0 || hedge_quantile >= 100.0 then
    invalid_arg "Router.params: hedge_quantile out of (0,100)";
  {
    deadline_ns;
    attempt_timeout_ns;
    max_retries;
    retry_base_ns;
    retry_factor;
    retry_jitter;
    hedge;
    hedge_quantile;
    hedge_min_ns;
    admit_factor;
    req_bytes;
    resp_bytes;
    vnodes;
  }

type outcome = Completed | Shed | Expired

let outcome_name = function
  | Completed -> "completed"
  | Shed -> "shed"
  | Expired -> "expired"

type req = {
  rid : int;
  flow : int;
  arrival_ns : float;
  deadline_at : float;
  mutable done_ : bool;
  mutable attempts : int;
  mutable retries_used : int;
  mutable inflight : int;
  mutable hedged : bool;
  mutable tried : int list; (* host ids already attempted *)
  on_done : outcome -> latency_ns:float -> unit;
}

type attempt = { mutable responded : bool; mutable timed_out : bool; is_hedge : bool }

type t = {
  clock : Uksim.Clock.t;
  engine : Uksim.Engine.t;
  rng : Uksim.Rng.t;
  net : Netmodel.t;
  front : int;
  p : params;
  fd : Ukfleet.Frontdoor.t; (* members are *slots*, not hosts *)
  slot_host : int array;
  n_hosts : int;
  suspected : bool array; (* by host *)
  collected : bool array; (* by host *)
  removed_slot : bool array;
  draining_slot : bool array;
  submit : host:int -> now_ns:float -> flow:int -> on_reply:(ok:bool -> unit) -> bool;
  capacity_rps : host:int -> float;
  lat : Uksim.Stats.t;
  mutable hedge_cached : float;
  mutable hedge_cached_at : int; (* lat count at last refresh *)
  mutable next_rid : int;
  mutable outstanding : int;
  mutable c_offered : int;
  mutable c_completed : int;
  mutable c_shed : int;
  mutable c_expired : int;
  mutable c_retries : int;
  mutable c_hedges : int;
  mutable c_hedge_wins : int;
  mutable c_cancelled : int;
  mutable c_lost_replies : int;
  mutable c_unroutable : int;
  mutable trace : int;
}

(* splitmix64-style avalanche, same shape as the fleet's trace hash. *)
let mix h v =
  let x = (h lxor v) land max_int in
  let x = (x lxor (x lsr 30)) * 0x5851f42d4c957f2d land max_int in
  let x = (x lxor (x lsr 27)) * 0x14057b7ef767814f land max_int in
  x lxor (x lsr 31)

let trace t tag a ns =
  t.trace <-
    mix (mix (mix t.trace tag) a) (Int64.to_int (Int64.bits_of_float ns) land max_int)

let at_abs t ns f =
  Uksim.Engine.at t.engine
    (max (Uksim.Clock.cycles_of_ns ns) (Uksim.Clock.cycles t.clock))
    f

(* --- shard table --------------------------------------------------------- *)

let sync_slot t slot =
  if not t.removed_slot.(slot) then begin
    let h = t.slot_host.(slot) in
    if t.suspected.(h) || t.draining_slot.(slot) then
      Ukfleet.Frontdoor.quarantine t.fd slot
    else Ukfleet.Frontdoor.unquarantine t.fd slot
  end

let slots_of_host t host =
  Array.to_list
    (Array.of_seq
       (Seq.filter
          (fun s -> t.slot_host.(s) = host)
          (Seq.init (Array.length t.slot_host) Fun.id)))

let suspect_host t host =
  if host >= 0 && host < t.n_hosts && not t.suspected.(host) then begin
    t.suspected.(host) <- true;
    List.iter (sync_slot t) (slots_of_host t host)
  end

let recover_host t host =
  if host >= 0 && host < t.n_hosts && t.suspected.(host) then begin
    t.suspected.(host) <- false;
    List.iter (sync_slot t) (slots_of_host t host)
  end

(* Dead-and-collected: the slot leaves the ring (arcs remap) until a
   reassignment brings the shard back on a live host. *)
let collect_host t host =
  if host >= 0 && host < t.n_hosts && not t.collected.(host) then begin
    t.collected.(host) <- true;
    List.iter
      (fun s ->
        t.removed_slot.(s) <- true;
        Ukfleet.Frontdoor.remove t.fd s)
      (slots_of_host t host)
  end

(* Control-plane re-admission of a collected host that came back: its
   shards return to their original arcs. *)
let readmit_host t host =
  if host >= 0 && host < t.n_hosts && t.collected.(host) then begin
    t.collected.(host) <- false;
    t.suspected.(host) <- false;
    List.iter
      (fun s ->
        if t.removed_slot.(s) then begin
          t.removed_slot.(s) <- false;
          Ukfleet.Frontdoor.add t.fd s
        end;
        sync_slot t s)
      (slots_of_host t host)
  end

let reassign t ~slot ~host =
  if slot < 0 || slot >= Array.length t.slot_host then
    invalid_arg "Router.reassign: bad slot";
  if host < 0 || host >= t.n_hosts then invalid_arg "Router.reassign: bad host";
  t.slot_host.(slot) <- host;
  t.draining_slot.(slot) <- false;
  if t.removed_slot.(slot) then begin
    t.removed_slot.(slot) <- false;
    (* Ring points derive from the slot id, so re-adding restores the
       exact arcs the slot owned before collection. *)
    Ukfleet.Frontdoor.add t.fd slot
  end;
  sync_slot t slot

let drain_slot t ~slot on =
  if slot >= 0 && slot < Array.length t.slot_host then begin
    t.draining_slot.(slot) <- on;
    sync_slot t slot
  end

let host_of_slot t slot = t.slot_host.(slot)
let suspected t host = t.suspected.(host)
let collected t host = t.collected.(host)

(* --- admission ----------------------------------------------------------- *)

(* Graceful degradation: the admission window shrinks with the capacity
   the detector still believes in. Suspect half the cluster and the
   front door sheds harder instead of queueing requests into certain
   deadline death. *)
let max_outstanding t =
  let cap = ref 0.0 in
  for h = 0 to t.n_hosts - 1 do
    if (not t.suspected.(h)) && not t.collected.(h) then
      cap := !cap +. t.capacity_rps ~host:h
  done;
  max 8 (int_of_float (t.p.admit_factor *. !cap *. t.p.deadline_ns /. 1e9))

(* --- request lifecycle --------------------------------------------------- *)

let finish t req outcome ~now =
  if not req.done_ then begin
    req.done_ <- true;
    t.outstanding <- t.outstanding - 1;
    let lat = now -. req.arrival_ns in
    (match outcome with
    | Completed ->
        t.c_completed <- t.c_completed + 1;
        Uksim.Stats.add t.lat lat
    | Shed -> t.c_shed <- t.c_shed + 1
    | Expired -> t.c_expired <- t.c_expired + 1);
    trace t
      (match outcome with Completed -> 0xc0de | Shed -> 0x54ed | Expired -> 0xdead)
      req.rid now;
    req.on_done outcome ~latency_ns:lat
  end

let salted flow salt = if salt = 0 then flow else mix flow (salt * 0x632be59b)
let no_load _ = 0.0

let rec pick_untried t req salt left =
  match Ukfleet.Frontdoor.pick t.fd ~flow:(salted req.flow salt) ~load:no_load with
  | None -> None
  | Some slot when left > 0 && List.mem t.slot_host.(slot) req.tried ->
      pick_untried t req (salt + 1) (left - 1)
  | some -> some

(* Until the latency estimator has a usable sample, hedge at the
   configured floor — waiting half an attempt-timeout would leave the
   whole warm-up phase unprotected against stragglers. The percentile
   is refreshed every 256 completions: computing it per request would
   re-sort the whole latency history each time. *)
let hedge_delay t =
  let n = Uksim.Stats.count t.lat in
  if n < 64 then t.p.hedge_min_ns
  else begin
    if n - t.hedge_cached_at >= 256 || t.hedge_cached_at = 0 then begin
      t.hedge_cached <-
        Float.max t.p.hedge_min_ns (Uksim.Stats.percentile t.lat t.p.hedge_quantile);
      t.hedge_cached_at <- n
    end;
    t.hedge_cached
  end

let rec attempt t req ~now ~is_hedge =
  if not req.done_ then begin
    let salt0 = req.attempts in
    req.attempts <- req.attempts + 1;
    match pick_untried t req (if is_hedge || salt0 > 0 then salt0 else 0) 16 with
    | None ->
        (* Nothing routable right now; a retry may find a recovered
           host, and the deadline timer is the backstop. *)
        t.c_unroutable <- t.c_unroutable + 1;
        consider_retry t req ~now
    | Some slot ->
        let host = t.slot_host.(slot) in
        req.tried <- host :: req.tried;
        req.inflight <- req.inflight + 1;
        let att = { responded = false; timed_out = false; is_hedge } in
        trace t 0xa77e (mix req.rid host) now;
        (match Netmodel.transfer_ns t.net ~src:t.front ~dst:host ~bytes:t.p.req_bytes with
        | None -> () (* the request vanished into the partition *)
        | Some d1 ->
            at_abs t (now +. d1) (fun () ->
                let accepted =
                  t.submit ~host ~now_ns:(now +. d1) ~flow:req.flow
                    ~on_reply:(fun ~ok ->
                      (* The reply leaves the host "now" on the shared
                         clock and still has to cross the wire home. *)
                      let tr = Uksim.Clock.ns t.clock in
                      match
                        Netmodel.transfer_ns t.net ~src:host ~dst:t.front
                          ~bytes:t.p.resp_bytes
                      with
                      | None -> t.c_lost_replies <- t.c_lost_replies + 1
                      | Some d2 ->
                          at_abs t (tr +. d2) (fun () ->
                              deliver t req att ~ok ~now:(tr +. d2)))
                in
                ignore accepted));
        let t_out = Float.min req.deadline_at (now +. t.p.attempt_timeout_ns) in
        at_abs t t_out (fun () ->
            if (not att.responded) && not req.done_ then begin
              att.timed_out <- true;
              req.inflight <- req.inflight - 1;
              consider_retry t req ~now:t_out
            end)
  end

and deliver t req att ~ok ~now =
  if not att.responded then begin
    att.responded <- true;
    if not att.timed_out then req.inflight <- req.inflight - 1;
    if req.done_ then t.c_cancelled <- t.c_cancelled + 1
    else if ok then begin
      if att.is_hedge then t.c_hedge_wins <- t.c_hedge_wins + 1;
      finish t req Completed ~now
    end
    else consider_retry t req ~now (* the host shed it *)
  end

and consider_retry t req ~now =
  if (not req.done_) && req.retries_used < t.p.max_retries then begin
    let backoff =
      t.p.retry_base_ns
      *. (t.p.retry_factor ** float_of_int req.retries_used)
      *. (1.0 +. (t.p.retry_jitter *. Uksim.Rng.float t.rng 1.0))
    in
    if now +. backoff < req.deadline_at then begin
      req.retries_used <- req.retries_used + 1;
      t.c_retries <- t.c_retries + 1;
      at_abs t (now +. backoff) (fun () -> attempt t req ~now:(now +. backoff) ~is_hedge:false)
    end
  end

let offer t ~now_ns ~flow ~on_done =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  t.c_offered <- t.c_offered + 1;
  trace t 0x0ffe rid now_ns;
  if t.outstanding >= max_outstanding t then begin
    t.c_shed <- t.c_shed + 1;
    trace t 0x54ed rid now_ns;
    on_done Shed ~latency_ns:0.0
  end
  else begin
    t.outstanding <- t.outstanding + 1;
    let req =
      {
        rid;
        flow;
        arrival_ns = now_ns;
        deadline_at = now_ns +. t.p.deadline_ns;
        done_ = false;
        attempts = 0;
        retries_used = 0;
        inflight = 0;
        hedged = false;
        tried = [];
        on_done;
      }
    in
    (* The deadline timer is the sole expirer: whatever happens to the
       attempts, the caller hears back by the deadline. *)
    at_abs t req.deadline_at (fun () ->
        if not req.done_ then finish t req Expired ~now:req.deadline_at);
    attempt t req ~now:now_ns ~is_hedge:false;
    if t.p.hedge && not req.done_ then begin
      let d = Float.min (hedge_delay t) (t.p.deadline_ns /. 2.0) in
      at_abs t (now_ns +. d) (fun () ->
          if (not req.done_) && not req.hedged then begin
            req.hedged <- true;
            t.c_hedges <- t.c_hedges + 1;
            attempt t req ~now:(now_ns +. d) ~is_hedge:true
          end)
    end
  end

(* --- construction / readout ---------------------------------------------- *)

let create ~clock ~engine ~seed ~net ~front ~n_hosts ~params:p ~submit
    ~capacity_rps () =
  if n_hosts < 1 then invalid_arg "Router.create: need at least one host";
  let fd = Ukfleet.Frontdoor.create ~vnodes:p.vnodes Ukfleet.Frontdoor.Consistent_hash in
  for s = 0 to n_hosts - 1 do
    Ukfleet.Frontdoor.add fd s
  done;
  let t =
    {
      clock;
      engine;
      rng = Uksim.Rng.create (seed lxor 0x20175);
      net;
      front;
      p;
      fd;
      slot_host = Array.init n_hosts Fun.id;
      n_hosts;
      suspected = Array.make n_hosts false;
      collected = Array.make n_hosts false;
      removed_slot = Array.make n_hosts false;
      draining_slot = Array.make n_hosts false;
      submit;
      capacity_rps;
      lat = Uksim.Stats.create ();
      hedge_cached = 0.0;
      hedge_cached_at = 0;
      next_rid = 0;
      outstanding = 0;
      c_offered = 0;
      c_completed = 0;
      c_shed = 0;
      c_expired = 0;
      c_retries = 0;
      c_hedges = 0;
      c_hedge_wins = 0;
      c_cancelled = 0;
      c_lost_replies = 0;
      c_unroutable = 0;
      trace = 0x2007e5 lxor seed;
    }
  in
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukcluster" ~name:"router" (fun () ->
         [
           ("offered", Uktrace.Metric.Count t.c_offered);
           ("completed", Uktrace.Metric.Count t.c_completed);
           ("shed", Uktrace.Metric.Count t.c_shed);
           ("expired", Uktrace.Metric.Count t.c_expired);
           ("retries", Uktrace.Metric.Count t.c_retries);
           ("hedges", Uktrace.Metric.Count t.c_hedges);
           ("hedge_wins", Uktrace.Metric.Count t.c_hedge_wins);
           ("cancelled", Uktrace.Metric.Count t.c_cancelled);
           ("lost_replies", Uktrace.Metric.Count t.c_lost_replies);
           ("outstanding", Uktrace.Metric.Level (float_of_int t.outstanding));
         ]));
  t

let outstanding t = t.outstanding
let offered t = t.c_offered
let completed t = t.c_completed
let shed t = t.c_shed
let expired t = t.c_expired
let retries t = t.c_retries
let hedges t = t.c_hedges
let hedge_wins t = t.c_hedge_wins
let cancelled t = t.c_cancelled
let lost_replies t = t.c_lost_replies
let unroutable t = t.c_unroutable
let latency t = t.lat
let trace_hash t = t.trace
