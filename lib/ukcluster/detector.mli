(** Phi-accrual heartbeat failure detection over the cluster network.

    The front node pings each host on a seeded-jittered interval; pings
    and pongs are real {!Netmodel} transfers, so an asymmetric partition
    (host reaches the front, front's traffic to it vanishes — or the
    reverse) starves the pong stream exactly as it would in a real
    deployment. Suspicion is a continuous scale: [phi] is the number of
    decades of improbability in the current pong silence, against an
    EWMA of the observed inter-pong gap. Crossing [suspect_phi] fires
    [on_suspect] (the router quarantines, keeping ring arcs); a later
    pong fires [on_recover]; crossing [dead_phi] fires [on_dead] and is
    {e sticky} — a collected host must be re-admitted by the control
    plane, not by one late packet.

    Publishes ["ukcluster.detector"] gauges: per-host phi and status
    plus suspect/recover/dead counters. *)

type status = Alive | Suspect | Dead

val status_name : status -> string

type params = private {
  interval_ns : float;
  suspect_phi : float;
  dead_phi : float;
  ping_bytes : int;
}

val params :
  ?interval_ns:float ->
  ?suspect_phi:float ->
  ?dead_phi:float ->
  ?ping_bytes:int ->
  unit ->
  params
(** Defaults: 5 ms interval, suspect at phi 1.0, dead at phi 8.0, 64 B
    pings. [suspect_phi = 0.0] is the planted-bug configuration: every
    host is suspected on its first silent instant. *)

type t

val create :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  rng:Uksim.Rng.t ->
  net:Netmodel.t ->
  front:int ->
  hosts:int list ->
  params:params ->
  probe:(int -> bool) ->
  running:(unit -> bool) ->
  ?on_suspect:(now_ns:float -> int -> unit) ->
  ?on_recover:(now_ns:float -> int -> unit) ->
  ?on_dead:(now_ns:float -> int -> unit) ->
  unit ->
  t
(** [probe h] is whether host [h] would answer a ping arriving now
    (crashed/frozen hosts do not). [running ()] gates re-arming the
    heartbeat train so the engine can drain when the experiment ends. *)

val start : t -> unit
(** Schedules the first ping to each host, staggered across one
    interval. *)

val status : t -> int -> status
val phi : t -> int -> float
val suspects : t -> int
val recovers : t -> int
val deads : t -> int
