(** The inter-host network: a full mesh of directed links with real
    latency/bandwidth charges and a blockable reachability matrix.

    Every byte that crosses hosts pays [latency + bytes/bandwidth] on
    the directed link it uses; {!block} cuts one direction of one link,
    which is the primitive everything else (symmetric and {e asymmetric}
    partitions) is built from. A transfer over a blocked link returns
    [None] — the bytes vanish, exactly like a partitioned datacenter
    link; detection and recovery are the caller's problem (that is the
    point). Registers a ["ukcluster.net"] source with transfer/byte/drop
    counters. *)

type t

val create : ?latency_ns:float -> ?gbps:float -> nodes:int -> unit -> t
(** A full mesh over [nodes] nodes (hosts plus any front-tier nodes).
    Defaults: 50 us one-way latency, 10 Gbps per directed link;
    self-links are free. *)

val nodes : t -> int

val set_link : t -> src:int -> dst:int -> latency_ns:float -> gbps:float -> unit
(** Override one directed link (e.g. a slow WAN hop to an edge host). *)

val block : t -> src:int -> dst:int -> bool
(** Cut the directed link; [true] if it was previously open. *)

val unblock : t -> src:int -> dst:int -> bool
(** Restore the directed link; [true] if it was previously cut. *)

val reachable : t -> src:int -> dst:int -> bool

val transfer_ns : t -> src:int -> dst:int -> bytes:int -> float option
(** Wire time for [bytes] over the directed link, or [None] if the link
    is cut (the transfer is silently lost — counted in [dropped]). *)

val partition : t -> a:int list -> b:int list -> unit
(** Cut every link between the groups, both directions. *)

val partition_asym : t -> from_:int list -> to_:int list -> unit
(** Cut [from_ -> to_] only: [to_] still reaches [from_]. Requests get
    through and responses vanish — the failure mode that distinguishes a
    real failure detector from a timeout. *)

val heal : t -> a:int list -> b:int list -> unit
(** Restore every link between the groups, both directions. *)
