type cls = X86 | Arm

let cls_name = function X86 -> "x86" | Arm -> "arm"

(* ARM-class edge silicon: same image, roughly double the per-request
   and boot cost of the x86 reference the paper calibrates against. *)
let cls_factor = function X86 -> 1.0 | Arm -> 2.0

type state = Up | Frozen | Crashed

type t = {
  id : int;
  cls : cls;
  fleet : Ukfleet.Fleet.t;
  engine : Uksim.Engine.t;
  instances : int;
  mutable state : state;
  mutable epoch : int; (* bumped on crash: replies from a dead life are dropped *)
  mutable c_crashes : int;
  mutable c_freezes : int;
  mutable c_recoveries : int;
  mutable c_submitted : int;
  mutable c_stale_replies : int;
}

let create ~clock ~engine ~seed ~id ~cls ?(instances = 2) ~image () =
  let fleet =
    Ukfleet.Fleet.create
      ~seed:(seed lxor ((id + 1) * 0x9E3779B9))
      ~substrate:(`Engine (clock, engine))
      ~boot_mode:Ukfleet.Fleet.Cold ~initial:instances
      ~cost_factor:(cls_factor cls)
      ~shed_after_ns:(Uksim.Units.msec 20.0)
      ~image ()
  in
  Ukfleet.Fleet.start fleet;
  {
    id;
    cls;
    fleet;
    engine;
    instances;
    state = Up;
    epoch = 0;
    c_crashes = 0;
    c_freezes = 0;
    c_recoveries = 0;
    c_submitted = 0;
    c_stale_replies = 0;
  }

let id t = t.id
let cls t = t.cls
let state t = t.state
let fleet t = t.fleet
let up t = t.state = Up
let crashes t = t.c_crashes

let capacity_rps t =
  if t.state = Crashed then 0.0
  else
    float_of_int t.instances *. 1e9
    /. (Ukfleet.Fleet.costs t.fleet).Ukfleet.Fleet.service_ns

let settle_ns t = Ukfleet.Fleet.settle_ns t.fleet

(* A reply races the host's lifecycle: it only leaves the host if the
   host is still in the same life (epoch) and not crashed. Frozen-then-
   thawed replies are released by the fleet at the thaw instant. *)
let submit t ~now_ns ~flow ~on_reply =
  if t.state <> Up then false
  else begin
    t.c_submitted <- t.c_submitted + 1;
    let ep = t.epoch in
    Ukfleet.Fleet.submit ~flow
      ~on_reply:(fun ~ok ~latency_ns:_ ->
        if t.epoch = ep && t.state <> Crashed then on_reply ~ok
        else t.c_stale_replies <- t.c_stale_replies + 1)
      t.fleet ~now_ns;
    true
  end

let crash t ~now_ns =
  if t.state = Crashed then false
  else begin
    t.state <- Crashed;
    t.epoch <- t.epoch + 1;
    t.c_crashes <- t.c_crashes + 1;
    (* The fleet stalls: its pending completion events are held, and
       dropped by the epoch check when a later thaw releases them. *)
    Ukfleet.Fleet.freeze t.fleet ~now_ns;
    true
  end

let recover t ~now_ns =
  if t.state <> Crashed then false
  else begin
    t.state <- Up;
    t.c_recoveries <- t.c_recoveries + 1;
    Ukfleet.Fleet.thaw t.fleet ~now_ns;
    true
  end

let freeze t ~now_ns ~dur_ns =
  if t.state <> Up || dur_ns <= 0.0 then false
  else begin
    t.state <- Frozen;
    t.c_freezes <- t.c_freezes + 1;
    Ukfleet.Fleet.freeze t.fleet ~now_ns;
    Uksim.Engine.at t.engine
      (max (Uksim.Clock.cycles_of_ns (now_ns +. dur_ns)) 0)
      (fun () ->
        (* A crash during the stall wins; only a still-frozen host thaws. *)
        if t.state = Frozen then begin
          t.state <- Up;
          Ukfleet.Fleet.thaw t.fleet ~now_ns:(now_ns +. dur_ns)
        end);
    true
  end
