(** The cluster's serving policy: consistent-hash sharding across
    hosts, per-request deadlines, budgeted retries with backoff and
    seeded jitter, tail-latency hedging, and admission that degrades
    gracefully as the detector's view of capacity shrinks.

    The router shards over {e slots} (one per host initially) placed on
    the front door's consistent-hash ring; suspicion quarantines a
    host's slots (arcs preserved — a false positive costs nothing on
    recovery), death collects them (arcs remap), and migration
    reassigns a slot to another host.

    Every offered request resolves exactly once — [Completed], [Shed]
    (at admission or by every host within the retry budget), or
    [Expired] at its deadline. The deadline timer is the sole expirer,
    so a response can be late, lost to a partition, or from a crashed
    host's previous life without the caller ever losing the reply. *)

type params = private {
  deadline_ns : float;
  attempt_timeout_ns : float;
  max_retries : int;
  retry_base_ns : float;
  retry_factor : float;
  retry_jitter : float;
  hedge : bool;
  hedge_quantile : float;
  hedge_min_ns : float;
  admit_factor : float;
  req_bytes : int;
  resp_bytes : int;
  vnodes : int;
}

val params :
  ?deadline_ns:float ->
  ?attempt_timeout_ns:float ->
  ?max_retries:int ->
  ?retry_base_ns:float ->
  ?retry_factor:float ->
  ?retry_jitter:float ->
  ?hedge:bool ->
  ?hedge_quantile:float ->
  ?hedge_min_ns:float ->
  ?admit_factor:float ->
  ?req_bytes:int ->
  ?resp_bytes:int ->
  ?vnodes:int ->
  unit ->
  params
(** Defaults: 50 ms deadline, 10 ms attempt timeout, 2 retries from a
    1 ms base doubling with 0.5 jitter, hedging off (p97 trigger,
    500 us floor when on), admit_factor 2.0, 512 B / 4 KiB on the wire,
    64 vnodes per slot. *)

type outcome = Completed | Shed | Expired

val outcome_name : outcome -> string

type t

val create :
  clock:Uksim.Clock.t ->
  engine:Uksim.Engine.t ->
  seed:int ->
  net:Netmodel.t ->
  front:int ->
  n_hosts:int ->
  params:params ->
  submit:
    (host:int -> now_ns:float -> flow:int -> on_reply:(ok:bool -> unit) -> bool) ->
  capacity_rps:(host:int -> float) ->
  unit ->
  t
(** [submit] offers one attempt to a host (false = host refused, the
    attempt timeout recovers); [capacity_rps] feeds admission. *)

val offer :
  t -> now_ns:float -> flow:int -> on_done:(outcome -> latency_ns:float -> unit) -> unit
(** Offer one request. [on_done] fires exactly once, by
    [now_ns + deadline_ns] at the latest. *)

(** {2 Shard control (driven by the detector and migration)} *)

val suspect_host : t -> int -> unit
val recover_host : t -> int -> unit

val collect_host : t -> int -> unit
(** Dead-and-collected: the host's slots leave the ring until
    {!reassign} places them on a live host. *)

val readmit_host : t -> int -> unit
(** Undo {!collect_host} for a host the control plane brought back:
    clears suspicion and restores its remaining slots' original arcs. *)

val reassign : t -> slot:int -> host:int -> unit
val drain_slot : t -> slot:int -> bool -> unit
val host_of_slot : t -> int -> int
val slots_of_host : t -> int -> int list
val suspected : t -> int -> bool
val collected : t -> int -> bool

(** {2 Readout} *)

val outstanding : t -> int
val offered : t -> int
val completed : t -> int
val shed : t -> int
val expired : t -> int
val retries : t -> int
val hedges : t -> int
val hedge_wins : t -> int
val cancelled : t -> int
val lost_replies : t -> int
val unroutable : t -> int
val latency : t -> Uksim.Stats.t
val trace_hash : t -> int
