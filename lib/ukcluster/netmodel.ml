type t = {
  n : int;
  latency_ns : float array array;
  bytes_per_ns : float array array;
  blocked : bool array array; (* blocked.(src).(dst): directed *)
  mutable c_transfers : int;
  mutable c_bytes : int;
  mutable c_dropped : int;
}

let gbps_to_bytes_per_ns g = g *. 1e9 /. 8.0 /. 1e9

let create ?(latency_ns = 50_000.0) ?(gbps = 10.0) ~nodes () =
  if nodes < 1 then invalid_arg "Netmodel.create: need at least one node";
  if latency_ns < 0.0 || gbps <= 0.0 then
    invalid_arg "Netmodel.create: bad link parameters";
  let t =
    {
      n = nodes;
      latency_ns = Array.make_matrix nodes nodes latency_ns;
      bytes_per_ns = Array.make_matrix nodes nodes (gbps_to_bytes_per_ns gbps);
      blocked = Array.make_matrix nodes nodes false;
      c_transfers = 0;
      c_bytes = 0;
      c_dropped = 0;
    }
  in
  for i = 0 to nodes - 1 do
    t.latency_ns.(i).(i) <- 0.0
  done;
  Uktrace.Registry.register
    (Uktrace.Source.make ~subsystem:"ukcluster" ~name:"net" (fun () ->
         [
           ("transfers", Uktrace.Metric.Count t.c_transfers);
           ("bytes", Uktrace.Metric.Count t.c_bytes);
           ("dropped", Uktrace.Metric.Count t.c_dropped);
         ]));
  t

let nodes t = t.n

let check t src dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Netmodel: node id out of range"

let set_link t ~src ~dst ~latency_ns ~gbps =
  check t src dst;
  t.latency_ns.(src).(dst) <- latency_ns;
  t.bytes_per_ns.(src).(dst) <- gbps_to_bytes_per_ns gbps

let block t ~src ~dst =
  check t src dst;
  let fresh = not t.blocked.(src).(dst) in
  t.blocked.(src).(dst) <- true;
  fresh

let unblock t ~src ~dst =
  check t src dst;
  let was = t.blocked.(src).(dst) in
  t.blocked.(src).(dst) <- false;
  was

let reachable t ~src ~dst =
  check t src dst;
  not t.blocked.(src).(dst)

let transfer_ns t ~src ~dst ~bytes =
  check t src dst;
  if src = dst then Some 0.0
  else if t.blocked.(src).(dst) then begin
    t.c_dropped <- t.c_dropped + 1;
    None
  end
  else begin
    t.c_transfers <- t.c_transfers + 1;
    t.c_bytes <- t.c_bytes + bytes;
    Some (t.latency_ns.(src).(dst) +. (float_of_int bytes /. t.bytes_per_ns.(src).(dst)))
  end

let partition t ~a ~b =
  List.iter (fun x -> List.iter (fun y -> ignore (block t ~src:x ~dst:y);
                                          ignore (block t ~src:y ~dst:x)) b) a

let partition_asym t ~from_ ~to_ =
  List.iter (fun x -> List.iter (fun y -> ignore (block t ~src:x ~dst:y)) to_) from_

let heal t ~a ~b =
  List.iter (fun x -> List.iter (fun y -> ignore (unblock t ~src:x ~dst:y);
                                          ignore (unblock t ~src:y ~dst:x)) b) a
